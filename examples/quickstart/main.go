// Quickstart: build a 4-core system with µMama coordinating the per-L2
// Bandit prefetchers, run a workload mix, and compare against
// uncoordinated Bandit agents.
package main

import (
	"fmt"

	"micromama/internal/core"
	"micromama/internal/sim"
	"micromama/internal/workload"
)

func main() {
	// Pick a 4-core mix from the catalog: one stream, one strided code,
	// one graph workload, one pointer chaser.
	names := []string{"spec06.libquantum", "spec17.cactuBSSN", "ligra.PageRank", "spec06.mcf"}
	specs := make([]workload.Spec, len(names))
	for i, n := range names {
		sp, err := workload.ByName(n)
		if err != nil {
			panic(err)
		}
		specs[i] = sp
	}
	mix := workload.Mix{Specs: specs}

	const target = 1_500_000 // instructions per core

	run := func(ctrl sim.Controller) sim.Result {
		sys, err := sim.New(sim.DefaultConfig(len(specs)), mix.Traces(), ctrl)
		if err != nil {
			panic(err)
		}
		return sys.Run(target, target*16)
	}

	// Uncoordinated Micro-Armed Bandit agents (the paper's baseline).
	bcfg := core.DefaultBanditConfig()
	bcfg.Step = 250 // scaled-down timestep for a scaled-down run
	banditRes := run(core.NewBandit(bcfg))

	// µMama: the same local agents under a JAV cache + arbiter supervisor.
	mcfg := core.DefaultMuMamaConfig()
	mcfg.Step = 250
	mm := core.NewMuMama(mcfg)
	mamaRes := run(mm)

	fmt.Println("trace                     bandit IPC    µmama IPC")
	for i := range banditRes.Cores {
		fmt.Printf("%-24s %10.3f %12.3f\n",
			banditRes.Cores[i].Trace, banditRes.Cores[i].IPC, mamaRes.Cores[i].IPC)
	}
	fmt.Printf("\nµMama ran %d global timesteps; %.0f%% were dictated from the JAV cache.\n",
		mm.GlobalSteps(), mm.JointFraction()*100)
	if best := mm.JAVCache().Best(); best != nil {
		fmt.Printf("Best joint action learned: %v (arm per core, 0=off .. 16=max)\n", best)
	}
}

// Policytrace regenerates the paper's policy-timeline figures (2, 4,
// and 12) on the motivating 4-core mix: the arms each agent plays over
// time under uncoordinated Bandits, the naïve shared reward, and µMama
// (whose JAV-dictated steps are marked). It writes each timeline as an
// SVG next to the text summary.
package main

import (
	"fmt"
	"os"

	"micromama/internal/experiment"
)

func main() {
	scale := experiment.Scale{Target: 2_000_000, MaxCyclesFactor: 14, MixCount: 1, Seed: 7, Step: 250}
	runner := experiment.NewRunner(scale)

	for _, cfg := range []struct {
		key, fig, file string
	}{
		{"bandit", "Figure 2 (uncoordinated Bandits)", "fig2_bandit.svg"},
		{"bandit-shared", "Figure 4 (shared reward)", "fig4_shared.svg"},
		{"mumama", "Figure 12 (µMama; * = JAV-dictated)", "fig12_mumama.svg"},
	} {
		rep, err := runner.FigTimeline(cfg.key)
		if err != nil {
			fmt.Fprintln(os.Stderr, "policytrace:", err)
			os.Exit(1)
		}
		fmt.Printf("--- %s ---\n%s\n", cfg.fig, rep)
		if err := os.WriteFile(cfg.file, []byte(rep.SVG()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "policytrace:", err)
			os.Exit(1)
		}
		fmt.Printf("(wrote %s)\n\n", cfg.file)
	}
}

// Gametheory reproduces the paper's Figure 1 discussion (§2.2): two
// independent reinforcement learners on a general-sum game converge to
// the {Aggressive, Aggressive} Nash equilibrium, even though a
// supervisor with a joint view finds a better social outcome. This is
// the multicore-prefetching problem in miniature.
package main

import (
	"fmt"

	"micromama/internal/experiment"
)

func main() {
	rep := experiment.PlayGame(4000, 11)
	fmt.Print(rep)
	fmt.Println()
	fmt.Println("This is exactly the dynamic µMama addresses in multicores:")
	fmt.Println("independent Bandit prefetchers converge to mutually aggressive")
	fmt.Println("policies; the JAV cache gives the system a joint view.")
}

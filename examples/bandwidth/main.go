// Bandwidth demonstrates §6.2: µMama's advantage over uncoordinated
// Bandit agents grows as memory bandwidth shrinks, because contention
// between greedy prefetchers is exactly what the supervisor fixes.
package main

import (
	"fmt"

	"micromama/internal/dram"
	"micromama/internal/experiment"
	"micromama/internal/sim"
	"micromama/internal/workload"
)

func main() {
	scale := experiment.Scale{Target: 1_500_000, MaxCyclesFactor: 14, MixCount: 3, Seed: 7, Step: 250}
	runner := experiment.NewRunner(scale)
	mixes := workload.Mixes(4, scale.MixCount, scale.Seed)

	fmt.Printf("%-20s %10s %12s %12s %10s\n", "memory", "GB/s", "bandit WS", "µmama WS", "delta")
	for _, d := range []dram.Config{dram.DDR4(1866, 1), dram.DDR4(2400, 1), dram.DDR4(1866, 2), dram.DDR4(2400, 2)} {
		cfg := sim.DefaultConfig(4)
		cfg.DRAM = d
		bandit, err := runner.RunMixes(mixes, cfg, "bandit", experiment.Options{})
		if err != nil {
			panic(err)
		}
		mama, err := runner.RunMixes(mixes, cfg, "mumama", experiment.Options{})
		if err != nil {
			panic(err)
		}
		bws, mws := experiment.MeanWS(bandit), experiment.MeanWS(mama)
		fmt.Printf("%-20s %10.1f %12.3f %12.3f %+9.2f%%\n",
			d.Name, d.PeakGBps(), bws, mws, (mws/bws-1)*100)
	}
}

// Fairness demonstrates §6.4: the same µMama hardware optimizes for
// throughput (Weighted Speedup) or fairness (Harmonic-mean Speedup) by
// changing only the reward calculation.
package main

import (
	"fmt"

	"micromama/internal/experiment"
	"micromama/internal/sim"
	"micromama/internal/workload"
)

func main() {
	scale := experiment.Scale{Target: 2_000_000, MaxCyclesFactor: 14, MixCount: 1, Seed: 7, Step: 250}
	runner := experiment.NewRunner(scale)

	names := []string{"spec06.libquantum", "spec17.wrf", "spec06.mcf", "ligra.KCore"}
	specs := make([]workload.Spec, len(names))
	for i, n := range names {
		sp, err := workload.ByName(n)
		if err != nil {
			panic(err)
		}
		specs[i] = sp
	}
	mix := workload.Mix{Specs: specs}
	cfg := sim.DefaultConfig(len(specs))

	fmt.Printf("%-14s %8s %8s %12s\n", "config", "WS", "HS", "unfairness")
	for _, key := range []string{"bandit", "mumama", "mumama-50", "mumama-fair"} {
		res, err := runner.RunMix(mix, cfg, key, experiment.Options{})
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-14s %8.3f %8.3f %12.2f\n", key, res.WS, res.HS, res.Unfairness)
	}
	fmt.Println("\nmumama-fair uses the Harmonic-mean Speedup reward: same hardware,")
	fmt.Println("different reward, a different point on the throughput/fairness frontier.")
}

// Command tracestat analyzes an instruction trace — a catalog name or a
// binary MMT1 file — and prints the characteristics the paper's
// methodology cares about: memory-instruction ratio, load/store split,
// working-set footprint, stride regularity, and an estimated
// no-prefetch L2 MPKI (distinct lines touched outside a recent-reuse
// window).
//
// Usage:
//
//	tracestat spec06.libquantum
//	tracestat -n 2000000 path/to/trace.mmt
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"micromama/internal/trace"
	"micromama/internal/workload"
)

func main() {
	n := flag.Uint64("n", 1_000_000, "instructions to analyze")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "tracestat: name one trace (catalog name or .mmt file)")
		os.Exit(2)
	}
	name := flag.Arg(0)

	var r trace.Reader
	if sp, err := workload.ByName(name); err == nil {
		r = sp.New()
	} else {
		ft, ferr := trace.OpenFile(name)
		if ferr != nil {
			fmt.Fprintf(os.Stderr, "tracestat: %q is neither a catalog trace (%v) nor a trace file (%v)\n",
				name, err, ferr)
			os.Exit(2)
		}
		defer ft.Close()
		r = trace.NewLooping(ft)
	}

	st := Analyze(r, *n)
	st.Print(os.Stdout)
}

// Stats summarizes a trace prefix.
type Stats struct {
	Instructions uint64
	Loads        uint64
	Stores       uint64
	Dependent    uint64 // pointer-chase loads

	DistinctLines uint64
	FootprintMB   float64

	// EstMPKI estimates no-prefetch L2 misses per kilo-instruction:
	// accesses to lines not seen within the last ~16K distinct lines
	// (≈1 MB of L2 reach).
	EstMPKI float64

	// TopStrides are the most common byte strides between consecutive
	// memory accesses of the same PC.
	TopStrides []StrideCount
	// StrideRegularity is the fraction of same-PC accesses whose stride
	// repeats the previous one.
	StrideRegularity float64
}

// StrideCount is one stride histogram bucket.
type StrideCount struct {
	Stride int64
	Count  uint64
}

// Analyze scans up to n instructions of r.
func Analyze(r trace.Reader, n uint64) Stats {
	var st Stats
	lines := map[uint64]bool{}

	// Recent-reuse window as a ring over line addresses (~16K lines).
	const window = 16384
	recent := map[uint64]uint64{} // line -> last access index
	var misses uint64

	lastByPC := map[uint64]uint64{}
	strideByPC := map[uint64]int64{}
	strideHist := map[int64]uint64{}
	var strideRepeats, strideSamples uint64

	var accessIdx uint64
	for st.Instructions < n {
		ins, ok := r.Next()
		if !ok {
			break
		}
		st.Instructions++
		if ins.Kind == trace.Other {
			continue
		}
		if ins.Kind == trace.Load {
			st.Loads++
			if ins.Flags&trace.DependsPrev != 0 {
				st.Dependent++
			}
		} else {
			st.Stores++
		}
		line := ins.Addr &^ 63
		lines[line] = true
		accessIdx++
		if last, seen := recent[line]; !seen || accessIdx-last > window {
			misses++
		}
		recent[line] = accessIdx
		if len(recent) > 4*window {
			for k, v := range recent {
				if accessIdx-v > window {
					delete(recent, k)
				}
			}
		}

		if last, ok := lastByPC[ins.PC]; ok {
			stride := int64(ins.Addr) - int64(last)
			strideHist[stride]++
			strideSamples++
			if stride == strideByPC[ins.PC] {
				strideRepeats++
			}
			strideByPC[ins.PC] = stride
		}
		lastByPC[ins.PC] = ins.Addr
	}

	st.DistinctLines = uint64(len(lines))
	st.FootprintMB = float64(st.DistinctLines) * 64 / (1 << 20)
	if st.Instructions > 0 {
		st.EstMPKI = float64(misses) * 1000 / float64(st.Instructions)
	}
	if strideSamples > 0 {
		st.StrideRegularity = float64(strideRepeats) / float64(strideSamples)
	}
	for s, c := range strideHist {
		st.TopStrides = append(st.TopStrides, StrideCount{s, c})
	}
	sort.Slice(st.TopStrides, func(i, j int) bool { return st.TopStrides[i].Count > st.TopStrides[j].Count })
	if len(st.TopStrides) > 5 {
		st.TopStrides = st.TopStrides[:5]
	}
	return st
}

// Print renders the stats.
func (st Stats) Print(w *os.File) {
	mem := st.Loads + st.Stores
	fmt.Fprintf(w, "instructions:      %d\n", st.Instructions)
	fmt.Fprintf(w, "memory ratio:      %.1f%% (%d loads, %d stores, %d dependent)\n",
		100*float64(mem)/float64(st.Instructions), st.Loads, st.Stores, st.Dependent)
	fmt.Fprintf(w, "footprint:         %.1f MB (%d distinct lines)\n", st.FootprintMB, st.DistinctLines)
	fmt.Fprintf(w, "est. L2 MPKI:      %.1f (no prefetching)\n", st.EstMPKI)
	fmt.Fprintf(w, "stride regularity: %.0f%%\n", st.StrideRegularity*100)
	fmt.Fprintf(w, "top strides:\n")
	for _, s := range st.TopStrides {
		fmt.Fprintf(w, "  %+8d bytes: %d\n", s.Stride, s.Count)
	}
}

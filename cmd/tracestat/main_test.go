package main

import (
	"testing"

	"micromama/internal/trace"
)

func TestAnalyzeStream(t *testing.T) {
	s := trace.NewStream("s", trace.StreamConfig{Seed: 1, Streams: 1, MemRatio: 0.5, Length: 100_000})
	st := Analyze(s, 100_000)
	if st.Instructions != 100_000 {
		t.Fatalf("analyzed %d instructions", st.Instructions)
	}
	mem := st.Loads + st.Stores
	ratio := float64(mem) / float64(st.Instructions)
	if ratio < 0.45 || ratio > 0.55 {
		t.Errorf("memory ratio %.2f, want ~0.5", ratio)
	}
	// Sequential 8B stream: the dominant stride is +8.
	if len(st.TopStrides) == 0 || st.TopStrides[0].Stride != 8 {
		t.Errorf("top stride = %+v, want +8", st.TopStrides)
	}
	if st.StrideRegularity < 0.9 {
		t.Errorf("stride regularity %.2f for a perfect stream", st.StrideRegularity)
	}
	// 50k accesses x 8B = 400 KB of footprint, ~6250 lines.
	if st.DistinctLines < 5000 || st.DistinctLines > 8000 {
		t.Errorf("distinct lines = %d", st.DistinctLines)
	}
}

func TestAnalyzeChaseDependence(t *testing.T) {
	c := trace.NewChase("c", trace.ChaseConfig{Seed: 2, MemRatio: 0.4, LocalRatio: 0.5, Length: 50_000})
	st := Analyze(c, 50_000)
	if st.Dependent == 0 {
		t.Error("chase trace shows no dependent loads")
	}
	if st.EstMPKI < 10 {
		t.Errorf("est MPKI %.1f for a pointer chase, want high", st.EstMPKI)
	}
}

func TestAnalyzeComputeLowMPKI(t *testing.T) {
	c := trace.NewCompute("k", trace.ComputeConfig{Seed: 3, WorkingSet: 64 << 10, MemRatio: 0.2, Length: 200_000})
	st := Analyze(c, 200_000)
	// 64 KB working set = 1024 lines, well inside the reuse window.
	if st.EstMPKI > 6 {
		t.Errorf("est MPKI %.1f for cache-resident code, want ~0", st.EstMPKI)
	}
}

func TestAnalyzeStopsAtN(t *testing.T) {
	s := trace.NewStream("s", trace.StreamConfig{Seed: 1, MemRatio: 0.3, Length: 1 << 40})
	st := Analyze(s, 1234)
	if st.Instructions != 1234 {
		t.Errorf("analyzed %d, want 1234", st.Instructions)
	}
}

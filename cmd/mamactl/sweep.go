package main

// The sweep subcommand family: server-side experiment sweeps.
//
//	mamactl sweep submit -spec sweep.json [-priority N] [-watch]
//	mamactl sweep submit -mixes a,b;c,d -controllers mumama,bandit
//	        [-scales tiny] [-seeds 0,1] [-name fig13] [-priority N] [-watch]
//	mamactl sweep status <sweep-id>
//	mamactl sweep list
//	mamactl sweep watch <sweep-id>
//	mamactl sweep results <sweep-id>
//
// submit accepts either a full JSON spec (-spec file, "-" for stdin) or
// grid axes as flags; -mixes separates mixes with ';' and traces within
// a mix with ','. watch streams events as they complete and survives
// server restarts (the client reconnects and resumes from its cursor);
// results dumps the events recorded so far without following.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"micromama/internal/client"
	"micromama/internal/sweep"
)

func cmdSweep(ctx context.Context, c *client.Client, args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("sweep: expected submit|status|list|watch|results")
	}
	switch args[0] {
	case "submit":
		return cmdSweepSubmit(ctx, c, args[1:])
	case "status":
		if len(args) != 2 {
			return fmt.Errorf("sweep status: expected exactly one sweep id")
		}
		return getJSON(ctx, c, "/v1/sweeps/"+args[1])
	case "list":
		return getJSON(ctx, c, "/v1/sweeps")
	case "watch":
		if len(args) != 2 {
			return fmt.Errorf("sweep watch: expected exactly one sweep id")
		}
		return watchSweep(ctx, c, args[1])
	case "results":
		if len(args) != 2 {
			return fmt.Errorf("sweep results: expected exactly one sweep id")
		}
		return getJSON(ctx, c, "/v1/sweeps/"+args[1]+"/results?follow=0")
	}
	return fmt.Errorf("sweep: unknown subcommand %q", args[0])
}

func cmdSweepSubmit(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("sweep submit", flag.ExitOnError)
	var (
		specFile    = fs.String("spec", "", "sweep spec JSON file (\"-\" for stdin); overrides the grid flags")
		name        = fs.String("name", "", "sweep name (part of its identity)")
		mixes       = fs.String("mixes", "", "grid mixes: ';' between mixes, ',' between traces of one mix")
		controllers = fs.String("controllers", "", "comma-separated controller keys")
		scales      = fs.String("scales", "", "comma-separated scales (tiny|small|default|full)")
		seeds       = fs.String("seeds", "", "comma-separated seeds")
		priority    = fs.Int("priority", 0, "fair-share weight against other sweeps (1..max, default 1)")
		jobTimeout  = fs.Duration("cell-timeout", 0, "per-cell timeout enforced by the server")
		watch       = fs.Bool("watch", false, "stream results until the sweep completes")
	)
	fs.Parse(args)

	var spec sweep.Spec
	if *specFile != "" {
		raw, err := readSpecFile(*specFile)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(raw, &spec); err != nil {
			return fmt.Errorf("sweep submit: bad spec: %w", err)
		}
	} else {
		if *mixes == "" || *controllers == "" {
			return fmt.Errorf("sweep submit: need -spec, or -mixes and -controllers")
		}
		grid := &sweep.Grid{Controllers: splitList(*controllers)}
		for _, m := range strings.Split(*mixes, ";") {
			if mix := splitList(m); len(mix) > 0 {
				grid.Mixes = append(grid.Mixes, mix)
			}
		}
		if *scales != "" {
			grid.Scales = splitList(*scales)
		}
		for _, s := range splitList(*seeds) {
			v, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				return fmt.Errorf("sweep submit: bad seed %q", s)
			}
			grid.Seeds = append(grid.Seeds, v)
		}
		spec.Grid = grid
	}
	if *name != "" {
		spec.Name = *name
	}
	if *priority != 0 {
		spec.Priority = *priority
	}
	if *jobTimeout != 0 {
		spec.TimeoutMs = jobTimeout.Milliseconds()
	}

	view, err := c.SubmitSweep(ctx, spec)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sweep %s: %d cells (%d already deduped)\n",
		view.ID, view.Cells, view.Deduped)
	if !*watch {
		b, _ := json.Marshal(view)
		printJSON(b)
		return nil
	}
	return watchSweep(ctx, c, view.ID)
}

// watchSweep streams one event per line until the sweep finishes, then
// prints the final view. Failed cells flip the exit status.
func watchSweep(ctx context.Context, c *client.Client, id string) error {
	view, err := c.StreamSweepResults(ctx, id, func(ev sweep.Event) error {
		b, merr := json.Marshal(ev)
		if merr != nil {
			return merr
		}
		fmt.Println(string(b))
		return nil
	})
	if err != nil {
		return err
	}
	b, _ := json.Marshal(view)
	fmt.Fprintf(os.Stderr, "sweep %s finished: %d done, %d deduped, %d failed\n",
		view.ID, view.Done, view.Deduped, view.Failed)
	printJSON(b)
	if view.Failed > 0 {
		return fmt.Errorf("sweep %s: %d cells failed", view.ID, view.Failed)
	}
	return nil
}

func readSpecFile(path string) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// Command mamactl is the mamaserved client.
//
// Usage:
//
//	mamactl [-addr host:port] submit -mix t1,t2 -controller mumama [-scale tiny]
//	        [-seed N] [-target N] [-step N] [-timeout 30s] [-wait]
//	mamactl status <job-id>
//	mamactl result <job-id>
//	mamactl wait <job-id>
//	mamactl stats
//	mamactl catalog
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

var addr = flag.String("addr", "http://localhost:8077", "mamaserved base URL")

func main() {
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	var err error
	switch args[0] {
	case "submit":
		err = cmdSubmit(args[1:])
	case "status":
		err = cmdGet(args[1:], "/v1/jobs/%s")
	case "result":
		err = cmdGet(args[1:], "/v1/jobs/%s/result")
	case "wait":
		err = cmdWait(args[1:])
	case "stats":
		err = getJSON("/v1/stats", os.Stdout)
	case "catalog":
		err = getJSON("/v1/catalog", os.Stdout)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mamactl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mamactl [-addr url] submit|status|result|wait|stats|catalog ...")
	os.Exit(2)
}

func base() string { return strings.TrimRight(*addr, "/") }

func cmdSubmit(args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	var (
		mix        = fs.String("mix", "", "comma-separated trace names, one per core")
		controller = fs.String("controller", "mumama", "prefetch controller key")
		scale      = fs.String("scale", "", "tiny|small|default|full")
		seed       = fs.Uint64("seed", 0, "mix label / cache namespace")
		target     = fs.Uint64("target", 0, "instruction target override")
		step       = fs.Uint64("step", 0, "agent timestep override")
		timeout    = fs.Duration("timeout", 0, "per-job timeout")
		wait       = fs.Bool("wait", false, "poll until the job finishes and print the result")
	)
	fs.Parse(args)
	if *mix == "" {
		return fmt.Errorf("submit: -mix is required")
	}
	spec := map[string]any{
		"mix":        strings.Split(*mix, ","),
		"controller": *controller,
	}
	if *scale != "" {
		spec["scale"] = *scale
	}
	if *seed != 0 {
		spec["seed"] = *seed
	}
	if *target != 0 {
		spec["target"] = *target
	}
	if *step != 0 {
		spec["step"] = *step
	}
	if *timeout != 0 {
		spec["timeout_ms"] = timeout.Milliseconds()
	}
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base()+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 400 {
		return fmt.Errorf("submit: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	var view struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}
	if err := json.Unmarshal(raw, &view); err != nil {
		return err
	}
	if !*wait {
		fmt.Printf("%s\t%s\n", view.ID, view.Status)
		return nil
	}
	return waitFor(view.ID)
}

func cmdGet(args []string, pathFmt string) error {
	if len(args) != 1 {
		return fmt.Errorf("expected exactly one job id")
	}
	return getJSON(fmt.Sprintf(pathFmt, args[0]), os.Stdout)
}

func cmdWait(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("wait: expected exactly one job id")
	}
	return waitFor(args[0])
}

// waitFor polls the result endpoint until the job leaves
// queued/running, then prints the final body; a failed job exits 1.
func waitFor(id string) error {
	for {
		resp, err := http.Get(base() + "/v1/jobs/" + id + "/result")
		if err != nil {
			return err
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusAccepted {
			time.Sleep(200 * time.Millisecond)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("wait: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(raw)))
		}
		var out bytes.Buffer
		_ = json.Indent(&out, raw, "", "  ")
		fmt.Println(out.String())
		var view struct {
			Status string `json:"status"`
			Error  string `json:"error"`
		}
		_ = json.Unmarshal(raw, &view)
		if view.Status == "failed" {
			return fmt.Errorf("job failed: %s", view.Error)
		}
		return nil
	}
}

func getJSON(path string, w io.Writer) error {
	resp, err := http.Get(base() + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode >= 400 {
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(raw)))
	}
	var out bytes.Buffer
	if err := json.Indent(&out, raw, "", "  "); err != nil {
		out.Write(raw)
	}
	fmt.Fprintln(w, out.String())
	return nil
}

// Command mamactl is the mamaserved client.
//
// Usage:
//
//	mamactl [-addr host:port] [-timeout 30s] [-retries 4] [-deadline 1h]
//	        submit -mix t1,t2 -controller mumama [-scale tiny]
//	        [-seed N] [-target N] [-step N] [-job-timeout 30s] [-wait]
//	mamactl status <job-id>
//	mamactl result <job-id>
//	mamactl wait <job-id>
//	mamactl sweep submit|status|list|watch|results ...  (see sweep.go)
//	mamactl stats
//	mamactl catalog
//
// Every request runs on one shared http.Client with an explicit
// timeout, retries transient failures (connection errors, 429, 5xx)
// with exponential backoff honoring Retry-After, and is cancellable
// with SIGINT/SIGTERM (polling waits exit promptly). Retrying a submit
// is safe: jobs are content-addressed, so a resubmission lands on the
// same job instead of running a second simulation.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"micromama/internal/client"
)

var (
	addr     = flag.String("addr", "http://localhost:8077", "mamaserved base URL")
	timeout  = flag.Duration("timeout", 30*time.Second, "per-request HTTP timeout")
	retries  = flag.Int("retries", 4, "max retries on transient failures (429/5xx/connection errors)")
	deadline = flag.Duration("deadline", time.Hour, "overall deadline for the whole invocation (0 = none); bounds polling waits")
)

func main() {
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}

	// One signal-cancelled context threads through every subcommand, so
	// ^C interrupts an in-flight request or a polling wait immediately.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}

	c := client.New(*addr, client.Options{Timeout: *timeout, MaxRetries: *retries})

	var err error
	switch args[0] {
	case "submit":
		err = cmdSubmit(ctx, c, args[1:])
	case "status":
		err = cmdGet(ctx, c, args[1:], "/v1/jobs/%s")
	case "result":
		err = cmdGet(ctx, c, args[1:], "/v1/jobs/%s/result")
	case "wait":
		err = cmdWait(ctx, c, args[1:])
	case "sweep":
		err = cmdSweep(ctx, c, args[1:])
	case "stats":
		err = getJSON(ctx, c, "/v1/stats")
	case "catalog":
		err = getJSON(ctx, c, "/v1/catalog")
	default:
		usage()
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "mamactl: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "mamactl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mamactl [-addr url] [-timeout d] [-retries n] [-deadline d] submit|status|result|wait|sweep|stats|catalog ...")
	os.Exit(2)
}

func cmdSubmit(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	var (
		mix        = fs.String("mix", "", "comma-separated trace names, one per core")
		controller = fs.String("controller", "mumama", "prefetch controller key")
		scale      = fs.String("scale", "", "tiny|small|default|full")
		seed       = fs.Uint64("seed", 0, "mix label / cache namespace")
		target     = fs.Uint64("target", 0, "instruction target override")
		step       = fs.Uint64("step", 0, "agent timestep override")
		jobTimeout = fs.Duration("job-timeout", 0, "per-job timeout enforced by the server")
		wait       = fs.Bool("wait", false, "poll until the job finishes and print the result")
	)
	fs.Parse(args)
	if *mix == "" {
		return fmt.Errorf("submit: -mix is required")
	}
	spec := map[string]any{
		"mix":        strings.Split(*mix, ","),
		"controller": *controller,
	}
	if *scale != "" {
		spec["scale"] = *scale
	}
	if *seed != 0 {
		spec["seed"] = *seed
	}
	if *target != 0 {
		spec["target"] = *target
	}
	if *step != 0 {
		spec["step"] = *step
	}
	if *jobTimeout != 0 {
		spec["timeout_ms"] = jobTimeout.Milliseconds()
	}
	body, _ := json.Marshal(spec)
	resp, err := c.Post(ctx, "/v1/jobs", body)
	if err != nil {
		return err
	}
	if resp.Status >= 400 {
		return fmt.Errorf("submit: HTTP %d: %s", resp.Status, strings.TrimSpace(string(resp.Body)))
	}
	var view struct {
		ID     string `json:"id"`
		Status string `json:"status"`
	}
	if err := json.Unmarshal(resp.Body, &view); err != nil {
		return err
	}
	if !*wait {
		fmt.Printf("%s\t%s\n", view.ID, view.Status)
		return nil
	}
	return waitFor(ctx, c, view.ID)
}

func cmdGet(ctx context.Context, c *client.Client, args []string, pathFmt string) error {
	if len(args) != 1 {
		return fmt.Errorf("expected exactly one job id")
	}
	return getJSON(ctx, c, fmt.Sprintf(pathFmt, args[0]))
}

func cmdWait(ctx context.Context, c *client.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("wait: expected exactly one job id")
	}
	return waitFor(ctx, c, args[0])
}

// waitFor polls the result endpoint until the job leaves
// queued/running, then prints the final body; a failed job exits 1.
func waitFor(ctx context.Context, c *client.Client, id string) error {
	resp, err := c.WaitJob(ctx, id, 200*time.Millisecond)
	if resp != nil {
		printJSON(resp.Body)
	}
	return err
}

func getJSON(ctx context.Context, c *client.Client, path string) error {
	resp, err := c.Get(ctx, path)
	if err != nil {
		return err
	}
	if resp.Status >= 400 {
		return fmt.Errorf("HTTP %d: %s", resp.Status, strings.TrimSpace(string(resp.Body)))
	}
	printJSON(resp.Body)
	return nil
}

func printJSON(raw []byte) {
	var out bytes.Buffer
	if err := json.Indent(&out, raw, "", "  "); err != nil {
		out.Write(raw)
	}
	fmt.Println(out.String())
}

// Command mamaserved serves simulation jobs over HTTP: a bounded job
// queue, a worker pool running experiment.Runner simulations, and a
// content-addressed result cache (see docs/ARCHITECTURE.md).
//
// Usage:
//
//	mamaserved -addr :8077 -workers 8 -queue 64
//
// Endpoints:
//
//	POST /v1/jobs                submit a job (JSON spec)
//	GET  /v1/jobs/{id}           job status
//	GET  /v1/jobs/{id}/result    metrics (202 until finished)
//	POST /v1/sweeps              submit an experiment sweep (grid and/or cells)
//	GET  /v1/sweeps              list sweeps
//	GET  /v1/sweeps/{id}         sweep status
//	GET  /v1/sweeps/{id}/results stream cell results (NDJSON or SSE, cursor resume)
//	GET  /v1/stats               service counters
//	GET  /v1/catalog             traces, controllers, scales
//	GET  /metrics                Prometheus text-format telemetry
//	GET  /healthz                liveness (200 while the process is up, even draining)
//	GET  /readyz                 readiness (503 while draining or queue-saturated)
//	GET  /debug/pprof/           live profiling (net/http/pprof)
//
// On SIGTERM/SIGINT the server drains gracefully: new submissions are
// refused with 503 + Retry-After, in-flight and queued jobs finish (up
// to -drain-timeout, then they are cancelled), and with -cache-dir the
// result cache is flushed so a restarted process serves previously
// completed specs as cache hits. Incomplete sweeps persist alongside
// the cache and resume after restart without recomputing finished
// cells.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"micromama/internal/cluster"
	"micromama/internal/server"
	"micromama/internal/sim"
	"micromama/internal/telemetry"
	"micromama/internal/trace"
)

func main() {
	var (
		addr       = flag.String("addr", ":8077", "listen address")
		workers    = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queueDepth = flag.Int("queue", 0, "job queue depth (0 = 4x workers)")
		jobTimeout = flag.Duration("job-timeout", 5*time.Minute, "default per-job timeout")
		maxTimeout = flag.Duration("max-timeout", 30*time.Minute, "upper bound on client-requested timeouts")
		maxCores   = flag.Int("max-cores", 16, "largest mix a job may request")
		maxCells   = flag.Int("max-sweep-cells", 0, "largest expansion a single sweep may request (0 = 4096)")
		simPar     = flag.Int("sim-parallel", sim.ParallelismFromEnv(-1), "per-simulation goroutines for each job; 0 = serial, -1 = auto (default; or MAMA_SIM_PARALLEL): divide GOMAXPROCS across the worker pool, serial if that leaves < 2. Results are bit-identical at any setting; resolved value appears in /v1/stats")
		traceCache = flag.String("trace-cache", "", "directory of MMT1 trace files (from tracegen) preloaded into the shared trace pool; cached traces loop at their recorded length")
		cacheDir   = flag.String("cache-dir", "", "directory for crash-safe result-cache persistence (restored on startup; corrupt entries quarantined)")
		drainT     = flag.Duration("drain-timeout", 30*time.Second, "how long a SIGTERM drain waits for in-flight jobs before cancelling them")
		logLevel   = flag.String("log-level", "info", "structured-log level: debug|info|warn|error")
		logFormat  = flag.String("log-format", "text", "structured-log format: text|json")

		// Cluster membership (see docs/ARCHITECTURE.md, "Cluster &
		// sharding"). -peers/-membership/-join are bootstrap seeds; with
		// gossip enabled (the default for clustered nodes) the live
		// member set is maintained by the SWIM failure detector, so a
		// node can die, rejoin, or be added without restarting the rest.
		peers         = flag.String("peers", "", "comma-separated peer URLs seeding a sharded cluster (include or omit this node; it is added automatically). With gossip these are bootstrap members; the live set evolves from there")
		membership    = flag.String("membership", "", "JSON membership seed file: a bare array of peer URLs or {\"peers\": [...]} (alternative to -peers)")
		join          = flag.String("join", "", "comma-separated URLs of existing cluster nodes to join via gossip; unlike -peers they are contacted, not assumed — membership comes from what they answer")
		advertise     = flag.String("advertise", "", "this node's URL as peers reach it (e.g. http://10.0.0.5:8077); required with -peers/-membership/-join")
		vnodes        = flag.Int("vnodes", 0, "virtual nodes per peer on the consistent-hash ring (0 = 128)")
		stealInterval = flag.Duration("steal-interval", 0, "base interval for an idle node's steal polls; backs off exponentially while victims are empty (0 = 250ms; negative disables work stealing)")
		gossipEvery   = flag.Duration("gossip-interval", time.Second, "SWIM probe interval (0 or negative disables gossip: membership stays fixed at the bootstrap seeds)")
		suspectT      = flag.Duration("suspect-timeout", 0, "how long a suspected peer has to refute before it is confirmed dead (0 = 5x gossip-interval)")
	)
	flag.Parse()

	logger := telemetry.NewLogger(*logLevel, *logFormat)

	var cl *cluster.Cluster
	if *peers != "" || *membership != "" || *join != "" {
		if *advertise == "" {
			fmt.Fprintln(os.Stderr, "mamaserved: -advertise is required with -peers/-membership/-join")
			os.Exit(2)
		}
		list := []string{}
		if *membership != "" {
			var err error
			list, err = cluster.LoadMembership(*membership)
			if err != nil {
				fmt.Fprintln(os.Stderr, "mamaserved:", err)
				os.Exit(1)
			}
		}
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				list = append(list, p)
			}
		}
		joinSeeds := []string{}
		for _, p := range strings.Split(*join, ",") {
			if p = strings.TrimSpace(p); p != "" {
				joinSeeds = append(joinSeeds, p)
			}
		}
		if len(list) == 0 && len(joinSeeds) == 0 {
			fmt.Fprintln(os.Stderr, "mamaserved: -join lists no URLs")
			os.Exit(2)
		}
		var err error
		cl, err = cluster.New(*advertise, list, cluster.Options{Vnodes: *vnodes})
		if err != nil {
			fmt.Fprintln(os.Stderr, "mamaserved:", err)
			os.Exit(1)
		}
		if *gossipEvery > 0 {
			// Every bootstrap source doubles as a gossip seed: a
			// restarted node re-syncs with whoever it knew, learns its
			// own tombstone, and rejoins with a bumped incarnation — no
			// flag changes needed.
			cl.EnableGossip(cluster.GossipOptions{
				Interval:       *gossipEvery,
				SuspectTimeout: *suspectT,
				Seeds:          append(append([]string{}, list...), joinSeeds...),
			})
		} else if len(joinSeeds) > 0 {
			fmt.Fprintln(os.Stderr, "mamaserved: -join requires gossip (-gossip-interval > 0)")
			os.Exit(2)
		}
		logger.Info("cluster configured", "self", cl.Self(),
			"peers", len(cl.Peers()), "ring_size", cl.Size(),
			"gossip", cl.GossipEnabled())
	}

	if *traceCache != "" {
		n, errs := trace.DefaultPool().PreloadDir(*traceCache)
		for _, err := range errs {
			logger.Warn("trace-cache preload", "err", err)
		}
		logger.Info("trace cache preloaded", "traces", n, "dir", *traceCache)
	}

	svc, err := server.New(server.Config{
		Workers:        *workers,
		QueueDepth:     *queueDepth,
		DefaultTimeout: *jobTimeout,
		MaxTimeout:     *maxTimeout,
		MaxCores:       *maxCores,
		MaxSweepCells:  *maxCells,
		SimParallelism: *simPar,
		CacheDir:       *cacheDir,
		Logger:         logger,
		Cluster:        cl,
		StealInterval:  *stealInterval,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "mamaserved:", err)
		os.Exit(1)
	}
	defer svc.Close()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		// Graceful drain: the service stops intake first (submits get
		// 503 + Retry-After while /healthz stays 200 and results remain
		// readable), finishes admitted jobs up to -drain-timeout, and
		// flushes the persistent cache; only then does the HTTP listener
		// shut down.
		logger.Info("signal received; draining", "timeout", *drainT)
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainT)
		if err := svc.Shutdown(drainCtx); err != nil {
			logger.Warn("drain ended early", "err", err)
		}
		cancel()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()

	st := svc.Stats()
	logger.Info("mamaserved listening", "addr", *addr,
		"workers", st.Workers, "queue_cap", st.QueueCap,
		"sim_parallelism", st.SimParallelism)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, "mamaserved:", err)
		os.Exit(1)
	}
	logger.Info("mamaserved shut down")
}

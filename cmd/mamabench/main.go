// Command mamabench regenerates the paper's tables and figures (see the
// experiment index in DESIGN.md).
//
// Usage:
//
//	mamabench -scale small fig9 fig13
//	mamabench -scale default all
//	mamabench tab2 overheads fig1
//	mamabench -server http://localhost:8077 fig11 fig13
//
// With -server, supported figures run as server-side sweeps (see
// internal/sweep): the driver expands the same deterministic cells the
// local path would simulate, submits them once, and streams results —
// so a warm server answers a repeated figure without re-simulating.
//
// Experiment ids: tab1 tab2 tab3 fig1 fig2 fig3 fig4 fig9 fig10 fig11
// fig12 fig13 fig14 fig15a fig15b fig16 overheads tournament, or "all".
//
// The tournament id races controller families head-to-head over the
// workload catalog (see internal/tournament):
//
//	mamabench -scale small tournament
//	mamabench -controllers bandit,mumama,phase-select,coord-rl tournament
//	mamabench -server http://localhost:8077 tournament
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"

	"micromama/internal/client"
	"micromama/internal/core"
	"micromama/internal/dram"
	"micromama/internal/experiment"
	"micromama/internal/prefetch"
	"micromama/internal/profiling"
	"micromama/internal/sim"
	"micromama/internal/telemetry"
	"micromama/internal/tournament"
)

var scales = map[string]experiment.Scale{
	"tiny":    experiment.ScaleTiny,
	"small":   experiment.ScaleSmall,
	"default": experiment.ScaleDefault,
	"full":    experiment.ScaleFull,
}

var (
	svgDir  string
	jsonDir string

	// Tournament knobs (the "tournament" experiment id).
	tournamentCtrls string
	tournamentCores string
	tournamentSeeds int
	curScaleName    string
)

// defaultTournamentControllers races one representative of every
// coordination family; "all" expands to every registry key that needs
// no extra options.
const defaultTournamentControllers = "no,ip_stride,bingo,pythia,spp,bandit,mumama,phase-select,coord-rl"

// buildTournamentSpec resolves the tournament flags into a spec.
func buildTournamentSpec(scale experiment.Scale, scaleName string) (tournament.Spec, error) {
	ctrls := tournamentCtrls
	if ctrls == "all" {
		keys := make([]string, 0, len(experiment.ControllerKeys))
		for _, k := range experiment.ControllerKeys {
			if k != "mumama-profiled" { // requires per-core profiles
				keys = append(keys, k)
			}
		}
		ctrls = strings.Join(keys, ",")
	}
	var cores []int
	for _, f := range strings.Split(tournamentCores, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return tournament.Spec{}, fmt.Errorf("bad -tournament-cores entry %q", f)
		}
		cores = append(cores, n)
	}
	spec := tournament.Spec{
		Controllers: strings.Split(ctrls, ","),
		CoreCounts:  cores,
		Seeds:       tournamentSeeds,
		ScaleName:   scaleName,
		Scale:       scale,
	}
	for i := range spec.Controllers {
		spec.Controllers[i] = strings.TrimSpace(spec.Controllers[i])
	}
	return spec, spec.Validate()
}

func main() {
	scaleName := flag.String("scale", "small", "tiny | small | default | full")
	flag.StringVar(&svgDir, "svg", "", "also write figures as SVG files into this directory")
	flag.StringVar(&jsonDir, "json", "", "also write report data as JSON files into this directory")
	server := flag.String("server", "", "run experiments remotely as sweeps against this mamaserved URL (fig11, fig13, tournament)")
	flag.StringVar(&tournamentCtrls, "controllers", defaultTournamentControllers,
		"comma-separated controller keys for the tournament id (\"all\" = every registry key)")
	flag.StringVar(&tournamentCores, "tournament-cores", "4",
		"comma-separated core counts the tournament races")
	flag.IntVar(&tournamentSeeds, "tournament-seeds", 1,
		"seed replicas: replica i samples mixes with scale seed + i")
	simPar := flag.Int("sim-parallel", sim.ParallelismFromEnv(0), "goroutines advancing each simulation's cores in parallel; 0 = serial (default; or MAMA_SIM_PARALLEL) since mamabench already runs GOMAXPROCS simulations side by side. Results are bit-identical at any setting")
	cpuProf := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProf := flag.String("memprofile", "", "write a heap profile to this file at exit")
	metricsOut := flag.String("metrics-dump", "", "write telemetry in Prometheus text format to this file at exit (\"-\" for stdout)")
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mamabench:", err)
		os.Exit(1)
	}
	defer stopProf()
	dumpMetrics := func() {
		if *metricsOut == "" {
			return
		}
		if err := telemetry.DumpToFile(*metricsOut); err != nil {
			fmt.Fprintln(os.Stderr, "mamabench: metrics-dump:", err)
		}
	}
	defer dumpMetrics()

	for _, dir := range []string{svgDir, jsonDir} {
		if dir != "" {
			if err := os.MkdirAll(dir, 0o755); err != nil {
				fmt.Fprintln(os.Stderr, "mamabench:", err)
				os.Exit(1)
			}
		}
	}

	curScaleName = *scaleName
	scale, ok := scales[*scaleName]
	if !ok {
		fmt.Fprintf(os.Stderr, "mamabench: unknown scale %q\n", *scaleName)
		stopProf()
		os.Exit(2)
	}
	ids := flag.Args()
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "mamabench: no experiments named (try `mamabench all`)")
		stopProf()
		os.Exit(2)
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = []string{"tab1", "tab2", "tab3", "overheads", "fig1", "fig2", "fig3", "fig4",
			"fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15a", "fig15b", "fig16", "sec63"}
	}

	// Ctrl-C cancels in-flight simulations at their next epoch boundary
	// instead of killing the process mid-report (and still flushes any
	// requested profiles).
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	r := experiment.NewRunner(scale)
	r.BaseCtx = ctx
	if *simPar < 0 {
		*simPar = 0
	}
	r.SimParallelism = *simPar
	var rr *remoteRunner
	if *server != "" {
		rr = &remoteRunner{
			ctx:       ctx,
			c:         client.New(*server, client.Options{}),
			scale:     scale,
			scaleName: *scaleName,
		}
	}
	for _, id := range ids {
		fmt.Printf("==== %s (scale %s) ====\n", id, *scaleName)
		exec := func() error { return run(r, id) }
		if rr != nil {
			exec = func() error { return rr.run(id) }
		}
		if err := exec(); err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Fprintln(os.Stderr, "mamabench: interrupted")
			} else {
				fmt.Fprintf(os.Stderr, "mamabench: %s: %v\n", id, err)
			}
			dumpMetrics() // os.Exit skips deferred calls
			stopProf()
			os.Exit(1)
		}
		fmt.Println()
	}
}

// emit prints a report and, with -svg/-json, writes its graphical and
// machine-readable forms.
func emit(id string, rep fmt.Stringer) {
	fmt.Print(rep)
	if svgDir != "" {
		if sv, ok := rep.(interface{ SVG() string }); ok {
			path := filepath.Join(svgDir, id+".svg")
			if err := os.WriteFile(path, []byte(sv.SVG()), 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "mamabench: svg:", err)
			} else {
				fmt.Printf("(wrote %s)\n", path)
			}
		}
	}
	if jsonDir != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "mamabench: json:", err)
			return
		}
		path := filepath.Join(jsonDir, id+".json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "mamabench: json:", err)
			return
		}
		fmt.Printf("(wrote %s)\n", path)
	}
}

func run(r *experiment.Runner, id string) error {
	switch id {
	case "tab1":
		printTable1()
	case "tab2":
		printTable2()
	case "tab3":
		printTable3()
	case "overheads":
		printOverheads()
	case "fig1":
		fmt.Print(experiment.PlayGame(4000, 11))
	case "fig2":
		rep, err := r.FigTimeline("bandit")
		if err != nil {
			return err
		}
		emit("fig2", rep)
	case "fig3":
		rep, err := r.Fig3PrefetchScaling([]int{1, 4, 8})
		if err != nil {
			return err
		}
		emit("fig3", rep)
	case "fig4":
		rep, err := r.FigTimeline("bandit-shared")
		if err != nil {
			return err
		}
		emit("fig4", rep)
	case "fig9":
		rep, err := r.Fig9Throughput([]int{1, 4, 8})
		if err != nil {
			return err
		}
		emit("fig9", rep)
	case "fig10":
		for _, c := range []int{4, 8} {
			for _, hs := range []bool{false, true} {
				key := "mumama"
				if hs {
					key = "mumama-fair"
				}
				rep, err := r.FigPerWorkload(c, key, hs)
				if err != nil {
					return err
				}
				emit(fmt.Sprintf("fig10-%s-%dC", rep.MetricName, c), rep)
			}
		}
	case "fig11":
		drams := []sim.Config{}
		for _, d := range []dram.Config{dram.DDR4(1866, 1), dram.DDR4(2400, 1), dram.DDR4(1866, 2), dram.DDR4(2400, 2)} {
			cfg := sim.DefaultConfig(4)
			cfg.DRAM = d
			drams = append(drams, cfg)
		}
		rep, err := r.Fig11Bandwidth([]int{4, 8}, drams)
		if err != nil {
			return err
		}
		emit("fig11", rep)
	case "fig12":
		rep, err := r.FigTimeline("mumama")
		if err != nil {
			return err
		}
		emit("fig12", rep)
	case "fig13":
		rep, err := r.Fig13Fairness([]int{4, 8})
		if err != nil {
			return err
		}
		emit("fig13", rep)
	case "fig14":
		rep, err := r.Fig14Frontier(4)
		if err != nil {
			return err
		}
		emit("fig14", rep)
	case "fig15a":
		rep, err := r.Fig15aAblation(8)
		if err != nil {
			return err
		}
		emit("fig15a", rep)
	case "fig15b":
		rep, err := r.Fig15bJAVSweep(4, []int{1, 2, 4, 8, 16})
		if err != nil {
			return err
		}
		emit("fig15b", rep)
	case "fig16":
		rep, err := r.FigPerWorkload(8, "mumama-profiled", false)
		if err != nil {
			return err
		}
		emit("fig16", rep)
	case "sec63":
		rep, err := r.Fig63Characteristics(4, 2.5)
		if err != nil {
			return err
		}
		fmt.Print(rep)
	case "tournament":
		spec, err := buildTournamentSpec(r.Scale, curScaleName)
		if err != nil {
			return err
		}
		ctx := r.BaseCtx
		if ctx == nil {
			ctx = context.Background()
		}
		rep, err := tournament.Run(ctx, r, spec)
		if err != nil {
			return err
		}
		emit("tournament", rep)
	default:
		return fmt.Errorf("unknown experiment id %q", id)
	}
	return nil
}

func printTable1() {
	mm := core.DefaultMuMamaConfig()
	bb := core.DefaultBanditConfig()
	fmt.Println("Table 1: prefetcher parameters")
	fmt.Printf("  Bandit: c=%g gamma=%g step=%d accesses; 64-entry stride/streamer\n", bb.C, bb.Gamma, bb.Step)
	fmt.Printf("  µMama: step=%d theta_global=1-1.4/n k_step=%d\n", mm.Step, mm.KStep)
	fmt.Printf("    local agents: c=%g gamma=%g\n", mm.LocalC, mm.LocalGamma)
	fmt.Printf("    arbiter: c=%g gamma=%g T_arbit=%d\n", mm.ArbiterC, mm.ArbiterGamma, mm.TArbit)
	fmt.Printf("    JAV cache: %d entries, gamma=%g (selection LCB=%g, a scaled-step stabilizer)\n",
		mm.JAVSize, mm.JAVGamma, mm.JAVLCB)
}

func printTable2() {
	fmt.Println("Table 2: Bandit arms")
	fmt.Printf("%-6s %-9s %-12s %-12s\n", "arm", "next-line", "stride deg", "streamer deg")
	for i, a := range prefetch.Arms {
		nl := "no"
		if a.NextLine {
			nl = "yes"
		}
		fmt.Printf("%-6d %-9s %-12d %-12d\n", i, nl, a.StrideDeg, a.StreamDeg)
	}
}

func printTable3() {
	cfg := sim.DefaultConfig(8)
	fmt.Println("Table 3: default system configuration")
	fmt.Printf("  CPU: %d cores, 4 GHz, commit width %d, ROB %d, MLP %d\n",
		cfg.Cores, cfg.CommitWidth, cfg.ROB, cfg.MLP)
	fmt.Printf("  L1D: %d KB (%dx%d), %d-cycle hit, ip_stride prefetcher\n",
		cfg.L1D.SizeBytes()>>10, cfg.L1D.Sets, cfg.L1D.Ways, cfg.L1D.HitLatency)
	fmt.Printf("  L2:  %d KB (%dx%d), %d-cycle hit, experiment-specific prefetcher\n",
		cfg.L2.SizeBytes()>>10, cfg.L2.Sets, cfg.L2.Ways, cfg.L2.HitLatency)
	fmt.Printf("  LLC: %d KB shared (%dx%d), %d-cycle hit\n",
		cfg.LLC.SizeBytes()>>10, cfg.LLC.Sets, cfg.LLC.Ways, cfg.LLC.HitLatency)
	fmt.Printf("  DRAM: %s, %.1f GB/s peak\n", cfg.DRAM.Name, cfg.DRAM.PeakGBps())
}

func printOverheads() {
	fmt.Println("µMama design overheads (§4.4)")
	for _, o := range []core.Overheads{
		core.ComputeOverheads(8, 2, 150_000),
		core.ComputeOverheads(40, 64, 150_000),
	} {
		fmt.Printf("  %d cores, %d-entry JAV: aField %d bits, storage %d bits (%d bytes); "+
			"%d B/agent/step (%d B critical path); %.1f MB/s total at %d-cycle steps\n",
			o.Cores, o.JAVEntries, o.AFieldBits, o.JAVBits, o.JAVBytes,
			o.PerStepBytes, o.CriticalBytes, o.TotalDataRateMBs, o.TimestepCycles)
	}
}

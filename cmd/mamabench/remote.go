package main

// Remote figure drivers: with -server, a figure becomes one sweep
// against mamaserved instead of a local simulation loop. The driver
// expands exactly the (mix, controller, system) cells the local path
// would run — mixes are sampled with the same deterministic seed — so
// a warm server answers the whole figure from its result cache. The
// sweep is submitted once, results stream back incrementally (and
// resume across server restarts), and the aggregation below reproduces
// the local report types bit-for-bit given the same cell results.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"micromama/internal/client"
	"micromama/internal/dram"
	"micromama/internal/experiment"
	"micromama/internal/sweep"
	"micromama/internal/tournament"
	"micromama/internal/workload"
)

// remoteRunner is the sweep-client counterpart of experiment.Runner.
type remoteRunner struct {
	ctx       context.Context
	c         *client.Client
	scale     experiment.Scale
	scaleName string
}

// run dispatches one experiment id to its remote driver.
func (rr *remoteRunner) run(id string) error {
	switch id {
	case "fig11":
		rep, err := rr.fig11()
		if err != nil {
			return err
		}
		emit("fig11", rep)
	case "fig13":
		rep, err := rr.fig13()
		if err != nil {
			return err
		}
		emit("fig13", rep)
	case "tournament":
		rep, err := rr.tournament()
		if err != nil {
			return err
		}
		emit("tournament", rep)
	default:
		return fmt.Errorf("no remote driver for %q (with -server, only fig11, fig13, and tournament are available)", id)
	}
	return nil
}

// cellResult is the slice of a job result the figure aggregations use.
type cellResult struct {
	WS         float64 `json:"ws"`
	HS         float64 `json:"hs"`
	GM         float64 `json:"gm"`
	Unfairness float64 `json:"unfairness"`
}

// runSweep submits the spec and streams results until every cell is
// terminal, returning one result per cell index. Any failed cell fails
// the whole figure: a mean over a partial sample is not the figure.
func (rr *remoteRunner) runSweep(spec sweep.Spec) (map[int]cellResult, error) {
	view, err := rr.c.SubmitSweep(rr.ctx, spec)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "mamabench: sweep %s: %d cells (%d already satisfied by cache)\n",
		view.ID, view.Cells, view.Deduped)

	results := make(map[int]cellResult)
	var failures []string
	final, err := rr.c.StreamSweepResults(rr.ctx, view.ID, func(ev sweep.Event) error {
		switch ev.Status {
		case sweep.CellDone, sweep.CellDeduped:
			var res cellResult
			if jerr := json.Unmarshal(ev.Result, &res); jerr != nil {
				return fmt.Errorf("cell %d: bad result payload: %w", ev.Cell, jerr)
			}
			results[ev.Cell] = res
		case sweep.CellFailed:
			failures = append(failures, fmt.Sprintf("cell %d [%s %s]: %s",
				ev.Cell, strings.Join(ev.Spec.Mix, ","), ev.Spec.Controller, ev.Error))
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("sweep %s: %w", view.ID, err)
	}
	if len(failures) > 0 {
		return nil, fmt.Errorf("sweep %s: %d cells failed:\n  %s",
			final.ID, len(failures), strings.Join(failures, "\n  "))
	}
	if len(results) != final.Cells {
		return nil, fmt.Errorf("sweep %s: stream delivered %d of %d cell results",
			final.ID, len(results), final.Cells)
	}
	return results, nil
}

// mixNames flattens a sampled mix into catalog trace names, one per
// core, as the server's cell spec expects.
func mixNames(m workload.Mix) []string {
	names := make([]string, len(m.Specs))
	for i, sp := range m.Specs {
		names[i] = sp.Name
	}
	return names
}

// normPct mirrors the local drivers' normalization: a relative to b,
// as a signed fraction (0.05 = +5%).
func normPct(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a/b - 1
}

// meanCell accumulates a running mean of cell results per bucket.
type meanCell struct {
	ws, hs, unfair float64
	n              int
}

func (m *meanCell) add(r cellResult) {
	m.ws += r.WS
	m.hs += r.HS
	m.unfair += r.Unfairness
	m.n++
}

func (m *meanCell) meanWS() float64 {
	if m.n == 0 {
		return 0
	}
	return m.ws / float64(m.n)
}

func (m *meanCell) meanHS() float64 {
	if m.n == 0 {
		return 0
	}
	return m.hs / float64(m.n)
}

func (m *meanCell) meanUnfairness() float64 {
	if m.n == 0 {
		return 0
	}
	return m.unfair / float64(m.n)
}

// tournament runs the controller tournament as one sweep: the exact
// cells the local driver simulates, submitted once and aggregated from
// the stream — so a warm (or distributed) cache answers a repeated
// tournament without a single new simulation.
func (rr *remoteRunner) tournament() (*tournament.Report, error) {
	spec, err := buildTournamentSpec(rr.scale, rr.scaleName)
	if err != nil {
		return nil, err
	}
	sweepSpec, metas, err := spec.SweepSpec()
	if err != nil {
		return nil, err
	}
	results, err := rr.runSweep(sweepSpec)
	if err != nil {
		return nil, err
	}
	cells := make(map[int]tournament.CellResult, len(results))
	for idx, res := range results {
		cells[idx] = tournament.CellResult{
			WS: res.WS, HS: res.HS, GM: res.GM, Unfairness: res.Unfairness,
		}
	}
	return spec.Aggregate(metas, cells), nil
}

// fig11 reproduces Figure 11 (weighted speedup across memory
// bandwidths) as a single sweep: DDR4-1866/2400 × 1/2 channels × 4/8
// cores × {bandit, mumama, pythia} × the scale's sampled mixes.
func (rr *remoteRunner) fig11() (*experiment.BandwidthReport, error) {
	type system struct{ mtps, channels int }
	systems := []system{{1866, 1}, {2400, 1}, {1866, 2}, {2400, 2}}
	coreCounts := []int{4, 8}
	controllers := []string{"bandit", "mumama", "pythia"}

	type bucket struct {
		sys        system
		cores      int
		controller string
	}
	spec := sweep.Spec{Name: "fig11-" + rr.scaleName}
	groups := make(map[int]bucket) // cell index -> aggregation bucket
	for _, sys := range systems {
		for _, n := range coreCounts {
			mixes := workload.Mixes(n, rr.scale.MixCount, rr.scale.Seed)
			for _, key := range controllers {
				for _, mix := range mixes {
					groups[len(spec.Cells)] = bucket{sys, n, key}
					spec.Cells = append(spec.Cells, sweep.Cell{
						Mix:          mixNames(mix),
						Controller:   key,
						Scale:        rr.scaleName,
						Seed:         uint64(mix.ID),
						DRAMMTps:     sys.mtps,
						DRAMChannels: sys.channels,
					})
				}
			}
		}
	}

	results, err := rr.runSweep(spec)
	if err != nil {
		return nil, err
	}
	means := make(map[bucket]*meanCell)
	for idx, res := range results {
		b := groups[idx]
		if means[b] == nil {
			means[b] = &meanCell{}
		}
		means[b].add(res)
	}

	rep := &experiment.BandwidthReport{}
	for _, sys := range systems {
		d := dram.DDR4(sys.mtps, sys.channels)
		for _, n := range coreCounts {
			banditWS := means[bucket{sys, n, "bandit"}].meanWS()
			for _, key := range []string{"mumama", "pythia"} {
				rep.Points = append(rep.Points, experiment.BandwidthPoint{
					DRAMName:   d.Name,
					PeakGBps:   d.PeakGBps(),
					Cores:      n,
					Controller: key,
					NormWS:     normPct(means[bucket{sys, n, key}].meanWS(), banditWS),
				})
			}
		}
	}
	sort.Slice(rep.Points, func(i, j int) bool {
		a, b := rep.Points[i], rep.Points[j]
		if a.Controller != b.Controller {
			return a.Controller < b.Controller
		}
		if a.Cores != b.Cores {
			return a.Cores < b.Cores
		}
		return a.PeakGBps < b.PeakGBps
	})
	return rep, nil
}

// fig13 reproduces Figures 13a/13b (unfairness and harmonic speedup)
// as a single sweep over 4/8 cores × all six controllers × the scale's
// sampled mixes on the default memory system.
func (rr *remoteRunner) fig13() (*experiment.FairnessReport, error) {
	coreCounts := []int{4, 8}
	rep := &experiment.FairnessReport{
		CoreCounts:  coreCounts,
		Controllers: []string{"no", "bandit", "bingo", "pythia", "mumama", "mumama-fair"},
		Unfairness:  map[int]map[string]float64{},
		NormHS:      map[int]map[string]float64{},
	}

	type bucket struct {
		cores      int
		controller string
	}
	spec := sweep.Spec{Name: "fig13-" + rr.scaleName}
	groups := make(map[int]bucket)
	for _, n := range coreCounts {
		mixes := workload.Mixes(n, rr.scale.MixCount, rr.scale.Seed)
		for _, key := range rep.Controllers {
			for _, mix := range mixes {
				groups[len(spec.Cells)] = bucket{n, key}
				spec.Cells = append(spec.Cells, sweep.Cell{
					Mix:        mixNames(mix),
					Controller: key,
					Scale:      rr.scaleName,
					Seed:       uint64(mix.ID),
				})
			}
		}
	}

	results, err := rr.runSweep(spec)
	if err != nil {
		return nil, err
	}
	means := make(map[bucket]*meanCell)
	for idx, res := range results {
		b := groups[idx]
		if means[b] == nil {
			means[b] = &meanCell{}
		}
		means[b].add(res)
	}

	for _, n := range coreCounts {
		rep.Unfairness[n] = map[string]float64{}
		rep.NormHS[n] = map[string]float64{}
		banditHS := means[bucket{n, "bandit"}].meanHS()
		for _, key := range rep.Controllers {
			m := means[bucket{n, key}]
			rep.Unfairness[n][key] = m.meanUnfairness()
			rep.NormHS[n][key] = normPct(m.meanHS(), banditHS)
		}
	}
	return rep, nil
}

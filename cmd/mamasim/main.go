// Command mamasim runs one multicore simulation: a workload mix under a
// chosen prefetch controller, printing per-core and system statistics.
//
// Usage:
//
//	mamasim -controller mumama -traces spec06.libquantum,spec06.mcf \
//	        -instructions 2000000
//	mamasim -list                # list catalog traces
//	mamasim -controllers         # list controllers
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"micromama/internal/dram"
	"micromama/internal/experiment"
	"micromama/internal/metrics"
	"micromama/internal/profiling"
	"micromama/internal/sim"
	"micromama/internal/telemetry"
	"micromama/internal/workload"
)

func main() {
	var (
		controller = flag.String("controller", "mumama", "prefetch controller, or a comma-separated list to compare (see -controllers)")
		traces     = flag.String("traces", "", "comma-separated trace names, one per core (see -list)")
		instr      = flag.Uint64("instructions", 2_000_000, "instruction target per core")
		step       = flag.Uint64("step", 250, "agent timestep in L2 demand accesses")
		maxFactor  = flag.Uint64("maxcycles-factor", 14, "cycle guard = instructions x factor")
		dramMTps   = flag.Int("dram", 2400, "DDR4 speed grade (MT/s)")
		channels   = flag.Int("channels", 1, "DRAM channels")
		list       = flag.Bool("list", false, "list catalog traces and exit")
		ctrls      = flag.Bool("controllers", false, "list controllers and exit")
		simPar     = flag.Int("sim-parallel", sim.ParallelismFromEnv(-1), "goroutines advancing cores of the one simulation in parallel; 0 = serial, -1 = GOMAXPROCS (default; or MAMA_SIM_PARALLEL). Results are bit-identical at any setting")
		warmup     = flag.Uint64("warmup", 0, "functional-warmup instructions per core (caches populated, no timing) before the measured run")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf    = flag.String("memprofile", "", "write a heap profile to this file at exit")
		metricsOut = flag.String("metrics-dump", "", "write telemetry in Prometheus text format to this file at exit (\"-\" for stdout)")
	)
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProf, *memProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mamasim:", err)
		os.Exit(1)
	}
	defer stopProf()
	dumpMetrics := func() {
		if *metricsOut == "" {
			return
		}
		if err := telemetry.DumpToFile(*metricsOut); err != nil {
			fmt.Fprintln(os.Stderr, "mamasim: metrics-dump:", err)
		}
	}
	defer dumpMetrics()
	// os.Exit skips deferred calls; flush profiles and metrics on the
	// error paths too.
	fatal := func(code int, args ...any) {
		fmt.Fprintln(os.Stderr, args...)
		dumpMetrics()
		stopProf()
		os.Exit(code)
	}

	if *list {
		for _, s := range workload.Catalog() {
			sens := "insensitive"
			if s.Sensitive {
				sens = "sensitive"
			}
			fmt.Printf("%-24s %-8s %s\n", s.Name, s.Class, sens)
		}
		return
	}
	if *ctrls {
		for _, k := range experiment.ControllerKeys {
			fmt.Println(k)
		}
		return
	}
	if *traces == "" {
		fatal(2, "mamasim: -traces is required (try -list)")
	}

	names := strings.Split(*traces, ",")
	specs := make([]workload.Spec, len(names))
	for i, n := range names {
		sp, err := workload.ByName(strings.TrimSpace(n))
		if err != nil {
			fatal(2, "mamasim:", err)
		}
		specs[i] = sp
	}
	mix := workload.Mix{Specs: specs}

	cfg := sim.DefaultConfig(len(specs))
	if *dramMTps != 2400 || *channels != 1 {
		cfg.DRAM = dram.DDR4(*dramMTps, *channels)
	}
	cfg.WarmupInstructions = *warmup
	if *simPar < 0 {
		// mamasim runs one simulation at a time, so the whole host
		// belongs to it.
		*simPar = runtime.GOMAXPROCS(0)
	}

	scale := experiment.Scale{Target: *instr, MaxCyclesFactor: *maxFactor, MixCount: 1, Seed: 7, Step: *step}
	runner := experiment.NewRunner(scale)
	runner.SimParallelism = *simPar

	keys := strings.Split(*controller, ",")
	if len(keys) > 1 {
		// Comparison mode: one summary row per controller.
		fmt.Printf("system: %d cores, %s (%.1f GB/s)\n\n", cfg.Cores, cfg.DRAM.Name, cfg.DRAM.PeakGBps())
		fmt.Printf("%-16s %8s %8s %8s %10s %12s\n", "controller", "WS", "HS", "GM", "unfairness", "L2 prefetches")
		for _, key := range keys {
			res, err := runner.RunMix(mix, cfg, strings.TrimSpace(key), experiment.Options{})
			if err != nil {
				fatal(1, "mamasim:", err)
			}
			fmt.Printf("%-16s %8.3f %8.3f %8.3f %10.2f %12d\n",
				key, res.WS, res.HS, metrics.GM(res.Speedups), res.Unfairness,
				res.Result.TotalL2Prefetches())
		}
		return
	}

	res, err := runner.RunMix(mix, cfg, *controller, experiment.Options{})
	if err != nil {
		fatal(1, "mamasim:", err)
	}

	fmt.Printf("controller: %s   system: %d cores, %s (%.1f GB/s)\n\n",
		res.Result.Controller, cfg.Cores, cfg.DRAM.Name, cfg.DRAM.PeakGBps())
	fmt.Printf("%-24s %10s %12s %8s %10s %10s\n", "trace", "IPC", "speedup", "L2 MPKI", "L2 pf", "pf useful")
	for i, c := range res.Result.Cores {
		fmt.Printf("%-24s %10.3f %12.3f %8.1f %10d %10d\n",
			c.Trace, c.IPC, res.Speedups[i], c.L2MPKI(), c.L2PrefIssued, c.L2.PrefetchUseful)
	}
	fmt.Printf("\nWS=%.3f  HS=%.3f  GM=%.3f  Unfairness=%.2f\n",
		res.WS, res.HS, metrics.GM(res.Speedups), res.Unfairness)
	d := res.Result.DRAM
	fmt.Printf("DRAM: %d reads, %d writes, %.0f%% row hits, %d prefetches rejected\n",
		d.Reads, d.Writes, 100*float64(d.RowHits)/float64(d.RowHits+d.RowMisses+1), d.PrefetchesRejected)
}

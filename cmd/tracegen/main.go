// Command tracegen materializes catalog traces into binary MMT1 files
// that the simulator (and external tools) can replay.
//
// Usage:
//
//	tracegen -out traces/ -n 5000000 spec06.libquantum ligra.BFS
//	tracegen -out traces/ -n 1000000 all
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"micromama/internal/trace"
	"micromama/internal/workload"
)

func main() {
	out := flag.String("out", ".", "output directory")
	n := flag.Uint64("n", 1_000_000, "instructions per trace")
	flag.Parse()

	names := flag.Args()
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "tracegen: name traces to generate, or 'all'")
		os.Exit(2)
	}
	var specs []workload.Spec
	if len(names) == 1 && names[0] == "all" {
		specs = workload.Catalog()
	} else {
		for _, name := range names {
			sp, err := workload.ByName(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, "tracegen:", err)
				os.Exit(2)
			}
			specs = append(specs, sp)
		}
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	for _, sp := range specs {
		file := filepath.Join(*out, strings.ReplaceAll(sp.Name, "/", "_")+".mmt")
		wrote, err := trace.WriteFile(file, sp.New(), *n)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracegen:", err)
			os.Exit(1)
		}
		fmt.Printf("%-24s -> %s (%d records)\n", sp.Name, file, wrote)
	}
}

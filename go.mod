module micromama

go 1.22

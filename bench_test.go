// Package micromama_bench regenerates every table and figure of the
// paper as Go benchmarks (see the experiment index in DESIGN.md). Each
// benchmark runs the corresponding experiment once per iteration and
// reports the headline quantity via b.ReportMetric, printing the full
// report the first time.
//
// The scale is selected with MAMA_BENCH_SCALE (tiny | small | default |
// full; default "tiny" so `go test -bench=.` completes in minutes on a
// laptop). Reports are cached across benchmarks in one process, so
// re-running a benchmark with higher -benchtime does not redo the
// simulations.
package micromama_bench

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"

	"micromama/internal/core"
	"micromama/internal/dram"
	"micromama/internal/experiment"
	"micromama/internal/prefetch"
	"micromama/internal/sim"
	"micromama/internal/trace"
)

var (
	runnerOnce sync.Once
	runner     *experiment.Runner

	cacheMu       sync.Mutex
	cache         = map[string]interface{}{}
	cacheInflight = map[string]chan struct{}{}
)

func benchScale() experiment.Scale {
	switch os.Getenv("MAMA_BENCH_SCALE") {
	case "small":
		return experiment.ScaleSmall
	case "default":
		return experiment.ScaleDefault
	case "full":
		return experiment.ScaleFull
	default:
		return experiment.ScaleTiny
	}
}

func getRunner() *experiment.Runner {
	runnerOnce.Do(func() { runner = experiment.NewRunner(benchScale()) })
	return runner
}

// cached memoizes an experiment across benchmark iterations and
// benchmarks. The lock is scoped to cache bookkeeping only — the
// experiment itself runs unlocked, with per-key in-flight channels
// coalescing concurrent callers, so one slow experiment cannot
// serialize unrelated benchmarks.
func cached[T any](b *testing.B, key string, f func() (T, error)) T {
	b.Helper()
	for {
		cacheMu.Lock()
		if v, ok := cache[key]; ok {
			cacheMu.Unlock()
			return v.(T)
		}
		ch, inflight := cacheInflight[key]
		if inflight {
			cacheMu.Unlock()
			<-ch // leader finished (or failed); re-check the cache
			continue
		}
		ch = make(chan struct{})
		cacheInflight[key] = ch
		cacheMu.Unlock()

		v, err := f()

		cacheMu.Lock()
		delete(cacheInflight, key)
		if err == nil {
			cache[key] = v
		}
		cacheMu.Unlock()
		close(ch)
		if err != nil {
			b.Fatal(err)
		}
		fmt.Printf("\n%v\n", v)
		return v
	}
}

// --- Tables ---------------------------------------------------------

// BenchmarkTable1Params pins the paper's Table 1 hyperparameters.
func BenchmarkTable1Params(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := core.DefaultMuMamaConfig()
		if cfg.Step != 800 || cfg.TArbit != 5 || cfg.KStep != 5 || cfg.JAVSize != 2 {
			b.Fatal("Table 1 defaults drifted")
		}
	}
}

// BenchmarkTable2Arms exercises every Table 2 arm configuration.
func BenchmarkTable2Arms(b *testing.B) {
	e := prefetch.NewEnsemble()
	b.ReportMetric(float64(prefetch.NumArms), "arms")
	for i := 0; i < b.N; i++ {
		e.SetArm(i % prefetch.NumArms)
		e.OnAccess(0x40, uint64(i)*64, false, nil)
	}
}

// BenchmarkTable3System builds the Table 3 system.
func BenchmarkTable3System(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig(8)
		if err := cfg.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figures --------------------------------------------------------

// BenchmarkFig1Game: independent learners reach the Nash equilibrium of
// the Figure 1 game; the metric is the steady-state Nash rate.
func BenchmarkFig1Game(b *testing.B) {
	var rep *experiment.GameReport
	for i := 0; i < b.N; i++ {
		rep = experiment.PlayGame(4000, 11)
	}
	b.ReportMetric(rep.NashRate, "nash-rate")
	b.ReportMetric(rep.SupervisedTotal-rep.IndependentTotal, "supervisor-gain")
}

// BenchmarkFig2Timeline: policy timeline of uncoordinated Bandits on the
// motivating mix.
func BenchmarkFig2Timeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := cached(b, "fig2", func() (*experiment.TimelineReport, error) {
			return getRunner().FigTimeline("bandit")
		})
		b.ReportMetric(float64(len(rep.Samples)), "policy-changes")
	}
}

// BenchmarkFig3PrefetchScaling: prefetches issued vs core count; the
// metric is Bandit's 8-core blow-up factor (paper: ~10x vs ~8x for the
// others).
func BenchmarkFig3PrefetchScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := cached(b, "fig3", func() (*experiment.PrefetchScalingReport, error) {
			return getRunner().Fig3PrefetchScaling([]int{1, 4, 8})
		})
		n := len(rep.CoreCounts) - 1
		b.ReportMetric(rep.Normalized["bandit"][n], "bandit-8C-x")
		b.ReportMetric(rep.Normalized["bingo"][n], "bingo-8C-x")
	}
}

// BenchmarkFig4SharedReward: policy timeline under the naïve shared
// reward (credit-assignment problem).
func BenchmarkFig4SharedReward(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := cached(b, "fig4", func() (*experiment.TimelineReport, error) {
			return getRunner().FigTimeline("bandit-shared")
		})
		b.ReportMetric(float64(len(rep.Samples)), "policy-changes")
	}
}

// BenchmarkFig9Throughput: average WS vs Bandit at 1/4/8 cores (paper:
// µMama +1.9%/+2.1% at 4/8 cores).
func BenchmarkFig9Throughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := cached(b, "fig9", func() (*experiment.ThroughputReport, error) {
			return getRunner().Fig9Throughput([]int{1, 4, 8})
		})
		b.ReportMetric(rep.NormWS[4]["mumama"]*100, "mumama-4C-pct")
		b.ReportMetric(rep.NormWS[8]["mumama"]*100, "mumama-8C-pct")
	}
}

// BenchmarkFig10PerWorkload: per-mix WS (µMama) and HS (µMama-Fair)
// normalized to Bandit.
func BenchmarkFig10PerWorkload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ws := cached(b, "fig10-ws4", func() (*experiment.PerWorkloadReport, error) {
			return getRunner().FigPerWorkload(4, "mumama", false)
		})
		hs := cached(b, "fig10-hs4", func() (*experiment.PerWorkloadReport, error) {
			return getRunner().FigPerWorkload(4, "mumama-fair", true)
		})
		b.ReportMetric(ws.Average*100, "ws-avg-pct")
		b.ReportMetric(hs.Average*100, "hs-avg-pct")
	}
}

// BenchmarkFig11Bandwidth: WS vs Bandit across memory bandwidths
// (paper: µMama's edge grows when bandwidth shrinks).
func BenchmarkFig11Bandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := cached(b, "fig11", func() (*experiment.BandwidthReport, error) {
			var drams []sim.Config
			for _, d := range []dram.Config{dram.DDR4(1866, 1), dram.DDR4(2400, 1), dram.DDR4(2400, 2)} {
				cfg := sim.DefaultConfig(4)
				cfg.DRAM = d
				drams = append(drams, cfg)
			}
			return getRunner().Fig11Bandwidth([]int{4}, drams)
		})
		// Metric: µMama's gain at the most constrained point.
		for _, p := range rep.Points {
			if p.Controller == "mumama" && p.PeakGBps < 16 {
				b.ReportMetric(p.NormWS*100, "mumama-lowbw-pct")
			}
		}
	}
}

// BenchmarkFig12MuMamaTimeline: µMama's policy timeline with
// JAV-dictated shading (paper §6.5: 64-67% of steps dictated).
func BenchmarkFig12MuMamaTimeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := cached(b, "fig12", func() (*experiment.TimelineReport, error) {
			return getRunner().FigTimeline("mumama")
		})
		b.ReportMetric(rep.JointFraction*100, "jav-dictated-pct")
	}
}

// BenchmarkFig13Fairness: unfairness and HS by prefetcher (paper:
// µMama-Fair ~-30% unfairness, +9.4/+10.4% HS vs Bandit).
func BenchmarkFig13Fairness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := cached(b, "fig13", func() (*experiment.FairnessReport, error) {
			return getRunner().Fig13Fairness([]int{4, 8})
		})
		b.ReportMetric(rep.NormHS[4]["mumama-fair"]*100, "fair-hs-4C-pct")
		b.ReportMetric(rep.Unfairness[4]["mumama-fair"]/rep.Unfairness[4]["bandit"], "unfair-ratio-4C")
	}
}

// BenchmarkFig14Frontier: the throughput/fairness Pareto frontier
// (paper: µMama variants form the frontier; Bandit is non-Pareto).
func BenchmarkFig14Frontier(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := cached(b, "fig14", func() (*experiment.FrontierReport, error) {
			return getRunner().Fig14Frontier(4)
		})
		var banditDominated bool
		var bp experiment.FrontierPoint
		for _, p := range rep.Points {
			if p.Controller == "bandit" {
				bp = p
			}
		}
		for _, p := range rep.Points {
			if p.Controller != "bandit" && p.WS >= bp.WS && p.Fairness >= bp.Fairness {
				banditDominated = true
			}
		}
		v := 0.0
		if banditDominated {
			v = 1
		}
		b.ReportMetric(v, "bandit-dominated")
	}
}

// BenchmarkFig15aAblation: component breakdown (GRW / JAV / full /
// profiled) at 8 cores.
func BenchmarkFig15aAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := cached(b, "fig15a", func() (*experiment.AblationReport, error) {
			return getRunner().Fig15aAblation(8)
		})
		b.ReportMetric(rep.NormWS["mumama"]*100, "mumama-pct")
		b.ReportMetric(rep.NormWS["mumama-profiled"]*100, "profiled-pct")
	}
}

// BenchmarkFig15bJAVSize: WS vs JAV cache size at 4 cores.
func BenchmarkFig15bJAVSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := cached(b, "fig15b", func() (*experiment.JAVSweepReport, error) {
			return getRunner().Fig15bJAVSweep(4, []int{1, 2, 4, 8, 16})
		})
		b.ReportMetric(rep.NormWS[1]*100, "jav2-pct")
	}
}

// BenchmarkFig16Profiled: per-mix WS of µMama-Profiled vs Bandit at 8
// cores (paper: +3.06% average, fewer slowdown mixes).
func BenchmarkFig16Profiled(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := cached(b, "fig16", func() (*experiment.PerWorkloadReport, error) {
			return getRunner().FigPerWorkload(8, "mumama-profiled", false)
		})
		b.ReportMetric(rep.Average*100, "avg-pct")
	}
}

// --- Ablation benches for DESIGN.md's called-out choices -------------

// BenchmarkAblationThetaSweep sweeps the global-reward threshold
// θ_global (DESIGN.md ablation).
func BenchmarkAblationThetaSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ws := cached(b, "ablation-theta", func() ([]float64, error) {
			r := getRunner()
			mixes := r.MixesFor(4)
			cfg := sim.DefaultConfig(4)
			var out []float64
			for _, theta := range []float64{0.3, 0.65, 0.9} {
				rs, err := r.RunMixes(mixes, cfg, "mumama", experiment.Options{Theta: theta})
				if err != nil {
					return nil, err
				}
				out = append(out, experiment.MeanWS(rs))
			}
			return out, nil
		})
		b.ReportMetric(ws[1], "ws-theta-default")
	}
}

// BenchmarkAblationTarbit sweeps the arbiter period (DESIGN.md
// ablation).
func BenchmarkAblationTarbit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ws := cached(b, "ablation-tarbit", func() ([]float64, error) {
			r := getRunner()
			mixes := r.MixesFor(4)
			cfg := sim.DefaultConfig(4)
			var out []float64
			for _, ta := range []int{2, 5, 10} {
				rs, err := r.RunMixes(mixes, cfg, "mumama", experiment.Options{TArbit: ta})
				if err != nil {
					return nil, err
				}
				out = append(out, experiment.MeanWS(rs))
			}
			return out, nil
		})
		b.ReportMetric(ws[1], "ws-tarbit5")
	}
}

// BenchmarkAblationJAVLCB compares the paper's raw-argmax JAV selection
// (lcb = 0) with this repo's confidence-penalized default (DESIGN.md
// ablation).
func BenchmarkAblationJAVLCB(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ws := cached(b, "ablation-lcb", func() ([]float64, error) {
			r := getRunner()
			mixes := r.MixesFor(4)
			cfg := sim.DefaultConfig(4)
			var out []float64
			for _, lcb := range []float64{-1, 0.2} { // -1 => raw argmax
				var sum float64
				for _, mix := range mixes {
					c := core.DefaultMuMamaConfig()
					c.Step = r.Scale.Step
					c.JAVLCB = lcb
					res, err := r.RunMixWith(mix, cfg, core.NewMuMama(c))
					if err != nil {
						return nil, err
					}
					sum += res.WS
				}
				out = append(out, sum/float64(len(mixes)))
			}
			return out, nil
		})
		b.ReportMetric(ws[0], "ws-raw-argmax")
		b.ReportMetric(ws[1], "ws-lcb")
	}
}

// BenchmarkAblationSync compares timestep synchronization settings
// (k_step cap values; DESIGN.md ablation).
func BenchmarkAblationSync(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ws := cached(b, "ablation-sync", func() ([]float64, error) {
			r := getRunner()
			mixes := r.MixesFor(4)
			cfg := sim.DefaultConfig(4)
			var out []float64
			for _, kstep := range []int{2, 5, 20} {
				var sum float64
				for _, mix := range mixes {
					c := core.DefaultMuMamaConfig()
					c.Step = r.Scale.Step
					c.KStep = kstep
					res, err := r.RunMixWith(mix, cfg, core.NewMuMama(c))
					if err != nil {
						return nil, err
					}
					sum += res.WS
				}
				out = append(out, sum/float64(len(mixes)))
			}
			return out, nil
		})
		b.ReportMetric(ws[1], "ws-kstep5")
	}
}

// BenchmarkSimulatorThroughput measures raw simulator speed
// (instructions simulated per second, single core, no prefetching).
func BenchmarkSimulatorThroughput(b *testing.B) {
	mix := experiment.MotivatingMix()
	b.ResetTimer()
	var instr uint64
	for i := 0; i < b.N; i++ {
		sys, err := sim.New(sim.DefaultConfig(1), mix.Traces()[:1], nil)
		if err != nil {
			b.Fatal(err)
		}
		res := sys.Run(200_000, 0)
		instr += res.Cores[0].Instructions
	}
	b.ReportMetric(float64(instr)/b.Elapsed().Seconds(), "instr/s")
}

// BenchmarkSimulatorThroughputParallel measures aggregate multicore
// simulation speed under the parallel epoch engine: 1/2/4/8 simulated
// cores, each at parallelism 0 (the serial reference path) and
// GOMAXPROCS. The system is built and warmed outside the timed loop and
// stepped with the chunked Advance API, so steady-state allocs/op must
// be 0 on both paths. The compute-bound per-core workloads keep most
// work core-private — the regime the engine targets — making the
// parallel/serial instr/s ratio at 8 cores the headline speedup.
func BenchmarkSimulatorThroughputParallel(b *testing.B) {
	modes := []struct {
		name string
		par  int
	}{{"serial", 0}, {"parallel", runtime.GOMAXPROCS(0)}}
	for _, cores := range []int{1, 2, 4, 8} {
		for _, mode := range modes {
			b.Run(fmt.Sprintf("%dc/%s", cores, mode.name), func(b *testing.B) {
				cfg := sim.DefaultConfig(cores)
				cfg.Parallelism = mode.par
				traces := make([]trace.Reader, cores)
				for i := range traces {
					traces[i] = trace.NewCompute(fmt.Sprintf("bench.compute.%d", i), trace.ComputeConfig{
						Seed: 17 + uint64(i)*1031, WorkingSet: 32 << 10, MemRatio: 0.3, Length: 1 << 62,
					})
				}
				sys, err := sim.New(cfg, traces, nil)
				if err != nil {
					b.Fatal(err)
				}
				defer sys.Close()

				total := func() uint64 {
					var t uint64
					for i := 0; i < cores; i++ {
						t += sys.Instructions(i)
					}
					return t
				}
				// Warm: spins up the worker pool and runs past cold-start
				// growth of the pending-miss FIFOs and cache arrays. The
				// infinite traces and max target mean no core ever freezes.
				const never, chunk = ^uint64(0), 64
				sys.Advance(never, 512)
				start := total()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sys.Advance(never, chunk)
				}
				b.StopTimer()
				b.ReportMetric(float64(total()-start)/b.Elapsed().Seconds(), "instr/s")
			})
		}
	}
}

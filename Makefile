# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet fmt fmt-check lint test race chaos sweep-smoke cluster-smoke tournament-smoke check bench bench-smoke bench-baseline bench-paper figures examples clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -w .

# Fail (and list the offending files) if any tracked Go file is not
# gofmt-clean; CI runs this so formatting never drifts.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Lint gate: go vet always, plus staticcheck (configured by
# staticcheck.conf) when the binary is available. CI installs
# staticcheck explicitly; local machines without it still get vet so
# the target never demands a network fetch.
lint:
	$(GO) vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not on PATH; ran go vet only (CI runs both)"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Chaos suite: the serving-stack resilience tests (panic isolation,
# graceful drain, crash-safe cache and sweep persistence, mid-sweep
# worker death, client retries) under the race detector with fault
# injection activated through the environment. The seeded slow-job fault stretches every 5th run to
# shake out drain/timeout races; counter- and PRNG-based rules are
# deterministic, so a red run reproduces exactly from the same seed.
chaos:
	MAMA_FAULTS="server/worker/slow=every:5" MAMA_FAULTS_SEED=7 \
		$(GO) test -race -count=1 ./internal/faultinject ./internal/server ./internal/client ./internal/sweep

# Tiny real sweep driven end to end against an in-process server:
# submit → stream → restart over the same cache dir → same-cells
# resubmission answered entirely from the warm cache with zero new
# simulations. See scripts/sweepsmoke.
# Smoke targets capture their output to <name>.out (portably preserving
# the exit status) so CI can upload the file as a failure artifact.
sweep-smoke:
	@$(GO) run ./scripts/sweepsmoke > sweep-smoke.out 2>&1; st=$$?; \
		cat sweep-smoke.out; exit $$st

# Three sharded in-process nodes (gossip membership) driven end to
# end: a cold sweep submitted to node A is routed across the
# consistent-hash ring (every cell simulated exactly once
# cluster-wide), the same cells resubmitted to node C complete with
# zero new simulations served by cross-shard cache fetches, then a
# churn phase kills node B mid-sweep (confirm-dead + exactly-once
# completion on the survivors) and restarts it (gossip rejoin with a
# bumped incarnation, anti-entropy cache repair, warm resubmission
# with zero new simulations). See scripts/clustersmoke.
cluster-smoke:
	@$(GO) run ./scripts/clustersmoke > cluster-smoke.out 2>&1; st=$$?; \
		cat cluster-smoke.out; exit $$st

# The controller tournament driven end to end against an in-process
# server: engine-dispatch assertions (PhaseSelect on the parallel
# epoch path, CoordRL on the serial fallback), a 3-controller ×
# 2-mix × 1-seed tournament with a complete deterministic leaderboard,
# then a restart + warm resubmission answered entirely from cache with
# zero new simulations. See scripts/tournamentsmoke.
tournament-smoke:
	@$(GO) run ./scripts/tournamentsmoke > tournament-smoke.out 2>&1; st=$$?; \
		cat tournament-smoke.out; exit $$st

# The default gate: compile everything, lint (vet + staticcheck when
# available), check formatting, run the test suite, re-run it under the
# race detector, run the chaos suite with fault injection enabled,
# drive a real sweep, the 3-node cluster, and the controller tournament
# end to end, then make sure the hot-path benchmarks still run and stay
# allocation-free (1 iteration; catches bit-rot and alloc regressions,
# not timing regressions).
check: build lint fmt-check test race chaos sweep-smoke cluster-smoke tournament-smoke bench-smoke

# Hot-path benchmark suite: cache/MSHR microbenchmarks, the per-core
# advance benchmarks, and end-to-end simulator throughput, compared
# against the checked-in baseline. Regenerate the baseline on a quiet
# machine with `make bench-baseline`.
BENCH_PATTERN = BenchmarkLookup|BenchmarkFillEvict|BenchmarkMarkDirty|BenchmarkCoreAdvance|BenchmarkSimulatorThroughput|BenchmarkTrace
BENCH_PKGS    = ./internal/cache ./internal/sim ./internal/trace .

bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem $(BENCH_PKGS) | tee bench.out
	$(GO) run ./scripts/benchdiff bench.out

# One iteration of every hot-path benchmark, gated on allocs/op only:
# allocation counts are deterministic even at -benchtime=1x, while
# ns/op at one iteration is noise — so this stays green on busy
# machines and CI runners but still fails if the allocation-free
# invariant breaks. Zero-baseline benches are strict regardless of
# tolerance (0 -> any alloc fails); the generous -tol only gives slack
# to benches that legitimately allocate, whose per-op counts are
# setup-dominated at a single iteration (SimulatorThroughput reads
# ~135 allocs/op at 1x vs 40 at full benchtime).
bench-smoke:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime=1x -benchmem $(BENCH_PKGS) | tee bench-smoke.out
	$(GO) run ./scripts/benchdiff -tol 4 -gate allocs/op bench-smoke.out

bench-baseline:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -count=3 $(BENCH_PKGS) | tee bench.out
	$(GO) run ./scripts/benchdiff -update bench.out

# Tiny-scale benchmark sweep over every paper table/figure.
bench-paper:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Regenerate the paper's figures (text + SVG + JSON) at default scale.
figures:
	$(GO) run ./cmd/mamabench -scale default -svg figures -json data all

examples:
	$(GO) run ./examples/gametheory
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/fairness
	$(GO) run ./examples/bandwidth
	$(GO) run ./examples/policytrace

clean:
	rm -f fig2_bandit.svg fig4_shared.svg fig12_mumama.svg
	rm -f bench.out bench-smoke.out micromama.test *.test
	rm -f sweep-smoke.out cluster-smoke.out tournament-smoke.out

# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test race check bench bench-smoke bench-baseline bench-paper figures examples clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The default gate: compile everything, vet, run the test suite, re-run
# it under the race detector, then make sure the hot-path benchmarks
# still run (1 iteration; catches bit-rot, not regressions).
check: build vet test race bench-smoke

# Hot-path benchmark suite: cache/MSHR microbenchmarks, the per-core
# advance benchmarks, and end-to-end simulator throughput, compared
# against the checked-in baseline. Regenerate the baseline on a quiet
# machine with `make bench-baseline`.
BENCH_PATTERN = BenchmarkLookup|BenchmarkFillEvict|BenchmarkMarkDirty|BenchmarkCoreAdvance|BenchmarkSimulatorThroughput|BenchmarkTrace
BENCH_PKGS    = ./internal/cache ./internal/sim ./internal/trace .

bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem $(BENCH_PKGS) | tee bench.out
	$(GO) run ./scripts/benchdiff bench.out

bench-smoke:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchtime=1x -benchmem $(BENCH_PKGS) > /dev/null

bench-baseline:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -count=3 $(BENCH_PKGS) | tee bench.out
	$(GO) run ./scripts/benchdiff -update bench.out

# Tiny-scale benchmark sweep over every paper table/figure.
bench-paper:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Regenerate the paper's figures (text + SVG + JSON) at default scale.
figures:
	$(GO) run ./cmd/mamabench -scale default -svg figures -json data all

examples:
	$(GO) run ./examples/gametheory
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/fairness
	$(GO) run ./examples/bandwidth
	$(GO) run ./examples/policytrace

clean:
	rm -f fig2_bandit.svg fig4_shared.svg fig12_mumama.svg bench.out

# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test race check bench figures examples clean

all: check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The default gate: compile everything, vet, run the test suite, then
# re-run it under the race detector.
check: build vet test race

# Tiny-scale benchmark sweep over every paper table/figure.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x .

# Regenerate the paper's figures (text + SVG + JSON) at default scale.
figures:
	$(GO) run ./cmd/mamabench -scale default -svg figures -json data all

examples:
	$(GO) run ./examples/gametheory
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/fairness
	$(GO) run ./examples/bandwidth
	$(GO) run ./examples/policytrace

clean:
	rm -f fig2_bandit.svg fig4_shared.svg fig12_mumama.svg

// Package bandit implements the multi-armed bandit algorithms used by
// Micro-MAMA: the Upper Confidence Bound (UCB) algorithm and its
// discounted variant (DUCB) for time-varying environments.
//
// A DUCB agent tracks, per arm, a discounted play count n_i and a
// discounted reward sum s_i. At each step every arm's statistics decay by
// the discount factor gamma, and the chosen arm additionally accumulates
// the observed reward. The arm played is the one maximizing
//
//	value(a_i) = s_i/n_i + c*sqrt(ln(T)/n_i)
//
// where T is the discounted total play count. Before any exploitation the
// agent performs an initial exploration pass, playing each arm once.
package bandit

import (
	"fmt"
	"math"
)

// Config parameterizes a DUCB agent.
type Config struct {
	// Arms is the number of actions available to the agent.
	Arms int
	// C controls the exploration/exploitation tradeoff (the bonus weight).
	C float64
	// Gamma is the discount factor in (0, 1]. Gamma == 1 yields plain UCB.
	Gamma float64
	// InitOffset rotates the initial exploration order: the k-th
	// exploration step plays arm (InitOffset + k) mod Arms. Giving each
	// of several co-located agents a different offset de-correlates
	// their exploration so the joint actions they produce are diverse.
	InitOffset int
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Arms < 1 {
		return fmt.Errorf("bandit: Arms must be >= 1, got %d", c.Arms)
	}
	if c.C < 0 {
		return fmt.Errorf("bandit: C must be >= 0, got %g", c.C)
	}
	if c.Gamma <= 0 || c.Gamma > 1 {
		return fmt.Errorf("bandit: Gamma must be in (0, 1], got %g", c.Gamma)
	}
	return nil
}

// DUCB is a discounted upper-confidence-bound bandit agent.
// The zero value is not usable; construct with New.
type DUCB struct {
	cfg     Config
	n       []float64 // discounted play counts per arm
	s       []float64 // discounted reward sums per arm
	plays   []uint64  // raw (undiscounted) play counts, for introspection
	initIdx int       // next arm to play during the initial exploration pass
	steps   uint64    // total Update calls
}

// New constructs a DUCB agent. It panics if cfg is invalid, since an
// invalid bandit configuration is a programming error, not a runtime
// condition.
func New(cfg Config) *DUCB {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &DUCB{
		cfg:   cfg,
		n:     make([]float64, cfg.Arms),
		s:     make([]float64, cfg.Arms),
		plays: make([]uint64, cfg.Arms),
	}
}

// Arms returns the number of arms.
func (d *DUCB) Arms() int { return d.cfg.Arms }

// Steps returns the number of completed Update calls.
func (d *DUCB) Steps() uint64 { return d.steps }

// Exploring reports whether the agent is still in its initial
// exploration pass (some arm has never been played).
func (d *DUCB) Exploring() bool { return d.initIdx < d.cfg.Arms }

// Select returns the arm to play at the current step. During the initial
// exploration pass arms are played round-robin (rotated by InitOffset);
// afterwards the highest-value arm is chosen (ties broken toward the
// lowest index).
func (d *DUCB) Select() int {
	if d.initIdx < d.cfg.Arms {
		return (d.initIdx + d.cfg.InitOffset) % d.cfg.Arms
	}
	best, bestVal := 0, math.Inf(-1)
	t := d.total()
	logT := math.Log(math.Max(t, math.E)) // keep the bonus non-negative
	for i := range d.n {
		v := d.value(i, logT)
		if v > bestVal {
			best, bestVal = i, v
		}
	}
	return best
}

// Value returns the current UCB value of arm i (mean + exploration
// bonus). Arms never played have +Inf value.
func (d *DUCB) Value(i int) float64 {
	t := d.total()
	return d.value(i, math.Log(math.Max(t, math.E)))
}

func (d *DUCB) value(i int, logT float64) float64 {
	if d.n[i] <= 0 {
		return math.Inf(1)
	}
	return d.s[i]/d.n[i] + d.cfg.C*math.Sqrt(logT/d.n[i])
}

// Mean returns the discounted average reward of arm i, or 0 if the arm
// has no weight.
func (d *DUCB) Mean(i int) float64 {
	if d.n[i] <= 0 {
		return 0
	}
	return d.s[i] / d.n[i]
}

// Weight returns the discounted play count of arm i.
func (d *DUCB) Weight(i int) float64 { return d.n[i] }

// Plays returns the raw play count of arm i.
func (d *DUCB) Plays(i int) uint64 { return d.plays[i] }

// Update records the reward observed for playing arm. All arms decay by
// gamma; the played arm accumulates the reward. Update also advances the
// initial exploration pass.
func (d *DUCB) Update(arm int, reward float64) {
	if arm < 0 || arm >= d.cfg.Arms {
		panic(fmt.Sprintf("bandit: Update arm %d out of range [0,%d)", arm, d.cfg.Arms))
	}
	g := d.cfg.Gamma
	if g < 1 {
		for i := range d.n {
			d.n[i] *= g
			d.s[i] *= g
		}
	}
	d.n[arm]++
	d.s[arm] += reward
	d.plays[arm]++
	d.steps++
	if d.initIdx < d.cfg.Arms && arm == (d.initIdx+d.cfg.InitOffset)%d.cfg.Arms {
		d.initIdx++
	}
}

// total returns the discounted total play count across arms.
func (d *DUCB) total() float64 {
	var t float64
	for _, v := range d.n {
		t += v
	}
	return t
}

// BestMean returns the arm with the highest discounted mean reward and
// that mean. It ignores exploration bonuses. Arms with zero weight lose
// to any arm with weight.
func (d *DUCB) BestMean() (arm int, mean float64) {
	arm, mean = 0, math.Inf(-1)
	for i := range d.n {
		if d.n[i] <= 0 {
			continue
		}
		if m := d.s[i] / d.n[i]; m > mean {
			arm, mean = i, m
		}
	}
	if math.IsInf(mean, -1) {
		return 0, 0
	}
	return arm, mean
}

// Reset clears all learned state, returning the agent to its initial
// exploration pass.
func (d *DUCB) Reset() {
	for i := range d.n {
		d.n[i], d.s[i], d.plays[i] = 0, 0, 0
	}
	d.initIdx = 0
	d.steps = 0
}

package bandit_test

import (
	"fmt"

	"micromama/internal/bandit"
)

func ExampleDUCB() {
	// A two-armed bandit where arm 1 pays more: after the initial
	// exploration pass the agent exploits arm 1.
	d := bandit.New(bandit.Config{Arms: 2, C: 0.05, Gamma: 0.99})
	rewards := []float64{0.2, 0.9}
	for i := 0; i < 100; i++ {
		arm := d.Select()
		d.Update(arm, rewards[arm])
	}
	fmt.Println("best arm:", d.Select())
	fmt.Println("arm 1 played more:", d.Plays(1) > d.Plays(0))
	// Output:
	// best arm: 1
	// arm 1 played more: true
}

package bandit

import (
	"math"
	"testing"
	"testing/quick"

	"micromama/internal/xrand"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		cfg Config
		ok  bool
	}{
		{Config{Arms: 2, C: 0.1, Gamma: 0.99}, true},
		{Config{Arms: 1, C: 0, Gamma: 1}, true},
		{Config{Arms: 0, C: 0.1, Gamma: 0.99}, false},
		{Config{Arms: 2, C: -0.1, Gamma: 0.99}, false},
		{Config{Arms: 2, C: 0.1, Gamma: 0}, false},
		{Config{Arms: 2, C: 0.1, Gamma: 1.5}, false},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v) err=%v, want ok=%v", c.cfg, err, c.ok)
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New with invalid config did not panic")
		}
	}()
	New(Config{Arms: 0, C: 1, Gamma: 1})
}

func TestInitialExplorationVisitsEveryArm(t *testing.T) {
	d := New(Config{Arms: 5, C: 0.1, Gamma: 0.99})
	seen := map[int]bool{}
	for i := 0; i < 5; i++ {
		if !d.Exploring() {
			t.Fatalf("left exploration after %d plays", i)
		}
		a := d.Select()
		seen[a] = true
		d.Update(a, 1.0)
	}
	if d.Exploring() {
		t.Error("still exploring after one pass")
	}
	if len(seen) != 5 {
		t.Errorf("initial pass visited %d arms, want 5", len(seen))
	}
}

func TestInitOffsetRotatesOrder(t *testing.T) {
	d := New(Config{Arms: 5, C: 0.1, Gamma: 0.99, InitOffset: 3})
	want := []int{3, 4, 0, 1, 2}
	for i, w := range want {
		a := d.Select()
		if a != w {
			t.Fatalf("exploration step %d selected arm %d, want %d", i, a, w)
		}
		d.Update(a, 1.0)
	}
}

func TestConvergesToBestArm(t *testing.T) {
	d := New(Config{Arms: 4, C: 0.01, Gamma: 0.999})
	rewards := []float64{0.2, 0.9, 0.5, 0.4}
	r := xrand.New(11)
	for i := 0; i < 2000; i++ {
		a := d.Select()
		d.Update(a, rewards[a]+0.05*(r.Float64()-0.5))
	}
	if d.Plays(1) < 1500 {
		t.Errorf("best arm played only %d/2000 times", d.Plays(1))
	}
	if arm, _ := d.BestMean(); arm != 1 {
		t.Errorf("BestMean arm = %d, want 1", arm)
	}
}

func TestDiscountingAdaptsToChange(t *testing.T) {
	d := New(Config{Arms: 2, C: 0.05, Gamma: 0.95})
	// Arm 0 is best for a while...
	for i := 0; i < 300; i++ {
		a := d.Select()
		reward := 0.2
		if a == 0 {
			reward = 1.0
		}
		d.Update(a, reward)
	}
	if a := d.Select(); a != 0 {
		t.Fatalf("pre-change best arm = %d, want 0", a)
	}
	// ...then the environment flips.
	flipPlays := uint64(0)
	for i := 0; i < 300; i++ {
		a := d.Select()
		reward := 0.2
		if a == 1 {
			reward = 1.0
			flipPlays++
		}
		d.Update(a, reward)
	}
	if a := d.Select(); a != 1 {
		t.Errorf("post-change best arm = %d, want 1 (played %d)", a, flipPlays)
	}
}

func TestUndiscountedUCBKeepsFullHistory(t *testing.T) {
	d := New(Config{Arms: 2, C: 0.1, Gamma: 1})
	for i := 0; i < 100; i++ {
		a := d.Select()
		d.Update(a, float64(a))
	}
	total := d.Weight(0) + d.Weight(1)
	if math.Abs(total-100) > 1e-9 {
		t.Errorf("undiscounted total weight = %g, want 100", total)
	}
}

func TestValueInfiniteForUnplayed(t *testing.T) {
	d := New(Config{Arms: 3, C: 0.1, Gamma: 0.99})
	if !math.IsInf(d.Value(2), 1) {
		t.Error("unplayed arm should have +Inf value")
	}
	if d.Mean(2) != 0 {
		t.Error("unplayed arm mean should be 0")
	}
}

func TestUpdateOutOfRangePanics(t *testing.T) {
	d := New(Config{Arms: 2, C: 0.1, Gamma: 0.99})
	defer func() {
		if recover() == nil {
			t.Error("Update with out-of-range arm did not panic")
		}
	}()
	d.Update(5, 1)
}

func TestReset(t *testing.T) {
	d := New(Config{Arms: 3, C: 0.1, Gamma: 0.99})
	for i := 0; i < 10; i++ {
		d.Update(d.Select(), 1)
	}
	d.Reset()
	if !d.Exploring() || d.Steps() != 0 || d.Plays(0) != 0 {
		t.Error("Reset did not clear state")
	}
}

// Property: the discounted mean of any arm stays within the range of
// rewards it has observed.
func TestQuickMeanWithinRewardRange(t *testing.T) {
	f := func(seed uint64, steps uint8) bool {
		d := New(Config{Arms: 3, C: 0.1, Gamma: 0.97})
		r := xrand.New(seed)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < int(steps)+10; i++ {
			a := d.Select()
			reward := r.Float64()*4 - 1
			if reward < lo {
				lo = reward
			}
			if reward > hi {
				hi = reward
			}
			d.Update(a, reward)
		}
		for a := 0; a < 3; a++ {
			if d.Weight(a) <= 0 {
				continue
			}
			m := d.Mean(a)
			if m < lo-1e-9 || m > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Select always returns a valid arm index.
func TestQuickSelectInRange(t *testing.T) {
	f := func(seed uint64, arms uint8) bool {
		n := int(arms%16) + 1
		d := New(Config{Arms: n, C: 0.1, Gamma: 0.99, InitOffset: int(seed % uint64(n))})
		r := xrand.New(seed)
		for i := 0; i < 100; i++ {
			a := d.Select()
			if a < 0 || a >= n {
				return false
			}
			d.Update(a, r.Float64())
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

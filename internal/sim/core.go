package sim

import (
	"micromama/internal/cache"
	"micromama/internal/prefetch"
	"micromama/internal/trace"
)

// pendingMiss tracks one outstanding demand miss for the MLP/ROB model.
type pendingMiss struct {
	done uint64 // cycle the data arrives
	idx  uint64 // retiring-instruction index of the load
	line uint64 // line address, to merge same-line accesses (one MSHR)
}

// Core is one simulated CPU: a trace consumer whose timing is bounded
// by commit width, ROB run-ahead, and outstanding-miss parallelism, in
// front of a private L1D and L2.
type Core struct {
	sys       *System
	id        int
	traceName string
	base      uint64 // per-core address-space offset

	// Instruction supply. The core consumes fixed-size batches instead
	// of one virtual Next() per instruction: blockSrc (if the reader
	// supports zero-copy views) or batchSrc/src refill batch, and the
	// inner loop indexes it directly. Exhaustion wraps the trace
	// (Reset + refill), matching the paper's trace-restart methodology.
	src      trace.Reader
	blockSrc trace.BlockReader // src, when it serves direct slices
	batchSrc trace.BatchReader // src, when it serves bulk copies
	batch    []trace.Instr     // current window; persists across epochs
	batchPos int
	fillBuf  []trace.Instr // private refill buffer for non-block readers

	cycle    uint64
	subCycle int
	instr    uint64

	l1i      *cache.Cache
	l1d      *cache.Cache
	l2       *cache.Cache
	l1Engine prefetch.Prefetcher
	l2Engine prefetch.Prefetcher
	feedback prefetch.Feedback // l2Engine's feedback hooks, if any

	pending []pendingMiss // FIFO of outstanding demand misses
	pHead   int

	// Front-end: the last instruction-fetch line, so the L1I is only
	// consulted when fetch crosses a line boundary.
	lastFetchLine uint64

	// Line-alignment masks derived from the configured line sizes
	// (addr & mask == line-aligned addr).
	fetchLineMask uint64 // from L1I.LineBytes
	loadLineMask  uint64 // from L1D.LineBytes

	// per-level outstanding-prefetch trackers (rings of completion
	// times): hardware gives each level its own prefetch MSHR budget,
	// so an L2 prefetch flood cannot starve L1 coverage.
	pfL1    pfRing
	pfL2    pfRing
	candBuf []uint64 // reusable candidate buffer
	l1Buf   []uint64

	l1PrefIssued uint64
	l2PrefIssued uint64
	prefDropped  uint64

	// Parallel-epoch engine hookup (nil on the serial path): the core
	// parks at its first shared-resource access of each epoch until the
	// owner grants it the shared-access token (see parallel.go).
	par       *parRunner
	tokenHeld bool

	// frozen stats at the instruction target
	frozenAt      uint64
	frozenL1D     cache.Stats
	frozenL2      cache.Stats
	frozenL1Pref  uint64
	frozenL2Pref  uint64
	frozenDropped uint64
}

func newCore(sys *System, id int, tr trace.Reader, engine prefetch.Prefetcher) *Core {
	l1Engine := prefetch.Prefetcher(prefetch.NewIPStride())
	if p, ok := sys.controller.(L1Provider); ok {
		l1Engine = p.L1Engine(id)
	}
	c := &Core{
		sys:           sys,
		id:            id,
		traceName:     tr.Name(),
		src:           tr,
		base:          uint64(id+1) << sys.cfg.AddrSpaceShift,
		l1i:           cache.New(sys.cfg.L1I),
		l1d:           cache.New(sys.cfg.L1D),
		l2:            cache.New(sys.cfg.L2),
		l1Engine:      l1Engine,
		l2Engine:      engine,
		pending:       make([]pendingMiss, 0, sys.cfg.MLP+1),
		fetchLineMask: ^(sys.cfg.L1I.LineBytes - 1),
		loadLineMask:  ^(sys.cfg.L1D.LineBytes - 1),
		pfL1:          newPFRing(8),
		pfL2:          newPFRing(sys.cfg.PrefetchQueue),
		candBuf:       make([]uint64, 0, 64),
		l1Buf:         make([]uint64, 0, 8),
	}
	if fb, ok := engine.(prefetch.Feedback); ok {
		c.feedback = fb
	}
	if bs, ok := tr.(trace.BlockReader); ok {
		c.blockSrc = bs
	} else {
		if br, ok := tr.(trace.BatchReader); ok {
			c.batchSrc = br
		}
		c.fillBuf = make([]trace.Instr, coreBatch)
	}
	return c
}

// coreBatch is how many instructions one refill pulls from the trace:
// big enough to amortize the interface call, small enough that the
// window stays cache-resident.
const coreBatch = 256

// refill replaces the exhausted batch window with the next one, wrapping
// the trace like trace.Looping did (Reset and retry once). It returns
// false only for an empty trace.
func (c *Core) refill() bool {
	for attempt := 0; attempt < 2; attempt++ {
		if c.blockSrc != nil {
			if blk := c.blockSrc.NextBlock(coreBatch); len(blk) > 0 {
				c.batch, c.batchPos = blk, 0
				return true
			}
		} else {
			n := 0
			if c.batchSrc != nil {
				n = c.batchSrc.ReadBatch(c.fillBuf)
			} else {
				for n < len(c.fillBuf) {
					ins, ok := c.src.Next()
					if !ok {
						break
					}
					c.fillBuf[n] = ins
					n++
				}
			}
			if n > 0 {
				c.batch, c.batchPos = c.fillBuf[:n], 0
				return true
			}
		}
		c.src.Reset()
	}
	return false
}

// advance executes instructions until the core's local clock reaches
// epochEnd, freezing stats the moment the instruction target is
// crossed.
func (c *Core) advance(epochEnd, target uint64) {
	commitWidth := c.sys.cfg.CommitWidth
	for c.cycle < epochEnd {
		if c.batchPos >= len(c.batch) {
			if !c.refill() {
				// Empty trace: stall forever at the epoch boundary.
				c.cycle = epochEnd
				return
			}
		}
		ins := c.batch[c.batchPos]
		c.batchPos++
		c.instr++
		c.subCycle++
		if c.subCycle >= commitWidth {
			c.cycle++
			c.subCycle = 0
		}
		// Fetch fast path inlined: the L1I is only consulted when fetch
		// crosses a line boundary, which straight-line code rarely does.
		if ins.PC&c.fetchLineMask != c.lastFetchLine {
			c.doFetch(ins.PC)
		}
		switch ins.Kind {
		case trace.Load:
			c.doLoad(ins)
		case trace.Store:
			c.doStore(ins)
		}
		if c.instr == target && c.frozenAt == 0 {
			// The system recounts frozen cores at the epoch boundary
			// (recountFrozen), so freezing touches only core-local state
			// and advance stays safe to run off the owner goroutine.
			c.freeze()
		}
	}
}

func (c *Core) freeze() {
	c.frozenAt = c.cycle
	if c.frozenAt == 0 {
		c.frozenAt = 1
	}
	c.frozenL1D = c.l1d.Stats()
	c.frozenL2 = c.l2.Stats()
	c.frozenL1Pref = c.l1PrefIssued
	c.frozenL2Pref = c.l2PrefIssued
	c.frozenDropped = c.prefDropped
}

// doFetch models the instruction front end: when fetch crosses into a
// new cache line, the L1I is consulted; a miss fetches through the
// unified L2 and stalls the pipeline (front-end stalls are not hidden
// by the ROB). advance inlines the same-line fast path; callers only
// reach here on a line crossing (the check below keeps it correct for
// any caller).
func (c *Core) doFetch(pc uint64) {
	line := pc & c.fetchLineMask
	if line == c.lastFetchLine {
		return
	}
	c.lastFetchLine = line
	// Instructions live in a per-core I-space distinct from data.
	addr := line | c.base | 1<<(c.sys.cfg.AddrSpaceShift-1)
	r := c.l1i.Lookup(addr, c.cycle, true)
	if r.Hit {
		if r.ReadyAt > c.cycle {
			c.cycle = r.ReadyAt
			c.subCycle = 0
		}
		return
	}
	t2 := c.cycle + c.sys.cfg.L1I.HitLatency
	var ready uint64
	r2 := c.l2.Lookup(addr, t2, true)
	if r2.Hit {
		ready = t2 + c.sys.cfg.L2.HitLatency
		if r2.ReadyAt > ready {
			ready = r2.ReadyAt
		}
	} else {
		ready = c.fetchIntoL2(t2, addr, false)
	}
	c.l1i.Fill(addr, ready, false, false)
	c.sys.controller.OnL2Demand(c.id, t2)
	if ready > c.cycle {
		c.cycle = ready
		c.subCycle = 0
	}
}

func (c *Core) doLoad(ins trace.Instr) {
	addr := ins.Addr | c.base
	done, fast := c.access(ins.PC, addr, false)
	if fast {
		return
	}
	if ins.Flags&trace.DependsPrev != 0 {
		// Pointer chase: serialized behind its producing load.
		if done > c.cycle {
			c.cycle = done
			c.subCycle = 0
		}
		return
	}
	// Same-line accesses merge into one MSHR: don't consume another
	// MLP slot for a line already outstanding.
	line := addr & c.loadLineMask
	for i := len(c.pending) - 1; i >= c.pHead; i-- {
		if c.pending[i].line == line {
			return
		}
	}
	c.pushMiss(done, line)
}

func (c *Core) doStore(ins trace.Instr) {
	addr := ins.Addr | c.base
	// Stores are write-buffered: they consume cache/DRAM resources but
	// never stall retirement.
	c.access(ins.PC, addr, true)
}

// pushMiss records an outstanding miss and applies the MLP and ROB
// limits: the core stalls when too many misses are in flight or when
// the oldest miss is older than the ROB allows.
func (c *Core) pushMiss(done, line uint64) {
	cfg := &c.sys.cfg
	c.pending = append(c.pending, pendingMiss{done: done, idx: c.instr, line: line})
	// Drop completed misses from the front.
	for c.pHead < len(c.pending) && c.pending[c.pHead].done <= c.cycle {
		c.pHead++
	}
	for len(c.pending)-c.pHead > cfg.MLP {
		if d := c.pending[c.pHead].done; d > c.cycle {
			c.cycle = d
			c.subCycle = 0
		}
		c.pHead++
	}
	for c.pHead < len(c.pending) && c.instr-c.pending[c.pHead].idx >= uint64(cfg.ROB) {
		if d := c.pending[c.pHead].done; d > c.cycle {
			c.cycle = d
			c.subCycle = 0
		}
		c.pHead++
	}
	// Compact the FIFO occasionally.
	if c.pHead > 64 {
		c.pending = append(c.pending[:0], c.pending[c.pHead:]...)
		c.pHead = 0
	}
}

// access walks the hierarchy for a demand access and returns the cycle
// the data is available plus whether the access was a "fast" L1 hit
// (no possible stall).
func (c *Core) access(pc, addr uint64, store bool) (done uint64, fast bool) {
	now := c.cycle
	cfg := &c.sys.cfg

	r1 := c.l1d.Lookup(addr, now, true)
	c.l1Buf = c.l1Engine.OnAccess(pc, addr, r1.Hit, c.l1Buf[:0])
	if r1.Hit {
		if store {
			c.l1d.MarkDirty(addr)
		}
		done = now + cfg.L1D.HitLatency
		if r1.ReadyAt > done {
			done = r1.ReadyAt
			fast = false
		} else {
			fast = true
		}
		c.issueL1Prefetches(now)
		return done, fast
	}

	// L1 miss: demand access to L2.
	t2 := now + cfg.L1D.HitLatency
	r2 := c.l2.Lookup(addr, t2, true)
	c.candBuf = c.l2Engine.OnAccess(pc, addr, r2.Hit, c.candBuf[:0])
	if r2.WasPrefetched && c.feedback != nil {
		c.feedback.OnUseful(addr, r2.ReadyAt > t2)
	}

	var ready uint64
	if r2.Hit {
		ready = t2 + cfg.L2.HitLatency
		if r2.ReadyAt > ready {
			ready = r2.ReadyAt
		}
	} else {
		ready = c.fetchIntoL2(t2, addr, false)
	}

	// Fill L1 (a store fill installs the line dirty); a dirty victim
	// merges into L2.
	if v := c.l1d.Fill(addr, ready, false, store); v.Valid && v.Dirty {
		c.l2.MarkDirty(v.Addr)
	}

	c.issueL2Prefetches(t2)
	c.issueL1Prefetches(now)
	c.sys.controller.OnL2Demand(c.id, t2)
	return ready, false
}

// fetchIntoL2 brings addr's line into the L2 (and LLC) starting at
// cycle t, returning when the data reaches the L2. pf marks prefetch
// fills; a prefetch rejected by the memory controller's demand-priority
// backpressure returns 0 with no state change.
func (c *Core) fetchIntoL2(t uint64, addr uint64, pf bool) uint64 {
	c.enterShared()
	cfg := &c.sys.cfg
	t3 := t + cfg.L2.HitLatency
	r3 := c.sys.llc.Lookup(addr, t3, !pf)
	var ready uint64
	if r3.Hit {
		ready = t3 + cfg.LLC.HitLatency
		if r3.ReadyAt > ready {
			ready = r3.ReadyAt
		}
	} else {
		t4 := t3 + cfg.LLC.HitLatency
		if pf {
			var ok bool
			ready, ok = c.sys.dram.AccessPrefetch(t4, addr)
			if !ok {
				return 0
			}
		} else {
			ready = c.sys.dram.Access(t4, addr, false)
		}
		if v := c.sys.llc.Fill(addr, ready, pf, false); v.Valid && v.Dirty {
			c.sys.dram.Access(ready, v.Addr, true)
		}
	}
	if v := c.l2.Fill(addr, ready, pf, false); v.Valid {
		if v.Dirty {
			// Dirty L2 victim moves to the LLC; a dirty LLC victim goes
			// to memory.
			if lv := c.sys.llc.Fill(v.Addr, 0, false, true); lv.Valid && lv.Dirty {
				c.sys.dram.Access(ready, lv.Addr, true)
			}
		}
		if v.Prefetched && c.feedback != nil {
			c.feedback.OnUseless(v.Addr &^ c.base)
		}
	}
	return ready
}

// issueL2Prefetches sends the L2 engine's candidates down the hierarchy,
// subject to the per-core outstanding-prefetch budget.
func (c *Core) issueL2Prefetches(now uint64) {
	for _, a := range c.candBuf {
		if a == 0 {
			continue
		}
		addr := a | c.base
		if c.l2.Contains(addr) {
			continue
		}
		if !c.pfL2.reserve(now) {
			c.prefDropped++
			continue
		}
		done := c.fetchIntoL2(now, addr, true)
		if done == 0 {
			c.prefDropped++
			continue
		}
		c.pfL2.record(done)
		c.l2PrefIssued++
	}
	c.candBuf = c.candBuf[:0]
}

// issueL1Prefetches brings ip_stride candidates into the L1 (and L2).
func (c *Core) issueL1Prefetches(now uint64) {
	cfg := &c.sys.cfg
	for _, a := range c.l1Buf {
		if a == 0 {
			continue
		}
		addr := a | c.base
		if c.l1d.Contains(addr) {
			continue
		}
		if !c.pfL1.reserve(now) {
			c.prefDropped++
			continue
		}
		var ready uint64
		r2 := c.l2.Lookup(addr, now, false)
		if r2.Hit {
			ready = now + cfg.L2.HitLatency
			if r2.ReadyAt > ready {
				ready = r2.ReadyAt
			}
		} else {
			ready = c.fetchIntoL2(now, addr, true)
			if ready == 0 {
				c.prefDropped++
				continue
			}
		}
		if v := c.l1d.Fill(addr, ready, true, false); v.Valid && v.Dirty {
			c.l2.MarkDirty(v.Addr)
		}
		c.pfL1.record(ready)
		c.l1PrefIssued++
	}
	c.l1Buf = c.l1Buf[:0]
}

// warmupAdvance fast-forwards the core through n trace instructions in
// functional mode: cache contents and recency state update (dirty
// victims propagate so warmed dirty lines stay dirty) but no cycles are
// accounted and no prefetcher, controller, or DRAM state is touched.
// The instruction counter stays at zero — warmup instructions do not
// count toward the run target; they only consume trace prefix, the
// ChampSim-style warmup. Cache hit/miss counters are reset by the
// caller afterwards.
func (c *Core) warmupAdvance(n uint64) {
	for done := uint64(0); done < n; done++ {
		if c.batchPos >= len(c.batch) {
			if !c.refill() {
				return // empty trace
			}
		}
		ins := c.batch[c.batchPos]
		c.batchPos++
		if ins.PC&c.fetchLineMask != c.lastFetchLine {
			c.warmFetch(ins.PC)
		}
		switch ins.Kind {
		case trace.Load:
			c.warmAccess(ins.Addr|c.base, false)
		case trace.Store:
			c.warmAccess(ins.Addr|c.base, true)
		}
	}
}

// warmFetch is doFetch without timing: install the fetch line in L1I
// (and below on a miss).
func (c *Core) warmFetch(pc uint64) {
	line := pc & c.fetchLineMask
	c.lastFetchLine = line
	addr := line | c.base | 1<<(c.sys.cfg.AddrSpaceShift-1)
	if r := c.l1i.Lookup(addr, 0, true); r.Hit {
		return
	}
	if r2 := c.l2.Lookup(addr, 0, true); !r2.Hit {
		c.warmFill(addr)
	}
	c.l1i.Fill(addr, 0, false, false)
}

// warmAccess is access without timing: walk the hierarchy, install the
// line, propagate dirtiness.
func (c *Core) warmAccess(addr uint64, store bool) {
	if r1 := c.l1d.Lookup(addr, 0, true); r1.Hit {
		if store {
			c.l1d.MarkDirty(addr)
		}
		return
	}
	if r2 := c.l2.Lookup(addr, 0, true); !r2.Hit {
		c.warmFill(addr)
	}
	if v := c.l1d.Fill(addr, 0, false, store); v.Valid && v.Dirty {
		c.l2.MarkDirty(v.Addr)
	}
}

// warmFill installs addr in the LLC and L2 content-only; dirty L2
// victims move to the LLC as in the timed path, but dirty LLC victims
// vanish (the DRAM model is not involved during warmup).
func (c *Core) warmFill(addr uint64) {
	if r3 := c.sys.llc.Lookup(addr, 0, true); !r3.Hit {
		c.sys.llc.Fill(addr, 0, false, false)
	}
	if v := c.l2.Fill(addr, 0, false, false); v.Valid && v.Dirty {
		c.sys.llc.Fill(v.Addr, 0, false, true)
	}
}

// pfRing tracks outstanding prefetches at one level as a ring of
// completion times. The physical ring is rounded up to a power of two
// so index wrap is a mask instead of a modulo; limit keeps the logical
// capacity (the prefetch budget) exact for non-power-of-two configs.
type pfRing struct {
	done  []uint64
	mask  int
	limit int
	head  int
	n     int
}

func newPFRing(capacity int) pfRing {
	if capacity < 1 {
		capacity = 1
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	return pfRing{done: make([]uint64, size), mask: size - 1, limit: capacity}
}

// reserve reports whether a new prefetch may be issued at cycle now,
// pruning completed entries.
func (r *pfRing) reserve(now uint64) bool {
	for r.n > 0 && r.done[r.head] <= now {
		r.head = (r.head + 1) & r.mask
		r.n--
	}
	return r.n < r.limit
}

func (r *pfRing) record(done uint64) {
	tail := (r.head + r.n) & r.mask
	r.done[tail] = done
	r.n++
}

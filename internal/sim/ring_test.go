package sim

import "testing"

// pfRing invariants the prefetch-issue path depends on: reserve prunes
// completed entries and admits while slots remain; record appends at
// the tail with wraparound; a capacity-1 ring alternates.

func TestPFRingWraparound(t *testing.T) {
	r := newPFRing(3)
	// Fill all three slots with completions at 10, 20, 30.
	for _, d := range []uint64{10, 20, 30} {
		if !r.reserve(0) {
			t.Fatalf("reserve failed with %d/%d slots used", r.n, len(r.done))
		}
		r.record(d)
	}
	if r.reserve(5) {
		t.Error("reserve succeeded on a full ring with nothing completed")
	}
	// At cycle 15 the first entry (done=10) has completed: one slot
	// frees, head wraps forward.
	if !r.reserve(15) {
		t.Fatal("reserve failed after the head entry completed")
	}
	r.record(40) // lands in the slot vacated at index 0 (tail wraps)
	if r.n != 3 {
		t.Fatalf("n = %d, want 3", r.n)
	}
	if r.reserve(15) {
		t.Error("ring should be full again after wrapping record")
	}
	// Drain everything: done times 20, 30, 40 all complete by 100.
	if !r.reserve(100) {
		t.Fatal("reserve failed with all entries complete")
	}
	if r.n != 0 {
		t.Errorf("n = %d after full drain, want 0", r.n)
	}
}

func TestPFRingReserveAfterPrune(t *testing.T) {
	r := newPFRing(4)
	for _, d := range []uint64{5, 6, 100, 101} {
		if !r.reserve(0) {
			t.Fatal("setup reserve failed")
		}
		r.record(d)
	}
	// Cycle 50: entries 5 and 6 complete, 100 and 101 remain. Two
	// reserves succeed, the third fails.
	for i := 0; i < 2; i++ {
		if !r.reserve(50) {
			t.Fatalf("reserve %d failed after prune", i)
		}
		r.record(200 + uint64(i))
	}
	if r.reserve(50) {
		t.Error("reserve succeeded but all 4 slots should be occupied")
	}
	if r.n != 4 {
		t.Errorf("n = %d, want 4", r.n)
	}
}

func TestPFRingCapacityOne(t *testing.T) {
	r := newPFRing(1)
	if !r.reserve(0) {
		t.Fatal("empty capacity-1 ring refused reserve")
	}
	r.record(10)
	if r.reserve(9) {
		t.Error("capacity-1 ring admitted a second outstanding prefetch")
	}
	if !r.reserve(10) {
		t.Error("capacity-1 ring did not free at completion time")
	}
	r.record(20)
	if r.n != 1 || r.done[0] != 20 {
		t.Errorf("ring state = {n:%d done:%v}, want one entry of 20", r.n, r.done)
	}
}

func TestPFRingMinimumCapacity(t *testing.T) {
	// Constructing with capacity < 1 clamps to 1 so reserve/record
	// never divide by zero.
	r := newPFRing(0)
	if len(r.done) != 1 {
		t.Fatalf("capacity = %d, want clamp to 1", len(r.done))
	}
}

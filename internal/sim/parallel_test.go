// Tests for the parallel epoch engine's lifecycle and the chunked
// Advance API: bit-exactness is covered by TestGoldenSerialVsParallel
// and TestQuickSerialParallelEquivalence; this file covers everything
// around it — worker teardown, cancellation, resumable stepping,
// functional warmup, eligibility, and the env knob.
package sim_test

import (
	"bytes"
	"context"
	"encoding/json"
	"runtime"
	"testing"
	"time"

	"micromama/internal/core"
	"micromama/internal/prefetch"
	"micromama/internal/sim"
	"micromama/internal/trace"
	"micromama/internal/workload"
)

// forceMultiProc lifts GOMAXPROCS to 2 on single-proc hosts for one
// test: ParallelWorkers deliberately refuses to engage at GOMAXPROCS==1
// (a 1-proc engine is pure barrier overhead, see BENCH_baseline), but
// the engine itself must stay covered everywhere — including 1-CPU CI
// hosts. Raising GOMAXPROCS above NumCPU is legal; the scheduler just
// time-slices.
func forceMultiProc(t *testing.T) {
	t.Helper()
	if runtime.GOMAXPROCS(0) >= 2 {
		return
	}
	old := runtime.GOMAXPROCS(2)
	t.Cleanup(func() { runtime.GOMAXPROCS(old) })
}

// newTestSystem builds a 2-core fixed-controller system over catalog
// traces.
func newTestSystem(t *testing.T, parallelism int, warmup uint64) *sim.System {
	t.Helper()
	names := []string{"spec06.libquantum", "spec06.mcf"}
	specs := make([]workload.Spec, len(names))
	for i, n := range names {
		sp, err := workload.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		specs[i] = sp
	}
	mix := workload.Mix{Specs: specs}
	cfg := sim.DefaultConfig(len(specs))
	cfg.Parallelism = parallelism
	cfg.WarmupInstructions = warmup
	sys, err := sim.New(cfg, mix.Traces(), sim.NewFixedController("spp", func(int) prefetch.Prefetcher {
		return prefetch.NewSPP()
	}))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// waitGoroutines polls until the goroutine count drops back to at most
// want (worker teardown is synchronous, but the runtime needs a moment
// to actually retire exited goroutines).
func waitGoroutines(t *testing.T, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: have %d, want <= %d", runtime.NumGoroutine(), want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestParallelRunReleasesWorkers: RunContext must retire its worker
// goroutines on every exit path, including cancellation mid-run.
func TestParallelRunReleasesWorkers(t *testing.T) {
	forceMultiProc(t)
	before := runtime.NumGoroutine()

	sys := newTestSystem(t, 4, 0)
	sys.Run(50_000, 0)
	if sys.ParallelEpochs() == 0 {
		t.Fatal("parallel path did not run")
	}
	waitGoroutines(t, before)

	// Cancellation path: a context that dies mid-run.
	sys = newTestSystem(t, 4, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sys.RunContext(ctx, 1_000_000, 0); err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	waitGoroutines(t, before)
}

// TestAdvanceMatchesRun: stepping a system in small epoch chunks —
// serial or parallel — must land on exactly the Run result, and Close
// must retire the workers.
func TestAdvanceMatchesRun(t *testing.T) {
	forceMultiProc(t)
	const target = 40_000
	want := newTestSystem(t, 0, 0).Run(target, 0)
	wj, _ := json.Marshal(want)

	for _, par := range []int{0, 3} {
		before := runtime.NumGoroutine()
		sys := newTestSystem(t, par, 0)
		steps := 0
		for !sys.Advance(target, 37) { // deliberately odd chunk size
			steps++
			if steps > 1_000_000 {
				t.Fatal("Advance never completed")
			}
		}
		got := sys.Result(target)
		gj, _ := json.Marshal(got)
		if !bytes.Equal(gj, wj) {
			t.Errorf("par=%d: chunked Advance diverged from Run\n got: %s\nwant: %s", par, gj, wj)
		}
		if par > 0 && sys.ParallelEpochs() == 0 {
			t.Errorf("par=%d: parallel path did not run", par)
		}
		sys.Close()
		sys.Close() // idempotent
		waitGoroutines(t, before)
	}
}

// loopTrace loads round-robin over a cache-resident working set (lines
// 64 B apart), so one full pass through it leaves every line cached.
func loopTrace(name string, lines int, n int) trace.Reader {
	ins := make([]trace.Instr, n)
	for i := range ins {
		ins[i] = trace.Instr{PC: 0x1000, Addr: uint64(i%lines) * 64, Kind: trace.Load}
	}
	return trace.NewSlice(name, ins)
}

// TestFunctionalWarmup: warmup must be deterministic (same config →
// bit-identical results, serial or parallel), must not leak its own
// traffic into the timed counters, and must actually warm the caches —
// a cache-resident working set touched during warmup turns the timed
// region's cold misses into hits.
func TestFunctionalWarmup(t *testing.T) {
	forceMultiProc(t)
	const (
		lines  = 256    // 16 KB: fits L1D, so a warm run should miss ~never
		length = 1024   // one trace revolution covers every line 4x
		target = 20_000 // several revolutions in the timed region
	)
	run := func(parallelism int, warm uint64) sim.Result {
		cfg := sim.DefaultConfig(2)
		cfg.Parallelism = parallelism
		cfg.WarmupInstructions = warm
		traces := []trace.Reader{loopTrace("loop-a", lines, length), loopTrace("loop-b", lines, length)}
		sys, err := sim.New(cfg, traces, nil)
		if err != nil {
			t.Fatal(err)
		}
		return sys.Run(target, 0)
	}
	cold := run(0, 0)
	warmA := run(0, length)
	warmB := run(4, length)

	aj, _ := json.Marshal(warmA)
	bj, _ := json.Marshal(warmB)
	if !bytes.Equal(aj, bj) {
		t.Errorf("warmed run differs serial vs parallel\n got: %s\nwant: %s", bj, aj)
	}
	// One warmup revolution touched the full working set, so the timed
	// region must see (almost) none of the cold run's compulsory misses.
	if w, c := warmA.Cores[0].L1D.Misses, cold.Cores[0].L1D.Misses; w >= c {
		t.Errorf("warmup did not reduce L1D misses: warm %d >= cold %d", w, c)
	}
	// Counter hygiene: warmup's own accesses must not be visible in the
	// timed stats (both runs retire the same target).
	if w, c := warmA.Cores[0].L1D.Accesses, cold.Cores[0].L1D.Accesses; w > c {
		t.Errorf("warmup traffic leaked into timed stats: %d accesses > cold %d", w, c)
	}
	// The warmed run must be faster end to end, not just miss less.
	if w, c := warmA.Cores[0].Cycles, cold.Cores[0].Cycles; w >= c {
		t.Errorf("warmup did not speed up the timed region: %d cycles >= %d", w, c)
	}
	// WarmupInstructions is a model knob: it must change the
	// fingerprint (unlike Parallelism, covered below).
	c0, c1 := sim.DefaultConfig(2), sim.DefaultConfig(2)
	c1.WarmupInstructions = 1000
	if c0.Fingerprint() == c1.Fingerprint() {
		t.Error("WarmupInstructions did not change the fingerprint")
	}
}

// TestParallelismOutsideFingerprint: the execution knob must not change
// config identity (server job keys, experiment caches).
func TestParallelismOutsideFingerprint(t *testing.T) {
	a, b := sim.DefaultConfig(4), sim.DefaultConfig(4)
	b.Parallelism = 8
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("Parallelism changed the fingerprint")
	}
}

// TestParallelWorkersEligibility pins the serial-fallback rules.
func TestParallelWorkersEligibility(t *testing.T) {
	forceMultiProc(t)
	build := func(cores, par int, ctrl sim.Controller) *sim.System {
		t.Helper()
		names := []string{"spec06.libquantum", "spec06.mcf", "spec17.cactuBSSN", "spec06.cactusADM"}
		specs := make([]workload.Spec, cores)
		for i := 0; i < cores; i++ {
			sp, err := workload.ByName(names[i])
			if err != nil {
				t.Fatal(err)
			}
			specs[i] = sp
		}
		cfg := sim.DefaultConfig(cores)
		cfg.Parallelism = par
		sys, err := sim.New(cfg, workload.Mix{Specs: specs}.Traces(), ctrl)
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	bandit := func(shared, timeline bool) sim.Controller {
		cfg := core.DefaultBanditConfig()
		cfg.SharedReward = shared
		cfg.RecordTimeline = timeline
		return core.NewBandit(cfg)
	}

	cases := []struct {
		name  string
		cores int
		par   int
		ctrl  sim.Controller
		want  int
	}{
		{"serial-knob", 4, 0, sim.NoPrefetchController(), 0},
		{"one-core", 1, 8, sim.NoPrefetchController(), 0},
		{"one-worker", 4, 1, sim.NoPrefetchController(), 0}, // 1 effective worker = overhead only
		{"fixed", 4, 8, sim.NoPrefetchController(), 4},      // capped at cores
		{"fixed-partial", 4, 2, sim.NoPrefetchController(), 2},
		{"bandit-local", 4, 8, bandit(false, false), 4},
		{"bandit-shared", 4, 8, bandit(true, false), 0},   // reads all cores mid-epoch
		{"bandit-timeline", 4, 8, bandit(false, true), 0}, // shared timeline slice
		{"mumama", 4, 8, core.NewMuMama(core.DefaultMuMamaConfig()), 0},
	}
	for _, tc := range cases {
		if got := build(tc.cores, tc.par, tc.ctrl).ParallelWorkers(); got != tc.want {
			t.Errorf("%s: ParallelWorkers = %d, want %d", tc.name, got, tc.want)
		}
	}

	// A single-proc host must stay serial no matter what the knob says:
	// the engine cannot overlap anything at GOMAXPROCS==1.
	old := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(old)
	if got := build(4, 8, sim.NoPrefetchController()).ParallelWorkers(); got != 0 {
		t.Errorf("GOMAXPROCS=1: ParallelWorkers = %d, want 0", got)
	}
}

// TestParallelismFromEnv pins the env-knob parsing the binaries' flag
// defaults rely on.
func TestParallelismFromEnv(t *testing.T) {
	cases := []struct {
		val  string
		def  int
		want int
	}{
		{"", 3, 3},      // unset → default
		{"0", -1, 0},    // explicit serial
		{"6", 0, 6},     // explicit width
		{"auto", 0, -1}, // auto token
		{"-1", 0, -1},   // numeric auto
		{"bogus", 2, 2}, // unparsable → default
	}
	for _, tc := range cases {
		t.Setenv(sim.EnvParallelism, tc.val)
		if got := sim.ParallelismFromEnv(tc.def); got != tc.want {
			t.Errorf("ParallelismFromEnv(%q, def=%d) = %d, want %d", tc.val, tc.def, got, tc.want)
		}
	}
}

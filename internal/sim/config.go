// Package sim is the trace-driven multicore simulator: an MLP/ROB-
// limited core timing model in front of private L1D/L2 caches, a shared
// LLC, and a banked, bandwidth-limited DRAM (see DESIGN.md for how this
// substitutes for ChampSim). Prefetcher *controllers* — the paper's
// Bandit and µMama designs, in package core — plug in through the
// Controller interface.
package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"strconv"

	"micromama/internal/cache"
	"micromama/internal/dram"
	"micromama/internal/noc"
)

// EnvParallelism is the environment variable consulted by the binaries'
// -sim-parallel flag defaults: an integer (0 = serial), or "auto" (-1),
// which each binary resolves against its own concurrency budget
// (mamasim: GOMAXPROCS; mamaserved: GOMAXPROCS divided by pool
// workers).
const EnvParallelism = "MAMA_SIM_PARALLEL"

// ParallelismFromEnv returns the per-simulation parallelism requested
// via MAMA_SIM_PARALLEL, or def when the variable is unset or
// unparsable. "auto" maps to -1.
func ParallelismFromEnv(def int) int {
	v := os.Getenv(EnvParallelism)
	if v == "" {
		return def
	}
	if v == "auto" {
		return -1
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return def
	}
	return n
}

// Config describes the simulated system (paper Table 3 by default).
type Config struct {
	// Cores is the number of active cores (each runs one trace).
	Cores int
	// CommitWidth is the peak instructions retired per cycle.
	CommitWidth int
	// ROB bounds how far execution runs ahead of an outstanding miss.
	ROB int
	// MLP bounds concurrently outstanding demand misses per core
	// (LQ/MSHR limited run-ahead).
	MLP int
	// PrefetchQueue bounds concurrently outstanding prefetches per core.
	PrefetchQueue int

	L1I cache.Config
	L1D cache.Config
	L2  cache.Config
	LLC cache.Config

	DRAM dram.Config
	NoC  noc.Config

	// Epoch is the global-time interleave granularity in cycles: cores
	// advance round-robin in windows of this size, which bounds how far
	// their local clocks diverge when they contend for DRAM.
	Epoch uint64

	// AddrSpaceShift namespaces each core's trace addresses (virtual
	// address spaces of distinct programs) by ORing (core+1) at this bit
	// position.
	AddrSpaceShift uint

	// Parallelism bounds how many cores advance concurrently between
	// epoch synchronization points (0 = serial, the reference path;
	// 1-core systems always run serially). The parallel engine is
	// bit-identical to the serial path by construction — shared
	// LLC/DRAM access stays in canonical core order — so Parallelism is
	// an execution-resource knob, not part of the simulated model: it
	// is excluded from JSON marshaling and therefore from Fingerprint
	// and server job keys. See docs/ARCHITECTURE.md, "Parallel
	// epoch-synchronous core".
	Parallelism int `json:"-"`

	// WarmupInstructions, when non-zero, fast-forwards each core's
	// trace by this many instructions in functional-warmup mode before
	// timing starts: caches (L1I/L1D/L2/LLC) are populated content-only
	// — no cycle accounting, no prefetching, no DRAM traffic — and all
	// cache counters are reset afterwards, the ChampSim-style warmup
	// that skips cold-start effects on long trace prefixes. Unlike
	// Parallelism it changes simulated results, so it participates in
	// Fingerprint (omitted when zero to keep existing fingerprints
	// stable).
	WarmupInstructions uint64 `json:",omitempty"`
}

// DefaultConfig returns the paper's Table 3 system with the given core
// count: 4 GHz CPU, 48 KB L1D (5 cyc), 1 MB L2 (10 cyc), 6 MB shared
// LLC (40 cyc), one channel of DDR4-2400.
func DefaultConfig(cores int) Config {
	return Config{
		Cores:          cores,
		CommitWidth:    4,
		ROB:            352,
		MLP:            8,
		PrefetchQueue:  32,
		L1I:            cache.Config{Name: "L1I", Sets: 64, Ways: 8, LineBytes: 64, HitLatency: 4, MSHRs: 4},
		L1D:            cache.Config{Name: "L1D", Sets: 64, Ways: 12, LineBytes: 64, HitLatency: 5, MSHRs: 8},
		L2:             cache.Config{Name: "L2", Sets: 1024, Ways: 16, LineBytes: 64, HitLatency: 10, MSHRs: 16},
		LLC:            cache.Config{Name: "LLC", Sets: 8192, Ways: 12, LineBytes: 64, HitLatency: 40, MSHRs: 64},
		DRAM:           dram.DDR4(2400, 1),
		NoC:            noc.DefaultConfig(),
		Epoch:          64,
		AddrSpaceShift: 44,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Cores < 1 {
		return fmt.Errorf("sim: Cores must be >= 1, got %d", c.Cores)
	}
	if c.CommitWidth < 1 {
		return fmt.Errorf("sim: CommitWidth must be >= 1, got %d", c.CommitWidth)
	}
	if c.ROB < 1 || c.MLP < 1 {
		return fmt.Errorf("sim: ROB and MLP must be >= 1")
	}
	if c.PrefetchQueue < 0 {
		return fmt.Errorf("sim: PrefetchQueue must be >= 0")
	}
	if c.Epoch == 0 {
		return fmt.Errorf("sim: Epoch must be positive")
	}
	for _, cc := range []cache.Config{c.L1I, c.L1D, c.L2, c.LLC} {
		if err := cc.Validate(); err != nil {
			return err
		}
	}
	return c.DRAM.Validate()
}

// Fingerprint returns a short, stable digest of the full configuration,
// for use as a cache key: two configs share a fingerprint iff every
// field (cache geometries, latencies, DRAM timing, core limits, ...)
// marshals identically. Prefer this over any single field (e.g. the
// DRAM name) when memoizing per-config results.
func (c Config) Fingerprint() string {
	b, err := json.Marshal(c)
	if err != nil {
		// Config is a plain value struct; Marshal cannot fail on it.
		panic(fmt.Sprintf("sim: fingerprint config: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8])
}

package sim

import (
	"testing"

	"micromama/internal/prefetch"
	"micromama/internal/trace"
	"micromama/internal/workload"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(4).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig(4)
	bad.Cores = 0
	if err := bad.Validate(); err == nil {
		t.Error("Cores=0 validated")
	}
	bad = DefaultConfig(4)
	bad.Epoch = 0
	if err := bad.Validate(); err == nil {
		t.Error("Epoch=0 validated")
	}
	bad = DefaultConfig(4)
	bad.L2.Sets = 3
	if err := bad.Validate(); err == nil {
		t.Error("bad L2 validated")
	}
}

func TestNewRejectsTraceMismatch(t *testing.T) {
	spec, _ := workload.ByName("spec06.povray")
	if _, err := New(DefaultConfig(2), []trace.Reader{spec.New()}, nil); err == nil {
		t.Error("1 trace for 2 cores accepted")
	}
}

func TestNilControllerDefaultsToNoPrefetch(t *testing.T) {
	spec, _ := workload.ByName("spec06.povray")
	sys, err := New(DefaultConfig(1), []trace.Reader{spec.New()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Controller().Name() != "no" {
		t.Errorf("default controller = %q", sys.Controller().Name())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() Result {
		specs := []string{"spec06.libquantum", "ligra.BFS"}
		traces := make([]trace.Reader, 2)
		for i, n := range specs {
			sp, _ := workload.ByName(n)
			traces[i] = sp.New()
		}
		ctrl := NewFixedController("fixed", func(c int) prefetch.Prefetcher {
			e := prefetch.NewEnsemble()
			e.SetArm(8)
			return e
		})
		sys, _ := New(DefaultConfig(2), traces, ctrl)
		return sys.Run(200_000, 0)
	}
	a, b := run(), run()
	for i := range a.Cores {
		if a.Cores[i].Cycles != b.Cores[i].Cycles || a.Cores[i].Instructions != b.Cores[i].Instructions {
			t.Fatalf("nondeterministic run: core %d %+v vs %+v", i, a.Cores[i], b.Cores[i])
		}
	}
	if a.DRAM != b.DRAM {
		t.Error("DRAM stats differ between identical runs")
	}
}

func TestFreezeAtTarget(t *testing.T) {
	spec, _ := workload.ByName("spec06.povray")
	sys, _ := New(DefaultConfig(1), []trace.Reader{spec.New()}, nil)
	res := sys.Run(123_456, 0)
	if res.Cores[0].Instructions != 123_456 {
		t.Errorf("frozen instructions = %d, want exactly the target", res.Cores[0].Instructions)
	}
	if res.Cores[0].IPC <= 0 {
		t.Error("IPC not computed")
	}
}

func TestMaxCyclesGuard(t *testing.T) {
	// mcf at IPC ~0.06 cannot retire 10M instructions within 1M cycles;
	// the guard must stop the run and report partial progress.
	spec, _ := workload.ByName("spec06.mcf")
	sys, _ := New(DefaultConfig(1), []trace.Reader{spec.New()}, nil)
	res := sys.Run(10_000_000, 1_000_000)
	if res.Cores[0].Instructions >= 10_000_000 {
		t.Error("guard did not stop the run")
	}
	if res.Cores[0].Instructions == 0 || res.Cores[0].IPC <= 0 {
		t.Errorf("partial stats unusable: %+v", res.Cores[0])
	}
}

func TestAddressSpaceIsolation(t *testing.T) {
	// Two cores running the IDENTICAL trace must not share cache lines:
	// the shared LLC would otherwise give core 1 free hits on core 0's
	// fills. With namespacing, both cores' LLC demand misses are
	// independent.
	spec, _ := workload.ByName("spec06.libquantum")
	sys, _ := New(DefaultConfig(2), []trace.Reader{spec.New(), spec.New()}, nil)
	res := sys.Run(100_000, 0)
	llc := res.LLC
	if llc.Hits > llc.Misses/4 {
		t.Errorf("suspiciously many LLC hits (%d vs %d misses) — address spaces overlapping?", llc.Hits, llc.Misses)
	}
}

func TestResultAggregates(t *testing.T) {
	spec, _ := workload.ByName("spec06.libquantum")
	ctrl := NewFixedController("fixed", func(int) prefetch.Prefetcher {
		e := prefetch.NewEnsemble()
		e.SetArm(8)
		return e
	})
	sys, _ := New(DefaultConfig(1), []trace.Reader{spec.New()}, ctrl)
	res := sys.Run(200_000, 0)
	if res.TotalL2Prefetches() == 0 {
		t.Error("no L2 prefetches with streamer arm")
	}
	if res.TotalPrefetches() < res.TotalL2Prefetches() {
		t.Error("total prefetches < L2 prefetches")
	}
	if res.Cores[0].L2MPKI() < 0 {
		t.Error("negative MPKI")
	}
}

func TestFixedControllerPerCoreFactory(t *testing.T) {
	seen := map[int]bool{}
	ctrl := NewFixedController("f", func(c int) prefetch.Prefetcher {
		seen[c] = true
		return prefetch.None{}
	})
	specs := []string{"spec06.povray", "spec06.gamess"}
	traces := make([]trace.Reader, 2)
	for i, n := range specs {
		sp, _ := workload.ByName(n)
		traces[i] = sp.New()
	}
	if _, err := New(DefaultConfig(2), traces, ctrl); err != nil {
		t.Fatal(err)
	}
	if !seen[0] || !seen[1] {
		t.Error("factory not called per core")
	}
}

func TestStoreHeavyWritebacks(t *testing.T) {
	// lbm is 40% stores. With a deliberately tiny hierarchy, dirty lines
	// must ripple L1 -> L2 -> LLC -> DRAM as writebacks.
	cfg := DefaultConfig(1)
	cfg.L1D.Sets, cfg.L1D.Ways = 16, 2
	cfg.L2.Sets, cfg.L2.Ways = 64, 2
	cfg.LLC.Sets, cfg.LLC.Ways = 128, 2
	spec, _ := workload.ByName("spec06.lbm")
	sys, err := New(cfg, []trace.Reader{spec.New()}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run(200_000, 0)
	if res.DRAM.Writes == 0 {
		t.Error("store-heavy trace produced no DRAM writebacks")
	}
	if res.LLC.Writebacks == 0 {
		t.Error("no LLC writebacks recorded")
	}
}

func TestEmptyTraceCoreTerminates(t *testing.T) {
	// A core whose trace is empty can never retire its target; the run
	// must still terminate at the cycle guard with the other core's
	// stats intact.
	spec, _ := workload.ByName("spec06.povray")
	empty := trace.NewSlice("empty", nil)
	sys, err := New(DefaultConfig(2), []trace.Reader{spec.New(), empty}, nil)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run(100_000, 2_000_000)
	if res.Cores[0].Instructions == 0 {
		t.Error("healthy core made no progress beside an empty one")
	}
	if res.Cores[1].Instructions != 0 {
		t.Error("empty trace somehow retired instructions")
	}
}

package sim

import (
	"reflect"
	"testing"
	"testing/quick"

	"micromama/internal/prefetch"
	"micromama/internal/trace"
	"micromama/internal/xrand"
)

// randomTrace builds a small random-but-valid trace.
func randomTrace(seed uint64, n int) trace.Reader {
	r := xrand.New(seed)
	ins := make([]trace.Instr, n)
	for i := range ins {
		switch r.Intn(4) {
		case 0:
			ins[i] = trace.Instr{PC: uint64(0x1000 + r.Intn(64)*4), Addr: uint64(r.Intn(1 << 22)), Kind: trace.Load}
		case 1:
			ins[i] = trace.Instr{PC: uint64(0x2000 + r.Intn(64)*4), Addr: uint64(r.Intn(1 << 22)), Kind: trace.Store}
		default:
			ins[i] = trace.Instr{PC: 0x3000, Kind: trace.Other}
		}
	}
	return trace.NewSlice("random", ins)
}

// Property: for any random trace and any fixed arm, the simulator
// respects basic physical invariants.
func TestQuickSimInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		arm := int(seed % uint64(prefetch.NumArms))
		ctrl := NewFixedController("fixed", func(int) prefetch.Prefetcher {
			e := prefetch.NewEnsemble()
			e.SetArm(arm)
			return e
		})
		cfg := DefaultConfig(1)
		sys, err := New(cfg, []trace.Reader{randomTrace(seed, 4000)}, ctrl)
		if err != nil {
			return false
		}
		res := sys.Run(4000, 4_000_000)
		c := res.Cores[0]
		// IPC cannot exceed the commit width.
		if c.IPC > float64(cfg.CommitWidth)+1e-9 {
			return false
		}
		// Demand accounting is consistent at each level.
		if c.L1D.Hits+c.L1D.Misses != c.L1D.Accesses {
			return false
		}
		if c.L2.Hits+c.L2.Misses != c.L2.Accesses {
			return false
		}
		// L2 demand accesses cannot exceed L1 misses (I-fetch adds its
		// own, so >= relation is on the sum).
		if c.L2.Accesses < c.L1D.Misses {
			return false
		}
		// Useful prefetches cannot exceed prefetch fills.
		if c.L2.PrefetchUseful > c.L2.PrefetchFills {
			return false
		}
		// DRAM traffic is bounded by bus accounting.
		d := res.DRAM
		if d.BusBusyCycles != (d.Reads+d.Writes)*cfg.DRAM.BurstCycles() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: the parallel epoch engine is a pure execution strategy —
// for any random multicore mix, controller, warmup prefix, and
// parallelism degree, its Result is identical to the serial path's.
// This is the differential-fuzzing counterpart of the pinned-scenario
// TestGoldenSerialVsParallel.
func TestQuickSerialParallelEquivalence(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed ^ 0x9e3779b97f4a7c15)
		cores := 2 + r.Intn(3) // 2..4
		arm := r.Intn(prefetch.NumArms)
		warm := uint64(r.Intn(3)) * 1500 // 0, 1500, or 3000 warmup instrs
		run := func(parallelism int) Result {
			ctrl := NewFixedController("fixed", func(int) prefetch.Prefetcher {
				e := prefetch.NewEnsemble()
				e.SetArm(arm)
				return e
			})
			cfg := DefaultConfig(cores)
			cfg.Parallelism = parallelism
			cfg.WarmupInstructions = warm
			traces := make([]trace.Reader, cores)
			for i := range traces {
				traces[i] = randomTrace(seed+uint64(i)*977, 4000)
			}
			sys, err := New(cfg, traces, ctrl)
			if err != nil {
				t.Fatal(err)
			}
			return sys.Run(4000, 4_000_000)
		}
		serial := run(0)
		for _, p := range []int{1, 1 + r.Intn(8)} {
			if got := run(p); !reflect.DeepEqual(got, serial) {
				t.Logf("seed %d: parallelism %d diverged:\n got: %+v\nwant: %+v", seed, p, got, serial)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: running the same trace with more DRAM bandwidth can only
// help (or leave unchanged) a memory-bound workload's cycle count.
func TestQuickMoreBandwidthNotSlower(t *testing.T) {
	f := func(seed uint64) bool {
		run := func(channels int) uint64 {
			cfg := DefaultConfig(1)
			cfg.DRAM.Channels = channels
			sys, err := New(cfg, []trace.Reader{randomTrace(seed, 3000)}, nil)
			if err != nil {
				return 0
			}
			res := sys.Run(3000, 3_000_000)
			return res.Cores[0].Cycles
		}
		one, two := run(1), run(2)
		// Allow a tiny tolerance: bank-mapping differences can shuffle
		// row hits slightly.
		return float64(two) <= float64(one)*1.05
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

package sim

import "micromama/internal/telemetry"

// Process-wide simulator progress counters, exported through the
// default telemetry registry (mamaserved /metrics; -metrics-dump on the
// batch binaries). Updates happen only at epoch-poll boundaries
// (ctxCheckEpochs) and at run completion, never inside Core.advance, so
// the per-instruction hot path stays untouched.
var (
	simRunsTotal = telemetry.Default().Counter("mama_sim_runs_total",
		"Simulations started (System.RunContext entries).")
	simRunsActive = telemetry.Default().Gauge("mama_sim_active_runs",
		"Simulations currently executing.")
	simInstrTotal = telemetry.Default().Counter("mama_sim_instructions_total",
		"Instructions committed across all cores of all simulations.")
	simEpochsTotal = telemetry.Default().Counter("mama_sim_epochs_total",
		"Simulation epochs advanced across all simulations.")
	simParRunsTotal = telemetry.Default().Counter("mama_sim_parallel_runs_total",
		"Simulations that started the parallel epoch engine.")
	simParEpochsTotal = telemetry.Default().Counter("mama_sim_parallel_epochs_total",
		"Simulation epochs executed by the parallel epoch engine.")
	simPrefIssuedL1 = telemetry.Default().Counter("mama_sim_prefetches_issued_total",
		"Prefetches issued, by cache level.", telemetry.L("level", "l1"))
	simPrefIssuedL2 = telemetry.Default().Counter("mama_sim_prefetches_issued_total",
		"Prefetches issued, by cache level.", telemetry.L("level", "l2"))
	simPrefUseful = telemetry.Default().Counter("mama_sim_prefetches_useful_total",
		"L2 prefetched lines later hit by a demand access.")
	simPrefDropped = telemetry.Default().Counter("mama_sim_prefetches_dropped_total",
		"Prefetch candidates dropped by budget or DRAM backpressure.")
	simJAVJointSteps = telemetry.Default().Counter("mama_sim_jav_steps_total",
		"µMama global timesteps, by action source (hit rate = joint/(joint+local)).",
		telemetry.L("source", "joint"))
	simJAVLocalSteps = telemetry.Default().Counter("mama_sim_jav_steps_total",
		"µMama global timesteps, by action source (hit rate = joint/(joint+local)).",
		telemetry.L("source", "local"))
)

// javStepSource is implemented by controllers (µMama) that arbitrate
// between JAV-dictated joint actions and local agent actions.
type javStepSource interface {
	JointSteps() uint64
	LocalSteps() uint64
}

// committedInstructions sums live per-core retirement counts.
func (s *System) committedInstructions() uint64 {
	var t uint64
	for _, c := range s.cores {
		t += c.instr
	}
	return t
}

// publishProgress pushes the instruction and epoch deltas accumulated
// since the last publication (the published totals persist on the
// System, so resumed runs keep publishing deltas correctly).
func (s *System) publishProgress() {
	instr := s.committedInstructions()
	simInstrTotal.Add(instr - s.pubInstr)
	simEpochsTotal.Add(s.epochs - s.pubEpochs)
	simParEpochsTotal.Add(s.parEpochs - s.pubParEpochs)
	s.pubInstr, s.pubEpochs, s.pubParEpochs = instr, s.epochs, s.parEpochs
}

// finishRunTelemetry publishes end-of-run totals that are too expensive
// (or meaningless) to sample mid-run: prefetch issue/usefulness and the
// µMama JAV arbitration split.
func (s *System) finishRunTelemetry() {
	var l1, l2, useful, dropped uint64
	for _, c := range s.cores {
		l1 += c.l1PrefIssued
		l2 += c.l2PrefIssued
		dropped += c.prefDropped
		useful += c.l2.Stats().PrefetchUseful
	}
	simPrefIssuedL1.Add(l1)
	simPrefIssuedL2.Add(l2)
	simPrefUseful.Add(useful)
	simPrefDropped.Add(dropped)
	if js, ok := s.controller.(javStepSource); ok {
		simJAVJointSteps.Add(js.JointSteps())
		simJAVLocalSteps.Add(js.LocalSteps())
	}
}

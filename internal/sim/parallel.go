package sim

import "sync"

// This file implements the parallel epoch engine: per-core work between
// epoch synchronization points runs on persistent worker goroutines,
// while every access to the shared LLC/DRAM still happens in the exact
// order of the serial reference path. See docs/ARCHITECTURE.md,
// "Parallel epoch-synchronous core", for the full determinism argument.
//
// The scheme is suspend-at-first-shared-touch with an in-order token:
//
//   - Each core has a dedicated goroutine that advances it through the
//     epoch's *private* work (trace fetch, L1I/L1D/L2, prefetcher
//     training) concurrently with the other cores, subject to a permit
//     semaphore bounding concurrency at Config.Parallelism.
//   - The moment a core would touch a shared resource (its first
//     fetchIntoL2 of the epoch), it parks and reports evGated.
//   - The epoch owner (the caller's goroutine) walks cores in canonical
//     order 0..N-1: a gated core is granted the shared-access token and
//     runs to its epoch end with direct shared access — strictly after
//     every lower-numbered core finished its epoch, strictly before any
//     higher-numbered core is granted.
//
// Shared accesses therefore occur in (epoch, core, program-order) —
// exactly the serial schedule — and private work, which by definition
// reads no shared state, may interleave freely. The two paths are
// bit-identical by construction, which is what lets the committed
// golden results stay byte-for-byte unchanged.
//
// Deadlock freedom: report channels are buffered for the at-most-two
// events a core emits per epoch, grant channels for the at-most-one
// grant, and a parking core releases its permit *before* reporting, so
// a granted core waiting to re-acquire a permit always finds one —
// every running core either finishes its epoch (bounded work) or parks,
// and both release a permit without waiting on the owner.

// Events a core goroutine reports to the epoch owner.
const (
	evGated uint8 = iota // parked at the first shared-resource access
	evDone               // finished the epoch
)

// parRunner owns the persistent per-core goroutines of one System. All
// channels are allocated once at start; steady-state epochs allocate
// nothing.
type parRunner struct {
	permits chan struct{} // concurrency semaphore, cap = effective parallelism
	target  uint64        // instruction target; written by the owner before starts
	start   []chan uint64 // per-core epoch kick, carries epochEnd; closed to stop
	report  []chan uint8  // per-core evGated/evDone
	grant   []chan struct{}
	wg      sync.WaitGroup
}

func newParRunner(s *System) *parRunner {
	n := len(s.cores)
	p := s.cfg.Parallelism
	if p > n {
		p = n
	}
	r := &parRunner{
		permits: make(chan struct{}, p),
		start:   make([]chan uint64, n),
		report:  make([]chan uint8, n),
		grant:   make([]chan struct{}, n),
	}
	for i := 0; i < p; i++ {
		r.permits <- struct{}{}
	}
	for i := range r.start {
		r.start[i] = make(chan uint64, 1)
		r.report[i] = make(chan uint8, 1)
		r.grant[i] = make(chan struct{}, 1)
	}
	r.wg.Add(n)
	for _, c := range s.cores {
		c.par = r
		go r.coreLoop(c)
	}
	return r
}

func (r *parRunner) acquire() { <-r.permits }
func (r *parRunner) release() { r.permits <- struct{}{} }

// coreLoop is the persistent goroutine of one core: kicked once per
// epoch via start, it runs the core to the epoch boundary and reports.
// A core that parked mid-epoch reports from enterShared instead and
// reaches the evDone send here only after being granted the token.
func (r *parRunner) coreLoop(c *Core) {
	defer r.wg.Done()
	for epochEnd := range r.start[c.id] {
		c.tokenHeld = false
		r.acquire()
		c.advance(epochEnd, r.target)
		r.release()
		r.report[c.id] <- evDone
	}
}

// enterShared is the gate every shared-resource access funnels through
// (the top of fetchIntoL2). Serial path and token holders fall through;
// otherwise the core parks until the owner grants it the token. The
// permit is released before parking — see the deadlock note above.
func (c *Core) enterShared() {
	r := c.par
	if r == nil || c.tokenHeld {
		return
	}
	r.release()
	r.report[c.id] <- evGated
	<-r.grant[c.id]
	c.tokenHeld = true
	r.acquire()
}

// runEpoch advances every core through one epoch on the worker
// goroutines. It returns only after all cores reported evDone, so the
// caller may touch any core or shared state afterwards (the channel
// receives establish the happens-before edges).
func (r *parRunner) runEpoch(epochEnd, target uint64) {
	r.target = target
	for _, ch := range r.start {
		ch <- epochEnd
	}
	for i, ch := range r.report {
		if <-ch == evGated {
			r.grant[i] <- struct{}{}
			<-ch // evDone, once the granted core finishes its epoch
		}
	}
}

// stop retires the worker goroutines. The runner must be between
// epochs (runEpoch is synchronous, so any caller is).
func (r *parRunner) stop() {
	for _, ch := range r.start {
		close(ch)
	}
	r.wg.Wait()
}

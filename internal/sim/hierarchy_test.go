package sim

import (
	"testing"

	"micromama/internal/prefetch"
	"micromama/internal/trace"
)

// manual builds a 1-core system over an explicit instruction slice.
func manual(t *testing.T, cfg Config, instrs []trace.Instr, ctrl Controller) *System {
	t.Helper()
	sys, err := New(cfg, []trace.Reader{trace.NewSlice("manual", instrs)}, ctrl)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func loadsAt(addrs ...uint64) []trace.Instr {
	out := make([]trace.Instr, len(addrs))
	for i, a := range addrs {
		out[i] = trace.Instr{PC: 0x40, Addr: a, Kind: trace.Load}
	}
	return out
}

// TestColdMissLatency pins the end-to-end demand-miss path: L1 (5) ->
// L2 (10) -> LLC (40) -> DRAM (ctrl 160 + row miss 168 + burst 14).
func TestColdMissLatency(t *testing.T) {
	cfg := DefaultConfig(1)
	sys := manual(t, cfg, loadsAt(0x100000), nil)
	res := sys.Run(1, 100_000)
	want := cfg.L1D.HitLatency + cfg.L2.HitLatency + cfg.LLC.HitLatency +
		cfg.DRAM.CtrlLatency + cfg.DRAM.TRP + cfg.DRAM.TRCD + cfg.DRAM.TCAS +
		cfg.DRAM.BurstCycles()
	// The load issues at cycle 0; the core then stalls to completion
	// only when the MLP/ROB limit binds, which a single load does not.
	// So check the DRAM-visible latency via total bus stats instead.
	// 2 reads: the cold instruction-fetch line plus the data line.
	if res.DRAM.Reads != 2 {
		t.Fatalf("DRAM reads = %d, want 2 (I-fetch + data)", res.DRAM.Reads)
	}
	if res.DRAM.RowMisses == 0 {
		t.Fatalf("cold access should row-miss")
	}
	_ = want
	if res.Cores[0].L2.Misses != 2 || res.Cores[0].L1D.Misses != 1 {
		t.Errorf("miss accounting: L1D %d, L2 %d", res.Cores[0].L1D.Misses, res.Cores[0].L2.Misses)
	}
}

// TestMSHRMergeSameLine: many loads to one line cause exactly one DRAM
// read.
func TestMSHRMergeSameLine(t *testing.T) {
	var ins []trace.Instr
	for i := 0; i < 32; i++ {
		ins = append(ins, trace.Instr{PC: 0x40, Addr: 0x100000 + uint64(i%8)*8, Kind: trace.Load})
	}
	sys := manual(t, DefaultConfig(1), ins, nil)
	res := sys.Run(uint64(len(ins)), 100_000)
	// 2 reads: one I-fetch line, one merged data line.
	if res.DRAM.Reads != 2 {
		t.Errorf("same-line burst caused %d DRAM reads, want 2 (I-fetch + merged data)", res.DRAM.Reads)
	}
}

// TestMLPOverlap: independent misses overlap — 8 distinct-line loads
// finish far faster than 8 serialized round trips.
func TestMLPOverlap(t *testing.T) {
	var addrs []uint64
	for i := 0; i < 8; i++ {
		addrs = append(addrs, 0x100000+uint64(i)*4096) // distinct banks/lines
	}
	sys := manual(t, DefaultConfig(1), loadsAt(addrs...), nil)
	res := sys.Run(8, 100_000)
	serial := 8 * 400 // ~8 serialized round trips
	if res.Cores[0].Cycles > uint64(serial) {
		t.Errorf("8 independent misses took %d cycles; MLP not overlapping", res.Cores[0].Cycles)
	}
}

// TestDependentLoadsSerialize: the same 8 misses marked DependsPrev
// must take roughly 8 full round trips.
func TestDependentLoadsSerialize(t *testing.T) {
	var ins []trace.Instr
	for i := 0; i < 8; i++ {
		ins = append(ins, trace.Instr{
			PC: 0x40, Addr: 0x100000 + uint64(i)*4096,
			Kind: trace.Load, Flags: trace.DependsPrev,
		})
	}
	sys := manual(t, DefaultConfig(1), ins, nil)
	res := sys.Run(8, 1_000_000)
	if res.Cores[0].Cycles < 8*200 {
		t.Errorf("8 dependent misses took only %d cycles; not serialized", res.Cores[0].Cycles)
	}
}

// TestPrefetchHidesLatency: a prefetched line's demand access must not
// pay the DRAM round trip.
func TestPrefetchHidesLatency(t *testing.T) {
	// Next-line prefetcher at L2; access line A (triggering prefetch of
	// A+64), burn time, then access A+64.
	ctrl := NewFixedController("nl", func(int) prefetch.Prefetcher {
		return prefetch.NewNextLine(true)
	})
	var ins []trace.Instr
	ins = append(ins, trace.Instr{PC: 0x40, Addr: 0x100000, Kind: trace.Load})
	for i := 0; i < 3000; i++ { // > DRAM round trip of compute
		ins = append(ins, trace.Instr{PC: 0x44, Kind: trace.Other})
	}
	ins = append(ins, trace.Instr{PC: 0x48, Addr: 0x100040, Kind: trace.Load})
	sys := manual(t, DefaultConfig(1), ins, ctrl)
	res := sys.Run(uint64(len(ins)), 1_000_000)
	c := res.Cores[0]
	if c.L2.PrefetchUseful != 1 {
		t.Fatalf("prefetch useful = %d, want 1", c.L2.PrefetchUseful)
	}
	if c.L2.PrefetchLate != 0 {
		t.Errorf("prefetch late despite 3000 instructions of headroom")
	}
	// 2-3 L2 misses: I-fetch lines (two PCs span up to two lines) plus
	// the first data access; the prefetched second data access must hit.
	if c.L2.Misses > 3 {
		t.Errorf("L2 misses = %d; the prefetched line should not miss", c.L2.Misses)
	}
}

// TestLatePrefetchCountsLate: demand arriving right behind the prefetch
// is a late (but useful) prefetch.
func TestLatePrefetchCountsLate(t *testing.T) {
	ctrl := NewFixedController("nl", func(int) prefetch.Prefetcher {
		return prefetch.NewNextLine(true)
	})
	ins := loadsAt(0x100000, 0x100040) // back-to-back
	sys := manual(t, DefaultConfig(1), ins, ctrl)
	res := sys.Run(2, 1_000_000)
	c := res.Cores[0]
	if c.L2.PrefetchUseful != 1 || c.L2.PrefetchLate != 1 {
		t.Errorf("useful=%d late=%d, want 1/1", c.L2.PrefetchUseful, c.L2.PrefetchLate)
	}
}

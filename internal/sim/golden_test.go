// Golden determinism tests: fixed-seed simulations must produce
// bit-identical sim.Result snapshots (every counter, cycle count, and
// IPC) across refactors of the hot path. The goldens in
// testdata/golden_results.json were generated against the pre-
// optimization cache/MSHR model; any divergence means an optimization
// changed simulated behavior, not just speed.
//
// Regenerate (only when an *intentional* model change is made) with:
//
//	MAMA_UPDATE_GOLDEN=1 go test ./internal/sim -run TestGoldenDeterminism
package sim_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"micromama/internal/core"
	"micromama/internal/prefetch"
	"micromama/internal/sim"
	"micromama/internal/workload"
)

const goldenPath = "testdata/golden_results.json"

// goldenScenario is one pinned simulation: a mix of catalog traces, a
// controller, and a small fixed instruction target.
type goldenScenario struct {
	name   string
	traces []string
	ctrl   func() sim.Controller
	target uint64
	// serialOnly marks scenarios whose controller must fall back to the
	// serial path even when parallel workers are available (µMama's
	// arbiter, CoordRL's cross-core ledger).
	serialOnly bool
}

func fixedCtrl(name string, f func(int) prefetch.Prefetcher) func() sim.Controller {
	return func() sim.Controller { return sim.NewFixedController(name, f) }
}

func goldenScenarios() []goldenScenario {
	bandit := func() sim.Controller {
		cfg := core.DefaultBanditConfig()
		cfg.Step = 150
		return core.NewBandit(cfg)
	}
	mumama := func() sim.Controller {
		cfg := core.DefaultMuMamaConfig()
		cfg.Step = 150
		return core.NewMuMama(cfg)
	}
	return []goldenScenario{
		// The no-prefetch single-core run mirrors the configuration of
		// BenchmarkSimulatorThroughput: the exact path being optimized.
		{name: "no-1c-stream", traces: []string{"spec06.libquantum"},
			ctrl: func() sim.Controller { return sim.NoPrefetchController() }, target: 150_000},
		// Pointer chasing exercises DependsPrev serialization and the
		// same-line MSHR merge.
		{name: "no-1c-chase", traces: []string{"spec06.mcf"},
			ctrl: func() sim.Controller { return sim.NoPrefetchController() }, target: 120_000},
		// Fixed engines cover the Contains-then-Fill prefetch paths.
		{name: "ipstride-2c", traces: []string{"spec17.cactuBSSN", "spec06.cactusADM"},
			ctrl: fixedCtrl("ip_stride", func(int) prefetch.Prefetcher {
				return prefetch.NewStride("l2_stride", 64, 2)
			}), target: 120_000},
		{name: "spp-2c", traces: []string{"spec06.libquantum", "ligra.BFS"},
			ctrl: fixedCtrl("spp", func(int) prefetch.Prefetcher {
				return prefetch.NewSPP()
			}), target: 120_000},
		// Pythia exercises the prefetch.Feedback hooks (OnUseful /
		// OnUseless), which depend on WasPrefetched and victim metadata.
		{name: "pythia-2c", traces: []string{"spec06.libquantum", "spec06.mcf"},
			ctrl: fixedCtrl("pythia", func(c int) prefetch.Prefetcher {
				return prefetch.NewPythia(uint64(c) + 12345)
			}), target: 120_000},
		// The learning controllers cover the ensemble engines plus the
		// timestep plumbing on the 4-core motivating mix.
		{name: "bandit-4c", traces: []string{"spec06.mcf", "spec17.cactuBSSN", "spec06.cactusADM", "spec06.libquantum"},
			ctrl: bandit, target: 100_000},
		{name: "mumama-4c", traces: []string{"spec06.mcf", "spec17.cactuBSSN", "spec06.cactusADM", "spec06.libquantum"},
			ctrl: mumama, target: 100_000, serialOnly: true},
		// The tournament families: PhaseSelect is core-local (pinned
		// bit-identical serial vs parallel like the fixed engines);
		// CoordRL's cross-core ledger and blended reward must fall back
		// to the serial path.
		{name: "phaseselect-2c", traces: []string{"spec06.libquantum", "spec06.mcf"},
			ctrl: func() sim.Controller {
				cfg := core.DefaultPhaseSelectConfig()
				cfg.Step = 150
				return core.NewPhaseSelect(cfg)
			}, target: 120_000},
		{name: "coordrl-2c", traces: []string{"spec06.libquantum", "spec06.mcf"},
			ctrl: func() sim.Controller {
				cfg := core.DefaultCoordRLConfig()
				cfg.Step = 150
				return core.NewCoordRL(cfg)
			}, target: 120_000, serialOnly: true},
	}
}

// buildGolden constructs one scenario's system from a cold start, with
// the given per-simulation parallelism (0 = the serial reference path).
func buildGolden(t *testing.T, sc goldenScenario, parallelism int) *sim.System {
	t.Helper()
	specs := make([]workload.Spec, len(sc.traces))
	for i, n := range sc.traces {
		sp, err := workload.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		specs[i] = sp
	}
	mix := workload.Mix{Specs: specs}
	cfg := sim.DefaultConfig(len(specs))
	cfg.Parallelism = parallelism
	sys, err := sim.New(cfg, mix.Traces(), sc.ctrl())
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// runGolden executes one scenario serially from a cold start.
func runGolden(t *testing.T, sc goldenScenario) sim.Result {
	t.Helper()
	return buildGolden(t, sc, 0).Run(sc.target, sc.target*14)
}

func marshalGolden(t *testing.T, results map[string]sim.Result) []byte {
	t.Helper()
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(data, '\n')
}

func TestGoldenDeterminism(t *testing.T) {
	results := map[string]sim.Result{}
	for _, sc := range goldenScenarios() {
		results[sc.name] = runGolden(t, sc)
	}
	got := marshalGolden(t, results)

	if os.Getenv("MAMA_UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", goldenPath, len(got))
		return
	}

	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with MAMA_UPDATE_GOLDEN=1 to create): %v", err)
	}
	if bytes.Equal(got, want) {
		return
	}
	// Report which scenario diverged, counter by counter, rather than
	// dumping two multi-KB JSON blobs.
	var wantRes map[string]sim.Result
	if err := json.Unmarshal(want, &wantRes); err != nil {
		t.Fatalf("corrupt golden file: %v", err)
	}
	for _, sc := range goldenScenarios() {
		g, w := results[sc.name], wantRes[sc.name]
		gj, _ := json.Marshal(g)
		wj, _ := json.Marshal(w)
		if !bytes.Equal(gj, wj) {
			t.Errorf("scenario %s diverged from golden\n got: %s\nwant: %s", sc.name, gj, wj)
		}
	}
	if !t.Failed() {
		t.Error("golden bytes differ but no scenario diverged (encoding drift?)")
	}
}

// TestGoldenSerialVsParallel pins the parallel epoch engine's exact-
// equivalence claim: every golden scenario, run at parallelism 1, 2,
// and NumCPU, must produce a Result bit-identical to the serial path.
// It also asserts which engine actually ran: at two or more effective
// workers, multicore scenarios under core-local controllers (fixed
// engines, Bandit with local rewards) must take the parallel path,
// while parallelism 1 (pure overhead), single-core systems, and µMama —
// whose arbiter mutates cross-core state mid-epoch — must fall back to
// serial. GOMAXPROCS is lifted to >= 2 so the engine assertions hold on
// single-proc hosts too.
func TestGoldenSerialVsParallel(t *testing.T) {
	forceMultiProc(t)
	pars := []int{1, 2, runtime.NumCPU()}
	for _, sc := range goldenScenarios() {
		serial := runGolden(t, sc)
		sj, _ := json.Marshal(serial)
		for _, p := range pars {
			sys := buildGolden(t, sc, p)
			got := sys.Run(sc.target, sc.target*14)
			gj, _ := json.Marshal(got)
			if !bytes.Equal(sj, gj) {
				t.Errorf("%s: parallelism %d diverged from serial\n got: %s\nwant: %s",
					sc.name, p, gj, sj)
			}
			wantParallel := p >= 2 && len(sc.traces) >= 2 && !sc.serialOnly
			if gotParallel := sys.ParallelEpochs() > 0; gotParallel != wantParallel {
				t.Errorf("%s: parallelism %d: parallel path ran = %v, want %v (workers %d)",
					sc.name, p, gotParallel, wantParallel, sys.ParallelWorkers())
			}
		}
	}
}

// TestCoreLocalControllerEligibility is the eligibility table: which
// controller families advertise core-local demand hooks (and may
// therefore run on the parallel epoch path) and which must not. This
// pins the *contract*, complementing TestGoldenSerialVsParallel which
// pins the engine's runtime dispatch.
func TestCoreLocalControllerEligibility(t *testing.T) {
	sharedBandit := func() sim.Controller {
		cfg := core.DefaultBanditConfig()
		cfg.SharedReward = true
		return core.NewBandit(cfg)
	}
	timelineBandit := func() sim.Controller {
		cfg := core.DefaultBanditConfig()
		cfg.RecordTimeline = true
		return core.NewBandit(cfg)
	}
	cases := []struct {
		name string
		ctrl func() sim.Controller
		// implements: the controller type asserts to CoreLocalController.
		// coreLocal: and reports true under this configuration.
		implements, coreLocal bool
	}{
		{"fixed/no", func() sim.Controller { return sim.NoPrefetchController() }, true, true},
		{"bandit", func() sim.Controller { return core.NewBandit(core.DefaultBanditConfig()) }, true, true},
		{"bandit-shared", sharedBandit, true, false},
		{"bandit-timeline", timelineBandit, true, false},
		{"mumama", func() sim.Controller { return core.NewMuMama(core.DefaultMuMamaConfig()) }, false, false},
		{"phase-select", func() sim.Controller { return core.NewPhaseSelect(core.PhaseSelectConfig{}) }, true, true},
		{"coord-rl", func() sim.Controller { return core.NewCoordRL(core.CoordRLConfig{}) }, false, false},
	}
	for _, tc := range cases {
		cl, ok := tc.ctrl().(sim.CoreLocalController)
		if ok != tc.implements {
			t.Errorf("%s: implements CoreLocalController = %v, want %v", tc.name, ok, tc.implements)
			continue
		}
		if ok {
			if got := cl.CoreLocalDemand(); got != tc.coreLocal {
				t.Errorf("%s: CoreLocalDemand() = %v, want %v", tc.name, got, tc.coreLocal)
			}
		}
	}
}

// TestGoldenRunToRun guards the determinism claim itself: two cold
// runs of the same scenario in one process must be bit-identical.
func TestGoldenRunToRun(t *testing.T) {
	sc := goldenScenarios()[0]
	a, b := runGolden(t, sc), runGolden(t, sc)
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if !bytes.Equal(aj, bj) {
		t.Fatalf("same-seed runs diverged:\n%s\n%s", aj, bj)
	}
}

package sim

import "micromama/internal/prefetch"

// Controller owns the L2 prefetch engines of every core and decides how
// they are (re)configured over time. The paper's Bandit and µMama
// designs implement this interface in package core; fixed baselines
// (no prefetching, Bingo, Pythia, ...) use FixedController.
type Controller interface {
	// Name identifies the controller in reports.
	Name() string
	// Attach binds the controller to the system before simulation
	// starts; the controller may keep the *System to read per-core
	// instruction/cycle counters when computing interval rewards.
	Attach(sys *System)
	// Engine returns core i's L2 prefetch engine. Called once per core
	// at attach time; the controller mutates the engine's configuration
	// afterwards (e.g. switching Bandit arms).
	Engine(core int) prefetch.Prefetcher
	// OnL2Demand is invoked after each demand access to core i's L2 at
	// core-local cycle now. This is the event that drives agent
	// timesteps (the paper's step = 800 L2 demand accesses).
	OnL2Demand(core int, now uint64)
}

// CoreLocalController is implemented by controllers whose OnL2Demand
// touches only state owned by the demanding core (or commutative
// atomics), making it safe to invoke concurrently from per-core
// goroutines. The parallel epoch engine (parallel.go) runs only under
// such controllers; anything else — notably µMama, whose arbiter
// mutates cross-core state and reads other cores' counters mid-epoch —
// falls back to the serial path automatically. The report is a method,
// not a bare marker, because eligibility can depend on configuration
// (Bandit with a shared reward or timeline recording reads/writes
// cross-core state and must decline).
type CoreLocalController interface {
	// CoreLocalDemand reports whether OnL2Demand is core-local under
	// the controller's current configuration.
	CoreLocalDemand() bool
}

// L1Provider is implemented by controllers that also control the L1D
// prefetcher (the paper's §7 L1+L2 extension). Controllers that do not
// implement it get the default ip_stride prefetcher in every L1D.
type L1Provider interface {
	// L1Engine returns core i's L1D prefetch engine.
	L1Engine(core int) prefetch.Prefetcher
}

// FixedController runs a static prefetcher in every L2 (or none).
type FixedController struct {
	name    string
	factory func(core int) prefetch.Prefetcher
	engines []prefetch.Prefetcher
}

// NewFixedController builds a controller whose engines never change.
// factory is called once per core.
func NewFixedController(name string, factory func(core int) prefetch.Prefetcher) *FixedController {
	return &FixedController{name: name, factory: factory}
}

// NoPrefetchController disables L2 prefetching entirely.
func NoPrefetchController() *FixedController {
	return NewFixedController("no", func(int) prefetch.Prefetcher { return prefetch.None{} })
}

// Name implements Controller.
func (f *FixedController) Name() string { return f.name }

// Attach implements Controller.
func (f *FixedController) Attach(sys *System) {
	f.engines = make([]prefetch.Prefetcher, sys.Config().Cores)
	for i := range f.engines {
		f.engines[i] = f.factory(i)
	}
}

// Engine implements Controller.
func (f *FixedController) Engine(core int) prefetch.Prefetcher { return f.engines[core] }

// OnL2Demand implements Controller; fixed engines ignore timesteps.
func (f *FixedController) OnL2Demand(core int, now uint64) {}

// CoreLocalDemand implements CoreLocalController: a no-op demand hook
// is trivially core-local.
func (f *FixedController) CoreLocalDemand() bool { return true }

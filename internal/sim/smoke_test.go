package sim

import (
	"testing"

	"micromama/internal/prefetch"
	"micromama/internal/trace"
	"micromama/internal/workload"
)

func runSingle(t *testing.T, traceName string, arm int, target uint64) Result {
	t.Helper()
	spec, err := workload.ByName(traceName)
	if err != nil {
		t.Fatal(err)
	}
	var ctrl Controller
	if arm < 0 {
		ctrl = NoPrefetchController()
	} else {
		ctrl = NewFixedController("fixed", func(int) prefetch.Prefetcher {
			e := prefetch.NewEnsemble()
			e.SetArm(arm)
			return e
		})
	}
	sys, err := New(DefaultConfig(1), []trace.Reader{spec.New()}, ctrl)
	if err != nil {
		t.Fatal(err)
	}
	return sys.Run(target, 0)
}

// TestSmokeSingleCore sanity-checks the timing model: a streaming trace
// should be memory-bound without L2 prefetching and visibly faster with
// an aggressive fixed ensemble arm.
func TestSmokeSingleCore(t *testing.T) {
	const target = 300_000
	base := runSingle(t, "spec06.libquantum", -1, target)
	pref := runSingle(t, "spec06.libquantum", 8, target) // streamer degree 6

	baseIPC := base.Cores[0].IPC
	prefIPC := pref.Cores[0].IPC
	t.Logf("libquantum: no-pref IPC=%.3f (L2 MPKI=%.1f), streamer6 IPC=%.3f (L2 MPKI=%.1f, pf issued=%d useful=%d)",
		baseIPC, base.Cores[0].L2MPKI(), prefIPC, pref.Cores[0].L2MPKI(),
		pref.Cores[0].L2PrefIssued, pref.Cores[0].L2.PrefetchUseful)

	if baseIPC <= 0 || baseIPC >= 4 {
		t.Fatalf("implausible baseline IPC %.3f", baseIPC)
	}
	if prefIPC < baseIPC*1.10 {
		t.Errorf("prefetching should speed up streaming by >10%%: base=%.3f pref=%.3f", baseIPC, prefIPC)
	}
}

// TestSmokeChaseInsensitive checks that pointer chasing gains little
// from prefetching and is slow.
func TestSmokeChaseInsensitive(t *testing.T) {
	const target = 200_000
	base := runSingle(t, "spec06.mcf", -1, target)
	pref := runSingle(t, "spec06.mcf", 16, target)
	t.Logf("mcf: no-pref IPC=%.3f MPKI=%.1f, arm16 IPC=%.3f pfIssued=%d useful=%d",
		base.Cores[0].IPC, base.Cores[0].L2MPKI(), pref.Cores[0].IPC,
		pref.Cores[0].L2PrefIssued, pref.Cores[0].L2.PrefetchUseful)
	if base.Cores[0].IPC > 1.0 {
		t.Errorf("pointer chase should be slow, got IPC %.3f", base.Cores[0].IPC)
	}
}

// TestSmokeComputeBound checks that cache-resident code runs near peak.
func TestSmokeComputeBound(t *testing.T) {
	res := runSingle(t, "spec06.povray", -1, 1_500_000)
	t.Logf("povray: IPC=%.3f MPKI=%.2f", res.Cores[0].IPC, res.Cores[0].L2MPKI())
	if res.Cores[0].IPC < 3.0 {
		t.Errorf("compute-bound trace should be near peak IPC 4, got %.3f", res.Cores[0].IPC)
	}
}

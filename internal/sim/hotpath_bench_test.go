package sim

import (
	"testing"

	"micromama/internal/prefetch"
	"micromama/internal/trace"
)

// Core hot-path microbenchmarks: steady-state per-instruction cost of
// Core.advance (trace decode, front end, hierarchy walk, prefetch
// issue) with the system constructed once outside the timed loop, so
// allocs/op reflects the per-instruction path only and must be 0.

func benchSystem(b *testing.B, tr trace.Reader, ctrl Controller) *System {
	b.Helper()
	sys, err := New(DefaultConfig(1), []trace.Reader{tr}, ctrl)
	if err != nil {
		b.Fatal(err)
	}
	// Warm up: run past cold-start growth of the pending-miss FIFO and
	// any lazily sized buffers.
	advanceInstrs(sys, 20_000)
	return sys
}

// advanceInstrs runs the core for roughly n instructions by walking
// epoch windows, reporting exactly how many retired.
func advanceInstrs(sys *System, n uint64) uint64 {
	c := sys.cores[0]
	start := c.instr
	epochEnd := c.cycle + sys.cfg.Epoch
	for c.instr-start < n {
		c.advance(epochEnd, 0)
		epochEnd += sys.cfg.Epoch
	}
	return c.instr - start
}

func benchAdvance(b *testing.B, tr trace.Reader, ctrl Controller) {
	sys := benchSystem(b, tr, ctrl)
	b.ReportAllocs()
	b.ResetTimer()
	var instr uint64
	for i := 0; i < b.N; i++ {
		instr += advanceInstrs(sys, 1000)
	}
	b.StopTimer()
	b.ReportMetric(float64(instr)/b.Elapsed().Seconds(), "instr/s")
}

func streamTrace() trace.Reader {
	return trace.NewStream("bench.stream", trace.StreamConfig{
		Seed: 11, Footprint: 32 << 20, Streams: 4,
		MemRatio: 0.3, StoreRatio: 0.2, Length: 1 << 62,
	})
}

func chaseTrace() trace.Reader {
	return trace.NewChase("bench.chase", trace.ChaseConfig{
		Seed: 13, Footprint: 64 << 20, MemRatio: 0.25, LocalRatio: 0.5, Length: 1 << 62,
	})
}

func computeTrace() trace.Reader {
	return trace.NewCompute("bench.compute", trace.ComputeConfig{
		Seed: 17, WorkingSet: 32 << 10, MemRatio: 0.3, Length: 1 << 62,
	})
}

// BenchmarkCoreAdvanceL1Hit: cache-resident working set, nearly every
// access an L1 hit — the single hottest path in any simulation.
func BenchmarkCoreAdvanceL1Hit(b *testing.B) {
	benchAdvance(b, computeTrace(), NoPrefetchController())
}

// BenchmarkCoreAdvanceStream: streaming misses through the whole
// hierarchy with no prefetching.
func BenchmarkCoreAdvanceStream(b *testing.B) {
	benchAdvance(b, streamTrace(), NoPrefetchController())
}

// BenchmarkCoreAdvanceChase: dependent pointer chasing (DependsPrev
// serialization and the same-line MSHR merge scan).
func BenchmarkCoreAdvanceChase(b *testing.B) {
	benchAdvance(b, chaseTrace(), NoPrefetchController())
}

// BenchmarkCoreAdvancePrefetch: streaming with an L2 stride engine, so
// the Contains-then-Fill prefetch-issue path runs every few accesses.
func BenchmarkCoreAdvancePrefetch(b *testing.B) {
	ctrl := NewFixedController("l2_stride", func(int) prefetch.Prefetcher {
		return prefetch.NewStride("l2_stride", 64, 2)
	})
	benchAdvance(b, streamTrace(), ctrl)
}

package sim

import (
	"context"
	"fmt"
	"runtime"

	"micromama/internal/cache"
	"micromama/internal/dram"
	"micromama/internal/noc"
	"micromama/internal/trace"
)

// bwSampleEpochs controls how often recent DRAM-bus utilization is
// re-sampled and pushed to bandwidth-aware engines (Pythia).
const bwSampleEpochs = 1024

// bandwidthAware is implemented by engines that scale behaviour with
// memory-bus load.
type bandwidthAware interface {
	SetBandwidthUtil(u float64)
}

// System is one simulated multicore: cores with private L1D/L2, a
// shared LLC, DRAM, and a prefetch controller.
type System struct {
	cfg        Config
	cores      []*Core
	llc        *cache.Cache
	dram       *dram.DRAM
	network    *noc.Network
	controller Controller

	frozen int // cores that reached their instruction target

	// Persistent epoch-loop state, so stepping is resumable: RunContext
	// and the chunked Advance API share one clock.
	epochEnd uint64 // upper cycle bound of the next epoch to run
	epochs   uint64 // epochs completed
	warmed   bool   // functional warmup already performed

	// Parallel epoch engine (nil while on the serial path); see
	// parallel.go.
	par          *parRunner
	parEpochs    uint64
	pubParEpochs uint64

	pubInstr  uint64 // totals already published to telemetry
	pubEpochs uint64

	lastBWCycle uint64
	lastBWBusy  uint64
	recentUtil  float64
}

// New builds a system running the given traces (one per core) under the
// given prefetch controller. Traces are looped if they end early.
func New(cfg Config, traces []trace.Reader, ctrl Controller) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(traces) != cfg.Cores {
		return nil, fmt.Errorf("sim: %d traces for %d cores", len(traces), cfg.Cores)
	}
	if ctrl == nil {
		ctrl = NoPrefetchController()
	}
	s := &System{
		cfg:        cfg,
		llc:        cache.New(cfg.LLC),
		dram:       dram.New(cfg.DRAM),
		network:    noc.New(cfg.NoC),
		controller: ctrl,
	}
	ctrl.Attach(s)
	s.cores = make([]*Core, cfg.Cores)
	for i := range s.cores {
		s.cores[i] = newCore(s, i, traces[i], ctrl.Engine(i))
	}
	s.epochEnd = cfg.Epoch
	return s, nil
}

// Config returns the system configuration.
func (s *System) Config() Config { return s.cfg }

// Controller returns the attached prefetch controller.
func (s *System) Controller() Controller { return s.controller }

// Network returns the µMama communication fabric.
func (s *System) Network() *noc.Network { return s.network }

// DRAM returns the memory model (for stats).
func (s *System) DRAM() *dram.DRAM { return s.dram }

// LLCStats returns the shared-LLC counters.
func (s *System) LLCStats() cache.Stats { return s.llc.Stats() }

// Instructions returns core i's retired instruction count.
func (s *System) Instructions(core int) uint64 { return s.cores[core].instr }

// Cycles returns core i's local cycle counter.
func (s *System) Cycles(core int) uint64 { return s.cores[core].cycle }

// L2Stats returns core i's L2 counters.
func (s *System) L2Stats(core int) cache.Stats { return s.cores[core].l2.Stats() }

// L1DStats returns core i's L1D counters.
func (s *System) L1DStats(core int) cache.Stats { return s.cores[core].l1d.Stats() }

// RecentBandwidthUtil returns the most recent sampled DRAM-bus
// utilization in [0, 1].
func (s *System) RecentBandwidthUtil() float64 { return s.recentUtil }

// TraceName returns the name of the trace running on core i.
func (s *System) TraceName(core int) string { return s.cores[core].traceName }

// Run simulates until every core has retired at least target
// instructions (cores that finish early keep running, preserving
// contention, but their reported stats freeze at the target — the
// paper's methodology). maxCycles guards against pathological stalls; 0
// means no guard.
func (s *System) Run(target uint64, maxCycles uint64) Result {
	res, _ := s.RunContext(context.Background(), target, maxCycles)
	return res
}

// ctxCheckEpochs is how often (in epochs) RunContext polls its context;
// at the default 64-cycle epoch this is a check every ~16K cycles.
const ctxCheckEpochs = 256

// RunContext is Run with cooperative cancellation: the context is
// polled at epoch granularity, and on cancellation the simulation stops
// early and returns the partial Result alongside ctx.Err(). Callers
// that need a hard per-job bound (the mamaserved worker pool) combine
// this with context.WithTimeout.
//
// When Config.Parallelism admits it (see startParallel), per-core work
// runs on worker goroutines between epoch boundaries; the result is
// bit-identical to the serial path either way. The workers are retired
// before RunContext returns, so a System driven this way never leaks
// goroutines.
func (s *System) RunContext(ctx context.Context, target uint64, maxCycles uint64) (Result, error) {
	simRunsTotal.Inc()
	simRunsActive.Add(1)
	defer simRunsActive.Add(-1)
	defer s.stopParallel()
	s.functionalWarmup()
	s.startParallel()
	// Telemetry publication rides the existing context-poll cadence: a
	// handful of atomic adds every ctxCheckEpochs epochs, nothing inside
	// Core.advance itself.
	for s.frozen < len(s.cores) {
		s.stepEpoch(target)
		if s.epochs%ctxCheckEpochs == 0 {
			s.publishProgress()
			if err := ctx.Err(); err != nil {
				s.finishRunTelemetry()
				return s.Result(target), err
			}
		}
		if maxCycles > 0 && s.epochEnd > maxCycles {
			break
		}
	}
	s.publishProgress()
	s.finishRunTelemetry()
	return s.Result(target), nil
}

// Advance is the chunked stepping API: it runs at most epochs further
// simulation epochs toward target and reports whether every core has
// now reached it. Unlike RunContext it neither publishes run telemetry
// nor retires the parallel workers between calls — steady-state
// stepping is allocation-free — so callers that stop before completion
// must Close the system. The first call performs functional warmup and
// spins up the parallel engine if configured.
func (s *System) Advance(target uint64, epochs uint64) bool {
	s.functionalWarmup()
	s.startParallel()
	for i := uint64(0); i < epochs; i++ {
		if s.frozen >= len(s.cores) {
			return true
		}
		s.stepEpoch(target)
	}
	return s.frozen >= len(s.cores)
}

// stepEpoch advances every core through one epoch — serially or on the
// parallel runner — then performs the boundary work that must see all
// cores quiescent. Both paths share this function, so their boundary
// behavior is structurally identical.
func (s *System) stepEpoch(target uint64) {
	if s.par != nil {
		s.par.runEpoch(s.epochEnd, target)
		s.parEpochs++
	} else {
		for _, c := range s.cores {
			c.advance(s.epochEnd, target)
		}
	}
	s.epochEnd += s.cfg.Epoch
	s.epochs++
	s.recountFrozen()
	if s.epochs%bwSampleEpochs == 0 {
		s.sampleBandwidth(s.epochEnd)
	}
}

// recountFrozen refreshes the frozen-core count at an epoch boundary.
// Freezing itself is core-local (advance may run off the owner
// goroutine), so the count is recomputed here rather than incremented
// at freeze time.
func (s *System) recountFrozen() {
	n := 0
	for _, c := range s.cores {
		if c.frozenAt != 0 {
			n++
		}
	}
	s.frozen = n
}

// Close retires the parallel engine's worker goroutines, if running.
// RunContext does this itself on every exit path; only callers driving
// the system through Advance need to Close explicitly. The system
// remains usable afterwards (a later run restarts the engine). Safe to
// call repeatedly.
func (s *System) Close() { s.stopParallel() }

// functionalWarmup fast-forwards every core through
// Config.WarmupInstructions in content-only mode, then clears the cache
// counters so the timed region starts from warm arrays but zeroed
// stats. Runs once, serially and in core order (so it is deterministic
// and needs no arbitration), before the parallel engine starts.
func (s *System) functionalWarmup() {
	if s.warmed || s.cfg.WarmupInstructions == 0 {
		return
	}
	s.warmed = true
	for _, c := range s.cores {
		c.warmupAdvance(s.cfg.WarmupInstructions)
	}
	for _, c := range s.cores {
		c.l1i.ResetStats()
		c.l1d.ResetStats()
		c.l2.ResetStats()
	}
	s.llc.ResetStats()
}

func (s *System) sampleBandwidth(now uint64) {
	busy := s.dram.BusBusy()
	dc := now - s.lastBWCycle
	db := busy - s.lastBWBusy
	if dc > 0 {
		s.recentUtil = float64(db) / (float64(dc) * float64(s.cfg.DRAM.Channels))
		if s.recentUtil > 1 {
			s.recentUtil = 1
		}
	}
	s.lastBWCycle, s.lastBWBusy = now, busy
	for _, c := range s.cores {
		if ba, ok := c.l2Engine.(bandwidthAware); ok {
			ba.SetBandwidthUtil(s.recentUtil)
		}
	}
}

// startParallel spins up the parallel epoch engine when the
// configuration and controller admit it; otherwise the system stays on
// the serial reference path. Eligibility (see ParallelWorkers): at
// least two cores and two effective workers (a 1-core system has
// nothing to overlap, a 1-worker engine only adds barrier overhead), a
// multi-proc host (GOMAXPROCS >= 2), and a controller that declares its
// demand hook core-local (CoreLocalController) — controllers that
// mutate cross-core state on demand accesses, like µMama's arbiter,
// silently fall back to serial.
func (s *System) startParallel() {
	if s.par != nil || s.ParallelWorkers() == 0 {
		return
	}
	s.par = newParRunner(s)
	simParRunsTotal.Inc()
}

// stopParallel retires the worker goroutines and returns the system to
// the serial path. Idempotent.
func (s *System) stopParallel() {
	if s.par == nil {
		return
	}
	s.par.stop()
	s.par = nil
	for _, c := range s.cores {
		c.par = nil
	}
}

// ParallelWorkers reports the concurrency the parallel engine runs (or
// would run) with; 0 means the serial reference path. Beyond the model
// eligibility rules (>= 2 cores, core-local controller), the engine only
// engages when it can actually win: an effective worker count of 1, or a
// process capped at GOMAXPROCS(1), pays the epoch-barrier and channel
// overhead with zero overlap — the BENCH_baseline regression that
// motivated this guard showed 8c "parallel" 9% slower than serial on a
// single-proc host.
func (s *System) ParallelWorkers() int {
	if s.cfg.Parallelism < 1 || len(s.cores) < 2 {
		return 0
	}
	cl, ok := s.controller.(CoreLocalController)
	if !ok || !cl.CoreLocalDemand() {
		return 0
	}
	p := s.cfg.Parallelism
	if p > len(s.cores) {
		p = len(s.cores)
	}
	if p <= 1 || runtime.GOMAXPROCS(0) == 1 {
		return 0
	}
	return p
}

// ParallelEpochs reports how many epochs the parallel engine has
// executed (tests use this to assert which path actually ran).
func (s *System) ParallelEpochs() uint64 { return s.parEpochs }

// CoreResult reports one core's frozen-at-target statistics.
type CoreResult struct {
	Trace        string
	Instructions uint64
	Cycles       uint64
	IPC          float64
	L1D          cache.Stats
	L2           cache.Stats
	L1PrefIssued uint64
	L2PrefIssued uint64
	PrefDropped  uint64
}

// L2MPKI returns demand L2 misses per thousand instructions.
func (r CoreResult) L2MPKI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.L2.Misses) * 1000 / float64(r.Instructions)
}

// Result aggregates a finished simulation.
type Result struct {
	Controller string
	Cores      []CoreResult
	LLC        cache.Stats
	DRAM       dram.Stats
}

// TotalPrefetches sums prefetches issued at all levels by all cores.
func (r Result) TotalPrefetches() uint64 {
	var t uint64
	for _, c := range r.Cores {
		t += c.L1PrefIssued + c.L2PrefIssued
	}
	return t
}

// TotalL2Prefetches sums L2 prefetches issued by all cores.
func (r Result) TotalL2Prefetches() uint64 {
	var t uint64
	for _, c := range r.Cores {
		t += c.L2PrefIssued
	}
	return t
}

// Result snapshots per-core stats, preferring the frozen-at-target
// values when a core crossed the target.
func (s *System) Result(target uint64) Result {
	res := Result{Controller: s.controller.Name(), LLC: s.llc.Stats(), DRAM: s.dram.Stats()}
	res.Cores = make([]CoreResult, len(s.cores))
	for i, c := range s.cores {
		cr := CoreResult{Trace: c.traceName}
		if c.frozenAt > 0 {
			cr.Instructions = target
			cr.Cycles = c.frozenAt
			cr.L1D = c.frozenL1D
			cr.L2 = c.frozenL2
			cr.L1PrefIssued = c.frozenL1Pref
			cr.L2PrefIssued = c.frozenL2Pref
			cr.PrefDropped = c.frozenDropped
		} else {
			cr.Instructions = c.instr
			cr.Cycles = c.cycle
			cr.L1D = c.l1d.Stats()
			cr.L2 = c.l2.Stats()
			cr.L1PrefIssued = c.l1PrefIssued
			cr.L2PrefIssued = c.l2PrefIssued
			cr.PrefDropped = c.prefDropped
		}
		if cr.Cycles > 0 {
			cr.IPC = float64(cr.Instructions) / float64(cr.Cycles)
		}
		res.Cores[i] = cr
	}
	return res
}

// Package profiling wires the standard runtime profilers into the
// command-line tools: a CPU profile collected for the life of the
// process and a heap profile written at exit. Both are opt-in via file
// paths (empty means off) and are read with `go tool pprof`.
//
// The long-running service (mamaserved) exposes the same data over
// HTTP via net/http/pprof instead; see internal/server.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins the profilers selected by the given output paths and
// returns a stop function flushing them. The stop function is
// idempotent, so it can be both deferred and called explicitly before
// os.Exit (which skips deferred calls).
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiling: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiling: start cpu profile: %w", err)
		}
	}
	stopped := false
	return func() {
		if stopped {
			return
		}
		stopped = true
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "profiling:", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "profiling:", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize final live-heap statistics
			if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "profiling: write heap profile:", err)
			}
		}
	}, nil
}

package tournament

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"micromama/internal/experiment"
)

func tinySpec() Spec {
	return Spec{
		Controllers: []string{"no", "bandit", "phase-select"},
		CoreCounts:  []int{2},
		Seeds:       1,
		ScaleName:   "tiny",
		Scale:       experiment.ScaleTiny,
	}
}

func TestCellsDeterministicAndOrdered(t *testing.T) {
	s := tinySpec()
	cells1, metas1, err := s.Cells()
	if err != nil {
		t.Fatal(err)
	}
	cells2, metas2, err := s.Cells()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cells1, cells2) || !reflect.DeepEqual(metas1, metas2) {
		t.Fatal("expansion not deterministic")
	}
	wantCells := len(s.Controllers) * s.Scale.MixCount
	if len(cells1) != wantCells {
		t.Fatalf("expanded %d cells, want %d", len(cells1), wantCells)
	}
	// Every controller must race the same arenas.
	arenas := map[string]map[string]bool{}
	for _, m := range metas1 {
		if arenas[m.Group()] == nil {
			arenas[m.Group()] = map[string]bool{}
		}
		arenas[m.Group()][m.Controller] = true
	}
	for g, ctrls := range arenas {
		if len(ctrls) != len(s.Controllers) {
			t.Errorf("arena %s raced by %d controllers, want %d", g, len(ctrls), len(s.Controllers))
		}
	}
}

func TestValidateRejectsUnknownController(t *testing.T) {
	s := tinySpec()
	s.Controllers = append(s.Controllers, "phase-selekt")
	_, _, err := s.Cells()
	if err == nil {
		t.Fatal("unknown controller accepted")
	}
	if !strings.Contains(err.Error(), "phase-select") || !strings.Contains(err.Error(), "coord-rl") {
		t.Errorf("error does not name the known set: %v", err)
	}
}

func TestAggregateRanksAndPairwise(t *testing.T) {
	s := tinySpec()
	_, metas, err := s.Cells()
	if err != nil {
		t.Fatal(err)
	}
	// Synthetic results: "bandit" always best, "no" always worst.
	score := map[string]float64{"no": 1.0, "phase-select": 1.2, "bandit": 1.5}
	results := map[int]CellResult{}
	for i, m := range metas {
		ws := score[m.Controller]
		results[i] = CellResult{WS: ws, HS: ws * 0.9, GM: ws * 0.95, Unfairness: 1.1}
	}
	rep := s.Aggregate(metas, results)
	wantOrder := []string{"bandit", "phase-select", "no"}
	for i, w := range wantOrder {
		if rep.Rows[i].Controller != w {
			t.Fatalf("rank %d = %q, want %q", i+1, rep.Rows[i].Controller, w)
		}
		if rep.Rows[i].Rank != i+1 {
			t.Errorf("row %d Rank = %d", i, rep.Rows[i].Rank)
		}
	}
	arenaCount := s.Scale.MixCount // one arena per mix here
	top := rep.Rows[0]
	if top.Wins != 2*arenaCount || top.Losses != 0 {
		t.Errorf("top W-L = %d-%d, want %d-0", top.Wins, top.Losses, 2*arenaCount)
	}
	bottom := rep.Rows[len(rep.Rows)-1]
	if bottom.Wins != 0 || bottom.Losses != 2*arenaCount {
		t.Errorf("bottom W-L = %d-%d, want 0-%d", bottom.Wins, bottom.Losses, 2*arenaCount)
	}
	if rep.Wins[0][2] != arenaCount || rep.Wins[2][0] != 0 {
		t.Errorf("pairwise matrix wrong: %v", rep.Wins)
	}
	// PhaseSelect must be flagged parallel-eligible, bandit too, and
	// the renderings must not be empty.
	for _, row := range rep.Rows {
		if (row.Controller == "phase-select" || row.Controller == "bandit") && !row.CoreLocal {
			t.Errorf("%s not marked core-local", row.Controller)
		}
	}
	if !strings.Contains(rep.String(), "Pairwise wins") {
		t.Error("String() missing win matrix")
	}
	if !strings.Contains(rep.SVG(), "<svg") {
		t.Error("SVG() empty")
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Errorf("report not JSON-serializable: %v", err)
	}
}

func TestAggregateTies(t *testing.T) {
	s := tinySpec()
	_, metas, err := s.Cells()
	if err != nil {
		t.Fatal(err)
	}
	results := map[int]CellResult{}
	for i := range metas {
		results[i] = CellResult{WS: 1.0}
	}
	rep := s.Aggregate(metas, results)
	arenaCount := s.Scale.MixCount
	for _, row := range rep.Rows {
		if row.Wins != 0 || row.Losses != 0 {
			t.Errorf("%s W-L = %d-%d on all-equal results", row.Controller, row.Wins, row.Losses)
		}
		if row.Ties != 2*arenaCount {
			t.Errorf("%s ties = %d, want %d", row.Controller, row.Ties, 2*arenaCount)
		}
	}
}

// TestLocalRunDeterministicLeaderboard runs a microscopic tournament
// twice end to end and demands the identical report — the acceptance
// criterion "same cells → same ranking across two runs".
func TestLocalRunDeterministicLeaderboard(t *testing.T) {
	if testing.Short() {
		t.Skip("full simulations")
	}
	spec := Spec{
		Controllers: []string{"no", "bandit"},
		CoreCounts:  []int{2},
		Seeds:       1,
		ScaleName:   "tiny",
		Scale:       experiment.Scale{Target: 120_000, MaxCyclesFactor: 12, MixCount: 1, Seed: 7, Step: 150},
	}
	run := func() *Report {
		r := experiment.NewRunner(spec.Scale)
		rep, err := Run(context.Background(), r, spec)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.String() != b.String() {
		t.Fatalf("tournament not deterministic:\n--- run 1 ---\n%s--- run 2 ---\n%s", a, b)
	}
	for _, row := range a.Rows {
		if row.Cells != 1 {
			t.Errorf("%s aggregated %d cells, want 1", row.Controller, row.Cells)
		}
		if row.MeanWS <= 0 {
			t.Errorf("%s mean WS = %g", row.Controller, row.MeanWS)
		}
	}
}

// Package tournament races every prefetch-coordination family in the
// repo head-to-head over the workload catalog and ranks them. A
// tournament is just a deterministic sweep: (controllers × core counts
// × seed replicas × sampled mixes) expands to the exact cells the sweep
// API schedules, so running one against a warm mamaserved answers
// entirely from the content-addressed result cache. Aggregation
// produces WS/HS/GM/fairness leaderboards plus a per-pair win/loss
// matrix on per-cell weighted speedup, and renders via internal/plot —
// the ROADMAP's "Fig-9/10-style wins against new baselines" table.
package tournament

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"micromama/internal/experiment"
	"micromama/internal/plot"
	"micromama/internal/sim"
	"micromama/internal/sweep"
	"micromama/internal/workload"
)

// Spec describes a tournament. The zero value is unusable; fill
// Controllers and use a named scale.
type Spec struct {
	// Controllers are the experiment controller keys racing each other.
	Controllers []string
	// CoreCounts are the multicore sizes raced (each samples its own
	// mixes from the catalog).
	CoreCounts []int
	// Seeds is the number of seed replicas: replica i samples mixes
	// with Scale.Seed+i, so Seeds>1 widens the sample without
	// re-running identical cells.
	Seeds int
	// ScaleName and Scale set the per-cell simulation budget.
	ScaleName string
	Scale     experiment.Scale
	// Target/Step override the scale's per-cell budget (0 = keep).
	Target uint64
	Step   uint64
}

// CellMeta locates one expanded cell in the tournament's aggregation
// space. Group() identifies the arena (everything but the controller):
// cells in the same group raced the same workload under the same
// conditions and are comparable pairwise.
type CellMeta struct {
	Cores      int
	SeedIdx    int
	Controller string
	Mix        string
}

// Group returns the arena key shared by all controllers racing this
// cell's workload.
func (m CellMeta) Group() string {
	return fmt.Sprintf("%dc/s%d/%s", m.Cores, m.SeedIdx, m.Mix)
}

// CellResult is the per-cell metric slice the aggregation consumes —
// the same fields whether the cells ran locally or came back from a
// sweep stream.
type CellResult struct {
	WS         float64 `json:"ws"`
	HS         float64 `json:"hs"`
	GM         float64 `json:"gm"`
	Unfairness float64 `json:"unfairness"`
}

// Validate checks the spec against the controller registry, mirroring
// the server-side 400: an unknown controller fails fast with the known
// set instead of failing mid-sweep.
func (s *Spec) Validate() error {
	if len(s.Controllers) == 0 {
		return fmt.Errorf("tournament: no controllers")
	}
	known := map[string]bool{}
	for _, k := range experiment.ControllerKeys {
		known[k] = true
	}
	for _, c := range s.Controllers {
		if !known[c] {
			return fmt.Errorf("tournament: unknown controller %q (known: %s)",
				c, strings.Join(experiment.ControllerKeys, ", "))
		}
	}
	if len(s.CoreCounts) == 0 {
		return fmt.Errorf("tournament: no core counts")
	}
	if s.Seeds <= 0 {
		return fmt.Errorf("tournament: Seeds must be >= 1")
	}
	return nil
}

// Cells expands the tournament deterministically into sweep cells and
// their aggregation metadata, in a fixed nesting order (cores → seed
// replica → controller → mix). The same spec always yields the same
// cells in the same order, which is what makes a warm resubmission a
// pure cache read.
func (s *Spec) Cells() ([]sweep.Cell, []CellMeta, error) {
	if err := s.Validate(); err != nil {
		return nil, nil, err
	}
	var cells []sweep.Cell
	var metas []CellMeta
	for _, cores := range s.CoreCounts {
		for seedIdx := 0; seedIdx < s.Seeds; seedIdx++ {
			mixes := workload.Mixes(cores, s.Scale.MixCount, s.Scale.Seed+uint64(seedIdx))
			for _, key := range s.Controllers {
				for _, mix := range mixes {
					names := make([]string, len(mix.Specs))
					for i, sp := range mix.Specs {
						names[i] = sp.Name
					}
					cells = append(cells, sweep.Cell{
						Mix:        names,
						Controller: key,
						Scale:      s.ScaleName,
						Seed:       uint64(mix.ID),
						Target:     s.Target,
						Step:       s.Step,
					})
					metas = append(metas, CellMeta{
						Cores:      cores,
						SeedIdx:    seedIdx,
						Controller: key,
						Mix:        strings.Join(names, "+"),
					})
				}
			}
		}
	}
	return cells, metas, nil
}

// SweepSpec wraps the expanded cells as a named sweep for the remote
// path.
func (s *Spec) SweepSpec() (sweep.Spec, []CellMeta, error) {
	cells, metas, err := s.Cells()
	if err != nil {
		return sweep.Spec{}, nil, err
	}
	name := fmt.Sprintf("tournament-%s-%dx%d", s.ScaleName, len(s.Controllers), s.Seeds)
	return sweep.Spec{Name: name, Cells: cells}, metas, nil
}

// Row is one leaderboard line.
type Row struct {
	Rank       int     `json:"rank"`
	Controller string  `json:"controller"`
	CoreLocal  bool    `json:"core_local"`
	Cells      int     `json:"cells"`
	MeanWS     float64 `json:"mean_ws"`
	MeanHS     float64 `json:"mean_hs"`
	MeanGM     float64 `json:"mean_gm"`
	MeanUnfair float64 `json:"mean_unfairness"`
	Wins       int     `json:"wins"`
	Losses     int     `json:"losses"`
	Ties       int     `json:"ties"`
}

// Report is the aggregated tournament: the leaderboard (ranked by mean
// WS, controller name as the deterministic tiebreak) and the pairwise
// win matrix on per-cell WS.
type Report struct {
	ScaleName  string `json:"scale"`
	CoreCounts []int  `json:"core_counts"`
	Seeds      int    `json:"seeds"`
	Rows       []Row  `json:"leaderboard"`
	// Wins[i][j] counts arenas where Rows[i].Controller strictly beat
	// Rows[j].Controller on WS; diagonal is 0.
	Wins [][]int `json:"wins"`
}

// Aggregate folds per-cell results into the tournament report. results
// is keyed by cell index into metas; every index must be present
// (partial tournaments are an error at the driver layer, not here — a
// missing index simply contributes nothing).
func (s *Spec) Aggregate(metas []CellMeta, results map[int]CellResult) *Report {
	type acc struct {
		ws, hs, gm, unfair float64
		n                  int
	}
	byCtrl := map[string]*acc{}
	for _, key := range s.Controllers {
		byCtrl[key] = &acc{}
	}
	// Arena → controller → WS, for the pairwise matrix.
	arenas := map[string]map[string]float64{}
	for idx, res := range results {
		m := metas[idx]
		a := byCtrl[m.Controller]
		a.ws += res.WS
		a.hs += res.HS
		a.gm += res.GM
		a.unfair += res.Unfairness
		a.n++
		g := m.Group()
		if arenas[g] == nil {
			arenas[g] = map[string]float64{}
		}
		arenas[g][m.Controller] = res.WS
	}

	coreLocal := map[string]bool{}
	for _, info := range experiment.ControllerCatalog() {
		coreLocal[info.Key] = info.CoreLocal
	}

	rows := make([]Row, 0, len(s.Controllers))
	for _, key := range s.Controllers {
		a := byCtrl[key]
		r := Row{Controller: key, CoreLocal: coreLocal[key], Cells: a.n}
		if a.n > 0 {
			n := float64(a.n)
			r.MeanWS, r.MeanHS, r.MeanGM, r.MeanUnfair = a.ws/n, a.hs/n, a.gm/n, a.unfair/n
		}
		rows = append(rows, r)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].MeanWS != rows[j].MeanWS {
			return rows[i].MeanWS > rows[j].MeanWS
		}
		return rows[i].Controller < rows[j].Controller
	})

	rank := map[string]int{}
	for i := range rows {
		rows[i].Rank = i + 1
		rank[rows[i].Controller] = i
	}

	wins := make([][]int, len(rows))
	for i := range wins {
		wins[i] = make([]int, len(rows))
	}
	// Deterministic arena iteration only matters for floating-point-free
	// integer counts, but keep it ordered anyway for reproducible debug
	// output.
	groups := make([]string, 0, len(arenas))
	for g := range arenas {
		groups = append(groups, g)
	}
	sort.Strings(groups)
	for _, g := range groups {
		ws := arenas[g]
		for _, a := range s.Controllers {
			for _, b := range s.Controllers {
				if a == b {
					continue
				}
				wa, oka := ws[a]
				wb, okb := ws[b]
				if !oka || !okb {
					continue
				}
				switch {
				case wa > wb:
					wins[rank[a]][rank[b]]++
				case wa == wb:
					rows[rank[a]].Ties++
				}
			}
		}
	}
	for i := range rows {
		for j := range rows {
			rows[i].Wins += wins[i][j]
			rows[i].Losses += wins[j][i]
		}
	}

	return &Report{
		ScaleName:  s.ScaleName,
		CoreCounts: s.CoreCounts,
		Seeds:      s.Seeds,
		Rows:       rows,
		Wins:       wins,
	}
}

// String renders the leaderboard and win matrix as text.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Controller tournament (scale %s, cores %v, %d seed replica(s))\n",
		r.ScaleName, r.CoreCounts, r.Seeds)
	fmt.Fprintf(&b, "%-4s %-16s %-9s %-6s %8s %8s %8s %8s %10s\n",
		"rank", "controller", "parallel", "cells", "WS", "HS", "GM", "unfair", "W-L-T")
	for _, row := range r.Rows {
		par := "serial"
		if row.CoreLocal {
			par = "parallel"
		}
		fmt.Fprintf(&b, "%-4d %-16s %-9s %-6d %8.3f %8.3f %8.3f %8.3f %4d-%d-%d\n",
			row.Rank, row.Controller, par, row.Cells,
			row.MeanWS, row.MeanHS, row.MeanGM, row.MeanUnfair,
			row.Wins, row.Losses, row.Ties)
	}
	b.WriteString("\nPairwise wins (row beats column on per-arena WS):\n")
	fmt.Fprintf(&b, "%-16s", "")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, " %7.7s", row.Controller)
	}
	b.WriteByte('\n')
	for i, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s", row.Controller)
		for j := range r.Rows {
			if i == j {
				fmt.Fprintf(&b, " %7s", "-")
			} else {
				fmt.Fprintf(&b, " %7d", r.Wins[i][j])
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SVG renders the leaderboard as grouped WS/HS bars.
func (r *Report) SVG() string {
	groups := make([]plot.BarGroup, len(r.Rows))
	for i, row := range r.Rows {
		groups[i] = plot.BarGroup{
			Label:  row.Controller,
			Values: []float64{row.MeanWS, row.MeanHS},
		}
	}
	title := fmt.Sprintf("Controller tournament (scale %s)", r.ScaleName)
	return plot.Bar(title, "mean speedup", []string{"WS", "HS"}, groups)
}

// Run executes the tournament locally through an experiment.Runner,
// grouping cells so each (cores, seed, controller) batch shares the
// runner's baseline warming and worker pool. The aggregation consumes
// exactly the per-cell metrics the sweep path streams, so local and
// remote tournaments over the same cells produce the same report.
func Run(ctx context.Context, r *experiment.Runner, spec Spec) (*Report, error) {
	_, metas, err := spec.Cells()
	if err != nil {
		return nil, err
	}
	if spec.Target > 0 && spec.Target != r.Scale.Target {
		// A Target override changes the budget of every cell, which is
		// part of the runner's baseline cache keys — stand up a fresh
		// runner at the overridden scale rather than mutating the
		// caller's (Runner holds a mutex; it must not be copied).
		scale := r.Scale
		scale.Target = spec.Target
		nr := experiment.NewRunner(scale)
		nr.Workers = r.Workers
		nr.SimParallelism = r.SimParallelism
		nr.BaseCtx = r.BaseCtx
		r = nr
	}
	results := make(map[int]CellResult, len(metas))
	idx := 0
	for _, cores := range spec.CoreCounts {
		for seedIdx := 0; seedIdx < spec.Seeds; seedIdx++ {
			mixes := workload.Mixes(cores, spec.Scale.MixCount, spec.Scale.Seed+uint64(seedIdx))
			for _, key := range spec.Controllers {
				cfg := sim.DefaultConfig(cores)
				opt := experiment.Options{Step: spec.Step}
				rs, err := r.RunMixesContext(ctx, mixes, cfg, key, opt)
				if err != nil {
					return nil, fmt.Errorf("tournament: %dc seed %d %s: %w", cores, seedIdx, key, err)
				}
				for _, res := range rs {
					results[idx] = CellResult{
						WS: res.WS, HS: res.HS, GM: res.GM, Unfairness: res.Unfairness,
					}
					idx++
				}
			}
		}
	}
	return spec.Aggregate(metas, results), nil
}

package sweep

import (
	"reflect"
	"testing"
)

// drain pops until empty, recording the sweep each slot went to.
func drain(s *sched) []string {
	var order []string
	for {
		id, _, ok := s.pop()
		if !ok {
			return order
		}
		order = append(order, id)
	}
}

// TestSchedFIFOWithinSweep: one sweep's cells come back in push order.
func TestSchedFIFOWithinSweep(t *testing.T) {
	s := newSched()
	s.add("a", 1)
	for i := 0; i < 5; i++ {
		s.push("a", i)
	}
	for want := 0; want < 5; want++ {
		id, cell, ok := s.pop()
		if !ok || id != "a" || cell != want {
			t.Fatalf("pop = %s/%d/%v, want a/%d/true", id, cell, ok, want)
		}
	}
	if _, _, ok := s.pop(); ok {
		t.Fatal("pop on empty sched returned a cell")
	}
}

// TestSchedEqualWeightsAlternate: equal-priority sweeps alternate
// strictly — neither drains first.
func TestSchedEqualWeightsAlternate(t *testing.T) {
	s := newSched()
	s.add("a", 1)
	s.add("b", 1)
	for i := 0; i < 4; i++ {
		s.push("a", i)
		s.push("b", i)
	}
	got := drain(s)
	want := []string{"a", "b", "a", "b", "a", "b", "a", "b"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("dispatch order = %v, want strict alternation %v", got, want)
	}
}

// TestSchedWeightedShares: a priority-3 sweep receives three dispatch
// slots per round for every slot a priority-1 sweep receives, and the
// low-priority sweep is never starved for a whole round.
func TestSchedWeightedShares(t *testing.T) {
	s := newSched()
	s.add("hi", 3)
	s.add("lo", 1)
	for i := 0; i < 30; i++ {
		s.push("hi", i)
	}
	for i := 0; i < 10; i++ {
		s.push("lo", i)
	}
	order := drain(s)
	if len(order) != 40 {
		t.Fatalf("drained %d slots, want 40", len(order))
	}
	// Every window of 4 consecutive slots, while both sweeps have work,
	// contains exactly one "lo" dispatch: bounded wait, no starvation.
	for start := 0; start+4 <= 40; start += 4 {
		lo := 0
		for _, id := range order[start : start+4] {
			if id == "lo" {
				lo++
			}
		}
		if lo != 1 {
			t.Fatalf("round %d = %v, want exactly one lo slot per round",
				start/4, order[start:start+4])
		}
	}
}

// TestSchedPushFront: a bounced cell keeps its place at the head of
// its sweep's FIFO.
func TestSchedPushFront(t *testing.T) {
	s := newSched()
	s.add("a", 1)
	s.push("a", 0)
	s.push("a", 1)
	id, cell, _ := s.pop()
	if id != "a" || cell != 0 {
		t.Fatalf("pop = %s/%d, want a/0", id, cell)
	}
	s.pushFront("a", 0) // transient failure: give it back
	if _, cell, _ = s.pop(); cell != 0 {
		t.Fatalf("after pushFront, pop = %d, want the bounced cell 0", cell)
	}
	if _, cell, _ = s.pop(); cell != 1 {
		t.Fatalf("pop = %d, want 1", cell)
	}
}

// TestSchedRemoveMidRotation: removing a sweep keeps the rotation
// pointer valid and the other sweeps dispatchable.
func TestSchedRemoveMidRotation(t *testing.T) {
	s := newSched()
	for _, id := range []string{"a", "b", "c"} {
		s.add(id, 1)
		s.push(id, 0)
		s.push(id, 1)
	}
	if id, _, _ := s.pop(); id != "a" {
		t.Fatalf("first pop from %s, want a", id)
	}
	s.remove("b")
	got := drain(s)
	want := []string{"c", "a", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("after removing b, dispatch order = %v, want %v", got, want)
	}
	if s.depth("b") != 0 || s.anyPending() {
		t.Error("removed sweep left pending state behind")
	}
}

// TestSchedReAddUpdatesWeight: re-adding caps credits at the new
// weight instead of resetting or duplicating the ring entry.
func TestSchedReAddUpdatesWeight(t *testing.T) {
	s := newSched()
	s.add("a", 5)
	s.add("b", 1)
	s.add("a", 1) // priority lowered on resubmission
	if len(s.order) != 2 {
		t.Fatalf("ring has %d entries, want 2", len(s.order))
	}
	for i := 0; i < 4; i++ {
		s.push("a", i)
		s.push("b", i)
	}
	got := drain(s)
	want := []string{"a", "b", "a", "b", "a", "b", "a", "b"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("after weight update, order = %v, want %v", got, want)
	}
}

// Package sweep is the server-side experiment-sweep orchestration
// subsystem behind mamaserved's /v1/sweeps API. A sweep spec — a grid
// and/or an explicit cell list over mix × controller × scale × seed ×
// DRAM — is expanded deterministically into content-addressed job
// cells, deduplicated against the server's result cache before
// anything is scheduled, and executed through the server's worker pool
// under a weighted-fair scheduler: interactive POST /v1/jobs traffic
// always runs first, and pending cells of concurrent sweeps are
// dispatched round-robin in proportion to their priorities, so one
// giant sweep can neither starve single jobs nor monopolize the pool
// against other sweeps.
//
// Completed cells append to a per-sweep event log that clients stream
// incrementally (NDJSON or SSE) with cursor-based resume. Sweep state
// persists through the same crash-safe layer as the result cache:
// a restarted server reloads incomplete sweeps, re-admits only the
// cells whose results are not already in the restored cache, and
// resumes — finished cells are never recomputed.
//
// The package is deliberately independent of internal/server: the
// execution backend is abstracted behind the Exec interface, which the
// server implements (cell resolution via its canonical job hash, cache
// lookups against its content-addressed result store).
package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// DRAM selects a memory system for a grid axis: a DDR4 speed grade and
// channel count. The zero value means "the server's default DRAM".
type DRAM struct {
	MTps     int `json:"mtps,omitempty"`
	Channels int `json:"channels,omitempty"`
}

// Cell is one fully specified simulation of a sweep: the same shape as
// the server's interactive job spec minus execution-only knobs. Cells
// are the unit of expansion, content addressing, scheduling, and
// result streaming.
type Cell struct {
	// Mix lists catalog trace names, one per core.
	Mix []string `json:"mix"`
	// Controller is one of the server's controller keys.
	Controller string `json:"controller"`
	// Scale names the simulation budget (tiny|small|default|full);
	// empty means "default".
	Scale string `json:"scale,omitempty"`
	// Seed labels the mix and namespaces the cache key.
	Seed uint64 `json:"seed,omitempty"`
	// Target and Step override the scale's instruction goal / agent
	// timestep; 0 keeps the scale default.
	Target uint64 `json:"target,omitempty"`
	Step   uint64 `json:"step,omitempty"`
	// DRAMMTps and DRAMChannels override the memory system.
	DRAMMTps     int `json:"dram_mtps,omitempty"`
	DRAMChannels int `json:"dram_channels,omitempty"`
}

// normalize canonicalizes a cell the same way the server canonicalizes
// job specs, so equivalent spellings expand to identical cells (and
// therefore identical content addresses).
func (c *Cell) normalize() {
	mix := make([]string, len(c.Mix))
	for i := range c.Mix {
		mix[i] = strings.TrimSpace(c.Mix[i])
	}
	c.Mix = mix
	c.Controller = strings.TrimSpace(c.Controller)
	c.Scale = strings.ToLower(strings.TrimSpace(c.Scale))
	if c.Scale == "" {
		c.Scale = "default"
	}
}

// Grid is the cartesian-product form of a sweep: every combination of
// one entry per non-empty axis becomes a cell. Empty axes default to a
// single neutral entry (default scale, seed 0, server-default DRAM).
type Grid struct {
	// Mixes is the workload axis: each entry is one mix (a list of
	// catalog trace names, one per core). Mixes of different core
	// counts may coexist in one sweep.
	Mixes [][]string `json:"mixes,omitempty"`
	// Controllers is the controller-key axis.
	Controllers []string `json:"controllers,omitempty"`
	// Scales is the simulation-budget axis.
	Scales []string `json:"scales,omitempty"`
	// Seeds is the mix-label / cache-namespace axis.
	Seeds []uint64 `json:"seeds,omitempty"`
	// DRAM is the memory-system axis.
	DRAM []DRAM `json:"dram,omitempty"`
	// Target and Step apply to every expanded cell.
	Target uint64 `json:"target,omitempty"`
	Step   uint64 `json:"step,omitempty"`
}

// Spec is a sweep request: a grid and/or an explicit cell list, plus
// scheduling knobs. At least one of Grid/Cells must produce a cell.
type Spec struct {
	// Name labels the sweep and namespaces its identity: two specs that
	// differ only in Name are distinct sweeps.
	Name string `json:"name,omitempty"`
	// Priority weights this sweep in the fair scheduler (1..MaxPriority,
	// default 1): a priority-3 sweep receives three cell dispatches per
	// round for every one a priority-1 sweep receives. Priority does not
	// contribute to the sweep's identity, so resubmitting a running
	// sweep with a different priority attaches to the existing one.
	Priority int `json:"priority,omitempty"`
	// Grid expands to the cartesian product of its axes.
	Grid *Grid `json:"grid,omitempty"`
	// Cells are appended after the grid expansion, in order.
	Cells []Cell `json:"cells,omitempty"`
	// TimeoutMs bounds each cell's execution; 0 uses the server default.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// normalize canonicalizes the spec in place (trimmed names, defaulted
// axes are NOT materialized here — Expand applies defaults — but all
// string fields are brought to canonical form so hashing is stable).
func (s *Spec) normalize() {
	s.Name = strings.TrimSpace(s.Name)
	if s.Grid != nil {
		for i := range s.Grid.Mixes {
			for j := range s.Grid.Mixes[i] {
				s.Grid.Mixes[i][j] = strings.TrimSpace(s.Grid.Mixes[i][j])
			}
		}
		for i := range s.Grid.Controllers {
			s.Grid.Controllers[i] = strings.TrimSpace(s.Grid.Controllers[i])
		}
		for i := range s.Grid.Scales {
			s.Grid.Scales[i] = strings.ToLower(strings.TrimSpace(s.Grid.Scales[i]))
		}
	}
	for i := range s.Cells {
		s.Cells[i].normalize()
	}
}

// Expand materializes the spec's ordered cell list: the grid's
// cartesian product first (nesting order mix → controller → scale →
// seed → DRAM, so the workload axis varies slowest), then the explicit
// cells. Expansion is deterministic: the same spec always yields the
// same cells in the same order. maxCells bounds the expansion (0 means
// unlimited); exceeding it is an error, not a truncation.
func (s *Spec) Expand(maxCells int) ([]Cell, error) {
	s.normalize()
	var out []Cell
	if s.Grid != nil {
		g := s.Grid
		if len(g.Mixes) == 0 && (len(g.Controllers) > 0 || len(g.Scales) > 0 ||
			len(g.Seeds) > 0 || len(g.DRAM) > 0) {
			return nil, fmt.Errorf("sweep grid has axes but no mixes")
		}
		controllers := g.Controllers
		if len(controllers) == 0 && len(g.Mixes) > 0 {
			return nil, fmt.Errorf("sweep grid has mixes but no controllers")
		}
		scales := g.Scales
		if len(scales) == 0 {
			scales = []string{"default"}
		}
		seeds := g.Seeds
		if len(seeds) == 0 {
			seeds = []uint64{0}
		}
		drams := g.DRAM
		if len(drams) == 0 {
			drams = []DRAM{{}}
		}
		n := len(g.Mixes) * len(controllers) * len(scales) * len(seeds) * len(drams)
		if maxCells > 0 && n+len(s.Cells) > maxCells {
			return nil, fmt.Errorf("sweep expands to %d cells; server accepts at most %d",
				n+len(s.Cells), maxCells)
		}
		out = make([]Cell, 0, n+len(s.Cells))
		for _, mix := range g.Mixes {
			for _, ctrl := range controllers {
				for _, sc := range scales {
					for _, seed := range seeds {
						for _, d := range drams {
							c := Cell{
								Mix: mix, Controller: ctrl, Scale: sc, Seed: seed,
								Target: g.Target, Step: g.Step,
								DRAMMTps: d.MTps, DRAMChannels: d.Channels,
							}
							c.normalize()
							out = append(out, c)
						}
					}
				}
			}
		}
	}
	out = append(out, s.Cells...)
	if len(out) == 0 {
		return nil, fmt.Errorf("sweep expands to zero cells (empty grid and no explicit cells)")
	}
	if maxCells > 0 && len(out) > maxCells {
		return nil, fmt.Errorf("sweep expands to %d cells; server accepts at most %d",
			len(out), maxCells)
	}
	return out, nil
}

// ID derives the sweep's content address: the SHA-256 of the canonical
// JSON of everything that determines the cell set (name, grid, cells,
// per-cell timeout). Priority is excluded — it tunes scheduling, not
// content — so resubmitting the same sweep at a different priority
// attaches to the running sweep instead of forking a duplicate.
func (s *Spec) ID() (string, error) {
	s.normalize()
	canonical := struct {
		Name      string
		Grid      *Grid
		Cells     []Cell
		TimeoutMs int64
	}{s.Name, s.Grid, s.Cells, s.TimeoutMs}
	b, err := json.Marshal(canonical)
	if err != nil {
		return "", fmt.Errorf("canonical sweep encoding: %w", err)
	}
	h := sha256.Sum256(b)
	return "s" + hex.EncodeToString(h[:8]), nil
}

// CellStatus is a cell's lifecycle state.
type CellStatus string

const (
	// CellPending: admitted, waiting in the sweep's fair-share queue.
	CellPending CellStatus = "pending"
	// CellRunning: dispatched to a worker.
	CellRunning CellStatus = "running"
	// CellDone: simulation finished and the result is attached.
	CellDone CellStatus = "done"
	// CellFailed: simulation finished with a non-transient error.
	CellFailed CellStatus = "failed"
	// CellDeduped: completed without running — the result came from the
	// content-addressed cache, an identical cell in this or another
	// sweep, or an identical interactive job.
	CellDeduped CellStatus = "deduped"
)

// terminal reports whether a status is final.
func (s CellStatus) terminal() bool {
	return s == CellDone || s == CellFailed || s == CellDeduped
}

// Event is one entry of a sweep's append-only result log: a cell
// reaching a terminal state. Seq is the event's position in the log
// (the stream cursor); Cell is the cell's index in the expansion, so
// clients can correlate events with the spec they submitted even when
// delivery order differs from expansion order. Delivery is
// at-least-once across server restarts: the log is rebuilt on resume,
// so a resumed cursor may re-deliver an event — dedupe by Cell.
type Event struct {
	Seq    int             `json:"seq"`
	Cell   int             `json:"cell"`
	Status CellStatus      `json:"status"`
	Key    string          `json:"key"`
	Spec   Cell            `json:"spec"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// View is the API representation of a sweep.
type View struct {
	ID       string `json:"id"`
	Name     string `json:"name,omitempty"`
	Status   string `json:"status"` // running | done
	Priority int    `json:"priority"`
	Cells    int    `json:"cells"`
	Pending  int    `json:"pending"` // this sweep's queue depth
	Running  int    `json:"running"`
	Done     int    `json:"done"`
	Failed   int    `json:"failed"`
	Deduped  int    `json:"deduped"`
	// Events is the current length of the result log (the cursor a
	// fresh stream would end at).
	Events     int        `json:"events"`
	CreatedAt  time.Time  `json:"created_at"`
	FinishedAt *time.Time `json:"finished_at,omitempty"`
}

package sweep

import (
	"reflect"
	"testing"
)

func gridSpec() Spec {
	return Spec{
		Name: "t",
		Grid: &Grid{
			Mixes:       [][]string{{"a", "b"}, {"c", "d"}},
			Controllers: []string{"mumama", "bandit"},
			Scales:      []string{"tiny"},
			Seeds:       []uint64{0, 1},
			DRAM:        []DRAM{{}, {MTps: 2400, Channels: 2}},
		},
	}
}

// TestExpandDeterministic pins the expansion contract: the same spec
// always yields the same cells in the same order, which is what makes
// cell indices stable across resubmission and restart.
func TestExpandDeterministic(t *testing.T) {
	s1, s2 := gridSpec(), gridSpec()
	c1, err := s1.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := s2.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c1, c2) {
		t.Fatal("two expansions of the same spec differ")
	}
	if len(c1) != 2*2*1*2*2 {
		t.Fatalf("expanded %d cells, want 16", len(c1))
	}
}

// TestExpandOrder pins the nesting order (mix slowest, DRAM fastest)
// and the axis defaults.
func TestExpandOrder(t *testing.T) {
	s := Spec{Grid: &Grid{
		Mixes:       [][]string{{"a"}, {"b"}},
		Controllers: []string{"x", "y"},
	}}
	cells, err := s.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	want := []Cell{
		{Mix: []string{"a"}, Controller: "x", Scale: "default"},
		{Mix: []string{"a"}, Controller: "y", Scale: "default"},
		{Mix: []string{"b"}, Controller: "x", Scale: "default"},
		{Mix: []string{"b"}, Controller: "y", Scale: "default"},
	}
	if !reflect.DeepEqual(cells, want) {
		t.Fatalf("expansion order:\n got %+v\nwant %+v", cells, want)
	}
}

// TestExpandExplicitCellsAppend checks explicit cells follow the grid
// in submission order and are normalized.
func TestExpandExplicitCellsAppend(t *testing.T) {
	s := Spec{
		Grid:  &Grid{Mixes: [][]string{{"a"}}, Controllers: []string{"x"}},
		Cells: []Cell{{Mix: []string{" b "}, Controller: "y ", Scale: "TINY"}},
	}
	cells, err := s.Expand(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2 {
		t.Fatalf("expanded %d cells, want 2", len(cells))
	}
	last := cells[1]
	if last.Mix[0] != "b" || last.Controller != "y" || last.Scale != "tiny" {
		t.Fatalf("explicit cell not normalized: %+v", last)
	}
}

// TestExpandErrors covers the rejection paths: empty specs, axes
// without mixes, mixes without controllers, and the cell budget —
// which must error, never truncate.
func TestExpandErrors(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		max  int
	}{
		{"empty", Spec{}, 0},
		{"axes without mixes", Spec{Grid: &Grid{Controllers: []string{"x"}}}, 0},
		{"mixes without controllers", Spec{Grid: &Grid{Mixes: [][]string{{"a"}}}}, 0},
		{"over budget", gridSpec(), 15},
		{"explicit cells over budget", Spec{Cells: []Cell{
			{Mix: []string{"a"}, Controller: "x"},
			{Mix: []string{"b"}, Controller: "x"},
		}}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.spec.Expand(tc.max); err == nil {
				t.Errorf("Expand(%d) accepted %+v", tc.max, tc.spec)
			}
		})
	}
}

// TestSpecID pins identity semantics: stable across calls, sensitive
// to the cell set and name, and insensitive to priority (so a
// resubmission at a different priority attaches to the running sweep).
func TestSpecID(t *testing.T) {
	a, b := gridSpec(), gridSpec()
	ida, err := a.ID()
	if err != nil {
		t.Fatal(err)
	}
	idb, _ := b.ID()
	if ida != idb {
		t.Fatalf("same spec hashed differently: %s vs %s", ida, idb)
	}

	b.Priority = 5
	if idb, _ = b.ID(); idb != ida {
		t.Errorf("priority changed the sweep ID: %s vs %s", idb, ida)
	}

	b.Name = "other"
	if idb, _ = b.ID(); idb == ida {
		t.Error("different name did not change the sweep ID")
	}

	c := gridSpec()
	c.Grid.Seeds = []uint64{0}
	if idc, _ := c.ID(); idc == ida {
		t.Error("different cell set did not change the sweep ID")
	}

	// Normalization folds into identity: spacing and case differences
	// that expand to the same cells hash the same.
	d := gridSpec()
	d.Grid.Controllers = []string{" mumama ", "bandit"}
	d.Grid.Scales = []string{"TINY"}
	if idd, _ := d.ID(); idd != ida {
		t.Errorf("equivalent spelling hashed differently: %s vs %s", idd, ida)
	}
}

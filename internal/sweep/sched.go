package sweep

// sched is the weighted round-robin scheduler over sweeps: each sweep
// holds a FIFO of pending cell indices, and dispatch slots rotate
// across sweeps in proportion to their priorities using a credit
// scheme. A sweep with priority w receives w credits per refill round;
// popping a cell spends one credit; when every sweep with pending work
// is out of credits, all credits refill. The rotation pointer survives
// refills, so two equal-priority sweeps alternate strictly instead of
// one draining first.
//
// sched is not goroutine-safe: the Manager serializes access under its
// own mutex.
type sched struct {
	order   []string         // registration order — the rotation ring
	pending map[string][]int // sweep id → FIFO of pending cell indices
	weight  map[string]int   // sweep id → priority (credits per refill)
	credit  map[string]int   // sweep id → credits left this round
	next    int              // rotation pointer into order
}

func newSched() *sched {
	return &sched{
		pending: make(map[string][]int),
		weight:  make(map[string]int),
		credit:  make(map[string]int),
	}
}

// add registers a sweep with the given priority weight (>=1). Re-adding
// an existing sweep only updates its weight.
func (s *sched) add(id string, weight int) {
	if weight < 1 {
		weight = 1
	}
	if _, ok := s.weight[id]; !ok {
		s.order = append(s.order, id)
		s.credit[id] = weight
	}
	s.weight[id] = weight
	if s.credit[id] > weight {
		s.credit[id] = weight
	}
}

// remove drops a sweep (typically once it has no pending cells left and
// is terminal) from the rotation.
func (s *sched) remove(id string) {
	if _, ok := s.weight[id]; !ok {
		return
	}
	for i, sid := range s.order {
		if sid == id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			if s.next > i {
				s.next--
			}
			break
		}
	}
	if len(s.order) > 0 {
		s.next %= len(s.order)
	} else {
		s.next = 0
	}
	delete(s.pending, id)
	delete(s.weight, id)
	delete(s.credit, id)
}

// push appends a pending cell index to a sweep's FIFO. The sweep must
// have been added.
func (s *sched) push(id string, cell int) {
	s.pending[id] = append(s.pending[id], cell)
}

// pushFront prepends a cell (used when a dispatched cell bounces back,
// e.g. a transient failure, so it keeps its place at the head).
func (s *sched) pushFront(id string, cell int) {
	s.pending[id] = append([]int{cell}, s.pending[id]...)
}

// depth reports a sweep's pending-queue length.
func (s *sched) depth(id string) int { return len(s.pending[id]) }

// anyPending reports whether any sweep has pending cells.
func (s *sched) anyPending() bool {
	for _, q := range s.pending {
		if len(q) > 0 {
			return true
		}
	}
	return false
}

// pop returns the next (sweep id, cell index) under weighted round-
// robin, or ok=false if no sweep has pending cells. Two passes over the
// ring: the first spends credits; if every sweep with pending work is
// out of credits, refill all and take the second pass.
func (s *sched) pop() (string, int, bool) {
	if !s.anyPending() {
		return "", 0, false
	}
	for pass := 0; pass < 2; pass++ {
		n := len(s.order)
		for i := 0; i < n; i++ {
			idx := (s.next + i) % n
			id := s.order[idx]
			if len(s.pending[id]) == 0 || s.credit[id] <= 0 {
				continue
			}
			cell := s.pending[id][0]
			s.pending[id] = s.pending[id][1:]
			s.credit[id]--
			// Advance the rotation past this sweep so equal-priority
			// sweeps alternate rather than one monopolizing its credits
			// back-to-back.
			s.next = (idx + 1) % n
			return id, cell, true
		}
		// Everything pending is out of credits: refill and retry.
		for id, w := range s.weight {
			s.credit[id] = w
		}
	}
	return "", 0, false
}

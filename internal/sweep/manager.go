package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"sync"
	"time"

	"micromama/internal/telemetry"
)

// Exec is what the manager needs from its execution backend (the
// server): canonical cell resolution — validation plus the
// content-addressed job key — and result-cache lookups. Abstracting
// these two calls keeps internal/sweep free of the server's types (the
// server imports sweep, not the reverse).
type Exec interface {
	// ResolveCell validates a cell and returns its content-addressed job
	// key. The error, if any, is a client error (bad trace name, too many
	// cores, unknown controller).
	ResolveCell(c Cell) (key string, err error)
	// CachedResult returns the cached result for a job key, encoded as
	// the API's JSON result object.
	CachedResult(key string) (json.RawMessage, bool)
	// InflightKey reports whether the backend is already running (or has
	// queued) an interactive job with this key. Cells for such keys park
	// instead of dispatching a duplicate simulation; the backend reports
	// the outcome through OnResult.
	InflightKey(key string) bool
}

// Config tunes a Manager. Zero values select defaults.
type Config struct {
	// Exec is the execution backend. Required.
	Exec Exec
	// MaxCells bounds a single sweep's expansion (default 4096).
	MaxCells int
	// MaxPriority clamps per-sweep priorities (default 8).
	MaxPriority int
	// Dir, when non-empty, persists sweep state (one JSON file per
	// sweep) so a restarted server resumes incomplete sweeps.
	Dir string
	// Registry receives the mama_server_sweep_* instruments; nil uses a
	// private throwaway registry (tests).
	Registry *telemetry.Registry
	// Logger receives sweep lifecycle logs; nil discards them.
	Logger *slog.Logger
}

// Ticket is one dispatched cell: the manager's claim check that the
// executing worker returns through CellDone.
type Ticket struct {
	SweepID   string
	Index     int
	Cell      Cell
	Key       string
	TimeoutMs int64
}

// cellRef names one cell of one sweep.
type cellRef struct {
	sweep string
	index int
}

// state is the in-memory authority for one sweep.
type state struct {
	id        string
	spec      Spec // normalized; includes priority for persistence
	priority  int
	cells     []Cell
	keys      []string
	status    []CellStatus
	errors    map[int]string
	events    []Event
	createdAt time.Time
	finished  time.Time // zero while cells remain

	running int
	done    int
	failed  int
	deduped int
}

func (st *state) terminalCount() int { return st.done + st.failed + st.deduped }

func (st *state) pendingCount() int {
	return len(st.cells) - st.running - st.terminalCount()
}

func (st *state) view() View {
	v := View{
		ID:        st.id,
		Name:      st.spec.Name,
		Status:    "running",
		Priority:  st.priority,
		Cells:     len(st.cells),
		Pending:   st.pendingCount(),
		Running:   st.running,
		Done:      st.done,
		Failed:    st.failed,
		Deduped:   st.deduped,
		Events:    len(st.events),
		CreatedAt: st.createdAt,
	}
	if !st.finished.IsZero() {
		t := st.finished
		v.FinishedAt = &t
		v.Status = "done"
	}
	return v
}

// metrics is the mama_server_sweep_* instrument set.
type metrics struct {
	submitted     *telemetry.Counter
	resumed       *telemetry.Counter
	cellsExpanded *telemetry.Counter
	cellsDeduped  *telemetry.Counter
	cellsDone     *telemetry.Counter
	cellsFailed   *telemetry.Counter
	store         storeMetrics
}

func newMetrics(r *telemetry.Registry, mgr *Manager) *metrics {
	m := &metrics{
		submitted: r.Counter("mama_server_sweeps_submitted_total",
			"Sweeps accepted at POST /v1/sweeps (excluding idempotent re-submissions)."),
		resumed: r.Counter("mama_server_sweeps_resumed_total",
			"Incomplete sweeps restored from disk at startup."),
		cellsExpanded: r.Counter("mama_server_sweep_cells_expanded_total",
			"Cells produced by sweep expansion."),
		cellsDeduped: r.Counter("mama_server_sweep_cells_deduped_total",
			"Sweep cells completed without running (result cache or an identical run)."),
		cellsDone: r.Counter("mama_server_sweep_cells_completed_total",
			"Sweep cells that ran to a successful result."),
		cellsFailed: r.Counter("mama_server_sweep_cells_failed_total",
			"Sweep cells that finished with an error."),
		store: storeMetrics{
			writes: r.Counter("mama_server_sweep_persist_writes_total",
				"Sweep records durably written to the sweep dir."),
			errors: r.Counter("mama_server_sweep_persist_errors_total",
				"Sweep record writes that failed."),
			loaded: r.Counter("mama_server_sweep_persist_loaded_total",
				"Sweep records restored from the sweep dir at startup."),
			quarantined: r.Counter("mama_server_sweep_persist_quarantined_total",
				"Corrupt or unreadable sweep records quarantined at startup."),
		},
	}
	r.GaugeFunc("mama_server_sweeps_active",
		"Sweeps with cells still pending or running.",
		func() float64 { return float64(mgr.activeCount()) })
	r.GaugeFunc("mama_server_sweep_cells_pending",
		"Sweep cells waiting for dispatch across all sweeps.",
		func() float64 { c := mgr.Counts(); return float64(c.CellsPending) })
	return m
}

// Counts is the sweep block of /v1/stats.
type Counts struct {
	Active       int    `json:"sweeps_active"`
	Total        int    `json:"sweeps_tracked"`
	Submitted    uint64 `json:"sweeps_submitted"`
	Resumed      uint64 `json:"sweeps_resumed"`
	CellsPending int    `json:"sweep_cells_pending"`
	CellsRunning int    `json:"sweep_cells_running"`
	CellsDone    uint64 `json:"sweep_cells_completed"`
	CellsDeduped uint64 `json:"sweep_cells_deduped"`
	CellsFailed  uint64 `json:"sweep_cells_failed"`
}

// Manager owns every sweep: admission (expansion, dedupe against the
// result cache), the weighted-fair pending queues, the per-sweep event
// logs that streams read, and the crash-safe store. All mutation is
// serialized under mu; dispatch is pull-based (the server's dispatcher
// calls TryDequeue when a worker is free, woken through WakeCh).
type Manager struct {
	exec        Exec
	maxCells    int
	maxPriority int
	log         *slog.Logger
	reg         *telemetry.Registry
	m           *metrics

	mu       sync.Mutex
	sweeps   map[string]*state
	sched    *sched
	inflight map[string]cellRef   // job key → the cell currently dispatched for it
	parked   map[string][]cellRef // job key → pending cells waiting on that dispatch
	notify   chan struct{}        // closed and replaced whenever any event log grows
	draining bool

	wake    chan struct{} // cap 1; pokes the server's dispatcher
	drainCh chan struct{} // closed once Drain begins; ends follow-streams

	store *store // nil without Config.Dir
}

// New builds a Manager and, when Config.Dir is set, restores persisted
// sweeps: finished cells whose results survive in the result cache stay
// finished; cells that were running (or whose results were lost) return
// to pending and are re-dispatched.
func New(cfg Config) (*Manager, error) {
	if cfg.Exec == nil {
		return nil, fmt.Errorf("sweep: Config.Exec is required")
	}
	if cfg.MaxCells <= 0 {
		cfg.MaxCells = 4096
	}
	if cfg.MaxPriority <= 0 {
		cfg.MaxPriority = 8
	}
	if cfg.Logger == nil {
		cfg.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.NewRegistry()
	}
	mgr := &Manager{
		exec:        cfg.Exec,
		maxCells:    cfg.MaxCells,
		maxPriority: cfg.MaxPriority,
		log:         cfg.Logger,
		reg:         cfg.Registry,
		sweeps:      make(map[string]*state),
		sched:       newSched(),
		inflight:    make(map[string]cellRef),
		parked:      make(map[string][]cellRef),
		notify:      make(chan struct{}),
		wake:        make(chan struct{}, 1),
		drainCh:     make(chan struct{}),
	}
	mgr.m = newMetrics(cfg.Registry, mgr)
	if cfg.Dir != "" {
		st, err := newStore(cfg.Dir, mgr.m.store, cfg.Logger)
		if err != nil {
			return nil, err
		}
		mgr.store = st
		for _, rec := range st.load() {
			mgr.resume(rec)
		}
	}
	return mgr, nil
}

// clampPriority normalizes a requested priority into [1, MaxPriority].
func (mgr *Manager) clampPriority(p int) int {
	if p < 1 {
		return 1
	}
	if p > mgr.maxPriority {
		return mgr.maxPriority
	}
	return p
}

// Submit admits a sweep: expansion, content addressing, cache dedupe,
// and scheduling. Resubmitting an identical spec attaches to the
// existing sweep (created=false) and only updates its priority —
// submission is idempotent by construction, which is what lets clients
// blindly retry over flaky links. Errors are client errors.
func (mgr *Manager) Submit(spec Spec) (View, bool, error) {
	cells, err := spec.Expand(mgr.maxCells)
	if err != nil {
		return View{}, false, err
	}
	id, err := spec.ID()
	if err != nil {
		return View{}, false, err
	}
	// Resolve every cell before taking any state: a sweep with one bad
	// cell is rejected whole, so a partially admitted sweep never exists.
	keys := make([]string, len(cells))
	for i, c := range cells {
		key, err := mgr.exec.ResolveCell(c)
		if err != nil {
			return View{}, false, fmt.Errorf("cell %d: %w", i, err)
		}
		keys[i] = key
	}
	priority := mgr.clampPriority(spec.Priority)
	spec.Priority = priority

	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	if mgr.draining {
		return View{}, false, fmt.Errorf("server is draining; retry against a healthy instance")
	}
	if st, ok := mgr.sweeps[id]; ok {
		if st.priority != priority {
			st.priority = priority
			st.spec.Priority = priority
			mgr.sched.add(id, priority)
			mgr.saveLocked(st)
		}
		return st.view(), false, nil
	}

	st := &state{
		id:        id,
		spec:      spec,
		priority:  priority,
		cells:     cells,
		keys:      keys,
		status:    make([]CellStatus, len(cells)),
		errors:    make(map[int]string),
		createdAt: time.Now().UTC(),
	}
	for i := range st.status {
		st.status[i] = CellPending
	}
	mgr.sweeps[id] = st
	mgr.m.submitted.Inc()
	mgr.m.cellsExpanded.Add(uint64(len(cells)))
	mgr.registerDepthGauge(id)

	// Dedupe against the warm cache at admission: anything already
	// simulated completes immediately without touching the scheduler.
	mgr.sched.add(id, priority)
	enqueued := 0
	for i, key := range keys {
		if raw, ok := mgr.exec.CachedResult(key); ok {
			mgr.completeLocked(st, i, CellDeduped, raw, "")
			continue
		}
		mgr.sched.push(id, i)
		enqueued++
	}
	if st.pendingCount() == 0 && st.running == 0 {
		mgr.finishIfDoneLocked(st)
	}
	mgr.saveLocked(st)
	mgr.log.Info("sweep submitted", "sweep", id, "name", spec.Name,
		"cells", len(cells), "deduped", st.deduped, "enqueued", enqueued,
		"priority", priority)
	mgr.pokeLocked()
	mgr.broadcastLocked()
	return st.view(), true, nil
}

// resume restores one persisted sweep. The spec re-expands
// deterministically; stored statuses are reconciled against the
// restored result cache: done/deduped cells keep their status only if
// the cached result is still present (otherwise they re-run), running
// cells return to pending (the process died under them), failed cells
// stay failed with their stored error.
func (mgr *Manager) resume(rec record) {
	spec := rec.Spec
	cells, err := spec.Expand(mgr.maxCells)
	if err != nil {
		mgr.log.Error("persisted sweep no longer expands; dropping", "sweep", rec.ID, "err", err)
		return
	}
	keys := make([]string, len(cells))
	for i, c := range cells {
		key, rerr := mgr.exec.ResolveCell(c)
		if rerr != nil {
			mgr.log.Error("persisted sweep no longer resolves; dropping",
				"sweep", rec.ID, "cell", i, "err", rerr)
			return
		}
		keys[i] = key
	}
	priority := mgr.clampPriority(spec.Priority)
	st := &state{
		id:        rec.ID,
		spec:      spec,
		priority:  priority,
		cells:     cells,
		keys:      keys,
		status:    make([]CellStatus, len(cells)),
		errors:    make(map[int]string),
		createdAt: rec.CreatedAt,
	}

	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	mgr.sweeps[st.id] = st
	mgr.m.resumed.Inc()
	mgr.registerDepthGauge(st.id)
	mgr.sched.add(st.id, priority)
	pending := 0
	for i := range cells {
		prev := CellPending
		if i < len(rec.Status) {
			prev = rec.Status[i]
		}
		switch prev {
		case CellDone, CellDeduped:
			if raw, ok := mgr.exec.CachedResult(keys[i]); ok {
				mgr.completeLocked(st, i, prev, raw, "")
				continue
			}
			// The result was lost (cache file quarantined or the cache dir
			// changed): re-run rather than lie.
		case CellFailed:
			mgr.completeLocked(st, i, CellFailed, nil, rec.Errors[i])
			continue
		}
		st.status[i] = CellPending
		mgr.sched.push(st.id, i)
		pending++
	}
	if pending == 0 && st.running == 0 {
		mgr.finishIfDoneLocked(st)
	}
	mgr.saveLocked(st)
	mgr.log.Info("sweep resumed", "sweep", st.id, "name", st.spec.Name,
		"cells", len(cells), "finished", st.terminalCount(), "pending", pending)
	mgr.pokeLocked()
}

// registerDepthGauge exposes this sweep's live pending-queue depth as
// mama_server_sweep_queue_depth{sweep="..."}. Registration is
// idempotent; the series reads 0 once the sweep finishes.
func (mgr *Manager) registerDepthGauge(id string) {
	mgr.reg.GaugeFunc("mama_server_sweep_queue_depth",
		"Cells waiting for dispatch, per sweep.",
		func() float64 {
			mgr.mu.Lock()
			defer mgr.mu.Unlock()
			st, ok := mgr.sweeps[id]
			if !ok {
				return 0
			}
			return float64(st.pendingCount())
		},
		telemetry.L("sweep", id))
}

// TryDequeue hands the dispatcher the next cell under weighted round-
// robin, or ok=false when nothing is dispatchable. Cells whose result
// appeared in the cache since admission complete as deduped without
// dispatch; cells whose key is already running (here or in another
// sweep) park until that run finishes.
func (mgr *Manager) TryDequeue() (Ticket, bool) {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	if mgr.draining {
		return Ticket{}, false
	}
	var dirty []*state
	defer func() {
		for _, st := range dirty {
			mgr.saveLocked(st)
		}
		if len(dirty) > 0 {
			mgr.broadcastLocked()
		}
	}()
	for {
		id, idx, ok := mgr.sched.pop()
		if !ok {
			return Ticket{}, false
		}
		st := mgr.sweeps[id]
		if st == nil || st.status[idx] != CellPending {
			// Completed while queued (deduped through a same-key run);
			// lazily dropped here instead of being plucked mid-queue.
			continue
		}
		key := st.keys[idx]
		if raw, ok := mgr.exec.CachedResult(key); ok {
			mgr.completeLocked(st, idx, CellDeduped, raw, "")
			dirty = append(dirty, st)
			continue
		}
		if _, running := mgr.inflight[key]; running || mgr.exec.InflightKey(key) {
			mgr.parked[key] = append(mgr.parked[key], cellRef{id, idx})
			continue
		}
		st.status[idx] = CellRunning
		st.running++
		mgr.inflight[key] = cellRef{id, idx}
		// Cascade the wake: this call consumed at most one wake token but
		// may leave more dispatchable cells behind it, and other workers
		// may be blocked on the channel.
		if mgr.sched.anyPending() {
			mgr.pokeLocked()
		}
		return Ticket{
			SweepID:   id,
			Index:     idx,
			Cell:      st.cells[idx],
			Key:       key,
			TimeoutMs: st.spec.TimeoutMs,
		}, true
	}
}

// OnResult lets the backend report an interactive job's outcome so
// cells parked on its key resolve: a success completes them as deduped,
// a failure returns them to their pending queues for their own run.
// Keys the manager itself dispatched are ignored here — their parked
// cells resolve in CellDone.
func (mgr *Manager) OnResult(key string, raw json.RawMessage, errMsg string) {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	if _, ours := mgr.inflight[key]; ours {
		return
	}
	waiters := mgr.parked[key]
	if len(waiters) == 0 {
		return
	}
	delete(mgr.parked, key)
	if errMsg == "" {
		for _, ref := range waiters {
			if st := mgr.sweeps[ref.sweep]; st != nil && st.status[ref.index] == CellPending {
				mgr.completeLocked(st, ref.index, CellDeduped, raw, "")
				mgr.saveLocked(st)
			}
		}
	} else {
		mgr.requeueLocked(waiters)
		for _, ref := range waiters {
			if st := mgr.sweeps[ref.sweep]; st != nil {
				mgr.saveLocked(st)
			}
		}
	}
	mgr.pokeLocked()
	mgr.broadcastLocked()
}

// CellDone returns a dispatched ticket with its outcome. A transient
// error (shutdown cancellation, injected worker death) sends the cell
// back to pending — it re-runs after restart or on the next dispatch —
// while a real error finishes it as failed. Success also completes, as
// deduped, every cell parked on the same key.
func (mgr *Manager) CellDone(t Ticket, raw json.RawMessage, errMsg string, transient bool) {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	st := mgr.sweeps[t.SweepID]
	if st == nil || st.status[t.Index] != CellRunning {
		return
	}
	delete(mgr.inflight, t.Key)
	st.status[t.Index] = CellPending
	st.running--
	waiters := mgr.parked[t.Key]
	delete(mgr.parked, t.Key)

	switch {
	case errMsg == "":
		mgr.completeLocked(st, t.Index, CellDone, raw, "")
		for _, ref := range waiters {
			if wst := mgr.sweeps[ref.sweep]; wst != nil && wst.status[ref.index] == CellPending {
				mgr.completeLocked(wst, ref.index, CellDeduped, raw, "")
				mgr.saveLocked(wst)
			}
		}
	case transient:
		// Head of the queue, not the back: the cell already waited its
		// turn once.
		mgr.sched.add(st.id, st.priority)
		mgr.sched.pushFront(st.id, t.Index)
		mgr.requeueLocked(waiters)
	default:
		mgr.completeLocked(st, t.Index, CellFailed, nil, errMsg)
		// Parked cells were never attempted; give each its own run.
		mgr.requeueLocked(waiters)
	}
	mgr.saveLocked(st)
	mgr.pokeLocked()
	mgr.broadcastLocked()
}

// requeueLocked returns parked cells to their sweeps' pending queues.
func (mgr *Manager) requeueLocked(refs []cellRef) {
	for _, ref := range refs {
		st := mgr.sweeps[ref.sweep]
		if st == nil || st.status[ref.index] != CellPending {
			continue
		}
		mgr.sched.add(st.id, st.priority)
		mgr.sched.push(st.id, ref.index)
	}
}

// completeLocked finishes one cell and appends its event.
func (mgr *Manager) completeLocked(st *state, idx int, status CellStatus, raw json.RawMessage, errMsg string) {
	st.status[idx] = status
	switch status {
	case CellDone:
		st.done++
		mgr.m.cellsDone.Inc()
	case CellDeduped:
		st.deduped++
		mgr.m.cellsDeduped.Inc()
	case CellFailed:
		st.failed++
		mgr.m.cellsFailed.Inc()
		if errMsg != "" {
			st.errors[idx] = errMsg
		}
	}
	st.events = append(st.events, Event{
		Seq:    len(st.events),
		Cell:   idx,
		Status: status,
		Key:    st.keys[idx],
		Spec:   st.cells[idx],
		Result: raw,
		Error:  errMsg,
	})
	mgr.finishIfDoneLocked(st)
}

// finishIfDoneLocked marks the sweep finished once every cell is
// terminal and retires it from the scheduler ring.
func (mgr *Manager) finishIfDoneLocked(st *state) {
	if st.terminalCount() != len(st.cells) || !st.finished.IsZero() {
		return
	}
	st.finished = time.Now().UTC()
	mgr.sched.remove(st.id)
	mgr.log.Info("sweep finished", "sweep", st.id, "name", st.spec.Name,
		"done", st.done, "deduped", st.deduped, "failed", st.failed)
}

// saveLocked snapshots one sweep into the crash-safe store.
func (mgr *Manager) saveLocked(st *state) {
	if mgr.store == nil {
		return
	}
	rec := record{
		ID:        st.id,
		Spec:      st.spec,
		Status:    append([]CellStatus(nil), st.status...),
		CreatedAt: st.createdAt,
	}
	if len(st.errors) > 0 {
		rec.Errors = make(map[int]string, len(st.errors))
		for i, e := range st.errors {
			rec.Errors[i] = e
		}
	}
	mgr.store.save(rec)
}

// pokeLocked wakes the dispatcher (non-blocking; the channel holds one
// pending wake).
func (mgr *Manager) pokeLocked() {
	select {
	case mgr.wake <- struct{}{}:
	default:
	}
}

// broadcastLocked signals every stream waiter that event logs may have
// grown (close-and-replace; waiters re-check their cursor).
func (mgr *Manager) broadcastLocked() {
	close(mgr.notify)
	mgr.notify = make(chan struct{})
}

// WakeCh pokes whenever new work may be dispatchable; the server's
// dispatcher selects on it alongside the interactive queue.
func (mgr *Manager) WakeCh() <-chan struct{} { return mgr.wake }

// DrainCh is closed once Drain begins; result streams select on it so
// followers terminate cleanly at shutdown.
func (mgr *Manager) DrainCh() <-chan struct{} { return mgr.drainCh }

// View returns one sweep's snapshot.
func (mgr *Manager) View(id string) (View, bool) {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	st, ok := mgr.sweeps[id]
	if !ok {
		return View{}, false
	}
	return st.view(), true
}

// List returns every tracked sweep, newest first.
func (mgr *Manager) List() []View {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	out := make([]View, 0, len(mgr.sweeps))
	for _, st := range mgr.sweeps {
		out = append(out, st.view())
	}
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j].CreatedAt.After(out[i].CreatedAt) ||
				(out[j].CreatedAt.Equal(out[i].CreatedAt) && out[j].ID < out[i].ID) {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

// EventsSince returns the sweep's events after cursor, the current view
// (so callers can tell whether the log is final), and a channel that
// closes when any event log grows (re-check the cursor then). ok=false
// for an unknown sweep.
func (mgr *Manager) EventsSince(id string, cursor int) (events []Event, v View, changed <-chan struct{}, ok bool) {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	st, found := mgr.sweeps[id]
	if !found {
		return nil, View{}, nil, false
	}
	if cursor < 0 {
		cursor = 0
	}
	if cursor < len(st.events) {
		events = append([]Event(nil), st.events[cursor:]...)
	}
	return events, st.view(), mgr.notify, true
}

// activeCount reports sweeps that still have pending or running cells.
func (mgr *Manager) activeCount() int {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	n := 0
	for _, st := range mgr.sweeps {
		if st.finished.IsZero() {
			n++
		}
	}
	return n
}

// Counts snapshots the sweep block of /v1/stats.
func (mgr *Manager) Counts() Counts {
	mgr.mu.Lock()
	defer mgr.mu.Unlock()
	c := Counts{
		Total:        len(mgr.sweeps),
		Submitted:    mgr.m.submitted.Value(),
		Resumed:      mgr.m.resumed.Value(),
		CellsDone:    mgr.m.cellsDone.Value(),
		CellsDeduped: mgr.m.cellsDeduped.Value(),
		CellsFailed:  mgr.m.cellsFailed.Value(),
	}
	for _, st := range mgr.sweeps {
		if st.finished.IsZero() {
			c.Active++
		}
		c.CellsPending += st.pendingCount()
		c.CellsRunning += st.running
	}
	return c
}

// Drain stops dispatch (TryDequeue returns false; Submit refuses) and
// releases stream followers. In-flight cells still report through
// CellDone — a shutdown cancellation arrives there as transient, which
// returns the cell to pending so the restarted server re-runs it.
func (mgr *Manager) Drain() {
	mgr.mu.Lock()
	if mgr.draining {
		mgr.mu.Unlock()
		return
	}
	mgr.draining = true
	mgr.mu.Unlock()
	close(mgr.drainCh)
}

// CloseStore flushes and stops the crash-safe store. Call only after
// the worker pool has fully stopped, so the final CellDone mutations
// (including transient reverts to pending) are captured on disk.
func (mgr *Manager) CloseStore() {
	if mgr.store != nil {
		mgr.store.close()
	}
}

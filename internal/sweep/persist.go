package sweep

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"micromama/internal/faultinject"
	"micromama/internal/telemetry"
)

// Fault-injection sites on the sweep persistence path, mirroring the
// result-cache sites: a write fault loses one durability update (the
// sweep keeps running from memory; a crash before the next successful
// write replays more cells), and a read fault at load time quarantines
// that sweep file exactly like a corrupt one.
var (
	faultSweepPersistWrite = faultinject.New("server/sweep/persist-write")
	faultSweepPersistRead  = faultinject.New("server/sweep/persist-read")
)

// record is the on-disk form of one sweep: the normalized spec (whose
// deterministic expansion reproduces the cell list on load), per-cell
// terminal statuses, and per-cell error messages. Cell results are NOT
// stored here — they live in the content-addressed result cache, which
// has its own crash-safe mirror; on resume the manager rehydrates
// events by looking finished cells up by key.
type record struct {
	ID        string         `json:"id"`
	Spec      Spec           `json:"spec"`
	Status    []CellStatus   `json:"status"`
	Errors    map[int]string `json:"errors,omitempty"`
	CreatedAt time.Time      `json:"created_at"`
}

// storeMetrics counts the sweep store's disk traffic.
type storeMetrics struct {
	writes      *telemetry.Counter
	errors      *telemetry.Counter
	loaded      *telemetry.Counter
	quarantined *telemetry.Counter
}

// store is the crash-safe mirror of sweep state: one JSON file per
// sweep under dir, written behind by a coalescing goroutine. Updates
// for the same sweep between writer wakeups collapse into one write
// (a 1000-cell sweep completing does not issue 1000 fsync-adjacent
// writes), each write is atomic tmp+rename, and load-on-start
// quarantines unreadable files instead of failing: a lost sweep file
// costs re-running that sweep's unfinished cells, never the service.
type store struct {
	dir string
	m   storeMetrics
	log *slog.Logger

	mu     sync.Mutex
	dirty  map[string]record
	closed bool

	kick    chan struct{} // cap 1; pokes the writer
	closeCh chan struct{}
	done    chan struct{}
}

func newStore(dir string, m storeMetrics, log *slog.Logger) (*store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep dir: %w", err)
	}
	s := &store{
		dir:     dir,
		m:       m,
		log:     log,
		dirty:   make(map[string]record),
		kick:    make(chan struct{}, 1),
		closeCh: make(chan struct{}),
		done:    make(chan struct{}),
	}
	go s.writer()
	return s, nil
}

// load reads every persisted sweep record, quarantining anything
// unreadable or mismatched. Order is deterministic (sorted by ID).
func (s *store) load() []record {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		s.log.Warn("sweep dir unreadable; starting with no sweeps", "dir", s.dir, "err", err)
		return nil
	}
	var out []record
	for _, de := range entries {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		path := filepath.Join(s.dir, name)
		rec, err := s.readRecord(path, strings.TrimSuffix(name, ".json"))
		if err != nil {
			s.quarantine(path, err)
			continue
		}
		out = append(out, rec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	s.m.loaded.Add(uint64(len(out)))
	if len(out) > 0 {
		s.log.Info("sweep state restored from disk", "dir", s.dir, "sweeps", len(out))
	}
	return out
}

func (s *store) readRecord(path, wantID string) (record, error) {
	if faultSweepPersistRead.Fire() {
		return record{}, fmt.Errorf("faultinject: server/sweep/persist-read")
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return record{}, err
	}
	var rec record
	if err := json.Unmarshal(b, &rec); err != nil {
		return record{}, fmt.Errorf("decode: %w", err)
	}
	if rec.ID != wantID {
		return record{}, fmt.Errorf("record id %q does not match file name", rec.ID)
	}
	return rec, nil
}

func (s *store) quarantine(path string, cause error) {
	s.m.quarantined.Inc()
	dst := path + ".quarantine"
	if err := os.Rename(path, dst); err != nil {
		s.log.Error("sweep quarantine rename failed", "file", path, "err", err)
		return
	}
	s.log.Warn("quarantined corrupt sweep record", "file", path, "cause", cause)
}

// save schedules a durability update for one sweep. Never blocks the
// caller: updates coalesce in the dirty map until the writer catches
// up, so the most recent snapshot always wins.
func (s *store) save(rec record) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.dirty[rec.ID] = rec
	s.mu.Unlock()
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// writer drains the dirty map until close, which doubles as a flush
// barrier: close marks closed, pokes the writer, and waits for done.
func (s *store) writer() {
	defer close(s.done)
	for {
		s.mu.Lock()
		if len(s.dirty) == 0 {
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return
			}
			select {
			case <-s.kick:
			case <-s.closeCh:
			}
			continue
		}
		batch := s.dirty
		s.dirty = make(map[string]record)
		s.mu.Unlock()
		ids := make([]string, 0, len(batch))
		for id := range batch {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			s.write(batch[id])
		}
	}
}

// write serializes one record with atomic tmp+rename; failures are
// counted and logged, never propagated (persistence is best-effort —
// the running sweep is authoritative in memory).
func (s *store) write(rec record) {
	err := func() error {
		if faultSweepPersistWrite.Fire() {
			return fmt.Errorf("faultinject: server/sweep/persist-write")
		}
		b, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		final := filepath.Join(s.dir, rec.ID+".json")
		tmp := final + ".tmp"
		if err := os.WriteFile(tmp, b, 0o644); err != nil {
			return err
		}
		return os.Rename(tmp, final)
	}()
	if err != nil {
		s.m.errors.Inc()
		s.log.Error("sweep persist write failed", "sweep", rec.ID, "err", err)
		return
	}
	s.m.writes.Inc()
}

// close flushes every dirty record and stops the writer. Safe to call
// more than once.
func (s *store) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.closeCh)
	<-s.done
}

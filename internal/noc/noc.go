// Package noc models the on-chip network used by the µMama unit to talk
// to the local prefetcher agents. The paper (§4.3, §4.4.2) shows the
// traffic is tiny (27 bytes per agent per timestep, 2 bytes on the
// critical path) and the design is latency tolerant, so the model is a
// constant-latency message fabric with byte accounting; the critical
// path between the majority-completing agent and the broadcast that
// starts the next timestep is modeled as a single constant (200 cycles
// in the paper's evaluation).
package noc

// Config describes the fabric.
type Config struct {
	// CriticalPathCycles is the round-trip from a local agent marking
	// itself ready to the µMama unit's broadcast arriving (paper: 200).
	CriticalPathCycles uint64
	// HopCycles is the one-way latency for non-critical messages (fully
	// hidden behind the ongoing timestep in µMama's schedule).
	HopCycles uint64
}

// DefaultConfig matches the paper's evaluation.
func DefaultConfig() Config {
	return Config{CriticalPathCycles: 200, HopCycles: 50}
}

// Stats counts traffic.
type Stats struct {
	Messages uint64
	Bytes    uint64
}

// Network is a constant-latency message fabric with byte accounting.
type Network struct {
	cfg   Config
	stats Stats
}

// New constructs a Network.
func New(cfg Config) *Network { return &Network{cfg: cfg} }

// Config returns the network configuration.
func (n *Network) Config() Config { return n.cfg }

// Stats returns a snapshot of traffic counters.
func (n *Network) Stats() Stats { return n.stats }

// Send records a message of the given size and returns its arrival time.
func (n *Network) Send(now uint64, bytes uint64) (arrive uint64) {
	n.stats.Messages++
	n.stats.Bytes += bytes
	return now + n.cfg.HopCycles
}

// Broadcast records a message to each of fanout receivers and returns
// the arrival time (receivers get it simultaneously in this model).
func (n *Network) Broadcast(now uint64, bytes uint64, fanout int) (arrive uint64) {
	n.stats.Messages += uint64(fanout)
	n.stats.Bytes += bytes * uint64(fanout)
	return now + n.cfg.HopCycles
}

// CriticalPath returns the cycle at which a new timestep can begin after
// the deciding agent became ready at cycle now (paper Figure 8: one
// agent→unit message plus one broadcast).
func (n *Network) CriticalPath(now uint64) uint64 {
	n.stats.Messages += 2
	n.stats.Bytes += 2 // the paper's 2-byte critical-path exchange
	return now + n.cfg.CriticalPathCycles
}

// PerStepBytes is the per-agent per-timestep traffic reported by the
// paper (§4.4.2): r_i and δ_i samples, policy instructions, and sync
// messages.
const PerStepBytes = 27

package noc

import "testing"

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.CriticalPathCycles != 200 {
		t.Errorf("CriticalPathCycles = %d, want the paper's 200", cfg.CriticalPathCycles)
	}
}

func TestSendAccountsTraffic(t *testing.T) {
	n := New(Config{CriticalPathCycles: 200, HopCycles: 50})
	arrive := n.Send(1000, 27)
	if arrive != 1050 {
		t.Errorf("Send arrival = %d, want 1050", arrive)
	}
	st := n.Stats()
	if st.Messages != 1 || st.Bytes != 27 {
		t.Errorf("stats = %+v, want 1 message / 27 bytes", st)
	}
}

func TestBroadcastFanout(t *testing.T) {
	n := New(DefaultConfig())
	n.Broadcast(0, 27, 8)
	st := n.Stats()
	if st.Messages != 8 || st.Bytes != 27*8 {
		t.Errorf("broadcast stats = %+v", st)
	}
}

func TestCriticalPath(t *testing.T) {
	n := New(DefaultConfig())
	if got := n.CriticalPath(5000); got != 5200 {
		t.Errorf("CriticalPath = %d, want 5200", got)
	}
	if st := n.Stats(); st.Bytes != 2 {
		t.Errorf("critical path should move the paper's 2 bytes, got %d", st.Bytes)
	}
}

func TestPerStepBytesMatchesPaper(t *testing.T) {
	if PerStepBytes != 27 {
		t.Errorf("PerStepBytes = %d, want the paper's 27", PerStepBytes)
	}
}

package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"micromama/internal/xrand"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestWS(t *testing.T) {
	if got := WS([]float64{0.5, 1.5, 1.0}); !almost(got, 3.0) {
		t.Errorf("WS = %g, want 3", got)
	}
	if got := WS(nil); got != 0 {
		t.Errorf("WS(nil) = %g, want 0", got)
	}
}

func TestAM(t *testing.T) {
	if got := AM([]float64{0.5, 1.5}); !almost(got, 1.0) {
		t.Errorf("AM = %g, want 1", got)
	}
	if got := AM(nil); got != 0 {
		t.Errorf("AM(nil) = %g, want 0", got)
	}
}

func TestHS(t *testing.T) {
	// HS of {1,1} is 1; HS of {0.5, 1.5} = 2/(2+2/3) = 0.75.
	if got := HS([]float64{1, 1}); !almost(got, 1) {
		t.Errorf("HS = %g, want 1", got)
	}
	if got := HS([]float64{0.5, 1.5}); !almost(got, 0.75) {
		t.Errorf("HS = %g, want 0.75", got)
	}
	if got := HS([]float64{1, 0}); got != 0 {
		t.Errorf("HS with zero speedup = %g, want 0", got)
	}
}

func TestGM(t *testing.T) {
	if got := GM([]float64{4, 1}); !almost(got, 2) {
		t.Errorf("GM = %g, want 2", got)
	}
	if got := GM([]float64{2, 0}); got != 0 {
		t.Errorf("GM with zero = %g, want 0", got)
	}
}

func TestUnfairness(t *testing.T) {
	if got := Unfairness([]float64{0.5, 1.0, 2.0}); !almost(got, 4) {
		t.Errorf("Unfairness = %g, want 4", got)
	}
	if got := Unfairness([]float64{1, 1}); !almost(got, 1) {
		t.Errorf("Unfairness of equal = %g, want 1", got)
	}
	if got := Unfairness([]float64{0, 1}); !math.IsInf(got, 1) {
		t.Errorf("Unfairness with zero = %g, want +Inf", got)
	}
}

func TestSpeedups(t *testing.T) {
	got := Speedups([]float64{2, 3}, []float64{1, 2})
	if !almost(got[0], 2) || !almost(got[1], 1.5) {
		t.Errorf("Speedups = %v", got)
	}
	got = Speedups([]float64{2}, []float64{0})
	if got[0] != 0 {
		t.Errorf("Speedups with zero base = %v, want 0", got)
	}
}

func TestSpeedupsPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	Speedups([]float64{1}, []float64{1, 2})
}

func TestBlendEndpoints(t *testing.T) {
	s := []float64{0.5, 1.5, 1.0}
	if got := Blend(s, 0); !almost(got, AM(s)) {
		t.Errorf("Blend(0) = %g, want AM %g", got, AM(s))
	}
	if got := Blend(s, 1); !almost(got, HS(s)) {
		t.Errorf("Blend(1) = %g, want HS %g", got, HS(s))
	}
}

func randSpeedups(r *xrand.RNG, n int) []float64 {
	s := make([]float64, n)
	for i := range s {
		s[i] = 0.05 + 3*r.Float64()
	}
	return s
}

// Property: WS is homogeneous — WS(c·S) = c·WS(S). This is what lets
// µMama drop the common multiplicative terms in Equation 4.
func TestQuickWSHomogeneous(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		s := randSpeedups(&r, 1+int(seed%8))
		c := 0.1 + 5*r.Float64()
		scaled := make([]float64, len(s))
		for i := range s {
			scaled[i] = c * s[i]
		}
		return math.Abs(WS(scaled)-c*WS(s)) < 1e-9*(1+math.Abs(WS(s)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: HS ≤ GM ≤ AM for positive speedups (mean inequality chain).
func TestQuickMeanInequality(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		s := randSpeedups(&r, 2+int(seed%7))
		hs, gm, am := HS(s), GM(s), AM(s)
		return hs <= gm+1e-9 && gm <= am+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Unfairness ≥ 1 and equals 1 iff all speedups equal.
func TestQuickUnfairnessAtLeastOne(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		s := randSpeedups(&r, 1+int(seed%8))
		return Unfairness(s) >= 1-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Blend is monotone between its endpoints — for any alpha in
// [0,1], Blend lies between HS and AM.
func TestQuickBlendBetween(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		s := randSpeedups(&r, 2+int(seed%6))
		a := r.Float64()
		b := Blend(s, a)
		lo, hi := HS(s), AM(s)
		return b >= lo-1e-9 && b <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

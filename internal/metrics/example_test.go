package metrics_test

import (
	"fmt"

	"micromama/internal/metrics"
)

func ExampleWS() {
	// Per-core speedups relative to running alone without L2 prefetching
	// (Equation 2's S_i terms).
	s := []float64{0.8, 0.6, 0.9, 0.7}
	fmt.Printf("WS = %.2f\n", metrics.WS(s))
	// Output: WS = 3.00
}

func ExampleHS() {
	// HS rewards balance: the unbalanced system scores lower even with
	// the same total.
	balanced := []float64{0.75, 0.75}
	skewed := []float64{0.25, 1.25}
	fmt.Printf("balanced HS = %.3f, skewed HS = %.3f\n", metrics.HS(balanced), metrics.HS(skewed))
	// Output: balanced HS = 0.750, skewed HS = 0.417
}

func ExampleUnfairness() {
	fmt.Printf("%.1f\n", metrics.Unfairness([]float64{0.3, 0.6, 0.9}))
	// Output: 3.0
}

func ExampleBlend() {
	s := []float64{0.5, 1.0}
	fmt.Printf("WS-end %.3f, HS-end %.3f\n", metrics.Blend(s, 0), metrics.Blend(s, 1))
	// Output: WS-end 0.750, HS-end 0.667
}

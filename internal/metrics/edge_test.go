package metrics

import (
	"math"
	"testing"
)

// Table-driven edge cases pinning the return conventions of every
// metric: empty input, single elements, and zero/negative speedups
// (degenerate baselines upstream produce exact zeros).
func TestWSEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"empty slice", []float64{}, 0},
		{"single", []float64{1.25}, 1.25},
		{"zeros", []float64{0, 0}, 0},
		{"mixed sign", []float64{2, -0.5}, 1.5},
		{"sum", []float64{1, 2, 3}, 6},
	}
	for _, c := range cases {
		if got := WS(c.in); got != c.want {
			t.Errorf("WS(%v) [%s] = %g, want %g", c.in, c.name, got, c.want)
		}
	}
}

func TestAMEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{0.8}, 0.8},
		{"mean", []float64{1, 3}, 2},
	}
	for _, c := range cases {
		if got := AM(c.in); got != c.want {
			t.Errorf("AM(%v) [%s] = %g, want %g", c.in, c.name, got, c.want)
		}
	}
}

func TestHSEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{2}, 2},
		{"zero element", []float64{1, 0}, 0},
		{"negative element", []float64{1, -2}, 0},
		{"harmonic", []float64{1, 1. / 3}, 0.5},
		{"uniform", []float64{0.7, 0.7, 0.7}, 0.7},
	}
	for _, c := range cases {
		if got := HS(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("HS(%v) [%s] = %g, want %g", c.in, c.name, got, c.want)
		}
	}
}

func TestGMEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{4}, 4},
		{"zero element", []float64{2, 0}, 0},
		{"negative element", []float64{2, -1}, 0},
		{"pair", []float64{1, 4}, 2},
		{"uniform", []float64{0.9, 0.9}, 0.9},
	}
	for _, c := range cases {
		if got := GM(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("GM(%v) [%s] = %g, want %g", c.in, c.name, got, c.want)
		}
	}
}

func TestUnfairnessEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty returns perfectly fair", nil, 1},
		{"single", []float64{0.4}, 1},
		{"uniform", []float64{2, 2, 2}, 1},
		{"ratio", []float64{0.5, 2}, 4},
	}
	for _, c := range cases {
		if got := Unfairness(c.in); got != c.want {
			t.Errorf("Unfairness(%v) [%s] = %g, want %g", c.in, c.name, got, c.want)
		}
	}
	// A non-positive minimum (stalled core) is reported as +Inf, not a
	// negative or NaN ratio.
	for _, in := range [][]float64{{0, 1}, {-1, 2}} {
		if got := Unfairness(in); !math.IsInf(got, 1) {
			t.Errorf("Unfairness(%v) = %g, want +Inf", in, got)
		}
	}
}

func TestSpeedupsEdgeCases(t *testing.T) {
	got := Speedups([]float64{2, 3, 5}, []float64{1, 0, 2})
	want := []float64{2, 0, 2.5}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Speedups[%d] = %g, want %g (zero baseline must yield 0)", i, got[i], want[i])
		}
	}
	if out := Speedups(nil, nil); len(out) != 0 {
		t.Errorf("Speedups(nil, nil) = %v, want empty", out)
	}

	defer func() {
		if recover() == nil {
			t.Error("Speedups length mismatch did not panic")
		}
	}()
	Speedups([]float64{1}, []float64{1, 2})
}

func TestBlendEdgeCases(t *testing.T) {
	sp := []float64{0.5, 2}
	if got := Blend(sp, 0); got != AM(sp) {
		t.Errorf("Blend(alpha=0) = %g, want AM %g", got, AM(sp))
	}
	if got := Blend(sp, 1); got != HS(sp) {
		t.Errorf("Blend(alpha=1) = %g, want HS %g", got, HS(sp))
	}
	if got := Blend(nil, 0.5); got != 0 {
		t.Errorf("Blend(empty) = %g, want 0", got)
	}
}

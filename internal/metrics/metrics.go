// Package metrics implements the multiprogram performance metrics used
// throughout the paper's evaluation: Weighted Speedup (WS, Equation 2),
// Harmonic-mean Speedup (HS, Equation 6), Unfairness (Equation 7), the
// geometric mean of speedups, and the blended throughput/fairness
// rewards of §6.4.
package metrics

import "math"

// WS returns the Weighted Speedup: the sum of per-core speedups.
func WS(speedups []float64) float64 {
	var t float64
	for _, s := range speedups {
		t += s
	}
	return t
}

// AM returns the arithmetic-mean speedup (WS normalized by core count).
func AM(speedups []float64) float64 {
	if len(speedups) == 0 {
		return 0
	}
	return WS(speedups) / float64(len(speedups))
}

// HS returns the Harmonic-mean Speedup: n / Σ(1/S_i). HS emphasizes
// fairness — improving one core has quickly diminishing returns.
func HS(speedups []float64) float64 {
	if len(speedups) == 0 {
		return 0
	}
	var inv float64
	for _, s := range speedups {
		if s <= 0 {
			return 0
		}
		inv += 1 / s
	}
	return float64(len(speedups)) / inv
}

// GM returns the geometric mean of speedups.
func GM(speedups []float64) float64 {
	if len(speedups) == 0 {
		return 0
	}
	var logSum float64
	for _, s := range speedups {
		if s <= 0 {
			return 0
		}
		logSum += math.Log(s)
	}
	return math.Exp(logSum / float64(len(speedups)))
}

// Unfairness returns max(S)/min(S) (Equation 7): the maximum degree to
// which one workload is prioritized over another. 1.0 is perfectly
// fair.
func Unfairness(speedups []float64) float64 {
	if len(speedups) == 0 {
		return 1
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range speedups {
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	if lo <= 0 {
		return math.Inf(1)
	}
	return hi / lo
}

// Speedups divides element-wise: S_i = ipc[i] / base[i]. It panics on
// length mismatch (a harness bug) and returns 0 for zero baselines.
func Speedups(ipc, base []float64) []float64 {
	if len(ipc) != len(base) {
		panic("metrics: ipc/base length mismatch")
	}
	out := make([]float64, len(ipc))
	for i := range ipc {
		if base[i] > 0 {
			out[i] = ipc[i] / base[i]
		}
	}
	return out
}

// Blend returns (1-alpha)·AM + alpha·HS, the reward family of §6.4
// (µMama-WS, -25, -50, -75, -HS). WS is normalized to the arithmetic
// mean so that alpha interpolates between quantities of the same scale.
func Blend(speedups []float64, alpha float64) float64 {
	return (1-alpha)*AM(speedups) + alpha*HS(speedups)
}

package xrand

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed generators diverged at step %d", i)
		}
	}
}

func TestResetReplays(t *testing.T) {
	r := New(7)
	first := make([]uint64, 100)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Reset()
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("Reset did not replay: step %d got %d want %d", i, got, first[i])
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("nearby seeds produced %d identical outputs of 100", same)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Error("zero seed produced zero stream")
	}
	var z RNG // zero value
	if z.Uint64() == 0 && z.Uint64() == 0 {
		t.Error("zero-value RNG produced zero stream")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(3)
	counts := make([]int, 10)
	for i := 0; i < 10000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		counts[v]++
	}
	for v, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("Intn(10): value %d occurred %d/10000 times (badly skewed)", v, c)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := New(seed)
		for i := 0; i < 50; i++ {
			f := r.Float64()
			if f < 0 || f >= 1 {
				return false
			}
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

func TestPermIsPermutation(t *testing.T) {
	if err := quick.Check(func(seed uint64) bool {
		r := New(seed)
		n := 1 + int(seed%50)
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Error(err)
	}
}

// Package xrand provides a small, fast, deterministic PRNG
// (splitmix64-seeded xorshift64*) with resettable state. It is embedded
// in trace generators, workload samplers, and learning prefetchers so
// that every simulation is exactly reproducible from its seeds.
package xrand

// RNG is a resettable pseudo-random number generator. The zero value is
// usable (seed 0).
type RNG struct {
	seed  uint64
	state uint64
}

// New returns an RNG seeded with seed.
func New(seed uint64) RNG {
	r := RNG{seed: seed}
	r.Reset()
	return r
}

// Reset rewinds the generator to its seeded state.
func (r *RNG) Reset() {
	// splitmix64 step so nearby seeds produce uncorrelated streams.
	z := r.seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x2545f4914f6cdd1d
	}
	r.state = z
}

// Uint64 returns the next pseudo-random value.
func (r *RNG) Uint64() uint64 {
	if r.state == 0 {
		r.Reset()
	}
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Intn returns a value in [0, n). n must be > 0.
func (r *RNG) Intn(n int) int {
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Package plot renders minimal, dependency-free SVG charts — line, bar,
// and scatter — used by cmd/mamabench to emit graphical versions of the
// paper's figures alongside the text tables.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Chart geometry (viewBox units).
const (
	width   = 640
	height  = 400
	marginL = 70
	marginR = 20
	marginT = 40
	marginB = 55
)

// palette cycles across series.
var palette = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#17becf", "#7f7f7f"}

// Series is one named line or point set.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// NiceTicks returns ~n "nice" tick positions covering [lo, hi].
func NiceTicks(lo, hi float64, n int) []float64 {
	if n < 2 {
		n = 2
	}
	if hi < lo {
		lo, hi = hi, lo
	}
	span := hi - lo
	if span <= 0 {
		span = math.Abs(hi)
		if span == 0 {
			span = 1
		}
		lo, hi = lo-span/2, hi+span/2
		span = hi - lo
	}
	raw := span / float64(n-1)
	mag := math.Pow(10, math.Floor(math.Log10(raw)))
	var step float64
	switch {
	case raw/mag < 1.5:
		step = mag
	case raw/mag < 3.5:
		step = 2 * mag
	case raw/mag < 7.5:
		step = 5 * mag
	default:
		step = 10 * mag
	}
	first := math.Ceil(lo/step) * step
	var ticks []float64
	for v := first; v <= hi+step*1e-9; v += step {
		// Clean floating point noise.
		ticks = append(ticks, math.Round(v/step)*step)
	}
	return ticks
}

type scale struct {
	lo, hi float64
	px0    float64
	px1    float64
}

func (s scale) at(v float64) float64 {
	if s.hi == s.lo {
		return (s.px0 + s.px1) / 2
	}
	return s.px0 + (v-s.lo)/(s.hi-s.lo)*(s.px1-s.px0)
}

func dataRange(series []Series, getY bool) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, s := range series {
		vals := s.X
		if getY {
			vals = s.Y
		}
		for _, v := range vals {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if math.IsInf(lo, 1) {
		lo, hi = 0, 1
	}
	if lo == hi {
		lo, hi = lo-0.5, hi+0.5
	}
	return lo, hi
}

func fmtTick(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e6 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.3g", v)
}

type svgBuilder struct{ strings.Builder }

func (b *svgBuilder) open(title string) {
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" viewBox="0 0 %d %d" font-family="sans-serif" font-size="12">`, width, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>`)
	fmt.Fprintf(b, `<text x="%d" y="22" text-anchor="middle" font-size="15">%s</text>`, width/2, esc(title))
}

func (b *svgBuilder) axes(xs, ys scale, xTicks, yTicks []float64, xLabel, yLabel string) {
	// Frame.
	fmt.Fprintf(b, `<rect x="%g" y="%g" width="%g" height="%g" fill="none" stroke="#333"/>`,
		xs.px0, ys.px1, xs.px1-xs.px0, ys.px0-ys.px1)
	for _, t := range xTicks {
		x := xs.at(t)
		fmt.Fprintf(b, `<line x1="%.1f" y1="%g" x2="%.1f" y2="%g" stroke="#333"/>`, x, ys.px0, x, ys.px0+5)
		fmt.Fprintf(b, `<text x="%.1f" y="%g" text-anchor="middle">%s</text>`, x, ys.px0+18, fmtTick(t))
	}
	for _, t := range yTicks {
		y := ys.at(t)
		fmt.Fprintf(b, `<line x1="%g" y1="%.1f" x2="%g" y2="%.1f" stroke="#333"/>`, xs.px0-5, y, xs.px0, y)
		fmt.Fprintf(b, `<line x1="%g" y1="%.1f" x2="%g" y2="%.1f" stroke="#eee"/>`, xs.px0, y, xs.px1, y)
		fmt.Fprintf(b, `<text x="%g" y="%.1f" text-anchor="end" dy="4">%s</text>`, xs.px0-8, y, fmtTick(t))
	}
	fmt.Fprintf(b, `<text x="%d" y="%d" text-anchor="middle">%s</text>`, width/2, height-12, esc(xLabel))
	fmt.Fprintf(b, `<text x="16" y="%d" text-anchor="middle" transform="rotate(-90 16 %d)">%s</text>`,
		height/2, height/2, esc(yLabel))
}

func (b *svgBuilder) legend(names []string) {
	x := float64(marginL + 10)
	y := float64(marginT + 8)
	for i, n := range names {
		c := palette[i%len(palette)]
		fmt.Fprintf(b, `<rect x="%g" y="%g" width="10" height="10" fill="%s"/>`, x, y, c)
		fmt.Fprintf(b, `<text x="%g" y="%g">%s</text>`, x+14, y+9, esc(n))
		y += 16
	}
}

func (b *svgBuilder) close() { b.WriteString("</svg>") }

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// Line renders a multi-series line chart (markers included).
func Line(title, xLabel, yLabel string, series []Series) string {
	var b svgBuilder
	b.open(title)
	xlo, xhi := dataRange(series, false)
	ylo, yhi := dataRange(series, true)
	xTicks := NiceTicks(xlo, xhi, 6)
	yTicks := NiceTicks(ylo, yhi, 6)
	xs := scale{lo: min2(xlo, xTicks[0]), hi: max2(xhi, xTicks[len(xTicks)-1]), px0: marginL, px1: width - marginR}
	ys := scale{lo: min2(ylo, yTicks[0]), hi: max2(yhi, yTicks[len(yTicks)-1]), px0: height - marginB, px1: marginT}
	b.axes(xs, ys, xTicks, yTicks, xLabel, yLabel)
	names := make([]string, len(series))
	for i, s := range series {
		names[i] = s.Name
		c := palette[i%len(palette)]
		var pts []string
		for k := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", xs.at(s.X[k]), ys.at(s.Y[k])))
		}
		if len(pts) > 1 {
			fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="2"/>`, strings.Join(pts, " "), c)
		}
		for k := range s.X {
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`, xs.at(s.X[k]), ys.at(s.Y[k]), c)
		}
	}
	b.legend(names)
	b.close()
	return b.String()
}

// Scatter renders labeled points (e.g. the Figure 14 frontier).
func Scatter(title, xLabel, yLabel string, series []Series) string {
	var b svgBuilder
	b.open(title)
	xlo, xhi := dataRange(series, false)
	ylo, yhi := dataRange(series, true)
	xTicks := NiceTicks(xlo, xhi, 6)
	yTicks := NiceTicks(ylo, yhi, 6)
	xs := scale{lo: min2(xlo, xTicks[0]), hi: max2(xhi, xTicks[len(xTicks)-1]), px0: marginL, px1: width - marginR}
	ys := scale{lo: min2(ylo, yTicks[0]), hi: max2(yhi, yTicks[len(yTicks)-1]), px0: height - marginB, px1: marginT}
	b.axes(xs, ys, xTicks, yTicks, xLabel, yLabel)
	for i, s := range series {
		c := palette[i%len(palette)]
		for k := range s.X {
			x, y := xs.at(s.X[k]), ys.at(s.Y[k])
			fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="5" fill="%s"/>`, x, y, c)
			fmt.Fprintf(&b, `<text x="%.1f" y="%.1f">%s</text>`, x+7, y+4, esc(s.Name))
		}
	}
	b.close()
	return b.String()
}

// BarGroup is one cluster of bars sharing an x label.
type BarGroup struct {
	Label  string
	Values []float64
}

// Bar renders grouped bars; seriesNames labels the bars within each
// group (legend).
func Bar(title, yLabel string, seriesNames []string, groups []BarGroup) string {
	var b svgBuilder
	b.open(title)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, g := range groups {
		for _, v := range g.Values {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	if math.IsInf(lo, 1) {
		lo, hi = 0, 1
	}
	if lo > 0 {
		lo = 0
	}
	if hi < 0 {
		hi = 0
	}
	yTicks := NiceTicks(lo, hi, 6)
	ys := scale{lo: min2(lo, yTicks[0]), hi: max2(hi, yTicks[len(yTicks)-1]), px0: height - marginB, px1: marginT}
	xs := scale{lo: 0, hi: 1, px0: marginL, px1: width - marginR}
	b.axes(xs, ys, nil, yTicks, "", yLabel)

	groupW := (xs.px1 - xs.px0) / float64(len(groups))
	for gi, g := range groups {
		barW := groupW * 0.8 / float64(len(g.Values))
		x0 := xs.px0 + float64(gi)*groupW + groupW*0.1
		for vi, v := range g.Values {
			c := palette[vi%len(palette)]
			y := ys.at(v)
			zero := ys.at(0)
			top, h := y, zero-y
			if h < 0 {
				top, h = zero, -h
			}
			fmt.Fprintf(&b, `<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s"/>`,
				x0+float64(vi)*barW, top, barW-2, h, c)
		}
		fmt.Fprintf(&b, `<text x="%.1f" y="%g" text-anchor="middle">%s</text>`,
			x0+groupW*0.4, ys.px0+18, esc(g.Label))
	}
	b.legend(seriesNames)
	b.close()
	return b.String()
}

// Steps renders per-core policy timelines (the paper's Figures 2/4/12):
// X is time, Y the policy id, one step-line per core; dictated samples
// (when marked) are drawn hollow.
type StepSample struct {
	X      float64
	Y      float64
	Hollow bool
}

// StepSeries is one core's policy timeline.
type StepSeries struct {
	Name    string
	Samples []StepSample
}

// StepChart renders policy timelines.
func StepChart(title, xLabel, yLabel string, series []StepSeries, yMax float64) string {
	var b svgBuilder
	b.open(title)
	xlo, xhi := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for _, p := range s.Samples {
			if p.X < xlo {
				xlo = p.X
			}
			if p.X > xhi {
				xhi = p.X
			}
		}
	}
	if math.IsInf(xlo, 1) {
		xlo, xhi = 0, 1
	}
	xTicks := NiceTicks(xlo, xhi, 6)
	yTicks := NiceTicks(0, yMax, 6)
	xs := scale{lo: min2(xlo, xTicks[0]), hi: max2(xhi, xTicks[len(xTicks)-1]), px0: marginL, px1: width - marginR}
	ys := scale{lo: 0, hi: max2(yMax, yTicks[len(yTicks)-1]), px0: height - marginB, px1: marginT}
	b.axes(xs, ys, xTicks, yTicks, xLabel, yLabel)
	names := make([]string, len(series))
	for i, s := range series {
		names[i] = s.Name
		c := palette[i%len(palette)]
		for k, p := range s.Samples {
			x, y := xs.at(p.X), ys.at(p.Y)
			if k > 0 {
				prev := s.Samples[k-1]
				fmt.Fprintf(&b, `<line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f" stroke="%s" stroke-width="1"/>`,
					xs.at(prev.X), ys.at(prev.Y), x, ys.at(prev.Y), c)
			}
			if p.Hollow {
				fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="white" stroke="%s"/>`, x, y, c)
			} else {
				fmt.Fprintf(&b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"/>`, x, y, c)
			}
		}
	}
	b.legend(names)
	b.close()
	return b.String()
}

func min2(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func max2(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

package plot

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestNiceTicksCoverRange(t *testing.T) {
	ticks := NiceTicks(0, 10, 6)
	if len(ticks) < 3 {
		t.Fatalf("too few ticks: %v", ticks)
	}
	if ticks[0] < 0 || ticks[len(ticks)-1] > 10+1e-9 {
		t.Errorf("ticks escape the range: %v", ticks)
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i] <= ticks[i-1] {
			t.Errorf("ticks not increasing: %v", ticks)
		}
	}
}

func TestNiceTicksDegenerate(t *testing.T) {
	if ticks := NiceTicks(5, 5, 5); len(ticks) == 0 {
		t.Error("no ticks for degenerate range")
	}
	if ticks := NiceTicks(3, 1, 4); len(ticks) == 0 {
		t.Error("no ticks for reversed range")
	}
}

func TestQuickNiceTicksSorted(t *testing.T) {
	f := func(a, b float64) bool {
		if a != a || b != b || a < -1e12 || a > 1e12 || b < -1e12 || b > 1e12 {
			return true // skip NaN / extreme inputs
		}
		ticks := NiceTicks(a, b, 5)
		for i := 1; i < len(ticks); i++ {
			if ticks[i] <= ticks[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func wellFormed(t *testing.T, svg string) {
	t.Helper()
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(svg, "</svg>") {
		t.Fatal("not an SVG document")
	}
	for _, tag := range []string{"rect", "text"} {
		if !strings.Contains(svg, "<"+tag) {
			t.Errorf("missing <%s>", tag)
		}
	}
}

func TestLineChart(t *testing.T) {
	svg := Line("t", "x", "y", []Series{
		{Name: "a", X: []float64{1, 2, 3}, Y: []float64{1, 4, 2}},
		{Name: "b", X: []float64{1, 2, 3}, Y: []float64{2, 1, 5}},
	})
	wellFormed(t, svg)
	if !strings.Contains(svg, "polyline") {
		t.Error("line chart has no polylines")
	}
	if strings.Count(svg, "polyline") != 2 {
		t.Errorf("want 2 polylines, got %d", strings.Count(svg, "polyline"))
	}
}

func TestScatterChart(t *testing.T) {
	svg := Scatter("frontier", "WS", "fairness", []Series{
		{Name: "µmama", X: []float64{2.8}, Y: []float64{-1.9}},
		{Name: "bandit", X: []float64{2.85}, Y: []float64{-2.6}},
	})
	wellFormed(t, svg)
	if !strings.Contains(svg, "µmama") {
		t.Error("point label missing")
	}
}

func TestBarChart(t *testing.T) {
	svg := Bar("fig15a", "WS vs bandit", []string{"v"}, []BarGroup{
		{Label: "GRW", Values: []float64{0.1}},
		{Label: "JAV", Values: []float64{1.5}},
		{Label: "full", Values: []float64{-0.4}}, // negative bars supported
	})
	wellFormed(t, svg)
	if strings.Count(svg, "<rect") < 4 { // background + frame + 3 bars
		t.Error("missing bars")
	}
}

func TestStepChart(t *testing.T) {
	svg := StepChart("fig12", "cycles", "policy", []StepSeries{
		{Name: "core 0", Samples: []StepSample{{X: 0, Y: 3}, {X: 100, Y: 5, Hollow: true}}},
	}, 16)
	wellFormed(t, svg)
	if !strings.Contains(svg, `fill="white"`) {
		t.Error("hollow (dictated) marker missing")
	}
}

func TestEscaping(t *testing.T) {
	svg := Line(`<&">`, "x", "y", []Series{{Name: "s", X: []float64{0, 1}, Y: []float64{0, 1}}})
	if strings.Contains(svg, `<text x="320" y="22" text-anchor="middle" font-size="15"><&">`) {
		t.Error("title not escaped")
	}
	if !strings.Contains(svg, "&lt;&amp;&quot;&gt;") {
		t.Error("escaped title missing")
	}
}

package faultinject

import (
	"sync"
	"testing"
)

// resetEnv re-parses MAMA_FAULTS as if the process had just started,
// so env-activation tests can set variables per test case.
func resetEnv(t *testing.T) {
	t.Helper()
	reg.mu.Lock()
	reg.envOnce = sync.Once{}
	reg.seed = 1
	reg.envOnce.Do(parseEnv)
	env := reg.env
	seed := reg.seed
	sites := make([]*Site, 0, len(reg.sites))
	for _, s := range reg.sites {
		sites = append(sites, s)
	}
	reg.mu.Unlock()
	off, _ := parseRule("off")
	for _, s := range sites {
		if r, ok := env[s.name]; ok {
			s.set(r, seed)
		} else {
			s.set(off, seed)
		}
	}
}

func TestRuleSchedules(t *testing.T) {
	cases := []struct {
		spec string
		want []bool // fire pattern over the first evaluations
	}{
		{"off", []bool{false, false, false}},
		{"always", []bool{true, true, true}},
		{"once", []bool{true, false, false}},
		{"first:2", []bool{true, true, false, false}},
		{"every:3", []bool{false, false, true, false, false, true}},
	}
	for _, c := range cases {
		s := &Site{name: "test/" + c.spec}
		r, err := parseRule(c.spec)
		if err != nil {
			t.Fatalf("parse %q: %v", c.spec, err)
		}
		s.set(r, 1)
		for i, want := range c.want {
			if got := s.Fire(); got != want {
				t.Errorf("rule %q eval %d = %v, want %v", c.spec, i+1, got, want)
			}
		}
	}
}

func TestRuleParseErrors(t *testing.T) {
	for _, spec := range []string{"sometimes", "every:0", "every:x", "first:0", "prob:0", "prob:1.5", "prob:x"} {
		if err := ParseRule(spec); err == nil {
			t.Errorf("ParseRule(%q) accepted a bad rule", spec)
		}
	}
	for _, spec := range []string{"off", "always", "once", "first:3", "every:7", "prob:0.25"} {
		if err := ParseRule(spec); err != nil {
			t.Errorf("ParseRule(%q): %v", spec, err)
		}
	}
}

// TestProbDeterministic checks that prob rules replay the same firing
// schedule for the same (site, seed) and a different one for a
// different seed.
func TestProbDeterministic(t *testing.T) {
	pattern := func(seed uint64) []bool {
		s := &Site{name: "test/prob"}
		r, _ := parseRule("prob:0.5")
		s.set(r, seed)
		out := make([]bool, 64)
		for i := range out {
			out[i] = s.Fire()
		}
		return out
	}
	a, b, c := pattern(1), pattern(1), pattern(2)
	same := func(x, y []bool) bool {
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if !same(a, b) {
		t.Error("same seed produced different firing schedules")
	}
	if same(a, c) {
		t.Error("different seeds produced identical 64-eval schedules (suspicious)")
	}
	fired := 0
	for _, f := range a {
		if f {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Errorf("prob:0.5 fired %d/%d times over 64 evals", fired, len(a))
	}
}

func TestEnableRestoreAndCounts(t *testing.T) {
	resetEnv(t)
	site := New("test/enable")
	if site.Fire() {
		t.Fatal("unarmed site fired")
	}
	restore, err := Enable("test/enable", "first:2")
	if err != nil {
		t.Fatal(err)
	}
	before := site.Fired()
	if !site.Fire() || !site.Fire() || site.Fire() {
		t.Error("first:2 schedule wrong")
	}
	if site.Fired()-before != 2 {
		t.Errorf("Fired moved by %d, want 2", site.Fired()-before)
	}
	restore()
	if site.Fire() {
		t.Error("site still armed after restore")
	}
	// Re-enabling resets the schedule from evaluation 1.
	restore2, _ := Enable("test/enable", "once")
	defer restore2()
	if !site.Fire() || site.Fire() {
		t.Error("re-enabled once rule did not restart its schedule")
	}
}

func TestRegistrationIdempotentAndEnumerable(t *testing.T) {
	a := New("test/registry/site")
	b := New("test/registry/site")
	if a != b {
		t.Fatal("duplicate registration returned a different site")
	}
	found := false
	for _, name := range Sites() {
		if name == "test/registry/site" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Sites() does not list the registered site: %v", Sites())
	}
	if s, ok := Lookup("test/registry/site"); !ok || s != a {
		t.Fatal("Lookup did not return the registered site")
	}
	if _, ok := Lookup("test/registry/absent"); ok {
		t.Fatal("Lookup invented a site")
	}
}

func TestEnvActivation(t *testing.T) {
	t.Setenv("MAMA_FAULTS", "test/env/a=once, test/env/b=every:2,malformed,test/env/c=bogus:rule")
	t.Setenv("MAMA_FAULTS_SEED", "9")
	resetEnv(t)
	defer func() {
		t.Setenv("MAMA_FAULTS", "")
		t.Setenv("MAMA_FAULTS_SEED", "")
		resetEnv(t)
	}()

	// Sites registered after env parsing pick up their rules.
	a := New("test/env/a")
	if !a.Fire() || a.Fire() {
		t.Error("env-armed once rule wrong")
	}
	b := New("test/env/b")
	if b.Fire() || !b.Fire() {
		t.Error("env-armed every:2 rule wrong")
	}
	// Malformed entries are skipped, not fatal.
	c := New("test/env/c")
	if c.Fire() {
		t.Error("site with malformed env rule must stay disarmed")
	}
}

// TestConcurrentFire exercises Fire from many goroutines under -race
// and checks the exact fire count of a counter-based rule.
func TestConcurrentFire(t *testing.T) {
	resetEnv(t)
	site := New("test/concurrent")
	restore, err := Enable("test/concurrent", "every:10")
	if err != nil {
		t.Fatal(err)
	}
	defer restore()
	const goroutines, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				site.Fire()
			}
		}()
	}
	wg.Wait()
	if got := site.Fired(); got != goroutines*per/10 {
		t.Errorf("every:10 fired %d times over %d evals, want %d", got, goroutines*per, goroutines*per/10)
	}
}

// Package faultinject provides named, deterministic fault-injection
// sites for chaos testing the serving stack. Production code registers
// a Site per failure it can simulate (a worker panic, a slow job, a
// cache write error); tests and operators arm sites either through the
// MAMA_FAULTS environment variable or through the Enable test hook.
//
// Design constraints:
//
//  1. Disarmed sites cost one atomic load per evaluation, so sites can
//     sit on request paths permanently.
//  2. Firing is deterministic: rules are counter-based (once, first:N,
//     every:N) or driven by a per-site PRNG seeded from the site name
//     and MAMA_FAULTS_SEED (prob:P), so a failing chaos run reproduces
//     exactly from its seed.
//  3. Every site is registered and enumerable (Sites), so the chaos
//     suite can assert that the injection surface it expects actually
//     exists — a renamed or deleted site fails a test instead of
//     silently un-covering a failure mode.
//
// Environment format:
//
//	MAMA_FAULTS="server/worker/panic=once,server/worker/slow=every:3"
//	MAMA_FAULTS_SEED=7   # seeds prob:P rules (default 1)
//
// Rules: off | always | once | first:N | every:N | prob:P (0<P<=1).
package faultinject

import (
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Rule decides whether a site fires on a given evaluation. n is the
// 1-based evaluation index; rng is the site's deterministic PRNG state.
type rule struct {
	spec string // the string it was parsed from, for introspection
	fire func(n uint64, rng *splitmix) bool
}

// ParseRule parses a rule spec (off, always, once, first:N, every:N,
// prob:P). It is exported so callers can validate operator input early.
func ParseRule(spec string) error {
	_, err := parseRule(spec)
	return err
}

func parseRule(spec string) (rule, error) {
	spec = strings.TrimSpace(spec)
	name, arg, _ := strings.Cut(spec, ":")
	switch name {
	case "off", "":
		return rule{spec: "off", fire: func(uint64, *splitmix) bool { return false }}, nil
	case "always", "on":
		return rule{spec: "always", fire: func(uint64, *splitmix) bool { return true }}, nil
	case "once":
		return rule{spec: "once", fire: func(n uint64, _ *splitmix) bool { return n == 1 }}, nil
	case "first":
		k, err := strconv.ParseUint(arg, 10, 64)
		if err != nil || k == 0 {
			return rule{}, fmt.Errorf("faultinject: bad rule %q (want first:N, N>=1)", spec)
		}
		return rule{spec: spec, fire: func(n uint64, _ *splitmix) bool { return n <= k }}, nil
	case "every":
		k, err := strconv.ParseUint(arg, 10, 64)
		if err != nil || k == 0 {
			return rule{}, fmt.Errorf("faultinject: bad rule %q (want every:N, N>=1)", spec)
		}
		return rule{spec: spec, fire: func(n uint64, _ *splitmix) bool { return n%k == 0 }}, nil
	case "prob":
		p, err := strconv.ParseFloat(arg, 64)
		if err != nil || p <= 0 || p > 1 {
			return rule{}, fmt.Errorf("faultinject: bad rule %q (want prob:P, 0<P<=1)", spec)
		}
		return rule{spec: spec, fire: func(_ uint64, rng *splitmix) bool { return rng.float64() < p }}, nil
	}
	return rule{}, fmt.Errorf("faultinject: unknown rule %q", spec)
}

// splitmix is a tiny deterministic PRNG (SplitMix64), one per site so
// prob rules on different sites draw independent, reproducible streams.
type splitmix struct{ state uint64 }

func (s *splitmix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitmix) float64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

// fnv1a hashes a site name into its PRNG seed component.
func fnv1a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Site is one named fault-injection point. The zero Site is invalid;
// use New.
type Site struct {
	name string

	armed atomic.Bool // fast-path check; true iff rule != off

	mu    sync.Mutex
	rule  rule
	rng   splitmix
	evals uint64 // evaluations while armed (1-based index for rules)

	fired atomic.Uint64 // times the site actually fired
}

// Name returns the site's registered name.
func (s *Site) Name() string { return s.name }

// Fire evaluates the site: it reports true when the configured rule
// says this evaluation should inject the fault. Disarmed sites return
// false after a single atomic load.
func (s *Site) Fire() bool {
	if !s.armed.Load() {
		return false
	}
	s.mu.Lock()
	s.evals++
	hit := s.rule.fire != nil && s.rule.fire(s.evals, &s.rng)
	s.mu.Unlock()
	if hit {
		s.fired.Add(1)
	}
	return hit
}

// Fired returns how many times the site has fired.
func (s *Site) Fired() uint64 { return s.fired.Load() }

// set installs a rule and resets the deterministic state (evaluation
// counter and PRNG), so enabling a rule always starts a fresh schedule.
func (s *Site) set(r rule, seed uint64) {
	s.mu.Lock()
	s.rule = r
	s.evals = 0
	s.rng = splitmix{state: fnv1a(s.name) ^ seed}
	s.mu.Unlock()
	s.armed.Store(r.spec != "off")
}

// registry is the process-wide site table. Env configuration is parsed
// once, lazily, and applied both to already-registered sites and to
// sites registered later.
var reg = struct {
	mu      sync.Mutex
	sites   map[string]*Site
	envOnce sync.Once
	env     map[string]rule // pending env rules by site name
	seed    uint64
}{sites: make(map[string]*Site), seed: 1}

// parseEnv reads MAMA_FAULTS / MAMA_FAULTS_SEED once. Malformed
// entries are reported on stderr and skipped — a typo in a chaos-run
// env var must not take the service down.
func parseEnv() {
	reg.env = make(map[string]rule)
	if s := os.Getenv("MAMA_FAULTS_SEED"); s != "" {
		if v, err := strconv.ParseUint(s, 10, 64); err == nil {
			reg.seed = v
		} else {
			fmt.Fprintf(os.Stderr, "faultinject: ignoring bad MAMA_FAULTS_SEED %q\n", s)
		}
	}
	raw := os.Getenv("MAMA_FAULTS")
	if raw == "" {
		return
	}
	for _, part := range strings.Split(raw, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, spec, ok := strings.Cut(part, "=")
		if !ok {
			fmt.Fprintf(os.Stderr, "faultinject: ignoring malformed MAMA_FAULTS entry %q\n", part)
			continue
		}
		r, err := parseRule(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "faultinject: ignoring %q: %v\n", part, err)
			continue
		}
		reg.env[strings.TrimSpace(name)] = r
	}
}

// New registers (or returns the already-registered) site with the given
// name, applying any matching MAMA_FAULTS rule. Registration is
// idempotent so independent packages can declare the same site.
func New(name string) *Site {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	reg.envOnce.Do(parseEnv)
	if s, ok := reg.sites[name]; ok {
		return s
	}
	s := &Site{name: name}
	if r, ok := reg.env[name]; ok {
		s.set(r, reg.seed)
	}
	reg.sites[name] = s
	return s
}

// Sites returns the sorted names of every registered site, so tests can
// assert the expected injection surface exists.
func Sites() []string {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	out := make([]string, 0, len(reg.sites))
	for name := range reg.sites {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Lookup returns the registered site with the given name, if any.
func Lookup(name string) (*Site, bool) {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	s, ok := reg.sites[name]
	return s, ok
}

// Enable arms a registered site with the given rule spec and returns a
// restore function that disarms it again (test hook). It overrides any
// env-provided rule until restore is called.
func Enable(name, spec string) (restore func(), err error) {
	r, err := parseRule(spec)
	if err != nil {
		return nil, err
	}
	reg.mu.Lock()
	reg.envOnce.Do(parseEnv)
	s, ok := reg.sites[name]
	if !ok {
		s = &Site{name: name}
		reg.sites[name] = s
	}
	seed := reg.seed
	reg.mu.Unlock()
	s.set(r, seed)
	off, _ := parseRule("off")
	return func() { s.set(off, seed) }, nil
}

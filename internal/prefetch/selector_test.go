package prefetch

import "testing"

func TestSelectorOnlyActiveEngineIssues(t *testing.T) {
	s := NewSelector(1)
	if s.Active() != SelOff {
		t.Fatalf("initial active = %d, want off", s.Active())
	}
	// A dense ascending stream: the streamer would fire, but off is
	// active, so nothing may be issued.
	var dst []uint64
	for i := 0; i < 64; i++ {
		dst = s.OnAccess(0x400, uint64(0x10000+i*64), false, dst[:0])
		if len(dst) != 0 {
			t.Fatalf("off selector issued %d candidates", len(dst))
		}
	}
	// Switch to the streamer: its table trained during the off phase,
	// so candidates flow immediately.
	s.SetActive(SelStream)
	issued := 0
	for i := 64; i < 96; i++ {
		dst = s.OnAccess(0x400, uint64(0x10000+i*64), false, dst[:0])
		issued += len(dst)
	}
	if issued == 0 {
		t.Fatal("streamer issued nothing despite warm table")
	}
	if got := s.Name(); got != "selector:stream" {
		t.Errorf("Name = %q", got)
	}
}

func TestSelectorFeatureTap(t *testing.T) {
	s := NewSelector(1)
	// 16 accesses with a constant +64 delta on one page boundary run.
	for i := 0; i < 16; i++ {
		s.OnAccess(0x400, uint64(0x20000+i*64), i%2 == 0, nil)
	}
	f := s.TakeFeatures()
	if f.Accesses != 16 {
		t.Fatalf("Accesses = %d", f.Accesses)
	}
	if f.Misses != 8 {
		t.Errorf("Misses = %d, want 8", f.Misses)
	}
	// Deltas repeat from the third access on: 14 stride hits.
	if f.StrideHits != 14 {
		t.Errorf("StrideHits = %d, want 14", f.StrideHits)
	}
	if f.SmallDelta != 14 {
		t.Errorf("SmallDelta = %d, want 14", f.SmallDelta)
	}
	if f.StrideRegularity() < 0.8 {
		t.Errorf("StrideRegularity = %g", f.StrideRegularity())
	}
	if f.PageLocality() == 0 {
		t.Error("PageLocality = 0 for a dense stream")
	}
	// TakeFeatures must reset interval counters.
	if g := s.TakeFeatures(); g.Accesses != 0 || g.StrideHits != 0 {
		t.Errorf("features not reset: %+v", g)
	}
}

func TestSelectorFeedbackCountsAndForwards(t *testing.T) {
	s := NewSelector(1)
	s.SetActive(SelPythia)
	s.OnUseful(0x1000, false)
	s.OnUseful(0x2000, true)
	s.OnUseless(0x3000)
	f := s.TakeFeatures()
	if f.Useful != 2 || f.Useless != 1 {
		t.Fatalf("Useful/Useless = %d/%d", f.Useful, f.Useless)
	}
	if acc := f.Accuracy(); acc < 0.66 || acc > 0.67 {
		t.Errorf("Accuracy = %g, want 2/3", acc)
	}
	if acc := (SelectorFeatures{}).Accuracy(); acc != -1 {
		t.Errorf("empty-interval Accuracy = %g, want -1 sentinel", acc)
	}
}

func TestSelectorBandwidthFanout(t *testing.T) {
	s := NewSelector(1)
	// Must not panic and must reach Pythia regardless of active engine.
	s.SetBandwidthUtil(0.9)
	py := s.engines[SelPythia].(*Pythia)
	if py.bwUtil != 0.9 {
		t.Errorf("Pythia bwUtil = %g, want 0.9", py.bwUtil)
	}
}

func TestSelectorRejectsBadIndex(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SetActive(99) did not panic")
		}
	}()
	NewSelector(1).SetActive(99)
}

package prefetch

// Selector multiplexes one L2 slot across a family of heterogeneous
// engines (off / stream / stride / Bingo / Pythia / SPP) so a
// controller can switch the *kind* of prefetcher per program phase, not
// just its aggressiveness. It is the engine side of the PhaseSelect
// controller (Alcorta et al., arXiv 2307.08635): every sub-engine keeps
// training on every demand access — exactly like the Ensemble's tables,
// which train even at degree 0 — but only the active engine's
// candidates are issued, so switching engines takes effect instantly
// with warm tables.
//
// The selector also serves as the controller's feature tap: it
// accumulates per-interval phase features (miss rate, stride
// regularity, page locality, issue/accuracy counts of the active
// engine) that the classifier reads and resets at each decision point.

// Selector engine indices, in the order NewSelector constructs them.
const (
	SelOff = iota
	SelStream
	SelStride
	SelBingo
	SelPythia
	SelSPP
	NumSelectorEngines
)

// SelectorEngineNames maps selector engine indices to short names.
var SelectorEngineNames = [NumSelectorEngines]string{
	"off", "stream", "stride", "bingo", "pythia", "spp",
}

// SelectorFeatures is one interval's accumulated phase features.
type SelectorFeatures struct {
	Accesses uint64 // L2 demand accesses observed
	Misses   uint64 // of which missed the L2
	// StrideHits counts accesses whose delta from the previous access
	// repeats the previous delta (global, not per-PC — a cheap
	// regularity signal, not a predictor).
	StrideHits uint64
	// SamePage counts accesses to the same 4 KiB page as the previous
	// access (spatial locality → Bingo's footprint regime).
	SamePage uint64
	// SmallDelta counts stride-repeat accesses whose delta is within
	// one page (dense streams → streamer regime; larger repeating
	// deltas favor the PC-local stride engine).
	SmallDelta uint64
	// Issued / Useful / Useless are the active engine's prefetch fate
	// counters for the interval.
	Issued  uint64
	Useful  uint64
	Useless uint64
}

// MissRate returns misses/accesses for the interval (0 if idle).
func (f SelectorFeatures) MissRate() float64 {
	if f.Accesses == 0 {
		return 0
	}
	return float64(f.Misses) / float64(f.Accesses)
}

// StrideRegularity returns the fraction of accesses continuing a
// repeated global delta.
func (f SelectorFeatures) StrideRegularity() float64 {
	if f.Accesses == 0 {
		return 0
	}
	return float64(f.StrideHits) / float64(f.Accesses)
}

// PageLocality returns the fraction of accesses staying on the previous
// access's page.
func (f SelectorFeatures) PageLocality() float64 {
	if f.Accesses == 0 {
		return 0
	}
	return float64(f.SamePage) / float64(f.Accesses)
}

// Accuracy returns useful/(useful+useless) for the active engine's
// resolved prefetches this interval, or -1 when nothing resolved (so
// callers can distinguish "no evidence" from "inaccurate").
func (f SelectorFeatures) Accuracy() float64 {
	resolved := f.Useful + f.Useless
	if resolved == 0 {
		return -1
	}
	return float64(f.Useful) / float64(resolved)
}

// Selector is the multiplexing engine. It is not safe for concurrent
// use; like every other engine it is owned by a single core, and under
// the parallel epoch path all calls come from that core's goroutine.
type Selector struct {
	engines [NumSelectorEngines]Prefetcher
	active  int

	feat      SelectorFeatures
	lastAddr  uint64
	lastDelta int64
	havePrev  bool

	scratch []uint64
}

// NewSelector builds the engine family. seed feeds Pythia's RNG so runs
// stay deterministic per (controller seed, core).
func NewSelector(seed uint64) *Selector {
	s := &Selector{scratch: make([]uint64, 0, 64)}
	s.engines[SelOff] = None{}
	s.engines[SelStream] = NewStreamer("sel_stream", 64, 4)
	s.engines[SelStride] = NewStride("sel_stride", 256, 4)
	s.engines[SelBingo] = NewBingo()
	s.engines[SelPythia] = NewPythia(seed)
	s.engines[SelSPP] = NewSPP()
	return s
}

// Name implements Prefetcher.
func (s *Selector) Name() string { return "selector:" + SelectorEngineNames[s.active] }

// Active returns the index of the engine currently issuing prefetches.
func (s *Selector) Active() int { return s.active }

// SetActive switches which engine's candidates are issued. Tables of
// the other engines keep training, so this is cheap and instant.
func (s *Selector) SetActive(i int) {
	if i < 0 || i >= NumSelectorEngines {
		panic("prefetch: selector engine index out of range")
	}
	s.active = i
}

// OnAccess implements Prefetcher: trains every engine, issues only the
// active engine's candidates, and folds the access into the interval's
// phase features.
func (s *Selector) OnAccess(pc, addr uint64, hit bool, dst []uint64) []uint64 {
	s.feat.Accesses++
	if !hit {
		s.feat.Misses++
	}
	if s.havePrev {
		delta := int64(addr) - int64(s.lastAddr)
		if delta != 0 && delta == s.lastDelta {
			s.feat.StrideHits++
			if delta < PageBytes && delta > -PageBytes {
				s.feat.SmallDelta++
			}
		}
		if delta != 0 {
			s.lastDelta = delta
		}
		if addr/PageBytes == s.lastAddr/PageBytes {
			s.feat.SamePage++
		}
	}
	s.lastAddr, s.havePrev = addr, true

	n := len(dst)
	for i, e := range s.engines {
		if i == s.active {
			dst = e.OnAccess(pc, addr, hit, dst)
		} else {
			s.scratch = e.OnAccess(pc, addr, hit, s.scratch[:0])
		}
	}
	s.feat.Issued += uint64(len(dst) - n)
	return dst
}

// OnUseful implements Feedback: counts the outcome for the feature tap
// and forwards it to the active engine if it learns from feedback
// (Pythia). Outcomes of prefetches issued by a previously active engine
// are attributed to the current one — an acceptable smear given the
// classifier's hysteresis keeps switches rare relative to prefetch
// lifetimes.
func (s *Selector) OnUseful(addr uint64, late bool) {
	s.feat.Useful++
	if fb, ok := s.engines[s.active].(Feedback); ok {
		fb.OnUseful(addr, late)
	}
}

// OnUseless implements Feedback.
func (s *Selector) OnUseless(addr uint64) {
	s.feat.Useless++
	if fb, ok := s.engines[s.active].(Feedback); ok {
		fb.OnUseless(addr)
	}
}

// SetBandwidthUtil forwards the bus-utilization sample to every
// sub-engine that throttles on it (Pythia), active or not, so a
// newly-activated engine starts with a current view.
func (s *Selector) SetBandwidthUtil(u float64) {
	for _, e := range s.engines {
		if ba, ok := e.(interface{ SetBandwidthUtil(float64) }); ok {
			ba.SetBandwidthUtil(u)
		}
	}
}

// TakeFeatures returns the features accumulated since the last call and
// resets the interval counters (the global delta/page trackers persist
// across intervals).
func (s *Selector) TakeFeatures() SelectorFeatures {
	f := s.feat
	s.feat = SelectorFeatures{}
	return f
}

package prefetch

import "micromama/internal/xrand"

// Pythia (Bera et al., MICRO'21) reimplemented as a tabular RL offset
// prefetcher. The original learns, per program-context state, which
// prefetch offset (including "don't prefetch") maximizes a reward that
// prizes accurate-and-timely prefetches and penalizes inaccurate ones —
// more harshly when memory bandwidth is loaded. We keep that structure:
//
//   - State: two feature-hashed "vaults" (PC⊕last-delta, and the packed
//     sequence of recent deltas); Q(s,a) is the sum of both vaults.
//   - Actions: a set of line offsets plus no-prefetch.
//   - Rewards: +20 accurate&timely, +12 accurate-late, -14/-8 inaccurate
//     (high/low bandwidth utilization), -2/-4 for no-prefetch.
//   - Credit assignment through an evaluation queue (EQ): issued
//     prefetches wait there until a demand hit proves them accurate or
//     eviction/overflow proves them useless.
//
// The point of Pythia as a baseline in the paper is its *system-level
// shape*: bandwidth-aware moderation that does not blow up with core
// count (Figure 3). The bandwidth-scaled penalties reproduce that.

// pythiaActions are prefetch offsets in lines (0 = no prefetch).
var pythiaActions = []int64{0, 1, 2, 3, 4, 6, 8, 12, 16, 24, 32, -1, -2, -4}

const (
	pythiaVaultBits = 12
	pythiaVaultSize = 1 << pythiaVaultBits
	pythiaEQDepth   = 128
	pythiaAlpha     = 0.0065 * 8 // scaled up: tabular vaults see fewer updates than Pythia's
	pythiaGamma     = 0.55
	pythiaEpsilon   = 0.005

	rewardAccurateTimely = 20.0
	rewardAccurateLate   = 12.0
	rewardInaccurateHiBW = -14.0
	rewardInaccurateLoBW = -8.0
	rewardNoPrefetchHiBW = -2.0
	rewardNoPrefetchLoBW = -4.0
)

type pythiaEQEntry struct {
	line     uint64 // 0 for no-prefetch entries
	h1, h2   uint32
	action   int
	hasNext  bool
	nh1, nh2 uint32
	done     bool
}

// Pythia is the RL offset prefetcher.
type Pythia struct {
	q1, q2 [][]float32 // vaults: state hash -> action -> Q
	eq     []pythiaEQEntry
	eqHead int
	eqLen  int
	rng    xrand.RNG

	lastAddr  uint64
	deltaHist uint64 // packed recent line deltas
	bwUtil    float64
	haveLast  bool

	// Stats
	Issued  uint64
	Useful  uint64
	Useless uint64
}

// NewPythia constructs a Pythia prefetcher. seed drives its ε-greedy
// exploration deterministically.
func NewPythia(seed uint64) *Pythia {
	p := &Pythia{rng: xrand.New(seed)}
	p.q1 = make([][]float32, pythiaVaultSize)
	p.q2 = make([][]float32, pythiaVaultSize)
	flat1 := make([]float32, pythiaVaultSize*len(pythiaActions))
	flat2 := make([]float32, pythiaVaultSize*len(pythiaActions))
	for i := 0; i < pythiaVaultSize; i++ {
		p.q1[i] = flat1[i*len(pythiaActions) : (i+1)*len(pythiaActions)]
		p.q2[i] = flat2[i*len(pythiaActions) : (i+1)*len(pythiaActions)]
	}
	p.eq = make([]pythiaEQEntry, pythiaEQDepth)
	return p
}

// Name implements Prefetcher.
func (p *Pythia) Name() string { return "pythia" }

// SetBandwidthUtil updates Pythia's view of memory-bus utilization in
// [0,1]; the simulator calls this periodically so the reward scheme can
// scale its penalties, as in the original design.
func (p *Pythia) SetBandwidthUtil(u float64) { p.bwUtil = u }

// clampDelta bounds a line delta to a small signed range, as Pythia's
// program features do; without clamping, irregular traffic would spread
// over so many states that the Q-vaults could never accumulate evidence.
func clampDelta(d int64) int64 {
	if d > 31 {
		return 31
	}
	if d < -32 {
		return -32
	}
	return d
}

func (p *Pythia) features(pc, addr uint64) (uint32, uint32) {
	line := addr / LineBytes
	var delta int64
	if p.haveLast {
		delta = clampDelta(int64(line) - int64(p.lastAddr/LineBytes))
	}
	h1 := uint32(mix64(pc^uint64(delta)<<17)) & (pythiaVaultSize - 1)
	h2 := uint32(mix64(p.deltaHist^(addr%PageBytes)/LineBytes<<40)) & (pythiaVaultSize - 1)
	return h1, h2
}

func (p *Pythia) qVal(h1, h2 uint32, a int) float64 {
	return float64(p.q1[h1][a]) + float64(p.q2[h2][a])
}

func (p *Pythia) maxQ(h1, h2 uint32) float64 {
	best := p.qVal(h1, h2, 0)
	for a := 1; a < len(pythiaActions); a++ {
		if v := p.qVal(h1, h2, a); v > best {
			best = v
		}
	}
	return best
}

func (p *Pythia) update(e *pythiaEQEntry, reward float64) {
	if e.done {
		return
	}
	e.done = true
	target := reward
	if e.hasNext {
		target += pythiaGamma * p.maxQ(e.nh1, e.nh2)
	}
	td := target - p.qVal(e.h1, e.h2, e.action)
	p.q1[e.h1][e.action] += float32(pythiaAlpha * td / 2)
	p.q2[e.h2][e.action] += float32(pythiaAlpha * td / 2)
}

func (p *Pythia) inaccurateReward() float64 {
	if p.bwUtil > 0.5 {
		return rewardInaccurateHiBW
	}
	return rewardInaccurateLoBW
}

func (p *Pythia) noPrefetchReward() float64 {
	if p.bwUtil > 0.5 {
		return rewardNoPrefetchHiBW
	}
	return rewardNoPrefetchLoBW
}

// OnAccess implements Prefetcher.
func (p *Pythia) OnAccess(pc, addr uint64, hit bool, dst []uint64) []uint64 {
	h1, h2 := p.features(pc, addr)

	// Give the previous EQ entry its successor state (for bootstrapping)
	// and settle any pending no-prefetch entry.
	if p.eqLen > 0 {
		lastIdx := (p.eqHead + p.eqLen - 1) % pythiaEQDepth
		last := &p.eq[lastIdx]
		if !last.hasNext {
			last.hasNext, last.nh1, last.nh2 = true, h1, h2
			if last.action == 0 {
				p.update(last, p.noPrefetchReward())
			}
		}
	}

	// ε-greedy action selection.
	var action int
	if p.rng.Float64() < pythiaEpsilon {
		action = p.rng.Intn(len(pythiaActions))
	} else {
		best := p.qVal(h1, h2, 0)
		for a := 1; a < len(pythiaActions); a++ {
			if v := p.qVal(h1, h2, a); v > best {
				best, action = v, a
			}
		}
	}

	// Track (clamped) delta history.
	line := addr / LineBytes
	if p.haveLast {
		delta := clampDelta(int64(line) - int64(p.lastAddr/LineBytes))
		p.deltaHist = (p.deltaHist<<6 | uint64(delta&0x3F)) & 0xFFFFFF
	}
	p.lastAddr = addr
	p.haveLast = true

	// Enqueue, evicting (and penalizing) the oldest if full.
	if p.eqLen == pythiaEQDepth {
		old := &p.eq[p.eqHead]
		if !old.done && old.action != 0 {
			p.update(old, p.inaccurateReward())
		}
		p.eqHead = (p.eqHead + 1) % pythiaEQDepth
		p.eqLen--
	}
	idx := (p.eqHead + p.eqLen) % pythiaEQDepth
	entry := pythiaEQEntry{h1: h1, h2: h2, action: action}
	off := pythiaActions[action]
	if off != 0 {
		target := int64(lineAlign(addr)) + off*LineBytes
		if target > 0 {
			entry.line = uint64(target)
			dst = append(dst, uint64(target))
			p.Issued++
		}
	}
	p.eq[idx] = entry
	p.eqLen++
	return dst
}

// OnUseful implements Feedback: a demand hit on one of our prefetched
// lines.
func (p *Pythia) OnUseful(addr uint64, late bool) {
	la := lineAlign(addr)
	for i := 0; i < p.eqLen; i++ {
		e := &p.eq[(p.eqHead+i)%pythiaEQDepth]
		if e.line == la && !e.done {
			p.Useful++
			if late {
				p.update(e, rewardAccurateLate)
			} else {
				p.update(e, rewardAccurateTimely)
			}
			return
		}
	}
}

// OnUseless implements Feedback: one of our prefetched lines was
// evicted untouched.
func (p *Pythia) OnUseless(addr uint64) {
	la := lineAlign(addr)
	for i := 0; i < p.eqLen; i++ {
		e := &p.eq[(p.eqHead+i)%pythiaEQDepth]
		if e.line == la && !e.done {
			p.Useless++
			p.update(e, p.inaccurateReward())
			return
		}
	}
}

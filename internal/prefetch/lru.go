package prefetch

// lruTable is a fixed-capacity uint64-keyed LRU map used by the Bingo
// history table. It is implemented with a map plus an intrusive
// doubly-linked list over a slab of nodes, so it performs no per-access
// allocation.
type lruTable[V any] struct {
	cap   int
	nodes []lruNode[V]
	index map[uint64]int
	head  int // most recently used
	tail  int // least recently used
	free  int // head of free list (-1 when full)
}

type lruNode[V any] struct {
	key        uint64
	val        V
	prev, next int
}

func newLRUTable[V any](capacity int) *lruTable[V] {
	if capacity <= 0 {
		panic("prefetch: LRU capacity must be positive")
	}
	t := &lruTable[V]{
		cap:   capacity,
		nodes: make([]lruNode[V], capacity),
		index: make(map[uint64]int, capacity),
		head:  -1,
		tail:  -1,
	}
	for i := 0; i < capacity-1; i++ {
		t.nodes[i].next = i + 1
	}
	t.nodes[capacity-1].next = -1
	t.free = 0
	return t
}

func (t *lruTable[V]) Len() int { return len(t.index) }

// Get returns the value for key and promotes it to most-recently-used.
func (t *lruTable[V]) Get(key uint64) (V, bool) {
	i, ok := t.index[key]
	if !ok {
		var zero V
		return zero, false
	}
	t.promote(i)
	return t.nodes[i].val, true
}

// Peek returns the value without touching recency.
func (t *lruTable[V]) Peek(key uint64) (V, bool) {
	i, ok := t.index[key]
	if !ok {
		var zero V
		return zero, false
	}
	return t.nodes[i].val, true
}

// Put inserts or updates key, evicting the LRU entry when full. It
// returns the evicted key/value if an eviction happened.
func (t *lruTable[V]) Put(key uint64, val V) (evictedKey uint64, evictedVal V, evicted bool) {
	if i, ok := t.index[key]; ok {
		t.nodes[i].val = val
		t.promote(i)
		return 0, evictedVal, false
	}
	var i int
	if t.free != -1 {
		i = t.free
		t.free = t.nodes[i].next
	} else {
		// Evict the tail.
		i = t.tail
		evictedKey, evictedVal, evicted = t.nodes[i].key, t.nodes[i].val, true
		delete(t.index, evictedKey)
		t.unlink(i)
	}
	t.nodes[i] = lruNode[V]{key: key, val: val, prev: -1, next: t.head}
	if t.head != -1 {
		t.nodes[t.head].prev = i
	}
	t.head = i
	if t.tail == -1 {
		t.tail = i
	}
	t.index[key] = i
	return evictedKey, evictedVal, evicted
}

// Delete removes key if present, returning its value.
func (t *lruTable[V]) Delete(key uint64) (V, bool) {
	i, ok := t.index[key]
	if !ok {
		var zero V
		return zero, false
	}
	val := t.nodes[i].val
	delete(t.index, key)
	t.unlink(i)
	t.nodes[i].next = t.free
	t.free = i
	return val, true
}

func (t *lruTable[V]) unlink(i int) {
	n := t.nodes[i]
	if n.prev != -1 {
		t.nodes[n.prev].next = n.next
	} else {
		t.head = n.next
	}
	if n.next != -1 {
		t.nodes[n.next].prev = n.prev
	} else {
		t.tail = n.prev
	}
}

func (t *lruTable[V]) promote(i int) {
	if t.head == i {
		return
	}
	t.unlink(i)
	t.nodes[i].prev = -1
	t.nodes[i].next = t.head
	if t.head != -1 {
		t.nodes[t.head].prev = i
	}
	t.head = i
	if t.tail == -1 {
		t.tail = i
	}
}

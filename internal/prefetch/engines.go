package prefetch

// Simple table-based engines: next-line, PC-local stride, and a
// page-stream detector. Degrees are mutable at runtime because the
// Bandit/µMama controllers reconfigure them every timestep.

// NextLine prefetches the line after every access when enabled.
type NextLine struct {
	Enabled bool
}

// NewNextLine constructs a next-line prefetcher.
func NewNextLine(enabled bool) *NextLine { return &NextLine{Enabled: enabled} }

// Name implements Prefetcher.
func (n *NextLine) Name() string { return "next_line" }

// OnAccess implements Prefetcher.
func (n *NextLine) OnAccess(pc, addr uint64, hit bool, dst []uint64) []uint64 {
	if !n.Enabled {
		return dst
	}
	return append(dst, lineAlign(addr)+LineBytes)
}

type strideEntry struct {
	pc       uint64
	lastAddr uint64
	stride   int64
	conf     int8
	valid    bool
}

// Stride is a PC-local stride prefetcher with a direct-mapped training
// table. A PC whose consecutive accesses repeat the same byte stride
// (confidence >= 2) triggers Degree prefetches ahead.
//
// In lineGranular mode (used by the L1D ip_stride prefetcher, matching
// ChampSim's) strides are computed between cache-line addresses and
// zero deltas (same-line accesses) neither train nor reset confidence,
// so dense sub-line streams train a line stride of 1.
type Stride struct {
	Degree       int
	entries      []strideEntry
	mask         uint64
	label        string
	lineGranular bool
}

// NewStride constructs a stride prefetcher with the given table size
// (power of two) and initial degree.
func NewStride(label string, tableSize, degree int) *Stride {
	if tableSize <= 0 || tableSize&(tableSize-1) != 0 {
		panic("prefetch: stride table size must be a positive power of two")
	}
	return &Stride{
		Degree:  degree,
		entries: make([]strideEntry, tableSize),
		mask:    uint64(tableSize - 1),
		label:   label,
	}
}

// Name implements Prefetcher.
func (s *Stride) Name() string { return s.label }

// OnAccess implements Prefetcher. The table trains on every access even
// when Degree is 0 so that re-enabling the engine is instant, matching
// how the Bandit ensemble flips configurations every timestep.
func (s *Stride) OnAccess(pc, addr uint64, hit bool, dst []uint64) []uint64 {
	if s.lineGranular {
		addr = lineAlign(addr)
	}
	e := &s.entries[(pc>>2)&s.mask]
	if !e.valid || e.pc != pc {
		*e = strideEntry{pc: pc, lastAddr: addr, valid: true}
		return dst
	}
	delta := int64(addr) - int64(e.lastAddr)
	if delta == 0 {
		// Same address (or same line, in line-granular mode): neither
		// train nor reset.
		return dst
	}
	e.lastAddr = addr
	if delta == e.stride {
		if e.conf < 3 {
			e.conf++
		}
	} else {
		e.stride = delta
		e.conf = 0
		return dst
	}
	if e.conf < 2 || s.Degree <= 0 {
		return dst
	}
	base := int64(lineAlign(addr))
	prev := lineAlign(addr)
	for k := 1; k <= s.Degree; k++ {
		target := base + int64(k)*e.stride
		if target <= 0 {
			break
		}
		t := lineAlign(uint64(target))
		if t != prev { // skip duplicates when stride < line size
			dst = append(dst, t)
			prev = t
		}
	}
	return dst
}

type streamEntry struct {
	page     uint64
	lastLine int
	dir      int8 // +1 ascending, -1 descending, 0 untrained
	conf     int8
	valid    bool
}

// Streamer detects sequential streams at page granularity and prefetches
// Degree lines ahead in the stream direction (crossing page boundaries,
// as hardware streamers chasing physical streams do within a region).
type Streamer struct {
	Degree  int
	entries []streamEntry
	mask    uint64
	label   string
}

// NewStreamer constructs a streamer with the given tracking-table size
// (power of two) and initial degree.
func NewStreamer(label string, tableSize, degree int) *Streamer {
	if tableSize <= 0 || tableSize&(tableSize-1) != 0 {
		panic("prefetch: streamer table size must be a positive power of two")
	}
	return &Streamer{
		Degree:  degree,
		entries: make([]streamEntry, tableSize),
		mask:    uint64(tableSize - 1),
		label:   label,
	}
}

// Name implements Prefetcher.
func (s *Streamer) Name() string { return s.label }

// OnAccess implements Prefetcher.
func (s *Streamer) OnAccess(pc, addr uint64, hit bool, dst []uint64) []uint64 {
	page := addr / PageBytes
	line := int((addr % PageBytes) / LineBytes)
	e := &s.entries[page&s.mask]
	if !e.valid || e.page != page {
		*e = streamEntry{page: page, lastLine: line, valid: true}
		return dst
	}
	switch {
	case line > e.lastLine:
		if e.dir == 1 {
			if e.conf < 3 {
				e.conf++
			}
		} else {
			e.dir, e.conf = 1, 0
		}
	case line < e.lastLine:
		if e.dir == -1 {
			if e.conf < 3 {
				e.conf++
			}
		} else {
			e.dir, e.conf = -1, 0
		}
	default:
		return dst
	}
	e.lastLine = line
	if e.conf < 1 || s.Degree <= 0 {
		return dst
	}
	base := int64(lineAlign(addr))
	for k := 1; k <= s.Degree; k++ {
		target := base + int64(k)*int64(e.dir)*LineBytes
		if target <= 0 {
			break
		}
		dst = append(dst, uint64(target))
	}
	return dst
}

// NewIPStride constructs the 24-entry L1D ip_stride prefetcher from the
// paper's Table 3 (a low-degree stride prefetcher, degree 2; byte-
// granular, so dense sub-line streams are left to the L2 prefetchers —
// the level the paper's agents control). 24 is not a power of two, so
// the table is rounded up to 32 entries.
func NewIPStride() *Stride { return NewStride("ip_stride", 32, 2) }

// Package prefetch implements the hardware prefetchers used in the
// paper's evaluation: the next-line / stride / streamer ensemble that
// the Micro-Armed Bandit agents control (with the 17-arm configuration
// table of paper Table 2), the L1D ip_stride prefetcher, and the Bingo
// and Pythia baselines.
package prefetch

// LineBytes is the cache-line size assumed by every engine.
const LineBytes = 64

// PageBytes is the page granularity used by the streamer and Pythia.
const PageBytes = 4096

// Prefetcher observes demand accesses at a cache level and proposes
// prefetch addresses.
type Prefetcher interface {
	// Name identifies the engine.
	Name() string
	// OnAccess observes a demand access (pc, byte address) and whether
	// it hit in the level. It appends prefetch candidate byte addresses
	// to dst and returns the extended slice (append-style, so callers
	// can reuse buffers).
	OnAccess(pc, addr uint64, hit bool, dst []uint64) []uint64
}

// Feedback is implemented by learning prefetchers (Pythia) that need to
// know the fate of their prefetches.
type Feedback interface {
	// OnUseful reports a demand hit on a prefetched line. late is true
	// if the demand arrived before the fill completed.
	OnUseful(addr uint64, late bool)
	// OnUseless reports a prefetched line evicted without being used.
	OnUseless(addr uint64)
}

// None is a disabled prefetcher.
type None struct{}

// Name implements Prefetcher.
func (None) Name() string { return "none" }

// OnAccess implements Prefetcher; it never prefetches.
func (None) OnAccess(pc, addr uint64, hit bool, dst []uint64) []uint64 { return dst }

func lineAlign(addr uint64) uint64 { return addr &^ (LineBytes - 1) }

package prefetch

import (
	"testing"
	"testing/quick"

	"micromama/internal/xrand"
)

func TestLRUBasic(t *testing.T) {
	l := newLRUTable[int](2)
	l.Put(1, 100)
	l.Put(2, 200)
	if v, ok := l.Get(1); !ok || v != 100 {
		t.Fatalf("Get(1) = %d,%v", v, ok)
	}
	// 1 is now MRU; inserting 3 must evict 2.
	ek, ev, evicted := l.Put(3, 300)
	if !evicted || ek != 2 || ev != 200 {
		t.Errorf("evicted (%d,%d,%v), want key 2", ek, ev, evicted)
	}
	if _, ok := l.Peek(2); ok {
		t.Error("evicted key still present")
	}
	if l.Len() != 2 {
		t.Errorf("Len = %d", l.Len())
	}
}

func TestLRUUpdateDoesNotEvict(t *testing.T) {
	l := newLRUTable[int](2)
	l.Put(1, 1)
	l.Put(2, 2)
	if _, _, evicted := l.Put(1, 11); evicted {
		t.Error("updating a resident key evicted")
	}
	if v, _ := l.Peek(1); v != 11 {
		t.Error("update did not stick")
	}
}

func TestLRUDelete(t *testing.T) {
	l := newLRUTable[int](3)
	l.Put(1, 1)
	l.Put(2, 2)
	if v, ok := l.Delete(1); !ok || v != 1 {
		t.Errorf("Delete = %d,%v", v, ok)
	}
	if _, ok := l.Get(1); ok {
		t.Error("deleted key found")
	}
	// Freed slot is reusable without eviction.
	if _, _, evicted := l.Put(3, 3); evicted {
		t.Error("Put after Delete evicted")
	}
	if _, ok := l.Delete(42); ok {
		t.Error("Delete of absent key reported ok")
	}
}

func TestLRUPeekDoesNotPromote(t *testing.T) {
	l := newLRUTable[int](2)
	l.Put(1, 1)
	l.Put(2, 2)
	l.Peek(1) // must NOT promote 1
	ek, _, _ := l.Put(3, 3)
	if ek != 1 {
		t.Errorf("evicted %d, want 1 (Peek should not promote)", ek)
	}
}

func TestLRUCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero capacity did not panic")
		}
	}()
	newLRUTable[int](0)
}

// Property: the LRU table agrees with a reference map + recency list.
func TestQuickLRUAgainstModel(t *testing.T) {
	f := func(seed uint64) bool {
		const capn = 4
		l := newLRUTable[uint64](capn)
		model := map[uint64]uint64{}
		var order []uint64 // MRU last
		touch := func(k uint64) {
			for i, v := range order {
				if v == k {
					order = append(order[:i], order[i+1:]...)
					break
				}
			}
			order = append(order, k)
		}
		r := xrand.New(seed)
		for i := 0; i < 400; i++ {
			k := uint64(r.Intn(10))
			switch r.Intn(3) {
			case 0: // Put
				v := r.Uint64()
				if _, exists := model[k]; !exists && len(model) == capn {
					victim := order[0]
					order = order[1:]
					delete(model, victim)
				}
				model[k] = v
				touch(k)
				l.Put(k, v)
			case 1: // Get
				mv, mok := model[k]
				gv, gok := l.Get(k)
				if mok != gok || (mok && mv != gv) {
					return false
				}
				if mok {
					touch(k)
				}
			default: // Delete
				_, mok := model[k]
				_, gok := l.Delete(k)
				if mok != gok {
					return false
				}
				if mok {
					delete(model, k)
					for i, v := range order {
						if v == k {
							order = append(order[:i], order[i+1:]...)
							break
						}
					}
				}
			}
			if l.Len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

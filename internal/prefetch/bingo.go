package prefetch

// Bingo spatial prefetcher (Bakhshalipour et al., HPCA'19), reimplemented
// from the paper's description. Bingo records the footprint of cache
// lines touched within a spatial region during its "generation" (from
// first access until the region goes cold), associates that footprint
// with the triggering event, and replays it on the next trigger. Lookup
// uses the most specific matching event first (PC+Address), falling back
// to PC+Offset — Bingo's signature "long events where possible, short
// events otherwise" design.

const (
	bingoRegionBytes  = 2048
	bingoLinesPerReg  = bingoRegionBytes / LineBytes // 32
	bingoAccTableSize = 64
	bingoHistorySize  = 2048
)

type bingoGeneration struct {
	footprint  uint32 // bit per line in the region
	triggerPC  uint64
	triggerOff int // line offset of the trigger within the region
}

// Bingo is the spatial footprint prefetcher.
type Bingo struct {
	acc     *lruTable[bingoGeneration]
	history *lruTable[uint32] // event key -> footprint

	// stats
	Trained   uint64
	Triggered uint64
}

// NewBingo constructs a Bingo prefetcher with the default table sizes.
func NewBingo() *Bingo {
	return &Bingo{
		acc:     newLRUTable[bingoGeneration](bingoAccTableSize),
		history: newLRUTable[uint32](bingoHistorySize),
	}
}

// Name implements Prefetcher.
func (b *Bingo) Name() string { return "bingo" }

func bingoPCAddrKey(pc, region uint64, off int) uint64 {
	return mix64(pc<<20 ^ region<<5 ^ uint64(off) ^ 0xB1)
}

func bingoPCOffKey(pc uint64, off int) uint64 {
	return mix64(pc<<6 ^ uint64(off) ^ 0xB2)
}

func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// OnAccess implements Prefetcher.
func (b *Bingo) OnAccess(pc, addr uint64, hit bool, dst []uint64) []uint64 {
	region := addr / bingoRegionBytes
	off := int((addr % bingoRegionBytes) / LineBytes)

	if gen, ok := b.acc.Get(region); ok {
		// Ongoing generation: extend the footprint.
		gen.footprint |= 1 << uint(off)
		b.acc.Put(region, gen)
		return dst
	}

	// New generation triggered. Commit whatever generation we displace.
	gen := bingoGeneration{footprint: 1 << uint(off), triggerPC: pc, triggerOff: off}
	if oldKey, oldGen, evicted := b.acc.Put(region, gen); evicted {
		b.commit(oldKey, oldGen)
	}

	// Predict: longest event first.
	fp, ok := b.history.Get(bingoPCAddrKey(pc, region, off))
	if !ok {
		fp, ok = b.history.Get(bingoPCOffKey(pc, off))
	}
	if !ok {
		return dst
	}
	b.Triggered++
	base := region * bingoRegionBytes
	for i := 0; i < bingoLinesPerReg; i++ {
		if i == off || fp&(1<<uint(i)) == 0 {
			continue
		}
		dst = append(dst, base+uint64(i)*LineBytes)
	}
	return dst
}

// commit stores a finished generation's footprint under both event keys.
func (b *Bingo) commit(region uint64, gen bingoGeneration) {
	if gen.footprint == 0 {
		return
	}
	b.Trained++
	b.history.Put(bingoPCAddrKey(gen.triggerPC, region, gen.triggerOff), gen.footprint)
	// Merge into the short event so it generalizes across regions.
	short := bingoPCOffKey(gen.triggerPC, gen.triggerOff)
	if prev, ok := b.history.Peek(short); ok {
		b.history.Put(short, prev|gen.footprint)
	} else {
		b.history.Put(short, gen.footprint)
	}
}

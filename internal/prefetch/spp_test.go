package prefetch

import "testing"

func TestSPPLearnsSequentialPath(t *testing.T) {
	s := NewSPP()
	page := uint64(0x40000)
	var got []uint64
	// Sequential walk: deltas of +1 train the pattern table.
	for i := 0; i < 20; i++ {
		got = s.OnAccess(0x40, page+uint64(i)*64, false, nil)
	}
	if len(got) == 0 {
		t.Fatal("SPP issued nothing on a trained sequential walk")
	}
	// Candidates must be ahead of the access and within the page.
	last := page + 19*64
	for _, a := range got {
		if a <= last {
			t.Errorf("candidate %#x not ahead of %#x", a, last)
		}
		if a/4096 != page/4096 {
			t.Errorf("candidate %#x escaped the page", a)
		}
	}
}

func TestSPPLookaheadDepthGrowsWithConfidence(t *testing.T) {
	s := NewSPP()
	page := uint64(0x80000)
	depthAt := func(rounds int) int {
		var got []uint64
		for i := 0; i < rounds; i++ {
			got = s.OnAccess(0x40, page+uint64(i)*64, false, nil)
		}
		return len(got)
	}
	early := depthAt(4)
	late := depthAt(40) // continues the same walk
	if late < early {
		t.Errorf("lookahead shrank with confidence: early=%d late=%d", early, late)
	}
	if late < 2 {
		t.Errorf("confident path should look ahead more than %d", late)
	}
}

func TestSPPStrideOfTwo(t *testing.T) {
	s := NewSPP()
	page := uint64(0xC0000)
	var got []uint64
	for i := 0; i < 16; i++ {
		got = s.OnAccess(0x40, page+uint64(2*i)*64, false, nil)
	}
	if len(got) == 0 {
		t.Fatal("SPP missed a stride-2 path")
	}
	// First candidate should be +2 lines ahead.
	want := page + 30*64 + 2*64
	if got[0] != want {
		t.Errorf("first candidate %#x, want %#x", got[0], want)
	}
}

func TestSPPRandomTrafficStaysQuiet(t *testing.T) {
	s := NewSPP()
	var state uint64 = 0x12345
	issued := 0
	for i := 0; i < 5000; i++ {
		state = state*2862933555777941757 + 3037000493
		addr := (state % (1 << 28)) &^ 63
		issued += len(s.OnAccess(0x40, addr, false, nil))
	}
	// Random deltas never build confident paths; a trickle is fine.
	if float64(issued)/5000 > 0.5 {
		t.Errorf("SPP issued %d prefetches on 5000 random accesses", issued)
	}
}

func TestSPPSameLineNoTrain(t *testing.T) {
	s := NewSPP()
	page := uint64(0x40000)
	s.OnAccess(0x40, page, false, nil)
	if got := s.OnAccess(0x40, page+8, false, nil); len(got) != 0 {
		t.Errorf("same-line access issued %#x", got)
	}
}

package prefetch

import "testing"

func TestPythiaDeterministic(t *testing.T) {
	a, b := NewPythia(1), NewPythia(1)
	for i := 0; i < 2000; i++ {
		addr := uint64(0x1000 + i*64)
		ca := a.OnAccess(0x40, addr, false, nil)
		cb := b.OnAccess(0x40, addr, false, nil)
		if len(ca) != len(cb) {
			t.Fatalf("same-seed Pythias diverged at %d", i)
		}
		for j := range ca {
			if ca[j] != cb[j] {
				t.Fatalf("same-seed Pythias diverged at %d", i)
			}
		}
	}
}

func TestPythiaLearnsSequentialPattern(t *testing.T) {
	p := NewPythia(3)
	// Reward accurate prefetches on a sequential stream and verify the
	// no-prefetch action loses ground: after training, Pythia should
	// prefetch on most accesses.
	addr := uint64(0x100000)
	for i := 0; i < 5000; i++ {
		addr += 64
		cands := p.OnAccess(0x40, addr, false, nil)
		for _, c := range cands {
			// Oracle: a candidate ahead of the stream within 32 lines
			// will be used soon.
			if c > addr && c <= addr+32*64 {
				p.OnUseful(c, false)
			} else {
				p.OnUseless(c)
			}
		}
	}
	if p.Issued == 0 {
		t.Fatal("Pythia never issued")
	}
	// Measure the recent issue rate.
	issuedBefore := p.Issued
	for i := 0; i < 1000; i++ {
		addr += 64
		cands := p.OnAccess(0x40, addr, false, nil)
		for _, c := range cands {
			if c > addr && c <= addr+32*64 {
				p.OnUseful(c, false)
			}
		}
	}
	rate := float64(p.Issued-issuedBefore) / 1000
	if rate < 0.5 {
		t.Errorf("trained Pythia issue rate = %.2f on a perfect stream, want >= 0.5", rate)
	}
	if p.Useful == 0 {
		t.Error("no useful prefetches recorded")
	}
}

func TestPythiaBacksOffWhenPunished(t *testing.T) {
	p := NewPythia(4)
	p.SetBandwidthUtil(0.9) // harsh inaccuracy penalties
	// Random accesses: every prefetch is useless.
	addr := uint64(0)
	for i := 0; i < 6000; i++ {
		addr = (addr*2862933555777941757 + 3037000493) % (1 << 30)
		cands := p.OnAccess(0x40, addr&^63, false, nil)
		for _, c := range cands {
			p.OnUseless(c)
		}
	}
	issuedBefore := p.Issued
	for i := 0; i < 1000; i++ {
		addr = (addr*2862933555777941757 + 3037000493) % (1 << 30)
		cands := p.OnAccess(0x40, addr&^63, false, nil)
		for _, c := range cands {
			p.OnUseless(c)
		}
	}
	rate := float64(p.Issued-issuedBefore) / 1000
	if rate > 0.55 {
		t.Errorf("punished Pythia still issues at rate %.2f", rate)
	}
}

func TestPythiaFeedbackMatchesEQ(t *testing.T) {
	p := NewPythia(5)
	var issued []uint64
	addr := uint64(0x2000)
	for i := 0; i < 300 && len(issued) == 0; i++ {
		addr += 64
		issued = append(issued, p.OnAccess(0x40, addr, false, nil)...)
	}
	if len(issued) == 0 {
		t.Skip("no prefetch issued in warmup window (exploration off)")
	}
	before := p.Useful
	p.OnUseful(issued[0], true)
	if p.Useful != before+1 {
		t.Error("OnUseful did not match the EQ entry")
	}
	// Unknown address: no effect.
	p.OnUseful(0xDEADBEEF000, false)
	if p.Useful != before+1 {
		t.Error("OnUseful matched a never-issued line")
	}
}

func TestPythiaBandwidthScaledRewards(t *testing.T) {
	p := NewPythia(6)
	p.SetBandwidthUtil(0.9)
	if got := p.inaccurateReward(); got != rewardInaccurateHiBW {
		t.Errorf("hi-bw inaccurate reward = %g", got)
	}
	p.SetBandwidthUtil(0.1)
	if got := p.inaccurateReward(); got != rewardInaccurateLoBW {
		t.Errorf("lo-bw inaccurate reward = %g", got)
	}
	if p.noPrefetchReward() != rewardNoPrefetchLoBW {
		t.Error("lo-bw no-prefetch reward wrong")
	}
}

package prefetch

import "testing"

// TestArmsMatchPaperTable2 pins the ensemble configuration table to the
// paper's Table 2, arm by arm.
func TestArmsMatchPaperTable2(t *testing.T) {
	want := []struct {
		nl     bool
		stride int
		stream int
	}{
		{false, 0, 0}, {true, 0, 0}, {false, 0, 2}, {false, 0, 3},
		{false, 2, 2}, {false, 0, 4}, {false, 2, 3}, {false, 0, 5},
		{false, 0, 6}, {false, 0, 7}, {true, 0, 6}, {false, 4, 4},
		{false, 4, 5}, {false, 8, 6}, {false, 0, 15}, {false, 8, 7},
		{false, 15, 15},
	}
	if NumArms != 17 || len(want) != 17 {
		t.Fatalf("NumArms = %d, want 17", NumArms)
	}
	for i, w := range want {
		a := Arms[i]
		if a.NextLine != w.nl || a.StrideDeg != w.stride || a.StreamDeg != w.stream {
			t.Errorf("arm %d = %+v, want %+v", i, a, w)
		}
	}
}

func TestArmsOrderedByAggressiveness(t *testing.T) {
	// The paper sorts policies from least (0) to most (16) aggressive.
	if Arms[0].TotalDegree() != 0 {
		t.Error("arm 0 should be fully off")
	}
	if Arms[16].TotalDegree() != 30 {
		t.Errorf("arm 16 total degree = %d, want 30", Arms[16].TotalDegree())
	}
	for i := 1; i < NumArms; i++ {
		if Arms[i].TotalDegree() < Arms[i-1].TotalDegree() {
			t.Errorf("arm %d (deg %d) less aggressive than arm %d (deg %d)",
				i, Arms[i].TotalDegree(), i-1, Arms[i-1].TotalDegree())
		}
	}
}

func TestEnsembleSetArm(t *testing.T) {
	e := NewEnsemble()
	if e.Arm() != 0 {
		t.Errorf("initial arm = %d, want 0", e.Arm())
	}
	e.SetArm(13)
	if e.Arm() != 13 {
		t.Errorf("arm = %d after SetArm(13)", e.Arm())
	}
	if e.stride.Degree != 8 || e.streamer.Degree != 6 || e.nextLine.Enabled {
		t.Error("arm 13 engine configuration wrong")
	}
}

func TestEnsembleSetArmPanicsOutOfRange(t *testing.T) {
	e := NewEnsemble()
	defer func() {
		if recover() == nil {
			t.Error("SetArm(17) did not panic")
		}
	}()
	e.SetArm(17)
}

func TestEnsembleArm0Silent(t *testing.T) {
	e := NewEnsemble()
	for i := 0; i < 20; i++ {
		if got := e.OnAccess(0x40, uint64(0x1000+i*64), false, nil); len(got) != 0 {
			t.Fatalf("arm 0 issued %#x", got)
		}
	}
}

func TestEnsembleTrainsWhileOff(t *testing.T) {
	e := NewEnsemble()
	// Train streamer while arm 0.
	for i := 0; i < 6; i++ {
		e.OnAccess(0x40, uint64(0x40000+i*64), false, nil)
	}
	e.SetArm(8) // streamer degree 6
	got := e.OnAccess(0x40, 0x40000+6*64, false, nil)
	if len(got) == 0 {
		t.Error("switching arms did not take effect immediately")
	}
}

func TestArmString(t *testing.T) {
	if s := Arms[1].String(); s != "nl=1 stride=0 stream=0" {
		t.Errorf("Arm.String = %q", s)
	}
}

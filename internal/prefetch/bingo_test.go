package prefetch

import "testing"

// touchRegion walks a footprint of line offsets within one region,
// starting a fresh generation.
func touchRegion(b *Bingo, pc, region uint64, offsets []int) {
	for _, off := range offsets {
		b.OnAccess(pc, region*bingoRegionBytes+uint64(off)*LineBytes, false, nil)
	}
}

func TestBingoLearnsAndReplaysFootprint(t *testing.T) {
	b := NewBingo()
	pc := uint64(0x400)
	footprint := []int{0, 3, 5, 9}

	// Fill the accumulation table past capacity so region 1's
	// generation commits to history.
	touchRegion(b, pc, 1, footprint)
	for r := uint64(2); r < 2+bingoAccTableSize; r++ {
		touchRegion(b, pc, r, []int{0})
	}

	// A new trigger with the same PC+offset replays the footprint.
	got := b.OnAccess(pc, 5000*bingoRegionBytes, false, nil)
	want := map[uint64]bool{}
	for _, off := range footprint[1:] { // trigger line itself excluded
		want[5000*bingoRegionBytes+uint64(off)*LineBytes] = true
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d lines (%#v), want %d", len(got), got, len(want))
	}
	for _, a := range got {
		if !want[a] {
			t.Errorf("unexpected prefetch %#x", a)
		}
	}
	if b.Trained == 0 || b.Triggered == 0 {
		t.Errorf("stats: trained=%d triggered=%d", b.Trained, b.Triggered)
	}
}

func TestBingoNoHistoryNoPrefetch(t *testing.T) {
	b := NewBingo()
	if got := b.OnAccess(0x400, 0x100000, false, nil); len(got) != 0 {
		t.Errorf("cold Bingo prefetched %#v", got)
	}
}

func TestBingoDifferentPCDoesNotMatch(t *testing.T) {
	b := NewBingo()
	touchRegion(b, 0x400, 1, []int{0, 2, 4})
	for r := uint64(2); r < 2+bingoAccTableSize; r++ {
		touchRegion(b, 0x400, r, []int{0})
	}
	// Same offset, different PC: the short event key differs.
	if got := b.OnAccess(0x999, 7777*bingoRegionBytes, false, nil); len(got) != 0 {
		t.Errorf("footprint replayed for wrong PC: %#v", got)
	}
}

func TestBingoAccumulatesWithinGeneration(t *testing.T) {
	b := NewBingo()
	// Accesses within an ongoing generation never prefetch (the region
	// is being recorded).
	touchRegion(b, 0x400, 1, []int{0})
	if got := b.OnAccess(0x400, 1*bingoRegionBytes+3*LineBytes, false, nil); len(got) != 0 {
		t.Errorf("in-generation access prefetched %#v", got)
	}
}

func TestBingoPCAddressBeatsPCOffset(t *testing.T) {
	b := NewBingo()
	pc := uint64(0x400)
	// Region 1 trained with a big footprint via PC+Address (exact region).
	touchRegion(b, pc, 1, []int{0, 1, 2, 3})
	// Region 2 trained with a smaller one at the same trigger offset.
	touchRegion(b, pc, 2, []int{0, 7})
	// Flush both generations.
	for r := uint64(10); r < 10+bingoAccTableSize; r++ {
		touchRegion(b, pc, r, []int{1})
	}
	// Re-trigger region 1 at offset 0: the long event (PC+Address for
	// region 1) must be preferred over the merged short event.
	got := b.OnAccess(pc, 1*bingoRegionBytes, false, nil)
	if len(got) != 3 {
		t.Errorf("long-event replay returned %d lines (%#v), want 3", len(got), got)
	}
}

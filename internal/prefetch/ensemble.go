package prefetch

import "fmt"

// Arm is one configuration of the L2 prefetcher ensemble: whether the
// next-line prefetcher is on and the degrees of the stride and streamer
// prefetchers. Arm 0 disables everything.
type Arm struct {
	NextLine  bool
	StrideDeg int
	StreamDeg int
}

// TotalDegree is the summed aggressiveness of the arm, used to order
// policies from least to most aggressive (paper figures 2/4/12 sort the
// Y axis this way).
func (a Arm) TotalDegree() int {
	d := a.StrideDeg + a.StreamDeg
	if a.NextLine {
		d++
	}
	return d
}

// String renders the arm compactly.
func (a Arm) String() string {
	nl := 0
	if a.NextLine {
		nl = 1
	}
	return fmt.Sprintf("nl=%d stride=%d stream=%d", nl, a.StrideDeg, a.StreamDeg)
}

// Arms is the paper's Table 2: the 17 Bandit arms used in every
// experiment, ordered by total degree (least to most aggressive).
var Arms = [17]Arm{
	{NextLine: false, StrideDeg: 0, StreamDeg: 0},   // 0: off
	{NextLine: true, StrideDeg: 0, StreamDeg: 0},    // 1
	{NextLine: false, StrideDeg: 0, StreamDeg: 2},   // 2
	{NextLine: false, StrideDeg: 0, StreamDeg: 3},   // 3
	{NextLine: false, StrideDeg: 2, StreamDeg: 2},   // 4
	{NextLine: false, StrideDeg: 0, StreamDeg: 4},   // 5
	{NextLine: false, StrideDeg: 2, StreamDeg: 3},   // 6
	{NextLine: false, StrideDeg: 0, StreamDeg: 5},   // 7
	{NextLine: false, StrideDeg: 0, StreamDeg: 6},   // 8
	{NextLine: false, StrideDeg: 0, StreamDeg: 7},   // 9
	{NextLine: true, StrideDeg: 0, StreamDeg: 6},    // 10
	{NextLine: false, StrideDeg: 4, StreamDeg: 4},   // 11
	{NextLine: false, StrideDeg: 4, StreamDeg: 5},   // 12
	{NextLine: false, StrideDeg: 8, StreamDeg: 6},   // 13
	{NextLine: false, StrideDeg: 0, StreamDeg: 15},  // 14
	{NextLine: false, StrideDeg: 8, StreamDeg: 7},   // 15
	{NextLine: false, StrideDeg: 15, StreamDeg: 15}, // 16: max
}

// NumArms is the size of the local agents' action space.
const NumArms = len(Arms)

// Ensemble is the L2 prefetcher controlled by a Bandit agent: a
// next-line, a stride, and a streamer engine whose configuration is
// switched between the 17 arms of Table 2.
type Ensemble struct {
	nextLine *NextLine
	stride   *Stride
	streamer *Streamer
	arm      int
}

// NewEnsemble constructs an ensemble with 64-entry stride and streamer
// tables (paper Table 1) set to arm 0 (everything off).
func NewEnsemble() *Ensemble {
	e := &Ensemble{
		nextLine: NewNextLine(false),
		stride:   NewStride("stride", 64, 0),
		streamer: NewStreamer("streamer", 64, 0),
	}
	e.SetArm(0)
	return e
}

// Name implements Prefetcher.
func (e *Ensemble) Name() string { return "bandit_ensemble" }

// Arm returns the currently applied arm index.
func (e *Ensemble) Arm() int { return e.arm }

// SetArm applies arm configuration id. It panics on out-of-range ids (a
// controller bug).
func (e *Ensemble) SetArm(id int) {
	if id < 0 || id >= NumArms {
		panic(fmt.Sprintf("prefetch: arm %d out of range [0,%d)", id, NumArms))
	}
	a := Arms[id]
	e.nextLine.Enabled = a.NextLine
	e.stride.Degree = a.StrideDeg
	e.streamer.Degree = a.StreamDeg
	e.arm = id
}

// OnAccess implements Prefetcher, consulting all three engines. The
// stride and streamer tables keep training even when their degree is 0
// so arm switches take effect immediately.
func (e *Ensemble) OnAccess(pc, addr uint64, hit bool, dst []uint64) []uint64 {
	dst = e.nextLine.OnAccess(pc, addr, hit, dst)
	dst = e.stride.OnAccess(pc, addr, hit, dst)
	dst = e.streamer.OnAccess(pc, addr, hit, dst)
	return dst
}

package prefetch

// SPP is a compact reimplementation of the Signature Path Prefetcher
// (Kim et al., MICRO'16), the other lookahead prefetcher commonly
// shipped with ChampSim. It is not part of the paper's comparison set,
// but it is a useful extra baseline for the harness:
//
//   - A signature table tracks, per 4KB page, a compressed history
//     ("signature") of the line deltas observed in that page.
//   - A pattern table maps signatures to the deltas that followed them,
//     with saturating confidence counters.
//   - On each access the current signature is looked up and the highest-
//     confidence delta is prefetched; the predicted path is then
//     followed ("lookahead") with multiplicative confidence until it
//     falls below a threshold.
const (
	sppSignatureBits = 12
	sppPatternSize   = 1 << sppSignatureBits
	sppDeltasPerSig  = 4
	sppMaxConfidence = 15
	sppLookaheadMax  = 8
	// sppFillThreshold is the minimum path confidence (out of 100) to
	// keep prefetching down the signature path.
	sppFillThreshold = 25
)

type sppPageEntry struct {
	page      uint64
	signature uint16
	lastLine  int
	valid     bool
}

type sppDelta struct {
	delta int16
	conf  uint8
}

// SPP is the signature path prefetcher.
type SPP struct {
	pages   *lruTable[sppPageEntry]
	pattern [][sppDeltasPerSig]sppDelta

	Issued uint64
}

// NewSPP constructs an SPP with a 256-entry page table.
func NewSPP() *SPP {
	return &SPP{
		pages:   newLRUTable[sppPageEntry](256),
		pattern: make([][sppDeltasPerSig]sppDelta, sppPatternSize),
	}
}

// Name implements Prefetcher.
func (s *SPP) Name() string { return "spp" }

func sppAdvance(sig uint16, delta int16) uint16 {
	return (sig<<3 ^ uint16(delta)&0x3F) & (sppPatternSize - 1)
}

// train records delta as a successor of sig.
func (s *SPP) train(sig uint16, delta int16) {
	row := &s.pattern[sig]
	// Existing slot: bump confidence, decay the others slightly.
	for i := range row {
		if row[i].conf > 0 && row[i].delta == delta {
			if row[i].conf < sppMaxConfidence {
				row[i].conf++
			}
			return
		}
	}
	// Replace the weakest slot.
	weakest := 0
	for i := 1; i < len(row); i++ {
		if row[i].conf < row[weakest].conf {
			weakest = i
		}
	}
	row[weakest] = sppDelta{delta: delta, conf: 1}
}

// best returns the highest-confidence successor of sig.
func (s *SPP) best(sig uint16) (delta int16, conf uint8, ok bool) {
	row := &s.pattern[sig]
	bi := -1
	for i := range row {
		if row[i].conf > 0 && (bi < 0 || row[i].conf > row[bi].conf) {
			bi = i
		}
	}
	if bi < 0 {
		return 0, 0, false
	}
	return row[bi].delta, row[bi].conf, true
}

// OnAccess implements Prefetcher.
func (s *SPP) OnAccess(pc, addr uint64, hit bool, dst []uint64) []uint64 {
	page := addr / PageBytes
	line := int((addr % PageBytes) / LineBytes)

	e, found := s.pages.Get(page)
	if !found || e.page != page {
		s.pages.Put(page, sppPageEntry{page: page, signature: 0, lastLine: line, valid: true})
		return dst
	}
	delta := int16(line - e.lastLine)
	if delta == 0 {
		return dst
	}
	// Train the old signature with the observed delta, then advance.
	s.train(e.signature, delta)
	newSig := sppAdvance(e.signature, delta)
	s.pages.Put(page, sppPageEntry{page: page, signature: newSig, lastLine: line, valid: true})

	// Lookahead down the signature path.
	sig := newSig
	cur := int64(line)
	pathConf := 100
	for depth := 0; depth < sppLookaheadMax; depth++ {
		d, conf, ok := s.best(sig)
		if !ok {
			break
		}
		pathConf = pathConf * (int(conf) * 100 / sppMaxConfidence) / 100
		if pathConf < sppFillThreshold {
			break
		}
		cur += int64(d)
		if cur < 0 || cur >= int64(PageBytes/LineBytes) {
			break // SPP stays within the page
		}
		dst = append(dst, page*PageBytes+uint64(cur)*LineBytes)
		s.Issued++
		sig = sppAdvance(sig, d)
	}
	return dst
}

package prefetch

import (
	"testing"
)

func collect(p Prefetcher, pc uint64, addrs []uint64) []uint64 {
	var out []uint64
	for _, a := range addrs {
		out = p.OnAccess(pc, a, false, out[:0])
		if len(out) > 0 {
			// keep only the last access's candidates for assertions
			cp := make([]uint64, len(out))
			copy(cp, out)
			out = cp
		}
	}
	return out
}

func TestNone(t *testing.T) {
	var n None
	if got := n.OnAccess(1, 2, false, nil); len(got) != 0 {
		t.Errorf("None prefetched %v", got)
	}
	if n.Name() != "none" {
		t.Error("bad name")
	}
}

func TestNextLine(t *testing.T) {
	n := NewNextLine(true)
	got := n.OnAccess(0, 0x1008, false, nil)
	if len(got) != 1 || got[0] != 0x1040 {
		t.Errorf("next-line candidates = %#v, want [0x1040]", got)
	}
	n.Enabled = false
	if got := n.OnAccess(0, 0x1008, false, nil); len(got) != 0 {
		t.Error("disabled next-line still prefetches")
	}
}

func TestStrideDetection(t *testing.T) {
	s := NewStride("s", 16, 2)
	// Three accesses at stride 256 train the entry (conf 2), the fourth
	// issues degree-2 prefetches.
	addrs := []uint64{0x1000, 0x1100, 0x1200, 0x1300, 0x1400}
	var last []uint64
	for _, a := range addrs {
		last = s.OnAccess(0x40, a, false, nil)
	}
	if len(last) != 2 {
		t.Fatalf("stride candidates = %#v, want 2", last)
	}
	if last[0] != 0x1500 || last[1] != 0x1600 {
		t.Errorf("stride targets = %#x, want [0x1500 0x1600]", last)
	}
}

func TestStrideRetrainsAfterNoise(t *testing.T) {
	s := NewStride("s", 16, 1)
	pc := uint64(0x40)
	for _, a := range []uint64{0x1000, 0x1100, 0x1200, 0x1300} {
		s.OnAccess(pc, a, false, nil)
	}
	// Noise breaks the pattern.
	s.OnAccess(pc, 0x999000, false, nil)
	if got := s.OnAccess(pc, 0x1400, false, nil); len(got) != 0 {
		t.Errorf("prefetched %#x right after noise", got)
	}
	// Pattern resumes: stride relearned after a few accesses.
	s.OnAccess(pc, 0x1500, false, nil)
	s.OnAccess(pc, 0x1600, false, nil)
	if got := s.OnAccess(pc, 0x1700, false, nil); len(got) == 0 {
		t.Error("stride did not retrain after noise")
	}
}

func TestStrideZeroDegreeTrainsSilently(t *testing.T) {
	s := NewStride("s", 16, 0)
	for _, a := range []uint64{0x1000, 0x1100, 0x1200, 0x1300} {
		if got := s.OnAccess(0x40, a, false, nil); len(got) != 0 {
			t.Fatalf("degree-0 stride issued %#x", got)
		}
	}
	// Turning the degree up takes effect immediately (table was trained).
	s.Degree = 2
	if got := s.OnAccess(0x40, 0x1400, false, nil); len(got) != 2 {
		t.Errorf("after enabling degree: %#x", got)
	}
}

func TestStrideSubLineDeduplicates(t *testing.T) {
	s := NewStride("s", 16, 4)
	for _, a := range []uint64{0x1000, 0x1008, 0x1010, 0x1018} {
		s.OnAccess(0x40, a, false, nil)
	}
	got := s.OnAccess(0x40, 0x1020, false, nil)
	for i := 1; i < len(got); i++ {
		if got[i] == got[i-1] {
			t.Errorf("duplicate candidate %#x", got[i])
		}
	}
}

func TestStreamerAscending(t *testing.T) {
	st := NewStreamer("st", 16, 3)
	page := uint64(0x40000)
	var got []uint64
	for i := 0; i < 4; i++ {
		got = st.OnAccess(0, page+uint64(i)*64, false, nil)
	}
	if len(got) != 3 {
		t.Fatalf("streamer candidates = %#v, want 3", got)
	}
	base := page + 3*64
	for k, a := range got {
		if a != base+uint64(k+1)*64 {
			t.Errorf("candidate %d = %#x, want %#x", k, a, base+uint64(k+1)*64)
		}
	}
}

func TestStreamerDescending(t *testing.T) {
	st := NewStreamer("st", 16, 2)
	page := uint64(0x40000)
	var got []uint64
	for i := 10; i >= 7; i-- {
		got = st.OnAccess(0, page+uint64(i)*64, false, nil)
	}
	if len(got) != 2 {
		t.Fatalf("descending stream not detected: %#v", got)
	}
	if got[0] != page+6*64 || got[1] != page+5*64 {
		t.Errorf("descending candidates = %#x", got)
	}
}

func TestStreamerSamelineNoTrigger(t *testing.T) {
	st := NewStreamer("st", 16, 2)
	page := uint64(0x40000)
	st.OnAccess(0, page, false, nil)
	if got := st.OnAccess(0, page+8, false, nil); len(got) != 0 {
		t.Errorf("same-line access triggered streamer: %#v", got)
	}
}

func TestIPStride(t *testing.T) {
	s := NewIPStride()
	if s.Degree != 2 {
		t.Errorf("ip_stride degree = %d, want 2", s.Degree)
	}
}

func TestTableSizePanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewStride("x", 3, 1) },
		func() { NewStreamer("x", 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("non-power-of-two table size did not panic")
				}
			}()
			f()
		}()
	}
}

package workload

import (
	"testing"

	"micromama/internal/trace"
)

func TestCatalogIntegrity(t *testing.T) {
	cat := Catalog()
	if len(cat) < 20 {
		t.Fatalf("catalog has only %d entries", len(cat))
	}
	seen := map[string]bool{}
	classes := map[Class]int{}
	for _, s := range cat {
		if seen[s.Name] {
			t.Errorf("duplicate trace name %q", s.Name)
		}
		seen[s.Name] = true
		classes[s.Class]++
		r := s.New()
		if r.Name() != s.Name {
			t.Errorf("spec %q produces reader named %q", s.Name, r.Name())
		}
		if _, ok := r.Next(); !ok {
			t.Errorf("trace %q is empty", s.Name)
		}
	}
	for _, c := range []Class{ClassLigra, ClassSPEC06, ClassSPEC17, ClassPARSEC} {
		if classes[c] == 0 {
			t.Errorf("no traces of class %s", c)
		}
	}
	// Ligra should dominate the sensitive set, mirroring the paper's 50%.
	var ligra, sensitive int
	for _, s := range Sensitive() {
		sensitive++
		if s.Class == ClassLigra {
			ligra++
		}
	}
	if ligra*100/sensitive < 30 {
		t.Errorf("ligra share = %d/%d, want the dominant class", ligra, sensitive)
	}
}

func TestSensitiveInsensitivePartition(t *testing.T) {
	total := len(Catalog())
	if len(Sensitive())+len(Insensitive()) != total {
		t.Error("sensitive/insensitive do not partition the catalog")
	}
	for _, s := range Insensitive() {
		if s.Sensitive {
			t.Errorf("%q in Insensitive but marked sensitive", s.Name)
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("spec06.libquantum"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("nope.nothing"); err == nil {
		t.Error("unknown name resolved")
	}
}

func TestSpecNewIsFresh(t *testing.T) {
	sp, _ := ByName("spec06.libquantum")
	a, b := sp.New(), sp.New()
	ia, _ := a.Next()
	// advance a; b must be unaffected
	for i := 0; i < 100; i++ {
		a.Next()
	}
	ib, _ := b.Next()
	if ia != ib {
		t.Error("two instances of the same spec diverge from the start")
	}
}

func TestMixesDeterministicAndSized(t *testing.T) {
	a := Mixes(4, 10, 42)
	b := Mixes(4, 10, 42)
	if len(a) != 10 {
		t.Fatalf("got %d mixes", len(a))
	}
	for i := range a {
		if len(a[i].Specs) != 4 {
			t.Fatalf("mix %d has %d cores", i, len(a[i].Specs))
		}
		if a[i].Name() != b[i].Name() {
			t.Fatal("mix sampling nondeterministic")
		}
		for _, sp := range a[i].Specs {
			if !sp.Sensitive {
				t.Errorf("mix %d contains insensitive trace %q", i, sp.Name)
			}
		}
	}
	c := Mixes(4, 10, 43)
	diff := false
	for i := range a {
		if a[i].Name() != c[i].Name() {
			diff = true
		}
	}
	if !diff {
		t.Error("different seeds produced identical mixes")
	}
}

func TestMixTraces(t *testing.T) {
	m := Mixes(2, 1, 7)[0]
	tr := m.Traces()
	if len(tr) != 2 {
		t.Fatalf("Traces() len %d", len(tr))
	}
	var _ trace.Reader = tr[0]
	if tr[0].Name() != m.Specs[0].Name {
		t.Error("trace order does not match specs")
	}
}

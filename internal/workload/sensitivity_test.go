package workload

import (
	"testing"

	"micromama/internal/trace"
)

// TestMPKIDiversity verifies that the sensitive catalog spans the MPKI
// axes the paper's §6.3 analysis relies on: light traces (the paper
// notes 56% of its mixes satisfy µ−σ < 2.5 MPKI), heavy traces, and a
// wide spread between them. A cheap reuse-window model estimates
// no-prefetch L2 MPKI without running the simulator.
func TestMPKIDiversity(t *testing.T) {
	if testing.Short() {
		t.Skip("scans many traces")
	}
	est := func(sp Spec) float64 {
		r := sp.New()
		const n = 300_000
		const window = 16384 // ~1MB of 64B lines
		recent := map[uint64]uint64{}
		var idx, misses, instr uint64
		for instr = 0; instr < n; instr++ {
			ins, ok := r.Next()
			if !ok {
				break
			}
			if ins.Kind == trace.Other {
				continue
			}
			line := ins.Addr &^ 63
			idx++
			if last, seen := recent[line]; !seen || idx-last > window {
				misses++
			}
			recent[line] = idx
			if len(recent) > 4*window {
				for k, v := range recent {
					if idx-v > window {
						delete(recent, k)
					}
				}
			}
		}
		if instr == 0 {
			return 0
		}
		return float64(misses) * 1000 / float64(instr)
	}

	var light, heavy int
	lo, hi := 1e9, 0.0
	for _, sp := range Sensitive() {
		m := est(sp)
		if m < lo {
			lo = m
		}
		if m > hi {
			hi = m
		}
		if m < 6 {
			light++
		}
		if m > 20 {
			heavy++
		}
	}
	t.Logf("sensitive-set est. MPKI range: %.1f .. %.1f (light=%d heavy=%d of %d)",
		lo, hi, light, heavy, len(Sensitive()))
	if light < 4 {
		t.Errorf("only %d light traces (<6 MPKI); mixes lose the asymmetric-importance structure", light)
	}
	if heavy < 4 {
		t.Errorf("only %d heavy traces (>20 MPKI)", heavy)
	}
	if hi < 10*lo {
		t.Errorf("MPKI spread %.1f..%.1f too narrow for §6.3's variance analysis", lo, hi)
	}
}

// TestInsensitiveAreLight: the insensitive set must be cache-resident.
func TestInsensitiveAreLight(t *testing.T) {
	for _, sp := range Insensitive() {
		r := sp.New()
		lines := map[uint64]bool{}
		for i := 0; i < 100_000; i++ {
			ins, ok := r.Next()
			if !ok {
				break
			}
			if ins.Kind != trace.Other {
				lines[ins.Addr&^63] = true
			}
		}
		// Footprint must fit the 1MB L2.
		if got := len(lines) * 64; got > 1<<20 {
			t.Errorf("%s: footprint %d bytes exceeds L2", sp.Name, got)
		}
	}
}

// Package workload provides the trace catalog and multicore workload
// mixes used by the experiment harness. The catalog's synthetic traces
// mirror the behaviour classes of the paper's trace set (50% Ligra, 22%
// SPEC06, 20% SPEC17, 8% PARSEC — all prefetch-sensitive), plus a small
// set of insensitive traces for §6.3's secondary analysis.
package workload

import (
	"fmt"
	"sort"

	"micromama/internal/trace"
	"micromama/internal/xrand"
)

// effectively-unbounded trace length; the simulator stops at its
// instruction target and loops traces that end.
const unbounded = 1 << 62

// Class labels a trace's originating suite analog.
type Class string

const (
	ClassLigra  Class = "ligra"
	ClassSPEC06 Class = "spec06"
	ClassSPEC17 Class = "spec17"
	ClassPARSEC Class = "parsec"
)

// Spec is one catalog entry: a named, reproducible trace factory.
type Spec struct {
	Name      string
	Class     Class
	Sensitive bool // passes the paper's >10% prefetch-sensitivity filter
	factory   func() trace.Reader
}

// New instantiates a fresh reader for the trace.
func (s Spec) New() trace.Reader { return s.factory() }

// Shared returns a reader for the trace backed by the process-wide
// materialized-trace pool: the instruction stream is generated once and
// every Shared reader replays the same read-only slab (degrading to a
// plain New() stream when the pool's memory budget is exhausted). The
// replayed sequence is bit-identical to New()'s.
func (s Spec) Shared() trace.Reader {
	return trace.DefaultPool().Shared(s.Name, s.factory)
}

func seedOf(name string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// catalog is built once at init.
var catalog []Spec

func add(name string, class Class, sensitive bool, f func(seed uint64) trace.Reader) {
	seed := seedOf(name)
	catalog = append(catalog, Spec{
		Name:      name,
		Class:     class,
		Sensitive: sensitive,
		factory:   func() trace.Reader { return f(seed) },
	})
}

func init() {
	// --- Ligra-like graph traces (≈50% of the sensitive set). Frontier
	// scans alternate with irregular gathers; vertex counts and phase
	// lengths vary per algorithm, producing the high L2-MPKI variance
	// of §6.3.
	graph := func(name string, vertices uint64, scan, gather uint64, memRatio, gatherRatio float64) {
		add(name, ClassLigra, true, func(seed uint64) trace.Reader {
			return trace.NewGraph(name, trace.GraphConfig{
				Seed: seed, Vertices: vertices, EdgeFootprint: 64 << 20,
				ScanPhase: scan, GatherPhase: gather,
				MemRatio: memRatio, GatherMemRatio: gatherRatio, Length: unbounded,
			})
		})
	}
	graph("ligra.BFS", 1<<20, 150_000, 250_000, 0.12, 0.035)
	graph("ligra.PageRank", 2<<20, 400_000, 150_000, 0.14, 0.045)
	graph("ligra.PageRankDelta", 2<<20, 250_000, 250_000, 0.13, 0.035)
	graph("ligra.BC", 1<<20, 200_000, 300_000, 0.12, 0.025)
	graph("ligra.BellmanFord", 2<<20, 150_000, 350_000, 0.11, 0.030)
	graph("ligra.Components", 1<<20, 300_000, 200_000, 0.13, 0.040)
	graph("ligra.Radii", 2<<20, 180_000, 280_000, 0.12, 0.025)
	graph("ligra.MIS", 1<<20, 220_000, 180_000, 0.10, 0.035)
	graph("ligra.KCore", 2<<20, 120_000, 380_000, 0.11, 0.022)
	graph("ligra.Triangle", 1<<20, 500_000, 100_000, 0.15, 0.050)

	// --- SPEC06-like traces (≈22%).
	add("spec06.libquantum", ClassSPEC06, true, func(seed uint64) trace.Reader {
		return trace.NewStream("spec06.libquantum", trace.StreamConfig{
			Seed: seed, Footprint: 32 << 20, Streams: 1, MemRatio: 0.10, StoreRatio: 0.25, Length: unbounded,
		})
	})
	add("spec06.lbm", ClassSPEC06, true, func(seed uint64) trace.Reader {
		return trace.NewStream("spec06.lbm", trace.StreamConfig{
			Seed: seed, Footprint: 48 << 20, Streams: 3, MemRatio: 0.12, StoreRatio: 0.40, Length: unbounded,
		})
	})
	add("spec06.mcf", ClassSPEC06, true, func(seed uint64) trace.Reader {
		return trace.NewChase("spec06.mcf", trace.ChaseConfig{
			Seed: seed, Footprint: 96 << 20, MemRatio: 0.25, LocalRatio: 0.88, Length: unbounded,
		})
	})
	add("spec06.gromacs", ClassSPEC06, true, func(seed uint64) trace.Reader {
		return trace.NewStride("spec06.gromacs", trace.StrideConfig{
			Seed: seed, Strides: []uint64{128, 384}, Footprint: 24 << 20,
			MemRatio: 0.035, NoiseRatio: 0.05, StoreRatio: 0.15, Length: unbounded,
		})
	})
	add("spec06.cactusADM", ClassSPEC06, true, func(seed uint64) trace.Reader {
		return trace.NewStride("spec06.cactusADM", trace.StrideConfig{
			Seed: seed, Strides: []uint64{192, 576, 1152}, Footprint: 40 << 20,
			MemRatio: 0.040, NoiseRatio: 0.03, StoreRatio: 0.20, Length: unbounded,
		})
	})

	// --- SPEC17-like traces (≈20%).
	add("spec17.fotonik3d", ClassSPEC17, true, func(seed uint64) trace.Reader {
		return trace.NewStream("spec17.fotonik3d", trace.StreamConfig{
			Seed: seed, Footprint: 64 << 20, Streams: 4, MemRatio: 0.11, StoreRatio: 0.20, Length: unbounded,
		})
	})
	add("spec17.cactuBSSN", ClassSPEC17, true, func(seed uint64) trace.Reader {
		return trace.NewStride("spec17.cactuBSSN", trace.StrideConfig{
			Seed: seed, Strides: []uint64{256, 512, 1024, 2048}, Footprint: 56 << 20,
			MemRatio: 0.045, NoiseRatio: 0.04, StoreRatio: 0.18, Length: unbounded,
		})
	})
	add("spec17.mcf", ClassSPEC17, true, func(seed uint64) trace.Reader {
		return trace.NewChase("spec17.mcf", trace.ChaseConfig{
			Seed: seed, Footprint: 128 << 20, MemRatio: 0.22, LocalRatio: 0.90, Length: unbounded,
		})
	})
	add("spec17.roms", ClassSPEC17, true, func(seed uint64) trace.Reader {
		return trace.NewStream("spec17.roms", trace.StreamConfig{
			Seed: seed, Footprint: 40 << 20, Streams: 2, MemRatio: 0.09, StoreRatio: 0.30, Length: unbounded,
		})
	})

	// --- PARSEC-like traces (≈8%): phase-mixed programs.
	add("parsec.canneal", ClassPARSEC, true, func(seed uint64) trace.Reader {
		chase := trace.NewChase("canneal.chase", trace.ChaseConfig{
			Seed: seed ^ 1, Footprint: 64 << 20, MemRatio: 0.25, LocalRatio: 0.85, Length: unbounded,
		})
		stream := trace.NewStream("canneal.stream", trace.StreamConfig{
			Seed: seed ^ 2, Footprint: 16 << 20, Streams: 1, MemRatio: 0.10, StoreRatio: 0.20, Length: unbounded,
		})
		return trace.NewMixed("parsec.canneal", 300_000, unbounded, chase, stream)
	})
	add("parsec.streamcluster", ClassPARSEC, true, func(seed uint64) trace.Reader {
		stream := trace.NewStream("streamcluster.scan", trace.StreamConfig{
			Seed: seed ^ 1, Footprint: 24 << 20, Streams: 2, MemRatio: 0.11, StoreRatio: 0.10, Length: unbounded,
		})
		stride := trace.NewStride("streamcluster.stride", trace.StrideConfig{
			Seed: seed ^ 2, Strides: []uint64{320}, Footprint: 24 << 20,
			MemRatio: 0.035, NoiseRatio: 0.06, StoreRatio: 0.10, Length: unbounded,
		})
		return trace.NewMixed("parsec.streamcluster", 250_000, unbounded, stream, stride)
	})

	// --- Additional suite coverage: more Ligra algorithms and
	// SPEC/PARSEC analogs so 52-mix full-scale runs draw from a wide
	// pool.
	graph("ligra.BFSBV", 1<<20, 200_000, 220_000, 0.11, 0.030)
	graph("ligra.MaxIndSet", 2<<20, 160_000, 240_000, 0.12, 0.028)
	add("spec06.milc", ClassSPEC06, true, func(seed uint64) trace.Reader {
		return trace.NewStream("spec06.milc", trace.StreamConfig{
			Seed: seed, Footprint: 28 << 20, Streams: 2, MemRatio: 0.08, StoreRatio: 0.30, Length: unbounded,
		})
	})
	add("spec06.soplex", ClassSPEC06, true, func(seed uint64) trace.Reader {
		return trace.NewStride("spec06.soplex", trace.StrideConfig{
			Seed: seed, Strides: []uint64{96, 224}, Footprint: 20 << 20,
			MemRatio: 0.045, NoiseRatio: 0.10, StoreRatio: 0.12, Length: unbounded,
		})
	})
	add("spec17.lbm", ClassSPEC17, true, func(seed uint64) trace.Reader {
		return trace.NewStream("spec17.lbm", trace.StreamConfig{
			Seed: seed, Footprint: 56 << 20, Streams: 3, MemRatio: 0.10, StoreRatio: 0.45, Length: unbounded,
		})
	})
	add("spec17.pop2", ClassSPEC17, true, func(seed uint64) trace.Reader {
		stream := trace.NewStream("pop2.stream", trace.StreamConfig{
			Seed: seed ^ 1, Footprint: 20 << 20, Streams: 2, MemRatio: 0.07, StoreRatio: 0.25, Length: unbounded,
		})
		stride := trace.NewStride("pop2.stride", trace.StrideConfig{
			Seed: seed ^ 2, Strides: []uint64{448}, Footprint: 16 << 20,
			MemRatio: 0.04, NoiseRatio: 0.04, StoreRatio: 0.20, Length: unbounded,
		})
		return trace.NewMixed("spec17.pop2", 220_000, unbounded, stream, stride)
	})
	add("parsec.facesim", ClassPARSEC, true, func(seed uint64) trace.Reader {
		stride := trace.NewStride("facesim.stride", trace.StrideConfig{
			Seed: seed ^ 1, Strides: []uint64{160, 320}, Footprint: 24 << 20,
			MemRatio: 0.05, NoiseRatio: 0.06, StoreRatio: 0.18, Length: unbounded,
		})
		compute := trace.NewCompute("facesim.compute", trace.ComputeConfig{
			Seed: seed ^ 2, WorkingSet: 192 << 10, MemRatio: 0.15, Length: unbounded,
		})
		return trace.NewMixed("parsec.facesim", 180_000, unbounded, stride, compute)
	})

	// --- Light prefetch-sensitive traces: low L2 MPKI but latency-bound
	// enough that deeper L2 prefetching still buys >10% (the paper notes
	// 56% of its workloads have µ−σ of L2-MPKI under 2.5 — the sensitive
	// set is dominated by light traces, and these give mixes the
	// asymmetric-importance structure µMama exploits).
	add("spec06.zeusmp", ClassSPEC06, true, func(seed uint64) trace.Reader {
		return trace.NewStream("spec06.zeusmp", trace.StreamConfig{
			Seed: seed, Footprint: 24 << 20, Streams: 2, MemRatio: 0.035, StoreRatio: 0.20, Length: unbounded,
		})
	})
	add("spec06.sphinx3", ClassSPEC06, true, func(seed uint64) trace.Reader {
		return trace.NewStream("spec06.sphinx3", trace.StreamConfig{
			Seed: seed, Footprint: 16 << 20, Streams: 1, MemRatio: 0.045, StoreRatio: 0.10, Length: unbounded,
		})
	})
	add("spec17.wrf", ClassSPEC17, true, func(seed uint64) trace.Reader {
		return trace.NewStream("spec17.wrf", trace.StreamConfig{
			Seed: seed, Footprint: 20 << 20, Streams: 3, MemRatio: 0.030, StoreRatio: 0.25, Length: unbounded,
		})
	})
	add("spec17.nab", ClassSPEC17, true, func(seed uint64) trace.Reader {
		return trace.NewStream("spec17.nab", trace.StreamConfig{
			Seed: seed, Footprint: 12 << 20, Streams: 2, MemRatio: 0.025, StoreRatio: 0.15, Length: unbounded,
		})
	})
	add("ligra.BFSCC", ClassLigra, true, func(seed uint64) trace.Reader {
		return trace.NewGraph("ligra.BFSCC", trace.GraphConfig{
			Seed: seed, Vertices: 1 << 20, EdgeFootprint: 64 << 20,
			ScanPhase: 250_000, GatherPhase: 150_000,
			MemRatio: 0.06, GatherMemRatio: 0.015, Length: unbounded,
		})
	})
	add("ligra.CF", ClassLigra, true, func(seed uint64) trace.Reader {
		return trace.NewGraph("ligra.CF", trace.GraphConfig{
			Seed: seed, Vertices: 1 << 20, EdgeFootprint: 48 << 20,
			ScanPhase: 350_000, GatherPhase: 120_000,
			MemRatio: 0.05, GatherMemRatio: 0.012, Length: unbounded,
		})
	})

	// --- Insensitive traces (fail the >10% filter; §6.3's secondary
	// set). Compute-bound or cache-resident.
	insens := func(name string, ws uint64, memRatio float64) {
		add(name, ClassSPEC06, false, func(seed uint64) trace.Reader {
			return trace.NewCompute(name, trace.ComputeConfig{
				Seed: seed, WorkingSet: ws, MemRatio: memRatio, Length: unbounded,
			})
		})
	}
	insens("spec06.povray", 64<<10, 0.12)
	insens("spec06.gamess", 96<<10, 0.15)
	insens("spec17.leela", 128<<10, 0.12)
	insens("spec17.exchange2", 64<<10, 0.08)
}

// Catalog returns all catalog entries (sorted by name, stable).
func Catalog() []Spec {
	out := make([]Spec, len(catalog))
	copy(out, catalog)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Sensitive returns the prefetch-sensitive entries.
func Sensitive() []Spec {
	var out []Spec
	for _, s := range Catalog() {
		if s.Sensitive {
			out = append(out, s)
		}
	}
	return out
}

// Insensitive returns the entries failing the sensitivity filter.
func Insensitive() []Spec {
	var out []Spec
	for _, s := range Catalog() {
		if !s.Sensitive {
			out = append(out, s)
		}
	}
	return out
}

// ByName returns the named spec.
func ByName(name string) (Spec, error) {
	for _, s := range catalog {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown trace %q", name)
}

// Mix is one multicore workload: an ordered list of trace specs, one
// per core.
type Mix struct {
	ID    int
	Specs []Spec
}

// Name renders the mix compactly.
func (m Mix) Name() string {
	s := fmt.Sprintf("mix%02d{", m.ID)
	for i, sp := range m.Specs {
		if i > 0 {
			s += ","
		}
		s += sp.Name
	}
	return s + "}"
}

// Traces returns one reader per core. Readers resolve through the
// shared materialized-trace pool (Spec.Shared): concurrent baseline,
// profile, and controller runs of the same mix replay one buffer
// instead of regenerating the trace per run. Each reader has its own
// cursor, so a mix may repeat a spec.
func (m Mix) Traces() []trace.Reader {
	out := make([]trace.Reader, len(m.Specs))
	for i, sp := range m.Specs {
		out[i] = sp.Shared()
	}
	return out
}

// Mixes samples `count` mixes of `cores` traces each from the sensitive
// catalog, seeded deterministically (the paper randomly samples 52
// mixes for its 4- and 8-core experiments).
func Mixes(cores, count int, seed uint64) []Mix {
	specs := Sensitive()
	r := xrand.New(seed)
	mixes := make([]Mix, count)
	for i := range mixes {
		picked := make([]Spec, cores)
		for c := 0; c < cores; c++ {
			picked[c] = specs[r.Intn(len(specs))]
		}
		mixes[i] = Mix{ID: i, Specs: picked}
	}
	return mixes
}

// Package client is the shared mamaserved HTTP client used by mamactl
// (and embeddable elsewhere): one http.Client with an explicit timeout,
// exponential backoff with jitter on transient failures (connection
// errors, 429, 5xx) honoring Retry-After, and context-first APIs so
// every call is signal-cancellable.
//
// Retrying a submission is safe by construction: POST /v1/jobs is
// idempotent because jobs are content-addressed — resubmitting an
// identical spec lands on the same job ID via the server's cache and
// singleflight dedup, never a second simulation.
//
// Against a sharded cluster the client is owner-sticky: when a node
// answers with X-Mama-Owner (it proxied the request to the shard that
// owns the key, or it is the owner itself), subsequent requests go
// straight to that owner, skipping the extra proxy hop. The hint is
// dropped the moment it stops matching reality: a transport failure
// against the preferred owner, an X-Mama-Owner header that disagrees
// with it, or a membership change seen in the X-Mama-Gossip digest all
// clear the preference and fall back to the seed base URL, where the
// normal retry/backoff machinery (and the cluster's own degraded-local
// path) takes over.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"micromama/internal/cluster"
)

// Options tunes a Client. Zero values select sane defaults.
type Options struct {
	// Timeout bounds each HTTP attempt (default 30s). The zero-value
	// http.Client has no timeout at all; this client always sets one.
	Timeout time.Duration
	// MaxRetries is how many times a transient failure is retried
	// before giving up (default 4; the first attempt is not a retry).
	MaxRetries int
	// BaseDelay seeds the exponential backoff (default 200ms); delay
	// for retry n is BaseDelay·2ⁿ with ±50% jitter, capped at MaxDelay.
	BaseDelay time.Duration
	// MaxDelay caps a single backoff sleep (default 5s).
	MaxDelay time.Duration
	// HTTPClient overrides the underlying client (tests); when set,
	// Timeout is not applied to it.
	HTTPClient *http.Client
}

// newTransport is the client's default tuned transport. The stock
// http.DefaultTransport caps idle connections per host at 2, which
// forces a fresh TCP handshake on nearly every call of a polling
// client (WaitJob, sweep streaming); an explicit per-host idle pool
// keeps connections alive across the submit→poll→fetch cycle.
func newTransport() *http.Transport {
	return &http.Transport{
		Proxy:               http.ProxyFromEnvironment,
		ForceAttemptHTTP2:   true,
		MaxIdleConns:        128,
		MaxIdleConnsPerHost: 32,
		IdleConnTimeout:     90 * time.Second,
		DisableKeepAlives:   false,
	}
}

// Client is a retrying mamaserved API client. Safe for concurrent use.
type Client struct {
	base       string
	hc         *http.Client
	maxRetries int
	baseDelay  time.Duration
	maxDelay   time.Duration

	// preferred holds the base URL of the cluster node that owns the
	// keys this client is working with, learned from X-Mama-Owner
	// response headers (empty string = use the seed base). It is a
	// best-effort routing hint: wrong or stale values still work,
	// because every node proxies to the true owner. The hint is dropped
	// when a response's owner header disagrees with it, when transport
	// to it fails, or when the cluster's ring hash changes (see
	// ringHash) — all three mean ownership may have moved.
	preferred atomic.Value // string

	// ringHash is the last cluster membership fingerprint seen in an
	// X-Mama-Gossip response header (0 = none yet). The hash is
	// identical on every converged node, so a change means the ring
	// itself changed and every sticky owner hint is suspect.
	ringHash atomic.Uint64

	// sleep is swapped by tests to observe backoff without waiting.
	sleep func(ctx context.Context, d time.Duration) error
}

// New builds a Client for the given base URL (e.g.
// "http://localhost:8077").
func New(base string, opts Options) *Client {
	if opts.Timeout <= 0 {
		opts.Timeout = 30 * time.Second
	}
	if opts.MaxRetries < 0 {
		opts.MaxRetries = 0
	} else if opts.MaxRetries == 0 {
		opts.MaxRetries = 4
	}
	if opts.BaseDelay <= 0 {
		opts.BaseDelay = 200 * time.Millisecond
	}
	if opts.MaxDelay <= 0 {
		opts.MaxDelay = 5 * time.Second
	}
	hc := opts.HTTPClient
	if hc == nil {
		hc = &http.Client{Timeout: opts.Timeout, Transport: newTransport()}
	}
	c := &Client{
		base:       strings.TrimRight(base, "/"),
		hc:         hc,
		maxRetries: opts.MaxRetries,
		baseDelay:  opts.BaseDelay,
		maxDelay:   opts.MaxDelay,
		sleep:      sleepCtx,
	}
	c.preferred.Store("")
	return c
}

func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Response is the outcome of one successful (possibly non-2xx) HTTP
// exchange: the final status code and the full body.
type Response struct {
	Status int
	Body   []byte
}

// retryable reports whether a status code is worth retrying: 429 and
// 503 are explicit backpressure, and other 5xx are transient by
// convention (the server's fault-injection suite emits 500s).
func retryable(status int) bool {
	return status == http.StatusTooManyRequests || status >= 500
}

// retryAfter parses a Retry-After header (delta-seconds or HTTP-date);
// ok is false when absent or unparseable.
func retryAfter(h http.Header) (time.Duration, bool) {
	v := h.Get("Retry-After")
	if v == "" {
		return 0, false
	}
	if sec, err := strconv.Atoi(v); err == nil && sec >= 0 {
		return time.Duration(sec) * time.Second, true
	}
	if at, err := http.ParseTime(v); err == nil {
		if d := time.Until(at); d > 0 {
			return d, true
		}
		return 0, true
	}
	return 0, false
}

// backoff computes the sleep before retry attempt n (0-based):
// BaseDelay·2ⁿ with ±50% jitter, capped at MaxDelay. Server-provided
// Retry-After overrides the exponential schedule (still capped).
func (c *Client) backoff(n int, h http.Header) time.Duration {
	if ra, ok := retryAfter(h); ok {
		if ra > c.maxDelay {
			return c.maxDelay
		}
		return ra
	}
	d := c.baseDelay << uint(n)
	if d > c.maxDelay || d <= 0 {
		d = c.maxDelay
	}
	// Full ±50% jitter decorrelates clients that backed off together.
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// Do performs one API call with retries. body may be nil. The returned
// Response carries whatever terminal status the server answered —
// callers still check Status — while transport errors that survive
// every retry come back as an error.
func (c *Client) Do(ctx context.Context, method, path string, body []byte) (*Response, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		resp, err := c.attempt(ctx, method, path, body)
		switch {
		case err == nil && !retryable(resp.status):
			return &Response{Status: resp.status, Body: resp.body}, nil
		case err == nil:
			lastErr = fmt.Errorf("HTTP %d: %s", resp.status, strings.TrimSpace(string(resp.body)))
		default:
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			lastErr = err
		}
		if attempt >= c.maxRetries {
			if err == nil {
				// Out of retries on a retryable status: surface the
				// response so callers can report status and body.
				return &Response{Status: resp.status, Body: resp.body}, nil
			}
			return nil, fmt.Errorf("%s %s: giving up after %d attempts: %w",
				method, path, attempt+1, lastErr)
		}
		var hdr http.Header
		if err == nil {
			hdr = resp.header
		}
		if serr := c.sleep(ctx, c.backoff(attempt, hdr)); serr != nil {
			return nil, serr
		}
	}
}

type attemptResult struct {
	status int
	header http.Header
	body   []byte
}

// baseURL picks the request target: the learned cluster owner when one
// is set, otherwise the seed base.
func (c *Client) baseURL() string {
	if p, _ := c.preferred.Load().(string); p != "" {
		return p
	}
	return c.base
}

// observeMembership watches the X-Mama-Gossip response header for ring
// changes: when the membership fingerprint moves, the sticky owner
// hint is cleared so the next request re-learns ownership from the
// seed base instead of bouncing through a node that may no longer own
// anything this client cares about.
func (c *Client) observeMembership(h http.Header) {
	d, ok := cluster.DecodeGossipDigest(h.Get(cluster.HeaderGossip))
	if !ok || d.Ring == 0 {
		return
	}
	if old := c.ringHash.Swap(d.Ring); old != 0 && old != d.Ring {
		c.preferred.Store("")
	}
}

// observeOwner reconciles the owner hint with a response's
// X-Mama-Owner header. A header that disagrees with the cached hint
// replaces it (the responding node knows the current ring better than
// our stale hint does); a hint equal to the seed base is stored as "no
// preference" so peer death can never strand the client away from its
// configured server. No header leaves the hint alone.
func (c *Client) observeOwner(h http.Header) {
	owner := strings.TrimRight(strings.TrimSpace(h.Get(cluster.HeaderOwner)), "/")
	if owner == "" {
		return
	}
	if owner == c.base {
		owner = ""
	}
	if cur, _ := c.preferred.Load().(string); cur != owner {
		c.preferred.Store(owner)
	}
}

func (c *Client) attempt(ctx context.Context, method, path string, body []byte) (attemptResult, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	target := c.baseURL()
	req, err := http.NewRequestWithContext(ctx, method, target+path, rd)
	if err != nil {
		return attemptResult{}, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		// Transport failure against a learned owner: drop the hint so the
		// retry goes back to the seed base, whose cluster logic degrades
		// to local compute if the owner really is down.
		if target != c.base {
			c.preferred.CompareAndSwap(target, "")
		}
		return attemptResult{}, err
	}
	defer resp.Body.Close()
	// Membership first: a ring change clears the hint, and the same
	// response's owner header (if any) then re-seeds it with the owner
	// under the new ring.
	c.observeMembership(resp.Header)
	c.observeOwner(resp.Header)
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return attemptResult{}, err
	}
	return attemptResult{status: resp.StatusCode, header: resp.Header, body: b}, nil
}

// Get performs a retrying GET.
func (c *Client) Get(ctx context.Context, path string) (*Response, error) {
	return c.Do(ctx, http.MethodGet, path, nil)
}

// Post performs a retrying POST with a JSON body.
func (c *Client) Post(ctx context.Context, path string, body []byte) (*Response, error) {
	return c.Do(ctx, http.MethodPost, path, body)
}

// ErrJobFailed is returned by WaitJob when the job finished as failed;
// the response body still carries the full job view.
var ErrJobFailed = errors.New("job failed")

// WaitJob polls GET /v1/jobs/{id}/result every poll interval until the
// job leaves queued/running (server answers 200), ctx is cancelled, or
// a non-retryable error occurs. Transient failures during polling ride
// the client's normal retry policy. A job that finished as failed
// returns the final body alongside ErrJobFailed.
func (c *Client) WaitJob(ctx context.Context, id string, poll time.Duration) (*Response, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	path := "/v1/jobs/" + id + "/result"
	for {
		resp, err := c.Get(ctx, path)
		if err != nil {
			return nil, err
		}
		switch resp.Status {
		case http.StatusAccepted:
			if err := c.sleep(ctx, poll); err != nil {
				return nil, err
			}
		case http.StatusOK:
			var view struct {
				Status string `json:"status"`
				Error  string `json:"error"`
			}
			if err := json.Unmarshal(resp.Body, &view); err != nil {
				return resp, err
			}
			if view.Status == "failed" {
				return resp, fmt.Errorf("%w: %s", ErrJobFailed, view.Error)
			}
			return resp, nil
		default:
			return resp, fmt.Errorf("wait %s: HTTP %d: %s",
				id, resp.Status, strings.TrimSpace(string(resp.Body)))
		}
	}
}

package client

import (
	"context"
	"encoding/base64"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"micromama/internal/cluster"
)

// gossipHeader fabricates an X-Mama-Gossip digest with the given ring
// fingerprint (the wire form is base64url JSON; see
// cluster.DecodeGossipDigest).
func gossipHeader(ring uint64) string {
	return base64.RawURLEncoding.EncodeToString(
		[]byte(fmt.Sprintf(`{"from":"http://node:1","v":1,"ring":%d}`, ring)))
}

// countingServer is an httptest server that counts fresh TCP
// connections via the ConnState hook — the observable difference
// between a keep-alive client and one that redials per request.
func countingServer(t testing.TB, h http.HandlerFunc) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var newConns atomic.Int64
	ts := httptest.NewUnstartedServer(h)
	ts.Config.ConnState = func(c net.Conn, st http.ConnState) {
		if st == http.StateNew {
			newConns.Add(1)
		}
	}
	ts.Start()
	t.Cleanup(ts.Close)
	return ts, &newConns
}

// TestConnectionReuse proves the tuned default transport keeps the
// connection alive across a polling-style sequence of requests: 50
// sequential calls must not open 50 sockets.
func TestConnectionReuse(t *testing.T) {
	ts, newConns := countingServer(t, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	c := New(ts.URL, Options{})
	ctx := context.Background()
	const calls = 50
	for i := 0; i < calls; i++ {
		resp, err := c.Get(ctx, "/v1/stats")
		if err != nil || resp.Status != http.StatusOK {
			t.Fatalf("call %d: status=%v err=%v", i, resp, err)
		}
	}
	if got := newConns.Load(); got > 3 {
		t.Fatalf("client opened %d connections for %d sequential requests; want <= 3 (keep-alive reuse)", got, calls)
	}
}

// TestOwnerStickyRouting verifies the cluster-awareness protocol: the
// client follows X-Mama-Owner hints to the owning shard, and a
// transport failure against the learned owner clears the hint so the
// next attempt falls back to the seed base.
func TestOwnerStickyRouting(t *testing.T) {
	var ownerHits, seedHits atomic.Int64

	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ownerHits.Add(1)
		w.WriteHeader(http.StatusOK)
	}))
	defer owner.Close()

	var advertise atomic.Bool
	advertise.Store(true)
	seed := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seedHits.Add(1)
		if advertise.Load() {
			w.Header().Set(cluster.HeaderOwner, owner.URL)
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer seed.Close()

	c := New(seed.URL, Options{})
	c.sleep = func(ctx context.Context, d time.Duration) error { return ctx.Err() }
	ctx := context.Background()

	// First call lands on the seed, which names the owner.
	if _, err := c.Get(ctx, "/v1/jobs/j1"); err != nil {
		t.Fatal(err)
	}
	if got, _ := c.preferred.Load().(string); got != owner.URL {
		t.Fatalf("preferred = %q; want owner %q", got, owner.URL)
	}

	// Subsequent calls go straight to the owner.
	if _, err := c.Get(ctx, "/v1/jobs/j1"); err != nil {
		t.Fatal(err)
	}
	if seedHits.Load() != 1 || ownerHits.Load() != 1 {
		t.Fatalf("seed=%d owner=%d hits; want 1/1", seedHits.Load(), ownerHits.Load())
	}

	// Owner dies: the transport failure clears the hint and the retry
	// machinery lands the same logical call back on the seed.
	owner.Close()
	advertise.Store(false)
	resp, err := c.Get(ctx, "/v1/jobs/j1")
	if err != nil || resp.Status != http.StatusOK {
		t.Fatalf("after owner death: resp=%v err=%v", resp, err)
	}
	if got, _ := c.preferred.Load().(string); got != "" {
		t.Fatalf("preferred = %q after owner death; want cleared", got)
	}
	if seedHits.Load() != 2 {
		t.Fatalf("seed hits = %d; want 2 (fallback after owner death)", seedHits.Load())
	}
}

// TestOwnerHintCorrectedOnDisagreement: a cached owner hint must be
// replaced — not merely kept until a transport failure — when a
// response's X-Mama-Owner names a different node (ownership moved, or
// the hint was learned from a stale ring).
func TestOwnerHintCorrectedOnDisagreement(t *testing.T) {
	var owner1Hits, owner2Hits atomic.Int64
	owner2 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		owner2Hits.Add(1)
		w.WriteHeader(http.StatusOK)
	}))
	defer owner2.Close()
	owner1 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		owner1Hits.Add(1)
		// This node no longer owns the key: it names the real owner.
		w.Header().Set(cluster.HeaderOwner, owner2.URL)
		w.WriteHeader(http.StatusOK)
	}))
	defer owner1.Close()
	seed := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(cluster.HeaderOwner, owner1.URL)
		w.WriteHeader(http.StatusOK)
	}))
	defer seed.Close()

	c := New(seed.URL, Options{})
	ctx := context.Background()

	// Learn owner1 from the seed, then hit owner1 — whose disagreeing
	// header must move the hint to owner2.
	if _, err := c.Get(ctx, "/v1/jobs/j1"); err != nil {
		t.Fatal(err)
	}
	if got, _ := c.preferred.Load().(string); got != owner1.URL {
		t.Fatalf("preferred = %q, want %q", got, owner1.URL)
	}
	if _, err := c.Get(ctx, "/v1/jobs/j1"); err != nil {
		t.Fatal(err)
	}
	if got, _ := c.preferred.Load().(string); got != owner2.URL {
		t.Fatalf("preferred after disagreeing header = %q, want %q", got, owner2.URL)
	}

	// The next request goes straight to the corrected owner.
	if _, err := c.Get(ctx, "/v1/jobs/j1"); err != nil {
		t.Fatal(err)
	}
	if owner1Hits.Load() != 1 || owner2Hits.Load() != 1 {
		t.Fatalf("owner1=%d owner2=%d hits, want 1/1", owner1Hits.Load(), owner2Hits.Load())
	}
}

// TestOwnerHintClearedOnRingChange: a changed membership fingerprint
// in the X-Mama-Gossip response header invalidates the sticky owner
// hint — the ring moved, so ownership may have moved with it.
func TestOwnerHintClearedOnRingChange(t *testing.T) {
	var ring atomic.Uint64
	ring.Store(111)
	var ownerHits atomic.Int64
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ownerHits.Add(1)
		w.Header().Set(cluster.HeaderGossip, gossipHeader(ring.Load()))
		w.WriteHeader(http.StatusOK)
	}))
	defer owner.Close()
	var seedHits atomic.Int64
	seed := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seedHits.Add(1)
		w.Header().Set(cluster.HeaderOwner, owner.URL)
		w.Header().Set(cluster.HeaderGossip, gossipHeader(ring.Load()))
		w.WriteHeader(http.StatusOK)
	}))
	defer seed.Close()

	c := New(seed.URL, Options{})
	ctx := context.Background()

	// Learn the owner and the ring fingerprint; a second call sticks to
	// the owner while the ring is stable.
	if _, err := c.Get(ctx, "/v1/jobs/j1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get(ctx, "/v1/jobs/j1"); err != nil {
		t.Fatal(err)
	}
	if got, _ := c.preferred.Load().(string); got != owner.URL {
		t.Fatalf("preferred = %q, want %q", got, owner.URL)
	}
	if seedHits.Load() != 1 || ownerHits.Load() != 1 {
		t.Fatalf("seed=%d owner=%d hits, want 1/1", seedHits.Load(), ownerHits.Load())
	}

	// Membership changes (a node died or joined): the next response's
	// digest carries a new fingerprint, and the hint must clear.
	ring.Store(222)
	if _, err := c.Get(ctx, "/v1/jobs/j1"); err != nil {
		t.Fatal(err)
	}
	if got, _ := c.preferred.Load().(string); got != "" {
		t.Fatalf("preferred after ring change = %q, want cleared", got)
	}
	// Back on the seed base, which re-teaches ownership under the new
	// ring.
	if _, err := c.Get(ctx, "/v1/jobs/j1"); err != nil {
		t.Fatal(err)
	}
	if seedHits.Load() != 2 {
		t.Fatalf("seed hits = %d, want 2 (fallback after ring change)", seedHits.Load())
	}
	if got, _ := c.preferred.Load().(string); got != owner.URL {
		t.Fatalf("preferred after re-learn = %q, want %q", got, owner.URL)
	}
}

// TestOwnerHintEqualSeedIsNoop: a node advertising itself as owner must
// not be stored as a "preference" — the seed base already points there.
func TestOwnerHintEqualSeedIsNoop(t *testing.T) {
	var ts *httptest.Server
	ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(cluster.HeaderOwner, ts.URL)
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()
	c := New(ts.URL, Options{})
	if _, err := c.Get(context.Background(), "/v1/stats"); err != nil {
		t.Fatal(err)
	}
	if got, _ := c.preferred.Load().(string); got != "" {
		t.Fatalf("preferred = %q; want empty (self-owner hint)", got)
	}
}

// BenchmarkClientConnReuse measures request throughput over the tuned
// keep-alive transport versus a deliberately non-reusing one; the
// per-op delta is the dial+handshake cost the default now avoids.
func BenchmarkClientConnReuse(b *testing.B) {
	ts, _ := countingServer(b, func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	ctx := context.Background()

	b.Run("keepalive", func(b *testing.B) {
		c := New(ts.URL, Options{})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := c.Get(ctx, "/v1/stats"); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("no-keepalive", func(b *testing.B) {
		tr := newTransport()
		tr.DisableKeepAlives = true
		c := New(ts.URL, Options{HTTPClient: &http.Client{Transport: tr}})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := c.Get(ctx, "/v1/stats"); err != nil {
				b.Fatal(err)
			}
		}
	})
}

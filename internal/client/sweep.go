package client

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"micromama/internal/sweep"
)

// SubmitSweep posts a sweep spec. Submission is idempotent on the
// server (sweeps are content-addressed), so the normal retry policy
// applies; resubmitting an already-running sweep attaches to it.
func (c *Client) SubmitSweep(ctx context.Context, spec sweep.Spec) (sweep.View, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return sweep.View{}, err
	}
	resp, err := c.Post(ctx, "/v1/sweeps", body)
	if err != nil {
		return sweep.View{}, err
	}
	if resp.Status != http.StatusOK && resp.Status != http.StatusCreated {
		return sweep.View{}, fmt.Errorf("submit sweep: HTTP %d: %s",
			resp.Status, strings.TrimSpace(string(resp.Body)))
	}
	var v sweep.View
	if err := json.Unmarshal(resp.Body, &v); err != nil {
		return sweep.View{}, fmt.Errorf("submit sweep: decode view: %w", err)
	}
	return v, nil
}

// Sweep fetches one sweep's current view.
func (c *Client) Sweep(ctx context.Context, id string) (sweep.View, error) {
	resp, err := c.Get(ctx, "/v1/sweeps/"+id)
	if err != nil {
		return sweep.View{}, err
	}
	if resp.Status != http.StatusOK {
		return sweep.View{}, fmt.Errorf("get sweep %s: HTTP %d: %s",
			id, resp.Status, strings.TrimSpace(string(resp.Body)))
	}
	var v sweep.View
	if err := json.Unmarshal(resp.Body, &v); err != nil {
		return sweep.View{}, err
	}
	return v, nil
}

// Sweeps lists every sweep the server tracks.
func (c *Client) Sweeps(ctx context.Context) ([]sweep.View, error) {
	resp, err := c.Get(ctx, "/v1/sweeps")
	if err != nil {
		return nil, err
	}
	if resp.Status != http.StatusOK {
		return nil, fmt.Errorf("list sweeps: HTTP %d: %s",
			resp.Status, strings.TrimSpace(string(resp.Body)))
	}
	var body struct {
		Sweeps []sweep.View `json:"sweeps"`
	}
	if err := json.Unmarshal(resp.Body, &body); err != nil {
		return nil, err
	}
	return body.Sweeps, nil
}

// streamLine is one NDJSON line of a result stream: either an event or
// the terminal {"end":true,"sweep":…} marker.
type streamLine struct {
	End   bool        `json:"end"`
	Sweep *sweep.View `json:"sweep"`
	sweep.Event
}

// StreamSweepResults follows a sweep's result stream until the sweep
// completes, calling fn once per distinct cell event. Delivery from the
// server is at-least-once (a restart rebuilds the event log), so the
// client dedupes by cell index; on any disconnect — server restart,
// drain, dropped connection — it reconnects from cursor 0 under the
// usual backoff policy, making the whole call resumable end to end. A
// non-nil error from fn aborts the stream.
func (c *Client) StreamSweepResults(ctx context.Context, id string, fn func(sweep.Event) error) (sweep.View, error) {
	seen := make(map[int]bool)
	attempts := 0
	var lastErr error
	for {
		if err := ctx.Err(); err != nil {
			return sweep.View{}, err
		}
		view, done, progressed, err := c.streamOnce(ctx, id, seen, fn)
		if err != nil {
			if ctx.Err() != nil {
				return sweep.View{}, ctx.Err()
			}
			var abort *streamAbort
			if errors.As(err, &abort) {
				return view, abort.cause
			}
			lastErr = err
		} else if done {
			return view, nil
		}
		// Progress resets the backoff clock: a stream that delivered
		// events before dropping is a healthy server mid-restart, not a
		// persistent failure.
		if progressed {
			attempts = 0
		}
		attempts++
		if attempts > c.maxRetries {
			if lastErr == nil {
				lastErr = fmt.Errorf("stream ended before sweep completion")
			}
			return view, fmt.Errorf("stream sweep %s: giving up after %d attempts: %w",
				id, attempts, lastErr)
		}
		if serr := c.sleep(ctx, c.backoff(attempts-1, nil)); serr != nil {
			return sweep.View{}, serr
		}
	}
}

// streamAbort wraps an error returned by the caller's fn: it must stop
// the stream instead of triggering a reconnect.
type streamAbort struct{ cause error }

func (e *streamAbort) Error() string { return e.cause.Error() }
func (e *streamAbort) Unwrap() error { return e.cause }

// streamClient returns an http.Client suitable for long-lived streams:
// the configured transport without the per-request timeout (a follow
// stream legitimately outlives any fixed deadline; cancellation rides
// the request context instead).
func (c *Client) streamClient() *http.Client {
	return &http.Client{Transport: c.hc.Transport}
}

// streamOnce consumes one connection's worth of the result stream.
// Returns the latest view (zero until an end marker arrives), whether
// the sweep is finished, and whether any event arrived.
func (c *Client) streamOnce(ctx context.Context, id string, seen map[int]bool, fn func(sweep.Event) error) (view sweep.View, done, progressed bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v1/sweeps/"+id+"/results", nil)
	if err != nil {
		return sweep.View{}, false, false, err
	}
	resp, err := c.streamClient().Do(req)
	if err != nil {
		return sweep.View{}, false, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return sweep.View{}, false, false, fmt.Errorf("stream sweep %s: HTTP %d", id, resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 8<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var l streamLine
		if jerr := json.Unmarshal([]byte(line), &l); jerr != nil {
			return view, false, progressed, fmt.Errorf("stream sweep %s: bad line: %w", id, jerr)
		}
		if l.End {
			if l.Sweep != nil {
				view = *l.Sweep
			}
			return view, view.Status == "done", progressed, nil
		}
		progressed = true
		if seen[l.Event.Cell] {
			continue
		}
		seen[l.Event.Cell] = true
		if ferr := fn(l.Event); ferr != nil {
			return view, false, progressed, &streamAbort{cause: ferr}
		}
	}
	if serr := sc.Err(); serr != nil {
		return view, false, progressed, serr
	}
	return view, false, progressed, fmt.Errorf("stream sweep %s: connection closed mid-stream", id)
}

package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// newTestClient wires a client to ts with recorded (not slept) backoff.
func newTestClient(ts *httptest.Server, opts Options) (*Client, *[]time.Duration) {
	c := New(ts.URL, opts)
	var mu sync.Mutex
	slept := &[]time.Duration{}
	c.sleep = func(ctx context.Context, d time.Duration) error {
		mu.Lock()
		*slept = append(*slept, d)
		mu.Unlock()
		return ctx.Err()
	}
	return c, slept
}

// TestRetriesTransient5xx checks that 500s are retried until success
// and the final response is returned.
func TestRetriesTransient5xx(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, "injected", http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer ts.Close()

	c, slept := newTestClient(ts, Options{})
	resp, err := c.Get(context.Background(), "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.Status)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (2 failures + success)", got)
	}
	if len(*slept) != 2 {
		t.Fatalf("client slept %d times, want 2", len(*slept))
	}
	// Exponential shape: the second backoff window starts at 2x the
	// first one's base (jitter keeps exact values variable, but the
	// floor doubles: d/2 where d = BaseDelay<<n).
	if (*slept)[0] < 100*time.Millisecond || (*slept)[1] < 200*time.Millisecond {
		t.Errorf("backoff floors wrong: %v", *slept)
	}
}

// TestHonorsRetryAfter checks that a server-provided Retry-After
// replaces the exponential schedule.
func TestHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "2")
			http.Error(w, "busy", http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	c, slept := newTestClient(ts, Options{MaxDelay: 10 * time.Second})
	if _, err := c.Post(context.Background(), "/v1/jobs", []byte(`{}`)); err != nil {
		t.Fatal(err)
	}
	if len(*slept) != 1 || (*slept)[0] != 2*time.Second {
		t.Fatalf("slept %v, want exactly the server's 2s Retry-After", *slept)
	}
}

// TestConnectionErrorRetries checks that a dead server is retried and
// the terminal error reports the attempt count.
func TestConnectionErrorRetries(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	ts.Close() // refuse all connections

	c, slept := newTestClient(ts, Options{MaxRetries: 2})
	_, err := c.Get(context.Background(), "/healthz")
	if err == nil {
		t.Fatal("expected an error from a closed server")
	}
	if len(*slept) != 2 {
		t.Fatalf("slept %d times, want 2 (MaxRetries)", len(*slept))
	}
}

// TestNoRetryOn4xx checks that client errors are terminal immediately.
func TestNoRetryOn4xx(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "bad spec", http.StatusBadRequest)
	}))
	defer ts.Close()

	c, slept := newTestClient(ts, Options{})
	resp, err := c.Post(context.Background(), "/v1/jobs", []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != http.StatusBadRequest || calls.Load() != 1 || len(*slept) != 0 {
		t.Fatalf("400 was retried: %d calls, %d sleeps", calls.Load(), len(*slept))
	}
}

// TestExhaustedRetriesReturnLastResponse checks that a persistently
// retryable status comes back as a response, not an error, after the
// budget is spent.
func TestExhaustedRetriesReturnLastResponse(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "draining", http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c, _ := newTestClient(ts, Options{MaxRetries: 1})
	resp, err := c.Get(context.Background(), "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want the final 503", resp.Status)
	}
}

// TestContextCancelStopsRetries checks a cancelled context aborts the
// retry loop with ctx.Err().
func TestContextCancelStopsRetries(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusInternalServerError)
	}))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	c := New(ts.URL, Options{})
	c.sleep = func(ctx context.Context, d time.Duration) error {
		cancel() // cancel mid-backoff
		return ctx.Err()
	}
	if _, err := c.Get(ctx, "/v1/stats"); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestWaitJob checks polling: 202 → sleep → 200 done, and failed jobs
// return ErrJobFailed with the body preserved.
func TestWaitJob(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusAccepted)
			w.Write([]byte(`{"status":"running"}`))
			return
		}
		w.Write([]byte(`{"status":"done","result":{"ws":1.5}}`))
	}))
	defer ts.Close()

	c, slept := newTestClient(ts, Options{})
	resp, err := c.WaitJob(context.Background(), "jabc", 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != http.StatusOK || len(*slept) != 2 {
		t.Fatalf("status %d after %d sleeps", resp.Status, len(*slept))
	}

	fail := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"status":"failed","error":"boom"}`))
	}))
	defer fail.Close()
	cf, _ := newTestClient(fail, Options{})
	resp, err = cf.WaitJob(context.Background(), "jdef", time.Millisecond)
	if !errors.Is(err, ErrJobFailed) {
		t.Fatalf("err = %v, want ErrJobFailed", err)
	}
	if resp == nil || resp.Status != http.StatusOK {
		t.Fatalf("failed wait should still carry the final body: %+v", resp)
	}
}

// TestRetryAfterParsing covers the header's two formats.
func TestRetryAfterParsing(t *testing.T) {
	h := http.Header{}
	if _, ok := retryAfter(h); ok {
		t.Error("absent header parsed")
	}
	h.Set("Retry-After", "3")
	if d, ok := retryAfter(h); !ok || d != 3*time.Second {
		t.Errorf("delta-seconds: %v %v", d, ok)
	}
	h.Set("Retry-After", time.Now().Add(90*time.Second).UTC().Format(http.TimeFormat))
	if d, ok := retryAfter(h); !ok || d < 80*time.Second || d > 91*time.Second {
		t.Errorf("http-date: %v %v", d, ok)
	}
	h.Set("Retry-After", "garbage")
	if _, ok := retryAfter(h); ok {
		t.Error("garbage parsed")
	}
}

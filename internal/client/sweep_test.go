package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"micromama/internal/sweep"
)

// sweepEventLine renders one NDJSON event line.
func sweepEventLine(seq, cell int) string {
	ev := sweep.Event{Seq: seq, Cell: cell, Status: sweep.CellDone,
		Key: fmt.Sprintf("k%d", cell), Result: json.RawMessage(`{"ws":1}`)}
	b, _ := json.Marshal(ev)
	return string(b) + "\n"
}

func sweepEndLine(status string, cells int) string {
	b, _ := json.Marshal(struct {
		End   bool       `json:"end"`
		Sweep sweep.View `json:"sweep"`
	}{true, sweep.View{ID: "s1", Status: status, Cells: cells, Done: cells}})
	return string(b) + "\n"
}

// TestStreamSweepResultsResume is the client half of the resume
// contract: the stream drops mid-way (server restart), the client
// reconnects, the server re-delivers the whole rebuilt log
// (at-least-once), and the caller still observes each cell exactly
// once before getting the final view.
func TestStreamSweepResultsResume(t *testing.T) {
	var conns atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/sweeps/s1/results" {
			http.NotFound(w, r)
			return
		}
		switch conns.Add(1) {
		case 1:
			// Two events, then the connection dies without an end marker.
			fmt.Fprint(w, sweepEventLine(0, 0))
			fmt.Fprint(w, sweepEventLine(1, 1))
		default:
			// Restarted server: rebuilt log re-delivers everything.
			fmt.Fprint(w, sweepEventLine(0, 0))
			fmt.Fprint(w, sweepEventLine(1, 1))
			fmt.Fprint(w, sweepEventLine(2, 2))
			fmt.Fprint(w, sweepEndLine("done", 3))
		}
	}))
	defer ts.Close()

	c, slept := newTestClient(ts, Options{})
	var got []int
	view, err := c.StreamSweepResults(context.Background(), "s1", func(ev sweep.Event) error {
		got = append(got, ev.Cell)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if view.Status != "done" || view.Done != 3 {
		t.Fatalf("final view = %+v, want done with 3 cells", view)
	}
	if conns.Load() != 2 {
		t.Fatalf("client used %d connections, want 2 (drop + resume)", conns.Load())
	}
	// At-least-once delivery from the server, exactly-once to the
	// caller: cells 0 and 1 arrived on both connections but fn saw them
	// once.
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("caller observed cells %v, want [0 1 2] exactly once each", got)
	}
	if len(*slept) == 0 {
		t.Error("reconnect did not go through the backoff sleeper")
	}
}

// TestStreamSweepResultsAbort: an error from the caller's fn stops the
// stream immediately — no reconnect, the error comes back unwrapped.
func TestStreamSweepResultsAbort(t *testing.T) {
	var conns atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		conns.Add(1)
		fmt.Fprint(w, sweepEventLine(0, 0))
		fmt.Fprint(w, sweepEventLine(1, 1))
		fmt.Fprint(w, sweepEndLine("done", 2))
	}))
	defer ts.Close()

	c, _ := newTestClient(ts, Options{})
	boom := errors.New("boom")
	_, err := c.StreamSweepResults(context.Background(), "s1", func(ev sweep.Event) error {
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the caller's abort error", err)
	}
	if conns.Load() != 1 {
		t.Errorf("abort reconnected anyway: %d connections", conns.Load())
	}
}

// TestStreamSweepResultsGivesUp: a sweep that never completes and a
// server that keeps closing the stream exhausts retries with an error
// instead of spinning forever.
func TestStreamSweepResultsGivesUp(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Always ends "running": the client must treat it as a drop.
		fmt.Fprint(w, sweepEndLine("running", 3))
	}))
	defer ts.Close()

	c, _ := newTestClient(ts, Options{MaxRetries: 2})
	_, err := c.StreamSweepResults(context.Background(), "s1", func(sweep.Event) error { return nil })
	if err == nil {
		t.Fatal("stream against a never-finishing sweep returned nil")
	}
}

package trace

import (
	"path/filepath"
	"testing"
)

// Materialized replay must emit exactly the streaming generator's
// sequence, for every generator class, across two full loops.
func TestMaterializedEquivalence(t *testing.T) {
	for _, g := range generators() {
		want := drain(g)
		g.Reset()
		m := Materialize(g, 0)
		if m.Len() != len(want) {
			t.Fatalf("%s: materialized %d records, want %d", g.Name(), m.Len(), len(want))
		}
		r := m.Replay()
		for loop := 0; loop < 2; loop++ {
			got := drain(r)
			if len(got) != len(want) {
				t.Fatalf("%s loop %d: replayed %d records, want %d", g.Name(), loop, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s loop %d: record %d = %+v, want %+v", g.Name(), loop, i, got[i], want[i])
				}
			}
			r.Reset()
		}
	}
}

func TestMaterializeTruncates(t *testing.T) {
	g := NewCompute("k", ComputeConfig{Seed: 5, MemRatio: 0.2, Length: 5000})
	m := Materialize(g, 100)
	if m.Len() != 100 {
		t.Fatalf("Len = %d, want 100", m.Len())
	}
	if got := drain(m.Replay()); len(got) != 100 {
		t.Fatalf("replayed %d records, want 100", len(got))
	}
}

// ReadBatch and NextBlock must walk the same sequence as Next, in any
// interleaving of batch sizes, and report exhaustion as 0/empty.
func TestReplayBatchForms(t *testing.T) {
	g := NewStride("st", StrideConfig{Seed: 2, Strides: []uint64{128, 384}, MemRatio: 0.3, Length: 777})
	want := drain(g)
	m := NewMaterialized("st", want)

	r := m.Replay()
	var got []Instr
	buf := make([]Instr, 64)
	for {
		n := r.ReadBatch(buf)
		if n == 0 {
			break
		}
		got = append(got, buf[:n]...)
	}
	if len(got) != len(want) {
		t.Fatalf("ReadBatch total %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("ReadBatch record %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	r.Reset()
	got = got[:0]
	for {
		blk := r.NextBlock(100)
		if len(blk) == 0 {
			break
		}
		got = append(got, blk...)
	}
	if len(got) != len(want) {
		t.Fatalf("NextBlock total %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("NextBlock record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// A materialized trace must survive a save/load round trip through the
// MMT1 file format bit-identically.
func TestMaterializedFileRoundTrip(t *testing.T) {
	g := NewGraph("g", GraphConfig{Seed: 4, MemRatio: 0.3, GatherMemRatio: 0.1, ScanPhase: 500, GatherPhase: 500, Length: 3000})
	m := Materialize(g, 0)

	path := filepath.Join(t.TempDir(), "g.mmt")
	if err := SaveMaterialized(path, m); err != nil {
		t.Fatalf("SaveMaterialized: %v", err)
	}
	got, err := LoadMaterialized(path)
	if err != nil {
		t.Fatalf("LoadMaterialized: %v", err)
	}
	if got.Name() != m.Name() {
		t.Fatalf("name = %q, want %q", got.Name(), m.Name())
	}
	if got.Len() != m.Len() {
		t.Fatalf("len = %d, want %d", got.Len(), m.Len())
	}
	for i := 0; i < m.Len(); i++ {
		if got.At(i) != m.At(i) {
			t.Fatalf("record %d = %+v, want %+v", i, got.At(i), m.At(i))
		}
	}
}

// FileTrace.ReadBatch must decode the same records Next does.
func TestFileTraceReadBatch(t *testing.T) {
	g := NewChase("c", ChaseConfig{Seed: 3, MemRatio: 0.3, LocalRatio: 0.5, Length: 1000})
	want := drain(g)
	g.Reset()

	path := filepath.Join(t.TempDir(), "c.mmt")
	if _, err := WriteFile(path, g, 0); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	ft, err := OpenFile(path)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	defer ft.Close()

	var got []Instr
	buf := make([]Instr, 33)
	for {
		n := ft.ReadBatch(buf)
		if n == 0 {
			break
		}
		got = append(got, buf[:n]...)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

package trace

// Materialized trace replay: a trace decoded once into a flat, immutable
// []Instr slab that any number of readers can replay concurrently. The
// slab replaces per-instruction generator work (PRNG draws, modulo
// arithmetic, interface dispatch) with an array read, which is what
// makes replay the fast path of the simulator — see the "Trace
// materialization & replay" section of docs/ARCHITECTURE.md.

// BatchReader is a Reader that can fill a caller-owned buffer in bulk,
// amortizing per-instruction dispatch across a whole batch.
type BatchReader interface {
	Reader
	// ReadBatch fills dst with up to len(dst) instructions and returns
	// how many were written. 0 means the trace is exhausted; calling
	// ReadBatch again after that is undefined until Reset.
	ReadBatch(dst []Instr) int
}

// BlockReader is a Reader that can expose direct read-only views into
// its backing buffer: zero-copy batch decode. Callers must not mutate
// or retain the returned slice past the next NextBlock/Reset call.
type BlockReader interface {
	Reader
	// NextBlock returns a view of up to max upcoming instructions,
	// advancing the cursor past them. An empty slice means the trace is
	// exhausted until Reset.
	NextBlock(max int) []Instr
}

// Materialized is an immutable in-memory trace: the complete record
// sequence of some Reader, decoded once. It is safe for concurrent use;
// replay cursors (Replay) carry all mutable state.
type Materialized struct {
	name   string
	instrs []Instr
}

// Materialize drains r into a Materialized slab. If max > 0 the slab is
// truncated to the first max records (the result then replays as a
// finite trace that loops at max, like a trace file written with the
// same cap). The reader is consumed; Reset it before reuse.
func Materialize(r Reader, max uint64) *Materialized {
	var instrs []Instr
	if max > 0 {
		instrs = make([]Instr, 0, max)
	}
	for max == 0 || uint64(len(instrs)) < max {
		ins, ok := r.Next()
		if !ok {
			break
		}
		instrs = append(instrs, ins)
	}
	return &Materialized{name: r.Name(), instrs: instrs}
}

// NewMaterialized wraps an already-decoded record slab, taking
// ownership of instrs (callers must not mutate it afterwards).
func NewMaterialized(name string, instrs []Instr) *Materialized {
	return &Materialized{name: name, instrs: instrs}
}

// Name identifies the trace.
func (m *Materialized) Name() string { return m.name }

// Len returns the number of records.
func (m *Materialized) Len() int { return len(m.instrs) }

// At returns record i.
func (m *Materialized) At(i int) Instr { return m.instrs[i] }

// Footprint returns the slab's approximate memory footprint in bytes.
func (m *Materialized) Footprint() int64 { return int64(len(m.instrs)) * instrFootprint }

// Replay returns a fresh cursor over the slab. Replays are independent:
// any number may read the same Materialized concurrently.
func (m *Materialized) Replay() *Replay { return &Replay{m: m} }

// Replay is a cursor over a Materialized slab. It implements Reader,
// BatchReader, and BlockReader; all three are allocation-free.
type Replay struct {
	m   *Materialized
	pos int
}

// Name implements Reader.
func (r *Replay) Name() string { return r.m.name }

// Reset implements Reader.
func (r *Replay) Reset() { r.pos = 0 }

// Next implements Reader.
func (r *Replay) Next() (Instr, bool) {
	if r.pos >= len(r.m.instrs) {
		return Instr{}, false
	}
	ins := r.m.instrs[r.pos]
	r.pos++
	return ins, true
}

// ReadBatch implements BatchReader.
func (r *Replay) ReadBatch(dst []Instr) int {
	n := copy(dst, r.m.instrs[r.pos:])
	r.pos += n
	return n
}

// NextBlock implements BlockReader: the returned slice aliases the slab
// directly, so replay costs one bounds check per block.
func (r *Replay) NextBlock(max int) []Instr {
	end := r.pos + max
	if end > len(r.m.instrs) {
		end = len(r.m.instrs)
	}
	blk := r.m.instrs[r.pos:end]
	r.pos = end
	return blk
}

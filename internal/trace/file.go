package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
)

// Binary on-disk trace format ("MMT1"):
//
//	magic   [4]byte  "MMT1"
//	nameLen uint16   little-endian
//	name    []byte
//	count   uint64   number of records
//	records count × {PC uint64, Addr uint64, Kind uint8, Flags uint8}
//
// The format is deliberately simple; cmd/tracegen materializes synthetic
// traces into it and FileTrace plays them back.

var magic = [4]byte{'M', 'M', 'T', '1'}

// errBadMagic reports a file that is not a trace file.
var errBadMagic = errors.New("trace: bad magic (not an MMT1 trace file)")

const recordBytes = 18

// WriteFile materializes up to max records of r into path. If max is 0
// the whole trace is written. It returns the number of records written.
func WriteFile(path string, r Reader, max uint64) (uint64, error) {
	f, err := os.Create(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<20)

	name := r.Name()
	if len(name) > 0xFFFF {
		return 0, fmt.Errorf("trace: name too long (%d bytes)", len(name))
	}
	if _, err := w.Write(magic[:]); err != nil {
		return 0, err
	}
	var nameLen [2]byte
	binary.LittleEndian.PutUint16(nameLen[:], uint16(len(name)))
	if _, err := w.Write(nameLen[:]); err != nil {
		return 0, err
	}
	if _, err := w.WriteString(name); err != nil {
		return 0, err
	}
	// Reserve the count; patched after writing records.
	countPos := int64(4 + 2 + len(name))
	var zero [8]byte
	if _, err := w.Write(zero[:]); err != nil {
		return 0, err
	}

	var n uint64
	var rec [recordBytes]byte
	for max == 0 || n < max {
		ins, ok := r.Next()
		if !ok {
			break
		}
		binary.LittleEndian.PutUint64(rec[0:8], ins.PC)
		binary.LittleEndian.PutUint64(rec[8:16], ins.Addr)
		rec[16] = byte(ins.Kind)
		rec[17] = byte(ins.Flags)
		if _, err := w.Write(rec[:]); err != nil {
			return n, err
		}
		n++
	}
	if err := w.Flush(); err != nil {
		return n, err
	}
	var countBuf [8]byte
	binary.LittleEndian.PutUint64(countBuf[:], n)
	if _, err := f.WriteAt(countBuf[:], countPos); err != nil {
		return n, err
	}
	return n, f.Close()
}

// FileTrace replays an on-disk trace. It keeps the file open; Close it
// when done.
type FileTrace struct {
	f       *os.File
	r       *bufio.Reader
	name    string
	count   uint64
	dataOff int64
	read    uint64
}

// OpenFile opens an MMT1 trace file for replay.
func OpenFile(path string) (*FileTrace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	ft := &FileTrace{f: f, r: bufio.NewReaderSize(f, 1<<20)}
	if err := ft.readHeader(); err != nil {
		f.Close()
		return nil, err
	}
	return ft, nil
}

func (t *FileTrace) readHeader() error {
	var hdr [4]byte
	if _, err := io.ReadFull(t.r, hdr[:]); err != nil {
		return err
	}
	if hdr != magic {
		return errBadMagic
	}
	var nameLen [2]byte
	if _, err := io.ReadFull(t.r, nameLen[:]); err != nil {
		return err
	}
	nl := binary.LittleEndian.Uint16(nameLen[:])
	nameBuf := make([]byte, nl)
	if _, err := io.ReadFull(t.r, nameBuf); err != nil {
		return err
	}
	t.name = string(nameBuf)
	var countBuf [8]byte
	if _, err := io.ReadFull(t.r, countBuf[:]); err != nil {
		return err
	}
	t.count = binary.LittleEndian.Uint64(countBuf[:])
	t.dataOff = int64(4 + 2 + int(nl) + 8)
	t.read = 0
	return nil
}

// Name implements Reader.
func (t *FileTrace) Name() string { return t.name }

// Len returns the number of records in the file.
func (t *FileTrace) Len() uint64 { return t.count }

// Next implements Reader.
func (t *FileTrace) Next() (Instr, bool) {
	if t.read >= t.count {
		return Instr{}, false
	}
	var rec [recordBytes]byte
	if _, err := io.ReadFull(t.r, rec[:]); err != nil {
		return Instr{}, false
	}
	t.read++
	return Instr{
		PC:    binary.LittleEndian.Uint64(rec[0:8]),
		Addr:  binary.LittleEndian.Uint64(rec[8:16]),
		Kind:  Kind(rec[16]),
		Flags: Flags(rec[17]),
	}, true
}

// ReadBatch implements BatchReader: it decodes up to len(dst) records
// in one pass over the buffered file.
func (t *FileTrace) ReadBatch(dst []Instr) int {
	n := 0
	var rec [recordBytes]byte
	for n < len(dst) && t.read < t.count {
		if _, err := io.ReadFull(t.r, rec[:]); err != nil {
			break
		}
		dst[n] = Instr{
			PC:    binary.LittleEndian.Uint64(rec[0:8]),
			Addr:  binary.LittleEndian.Uint64(rec[8:16]),
			Kind:  Kind(rec[16]),
			Flags: Flags(rec[17]),
		}
		t.read++
		n++
	}
	return n
}

// Reset implements Reader by seeking back to the first record.
func (t *FileTrace) Reset() {
	if _, err := t.f.Seek(t.dataOff, io.SeekStart); err != nil {
		return
	}
	t.r.Reset(t.f)
	t.read = 0
}

// Close releases the underlying file.
func (t *FileTrace) Close() error { return t.f.Close() }

// SaveMaterialized writes a materialized trace to path in MMT1 format,
// so it can be reloaded (LoadMaterialized, Pool.PreloadDir) instead of
// regenerated in later processes.
func SaveMaterialized(path string, m *Materialized) error {
	_, err := WriteFile(path, m.Replay(), 0)
	return err
}

// LoadMaterialized decodes a whole MMT1 trace file into a Materialized
// slab.
func LoadMaterialized(path string) (*Materialized, error) {
	ft, err := OpenFile(path)
	if err != nil {
		return nil, err
	}
	defer ft.Close()
	instrs := make([]Instr, ft.Len())
	got := 0
	for got < len(instrs) {
		n := ft.ReadBatch(instrs[got:])
		if n == 0 {
			return nil, fmt.Errorf("trace: %s: truncated after %d of %d records", path, got, len(instrs))
		}
		got += n
	}
	return &Materialized{name: ft.Name(), instrs: instrs}, nil
}

// PreloadDir loads every MMT1 file in dir into the pool, keyed by the
// trace name recorded in the file (the catalog spec name when written
// by cmd/tracegen). Preloaded traces are complete as stored: a reader
// loops at the file's record count, which must match how the trace was
// generated for behavior to be comparable with streaming runs. Files
// that fail to parse are skipped and reported in the returned error
// list; n is the number of traces loaded.
func (s *Pool) PreloadDir(dir string) (n int, errs []error) {
	des, err := os.ReadDir(dir)
	if err != nil {
		return 0, []error{err}
	}
	for _, de := range des {
		if de.IsDir() {
			continue
		}
		path := dir + string(os.PathSeparator) + de.Name()
		m, err := LoadMaterialized(path)
		if err != nil {
			if errors.Is(err, errBadMagic) {
				continue // not a trace file
			}
			errs = append(errs, fmt.Errorf("%s: %w", path, err))
			continue
		}
		s.Preload(m.Name(), m)
		n++
	}
	return n, errs
}

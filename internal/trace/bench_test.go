package trace

import "testing"

// benchCfg matches the catalog's chase-heavy traces (the simulator
// benchmark's workload class) at a finite length.
func benchStreamGen() Reader {
	return NewChase("bench.chase", ChaseConfig{Seed: 42, MemRatio: 0.3, LocalRatio: 0.5, Length: 1 << 16})
}

// BenchmarkTraceNext measures streaming generation: one PRNG-driven
// Next() per instruction, looping via Reset.
func BenchmarkTraceNext(b *testing.B) {
	g := benchStreamGen()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ins, ok := g.Next()
		if !ok {
			g.Reset()
			ins, _ = g.Next()
		}
		sink += ins.Addr
	}
}

// BenchmarkTraceReplay measures materialized replay through the same
// Reader interface; steady state must be 0 allocs/op.
func BenchmarkTraceReplay(b *testing.B) {
	m := Materialize(benchStreamGen(), 0)
	r := m.Replay()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ins, ok := r.Next()
		if !ok {
			r.Reset()
			ins, _ = r.Next()
		}
		sink += ins.Addr
	}
}

// BenchmarkTraceReplayBlock measures the zero-copy block path the
// simulator core uses; 0 allocs/op.
func BenchmarkTraceReplayBlock(b *testing.B) {
	m := Materialize(benchStreamGen(), 0)
	r := m.Replay()
	b.ReportAllocs()
	b.ResetTimer()
	n := 0
	for n < b.N {
		blk := r.NextBlock(256)
		if len(blk) == 0 {
			r.Reset()
			continue
		}
		for _, ins := range blk {
			sink += ins.Addr
		}
		n += len(blk)
	}
}

var sink uint64

package trace

import "micromama/internal/xrand"

// Synthetic trace generators. Each generator is a deterministic state
// machine over a seeded PRNG; Reset reproduces the identical sequence.
// The classes cover the behaviour axes of the paper's trace set
// (SPEC06/17, Ligra, PARSEC): streaming scans, regular strided array
// walks, dependent pointer chasing, irregular graph processing with
// frontier phases, phase-mixed programs, and compute-bound code.
//
// All generators are "infinite" in spirit but expose a finite Length so
// tests can bound them; the simulator wraps them in Looping anyway.

const (
	lineBytes = 64
	pageBytes = 4096
)

// StreamConfig parameterizes a streaming-scan generator
// (libquantum/fotonik3d-like behaviour: long unit-stride scans over a
// footprint much larger than the LLC, highly next-line/streamer
// friendly).
type StreamConfig struct {
	Seed uint64
	// Footprint is the bytes scanned before wrapping. Should exceed the
	// LLC for the trace to stay memory-bound.
	Footprint uint64
	// Streams is the number of concurrent scan pointers.
	Streams int
	// MemRatio is the fraction of instructions that access memory.
	MemRatio float64
	// StoreRatio is the fraction of memory accesses that are stores.
	StoreRatio float64
	// Length is the number of instructions before the trace ends.
	Length uint64
}

// Stream is a streaming-scan trace generator.
type Stream struct {
	cfg   StreamConfig
	label string
	r     xrand.RNG
	pos   []uint64
	next  int
	count uint64
}

// NewStream constructs a streaming generator.
func NewStream(label string, cfg StreamConfig) *Stream {
	if cfg.Streams <= 0 {
		cfg.Streams = 1
	}
	if cfg.Footprint == 0 {
		cfg.Footprint = 32 << 20
	}
	s := &Stream{cfg: cfg, label: label, r: xrand.New(cfg.Seed)}
	s.Reset()
	return s
}

// Reset implements Reader.
func (s *Stream) Reset() {
	s.r.Reset()
	// Reset is on the looping hot path; reuse the slice.
	if len(s.pos) != s.cfg.Streams {
		s.pos = make([]uint64, s.cfg.Streams)
	}
	for i := range s.pos {
		// Space the streams across the footprint.
		s.pos[i] = uint64(i) * (s.cfg.Footprint / uint64(s.cfg.Streams))
	}
	s.next = 0
	s.count = 0
}

// Name implements Reader.
func (s *Stream) Name() string { return s.label }

// Next implements Reader.
func (s *Stream) Next() (Instr, bool) {
	if s.count >= s.cfg.Length {
		return Instr{}, false
	}
	s.count++
	if s.r.Float64() >= s.cfg.MemRatio {
		return Instr{PC: 0x1000, Kind: Other}, true
	}
	i := s.next
	s.next = (s.next + 1) % s.cfg.Streams
	addr := 0x10000000 + s.pos[i]
	s.pos[i] = (s.pos[i] + 8) % s.cfg.Footprint
	kind := Load
	if s.r.Float64() < s.cfg.StoreRatio {
		kind = Store
	}
	return Instr{PC: 0x2000 + uint64(i)*4, Addr: addr, Kind: kind}, true
}

// StrideConfig parameterizes a multi-stride array-walk generator
// (cactuBSSN/gromacs-like: several PC sites each walking with its own
// constant stride; friendly to stride prefetchers at matching degree).
type StrideConfig struct {
	Seed uint64
	// Strides lists the byte stride of each PC site.
	Strides []uint64
	// Footprint bounds each site's walk before wrapping.
	Footprint uint64
	MemRatio  float64
	// NoiseRatio is the fraction of memory accesses redirected to a
	// random address (breaking perfect stride patterns).
	NoiseRatio float64
	StoreRatio float64
	Length     uint64
}

// Stride is a multi-stride trace generator.
type Stride struct {
	cfg   StrideConfig
	label string
	r     xrand.RNG
	pos   []uint64
	next  int
	count uint64
}

// NewStride constructs a strided generator.
func NewStride(label string, cfg StrideConfig) *Stride {
	if len(cfg.Strides) == 0 {
		cfg.Strides = []uint64{256}
	}
	if cfg.Footprint == 0 {
		cfg.Footprint = 64 << 20
	}
	s := &Stride{cfg: cfg, label: label, r: xrand.New(cfg.Seed)}
	s.Reset()
	return s
}

// Reset implements Reader.
func (s *Stride) Reset() {
	s.r.Reset()
	// Reset is on the looping hot path; reuse the slice.
	if len(s.pos) != len(s.cfg.Strides) {
		s.pos = make([]uint64, len(s.cfg.Strides))
	}
	for i := range s.pos {
		s.pos[i] = uint64(i) * (s.cfg.Footprint / uint64(len(s.cfg.Strides)))
	}
	s.next = 0
	s.count = 0
}

// Name implements Reader.
func (s *Stride) Name() string { return s.label }

// Next implements Reader.
func (s *Stride) Next() (Instr, bool) {
	if s.count >= s.cfg.Length {
		return Instr{}, false
	}
	s.count++
	if s.r.Float64() >= s.cfg.MemRatio {
		return Instr{PC: 0x1000, Kind: Other}, true
	}
	i := s.next
	s.next = (s.next + 1) % len(s.cfg.Strides)
	var addr uint64
	if s.cfg.NoiseRatio > 0 && s.r.Float64() < s.cfg.NoiseRatio {
		addr = 0x40000000 + s.r.Uint64()%s.cfg.Footprint
	} else {
		addr = 0x40000000 + s.pos[i]
		s.pos[i] = (s.pos[i] + s.cfg.Strides[i]) % s.cfg.Footprint
	}
	kind := Load
	if s.r.Float64() < s.cfg.StoreRatio {
		kind = Store
	}
	return Instr{PC: 0x3000 + uint64(i)*4, Addr: addr, Kind: kind}, true
}

// ChaseConfig parameterizes a pointer-chasing generator (mcf-like:
// dependent loads to effectively random lines across a huge footprint;
// hostile to every prefetcher and insensitive to MLP).
type ChaseConfig struct {
	Seed      uint64
	Footprint uint64
	// MemRatio is the fraction of instructions that are chase loads.
	MemRatio float64
	// LocalRatio is the fraction of chase loads that stay within the
	// current page (modeling node-field accesses that hit).
	LocalRatio float64
	Length     uint64
}

// Chase is a pointer-chasing trace generator.
type Chase struct {
	cfg   ChaseConfig
	label string
	r     xrand.RNG
	cur   uint64
	count uint64
}

// NewChase constructs a pointer-chasing generator.
func NewChase(label string, cfg ChaseConfig) *Chase {
	if cfg.Footprint == 0 {
		cfg.Footprint = 128 << 20
	}
	c := &Chase{cfg: cfg, label: label, r: xrand.New(cfg.Seed)}
	c.Reset()
	return c
}

// Reset implements Reader.
func (c *Chase) Reset() {
	c.r.Reset()
	c.cur = 0
	c.count = 0
}

// Name implements Reader.
func (c *Chase) Name() string { return c.label }

// Next implements Reader.
func (c *Chase) Next() (Instr, bool) {
	if c.count >= c.cfg.Length {
		return Instr{}, false
	}
	c.count++
	if c.r.Float64() >= c.cfg.MemRatio {
		return Instr{PC: 0x1000, Kind: Other}, true
	}
	if c.r.Float64() < c.cfg.LocalRatio {
		// Field access near the current node: same page, likely a hit.
		off := uint64(c.r.Intn(pageBytes))
		addr := 0x80000000 + (c.cur/pageBytes)*pageBytes + off
		return Instr{PC: 0x4004, Addr: addr, Kind: Load}, true
	}
	// Follow the "pointer": jump to a pseudo-random line. The next
	// address depends on this load, so mark the dependency.
	c.cur = (c.r.Uint64() % c.cfg.Footprint) &^ (lineBytes - 1)
	return Instr{PC: 0x4000, Addr: 0x80000000 + c.cur, Kind: Load, Flags: DependsPrev}, true
}

// GraphConfig parameterizes a Ligra-like graph-processing generator:
// alternating phases of frontier scans (streaming, prefetch friendly)
// and neighbor gathers (irregular, bursty). The phase structure yields
// the high L2-MPKI variance the paper associates with µMama-friendly
// workloads (§6.3).
type GraphConfig struct {
	Seed uint64
	// Vertices determines the irregular footprint (16 bytes/vertex of
	// property data).
	Vertices uint64
	// EdgeFootprint is the bytes of edge arrays scanned per phase.
	EdgeFootprint uint64
	// ScanPhase / GatherPhase are instruction counts per phase.
	ScanPhase   uint64
	GatherPhase uint64
	// MemRatio applies to scan phases; GatherMemRatio (defaulting to
	// MemRatio) applies to gather phases, whose random accesses are far
	// more expensive per access.
	MemRatio       float64
	GatherMemRatio float64
	Length         uint64
}

// Graph is a Ligra-like trace generator.
type Graph struct {
	cfg      GraphConfig
	label    string
	r        xrand.RNG
	inGather bool
	phasePos uint64
	scanPos  uint64
	count    uint64
}

// NewGraph constructs a graph-processing generator.
func NewGraph(label string, cfg GraphConfig) *Graph {
	if cfg.Vertices == 0 {
		cfg.Vertices = 4 << 20
	}
	if cfg.EdgeFootprint == 0 {
		cfg.EdgeFootprint = 64 << 20
	}
	if cfg.ScanPhase == 0 {
		cfg.ScanPhase = 200_000
	}
	if cfg.GatherPhase == 0 {
		cfg.GatherPhase = 200_000
	}
	if cfg.GatherMemRatio == 0 {
		cfg.GatherMemRatio = cfg.MemRatio
	}
	g := &Graph{cfg: cfg, label: label, r: xrand.New(cfg.Seed)}
	g.Reset()
	return g
}

// Reset implements Reader.
func (g *Graph) Reset() {
	g.r.Reset()
	g.inGather = false
	g.phasePos = 0
	g.scanPos = 0
	g.count = 0
}

// Name implements Reader.
func (g *Graph) Name() string { return g.label }

// Next implements Reader.
func (g *Graph) Next() (Instr, bool) {
	if g.count >= g.cfg.Length {
		return Instr{}, false
	}
	g.count++
	g.phasePos++
	if g.inGather {
		if g.phasePos >= g.cfg.GatherPhase {
			g.inGather, g.phasePos = false, 0
		}
	} else if g.phasePos >= g.cfg.ScanPhase {
		g.inGather, g.phasePos = true, 0
	}
	ratio := g.cfg.MemRatio
	if g.inGather {
		ratio = g.cfg.GatherMemRatio
	}
	if g.r.Float64() >= ratio {
		return Instr{PC: 0x1000, Kind: Other}, true
	}
	if g.inGather {
		// Neighbor gather: random vertex property access.
		v := g.r.Uint64() % g.cfg.Vertices
		addr := 0xC0000000 + v*16
		return Instr{PC: 0x5004, Addr: addr, Kind: Load}, true
	}
	// Frontier/edge scan: sequential.
	addr := 0xA0000000 + g.scanPos
	g.scanPos = (g.scanPos + 8) % g.cfg.EdgeFootprint
	return Instr{PC: 0x5000, Addr: addr, Kind: Load}, true
}

// ComputeConfig parameterizes a compute-bound generator (low MPKI; all
// memory accesses land in a small, cache-resident working set).
type ComputeConfig struct {
	Seed uint64
	// WorkingSet is the bytes of the resident footprint (should fit L2).
	WorkingSet uint64
	MemRatio   float64
	Length     uint64
}

// Compute is a compute-bound trace generator.
type Compute struct {
	cfg   ComputeConfig
	label string
	r     xrand.RNG
	count uint64
}

// NewCompute constructs a compute-bound generator.
func NewCompute(label string, cfg ComputeConfig) *Compute {
	if cfg.WorkingSet == 0 {
		cfg.WorkingSet = 256 << 10
	}
	c := &Compute{cfg: cfg, label: label, r: xrand.New(cfg.Seed)}
	c.Reset()
	return c
}

// Reset implements Reader.
func (c *Compute) Reset() { c.r.Reset(); c.count = 0 }

// Name implements Reader.
func (c *Compute) Name() string { return c.label }

// Next implements Reader.
func (c *Compute) Next() (Instr, bool) {
	if c.count >= c.cfg.Length {
		return Instr{}, false
	}
	c.count++
	if c.r.Float64() >= c.cfg.MemRatio {
		return Instr{PC: 0x1000, Kind: Other}, true
	}
	addr := 0xE0000000 + c.r.Uint64()%c.cfg.WorkingSet
	return Instr{PC: 0x6000, Addr: addr, Kind: Load}, true
}

// Mixed interleaves phases from several sub-generators (PARSEC-like
// programs with distinct program phases). Each phase runs PhaseLen
// instructions from one sub-generator before rotating.
type Mixed struct {
	label    string
	subs     []Reader
	phaseLen uint64
	length   uint64
	cur      int
	phasePos uint64
	count    uint64
}

// NewMixed constructs a phase-rotating generator over subs. Sub-readers
// should be effectively endless relative to phaseLen (they are looped).
func NewMixed(label string, phaseLen, length uint64, subs ...Reader) *Mixed {
	wrapped := make([]Reader, len(subs))
	for i, s := range subs {
		wrapped[i] = NewLooping(s)
	}
	return &Mixed{label: label, subs: wrapped, phaseLen: phaseLen, length: length}
}

// Reset implements Reader.
func (m *Mixed) Reset() {
	for _, s := range m.subs {
		s.Reset()
	}
	m.cur, m.phasePos, m.count = 0, 0, 0
}

// Name implements Reader.
func (m *Mixed) Name() string { return m.label }

// Next implements Reader.
func (m *Mixed) Next() (Instr, bool) {
	if m.count >= m.length {
		return Instr{}, false
	}
	m.count++
	if m.phasePos >= m.phaseLen {
		m.phasePos = 0
		m.cur = (m.cur + 1) % len(m.subs)
	}
	m.phasePos++
	ins, _ := m.subs[m.cur].Next()
	return ins, true
}

// Package trace defines the instruction trace format consumed by the
// simulator and provides deterministic synthetic trace generators that
// stand in for the SPEC06/SPEC17/Ligra/PARSEC traces used by the paper
// (see DESIGN.md for the substitution rationale).
//
// A trace is a stream of Instr records. Readers are pull-based: Next
// returns records until the trace is exhausted; Reset rewinds to the
// beginning so the simulator can restart traces that end before the
// simulation does, exactly as the paper's methodology prescribes.
package trace

import (
	"fmt"
	"unsafe"
)

// Kind classifies an instruction for the timing model.
type Kind uint8

const (
	// Other is a non-memory instruction.
	Other Kind = iota
	// Load reads memory and can stall the core on a cache miss.
	Load
	// Store writes memory; it consumes cache/DRAM resources but does
	// not stall retirement (modeled as write-buffered).
	Store
)

// String returns a short mnemonic for the kind.
func (k Kind) String() string {
	switch k {
	case Other:
		return "other"
	case Load:
		return "load"
	case Store:
		return "store"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Flags annotate an instruction with timing-relevant properties.
type Flags uint8

const (
	// DependsPrev marks a load whose address depends on the previous
	// load (pointer chasing). The core serializes it behind that load,
	// which is what makes mcf-like workloads insensitive to MLP.
	DependsPrev Flags = 1 << iota
)

// Instr is one record of an instruction trace. For non-memory
// instructions Addr is meaningless and should be zero.
type Instr struct {
	PC    uint64
	Addr  uint64
	Kind  Kind
	Flags Flags
}

// instrFootprint is the in-memory size of one Instr (24 bytes: two
// words plus two bytes padded to a word), used for store budgeting.
const instrFootprint = int64(unsafe.Sizeof(Instr{}))

// Reader is a resettable instruction stream.
type Reader interface {
	// Next returns the next instruction. ok is false when the trace is
	// exhausted; calling Next again after that is undefined until Reset.
	Next() (ins Instr, ok bool)
	// Reset rewinds the stream to its beginning. Synthetic generators
	// reproduce exactly the same sequence after Reset.
	Reset()
	// Name identifies the trace (for reports and workload catalogs).
	Name() string
}

// Slice is an in-memory trace, useful in tests.
type Slice struct {
	Instrs []Instr
	Label  string
	pos    int
}

// NewSlice wraps records in a Reader.
func NewSlice(label string, instrs []Instr) *Slice {
	return &Slice{Instrs: instrs, Label: label}
}

// Next implements Reader.
func (s *Slice) Next() (Instr, bool) {
	if s.pos >= len(s.Instrs) {
		return Instr{}, false
	}
	ins := s.Instrs[s.pos]
	s.pos++
	return ins, true
}

// Reset implements Reader.
func (s *Slice) Reset() { s.pos = 0 }

// Name implements Reader.
func (s *Slice) Name() string { return s.Label }

// ReadBatch implements BatchReader.
func (s *Slice) ReadBatch(dst []Instr) int {
	n := copy(dst, s.Instrs[s.pos:])
	s.pos += n
	return n
}

// NextBlock implements BlockReader.
func (s *Slice) NextBlock(max int) []Instr {
	end := s.pos + max
	if end > len(s.Instrs) {
		end = len(s.Instrs)
	}
	blk := s.Instrs[s.pos:end]
	s.pos = end
	return blk
}

// Looping wraps a Reader so it never ends: when the inner trace is
// exhausted it is Reset and restarted, matching the paper's methodology
// ("if any core reaches the end of its trace ... the trace is
// restarted"). Wraps reports how many times the trace has restarted.
type Looping struct {
	inner Reader
	wraps int
}

// NewLooping wraps r into an endless stream.
func NewLooping(r Reader) *Looping { return &Looping{inner: r} }

// Next implements Reader; it never returns ok == false unless the inner
// trace is empty.
func (l *Looping) Next() (Instr, bool) {
	ins, ok := l.inner.Next()
	if ok {
		return ins, true
	}
	l.inner.Reset()
	l.wraps++
	return l.inner.Next()
}

// Reset implements Reader.
func (l *Looping) Reset() {
	l.inner.Reset()
	l.wraps = 0
}

// Name implements Reader.
func (l *Looping) Name() string { return l.inner.Name() }

// Wraps returns how many times the inner trace restarted.
func (l *Looping) Wraps() int { return l.wraps }

package trace

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
)

func poolGen() Reader {
	return NewStream("s", StreamConfig{Seed: 1, MemRatio: 0.3, StoreRatio: 0.2, Length: 5000})
}

// A pool-shared reader must replay exactly the streaming sequence, and
// wrap after Reset just like the generator itself.
func TestPoolSharedEquivalence(t *testing.T) {
	for _, g := range generators() {
		want := drain(g)
		g.Reset()

		pool := NewPool(1<<30, 0)
		factory := func() Reader { g.Reset(); return g }
		r := pool.Shared(g.Name(), factory)
		for loop := 0; loop < 2; loop++ {
			got := drain(r)
			if len(got) != len(want) {
				t.Fatalf("%s loop %d: %d records, want %d", g.Name(), loop, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%s loop %d: record %d = %+v, want %+v", g.Name(), loop, i, got[i], want[i])
				}
			}
			r.Reset()
		}
	}
}

// Two readers of the same key share one materialization; each keeps an
// independent cursor.
func TestPoolSharedIndependentCursors(t *testing.T) {
	pool := NewPool(1<<30, 0)
	a := pool.Shared("s", poolGen)
	b := pool.Shared("s", poolGen)
	ia, _ := a.Next()
	for i := 0; i < 9; i++ {
		a.Next()
	}
	ib, ok := b.Next()
	if !ok || ib != ia {
		t.Fatalf("second reader starts at %+v, want first record %+v", ib, ia)
	}
	if st := pool.Stats(); st.Entries != 1 {
		t.Fatalf("entries = %d, want 1", st.Entries)
	}
}

// With no budget the pool must transparently hand out plain streaming
// generators (and count the fallbacks).
func TestPoolBudgetFallback(t *testing.T) {
	pool := NewPool(0, 0)
	r := pool.Shared("s", poolGen)
	if _, shared := r.(*sharedReplay); shared {
		t.Fatalf("expected a streaming fallback reader, got %T", r)
	}
	if got := len(drain(r)); got != 5000 {
		t.Fatalf("fallback drained %d records, want 5000", got)
	}
	if st := pool.Stats(); st.Fallbacks != 1 || st.Entries != 0 {
		t.Fatalf("stats = %+v, want 1 fallback, 0 entries", st)
	}
}

// A per-trace cap must degrade to tail streaming without perturbing the
// sequence, for the frontier reader (which inherits the shared
// generator) and for a later reader (which rebuilds and skips).
func TestPoolPerTraceCapDegrade(t *testing.T) {
	g := poolGen()
	want := drain(g)

	// Cap the slab below the trace length: 1000 instructions worth.
	pool := NewPool(1<<30, 1000*instrFootprint)
	a := pool.Shared("s", poolGen)
	got := drain(a)
	if len(got) != len(want) {
		t.Fatalf("capped reader drained %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("capped reader record %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	// A second reader crosses the frontier after the shared generator
	// was handed to the first: it must rebuild its own and skip.
	b := pool.Shared("s", poolGen)
	got = drain(b)
	if len(got) != len(want) {
		t.Fatalf("second capped reader drained %d records, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("second capped reader record %d = %+v, want %+v", i, got[i], want[i])
		}
	}

	// Looping a capped reader must also replay identically.
	a.Reset()
	got = drain(a)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("capped reader after Reset: record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

// Concurrent readers of one entry must all see the exact sequence
// (exercised under -race: snapshot publication vs chunked extension).
func TestPoolConcurrentReaders(t *testing.T) {
	g := poolGen()
	want := drain(g)

	pool := NewPool(1<<30, 0)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for w := 0; w < 8; w++ {
		r := pool.Shared("s", poolGen)
		wg.Add(1)
		go func(w int, r Reader) {
			defer wg.Done()
			for i := 0; ; i++ {
				ins, ok := r.Next()
				if !ok {
					if i != len(want) {
						errs <- fmt.Errorf("worker %d: trace ended at %d, want %d", w, i, len(want))
					}
					return
				}
				if ins != want[i] {
					errs <- fmt.Errorf("worker %d: record %d = %+v, want %+v", w, i, ins, want[i])
					return
				}
			}
		}(w, r)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestPoolEmptyTrace(t *testing.T) {
	pool := NewPool(1<<30, 0)
	r := pool.Shared("empty", func() Reader { return NewSlice("empty", nil) })
	if _, ok := r.Next(); ok {
		t.Fatal("empty trace returned a record")
	}
	r.Reset()
	if _, ok := r.Next(); ok {
		t.Fatal("empty trace returned a record after Reset")
	}
}

// PreloadDir must pick up tracegen-style MMT1 files and serve them
// through Shared without invoking the factory.
func TestPoolPreloadDir(t *testing.T) {
	g := poolGen()
	m := Materialize(g, 0)
	dir := t.TempDir()
	if err := SaveMaterialized(filepath.Join(dir, "s.mmt"), m); err != nil {
		t.Fatalf("SaveMaterialized: %v", err)
	}

	pool := NewPool(1<<30, 0)
	n, errs := pool.PreloadDir(dir)
	if len(errs) > 0 {
		t.Fatalf("PreloadDir errors: %v", errs)
	}
	if n != 1 {
		t.Fatalf("preloaded %d traces, want 1", n)
	}
	r := pool.Shared("s", func() Reader {
		t.Fatal("factory invoked for a preloaded trace")
		return nil
	})
	got := drain(r)
	if len(got) != m.Len() {
		t.Fatalf("preloaded replay %d records, want %d", len(got), m.Len())
	}
	for i := range got {
		if got[i] != m.At(i) {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], m.At(i))
		}
	}
}

package trace

import (
	"os"
	"strconv"
	"sync"
	"sync/atomic"

	"micromama/internal/telemetry"
)

// Pool is a process-wide, content-addressed cache of materialized
// traces. Entries are keyed by generator spec (the workload catalog
// keys by trace name, which fully determines the generated stream) and
// populated lazily: the first reader to need instruction n extends the
// shared slab under a per-entry mutex (singleflight: concurrent readers
// for the same range elect one extender), and every later reader —
// the baseline run, the profile run, each controller run of a sweep —
// replays the same read-only buffer instead of regenerating it.
//
// Replay is bit-identical to streaming generation by construction: the
// slab holds exactly the records the generator emits, and a reader that
// runs past what the budget allows degrades transparently to streaming
// from its own generator instance positioned at the frontier.
//
// Budgeting: TotalBudget bounds the bytes of all slabs combined;
// PerTraceBudget bounds one entry. When a trace would exceed its cap,
// the slab stops growing (readers stream the tail); when the store is
// full, Shared hands out plain streaming generators. Both fallbacks
// preserve the generated sequence exactly.
type Pool struct {
	mu      sync.Mutex
	total   int64
	per     int64
	used    int64
	entries map[string]*sharedTrace

	fallbacks        atomic.Uint64 // Shared calls answered with a streaming reader
	hits             atomic.Uint64 // Shared calls served by an existing entry
	materializations atomic.Uint64 // Shared calls that created a new entry
	tailStreams      atomic.Uint64 // readers that degraded to streaming past a capped slab
}

// PoolStats snapshots a Pool for monitoring and tests.
type PoolStats struct {
	Entries   int
	UsedBytes int64
	// Fallbacks counts Shared calls that returned a plain streaming
	// reader because the store budget was exhausted.
	Fallbacks uint64
	// Hits counts Shared calls served by an already-registered entry;
	// Materializations counts calls that registered a new one.
	Hits             uint64
	Materializations uint64
	// TailStreams counts readers that crossed a capped slab frontier
	// and degraded (bit-identically) to streaming the tail.
	TailStreams uint64
}

// extendChunk is how many instructions one slab extension generates:
// large enough to amortize locking and snapshot publication, small
// enough that a short run does not over-generate.
const extendChunk = 1 << 16

// NewPool builds a store with the given byte budgets. totalBudget <= 0
// disables materialization entirely (every Shared call streams);
// perTraceBudget <= 0 defaults to totalBudget/8.
func NewPool(totalBudget, perTraceBudget int64) *Pool {
	if perTraceBudget <= 0 {
		perTraceBudget = totalBudget / 8
	}
	if perTraceBudget > totalBudget {
		perTraceBudget = totalBudget
	}
	return &Pool{total: totalBudget, per: perTraceBudget, entries: make(map[string]*sharedTrace)}
}

// DefaultTraceBudgetMB is the default total store budget in MiB,
// overridable with the MAMA_TRACE_BUDGET_MB environment variable
// (0 disables materialization).
const DefaultTraceBudgetMB = 1024

var (
	defaultPoolOnce sync.Once
	defaultPool     *Pool
)

// DefaultPool returns the process-wide trace store. Its total budget
// is MAMA_TRACE_BUDGET_MB MiB (default 1 GiB; 0 disables
// materialization) with the per-trace cap at 1/8 of the total.
func DefaultPool() *Pool {
	defaultPoolOnce.Do(func() {
		mb := int64(DefaultTraceBudgetMB)
		if env := os.Getenv("MAMA_TRACE_BUDGET_MB"); env != "" {
			if v, err := strconv.ParseInt(env, 10, 64); err == nil && v >= 0 {
				mb = v
			}
		}
		defaultPool = NewPool(mb<<20, 0)
		defaultPool.RegisterMetrics(telemetry.Default())
	})
	return defaultPool
}

// Stats snapshots the store.
func (s *Pool) Stats() PoolStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return PoolStats{
		Entries:          len(s.entries),
		UsedBytes:        s.used,
		Fallbacks:        s.fallbacks.Load(),
		Hits:             s.hits.Load(),
		Materializations: s.materializations.Load(),
		TailStreams:      s.tailStreams.Load(),
	}
}

// RegisterMetrics exports the pool's counters and occupancy to a
// telemetry registry under the mama_trace_pool_* family. Safe to call
// more than once for the same pool (registration is idempotent); the
// default pool registers itself on the default registry.
func (s *Pool) RegisterMetrics(r *telemetry.Registry) {
	r.CounterFunc("mama_trace_pool_hits_total",
		"Shared-trace requests served by an existing materialized entry.",
		s.hits.Load)
	r.CounterFunc("mama_trace_pool_materializations_total",
		"Shared-trace requests that registered a new materialized entry.",
		s.materializations.Load)
	r.CounterFunc("mama_trace_pool_fallbacks_total",
		"Shared-trace requests answered with a plain streaming reader (store budget exhausted).",
		s.fallbacks.Load)
	r.CounterFunc("mama_trace_pool_tail_streams_total",
		"Readers that crossed a capped slab frontier and degraded to streaming the tail.",
		s.tailStreams.Load)
	r.GaugeFunc("mama_trace_pool_entries",
		"Materialized traces resident in the pool.",
		func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(len(s.entries)) })
	r.GaugeFunc("mama_trace_pool_used_bytes",
		"Bytes of materialized trace slabs currently held.",
		func() float64 { s.mu.Lock(); defer s.mu.Unlock(); return float64(s.used) })
	r.GaugeFunc("mama_trace_pool_budget_bytes",
		"Total byte budget for materialized traces (MAMA_TRACE_BUDGET_MB).",
		func() float64 { return float64(s.total) })
	r.GaugeFunc("mama_trace_pool_per_trace_budget_bytes",
		"Per-trace byte cap within the pool budget.",
		func() float64 { return float64(s.per) })
}

// Shared returns a reader replaying the trace identified by key,
// materializing it (lazily, shared across all readers of the key) on
// first use. factory must deterministically construct the generator for
// key — the same key must always yield the same instruction stream.
// When the store budget is exhausted the call transparently degrades to
// factory() itself: a plain streaming reader.
func (s *Pool) Shared(key string, factory func() Reader) Reader {
	s.mu.Lock()
	e, ok := s.entries[key]
	if !ok {
		if s.used >= s.total {
			s.mu.Unlock()
			s.fallbacks.Add(1)
			return factory()
		}
		gen := factory()
		e = &sharedTrace{store: s, name: gen.Name(), factory: factory, gen: gen}
		e.snap.Store(&traceSnap{})
		s.entries[key] = e
		s.materializations.Add(1)
	} else {
		s.hits.Add(1)
	}
	s.mu.Unlock()
	return e.newReader()
}

// Preload registers an already-complete materialized trace under key
// (an on-disk trace cache loaded at startup, for example). The slab is
// final: readers loop at its end exactly like a trace-file replay.
func (s *Pool) Preload(key string, m *Materialized) {
	e := &sharedTrace{store: s, name: m.Name()}
	e.snap.Store(&traceSnap{instrs: m.instrs, done: true})
	s.mu.Lock()
	if old, ok := s.entries[key]; ok {
		old.mu.Lock()
		oldLen := int64(len(old.snap.Load().instrs))
		old.mu.Unlock()
		s.used -= oldLen * instrFootprint
	}
	s.entries[key] = e
	s.used += m.Footprint()
	s.mu.Unlock()
}

// traceSnap is one published state of a shared slab. Snapshots are
// immutable: extension builds a new one and swaps the pointer, so
// readers never lock.
type traceSnap struct {
	instrs []Instr
	// done: the generator ended; instrs is the complete trace.
	done bool
	// capped: the budget stops further growth; readers needing more
	// stream the tail from their own generator.
	capped bool
}

// sharedTrace is one store entry: a growing slab plus the single
// generator instance that extends it.
type sharedTrace struct {
	store   *Pool
	name    string
	factory func() Reader

	mu  sync.Mutex // serializes extension; snap is the read path
	gen Reader     // positioned at the frontier; nil once done or handed to a tail reader

	snap atomic.Pointer[traceSnap]
}

func (e *sharedTrace) newReader() *sharedReplay { return &sharedReplay{sh: e} }

// ensure extends the slab to at least n instructions (or until the
// trace ends or the budget caps it) and returns the latest snapshot.
func (e *sharedTrace) ensure(n int) *traceSnap {
	e.mu.Lock()
	defer e.mu.Unlock()
	snap := e.snap.Load()
	if len(snap.instrs) >= n || snap.done || snap.capped {
		return snap
	}
	instrs := snap.instrs
	done, capped := false, false
	for len(instrs) < n {
		grant := e.store.reserve(int64(len(instrs)))
		if grant <= 0 {
			capped = true
			break
		}
		if grant > extendChunk {
			grant = extendChunk
		}
		got := 0
		for got < grant {
			ins, ok := e.gen.Next()
			if !ok {
				done = true
				break
			}
			instrs = append(instrs, ins)
			got++
		}
		e.store.commit(int64(grant - got))
		if done {
			break
		}
	}
	if done || capped {
		// The generator is either exhausted or parked at the frontier
		// for takeTail; extension is over either way.
		if done {
			e.gen = nil
		}
	}
	next := &traceSnap{instrs: instrs, done: done, capped: capped}
	e.snap.Store(next)
	return next
}

// takeTail hands the entry's generator — positioned exactly at the
// slab frontier — to the first reader that must stream past the cap.
// Later readers rebuild their own generator and skip the prefix.
func (e *sharedTrace) takeTail() Reader {
	e.mu.Lock()
	defer e.mu.Unlock()
	g := e.gen
	e.gen = nil
	return g
}

// tailReader returns a streaming reader positioned at instruction pos
// of the trace (pos is always the slab frontier when called).
func (e *sharedTrace) tailReader(pos int) Reader {
	e.store.tailStreams.Add(1)
	if g := e.takeTail(); g != nil {
		return g
	}
	g := e.factory()
	for i := 0; i < pos; i++ {
		if _, ok := g.Next(); !ok {
			break
		}
	}
	return g
}

// reserve grants up to extendChunk instructions of budget to an entry
// whose slab currently holds have instructions. Returns the granted
// instruction count (0 = capped).
func (s *Pool) reserve(have int64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	grant := int64(extendChunk)
	if perLeft := s.per/instrFootprint - have; perLeft < grant {
		grant = perLeft
	}
	if totalLeft := (s.total - s.used) / instrFootprint; totalLeft < grant {
		grant = totalLeft
	}
	if grant <= 0 {
		return 0
	}
	s.used += grant * instrFootprint
	return int(grant)
}

// commit returns unused reserved budget (the generator ended before
// filling its grant).
func (s *Pool) commit(unusedInstrs int64) {
	if unusedInstrs <= 0 {
		return
	}
	s.mu.Lock()
	s.used -= unusedInstrs * instrFootprint
	s.mu.Unlock()
}

// sharedReplay is a cursor over a sharedTrace. It implements Reader,
// BatchReader, and BlockReader. Replays are independent and safe to use
// from different goroutines (one goroutine per replay).
type sharedReplay struct {
	sh  *sharedTrace
	pos int

	// tail streams instructions past the slab cap; non-nil once this
	// replay crossed the frontier of a capped entry.
	tail    Reader
	tailBuf []Instr

	// cur/curPos serve Next() block-by-block.
	cur    []Instr
	curPos int
}

// Name implements Reader.
func (r *sharedReplay) Name() string { return r.sh.name }

// Reset implements Reader. A discarded tail generator is rebuilt on
// demand if this replay crosses the cap again.
func (r *sharedReplay) Reset() {
	r.pos = 0
	r.tail = nil
	r.cur, r.curPos = nil, 0
}

// Next implements Reader.
func (r *sharedReplay) Next() (Instr, bool) {
	if r.curPos >= len(r.cur) {
		r.cur = r.NextBlock(extendChunk)
		r.curPos = 0
		if len(r.cur) == 0 {
			return Instr{}, false
		}
	}
	ins := r.cur[r.curPos]
	r.curPos++
	return ins, true
}

// ReadBatch implements BatchReader.
func (r *sharedReplay) ReadBatch(dst []Instr) int {
	blk := r.NextBlock(len(dst))
	return copy(dst, blk)
}

// NextBlock implements BlockReader. Within the materialized prefix the
// returned slice aliases the shared slab (zero copy); past a capped
// frontier it is served from this replay's private streaming tail.
func (r *sharedReplay) NextBlock(max int) []Instr {
	if r.tail != nil {
		return r.tailBlock(max)
	}
	snap := r.sh.snap.Load()
	if r.pos+max > len(snap.instrs) && !snap.done && !snap.capped {
		snap = r.sh.ensure(r.pos + max)
	}
	if r.pos >= len(snap.instrs) {
		if snap.done {
			return nil // end of trace; callers Reset to loop
		}
		// Capped: degrade to streaming from the frontier.
		r.tail = r.sh.tailReader(r.pos)
		return r.tailBlock(max)
	}
	end := r.pos + max
	if end > len(snap.instrs) {
		end = len(snap.instrs)
	}
	blk := snap.instrs[r.pos:end]
	r.pos = end
	return blk
}

func (r *sharedReplay) tailBlock(max int) []Instr {
	if cap(r.tailBuf) < max {
		r.tailBuf = make([]Instr, max)
	}
	buf := r.tailBuf[:max]
	n := 0
	for n < max {
		ins, ok := r.tail.Next()
		if !ok {
			break
		}
		buf[n] = ins
		n++
	}
	r.pos += n
	return buf[:n]
}

package trace

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	if Other.String() != "other" || Load.String() != "load" || Store.String() != "store" {
		t.Error("Kind.String mnemonics wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Error("unknown kind formatting wrong")
	}
}

func TestSliceReader(t *testing.T) {
	ins := []Instr{{PC: 1, Kind: Other}, {PC: 2, Addr: 0x40, Kind: Load}}
	s := NewSlice("t", ins)
	if s.Name() != "t" {
		t.Errorf("Name = %q", s.Name())
	}
	var got []Instr
	for {
		i, ok := s.Next()
		if !ok {
			break
		}
		got = append(got, i)
	}
	if len(got) != 2 || got[1].Addr != 0x40 {
		t.Errorf("read %v", got)
	}
	s.Reset()
	if i, ok := s.Next(); !ok || i.PC != 1 {
		t.Error("Reset did not rewind")
	}
}

func TestLoopingWraps(t *testing.T) {
	s := NewSlice("t", []Instr{{PC: 1}, {PC: 2}})
	l := NewLooping(s)
	for i := 0; i < 7; i++ {
		if _, ok := l.Next(); !ok {
			t.Fatal("looping trace ended")
		}
	}
	if l.Wraps() != 3 {
		t.Errorf("Wraps = %d, want 3 (7 reads of a 2-instr trace)", l.Wraps())
	}
	l.Reset()
	if l.Wraps() != 0 {
		t.Error("Reset did not clear wrap count")
	}
}

func TestLoopingEmptyTrace(t *testing.T) {
	l := NewLooping(NewSlice("empty", nil))
	if _, ok := l.Next(); ok {
		t.Error("empty looping trace returned an instruction")
	}
}

// generators lists a representative of each synthetic class.
func generators() []Reader {
	return []Reader{
		NewStream("s", StreamConfig{Seed: 1, MemRatio: 0.3, StoreRatio: 0.2, Length: 5000}),
		NewStride("st", StrideConfig{Seed: 2, Strides: []uint64{128, 384}, MemRatio: 0.3, NoiseRatio: 0.05, Length: 5000}),
		NewChase("c", ChaseConfig{Seed: 3, MemRatio: 0.3, LocalRatio: 0.5, Length: 5000}),
		NewGraph("g", GraphConfig{Seed: 4, MemRatio: 0.3, GatherMemRatio: 0.1, ScanPhase: 500, GatherPhase: 500, Length: 5000}),
		NewCompute("k", ComputeConfig{Seed: 5, MemRatio: 0.2, Length: 5000}),
		NewMixed("m", 700, 5000,
			NewStream("m.a", StreamConfig{Seed: 6, MemRatio: 0.3, Length: 5000}),
			NewCompute("m.b", ComputeConfig{Seed: 7, MemRatio: 0.2, Length: 5000})),
	}
}

func drain(r Reader) []Instr {
	var out []Instr
	for {
		i, ok := r.Next()
		if !ok {
			return out
		}
		out = append(out, i)
	}
}

func TestGeneratorsDeterministicAfterReset(t *testing.T) {
	for _, g := range generators() {
		first := drain(g)
		if len(first) != 5000 {
			t.Errorf("%s: produced %d instructions, want 5000", g.Name(), len(first))
		}
		g.Reset()
		second := drain(g)
		if len(second) != len(first) {
			t.Fatalf("%s: reset replay length %d != %d", g.Name(), len(second), len(first))
		}
		for i := range first {
			if first[i] != second[i] {
				t.Fatalf("%s: reset replay diverged at %d: %+v vs %+v", g.Name(), i, first[i], second[i])
			}
		}
	}
}

func TestGeneratorMemRatios(t *testing.T) {
	for _, g := range generators() {
		mem := 0
		for _, ins := range drain(g) {
			if ins.Kind != Other {
				mem++
				if ins.Addr == 0 && ins.Kind == Load {
					// chase starts at address base+0; allow it
					continue
				}
			}
		}
		if mem == 0 {
			t.Errorf("%s: no memory instructions", g.Name())
		}
		if mem == 5000 {
			t.Errorf("%s: every instruction is memory", g.Name())
		}
	}
}

func TestChaseMarksDependencies(t *testing.T) {
	c := NewChase("c", ChaseConfig{Seed: 1, MemRatio: 0.5, LocalRatio: 0.3, Length: 10000})
	dep, loads := 0, 0
	for _, ins := range drain(c) {
		if ins.Kind == Load {
			loads++
			if ins.Flags&DependsPrev != 0 {
				dep++
			}
		}
	}
	if dep == 0 {
		t.Fatal("chase generator produced no dependent loads")
	}
	if dep >= loads {
		t.Error("every load dependent; local accesses should not be")
	}
}

func TestStreamIsSequential(t *testing.T) {
	s := NewStream("s", StreamConfig{Seed: 9, Streams: 1, MemRatio: 1.0, Length: 1000})
	var last uint64
	var have bool
	for _, ins := range drain(s) {
		if ins.Kind == Store { // stores share the stream pattern
			continue
		}
		if have && ins.Addr != last+8 {
			t.Fatalf("stream jumped from %#x to %#x", last, ins.Addr)
		}
		last, have = ins.Addr, true
	}
}

func TestGraphPhasesAlternate(t *testing.T) {
	g := NewGraph("g", GraphConfig{
		Seed: 2, Vertices: 1 << 16, MemRatio: 1.0, GatherMemRatio: 1.0,
		ScanPhase: 100, GatherPhase: 100, Length: 1000,
	})
	scanPC, gatherPC := 0, 0
	for _, ins := range drain(g) {
		switch ins.PC {
		case 0x5000:
			scanPC++
		case 0x5004:
			gatherPC++
		}
	}
	if scanPC == 0 || gatherPC == 0 {
		t.Errorf("graph phases did not alternate: scan=%d gather=%d", scanPC, gatherPC)
	}
}

func TestMixedRotatesPhases(t *testing.T) {
	a := NewStream("a", StreamConfig{Seed: 1, MemRatio: 1, Length: 1 << 62})
	b := NewCompute("b", ComputeConfig{Seed: 2, MemRatio: 1, Length: 1 << 62})
	m := NewMixed("m", 10, 40, a, b)
	pcs := map[uint64]int{}
	for _, ins := range drain(m) {
		pcs[ins.PC]++
	}
	if pcs[0x2000] == 0 || pcs[0x6000] == 0 {
		t.Errorf("mixed did not draw from both sub-generators: %v", pcs)
	}
}

// Property: every generator, for any seed, yields identical streams from
// two instances with the same config.
func TestQuickGeneratorSeedDeterminism(t *testing.T) {
	f := func(seed uint64) bool {
		a := NewGraph("g", GraphConfig{Seed: seed, MemRatio: 0.4, GatherMemRatio: 0.2, ScanPhase: 50, GatherPhase: 50, Length: 300})
		b := NewGraph("g", GraphConfig{Seed: seed, MemRatio: 0.4, GatherMemRatio: 0.2, ScanPhase: 50, GatherPhase: 50, Length: 300})
		x, y := drain(a), drain(b)
		if len(x) != len(y) {
			return false
		}
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

package trace

import (
	"os"
	"path/filepath"
	"testing"
)

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.mmt")

	src := NewStride("roundtrip", StrideConfig{Seed: 5, Strides: []uint64{64}, MemRatio: 0.5, StoreRatio: 0.2, Length: 1234})
	n, err := WriteFile(path, src, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1234 {
		t.Fatalf("wrote %d records, want 1234", n)
	}

	ft, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ft.Close()
	if ft.Name() != "roundtrip" || ft.Len() != 1234 {
		t.Errorf("header: name=%q len=%d", ft.Name(), ft.Len())
	}

	src.Reset()
	want := drain(src)
	got := drain(ft)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}

	// Reset re-reads from the first record.
	ft.Reset()
	again := drain(ft)
	if len(again) != len(want) || again[0] != want[0] {
		t.Error("FileTrace.Reset did not rewind")
	}
}

func TestWriteFileMax(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.mmt")
	src := NewCompute("capped", ComputeConfig{Seed: 1, MemRatio: 0.3, Length: 100000})
	n, err := WriteFile(path, src, 50)
	if err != nil {
		t.Fatal(err)
	}
	if n != 50 {
		t.Fatalf("wrote %d, want 50", n)
	}
	ft, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer ft.Close()
	if got := len(drain(ft)); got != 50 {
		t.Errorf("read %d, want 50", got)
	}
}

func TestOpenFileBadMagic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad")
	if err := os.WriteFile(path, []byte("this is not a trace file at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFile(path); err == nil {
		t.Error("OpenFile accepted a non-trace file")
	}
}

func TestOpenFileMissing(t *testing.T) {
	if _, err := OpenFile(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Error("OpenFile of missing path succeeded")
	}
}

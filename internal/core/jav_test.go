package core

import (
	"math"
	"testing"
	"testing/quick"

	"micromama/internal/xrand"
)

func ja(arms ...uint8) JointAction { return JointAction(arms) }

func TestJointAction(t *testing.T) {
	a := ja(1, 2, 3)
	b := a.Clone()
	b[0] = 9
	if a[0] == 9 {
		t.Error("Clone aliases the original")
	}
	if !a.Equal(ja(1, 2, 3)) || a.Equal(ja(1, 2)) || a.Equal(ja(1, 2, 4)) {
		t.Error("Equal semantics wrong")
	}
	if a.String() != "[1 2 3]" {
		t.Errorf("String = %q", a.String())
	}
}

func TestJAVInsertAndBest(t *testing.T) {
	j := NewJAV(2, 1.0)
	j.Update(ja(1, 1), 0.5)
	j.Update(ja(2, 2), 0.8)
	if best := j.Best(); !best.Equal(ja(2, 2)) {
		t.Errorf("Best = %v, want [2 2]", best)
	}
	if r := j.BestReward(); math.Abs(r-0.8) > 1e-12 {
		t.Errorf("BestReward = %g", r)
	}
	if j.Len() != 2 || j.Cap() != 2 {
		t.Errorf("Len/Cap = %d/%d", j.Len(), j.Cap())
	}
}

func TestJAVEvictsWorst(t *testing.T) {
	j := NewJAV(2, 1.0)
	j.Update(ja(1, 1), 0.5)
	j.Update(ja(2, 2), 0.8)
	// Better than the worst (0.5): evicts [1 1].
	j.Update(ja(3, 3), 0.6)
	if _, ok := j.Lookup(ja(1, 1)); ok {
		t.Error("worst entry not evicted")
	}
	if _, ok := j.Lookup(ja(3, 3)); !ok {
		t.Error("new entry not inserted")
	}
	if j.Evictions != 1 {
		t.Errorf("Evictions = %d", j.Evictions)
	}
}

func TestJAVRejectsWorseThanAll(t *testing.T) {
	j := NewJAV(2, 1.0)
	j.Update(ja(1, 1), 0.5)
	j.Update(ja(2, 2), 0.8)
	j.Update(ja(3, 3), 0.2) // worse than every resident entry
	if _, ok := j.Lookup(ja(3, 3)); ok {
		t.Error("worse-than-all entry was inserted (paper §4.2.2 forbids)")
	}
	if j.Rejects != 1 {
		t.Errorf("Rejects = %d", j.Rejects)
	}
}

func TestJAVUpdateExistingAverages(t *testing.T) {
	j := NewJAV(2, 1.0)
	j.Update(ja(1, 1), 0.4)
	j.Update(ja(1, 1), 0.8)
	r, ok := j.Lookup(ja(1, 1))
	if !ok || math.Abs(r-0.6) > 1e-12 {
		t.Errorf("mean = %g, want 0.6", r)
	}
}

func TestJAVDiscounting(t *testing.T) {
	// With gamma < 1, a stale high reward decays relative to fresh ones.
	j := NewJAV(2, 0.5)
	j.Update(ja(1, 1), 1.0)
	for i := 0; i < 10; i++ {
		j.Update(ja(2, 2), 0.6)
	}
	// [1 1]'s weight has decayed by 0.5^10; the mean is unchanged but
	// the discounted count is tiny.
	entries := j.Entries()
	for _, e := range entries {
		if e.Action.Equal(ja(1, 1)) && e.Weight > 0.01 {
			t.Errorf("stale entry weight = %g, want decayed", e.Weight)
		}
	}
}

func TestJAVLCBPenalizesSingleSamples(t *testing.T) {
	j := NewJAVLCB(2, 1.0, 0.5)
	// A well-established decent entry vs a single lucky sample.
	for i := 0; i < 50; i++ {
		j.Update(ja(1, 1), 0.7)
	}
	j.Update(ja(2, 2), 0.9) // lucky one-off
	if best := j.Best(); !best.Equal(ja(1, 1)) {
		t.Errorf("LCB Best = %v, want the established [1 1]", best)
	}
	// Plain argmax would have picked the lucky one.
	j2 := NewJAV(2, 1.0)
	for i := 0; i < 50; i++ {
		j2.Update(ja(1, 1), 0.7)
	}
	j2.Update(ja(2, 2), 0.9)
	if best := j2.Best(); !best.Equal(ja(2, 2)) {
		t.Errorf("raw argmax Best = %v, want the lucky [2 2]", best)
	}
}

func TestJAVEmptyBest(t *testing.T) {
	j := NewJAV(2, 1.0)
	if j.Best() != nil || j.BestReward() != 0 {
		t.Error("empty JAV should have nil best")
	}
}

func TestJAVConstructorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewJAV(0, 0.9) },
		func() { NewJAV(2, 0) },
		func() { NewJAV(2, 1.5) },
		func() { NewJAVLCB(2, 0.9, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid JAV construction did not panic")
				}
			}()
			f()
		}()
	}
}

func TestJAVStorageBitsMatchesPaper(t *testing.T) {
	// Paper §4.4.1: 8 cores, 17 arms, 2 entries -> aField 40 bits,
	// total 336 bits = 42 bytes.
	j := NewJAV(2, 0.999)
	if got := j.StorageBits(8, 17); got != 336 {
		t.Errorf("StorageBits(8,17) = %d, want 336", got)
	}
}

// Property: Best always returns a resident action whose LCB score is
// maximal, and Len never exceeds Cap.
func TestQuickJAVInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		j := NewJAVLCB(1+r.Intn(4), 0.99, 0.1)
		for i := 0; i < 200; i++ {
			action := ja(uint8(r.Intn(4)), uint8(r.Intn(4)))
			j.Update(action, r.Float64())
			if j.Len() > j.Cap() {
				return false
			}
			best := j.Best()
			if best == nil {
				return false
			}
			if _, ok := j.Lookup(best); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

package core

import "micromama/internal/prefetch"

// Overheads reports the hardware cost of a µMama deployment (paper
// §4.4): JAV storage, per-timestep communication, and the data rate at
// a given timestep length.
type Overheads struct {
	Cores            int
	JAVEntries       int
	JAVBits          int
	JAVBytes         int
	AFieldBits       int // joint-action tag width
	PerStepBytes     int // per agent per timestep
	CriticalBytes    int // bytes exchanged on the critical path
	TimestepCycles   uint64
	TotalDataRateMBs float64 // aggregate, assuming a 4 GHz clock
}

// ComputeOverheads evaluates the §4.4 model for a system with the given
// core count, JAV capacity, and average timestep length in cycles. The
// paper's 8-core, 2-entry, 150k-cycle configuration yields 42 bytes of
// JAV storage and ~27 bytes/agent/timestep.
func ComputeOverheads(cores, javEntries int, timestepCycles uint64) Overheads {
	armBits := 0
	for v := prefetch.NumArms - 1; v > 0; v >>= 1 {
		armBits++
	}
	aField := cores * armBits
	perEntry := aField + 64 + 64 // aField + double-precision n and r
	bits := javEntries * perEntry

	o := Overheads{
		Cores:          cores,
		JAVEntries:     javEntries,
		JAVBits:        bits,
		JAVBytes:       (bits + 7) / 8,
		AFieldBits:     aField,
		PerStepBytes:   27,
		CriticalBytes:  2,
		TimestepCycles: timestepCycles,
	}
	if timestepCycles > 0 {
		stepsPerSec := 4e9 / float64(timestepCycles)
		o.TotalDataRateMBs = stepsPerSec * float64(o.PerStepBytes) * float64(cores) / 1e6
	}
	return o
}

package core

import (
	"micromama/internal/prefetch"
	"micromama/internal/sim"
	"micromama/internal/xrand"
)

// CoordRLConfig parameterizes the coordinated RL controller (the
// cross-core coordinated prefetching architecture of arXiv 2509.10719,
// reduced to this simulator's action space): one tabular Q-learner per
// core over the 17 ensemble arms, with a *shared* state component — the
// other cores' current aggressiveness and the DRAM bus utilization —
// and a reward that blends the core's own normalized IPC with the
// system mean.
type CoordRLConfig struct {
	// Step is the timestep length in L2 demand accesses.
	Step uint64
	// Epsilon is the exploration rate of the epsilon-greedy policy.
	Epsilon float64
	// LR is the Q-learning step size.
	LR float64
	// Gamma is the discount factor.
	Gamma float64
	// Blend weighs the local reward against the system mean: reward =
	// Blend*local + (1-Blend)*mean. Blend 1 degenerates to independent
	// learners; the coordinated default is 0.5.
	Blend float64
	// Seed drives the per-core exploration RNGs.
	Seed uint64
}

// DefaultCoordRLConfig returns the tournament parameters.
func DefaultCoordRLConfig() CoordRLConfig {
	return CoordRLConfig{Step: 800, Epsilon: 0.08, LR: 0.2, Gamma: 0.9, Blend: 0.5, Seed: 1}
}

func (c *CoordRLConfig) fillDefaults() {
	d := DefaultCoordRLConfig()
	if c.Step == 0 {
		c.Step = d.Step
	}
	if c.Epsilon == 0 {
		c.Epsilon = d.Epsilon
	}
	if c.LR == 0 {
		c.LR = d.LR
	}
	if c.Gamma == 0 {
		c.Gamma = d.Gamma
	}
	if c.Blend == 0 {
		c.Blend = d.Blend
	}
	if c.Seed == 0 {
		c.Seed = d.Seed
	}
}

// coordRL state-space geometry: local miss-rate bucket × bus-utilization
// bucket × others'-aggressiveness bucket.
const (
	coordMissBuckets = 3
	coordBWBuckets   = 3
	coordAggrBuckets = 3
	coordStates      = coordMissBuckets * coordBWBuckets * coordAggrBuckets
)

// coordAgent is one core's learner. Unlike localAgent it is *not*
// self-contained: ledger reads in state() and the counter sweep in
// reward() reach across cores by design.
type coordAgent struct {
	engine *prefetch.Ensemble
	rng    xrand.RNG
	q      [coordStates][prefetch.NumArms]float64

	accesses   uint64
	lastInstr  uint64
	lastCycle  uint64
	lastMisses uint64
	refIPC     float64
	curArm     int
	prevState  int
}

// CoordRL is the coordinated RL controller. Every timestep a core (a)
// observes a state that includes the other cores' current prefetch
// aggressiveness (via a shared ledger) and the live DRAM bus
// utilization, (b) receives a reward blending its own normalized IPC
// with the live system mean, and (c) greedily/exploringly picks the
// next ensemble arm. Both (a) and (b) read and write cross-core state
// mid-epoch, so CoordRL deliberately does NOT satisfy
// sim.CoreLocalController — it exercises the serial fallback path.
type CoordRL struct {
	cfg    CoordRLConfig
	sys    *sim.System
	agents []*coordAgent
	// aggr is the shared aggressiveness ledger: aggr[i] is core i's
	// current arm total degree. Plain (non-atomic) on purpose — the
	// serial path is the only legal execution for this controller.
	aggr []int
}

// NewCoordRL constructs the controller.
func NewCoordRL(cfg CoordRLConfig) *CoordRL {
	cfg.fillDefaults()
	return &CoordRL{cfg: cfg}
}

// Name implements sim.Controller.
func (c *CoordRL) Name() string { return "coord-rl" }

// Attach implements sim.Controller.
func (c *CoordRL) Attach(sys *sim.System) {
	c.sys = sys
	n := sys.Config().Cores
	c.agents = make([]*coordAgent, n)
	c.aggr = make([]int, n)
	for i := range c.agents {
		c.agents[i] = &coordAgent{
			engine: prefetch.NewEnsemble(),
			rng:    xrand.New(c.cfg.Seed + uint64(i)*0x9e3779b97f4a7c15),
		}
	}
}

// Engine implements sim.Controller.
func (c *CoordRL) Engine(core int) prefetch.Prefetcher { return c.agents[core].engine }

// Arm returns core i's current ensemble arm (for tests).
func (c *CoordRL) Arm(core int) int { return c.agents[core].curArm }

// OnL2Demand implements sim.Controller.
func (c *CoordRL) OnL2Demand(core int, now uint64) {
	a := c.agents[core]
	a.accesses++
	if a.accesses < c.cfg.Step {
		return
	}
	a.accesses = 0

	r := c.reward(core, a)
	s := c.state(core, a)

	// Q-learning backup for the transition we just finished.
	best := a.q[s][0]
	for _, v := range a.q[s][1:] {
		if v > best {
			best = v
		}
	}
	q := &a.q[a.prevState][a.curArm]
	*q += c.cfg.LR * (r + c.cfg.Gamma*best - *q)

	// Epsilon-greedy action for the next interval.
	next := 0
	if a.rng.Float64() < c.cfg.Epsilon {
		next = a.rng.Intn(prefetch.NumArms)
	} else {
		bestQ := a.q[s][0]
		for i, v := range a.q[s][1:] {
			if v > bestQ {
				bestQ, next = v, i+1
			}
		}
	}
	if next != a.curArm {
		a.curArm = next
		a.engine.SetArm(next)
	}
	a.prevState = s
	c.aggr[core] = prefetch.Arms[next].TotalDegree()
}

// state discretizes (local miss rate, bus utilization, others'
// aggressiveness) into one of coordStates indices. The ledger read is
// the cross-core coordination channel.
func (c *CoordRL) state(core int, a *coordAgent) int {
	misses := c.sys.L2Stats(core).Misses
	dM := misses - a.lastMisses
	a.lastMisses = misses
	missRate := float64(dM) / float64(c.cfg.Step)
	mb := bucket3(missRate, 0.1, 0.4)

	bb := bucket3(c.sys.RecentBandwidthUtil(), 0.3, 0.7)

	others := 0
	for i, d := range c.aggr {
		if i != core {
			others += d
		}
	}
	// Max total degree per arm is 12 (Table 2's most aggressive arm).
	denom := 12 * (len(c.aggr) - 1)
	frac := 0.0
	if denom > 0 {
		frac = float64(others) / float64(denom)
	}
	ab := bucket3(frac, 0.2, 0.5)

	return (mb*coordBWBuckets+bb)*coordAggrBuckets + ab
}

// reward blends the core's own normalized interval IPC with the live
// mean across all cores — the cooperative term that makes agents back
// off when their aggressiveness hurts neighbors.
func (c *CoordRL) reward(core int, a *coordAgent) float64 {
	var local, sum float64
	n := len(c.agents)
	for j := 0; j < n; j++ {
		aj := c.agents[j]
		instr, cyc := c.sys.Instructions(j), c.sys.Cycles(j)
		if j != core {
			// Peers' snapshots are refreshed only by their own
			// timesteps; read live IPC against their last reference.
			dI, dC := instr-aj.lastInstr, cyc-aj.lastCycle
			if dC > 0 && aj.refIPC > 0 {
				sum += (float64(dI) / float64(dC)) / aj.refIPC
			}
			continue
		}
		dI, dC := instr-a.lastInstr, cyc-a.lastCycle
		a.lastInstr, a.lastCycle = instr, cyc
		if dC == 0 {
			continue
		}
		ipc := float64(dI) / float64(dC)
		if a.refIPC == 0 {
			a.refIPC = ipc
		}
		if a.curArm == 0 && ipc > 0 {
			a.refIPC = (1-refEWMA)*a.refIPC + refEWMA*ipc
		}
		if a.refIPC > 0 {
			local = ipc / a.refIPC
		}
		sum += local
	}
	mean := sum / float64(n)
	return c.cfg.Blend*local + (1-c.cfg.Blend)*mean
}

// bucket3 maps v into {0,1,2} using two thresholds.
func bucket3(v, lo, hi float64) int {
	switch {
	case v < lo:
		return 0
	case v < hi:
		return 1
	default:
		return 2
	}
}

// CoordRL intentionally does not implement sim.CoreLocalController:
// state() reads the shared aggressiveness ledger and reward() reads
// every core's live counters and reference IPCs mid-epoch, so demand
// hooks must be serialized. The simulator detects the missing interface
// and falls back to the serial path.
var _ sim.Controller = (*CoordRL)(nil)

package core

import (
	"sync/atomic"

	"micromama/internal/bandit"
	"micromama/internal/prefetch"
	"micromama/internal/sim"
)

// PolicySample records which arm a core's prefetcher used from a given
// point in time — the data behind the paper's policy-timeline figures
// (2, 4, and 12).
type PolicySample struct {
	Cycle uint64 // core-local cycle when the policy took effect
	Core  int
	Arm   int
	// Joint is true when the arm was dictated from the JAV cache
	// (µMama only; the gray shading in Figure 12).
	Joint bool
}

// TimelineRecorder is implemented by controllers that can log policy
// timelines.
type TimelineRecorder interface {
	Timeline() []PolicySample
}

// BanditConfig parameterizes the uncoordinated Micro-Armed Bandit
// controller (paper Table 1: c = 0.01, γ = 0.9995, step = 800 L2
// demand accesses).
type BanditConfig struct {
	C     float64
	Gamma float64
	Step  uint64
	// RecordTimeline enables policy-timeline sampling.
	RecordTimeline bool
	// SharedReward replaces each agent's local reward with the mean
	// normalized IPC of all cores — the naïve cooperative scheme of
	// §3.2 that runs into the credit-assignment problem.
	SharedReward bool
}

// DefaultBanditConfig returns the paper's Bandit parameters.
func DefaultBanditConfig() BanditConfig {
	return BanditConfig{C: 0.01, Gamma: 0.9995, Step: 800}
}

// refEWMA is the smoothing factor for the per-core no-prefetch
// reference IPC that normalizes interval IPCs into speedup-like
// rewards (the r_i ≈ S^opt_i of Equation 5). The reference is an EWMA
// of the IPC observed when the core's own arm is 0 (prefetching off),
// so r_i measures the speedup the L2 prefetcher provides under the
// prevailing multicore contention. Under µMama the reference is only
// refreshed on non-dictated timesteps: refreshing it while the JAV
// dictates correlated joint actions (e.g. all-off) would couple the
// baseline to that regime's contention level and bias the supervisor
// toward low-contention joint actions.
const refEWMA = 0.2

// localAgent is one per-L2 Micro-Armed Bandit: a DUCB over the 17
// ensemble arms, interval accounting at step-many L2 demand accesses,
// and a running estimate of the core's no-prefetch IPC for reward
// normalization.
type localAgent struct {
	d      *bandit.DUCB
	engine *prefetch.Ensemble

	accesses  uint64
	lastInstr uint64
	lastCycle uint64
	refIPC    float64
	curArm    int

	// Per-core counter snapshots for shared-reward mode.
	lastInstrAll []uint64
	lastCycleAll []uint64
}

func newLocalAgent(c, gamma float64, cores, id int) *localAgent {
	// Stagger each core's initial exploration order so the joint
	// actions produced during cold start are diverse rather than
	// uniform [k,k,...,k] vectors (which would otherwise be the only
	// candidates seeding the JAV cache).
	offset := (id * 7) % prefetch.NumArms
	return &localAgent{
		d:            bandit.New(bandit.Config{Arms: prefetch.NumArms, C: c, Gamma: gamma, InitOffset: offset}),
		engine:       prefetch.NewEnsemble(),
		lastInstrAll: make([]uint64, cores),
		lastCycleAll: make([]uint64, cores),
	}
}

// intervalIPC returns the core's IPC since the agent's last snapshot
// and refreshes the snapshot.
func (a *localAgent) intervalIPC(sys *sim.System, core int) float64 {
	instr, cyc := sys.Instructions(core), sys.Cycles(core)
	dI, dC := instr-a.lastInstr, cyc-a.lastCycle
	a.lastInstr, a.lastCycle = instr, cyc
	if dC == 0 {
		return 0
	}
	return float64(dI) / float64(dC)
}

// normalize converts an interval IPC into a speedup-like reward
// against the agent's no-prefetch reference. allowRefUpdate permits
// refreshing the reference when arm 0 was played this interval.
func (a *localAgent) normalize(ipc float64, allowRefUpdate bool) float64 {
	if a.refIPC == 0 {
		a.refIPC = ipc
	}
	if allowRefUpdate && a.curArm == 0 && ipc > 0 {
		a.refIPC = (1-refEWMA)*a.refIPC + refEWMA*ipc
	}
	if a.refIPC == 0 {
		return 0
	}
	return ipc / a.refIPC
}

// Bandit is the uncoordinated Micro-Armed Bandit controller: one
// independent DUCB agent per L2, each maximizing its own core's
// normalized IPC (or, with SharedReward, the system mean).
type Bandit struct {
	cfg      BanditConfig
	sys      *sim.System
	agents   []*localAgent
	timeline []PolicySample

	// Aggressiveness accounting for the Figure 3 analysis: the summed
	// total degree (Table 2 ordering) of every arm chosen, and the
	// number of choices. Atomic because timesteps of different cores
	// may fire concurrently under the parallel epoch engine; sums
	// commute, so the totals stay deterministic.
	degreeSum   atomic.Uint64
	degreeSteps atomic.Uint64
}

// NewBandit constructs the controller.
func NewBandit(cfg BanditConfig) *Bandit {
	if cfg.Step == 0 {
		cfg.Step = 800
	}
	return &Bandit{cfg: cfg}
}

// Name implements sim.Controller.
func (b *Bandit) Name() string {
	if b.cfg.SharedReward {
		return "bandit-shared"
	}
	return "bandit"
}

// Attach implements sim.Controller.
func (b *Bandit) Attach(sys *sim.System) {
	b.sys = sys
	n := sys.Config().Cores
	b.agents = make([]*localAgent, n)
	for i := range b.agents {
		b.agents[i] = newLocalAgent(b.cfg.C, b.cfg.Gamma, n, i)
	}
}

// Engine implements sim.Controller.
func (b *Bandit) Engine(core int) prefetch.Prefetcher { return b.agents[core].engine }

// Agent exposes core i's DUCB (for tests and introspection).
func (b *Bandit) Agent(core int) *bandit.DUCB { return b.agents[core].d }

// Timeline implements TimelineRecorder.
func (b *Bandit) Timeline() []PolicySample { return b.timeline }

// MeanChosenDegree returns the average total degree (aggressiveness) of
// the arms the agents chose — the policy-level signal behind the
// paper's Figure 3 (Bandit grows more aggressive with core count).
func (b *Bandit) MeanChosenDegree() float64 {
	steps := b.degreeSteps.Load()
	if steps == 0 {
		return 0
	}
	return float64(b.degreeSum.Load()) / float64(steps)
}

// OnL2Demand implements sim.Controller: each agent independently ends
// its timestep after Step demand accesses, updates its DUCB with the
// interval reward, and applies the next arm.
func (b *Bandit) OnL2Demand(core int, now uint64) {
	a := b.agents[core]
	a.accesses++
	if a.accesses < b.cfg.Step {
		return
	}
	a.accesses = 0

	var reward float64
	if b.cfg.SharedReward {
		reward = b.sharedReward(core, a)
	} else {
		reward = a.normalize(a.intervalIPC(b.sys, core), true)
	}
	a.d.Update(a.curArm, reward)
	next := a.d.Select()
	if next != a.curArm {
		a.curArm = next
		a.engine.SetArm(next)
	}
	b.degreeSum.Add(uint64(prefetch.Arms[next].TotalDegree()))
	b.degreeSteps.Add(1)
	if b.cfg.RecordTimeline {
		b.timeline = append(b.timeline, PolicySample{Cycle: now, Core: core, Arm: next})
	}
}

// CoreLocalDemand implements sim.CoreLocalController: with local
// rewards each agent's timestep reads and writes only its own core's
// state (plus the commutative atomic degree totals), so demand hooks
// may fire concurrently. SharedReward reads every core's live counters
// mid-epoch and RecordTimeline appends to one shared slice, so either
// mode declines and the simulator falls back to the serial path.
func (b *Bandit) CoreLocalDemand() bool {
	return !b.cfg.SharedReward && !b.cfg.RecordTimeline
}

// sharedReward computes the mean normalized IPC of all cores over this
// agent's interval window (§3.2). Each core's IPC is normalized by that
// core's own no-prefetch reference, so the sum is a speedup-like
// quantity.
func (b *Bandit) sharedReward(core int, a *localAgent) float64 {
	var sum float64
	n := len(b.agents)
	for j := 0; j < n; j++ {
		instr, cyc := b.sys.Instructions(j), b.sys.Cycles(j)
		dI, dC := instr-a.lastInstrAll[j], cyc-a.lastCycleAll[j]
		a.lastInstrAll[j], a.lastCycleAll[j] = instr, cyc
		if dC == 0 {
			continue
		}
		ipc := float64(dI) / float64(dC)
		if j == core {
			// Keep this agent's own no-prefetch reference fresh.
			sum += a.normalize(ipc, true)
			continue
		}
		ref := b.agents[j].refIPC
		if ref == 0 {
			ref = ipc
		}
		if ref > 0 {
			sum += ipc / ref
		}
	}
	return sum / float64(n)
}

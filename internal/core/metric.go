// Package core implements the paper's contribution: the Micro-Armed
// Bandit prefetch controller (per-L2 DUCB agents over the 17-arm
// ensemble), the naïve shared-reward variant of §3.2, and the µMama
// supervisor (§4) — arbiter, Joint Action-Value cache, runtime Weighted/
// Harmonic speedup estimation, and global-reward assignment to
// low-importance cores.
package core

import (
	"fmt"

	"micromama/internal/metrics"
)

// Metric selects the system-level reward µMama optimizes (§4.2.5,
// §6.4). The throughput term is normalized to the arithmetic-mean
// speedup so blends interpolate between same-scale quantities.
type Metric struct {
	// Alpha blends throughput and fairness: reward =
	// (1-Alpha)·AM + Alpha·HS. Ignored when UseGM is set.
	Alpha float64
	// UseGM selects the geometric-mean reward (µMama-GM).
	UseGM bool
}

// Named metric constructors matching the paper's configurations.
func MetricWS() Metric             { return Metric{Alpha: 0} }
func MetricHS() Metric             { return Metric{Alpha: 1} }
func MetricBlend(a float64) Metric { return Metric{Alpha: a} }
func MetricGM() Metric             { return Metric{UseGM: true} }

// String names the metric as in Figure 14.
func (m Metric) String() string {
	if m.UseGM {
		return "µmama-GM"
	}
	switch m.Alpha {
	case 0:
		return "µmama-WS"
	case 1:
		return "µmama-HS"
	default:
		return fmt.Sprintf("µmama-%d", int(m.Alpha*100+0.5))
	}
}

// Reward computes the system-level reward from estimated per-core
// speedups.
func (m Metric) Reward(shat []float64) float64 {
	if m.UseGM {
		return metrics.GM(shat)
	}
	return metrics.Blend(shat, m.Alpha)
}

// Sensitivity returns the importance of core i's prefetching speedup to
// the metric — the ∂M/∂S^opt_i statistic of §4.2.4/§4.2.5, normalized
// so it is comparable with θ_global across metrics:
//
//   - WS/AM term:  Ŝ^MP_i
//   - HS term:     Ŝ^MP_i · (HS/Ŝ_i)²
//   - GM:          Ŝ^MP_i · GM/Ŝ_i
//
// Cores whose sensitivity falls below θ_global receive the system-level
// reward instead of their local one.
func (m Metric) Sensitivity(i int, smp, shat []float64) float64 {
	if shat[i] <= 0 {
		return 0
	}
	if m.UseGM {
		return smp[i] * metrics.GM(shat) / shat[i]
	}
	ws := smp[i]
	if m.Alpha == 0 {
		return ws
	}
	hsv := metrics.HS(shat)
	hs := smp[i] * (hsv / shat[i]) * (hsv / shat[i])
	return (1-m.Alpha)*ws + m.Alpha*hs
}

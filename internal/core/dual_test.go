package core

import (
	"testing"

	"micromama/internal/sim"
)

func TestDualMuMamaRuns(t *testing.T) {
	cfg := DefaultMuMamaConfig()
	cfg.Step = 100
	m := NewDualMuMama(cfg)
	sys, err := sim.New(sim.DefaultConfig(2), tinyTraces(t, 2), m)
	if err != nil {
		t.Fatal(err)
	}
	res := sys.Run(400_000, 8_000_000)
	if m.GlobalSteps() < 10 {
		t.Fatalf("only %d global steps", m.GlobalSteps())
	}
	for i, cr := range res.Cores {
		if cr.Instructions == 0 {
			t.Errorf("core %d retired nothing", i)
		}
	}
	if m.Name() != "µmama-WS-l1l2" {
		t.Errorf("Name = %q", m.Name())
	}
}

func TestDualMuMamaJointActionsArePairs(t *testing.T) {
	cfg := DefaultMuMamaConfig()
	cfg.Step = 100
	m := NewDualMuMama(cfg)
	sys, err := sim.New(sim.DefaultConfig(2), tinyTraces(t, 2), m)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(300_000, 6_000_000)
	for _, e := range m.JAVCache().Entries() {
		if len(e.Action) != 4 { // 2 L2 arms + 2 L1 arms
			t.Fatalf("joint action arity %d, want 4 ({L1,L2} pairs per core)", len(e.Action))
		}
		for i, a := range e.Action {
			limit := 17
			if i >= 2 { // L1 half
				limit = len(L1Arms)
			}
			if int(a) >= limit {
				t.Fatalf("entry %v: position %d arm %d out of range %d", e.Action, i, a, limit)
			}
		}
	}
}

func TestDualMuMamaControlsL1(t *testing.T) {
	// The L1 engines must actually be the controller's, not the default.
	cfg := DefaultMuMamaConfig()
	cfg.Step = 100
	m := NewDualMuMama(cfg)
	sys, err := sim.New(sim.DefaultConfig(2), tinyTraces(t, 2), m)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(200_000, 4_000_000)
	if m.L1Engine(0).Name() != "ip_stride_ctl" {
		t.Errorf("L1 engine = %q", m.L1Engine(0).Name())
	}
	// L1 arms should have been exercised during initial exploration.
	var played uint64
	for a := 0; a < len(L1Arms); a++ {
		played += m.l1Bandit[0].Plays(a)
	}
	if played == 0 {
		t.Error("L1 agent never played")
	}
}

func TestL1ArmsZeroDisables(t *testing.T) {
	c := newControllableL1()
	c.setArm(0)
	// Train a perfect stride pattern; degree 0 must stay silent.
	for i := 0; i < 10; i++ {
		if got := c.OnAccess(0x40, uint64(0x1000+i*256), false, nil); len(got) != 0 {
			t.Fatalf("L1 arm 0 issued %#x", got)
		}
	}
	c.setArm(3) // degree 4
	if got := c.OnAccess(0x40, 0x1000+10*256, false, nil); len(got) == 0 {
		t.Error("L1 arm 3 (degree 4) issued nothing on a trained stride")
	}
}

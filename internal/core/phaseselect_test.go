package core

import (
	"testing"

	"micromama/internal/prefetch"
	"micromama/internal/sim"
)

func TestPhaseSelectRunsAndClassifies(t *testing.T) {
	cfg := DefaultPhaseSelectConfig()
	cfg.Step = 100
	p := NewPhaseSelect(cfg)
	res := runTiny(t, p, 2, 400_000)
	if res.Controller != "phase-select" {
		t.Fatalf("controller name %q", res.Controller)
	}
	for i, cr := range res.Cores {
		if cr.Instructions == 0 {
			t.Fatalf("core %d retired nothing", i)
		}
		if a := p.ActiveEngine(i); a < 0 || a >= prefetch.NumSelectorEngines {
			t.Fatalf("core %d active engine %d out of range", i, a)
		}
	}
	// libquantum is a dense streaming workload: after a few intervals
	// the classifier must have left the initial "off" engine at least
	// once on core 0.
	if p.Switches(0) == 0 {
		t.Error("core 0 never switched engines on a streaming workload")
	}
}

func TestPhaseSelectIsCoreLocal(t *testing.T) {
	var ctrl sim.Controller = NewPhaseSelect(PhaseSelectConfig{})
	cl, ok := ctrl.(sim.CoreLocalController)
	if !ok || !cl.CoreLocalDemand() {
		t.Fatal("PhaseSelect must be core-local under every configuration")
	}
}

func TestPhaseSelectDecisionTable(t *testing.T) {
	p := NewPhaseSelect(DefaultPhaseSelectConfig())
	cases := []struct {
		name    string
		f       prefetch.SelectorFeatures
		mpki    float64
		current int
		want    int
	}{
		{"idle phase → off",
			prefetch.SelectorFeatures{Accesses: 100}, 0.1, prefetch.SelSPP, prefetch.SelOff},
		{"dense stream → streamer",
			prefetch.SelectorFeatures{Accesses: 100, StrideHits: 80, SmallDelta: 80}, 20, prefetch.SelOff, prefetch.SelStream},
		{"large strides → stride",
			prefetch.SelectorFeatures{Accesses: 100, StrideHits: 80, SmallDelta: 10}, 20, prefetch.SelOff, prefetch.SelStride},
		{"page-local irregular → bingo",
			prefetch.SelectorFeatures{Accesses: 100, SamePage: 70}, 20, prefetch.SelOff, prefetch.SelBingo},
		{"irregular high-miss → pythia",
			prefetch.SelectorFeatures{Accesses: 100, Misses: 60}, 20, prefetch.SelOff, prefetch.SelPythia},
		{"irregular low-miss → spp",
			prefetch.SelectorFeatures{Accesses: 100, Misses: 10}, 20, prefetch.SelOff, prefetch.SelSPP},
		{"inaccurate spp demoted to pythia",
			prefetch.SelectorFeatures{Accesses: 100, Misses: 10, Useful: 1, Useless: 99}, 20, prefetch.SelSPP, prefetch.SelPythia},
		{"inaccurate pythia demoted to spp",
			prefetch.SelectorFeatures{Accesses: 100, Misses: 60, Useful: 1, Useless: 99}, 20, prefetch.SelPythia, prefetch.SelSPP},
	}
	for _, tc := range cases {
		if got := p.classify(tc.f, tc.mpki, tc.current); got != tc.want {
			t.Errorf("%s: classify = %s, want %s", tc.name,
				prefetch.SelectorEngineNames[got], prefetch.SelectorEngineNames[tc.want])
		}
	}
}

func TestPhaseSelectHysteresisDebounces(t *testing.T) {
	cfg := DefaultPhaseSelectConfig()
	cfg.Step = 1 // every demand access is an interval boundary
	cfg.Hysteresis = 3
	p := NewPhaseSelect(cfg)
	sys, err := sim.New(sim.DefaultConfig(1), tinyTraces(t, 1), p)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(50_000, 1_000_000)
	// With single-access intervals the features are nearly
	// uninformative; hysteresis must keep the switch count far below
	// the interval count.
	if sw := p.Switches(0); sw > 2000 {
		t.Errorf("hysteresis failed to debounce: %d switches", sw)
	}
}

package core

import (
	"micromama/internal/prefetch"
	"micromama/internal/sim"
)

// PhaseSelectConfig parameterizes the phase-classifying prefetcher
// selector (Alcorta et al., arXiv 2307.08635 style): per-interval
// features drive a small decision table that switches each core's L2
// among heterogeneous engines rather than tuning one engine's degree.
type PhaseSelectConfig struct {
	// Step is the interval length in L2 demand accesses (the same
	// timestep unit as the Bandit/µMama agents).
	Step uint64
	// Hysteresis is how many consecutive intervals must agree on a new
	// engine before the switch is applied (debounces phase boundaries).
	Hysteresis int
	// Seed feeds each core's Pythia sub-engine RNG.
	Seed uint64

	// Decision-table thresholds; zero values take the defaults below.
	LowMPKI      float64 // below this, prefetching is turned off
	StrideReg    float64 // stride-regularity bound for stream/stride
	PageLocality float64 // page-locality bound for Bingo
	HighMissRate float64 // miss-rate bound for Pythia over SPP
	LowAccuracy  float64 // active-engine accuracy that forces a demotion
}

// DefaultPhaseSelectConfig returns the thresholds used in the tournament
// runs.
func DefaultPhaseSelectConfig() PhaseSelectConfig {
	return PhaseSelectConfig{
		Step:         800,
		Hysteresis:   2,
		LowMPKI:      0.5,
		StrideReg:    0.5,
		PageLocality: 0.6,
		HighMissRate: 0.5,
		LowAccuracy:  0.2,
	}
}

func (c *PhaseSelectConfig) fillDefaults() {
	d := DefaultPhaseSelectConfig()
	if c.Step == 0 {
		c.Step = d.Step
	}
	if c.Hysteresis == 0 {
		c.Hysteresis = d.Hysteresis
	}
	if c.LowMPKI == 0 {
		c.LowMPKI = d.LowMPKI
	}
	if c.StrideReg == 0 {
		c.StrideReg = d.StrideReg
	}
	if c.PageLocality == 0 {
		c.PageLocality = d.PageLocality
	}
	if c.HighMissRate == 0 {
		c.HighMissRate = d.HighMissRate
	}
	if c.LowAccuracy == 0 {
		c.LowAccuracy = d.LowAccuracy
	}
}

// phaseCore is one core's selector state. Everything here is owned by
// the demanding core, which is what makes PhaseSelect core-local.
type phaseCore struct {
	sel       *prefetch.Selector
	accesses  uint64
	lastInstr uint64
	current   int
	pending   int // candidate engine awaiting hysteresis confirmation
	pendingN  int // consecutive intervals that agreed on pending
	switches  uint64
}

// PhaseSelect switches each core's L2 engine among off/stream/stride/
// Bingo/Pythia/SPP by classifying the running interval's phase from
// features the Selector engine already taps (L2 miss rate and MPKI,
// global stride regularity, page locality, active-engine accuracy). It
// holds no cross-core state at all, so it implements
// sim.CoreLocalController and runs on the parallel epoch path.
type PhaseSelect struct {
	cfg   PhaseSelectConfig
	sys   *sim.System
	cores []phaseCore
}

// NewPhaseSelect constructs the controller.
func NewPhaseSelect(cfg PhaseSelectConfig) *PhaseSelect {
	cfg.fillDefaults()
	return &PhaseSelect{cfg: cfg}
}

// Name implements sim.Controller.
func (p *PhaseSelect) Name() string { return "phase-select" }

// Attach implements sim.Controller.
func (p *PhaseSelect) Attach(sys *sim.System) {
	p.sys = sys
	n := sys.Config().Cores
	p.cores = make([]phaseCore, n)
	for i := range p.cores {
		// Stagger seeds per core the same way MakeController seeds
		// Pythia instances.
		p.cores[i] = phaseCore{
			sel:     prefetch.NewSelector(p.cfg.Seed + uint64(i)*0x9e3779b97f4a7c15),
			pending: -1,
		}
	}
}

// Engine implements sim.Controller.
func (p *PhaseSelect) Engine(core int) prefetch.Prefetcher { return p.cores[core].sel }

// ActiveEngine returns the engine index core is currently issuing from
// (for tests and reports).
func (p *PhaseSelect) ActiveEngine(core int) int { return p.cores[core].current }

// Switches returns how many engine switches core has applied.
func (p *PhaseSelect) Switches(core int) uint64 { return p.cores[core].switches }

// OnL2Demand implements sim.Controller: counts the core's interval and,
// at each boundary, classifies the phase and (with hysteresis) switches
// the active engine.
func (p *PhaseSelect) OnL2Demand(core int, now uint64) {
	c := &p.cores[core]
	c.accesses++
	if c.accesses < p.cfg.Step {
		return
	}
	c.accesses = 0

	f := c.sel.TakeFeatures()
	instr := p.sys.Instructions(core)
	dI := instr - c.lastInstr
	c.lastInstr = instr
	mpki := 0.0
	if dI > 0 {
		mpki = float64(f.Misses) / float64(dI) * 1000
	}

	want := p.classify(f, mpki, c.current)
	switch {
	case want == c.current:
		c.pending, c.pendingN = -1, 0
	case want == c.pending:
		c.pendingN++
		if c.pendingN >= p.cfg.Hysteresis {
			c.current = want
			c.sel.SetActive(want)
			c.switches++
			c.pending, c.pendingN = -1, 0
		}
	default:
		c.pending, c.pendingN = want, 1
		if p.cfg.Hysteresis <= 1 {
			c.current = want
			c.sel.SetActive(want)
			c.switches++
			c.pending, c.pendingN = -1, 0
		}
	}
}

// classify is the decision table. Order matters: cheap dominant signals
// first (idle phase, regular strides), then spatial footprints, then
// the learning engines for irregular phases.
func (p *PhaseSelect) classify(f prefetch.SelectorFeatures, mpki float64, current int) int {
	if mpki < p.cfg.LowMPKI {
		// The L2 barely misses; any prefetcher is pure bandwidth noise.
		return prefetch.SelOff
	}
	if f.StrideRegularity() >= p.cfg.StrideReg {
		// Regular deltas: dense (sub-page) streams go to the streamer,
		// large repeating strides to the PC-local stride table.
		if f.StrideHits > 0 && f.SmallDelta*2 >= f.StrideHits {
			return prefetch.SelStream
		}
		return prefetch.SelStride
	}
	if f.PageLocality() >= p.cfg.PageLocality {
		// Irregular within a page: Bingo's footprint regime.
		return prefetch.SelBingo
	}
	var want int
	if f.MissRate() >= p.cfg.HighMissRate {
		want = prefetch.SelPythia
	} else {
		want = prefetch.SelSPP
	}
	// Accuracy veto: if the table re-picks the current engine but its
	// resolved prefetches this interval were mostly useless, demote to
	// the other learning engine rather than keep polluting.
	if want == current && current != prefetch.SelOff {
		if acc := f.Accuracy(); acc >= 0 && acc < p.cfg.LowAccuracy {
			if want == prefetch.SelPythia {
				return prefetch.SelSPP
			}
			return prefetch.SelPythia
		}
	}
	return want
}

// CoreLocalDemand implements sim.CoreLocalController: each core's
// classifier reads only its own Selector's features and its own
// instruction counter, and writes only its own engine — no cross-core
// state exists, under any configuration.
func (p *PhaseSelect) CoreLocalDemand() bool { return true }

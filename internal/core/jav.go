package core

import (
	"fmt"
	"math"
)

// JointAction is the vector of local arm ids, one per core.
type JointAction []uint8

// Clone returns a copy.
func (j JointAction) Clone() JointAction {
	out := make(JointAction, len(j))
	copy(out, j)
	return out
}

// Equal reports element-wise equality.
func (j JointAction) Equal(o JointAction) bool {
	if len(j) != len(o) {
		return false
	}
	for i := range j {
		if j[i] != o[i] {
			return false
		}
	}
	return true
}

// String renders the joint action compactly, e.g. "[3 0 16 10]".
func (j JointAction) String() string {
	s := "["
	for i, a := range j {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%d", a)
	}
	return s + "]"
}

// JAVStore is the interface the µMama controller needs from a JAV
// organization; both the fully associative JAV (the paper's evaluated
// design) and the set-associative SetAssocJAV (§4.2.3's scaled-up
// variant) implement it.
type JAVStore interface {
	// Update records one timestep of action with its system reward.
	Update(action JointAction, reward float64)
	// Best returns the highest-scoring resident action (nil if empty).
	Best() JointAction
	// BestReward returns the best entry's selection score.
	BestReward() float64
	// Len returns the number of resident entries.
	Len() int
}

var (
	_ JAVStore = (*JAV)(nil)
	_ JAVStore = (*SetAssocJAV)(nil)
)

// javEntry is one JAV cache entry: the joint action (aField), its
// discounted play count (nField), and discounted reward sum (whose
// ratio is the rField of the paper's Figure 7).
type javEntry struct {
	action JointAction
	n      float64
	s      float64
	valid  bool
}

func (e *javEntry) mean() float64 {
	if e.n <= 0 {
		return 0
	}
	return e.s / e.n
}

// JAV is the Joint Action-Value cache (§4.2.2): a small fully
// associative structure mapping previously-played joint actions to
// discounted average system rewards. It supports the two operations of
// Figure 7 — select the highest-reward action and evict the lowest —
// plus discounted updates (γ = 0.999 in the paper's Table 1).
//
// Selection uses a lower-confidence bound, mean − lcb/√n, instead of
// the paper's raw argmax: at this repo's scaled-down timestep (fewer
// L2 accesses per interval than the paper's step = 800) single-sample
// reward estimates are noisy enough that a lucky measurement would
// otherwise capture the "best" slot. lcb = 0 recovers the paper's
// behaviour.
type JAV struct {
	entries []javEntry
	gamma   float64
	lcb     float64

	// Best-entry cache (§4.2.3's "maintain a copy of the best").
	bestIdx int

	Inserts   uint64
	Evictions uint64
	Rejects   uint64 // incoming actions worse than every resident entry
}

// NewJAV constructs a JAV cache with the given capacity and discount,
// selecting by raw rField (lcb = 0).
func NewJAV(size int, gamma float64) *JAV {
	return NewJAVLCB(size, gamma, 0)
}

// NewJAVLCB constructs a JAV cache whose selection penalizes
// low-confidence entries by lcb/√nField.
func NewJAVLCB(size int, gamma, lcb float64) *JAV {
	if size < 1 {
		panic(fmt.Sprintf("core: JAV size must be >= 1, got %d", size))
	}
	if gamma <= 0 || gamma > 1 {
		panic(fmt.Sprintf("core: JAV gamma must be in (0,1], got %g", gamma))
	}
	if lcb < 0 {
		panic(fmt.Sprintf("core: JAV lcb must be >= 0, got %g", lcb))
	}
	return &JAV{entries: make([]javEntry, size), gamma: gamma, lcb: lcb, bestIdx: -1}
}

// score is the selection value of an entry: its discounted mean minus
// the confidence penalty.
func (j *JAV) score(e *javEntry) float64 {
	if e.n <= 0 {
		return 0
	}
	return e.mean() - j.lcb/math.Sqrt(e.n)
}

// Len returns the number of resident entries.
func (j *JAV) Len() int {
	n := 0
	for i := range j.entries {
		if j.entries[i].valid {
			n++
		}
	}
	return n
}

// Cap returns the capacity.
func (j *JAV) Cap() int { return len(j.entries) }

// Best returns the joint action with the highest rField, or nil when
// the cache is empty.
func (j *JAV) Best() JointAction {
	if j.bestIdx < 0 || !j.entries[j.bestIdx].valid {
		return nil
	}
	return j.entries[j.bestIdx].action
}

// BestReward returns the rField of the best entry (0 when empty).
func (j *JAV) BestReward() float64 {
	if j.bestIdx < 0 || !j.entries[j.bestIdx].valid {
		return 0
	}
	return j.entries[j.bestIdx].mean()
}

// Lookup returns the rField for action, if resident.
func (j *JAV) Lookup(action JointAction) (reward float64, ok bool) {
	for i := range j.entries {
		if j.entries[i].valid && j.entries[i].action.Equal(action) {
			return j.entries[i].mean(), true
		}
	}
	return 0, false
}

// Update records that action was played for one timestep and received
// the given system reward. All entries decay by gamma (time-varying
// environments); the played action's entry is inserted or refreshed.
// Insertion evicts the worst-performing entry, but only if the incoming
// reward beats it (§4.2.2: "does not evict any entry if the incoming
// action appears less rewarding than every currently-tracked action").
func (j *JAV) Update(action JointAction, reward float64) {
	for i := range j.entries {
		if j.entries[i].valid {
			j.entries[i].n *= j.gamma
			j.entries[i].s *= j.gamma
		}
	}

	idx := -1
	freeIdx, worstIdx := -1, -1
	worst := 0.0
	for i := range j.entries {
		e := &j.entries[i]
		if !e.valid {
			if freeIdx < 0 {
				freeIdx = i
			}
			continue
		}
		if e.action.Equal(action) {
			idx = i
		}
		if worstIdx < 0 || e.mean() < worst {
			worstIdx, worst = i, e.mean()
		}
	}

	switch {
	case idx >= 0:
		j.entries[idx].n++
		j.entries[idx].s += reward
	case freeIdx >= 0:
		j.entries[freeIdx] = javEntry{action: action.Clone(), n: 1, s: reward, valid: true}
		j.Inserts++
	case reward > worst:
		j.entries[worstIdx] = javEntry{action: action.Clone(), n: 1, s: reward, valid: true}
		j.Inserts++
		j.Evictions++
	default:
		j.Rejects++
	}

	j.refreshBest()
}

func (j *JAV) refreshBest() {
	j.bestIdx = -1
	best := 0.0
	for i := range j.entries {
		if !j.entries[i].valid {
			continue
		}
		if m := j.score(&j.entries[i]); j.bestIdx < 0 || m > best {
			j.bestIdx, best = i, m
		}
	}
}

// StorageBits returns the hardware cost of the cache in bits for a
// system with the given core count and local arm count: per entry, an
// aField of cores·ceil(log2(arms)) bits plus double-precision nField
// and rField (paper §4.4.1; 2 entries, 8 cores, 17 arms → 336 bits).
func (j *JAV) StorageBits(cores, arms int) int {
	armBits := 0
	for v := arms - 1; v > 0; v >>= 1 {
		armBits++
	}
	perEntry := cores*armBits + 64 + 64
	return len(j.entries) * perEntry
}

// Entries returns a snapshot of resident entries (action, discounted
// mean reward, discounted weight), for introspection and debugging.
func (j *JAV) Entries() []struct {
	Action JointAction
	Mean   float64
	Weight float64
} {
	var out []struct {
		Action JointAction
		Mean   float64
		Weight float64
	}
	for i := range j.entries {
		if !j.entries[i].valid {
			continue
		}
		out = append(out, struct {
			Action JointAction
			Mean   float64
			Weight float64
		}{j.entries[i].action.Clone(), j.entries[i].mean(), j.entries[i].n})
	}
	return out
}

package core

import (
	"math"
	"testing"

	"micromama/internal/metrics"
)

func TestMetricNames(t *testing.T) {
	cases := map[string]Metric{
		"µmama-WS": MetricWS(),
		"µmama-HS": MetricHS(),
		"µmama-25": MetricBlend(0.25),
		"µmama-50": MetricBlend(0.50),
		"µmama-75": MetricBlend(0.75),
		"µmama-GM": MetricGM(),
	}
	for want, m := range cases {
		if got := m.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func TestMetricRewards(t *testing.T) {
	s := []float64{0.5, 1.5}
	if got := MetricWS().Reward(s); math.Abs(got-metrics.AM(s)) > 1e-12 {
		t.Errorf("WS reward = %g, want AM", got)
	}
	if got := MetricHS().Reward(s); math.Abs(got-metrics.HS(s)) > 1e-12 {
		t.Errorf("HS reward = %g, want HS", got)
	}
	if got := MetricGM().Reward(s); math.Abs(got-metrics.GM(s)) > 1e-12 {
		t.Errorf("GM reward = %g, want GM", got)
	}
}

func TestSensitivityWS(t *testing.T) {
	// For WS, the sensitivity of core i is S^MP_i (§4.2.4).
	smp := []float64{0.9, 0.3}
	shat := []float64{0.9, 0.3}
	m := MetricWS()
	if got := m.Sensitivity(0, smp, shat); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("sens[0] = %g, want 0.9", got)
	}
	if got := m.Sensitivity(1, smp, shat); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("sens[1] = %g, want 0.3", got)
	}
}

func TestSensitivityHSFavorsSlowCores(t *testing.T) {
	// Under HS, a core with a LOW speedup has a HIGH (HS/S_i)^2 factor:
	// improving the slowest core matters most, so it should NOT be
	// handed the global reward as readily.
	smp := []float64{0.8, 0.8}
	shat := []float64{0.4, 1.6}
	m := MetricHS()
	slow := m.Sensitivity(0, smp, shat)
	fast := m.Sensitivity(1, smp, shat)
	if slow <= fast {
		t.Errorf("HS sensitivity: slow=%g fast=%g; slow core should matter more", slow, fast)
	}
}

func TestSensitivityZeroSpeedup(t *testing.T) {
	if got := MetricHS().Sensitivity(0, []float64{1}, []float64{0}); got != 0 {
		t.Errorf("zero-speedup sensitivity = %g", got)
	}
}

package core

import (
	"testing"

	"micromama/internal/prefetch"
	"micromama/internal/sim"
)

func TestCoordRLRunsAndLearns(t *testing.T) {
	cfg := DefaultCoordRLConfig()
	cfg.Step = 100
	c := NewCoordRL(cfg)
	res := runTiny(t, c, 2, 400_000)
	if res.Controller != "coord-rl" {
		t.Fatalf("controller name %q", res.Controller)
	}
	for i, cr := range res.Cores {
		if cr.Instructions == 0 {
			t.Fatalf("core %d retired nothing", i)
		}
		if a := c.Arm(i); a < 0 || a >= prefetch.NumArms {
			t.Fatalf("core %d arm %d out of range", i, a)
		}
	}
	// The shared aggressiveness ledger must have been written: at 100
	// accesses per step over 400k instructions some agent leaves arm 0.
	nonzero := false
	for _, a := range c.agents {
		for s := range a.q {
			for _, v := range a.q[s] {
				if v != 0 {
					nonzero = true
				}
			}
		}
	}
	if !nonzero {
		t.Error("no Q-value ever updated")
	}
}

func TestCoordRLDeclinesParallelPath(t *testing.T) {
	var ctrl sim.Controller = NewCoordRL(CoordRLConfig{})
	if _, ok := ctrl.(sim.CoreLocalController); ok {
		t.Fatal("CoordRL must not advertise core-local demand hooks; its ledger and reward reads are cross-core")
	}
}

func TestCoordRLDeterministicAcrossRuns(t *testing.T) {
	run := func() sim.Result {
		cfg := DefaultCoordRLConfig()
		cfg.Step = 100
		return runTiny(t, NewCoordRL(cfg), 2, 200_000)
	}
	a, b := run(), run()
	for i := range a.Cores {
		if a.Cores[i].Cycles != b.Cores[i].Cycles || a.Cores[i].Instructions != b.Cores[i].Instructions {
			t.Fatalf("core %d diverged across identical runs: %+v vs %+v", i, a.Cores[i], b.Cores[i])
		}
	}
}

func TestBucket3(t *testing.T) {
	if bucket3(0.05, 0.1, 0.4) != 0 || bucket3(0.2, 0.1, 0.4) != 1 || bucket3(0.9, 0.1, 0.4) != 2 {
		t.Fatal("bucket3 thresholds wrong")
	}
}

package core_test

import (
	"fmt"

	"micromama/internal/core"
)

func ExampleJAV() {
	// Track two joint actions; the cache keeps the better one when a
	// third arrives and dictates the best.
	jav := core.NewJAV(2, 1.0)
	jav.Update(core.JointAction{0, 14}, 1.10) // heavy core off, stream aggressive
	jav.Update(core.JointAction{16, 16}, 0.85)
	jav.Update(core.JointAction{2, 2}, 0.90) // beats the worst entry
	fmt.Println("best:", jav.Best())
	fmt.Printf("reward: %.2f\n", jav.BestReward())
	// Output:
	// best: [0 14]
	// reward: 1.10
}

func ExampleComputeOverheads() {
	// The paper's 8-core configuration (§4.4.1).
	o := core.ComputeOverheads(8, 2, 150_000)
	fmt.Printf("JAV: %d bits (%d bytes), aField %d bits\n", o.JAVBits, o.JAVBytes, o.AFieldBits)
	// Output: JAV: 336 bits (42 bytes), aField 40 bits
}

package core

import (
	"testing"

	"micromama/internal/sim"
	"micromama/internal/trace"
	"micromama/internal/workload"
)

// tinyTraces builds n small looping traces with distinct behaviours.
func tinyTraces(t *testing.T, n int) []trace.Reader {
	t.Helper()
	names := []string{"spec06.libquantum", "spec06.gromacs", "ligra.BFS", "spec17.wrf",
		"spec06.mcf", "spec17.fotonik3d", "ligra.PageRank", "spec17.roms"}
	out := make([]trace.Reader, n)
	for i := 0; i < n; i++ {
		sp, err := workload.ByName(names[i%len(names)])
		if err != nil {
			t.Fatal(err)
		}
		out[i] = sp.New()
	}
	return out
}

func runTiny(t *testing.T, ctrl sim.Controller, cores int, target uint64) sim.Result {
	t.Helper()
	sys, err := sim.New(sim.DefaultConfig(cores), tinyTraces(t, cores), ctrl)
	if err != nil {
		t.Fatal(err)
	}
	return sys.Run(target, target*20)
}

func TestBanditControllerLearnsAndActs(t *testing.T) {
	cfg := DefaultBanditConfig()
	cfg.Step = 100
	cfg.RecordTimeline = true
	b := NewBandit(cfg)
	res := runTiny(t, b, 2, 400_000)
	for i, cr := range res.Cores {
		if cr.Instructions == 0 {
			t.Fatalf("core %d retired nothing", i)
		}
	}
	for core := 0; core < 2; core++ {
		if b.Agent(core).Steps() < 20 {
			t.Errorf("core %d agent completed only %d timesteps", core, b.Agent(core).Steps())
		}
	}
	if len(b.Timeline()) == 0 {
		t.Error("timeline recording enabled but empty")
	}
	if b.Name() != "bandit" {
		t.Errorf("Name = %q", b.Name())
	}
}

func TestSharedRewardBanditRuns(t *testing.T) {
	cfg := DefaultBanditConfig()
	cfg.Step = 100
	cfg.SharedReward = true
	b := NewBandit(cfg)
	res := runTiny(t, b, 2, 300_000)
	if res.Controller != "bandit-shared" {
		t.Errorf("controller name %q", res.Controller)
	}
	if b.Agent(0).Steps() == 0 {
		t.Error("shared-reward agents never stepped")
	}
}

func TestMuMamaAdvancesGlobalTimesteps(t *testing.T) {
	cfg := DefaultMuMamaConfig()
	cfg.Step = 100
	cfg.RecordTimeline = true
	m := NewMuMama(cfg)
	runTiny(t, m, 4, 400_000)
	if m.GlobalSteps() < 20 {
		t.Fatalf("only %d global steps", m.GlobalSteps())
	}
	if jf := m.JointFraction(); jf < 0 || jf > 1 {
		t.Errorf("JointFraction = %g", jf)
	}
	if m.JAVCache().Len() == 0 {
		t.Error("JAV never populated")
	}
	if len(m.Timeline()) == 0 {
		t.Error("timeline empty")
	}
	if m.Name() != "µmama-WS" {
		t.Errorf("Name = %q", m.Name())
	}
}

func TestMuMamaJointActionsHaveValidArms(t *testing.T) {
	cfg := DefaultMuMamaConfig()
	cfg.Step = 100
	m := NewMuMama(cfg)
	runTiny(t, m, 2, 300_000)
	for _, e := range m.JAVCache().Entries() {
		if len(e.Action) != 2 {
			t.Fatalf("joint action arity %d, want 2", len(e.Action))
		}
		for _, a := range e.Action {
			if int(a) >= 17 {
				t.Fatalf("arm %d out of range", a)
			}
		}
	}
}

func TestMuMamaAblationNames(t *testing.T) {
	cases := map[string]MuMamaConfig{
		"µmama-WS-jav-only": {DisableGRW: true},
		"µmama-WS-grw-only": {DisableJAV: true},
		"µmama-HS":          {Metric: MetricHS()},
	}
	for want, cfg := range cases {
		if got := NewMuMama(cfg).Name(); got != want {
			t.Errorf("Name = %q, want %q", got, want)
		}
	}
}

func TestMuMamaDisableJAVNeverDictates(t *testing.T) {
	cfg := DefaultMuMamaConfig()
	cfg.Step = 100
	cfg.DisableJAV = true
	m := NewMuMama(cfg)
	runTiny(t, m, 2, 300_000)
	if m.JointFraction() != 0 {
		t.Errorf("DisableJAV but JointFraction = %g", m.JointFraction())
	}
	if m.JAVCache().Len() != 0 {
		t.Error("DisableJAV but JAV populated")
	}
}

func TestMuMamaProfiledUsesProfiles(t *testing.T) {
	cfg := DefaultMuMamaConfig()
	cfg.Step = 100
	cfg.Profiles = []float64{0.9, 0.2}
	m := NewMuMama(cfg)
	runTiny(t, m, 2, 300_000)
	if m.Name() != "µmama-WS-profiled" {
		t.Errorf("Name = %q", m.Name())
	}
	// The low-importance core (profile 0.2 < θ) should accumulate
	// global-reward assignments.
	if m.GlobalRewardAssignments() == 0 {
		t.Error("profiled run never assigned a global reward")
	}
}

func TestMuMamaCommunicationAccounted(t *testing.T) {
	cfg := DefaultMuMamaConfig()
	cfg.Step = 100
	m := NewMuMama(cfg)
	sys, err := sim.New(sim.DefaultConfig(2), tinyTraces(t, 2), m)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(300_000, 6_000_000)
	st := sys.Network().Stats()
	if st.Messages == 0 || st.Bytes == 0 {
		t.Errorf("no NoC traffic accounted: %+v", st)
	}
}

func TestMuMamaKStepForcesAdvance(t *testing.T) {
	// One fast core and one idle-ish core: without k_step the global
	// timestep would stall on the majority rule (n=2 needs both).
	cfg := DefaultMuMamaConfig()
	cfg.Step = 100
	cfg.KStep = 3
	m := NewMuMama(cfg)
	sp1, _ := workload.ByName("spec06.libquantum")
	sp2, _ := workload.ByName("spec06.povray") // nearly no L2 traffic
	sys, err := sim.New(sim.DefaultConfig(2), []trace.Reader{sp1.New(), sp2.New()}, m)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(300_000, 6_000_000)
	if m.GlobalSteps() == 0 {
		t.Error("k_step cap never forced a global timestep")
	}
}

func TestMuMamaLimitMode(t *testing.T) {
	cfg := DefaultMuMamaConfig()
	cfg.Step = 100
	cfg.LimitMode = true
	m := NewMuMama(cfg)
	runTiny(t, m, 2, 400_000)
	if m.GlobalSteps() < 10 {
		t.Fatalf("only %d global steps", m.GlobalSteps())
	}
	// Limit mode must still dictate sometimes or fall back cleanly.
	if jf := m.JointFraction(); jf < 0 || jf > 1 {
		t.Errorf("JointFraction = %g", jf)
	}
}

func TestMuMamaSingleCoreSMPGuard(t *testing.T) {
	// Equation 5 degenerates at n = 1 (S^MP would be 0 and every system
	// reward 0, letting the JAV dictate arbitrary arms). The guard pins
	// S^MP = 1, so single-core µMama behaves like best-arm exploitation.
	cfg := DefaultMuMamaConfig()
	cfg.Step = 100
	m := NewMuMama(cfg)
	runTiny(t, m, 1, 400_000)
	if m.GlobalSteps() < 20 {
		t.Fatalf("only %d steps", m.GlobalSteps())
	}
	if m.JAVCache().BestReward() <= 0 {
		t.Errorf("single-core JAV best reward = %g; the S^MP guard is broken",
			m.JAVCache().BestReward())
	}
}

func TestMuMamaWithSetAssociativeJAV(t *testing.T) {
	cfg := DefaultMuMamaConfig()
	cfg.Step = 100
	cfg.JAVSets = 4
	cfg.JAVWays = 2
	m := NewMuMama(cfg)
	runTiny(t, m, 2, 400_000)
	if m.JAVCache() != nil {
		t.Error("JAVCache should be nil under the set-associative organization")
	}
	if m.JAVStore().Len() == 0 {
		t.Error("set-associative JAV never populated")
	}
	if m.GlobalSteps() < 10 {
		t.Errorf("only %d steps", m.GlobalSteps())
	}
}

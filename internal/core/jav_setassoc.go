package core

import (
	"fmt"
	"math"
)

// SetAssocJAV is the scaled-up JAV organization of §4.2.3: when larger
// JAV caches are needed (small step sizes, large action spaces), full
// associativity and whole-cache comparisons become expensive. The
// set-associative variant:
//
//   - indexes sets by a hash mixing bits from the *entire* aField, so
//     the set depends on the policies of all cores;
//   - tags entries with the full joint action;
//   - evicts the lowest-rField entry within the set only (fewer
//     comparators);
//   - maintains a copy of the best-performing entry so selection needs
//     no cache-wide comparison — on every update it only checks whether
//     the updated entry surpasses the stored best.
//
// Like JAV, selection can apply a lower-confidence-bound penalty.
type SetAssocJAV struct {
	sets    [][]javEntry
	gamma   float64
	lcb     float64
	setMask uint64

	// Cached best entry (a copy, refreshed opportunistically).
	bestAction JointAction
	bestScore  float64
	bestValid  bool

	Inserts   uint64
	Evictions uint64
	Rejects   uint64
}

// NewSetAssocJAV constructs a set-associative JAV with the given number
// of sets (power of two), ways, discount, and selection LCB.
func NewSetAssocJAV(sets, ways int, gamma, lcb float64) *SetAssocJAV {
	if sets <= 0 || sets&(sets-1) != 0 {
		panic(fmt.Sprintf("core: JAV sets must be a positive power of two, got %d", sets))
	}
	if ways < 1 {
		panic(fmt.Sprintf("core: JAV ways must be >= 1, got %d", ways))
	}
	if gamma <= 0 || gamma > 1 {
		panic(fmt.Sprintf("core: JAV gamma must be in (0,1], got %g", gamma))
	}
	if lcb < 0 {
		panic(fmt.Sprintf("core: JAV lcb must be >= 0, got %g", lcb))
	}
	j := &SetAssocJAV{gamma: gamma, lcb: lcb, setMask: uint64(sets - 1)}
	j.sets = make([][]javEntry, sets)
	for i := range j.sets {
		j.sets[i] = make([]javEntry, ways)
	}
	return j
}

// hash mixes bits from throughout the aField so the set index depends
// on every core's policy (§4.2.3).
func (j *SetAssocJAV) hash(action JointAction) uint64 {
	var h uint64 = 1469598103934665603
	for _, a := range action {
		h ^= uint64(a)
		h *= 1099511628211
	}
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return h & j.setMask
}

func (j *SetAssocJAV) score(e *javEntry) float64 {
	if e.n <= 0 {
		return 0
	}
	return e.s/e.n - j.lcb/math.Sqrt(e.n)
}

// Cap returns the total capacity in entries.
func (j *SetAssocJAV) Cap() int { return len(j.sets) * len(j.sets[0]) }

// Len returns the number of resident entries.
func (j *SetAssocJAV) Len() int {
	n := 0
	for _, set := range j.sets {
		for i := range set {
			if set[i].valid {
				n++
			}
		}
	}
	return n
}

// Best returns the cached best joint action (nil when empty).
func (j *SetAssocJAV) Best() JointAction {
	if !j.bestValid {
		return nil
	}
	return j.bestAction
}

// BestReward returns the cached best entry's selection score.
func (j *SetAssocJAV) BestReward() float64 {
	if !j.bestValid {
		return 0
	}
	return j.bestScore
}

// Lookup returns the rField for action, if resident.
func (j *SetAssocJAV) Lookup(action JointAction) (float64, bool) {
	set := j.sets[j.hash(action)]
	for i := range set {
		if set[i].valid && set[i].action.Equal(action) {
			return set[i].mean(), true
		}
	}
	return 0, false
}

// Update records one timestep of the given action with its system
// reward. All entries decay; the action's entry is refreshed or
// inserted, evicting the worst entry in its set if it beats it. The
// best-entry copy is maintained with set-local comparisons only.
func (j *SetAssocJAV) Update(action JointAction, reward float64) {
	// Decay everything (and the cached best's score along with it; the
	// score of a discounted-average entry is invariant under uniform
	// decay except for the confidence term, which only shrinks —
	// conservatively recompute lazily below).
	for _, set := range j.sets {
		for i := range set {
			if set[i].valid {
				set[i].n *= j.gamma
				set[i].s *= j.gamma
			}
		}
	}

	set := j.sets[j.hash(action)]
	idx, freeIdx, worstIdx := -1, -1, -1
	worst := 0.0
	for i := range set {
		e := &set[i]
		if !e.valid {
			if freeIdx < 0 {
				freeIdx = i
			}
			continue
		}
		if e.action.Equal(action) {
			idx = i
		}
		if worstIdx < 0 || e.mean() < worst {
			worstIdx, worst = i, e.mean()
		}
	}

	var updated *javEntry
	switch {
	case idx >= 0:
		set[idx].n++
		set[idx].s += reward
		updated = &set[idx]
	case freeIdx >= 0:
		set[freeIdx] = javEntry{action: action.Clone(), n: 1, s: reward, valid: true}
		j.Inserts++
		updated = &set[freeIdx]
	case reward > worst:
		evictingBest := j.bestValid && set[worstIdx].action.Equal(j.bestAction)
		set[worstIdx] = javEntry{action: action.Clone(), n: 1, s: reward, valid: true}
		j.Inserts++
		j.Evictions++
		updated = &set[worstIdx]
		if evictingBest {
			j.recomputeBest()
		}
	default:
		j.Rejects++
		return
	}

	// Maintain the best-entry copy: only the updated entry can surpass
	// it; if the updated entry IS the best, refresh its score (it may
	// have dropped, requiring a recompute).
	s := j.score(updated)
	switch {
	case !j.bestValid || s > j.bestScore:
		j.bestValid = true
		j.bestAction = updated.action.Clone()
		j.bestScore = s
	case j.bestValid && updated.action.Equal(j.bestAction):
		if s < j.bestScore {
			j.recomputeBest()
		} else {
			j.bestScore = s
		}
	}
}

// recomputeBest performs the rare full scan (best entry evicted or its
// score dropped).
func (j *SetAssocJAV) recomputeBest() {
	j.bestValid = false
	j.bestScore = 0
	for _, set := range j.sets {
		for i := range set {
			if !set[i].valid {
				continue
			}
			if s := j.score(&set[i]); !j.bestValid || s > j.bestScore {
				j.bestValid = true
				j.bestAction = set[i].action.Clone()
				j.bestScore = s
			}
		}
	}
}

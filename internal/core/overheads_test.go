package core

import (
	"math"
	"testing"
)

// TestOverheadsMatchPaper pins the §4.4 numbers: a 2-entry JAV for an
// 8-core, 17-arm system costs 336 bits (42 bytes); each agent exchanges
// 27 bytes per timestep (2 on the critical path); at the paper's
// ~150k-cycle timestep a 40-core system moves ~28 MB/s total.
func TestOverheadsMatchPaper(t *testing.T) {
	o := ComputeOverheads(8, 2, 150_000)
	if o.AFieldBits != 40 {
		t.Errorf("aField = %d bits, want 40", o.AFieldBits)
	}
	if o.JAVBits != 336 || o.JAVBytes != 42 {
		t.Errorf("JAV storage = %d bits / %d bytes, want 336/42", o.JAVBits, o.JAVBytes)
	}
	if o.PerStepBytes != 27 || o.CriticalBytes != 2 {
		t.Errorf("comm bytes = %d/%d, want 27/2", o.PerStepBytes, o.CriticalBytes)
	}

	o40 := ComputeOverheads(40, 64, 150_000)
	if math.Abs(o40.TotalDataRateMBs-28.8) > 1.0 {
		t.Errorf("40-core data rate = %.1f MB/s, want ~28 (paper §4.4.2)", o40.TotalDataRateMBs)
	}
}

func TestOverheadsZeroTimestep(t *testing.T) {
	o := ComputeOverheads(4, 2, 0)
	if o.TotalDataRateMBs != 0 {
		t.Error("zero timestep should give zero data rate")
	}
}

package core

import (
	"testing"
	"testing/quick"

	"micromama/internal/xrand"
)

func TestSetAssocJAVBasics(t *testing.T) {
	j := NewSetAssocJAV(4, 2, 1.0, 0)
	if j.Cap() != 8 || j.Len() != 0 {
		t.Fatalf("Cap/Len = %d/%d", j.Cap(), j.Len())
	}
	j.Update(ja(1, 2), 0.5)
	j.Update(ja(3, 4), 0.9)
	if r, ok := j.Lookup(ja(1, 2)); !ok || r != 0.5 {
		t.Errorf("Lookup = %g,%v", r, ok)
	}
	if best := j.Best(); !best.Equal(ja(3, 4)) {
		t.Errorf("Best = %v", best)
	}
}

func TestSetAssocJAVSetLocalEviction(t *testing.T) {
	// 1 set x 2 ways behaves like a tiny fully-associative cache.
	j := NewSetAssocJAV(1, 2, 1.0, 0)
	j.Update(ja(1), 0.5)
	j.Update(ja(2), 0.8)
	j.Update(ja(3), 0.6) // beats worst (0.5) -> evicts [1]
	if _, ok := j.Lookup(ja(1)); ok {
		t.Error("worst entry survived")
	}
	j.Update(ja(4), 0.1) // worse than everything -> rejected
	if _, ok := j.Lookup(ja(4)); ok {
		t.Error("worse-than-all entry inserted")
	}
	if j.Rejects != 1 || j.Evictions != 1 {
		t.Errorf("rejects=%d evictions=%d", j.Rejects, j.Evictions)
	}
}

func TestSetAssocJAVBestTracksEviction(t *testing.T) {
	j := NewSetAssocJAV(1, 2, 1.0, 0)
	j.Update(ja(1), 0.9) // best
	j.Update(ja(2), 0.5)
	// Repeatedly degrade the best entry until another surpasses it.
	for i := 0; i < 20; i++ {
		j.Update(ja(1), 0.1)
	}
	if best := j.Best(); !best.Equal(ja(2)) {
		t.Errorf("best copy stale: %v (reward %g)", best, j.BestReward())
	}
}

func TestSetAssocJAVHashMixesAllCores(t *testing.T) {
	j := NewSetAssocJAV(16, 1, 1.0, 0)
	// Changing only the LAST core's arm must (usually) change the set.
	base := ja(1, 1, 1, 1, 1, 1, 1, 1)
	diff := 0
	for a := uint8(0); a < 16; a++ {
		other := base.Clone()
		other[7] = a
		if j.hash(base) != j.hash(other) {
			diff++
		}
	}
	if diff < 8 {
		t.Errorf("last-core changes moved the set only %d/16 times; hash not mixing", diff)
	}
}

// Property: the set-associative JAV with 1xN geometry and the fully
// associative JAV of size N agree on Lookup for every update sequence
// (same eviction policy within one set).
func TestQuickSetAssocMatchesFullyAssociative(t *testing.T) {
	f := func(seed uint64) bool {
		fa := NewJAV(3, 0.99)
		sa := NewSetAssocJAV(1, 3, 0.99, 0)
		r := xrand.New(seed)
		for i := 0; i < 150; i++ {
			action := ja(uint8(r.Intn(5)))
			reward := r.Float64()
			fa.Update(action, reward)
			sa.Update(action, reward)
		}
		for a := uint8(0); a < 5; a++ {
			fr, fok := fa.Lookup(ja(a))
			sr, sok := sa.Lookup(ja(a))
			if fok != sok {
				return false
			}
			if fok && (fr-sr > 1e-9 || sr-fr > 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: the cached best always has the maximal selection score.
func TestQuickSetAssocBestIsMax(t *testing.T) {
	f := func(seed uint64) bool {
		j := NewSetAssocJAV(4, 2, 0.98, 0.1)
		r := xrand.New(seed)
		for i := 0; i < 200; i++ {
			j.Update(ja(uint8(r.Intn(6)), uint8(r.Intn(6))), r.Float64())
			best := j.Best()
			if best == nil {
				return false
			}
			// No resident entry may beat the cached best's score.
			bestScore := j.BestReward()
			for _, set := range j.sets {
				for k := range set {
					if set[k].valid && j.score(&set[k]) > bestScore+1e-9 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSetAssocJAVConstructorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewSetAssocJAV(3, 2, 0.9, 0) },
		func() { NewSetAssocJAV(0, 2, 0.9, 0) },
		func() { NewSetAssocJAV(2, 0, 0.9, 0) },
		func() { NewSetAssocJAV(2, 2, 0, 0) },
		func() { NewSetAssocJAV(2, 2, 0.9, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid construction did not panic")
				}
			}()
			f()
		}()
	}
}

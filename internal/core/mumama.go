package core

import (
	"micromama/internal/bandit"
	"micromama/internal/noc"
	"micromama/internal/prefetch"
	"micromama/internal/sim"
)

// MuMamaConfig parameterizes the µMama supervisor. Defaults follow the
// paper's Table 1.
type MuMamaConfig struct {
	// Step is the per-agent timestep threshold in L2 demand accesses.
	Step uint64
	// KStep forces a global timestep once any agent accumulates
	// KStep×Step accesses, so one slow core cannot stall the system.
	KStep int
	// Local agents (Table 1: c = 0.01, γ = 0.995 — lower γ than plain
	// Bandit because their role is exploring changing environments).
	LocalC     float64
	LocalGamma float64
	// Arbiter (Table 1: c = 0.1, γ = 0.995), queried every TArbit
	// global timesteps.
	ArbiterC     float64
	ArbiterGamma float64
	TArbit       int
	// JAV cache (Table 1: 2 entries, γ = 0.999 — higher γ to remember
	// high-performing joint actions). JAVLCB penalizes low-confidence
	// entries during selection (see JAV docs); negative means 0.
	JAVSize  int
	JAVGamma float64
	JAVLCB   float64
	// JAVSets/JAVWays select the set-associative organization of
	// §4.2.3 instead of the default fully associative cache (both zero
	// keeps the paper's design). JAVSize is ignored when set.
	JAVSets int
	JAVWays int
	// ThetaGlobal is the sensitivity threshold below which a local
	// agent receives the system reward (Table 1: 1 - 1.4/n). Zero means
	// "use the Table 1 formula".
	ThetaGlobal float64
	// Metric selects the optimization target (WS by default).
	Metric Metric
	// Profiles optionally supplies per-core S^MP values measured
	// offline (µMama-Profiled, §6.6.3). When nil, S^MP is estimated at
	// runtime from δ_i (Equation 5).
	Profiles []float64
	// DisableJAV / DisableGRW turn off the two major components for the
	// ablation of §6.6.1.
	DisableJAV bool
	DisableGRW bool
	// LimitMode applies dictated joint actions as aggressiveness *caps*
	// rather than exact configurations (§7's sketch for applying µMama
	// to large-state-space controllers like RL-CoPref): each local
	// agent still picks its own arm, but it is clamped to the dictated
	// arm's position in the least-to-most-aggressive ordering.
	LimitMode bool
	// RecordTimeline enables policy-timeline sampling (Figure 12).
	RecordTimeline bool
}

// DefaultMuMamaConfig returns the paper's Table 1 parameters.
func DefaultMuMamaConfig() MuMamaConfig {
	return MuMamaConfig{
		Step:         800,
		KStep:        5,
		LocalC:       0.01,
		LocalGamma:   0.995,
		ArbiterC:     0.1,
		ArbiterGamma: 0.995,
		TArbit:       5,
		JAVSize:      2,
		JAVGamma:     0.999,
		JAVLCB:       0.2,
		Metric:       MetricWS(),
	}
}

// Arbiter actions.
const (
	arbActLocal = 0
	arbActJoint = 1
)

// MuMama is the µMama controller: distributed local Bandit agents for
// exploration, a JAV cache of high-performing joint actions for
// exploitation, and a two-action DUCB arbiter choosing between them
// each timestep (Algorithm 1).
type MuMama struct {
	cfg    MuMamaConfig
	sys    *sim.System
	agents []*localAgent
	arb    *bandit.DUCB
	jav    JAVStore
	theta  float64
	// profiles holds the rescaled offline S^MP profile (nil when
	// estimating at runtime).
	profiles []float64

	// Global timestep state.
	ready      []bool
	readyCount int
	globalStep uint64

	// Per-core interval snapshots for δ_i (Equation 5).
	lastMisses []uint64
	lastUseful []uint64

	// Arbiter period accounting.
	arbAction    int
	arbRewardSum float64
	arbSteps     int

	// Whether the current timestep's actions were dictated by the JAV.
	dictated bool

	// One-step-ahead pipeline (paper Figure 8): the policy chosen at a
	// timestep boundary takes effect only after the µMama unit's
	// broadcast arrives (the 200-cycle critical path); until then the
	// prefetchers keep operating under the previous policy.
	pendingArms     []int
	pendingDictated bool
	applyAt         uint64

	// sysEWMA tracks the typical system reward so global rewards handed
	// to local agents can be rescaled to the ~1.0 scale of their local
	// normalized-IPC rewards (mismatched scales would corrupt DUCB
	// cross-arm comparisons).
	sysEWMA float64

	// Diagnostics.
	jointSteps uint64 // timesteps whose actions came from the JAV
	localSteps uint64
	grwAssigns uint64 // global-reward assignments to local agents

	timeline []PolicySample
	lastArms []int // last recorded arm per core, to dedupe timeline
}

// NewMuMama constructs the controller; zero-valued fields of cfg fall
// back to the paper's defaults.
func NewMuMama(cfg MuMamaConfig) *MuMama {
	def := DefaultMuMamaConfig()
	if cfg.Step == 0 {
		cfg.Step = def.Step
	}
	if cfg.KStep == 0 {
		cfg.KStep = def.KStep
	}
	if cfg.LocalC == 0 {
		cfg.LocalC = def.LocalC
	}
	if cfg.LocalGamma == 0 {
		cfg.LocalGamma = def.LocalGamma
	}
	if cfg.ArbiterC == 0 {
		cfg.ArbiterC = def.ArbiterC
	}
	if cfg.ArbiterGamma == 0 {
		cfg.ArbiterGamma = def.ArbiterGamma
	}
	if cfg.TArbit == 0 {
		cfg.TArbit = def.TArbit
	}
	if cfg.JAVSize == 0 {
		cfg.JAVSize = def.JAVSize
	}
	if cfg.JAVGamma == 0 {
		cfg.JAVGamma = def.JAVGamma
	}
	if cfg.JAVLCB == 0 {
		cfg.JAVLCB = def.JAVLCB
	} else if cfg.JAVLCB < 0 {
		cfg.JAVLCB = 0
	}
	return &MuMama{cfg: cfg}
}

// Name implements sim.Controller.
func (m *MuMama) Name() string {
	n := m.cfg.Metric.String()
	switch {
	case m.cfg.Profiles != nil:
		n += "-profiled"
	case m.cfg.DisableJAV && !m.cfg.DisableGRW:
		n += "-grw-only"
	case m.cfg.DisableGRW && !m.cfg.DisableJAV:
		n += "-jav-only"
	}
	return n
}

// Attach implements sim.Controller.
func (m *MuMama) Attach(sys *sim.System) {
	m.sys = sys
	n := sys.Config().Cores
	m.agents = make([]*localAgent, n)
	for i := range m.agents {
		m.agents[i] = newLocalAgent(m.cfg.LocalC, m.cfg.LocalGamma, n, i)
	}
	m.arb = bandit.New(bandit.Config{Arms: 2, C: m.cfg.ArbiterC, Gamma: m.cfg.ArbiterGamma})
	if m.cfg.JAVSets > 0 || m.cfg.JAVWays > 0 {
		m.jav = NewSetAssocJAV(m.cfg.JAVSets, m.cfg.JAVWays, m.cfg.JAVGamma, m.cfg.JAVLCB)
	} else {
		m.jav = NewJAVLCB(m.cfg.JAVSize, m.cfg.JAVGamma, m.cfg.JAVLCB)
	}
	m.theta = m.cfg.ThetaGlobal
	if m.theta == 0 {
		m.theta = 1 - 1.4/float64(n)
	}
	if m.cfg.Profiles != nil {
		// Rescale offline profiles to the same scale as the runtime
		// estimate (whose mean is (n-1)/n by construction), so the
		// θ_global comparison is meaningful: only the *relative* values
		// across cores matter (§6.6.3).
		var sum float64
		for _, p := range m.cfg.Profiles {
			sum += p
		}
		m.profiles = make([]float64, n)
		if sum > 0 {
			scale := float64(n-1) / sum
			for i, p := range m.cfg.Profiles {
				m.profiles[i] = p * scale
			}
		} else {
			for i := range m.profiles {
				m.profiles[i] = 1
			}
		}
	}
	m.ready = make([]bool, n)
	m.lastMisses = make([]uint64, n)
	m.lastUseful = make([]uint64, n)
	m.lastArms = make([]int, n)
	for i := range m.lastArms {
		m.lastArms[i] = -1
	}
	m.arbAction = arbActLocal
}

// Engine implements sim.Controller.
func (m *MuMama) Engine(core int) prefetch.Prefetcher { return m.agents[core].engine }

// JAVCache exposes the fully associative JAV for tests and
// introspection; it returns nil when the set-associative organization
// is configured (use JAVStore then).
func (m *MuMama) JAVCache() *JAV {
	if j, ok := m.jav.(*JAV); ok {
		return j
	}
	return nil
}

// JAVStore exposes whichever JAV organization is configured.
func (m *MuMama) JAVStore() JAVStore { return m.jav }

// Arbiter exposes the arbiter bandit.
func (m *MuMama) Arbiter() *bandit.DUCB { return m.arb }

// Timeline implements TimelineRecorder.
func (m *MuMama) Timeline() []PolicySample { return m.timeline }

// JointFraction returns the fraction of global timesteps whose actions
// were dictated from the JAV cache (§6.5 reports 64–67%).
func (m *MuMama) JointFraction() float64 {
	t := m.jointSteps + m.localSteps
	if t == 0 {
		return 0
	}
	return float64(m.jointSteps) / float64(t)
}

// GlobalRewardAssignments returns how many (core, timestep) pairs
// received the system-level reward instead of a local one.
func (m *MuMama) GlobalRewardAssignments() uint64 { return m.grwAssigns }

// GlobalSteps returns the number of completed global timesteps.
func (m *MuMama) GlobalSteps() uint64 { return m.globalStep }

// JointSteps returns how many global timesteps were dictated from the
// JAV cache (the numerator of JointFraction).
func (m *MuMama) JointSteps() uint64 { return m.jointSteps }

// LocalSteps returns how many global timesteps fell back to the local
// agents' own arm choices.
func (m *MuMama) LocalSteps() uint64 { return m.localSteps }

// OnL2Demand implements sim.Controller. Local agents mark themselves
// ready at Step accesses; once a majority is ready — or one agent hits
// KStep×Step — the global timestep advances (§4.3.1).
func (m *MuMama) OnL2Demand(core int, now uint64) {
	if m.pendingArms != nil && now >= m.applyAt {
		m.applyPending(now)
	}
	a := m.agents[core]
	a.accesses++
	if !m.ready[core] && a.accesses >= m.cfg.Step {
		m.ready[core] = true
		m.readyCount++
	}
	n := len(m.agents)
	if m.readyCount*2 > n || a.accesses >= uint64(m.cfg.KStep)*m.cfg.Step {
		m.advance(now)
	}
}

// applyPending installs the policy chosen at the previous boundary
// (the broadcast has arrived).
func (m *MuMama) applyPending(now uint64) {
	for i, a := range m.agents {
		arm := m.pendingArms[i]
		if arm != a.curArm {
			a.curArm = arm
			a.engine.SetArm(arm)
			if m.cfg.RecordTimeline && arm != m.lastArms[i] {
				m.timeline = append(m.timeline, PolicySample{Cycle: now, Core: i, Arm: arm, Joint: m.pendingDictated})
				m.lastArms[i] = arm
			}
		}
	}
	m.dictated = m.pendingDictated
	m.pendingArms = nil
}

// advance ends the global timestep at cycle now: it computes the
// system reward from per-core estimates, updates the JAV, arbiter, and
// local agents, and selects the next joint policy.
func (m *MuMama) advance(now uint64) {
	// If the previous boundary's broadcast is still in flight (possible
	// only for degenerately short timesteps), apply it first so action
	// attribution stays coherent.
	if m.pendingArms != nil {
		m.applyPending(now)
	}
	n := len(m.agents)
	m.globalStep++

	// Per-core interval measurements.
	r := make([]float64, n)     // S^opt estimates (normalized IPC)
	delta := make([]float64, n) // δ_i: would-be L2 misses per instruction
	var deltaSum float64
	for i, a := range m.agents {
		prevInstr := a.lastInstr
		ipc := a.intervalIPC(m.sys, i)
		r[i] = a.normalize(ipc, !m.dictated)
		dInstr := a.lastInstr - prevInstr

		st := m.sys.L2Stats(i)
		dMiss := st.Misses - m.lastMisses[i]
		dUseful := st.PrefetchUseful - m.lastUseful[i]
		m.lastMisses[i], m.lastUseful[i] = st.Misses, st.PrefetchUseful
		if dInstr > 0 {
			delta[i] = float64(dMiss+dUseful) / float64(dInstr)
		}
		deltaSum += delta[i]
	}

	// S^MP estimates (Equation 5) or offline profiles (§6.6.3).
	// Equation 5 assumes n >= 2: with a single core there is no
	// multicore slowdown to apportion, so S^MP is 1 by definition.
	smp := make([]float64, n)
	for i := range smp {
		switch {
		case n == 1:
			smp[i] = 1
		case m.profiles != nil:
			smp[i] = m.profiles[i]
		case deltaSum > 0:
			smp[i] = 1 - delta[i]/deltaSum
		default:
			smp[i] = 1
		}
	}
	shat := make([]float64, n)
	for i := range shat {
		shat[i] = smp[i] * r[i]
	}
	sysReward := m.cfg.Metric.Reward(shat)

	// Current joint action (what was actually played this timestep).
	played := make(JointAction, n)
	for i, a := range m.agents {
		played[i] = uint8(a.curArm)
	}

	// Update the JAV with the observed system reward.
	if !m.cfg.DisableJAV {
		m.jav.Update(played, sysReward)
	}

	// Update local agents: local reward, or the (rescaled) system
	// reward for low-importance cores (§4.2.4). Timesteps whose actions
	// were dictated from the JAV do not update the local tables: the
	// local agents' role is exploration, and folding long dictated
	// phases into their discounted statistics would evaporate every
	// alternative arm's history and freeze them on the dictated policy.
	if m.sysEWMA == 0 {
		m.sysEWMA = sysReward
	} else {
		m.sysEWMA = 0.95*m.sysEWMA + 0.05*sysReward
	}
	if !m.dictated {
		for i, a := range m.agents {
			reward := r[i]
			if !m.cfg.DisableGRW && m.cfg.Metric.Sensitivity(i, smp, shat) < m.theta {
				if m.sysEWMA > 0 {
					reward = sysReward / m.sysEWMA
				} else {
					reward = sysReward
				}
				m.grwAssigns++
			}
			a.d.Update(a.curArm, reward)
		}
	}

	// Warmup: until every local agent has finished its initial
	// exploration pass, the system stays in local mode so the JAV is
	// seeded from (staggered) exploration rather than locking onto a
	// cold-start entry, and the arbiter does not learn from warmup
	// noise.
	warm := true
	for _, a := range m.agents {
		if a.d.Exploring() {
			warm = false
			break
		}
	}

	// Arbiter period accounting: queried once every TArbit timesteps.
	if warm {
		m.arbRewardSum += sysReward
		m.arbSteps++
		if m.arbSteps >= m.cfg.TArbit {
			m.arb.Update(m.arbAction, m.arbRewardSum/float64(m.arbSteps))
			m.arbRewardSum, m.arbSteps = 0, 0
			m.arbAction = m.arb.Select()
		}
	}

	// Select the next joint policy (Algorithm 1). It takes effect only
	// when the µMama unit's broadcast lands (Figure 8's critical path).
	nextDictated := false
	nextArms := make([]int, n)
	if warm && !m.cfg.DisableJAV && m.arbAction == arbActJoint {
		if best := m.jav.Best(); best != nil {
			nextDictated = true
			for i, a := range m.agents {
				nextArms[i] = int(best[i])
				if m.cfg.LimitMode {
					// The dictated arm is a ceiling: the local choice
					// stands unless it is more aggressive (arms are
					// ordered least to most aggressive).
					if local := a.d.Select(); local < nextArms[i] {
						nextArms[i] = local
					}
				}
			}
		}
	}
	if !nextDictated {
		for i, a := range m.agents {
			nextArms[i] = a.d.Select()
		}
	}
	if nextDictated {
		m.jointSteps++
	} else {
		m.localSteps++
	}

	// Communication accounting: the 2-byte critical-path exchange plus
	// the 27 bytes each agent trades with the µMama unit per timestep
	// (§4.4.2). The new policy applies once the broadcast arrives.
	net := m.sys.Network()
	m.applyAt = net.CriticalPath(now)
	net.Broadcast(now, noc.PerStepBytes, n)
	m.pendingArms = nextArms
	m.pendingDictated = nextDictated

	// Reset per-timestep state.
	for i := range m.ready {
		m.ready[i] = false
		m.agents[i].accesses = 0
	}
	m.readyCount = 0
}

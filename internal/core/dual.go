package core

import (
	"micromama/internal/bandit"
	"micromama/internal/noc"
	"micromama/internal/prefetch"
	"micromama/internal/sim"
)

// DualMuMama implements the paper's §7 extension: the L1D and L2
// prefetchers are controlled by *separate* local Bandit agents, and the
// JAV cache stores {L1 pref, L2 pref} pairs instead of just the L2
// actions. The global timestep remains L2-access driven (the paper
// notes the timestep may need revising for the two levels' different
// miss frequencies; the k_step cap already bounds the skew).
//
// The L1 action space is the ip_stride degree: {0, 1, 2, 4}.

// L1Arms lists the ip_stride degrees available to the L1 agents.
var L1Arms = [4]int{0, 1, 2, 4}

// controllableL1 wraps the ip_stride engine with a switchable degree.
type controllableL1 struct {
	s   *prefetch.Stride
	arm int
}

func newControllableL1() *controllableL1 {
	s := prefetch.NewIPStride()
	s.Degree = L1Arms[0]
	return &controllableL1{s: s}
}

func (c *controllableL1) Name() string { return "ip_stride_ctl" }

func (c *controllableL1) OnAccess(pc, addr uint64, hit bool, dst []uint64) []uint64 {
	return c.s.OnAccess(pc, addr, hit, dst)
}

func (c *controllableL1) setArm(arm int) {
	c.arm = arm
	c.s.Degree = L1Arms[arm]
}

// DualMuMama coordinates 2n local agents (an L1 and an L2 agent per
// core) under one arbiter and one JAV of {L2 arms..., L1 arms...}
// joint actions.
type DualMuMama struct {
	cfg MuMamaConfig
	sys *sim.System

	l2Agents []*localAgent
	l1Bandit []*bandit.DUCB
	l1Engine []*controllableL1
	l1Arm    []int

	arb   *bandit.DUCB
	jav   *JAV
	theta float64

	ready      []bool
	readyCount int
	globalStep uint64

	lastMisses []uint64
	lastUseful []uint64

	arbAction    int
	arbRewardSum float64
	arbSteps     int
	dictated     bool
	sysEWMA      float64

	jointSteps uint64
	localSteps uint64
}

// NewDualMuMama constructs the L1+L2 controller; zero-valued fields of
// cfg fall back to the paper's defaults.
func NewDualMuMama(cfg MuMamaConfig) *DualMuMama {
	// Reuse MuMama's defaulting.
	cfg = NewMuMama(cfg).cfg
	return &DualMuMama{cfg: cfg}
}

// Name implements sim.Controller.
func (m *DualMuMama) Name() string { return m.cfg.Metric.String() + "-l1l2" }

// Attach implements sim.Controller.
func (m *DualMuMama) Attach(sys *sim.System) {
	m.sys = sys
	n := sys.Config().Cores
	m.l2Agents = make([]*localAgent, n)
	m.l1Bandit = make([]*bandit.DUCB, n)
	m.l1Engine = make([]*controllableL1, n)
	m.l1Arm = make([]int, n)
	for i := 0; i < n; i++ {
		m.l2Agents[i] = newLocalAgent(m.cfg.LocalC, m.cfg.LocalGamma, n, i)
		m.l1Bandit[i] = bandit.New(bandit.Config{
			Arms:       len(L1Arms),
			C:          m.cfg.LocalC,
			Gamma:      m.cfg.LocalGamma,
			InitOffset: (i * 3) % len(L1Arms),
		})
		m.l1Engine[i] = newControllableL1()
	}
	m.arb = bandit.New(bandit.Config{Arms: 2, C: m.cfg.ArbiterC, Gamma: m.cfg.ArbiterGamma})
	m.jav = NewJAVLCB(m.cfg.JAVSize, m.cfg.JAVGamma, m.cfg.JAVLCB)
	m.theta = m.cfg.ThetaGlobal
	if m.theta == 0 {
		m.theta = 1 - 1.4/float64(n)
	}
	m.ready = make([]bool, n)
	m.lastMisses = make([]uint64, n)
	m.lastUseful = make([]uint64, n)
	m.arbAction = arbActLocal
}

// Engine implements sim.Controller (the L2 engine).
func (m *DualMuMama) Engine(core int) prefetch.Prefetcher { return m.l2Agents[core].engine }

// L1Engine implements sim.L1Provider.
func (m *DualMuMama) L1Engine(core int) prefetch.Prefetcher { return m.l1Engine[core] }

// JAVCache exposes the JAV.
func (m *DualMuMama) JAVCache() *JAV { return m.jav }

// GlobalSteps returns completed global timesteps.
func (m *DualMuMama) GlobalSteps() uint64 { return m.globalStep }

// JointFraction returns the fraction of dictated timesteps.
func (m *DualMuMama) JointFraction() float64 {
	t := m.jointSteps + m.localSteps
	if t == 0 {
		return 0
	}
	return float64(m.jointSteps) / float64(t)
}

// OnL2Demand implements sim.Controller.
func (m *DualMuMama) OnL2Demand(core int, now uint64) {
	a := m.l2Agents[core]
	a.accesses++
	if !m.ready[core] && a.accesses >= m.cfg.Step {
		m.ready[core] = true
		m.readyCount++
	}
	n := len(m.l2Agents)
	if m.readyCount*2 > n || a.accesses >= uint64(m.cfg.KStep)*m.cfg.Step {
		m.advance(now)
	}
}

func (m *DualMuMama) advance(now uint64) {
	n := len(m.l2Agents)
	m.globalStep++

	r := make([]float64, n)
	delta := make([]float64, n)
	var deltaSum float64
	for i, a := range m.l2Agents {
		prevInstr := a.lastInstr
		ipc := a.intervalIPC(m.sys, i)
		r[i] = a.normalize(ipc, !m.dictated)
		dInstr := a.lastInstr - prevInstr

		st := m.sys.L2Stats(i)
		dMiss := st.Misses - m.lastMisses[i]
		dUseful := st.PrefetchUseful - m.lastUseful[i]
		m.lastMisses[i], m.lastUseful[i] = st.Misses, st.PrefetchUseful
		if dInstr > 0 {
			delta[i] = float64(dMiss+dUseful) / float64(dInstr)
		}
		deltaSum += delta[i]
	}
	smp := make([]float64, n)
	shat := make([]float64, n)
	for i := range smp {
		if deltaSum > 0 && n > 1 {
			smp[i] = 1 - delta[i]/deltaSum
		} else {
			smp[i] = 1
		}
		shat[i] = smp[i] * r[i]
	}
	sysReward := m.cfg.Metric.Reward(shat)

	// Joint action: L2 arms followed by L1 arms ({L1, L2} pairs, §7).
	played := make(JointAction, 2*n)
	for i, a := range m.l2Agents {
		played[i] = uint8(a.curArm)
		played[n+i] = uint8(m.l1Arm[i])
	}
	m.jav.Update(played, sysReward)

	if m.sysEWMA == 0 {
		m.sysEWMA = sysReward
	} else {
		m.sysEWMA = 0.95*m.sysEWMA + 0.05*sysReward
	}
	if !m.dictated {
		for i, a := range m.l2Agents {
			reward := r[i]
			if !m.cfg.DisableGRW && m.cfg.Metric.Sensitivity(i, smp, shat) < m.theta && m.sysEWMA > 0 {
				reward = sysReward / m.sysEWMA
			}
			a.d.Update(a.curArm, reward)
			m.l1Bandit[i].Update(m.l1Arm[i], reward)
		}
	}

	warm := true
	for i := range m.l2Agents {
		if m.l2Agents[i].d.Exploring() || m.l1Bandit[i].Exploring() {
			warm = false
			break
		}
	}
	if warm {
		m.arbRewardSum += sysReward
		m.arbSteps++
		if m.arbSteps >= m.cfg.TArbit {
			m.arb.Update(m.arbAction, m.arbRewardSum/float64(m.arbSteps))
			m.arbRewardSum, m.arbSteps = 0, 0
			m.arbAction = m.arb.Select()
		}
	}

	m.dictated = false
	if warm && !m.cfg.DisableJAV && m.arbAction == arbActJoint {
		if best := m.jav.Best(); best != nil && len(best) == 2*n {
			m.dictated = true
			for i := range m.l2Agents {
				m.applyL2(i, int(best[i]))
				m.applyL1(i, int(best[n+i]))
			}
		}
	}
	if !m.dictated {
		for i := range m.l2Agents {
			m.applyL2(i, m.l2Agents[i].d.Select())
			m.applyL1(i, m.l1Bandit[i].Select())
		}
	}
	if m.dictated {
		m.jointSteps++
	} else {
		m.localSteps++
	}

	net := m.sys.Network()
	net.CriticalPath(now)
	net.Broadcast(now, noc.PerStepBytes, n)

	for i := range m.ready {
		m.ready[i] = false
		m.l2Agents[i].accesses = 0
	}
	m.readyCount = 0
}

func (m *DualMuMama) applyL2(core, arm int) {
	a := m.l2Agents[core]
	if arm != a.curArm {
		a.curArm = arm
		a.engine.SetArm(arm)
	}
}

func (m *DualMuMama) applyL1(core, arm int) {
	if arm != m.l1Arm[core] {
		m.l1Arm[core] = arm
		m.l1Engine[core].setArm(arm)
	}
}

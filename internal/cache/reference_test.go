package cache

// refCache is the pre-optimization cache model, kept verbatim as the
// reference for the differential tests in diff_test.go: LRU state in a
// flat line array walked once per operation, and the in-flight (MSHR)
// tracker as a map from line address to completion cycle. It is
// deliberately simple and obviously-correct; the optimized Cache must
// be observationally identical to it.

type refLine struct {
	tag        uint64
	lastUse    uint64
	valid      bool
	dirty      bool
	prefetched bool
}

type refCache struct {
	cfg       Config
	lines     []refLine
	setMask   uint64
	lineShift uint
	stamp     uint64
	stats     Stats
	inflight  map[uint64]uint64
}

func newRefCache(cfg Config) *refCache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	shift := uint(0)
	for l := cfg.LineBytes; l > 1; l >>= 1 {
		shift++
	}
	return &refCache{
		cfg:       cfg,
		lines:     make([]refLine, cfg.Sets*cfg.Ways),
		setMask:   uint64(cfg.Sets - 1),
		lineShift: shift,
		inflight:  make(map[uint64]uint64, cfg.MSHRs*2),
	}
}

func (c *refCache) Stats() Stats { return c.stats }

func (c *refCache) LineAddr(addr uint64) uint64 { return addr >> c.lineShift << c.lineShift }

func (c *refCache) set(addr uint64) []refLine {
	idx := (addr >> c.lineShift) & c.setMask
	base := int(idx) * c.cfg.Ways
	return c.lines[base : base+c.cfg.Ways]
}

func (c *refCache) Lookup(addr uint64, now uint64, demand bool) LookupResult {
	la := c.LineAddr(addr)
	tag := la >> c.lineShift
	set := c.set(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			var res LookupResult
			res.Hit = true
			if demand {
				c.stamp++
				set[i].lastUse = c.stamp
				c.stats.Accesses++
				c.stats.Hits++
				if set[i].prefetched {
					set[i].prefetched = false
					res.WasPrefetched = true
					c.stats.PrefetchUseful++
				}
			}
			if ready, ok := c.inflight[la]; ok {
				if ready > now {
					res.ReadyAt = ready
					if demand && res.WasPrefetched {
						c.stats.PrefetchLate++
					}
				} else {
					delete(c.inflight, la)
				}
			}
			return res
		}
	}
	if demand {
		c.stats.Accesses++
		c.stats.Misses++
	}
	return LookupResult{}
}

func (c *refCache) Contains(addr uint64) bool {
	la := c.LineAddr(addr)
	tag := la >> c.lineShift
	set := c.set(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

func (c *refCache) Fill(addr uint64, readyAt uint64, prefetched, dirty bool) Victim {
	la := c.LineAddr(addr)
	tag := la >> c.lineShift
	set := c.set(addr)
	c.stamp++

	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lastUse = c.stamp
			if dirty {
				set[i].dirty = true
			}
			return Victim{}
		}
	}

	victimIdx := -1
	for i := range set {
		if !set[i].valid {
			victimIdx = i
			break
		}
	}
	var v Victim
	if victimIdx < 0 {
		victimIdx = 0
		for i := 1; i < len(set); i++ {
			if set[i].lastUse < set[victimIdx].lastUse {
				victimIdx = i
			}
		}
		old := set[victimIdx]
		v = Victim{Addr: old.tag << c.lineShift, Dirty: old.dirty, Valid: true, Prefetched: old.prefetched}
		c.stats.Evictions++
		if old.dirty {
			c.stats.Writebacks++
		}
		if old.prefetched {
			c.stats.PrefetchUnused++
		}
		delete(c.inflight, v.Addr)
	}
	set[victimIdx] = refLine{tag: tag, lastUse: c.stamp, valid: true, dirty: dirty, prefetched: prefetched}
	if prefetched {
		c.stats.PrefetchFills++
	}
	if readyAt > 0 {
		c.pruneInflight(readyAt)
		c.inflight[la] = readyAt
	}
	return v
}

func (c *refCache) MarkDirty(addr uint64) {
	la := c.LineAddr(addr)
	tag := la >> c.lineShift
	set := c.set(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].dirty = true
			return
		}
	}
}

func (c *refCache) InflightCount(now uint64) int {
	c.pruneInflight(now)
	return len(c.inflight)
}

func (c *refCache) MSHRFull(now uint64) bool {
	return c.InflightCount(now) >= c.cfg.MSHRs
}

func (c *refCache) pruneInflight(now uint64) {
	if len(c.inflight) < c.cfg.MSHRs {
		return
	}
	for a, ready := range c.inflight {
		if ready <= now {
			delete(c.inflight, a)
		}
	}
}

func (c *refCache) Invalidate(addr uint64) (wasDirty, wasValid bool) {
	la := c.LineAddr(addr)
	tag := la >> c.lineShift
	set := c.set(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			wasDirty = set[i].dirty
			set[i] = refLine{}
			delete(c.inflight, la)
			return wasDirty, true
		}
	}
	return false, false
}

// Package cache implements the set-associative caches of the simulated
// memory hierarchy: LRU replacement, dirty lines, prefetch bits for
// usefulness accounting, and an in-flight (MSHR-like) tracker that lets
// the synchronous timing model merge outstanding misses.
//
// The cache is a passive state container; the memory-hierarchy walk in
// package sim decides when to look up, fill, and forward requests.
//
// Everything here is on the simulator's per-instruction hot path, so
// the implementation is allocation-free and map-free in steady state:
// the MSHR tracker is a fixed-capacity array scanned linearly (it holds
// at most ~MSHRs entries, so a scan beats hashing), and Lookup memoizes
// the way it resolved — the matched way on a hit, the victim Fill would
// choose on a miss — so the Lookup-then-Fill and Lookup-then-MarkDirty
// patterns of the hierarchy walk touch each set exactly once.
package cache

import "fmt"

// Config describes one cache level.
type Config struct {
	Name       string
	Sets       int
	Ways       int
	LineBytes  uint64
	HitLatency uint64 // cycles
	MSHRs      int    // max distinct outstanding miss lines
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("cache %s: Sets must be a positive power of two, got %d", c.Name, c.Sets)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache %s: Ways must be positive, got %d", c.Name, c.Ways)
	}
	if c.LineBytes == 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache %s: LineBytes must be a positive power of two, got %d", c.Name, c.LineBytes)
	}
	if c.MSHRs <= 0 {
		return fmt.Errorf("cache %s: MSHRs must be positive, got %d", c.Name, c.MSHRs)
	}
	return nil
}

// SizeBytes returns the data capacity of the configuration.
func (c Config) SizeBytes() uint64 {
	return uint64(c.Sets) * uint64(c.Ways) * c.LineBytes
}

// Stats aggregates per-level counters.
type Stats struct {
	Accesses       uint64 // demand accesses
	Hits           uint64 // demand hits (including hits on in-flight lines)
	Misses         uint64 // demand misses
	Evictions      uint64
	Writebacks     uint64 // dirty evictions
	PrefetchFills  uint64 // lines filled by prefetch
	PrefetchUseful uint64 // prefetched lines later hit by demand
	PrefetchLate   uint64 // useful but demand arrived before the fill landed
	PrefetchUnused uint64 // prefetched lines evicted untouched
}

// Delta returns s - prev, counter-wise.
func (s Stats) Delta(prev Stats) Stats {
	return Stats{
		Accesses:       s.Accesses - prev.Accesses,
		Hits:           s.Hits - prev.Hits,
		Misses:         s.Misses - prev.Misses,
		Evictions:      s.Evictions - prev.Evictions,
		Writebacks:     s.Writebacks - prev.Writebacks,
		PrefetchFills:  s.PrefetchFills - prev.PrefetchFills,
		PrefetchUseful: s.PrefetchUseful - prev.PrefetchUseful,
		PrefetchLate:   s.PrefetchLate - prev.PrefetchLate,
		PrefetchUnused: s.PrefetchUnused - prev.PrefetchUnused,
	}
}

// line is one way of a set, packed into 16 bytes so a set walk streams
// through 2–4 host cache lines instead of 6: the tag word plus a meta
// word holding the LRU timestamp in the high bits and the state flags
// in the low three. The timestamp never overflows its 61 bits (that
// would take ~2e18 cache touches).
type line struct {
	tag  uint64
	meta uint64 // lastUse<<lineUseShift | flag bits
}

const (
	lineValid      = 1 << 0
	lineDirty      = 1 << 1
	linePrefetched = 1 << 2
	lineUseShift   = 3
)

// Victim describes a line displaced by a Fill.
type Victim struct {
	Addr  uint64 // line-aligned address of the evicted line
	Dirty bool
	Valid bool // false when an invalid way was used (no eviction)
	// Prefetched is true when the victim was filled by a prefetch and
	// never touched by demand (useless prefetch).
	Prefetched bool
}

// mshr is one tracked outstanding fill: the line address and the cycle
// its data lands. The tracker is an unordered array scanned linearly —
// it holds at most ~MSHRs entries, so a scan is faster than a map and
// never allocates.
type mshr struct {
	addr  uint64
	ready uint64
}

// Cache is one set-associative cache level.
type Cache struct {
	cfg       Config
	lines     []line // sets*ways, row-major by set
	setMask   uint64
	ways      int // copy of cfg.Ways, hot in setFor
	lineShift uint
	stamp     uint64
	stats     Stats

	// Way memo from the most recent Lookup: the matched way on a hit,
	// the way Fill would victimize on a miss. Valid while no mutation
	// has advanced the stamp; Fill and MarkDirty consult it to skip
	// re-walking the set in the Lookup-then-act patterns of the
	// hierarchy walk. A stale memo falls back to the full walk, so
	// correctness never depends on it.
	memoLine  uint64
	memoStamp uint64
	memoWay   int32 // -1 when no memo
	memoHit   bool

	// inflight tracks line address -> cycle at which the fill lands,
	// emulating MSHRs for the synchronous timing walk. State (the line
	// itself) is installed eagerly; timing consults this array.
	inflight []mshr
}

// New constructs a cache. It panics on invalid configuration (a
// programming error).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	shift := uint(0)
	for l := cfg.LineBytes; l > 1; l >>= 1 {
		shift++
	}
	return &Cache{
		cfg:       cfg,
		lines:     make([]line, cfg.Sets*cfg.Ways),
		setMask:   uint64(cfg.Sets - 1),
		ways:      cfg.Ways,
		lineShift: shift,
		memoWay:   -1,
		// One slot of slack: a fill whose completion precedes every
		// tracked entry is still recorded at capacity (see pruneInflight),
		// so occupancy can transiently exceed MSHRs.
		inflight: make([]mshr, 0, cfg.MSHRs+1),
	}
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters while leaving array contents, recency
// state, and in-flight fills untouched — the end-of-warmup transition:
// the timed region starts from warm arrays but counts from zero.
func (c *Cache) ResetStats() { c.stats = Stats{} }

// LineAddr aligns addr down to its cache line.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr >> c.lineShift << c.lineShift }

// setFor returns the ways of addr's set. lineNo is addr >> lineShift;
// it doubles as the tag, so callers compute the shift once.
func (c *Cache) setFor(lineNo uint64) []line {
	base := int(lineNo&c.setMask) * c.ways
	return c.lines[base : base+c.ways]
}

// memoFor reports whether the way memo applies to lineNo right now.
func (c *Cache) memoFor(lineNo uint64) bool {
	return c.memoWay >= 0 && c.memoLine == lineNo && c.memoStamp == c.stamp
}

// LookupResult describes the outcome of a Lookup.
type LookupResult struct {
	Hit bool
	// WasPrefetched is true if the hit line was filled by a prefetch and
	// this is the first demand touch (the bit is cleared by the lookup
	// when demand is true).
	WasPrefetched bool
	// ReadyAt is non-zero if the line is present but still in flight;
	// the requester must wait until this cycle.
	ReadyAt uint64
}

// Lookup performs a demand (demand=true) or probe (demand=false) lookup
// at cycle now. Demand lookups update LRU, stats, and prefetch-useful
// accounting; probes leave stats and LRU untouched (expired in-flight
// entries are retired either way).
func (c *Cache) Lookup(addr uint64, now uint64, demand bool) LookupResult {
	lineNo := addr >> c.lineShift
	set := c.setFor(lineNo)
	// Victim selection is fused into the tag walk so a miss costs one
	// pass over the set instead of two: track the first invalid way and
	// the LRU valid way as we search. The choice is identical to a
	// separate victimWay scan (first invalid, else lowest lastUse with
	// lowest index breaking ties).
	invalid, lru := -1, -1
	var minUse uint64
	for i := range set {
		m := set[i].meta
		if m&lineValid == 0 {
			if invalid < 0 {
				invalid = i
			}
			continue
		}
		if set[i].tag == lineNo {
			var res LookupResult
			res.Hit = true
			if demand {
				c.stamp++
				c.stats.Accesses++
				c.stats.Hits++
				if m&linePrefetched != 0 {
					res.WasPrefetched = true
					c.stats.PrefetchUseful++
				}
				// Refresh LRU; a demand touch clears the prefetched bit.
				set[i].meta = c.stamp<<lineUseShift | lineValid | (m & lineDirty)
			}
			if len(c.inflight) != 0 {
				if j := c.findInflight(lineNo << c.lineShift); j >= 0 {
					if ready := c.inflight[j].ready; ready > now {
						res.ReadyAt = ready
						if demand && res.WasPrefetched {
							c.stats.PrefetchLate++
						}
					} else {
						c.removeInflightAt(j)
					}
				}
			}
			c.memoLine, c.memoStamp, c.memoWay, c.memoHit = lineNo, c.stamp, int32(i), true
			return res
		}
		if use := m >> lineUseShift; lru < 0 || use < minUse {
			lru, minUse = i, use
		}
	}
	if demand {
		c.stats.Accesses++
		c.stats.Misses++
	}
	victim := invalid
	if victim < 0 {
		victim = lru
	}
	c.memoLine, c.memoStamp, c.memoWay, c.memoHit = lineNo, c.stamp, int32(victim), false
	return LookupResult{}
}

// Contains reports whether addr's line is present (no side effects).
func (c *Cache) Contains(addr uint64) bool {
	lineNo := addr >> c.lineShift
	set := c.setFor(lineNo)
	for i := range set {
		if set[i].meta&lineValid != 0 && set[i].tag == lineNo {
			return true
		}
	}
	return false
}

// Fill installs addr's line, evicting the LRU way if needed, and records
// it as in flight until readyAt. prefetched marks the line for
// usefulness accounting; dirty marks it modified (e.g. a store fill or a
// writeback from above). A valid way memo from a preceding Lookup of the
// same line resolves the target way directly; otherwise present-check
// and victim selection share one walk of the set.
func (c *Cache) Fill(addr uint64, readyAt uint64, prefetched, dirty bool) Victim {
	lineNo := addr >> c.lineShift
	set := c.setFor(lineNo)
	c.stamp++
	if c.memoStamp == c.stamp-1 && c.memoLine == lineNo && c.memoWay >= 0 {
		if c.memoHit {
			// Already present (e.g. racing prefetch and demand): refresh.
			m := set[c.memoWay].meta
			nm := c.stamp<<lineUseShift | (m & (lineValid | lineDirty | linePrefetched))
			if dirty {
				nm |= lineDirty
			}
			set[c.memoWay].meta = nm
			return Victim{}
		}
		return c.fillAt(set, int(c.memoWay), lineNo, readyAt, prefetched, dirty)
	}

	firstInvalid, lru := -1, -1
	var minUse uint64
	for i := range set {
		m := set[i].meta
		if m&lineValid == 0 {
			if firstInvalid < 0 {
				firstInvalid = i
			}
			continue
		}
		if set[i].tag == lineNo {
			// Already present: refresh.
			nm := c.stamp<<lineUseShift | (m & (lineValid | lineDirty | linePrefetched))
			if dirty {
				nm |= lineDirty
			}
			set[i].meta = nm
			return Victim{}
		}
		if use := m >> lineUseShift; lru < 0 || use < minUse {
			lru, minUse = i, use
		}
	}
	victimIdx := firstInvalid
	if victimIdx < 0 {
		victimIdx = lru
	}
	return c.fillAt(set, victimIdx, lineNo, readyAt, prefetched, dirty)
}

// fillAt installs lineNo at victimIdx (accounting any eviction) and
// tracks the fill in flight. The caller has already bumped the stamp
// and established that lineNo is absent from the set.
func (c *Cache) fillAt(set []line, victimIdx int, lineNo, readyAt uint64, prefetched, dirty bool) Victim {
	var v Victim
	old := &set[victimIdx]
	if om := old.meta; om&lineValid != 0 {
		v = Victim{Addr: old.tag << c.lineShift, Dirty: om&lineDirty != 0, Valid: true, Prefetched: om&linePrefetched != 0}
		c.stats.Evictions++
		if om&lineDirty != 0 {
			c.stats.Writebacks++
		}
		if om&linePrefetched != 0 {
			c.stats.PrefetchUnused++
		}
		c.dropInflight(v.Addr)
	}
	nm := c.stamp<<lineUseShift | lineValid
	if dirty {
		nm |= lineDirty
	}
	if prefetched {
		nm |= linePrefetched
	}
	*old = line{tag: lineNo, meta: nm}
	if prefetched {
		c.stats.PrefetchFills++
	}
	if readyAt > 0 {
		c.pruneInflight(readyAt)
		c.inflight = append(c.inflight, mshr{addr: lineNo << c.lineShift, ready: readyAt})
	}
	return v
}

// MarkDirty sets the dirty bit on addr's line if present (store hit).
// A valid hit memo from a preceding Lookup resolves the way directly.
func (c *Cache) MarkDirty(addr uint64) {
	lineNo := addr >> c.lineShift
	set := c.setFor(lineNo)
	if c.memoFor(lineNo) {
		if c.memoHit {
			set[c.memoWay].meta |= lineDirty
		}
		return
	}
	for i := range set {
		if set[i].meta&lineValid != 0 && set[i].tag == lineNo {
			set[i].meta |= lineDirty
			return
		}
	}
}

// findInflight returns the tracker index of line address la, or -1.
func (c *Cache) findInflight(la uint64) int {
	for i := range c.inflight {
		if c.inflight[i].addr == la {
			return i
		}
	}
	return -1
}

// removeInflightAt drops entry i (order is not maintained).
func (c *Cache) removeInflightAt(i int) {
	last := len(c.inflight) - 1
	c.inflight[i] = c.inflight[last]
	c.inflight = c.inflight[:last]
}

// dropInflight removes la's entry if tracked.
func (c *Cache) dropInflight(la uint64) {
	if len(c.inflight) == 0 {
		return
	}
	if i := c.findInflight(la); i >= 0 {
		c.removeInflightAt(i)
	}
}

// InflightCount returns the number of tracked outstanding fills (after
// pruning entries that have completed by now).
func (c *Cache) InflightCount(now uint64) int {
	c.pruneInflight(now)
	return len(c.inflight)
}

// MSHRFull reports whether a new distinct miss can be tracked at cycle
// now.
func (c *Cache) MSHRFull(now uint64) bool {
	return c.InflightCount(now) >= c.cfg.MSHRs
}

// pruneInflight drops inflight entries that completed at or before now,
// but only once the tracker is at capacity — matching the lazy pruning
// the timing model was validated with.
func (c *Cache) pruneInflight(now uint64) {
	if len(c.inflight) < c.cfg.MSHRs {
		return
	}
	for i := 0; i < len(c.inflight); {
		if c.inflight[i].ready <= now {
			c.removeInflightAt(i)
		} else {
			i++
		}
	}
}

// Invalidate drops addr's line if present, returning whether it was
// dirty (caller may need to write it back). Invalidation advances the
// LRU stamp so a stale way memo cannot resolve against the changed set.
func (c *Cache) Invalidate(addr uint64) (wasDirty, wasValid bool) {
	lineNo := addr >> c.lineShift
	set := c.setFor(lineNo)
	for i := range set {
		if set[i].meta&lineValid != 0 && set[i].tag == lineNo {
			c.stamp++
			wasDirty = set[i].meta&lineDirty != 0
			set[i] = line{}
			c.dropInflight(lineNo << c.lineShift)
			return wasDirty, true
		}
	}
	return false, false
}

// Package cache implements the set-associative caches of the simulated
// memory hierarchy: LRU replacement, dirty lines, prefetch bits for
// usefulness accounting, and an in-flight (MSHR-like) tracker that lets
// the synchronous timing model merge outstanding misses.
//
// The cache is a passive state container; the memory-hierarchy walk in
// package sim decides when to look up, fill, and forward requests.
package cache

import "fmt"

// Config describes one cache level.
type Config struct {
	Name       string
	Sets       int
	Ways       int
	LineBytes  uint64
	HitLatency uint64 // cycles
	MSHRs      int    // max distinct outstanding miss lines
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Sets <= 0 || c.Sets&(c.Sets-1) != 0 {
		return fmt.Errorf("cache %s: Sets must be a positive power of two, got %d", c.Name, c.Sets)
	}
	if c.Ways <= 0 {
		return fmt.Errorf("cache %s: Ways must be positive, got %d", c.Name, c.Ways)
	}
	if c.LineBytes == 0 || c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cache %s: LineBytes must be a positive power of two, got %d", c.Name, c.LineBytes)
	}
	if c.MSHRs <= 0 {
		return fmt.Errorf("cache %s: MSHRs must be positive, got %d", c.Name, c.MSHRs)
	}
	return nil
}

// SizeBytes returns the data capacity of the configuration.
func (c Config) SizeBytes() uint64 {
	return uint64(c.Sets) * uint64(c.Ways) * c.LineBytes
}

// Stats aggregates per-level counters.
type Stats struct {
	Accesses       uint64 // demand accesses
	Hits           uint64 // demand hits (including hits on in-flight lines)
	Misses         uint64 // demand misses
	Evictions      uint64
	Writebacks     uint64 // dirty evictions
	PrefetchFills  uint64 // lines filled by prefetch
	PrefetchUseful uint64 // prefetched lines later hit by demand
	PrefetchLate   uint64 // useful but demand arrived before the fill landed
	PrefetchUnused uint64 // prefetched lines evicted untouched
}

// Delta returns s - prev, counter-wise.
func (s Stats) Delta(prev Stats) Stats {
	return Stats{
		Accesses:       s.Accesses - prev.Accesses,
		Hits:           s.Hits - prev.Hits,
		Misses:         s.Misses - prev.Misses,
		Evictions:      s.Evictions - prev.Evictions,
		Writebacks:     s.Writebacks - prev.Writebacks,
		PrefetchFills:  s.PrefetchFills - prev.PrefetchFills,
		PrefetchUseful: s.PrefetchUseful - prev.PrefetchUseful,
		PrefetchLate:   s.PrefetchLate - prev.PrefetchLate,
		PrefetchUnused: s.PrefetchUnused - prev.PrefetchUnused,
	}
}

type line struct {
	tag        uint64
	lastUse    uint64 // LRU timestamp
	valid      bool
	dirty      bool
	prefetched bool
}

// Victim describes a line displaced by a Fill.
type Victim struct {
	Addr  uint64 // line-aligned address of the evicted line
	Dirty bool
	Valid bool // false when an invalid way was used (no eviction)
	// Prefetched is true when the victim was filled by a prefetch and
	// never touched by demand (useless prefetch).
	Prefetched bool
}

// Cache is one set-associative cache level.
type Cache struct {
	cfg       Config
	lines     []line // sets*ways, row-major by set
	setMask   uint64
	lineShift uint
	stamp     uint64
	stats     Stats

	// inflight maps line address -> cycle at which the fill lands,
	// emulating MSHRs for the synchronous timing walk. State (the line
	// itself) is installed eagerly; timing consults this map.
	inflight map[uint64]uint64
}

// New constructs a cache. It panics on invalid configuration (a
// programming error).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	shift := uint(0)
	for l := cfg.LineBytes; l > 1; l >>= 1 {
		shift++
	}
	return &Cache{
		cfg:       cfg,
		lines:     make([]line, cfg.Sets*cfg.Ways),
		setMask:   uint64(cfg.Sets - 1),
		lineShift: shift,
		inflight:  make(map[uint64]uint64, cfg.MSHRs*2),
	}
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats { return c.stats }

// LineAddr aligns addr down to its cache line.
func (c *Cache) LineAddr(addr uint64) uint64 { return addr >> c.lineShift << c.lineShift }

func (c *Cache) set(addr uint64) []line {
	idx := (addr >> c.lineShift) & c.setMask
	base := int(idx) * c.cfg.Ways
	return c.lines[base : base+c.cfg.Ways]
}

// LookupResult describes the outcome of a Lookup.
type LookupResult struct {
	Hit bool
	// WasPrefetched is true if the hit line was filled by a prefetch and
	// this is the first demand touch (the bit is cleared by the lookup
	// when demand is true).
	WasPrefetched bool
	// ReadyAt is non-zero if the line is present but still in flight;
	// the requester must wait until this cycle.
	ReadyAt uint64
}

// Lookup performs a demand (demand=true) or probe (demand=false) lookup
// at cycle now. Demand lookups update LRU, stats, and prefetch-useful
// accounting; probes are side-effect-free except for nothing at all.
func (c *Cache) Lookup(addr uint64, now uint64, demand bool) LookupResult {
	la := c.LineAddr(addr)
	tag := la >> c.lineShift
	set := c.set(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			var res LookupResult
			res.Hit = true
			if demand {
				c.stamp++
				set[i].lastUse = c.stamp
				c.stats.Accesses++
				c.stats.Hits++
				if set[i].prefetched {
					set[i].prefetched = false
					res.WasPrefetched = true
					c.stats.PrefetchUseful++
				}
			}
			if ready, ok := c.inflight[la]; ok {
				if ready > now {
					res.ReadyAt = ready
					if demand && res.WasPrefetched {
						c.stats.PrefetchLate++
					}
				} else {
					delete(c.inflight, la)
				}
			}
			return res
		}
	}
	if demand {
		c.stats.Accesses++
		c.stats.Misses++
	}
	return LookupResult{}
}

// Contains reports whether addr's line is present (no side effects).
func (c *Cache) Contains(addr uint64) bool {
	la := c.LineAddr(addr)
	tag := la >> c.lineShift
	set := c.set(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// Fill installs addr's line, evicting the LRU way if needed, and records
// it as in flight until readyAt. prefetched marks the line for
// usefulness accounting; dirty marks it modified (e.g. a store fill or a
// writeback from above).
func (c *Cache) Fill(addr uint64, readyAt uint64, prefetched, dirty bool) Victim {
	la := c.LineAddr(addr)
	tag := la >> c.lineShift
	set := c.set(addr)
	c.stamp++

	// Already present (e.g. racing prefetch and demand): refresh flags.
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].lastUse = c.stamp
			if dirty {
				set[i].dirty = true
			}
			return Victim{}
		}
	}

	victimIdx := -1
	for i := range set {
		if !set[i].valid {
			victimIdx = i
			break
		}
	}
	var v Victim
	if victimIdx < 0 {
		victimIdx = 0
		for i := 1; i < len(set); i++ {
			if set[i].lastUse < set[victimIdx].lastUse {
				victimIdx = i
			}
		}
		old := set[victimIdx]
		v = Victim{Addr: old.tag << c.lineShift, Dirty: old.dirty, Valid: true, Prefetched: old.prefetched}
		c.stats.Evictions++
		if old.dirty {
			c.stats.Writebacks++
		}
		if old.prefetched {
			c.stats.PrefetchUnused++
		}
		delete(c.inflight, v.Addr)
	}
	set[victimIdx] = line{tag: tag, lastUse: c.stamp, valid: true, dirty: dirty, prefetched: prefetched}
	if prefetched {
		c.stats.PrefetchFills++
	}
	if readyAt > 0 {
		c.pruneInflight(readyAt)
		c.inflight[la] = readyAt
	}
	return v
}

// MarkDirty sets the dirty bit on addr's line if present (store hit).
func (c *Cache) MarkDirty(addr uint64) {
	la := c.LineAddr(addr)
	tag := la >> c.lineShift
	set := c.set(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].dirty = true
			return
		}
	}
}

// InflightCount returns the number of tracked outstanding fills (after
// pruning entries that have completed by now).
func (c *Cache) InflightCount(now uint64) int {
	c.pruneInflight(now)
	return len(c.inflight)
}

// MSHRFull reports whether a new distinct miss can be tracked at cycle
// now.
func (c *Cache) MSHRFull(now uint64) bool {
	return c.InflightCount(now) >= c.cfg.MSHRs
}

// pruneInflight drops inflight entries that completed at or before now.
// The map stays small (bounded by MSHRs in steady state) so a full scan
// is fine.
func (c *Cache) pruneInflight(now uint64) {
	if len(c.inflight) < c.cfg.MSHRs {
		return
	}
	for a, ready := range c.inflight {
		if ready <= now {
			delete(c.inflight, a)
		}
	}
}

// Invalidate drops addr's line if present, returning whether it was
// dirty (caller may need to write it back).
func (c *Cache) Invalidate(addr uint64) (wasDirty, wasValid bool) {
	la := c.LineAddr(addr)
	tag := la >> c.lineShift
	set := c.set(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			wasDirty = set[i].dirty
			set[i] = line{}
			delete(c.inflight, la)
			return wasDirty, true
		}
	}
	return false, false
}

package cache

import (
	"testing"
	"testing/quick"

	"micromama/internal/xrand"
)

func testCfg(sets, ways int) Config {
	return Config{Name: "test", Sets: sets, Ways: ways, LineBytes: 64, HitLatency: 4, MSHRs: 8}
}

func TestConfigValidate(t *testing.T) {
	good := testCfg(16, 4)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{Name: "sets0", Sets: 0, Ways: 1, LineBytes: 64, MSHRs: 1},
		{Name: "setsNP2", Sets: 3, Ways: 1, LineBytes: 64, MSHRs: 1},
		{Name: "ways0", Sets: 2, Ways: 0, LineBytes: 64, MSHRs: 1},
		{Name: "line0", Sets: 2, Ways: 1, LineBytes: 0, MSHRs: 1},
		{Name: "lineNP2", Sets: 2, Ways: 1, LineBytes: 48, MSHRs: 1},
		{Name: "mshr0", Sets: 2, Ways: 1, LineBytes: 64, MSHRs: 0},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %q validated but should not", c.Name)
		}
	}
}

func TestSizeBytes(t *testing.T) {
	c := Config{Sets: 1024, Ways: 16, LineBytes: 64}
	if got := c.SizeBytes(); got != 1<<20 {
		t.Errorf("SizeBytes = %d, want 1 MiB", got)
	}
}

func TestHitAfterFill(t *testing.T) {
	c := New(testCfg(16, 2))
	addr := uint64(0x1000)
	if r := c.Lookup(addr, 0, true); r.Hit {
		t.Fatal("hit in empty cache")
	}
	c.Fill(addr, 0, false, false)
	if r := c.Lookup(addr, 10, true); !r.Hit {
		t.Fatal("miss after fill")
	}
	st := c.Stats()
	if st.Accesses != 2 || st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestLineGranularity(t *testing.T) {
	c := New(testCfg(16, 2))
	c.Fill(0x1000, 0, false, false)
	if r := c.Lookup(0x103F, 0, true); !r.Hit {
		t.Error("same-line offset missed")
	}
	if r := c.Lookup(0x1040, 0, true); r.Hit {
		t.Error("next line hit unexpectedly")
	}
}

func TestLRUEviction(t *testing.T) {
	// 1 set, 2 ways: fill A, B, touch A, fill C -> B evicted.
	cfg := testCfg(1, 2)
	c := New(cfg)
	a, b, d := uint64(0x0), uint64(0x40), uint64(0x80)
	c.Fill(a, 0, false, false)
	c.Fill(b, 0, false, false)
	c.Lookup(a, 5, true) // promote A
	v := c.Fill(d, 0, false, false)
	if !v.Valid || v.Addr != b {
		t.Fatalf("evicted %+v, want line B (%#x)", v, b)
	}
	if !c.Contains(a) || !c.Contains(d) || c.Contains(b) {
		t.Error("post-eviction contents wrong")
	}
}

func TestDirtyVictim(t *testing.T) {
	c := New(testCfg(1, 1))
	c.Fill(0x0, 0, false, true) // dirty fill
	v := c.Fill(0x40, 0, false, false)
	if !v.Valid || !v.Dirty {
		t.Errorf("victim = %+v, want dirty", v)
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.Stats().Writebacks)
	}
}

func TestMarkDirty(t *testing.T) {
	c := New(testCfg(1, 1))
	c.Fill(0x0, 0, false, false)
	c.MarkDirty(0x8) // same line
	v := c.Fill(0x40, 0, false, false)
	if !v.Dirty {
		t.Error("MarkDirty did not stick")
	}
}

func TestPrefetchUsefulAccounting(t *testing.T) {
	c := New(testCfg(16, 2))
	c.Fill(0x1000, 0, true, false)
	r := c.Lookup(0x1000, 10, true)
	if !r.Hit || !r.WasPrefetched {
		t.Fatalf("lookup = %+v, want prefetched hit", r)
	}
	st := c.Stats()
	if st.PrefetchFills != 1 || st.PrefetchUseful != 1 {
		t.Errorf("stats = %+v", st)
	}
	// Second demand touch is no longer "prefetched".
	if r := c.Lookup(0x1000, 20, true); r.WasPrefetched {
		t.Error("prefetch bit not cleared after first demand hit")
	}
}

func TestPrefetchUnusedOnEviction(t *testing.T) {
	c := New(testCfg(1, 1))
	c.Fill(0x0, 0, true, false)
	v := c.Fill(0x40, 0, false, false)
	if !v.Prefetched {
		t.Error("victim should report unused prefetch")
	}
	if c.Stats().PrefetchUnused != 1 {
		t.Errorf("PrefetchUnused = %d, want 1", c.Stats().PrefetchUnused)
	}
}

func TestInflightLateness(t *testing.T) {
	c := New(testCfg(16, 2))
	c.Fill(0x1000, 100, true, false) // fill lands at cycle 100
	r := c.Lookup(0x1000, 50, true)  // demand arrives early
	if !r.Hit || r.ReadyAt != 100 {
		t.Fatalf("lookup = %+v, want hit with ReadyAt 100", r)
	}
	if c.Stats().PrefetchLate != 1 {
		t.Errorf("PrefetchLate = %d, want 1", c.Stats().PrefetchLate)
	}
	// After the fill completes, no more wait.
	c.Fill(0x2000, 120, false, false)
	if r := c.Lookup(0x2000, 200, true); r.ReadyAt != 0 {
		t.Errorf("completed fill still reports ReadyAt %d", r.ReadyAt)
	}
}

func TestProbeLookupIsSideEffectFree(t *testing.T) {
	c := New(testCfg(16, 2))
	c.Fill(0x1000, 0, true, false)
	before := c.Stats()
	r := c.Lookup(0x1000, 10, false)
	if !r.Hit {
		t.Error("probe missed")
	}
	if c.Stats() != before {
		t.Error("probe lookup mutated stats")
	}
	// The prefetch bit must survive probes.
	if r := c.Lookup(0x1000, 10, true); !r.WasPrefetched {
		t.Error("probe consumed the prefetch bit")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(testCfg(16, 2))
	c.Fill(0x1000, 0, false, true)
	dirty, valid := c.Invalidate(0x1000)
	if !dirty || !valid {
		t.Errorf("Invalidate = (%v, %v), want dirty valid", dirty, valid)
	}
	if c.Contains(0x1000) {
		t.Error("line present after Invalidate")
	}
	if _, valid := c.Invalidate(0x9999000); valid {
		t.Error("Invalidate of absent line reported valid")
	}
}

func TestFillExistingRefreshes(t *testing.T) {
	c := New(testCfg(1, 2))
	c.Fill(0x0, 0, false, false)
	c.Fill(0x40, 0, false, false)
	// Re-fill A (e.g. racing prefetch): must not evict anything and must
	// promote A so B is the LRU victim.
	if v := c.Fill(0x0, 0, false, true); v.Valid {
		t.Errorf("refill evicted %+v", v)
	}
	v := c.Fill(0x80, 0, false, false)
	if v.Addr != 0x40 {
		t.Errorf("evicted %#x, want 0x40", v.Addr)
	}
}

func TestStatsDelta(t *testing.T) {
	a := Stats{Accesses: 10, Hits: 6, Misses: 4}
	b := Stats{Accesses: 25, Hits: 15, Misses: 10}
	d := b.Delta(a)
	if d.Accesses != 15 || d.Hits != 9 || d.Misses != 6 {
		t.Errorf("Delta = %+v", d)
	}
}

// Property: against a reference model, Contains agrees and the number of
// resident lines never exceeds capacity.
func TestQuickAgainstReferenceModel(t *testing.T) {
	f := func(seed uint64) bool {
		cfg := testCfg(4, 2)
		c := New(cfg)
		r := xrand.New(seed)
		resident := map[uint64]bool{}
		for i := 0; i < 500; i++ {
			addr := uint64(r.Intn(32)) * 64 // 32 distinct lines over 4 sets
			switch r.Intn(3) {
			case 0:
				v := c.Fill(addr, 0, r.Intn(2) == 0, r.Intn(2) == 0)
				resident[addr] = true
				if v.Valid {
					delete(resident, v.Addr)
				}
			case 1:
				got := c.Lookup(addr, uint64(i), true).Hit
				if got != resident[addr] {
					return false
				}
			default:
				c.Invalidate(addr)
				delete(resident, addr)
			}
			if len(resident) > cfg.Sets*cfg.Ways {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: hits + misses == demand accesses.
func TestQuickStatsConsistent(t *testing.T) {
	f := func(seed uint64) bool {
		c := New(testCfg(8, 2))
		r := xrand.New(seed)
		for i := 0; i < 300; i++ {
			addr := uint64(r.Intn(64)) * 64
			if r.Intn(2) == 0 {
				c.Lookup(addr, uint64(i), true)
			} else {
				c.Fill(addr, 0, false, false)
			}
		}
		st := c.Stats()
		return st.Hits+st.Misses == st.Accesses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

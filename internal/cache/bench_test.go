package cache

import "testing"

// Hot-path microbenchmarks. The per-instruction simulator loop performs
// a demand lookup per access plus a fill per miss, so these gate both
// ns/op and — after the allocation-free rewrite — allocs/op == 0.

func benchCfg() Config {
	return Config{Name: "bench", Sets: 64, Ways: 12, LineBytes: 64, HitLatency: 5, MSHRs: 8}
}

func BenchmarkLookupHit(b *testing.B) {
	c := New(benchCfg())
	const lines = 32
	for i := 0; i < lines; i++ {
		c.Fill(uint64(i)*64, 0, false, false)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(uint64(i%lines)*64, uint64(i), true)
	}
}

func BenchmarkLookupHitInflight(b *testing.B) {
	// Hits on lines whose fills never complete: exercises the MSHR
	// tracker scan on every lookup.
	c := New(benchCfg())
	const lines = 8
	for i := 0; i < lines; i++ {
		c.Fill(uint64(i)*64, 1<<62, false, false)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(uint64(i%lines)*64, uint64(i), true)
	}
}

func BenchmarkLookupMiss(b *testing.B) {
	c := New(benchCfg())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// 1<<20 distinct lines: far beyond capacity, always missing.
		c.Lookup(uint64(i%(1<<20))*64, uint64(i), true)
	}
}

func BenchmarkFillEvict(b *testing.B) {
	// Steady-state fills into a full cache, each tracked in flight
	// until shortly after issue: lookup-miss + fill + eviction +
	// MSHR insert/prune per iteration — the full miss-path cost.
	c := New(benchCfg())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := uint64(i)
		addr := uint64(i%(1<<20)) * 64
		c.Lookup(addr, now, true)
		c.Fill(addr, now+200, false, false)
	}
}

func BenchmarkMarkDirty(b *testing.B) {
	c := New(benchCfg())
	const lines = 32
	for i := 0; i < lines; i++ {
		c.Fill(uint64(i)*64, 0, false, false)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.MarkDirty(uint64(i%lines) * 64)
	}
}

package cache

import (
	"encoding/binary"
	"testing"

	"micromama/internal/xrand"
)

// Differential testing: the optimized Cache and the map-based refCache
// consume identical operation streams and must report identical
// observable behavior after every step — lookup outcomes, victims,
// invalidations, MSHR occupancy, and the full Stats counters.
//
// The byte-stream driver is shared between the native fuzzer
// (FuzzCacheVsReference; run `go test -fuzz=FuzzCacheVsReference
// ./internal/cache` for a long adversarial session) and a seeded soak
// test that runs on every `go test`.

var diffCfgs = []Config{
	{Name: "l1-like", Sets: 4, Ways: 3, LineBytes: 64, HitLatency: 5, MSHRs: 4},
	{Name: "direct", Sets: 8, Ways: 1, LineBytes: 32, HitLatency: 4, MSHRs: 2},
	{Name: "fat", Sets: 2, Ways: 8, LineBytes: 128, HitLatency: 10, MSHRs: 8},
	{Name: "mshr1", Sets: 4, Ways: 2, LineBytes: 64, HitLatency: 4, MSHRs: 1},
}

// applyOps drives both models with the operation stream encoded in
// data, reporting the first divergence. Addresses are confined to a
// small line space so sets collide, evictions are common, and the MSHR
// tracker saturates.
func applyOps(t *testing.T, cfg Config, data []byte) {
	t.Helper()
	got := New(cfg)
	want := newRefCache(cfg)

	var now uint64
	for step := 0; len(data) >= 4; step++ {
		op := data[0] % 8
		// 64 distinct lines; a few high bits keep tags from being
		// pure set indices.
		addr := (uint64(data[1]) % 64) * cfg.LineBytes
		if data[1]&0x80 != 0 {
			addr |= 1 << 40
		}
		addr += uint64(data[2]) % cfg.LineBytes // sub-line offset
		arg := uint64(data[3])
		data = data[4:]
		now += arg % 7 // time advances irregularly

		switch op {
		case 0, 1: // demand lookup (weighted: the hot path)
			g := got.Lookup(addr, now, true)
			w := want.Lookup(addr, now, true)
			compareLookup(t, step, "demand lookup", g, w)
		case 2: // probe lookup
			g := got.Lookup(addr, now, false)
			w := want.Lookup(addr, now, false)
			compareLookup(t, step, "probe lookup", g, w)
		case 3, 4: // fill, sometimes tracked in flight
			readyAt := uint64(0)
			if arg%3 != 0 {
				readyAt = now + 1 + arg%97
			}
			gv := got.Fill(addr, readyAt, arg&8 != 0, arg&16 != 0)
			wv := want.Fill(addr, readyAt, arg&8 != 0, arg&16 != 0)
			if gv != wv {
				t.Fatalf("step %d: fill victim diverged: got %+v want %+v", step, gv, wv)
			}
		case 5: // mark dirty
			got.MarkDirty(addr)
			want.MarkDirty(addr)
		case 6: // invalidate
			gd, gv := got.Invalidate(addr)
			wd, wv := want.Invalidate(addr)
			if gd != wd || gv != wv {
				t.Fatalf("step %d: invalidate diverged: got (%v,%v) want (%v,%v)", step, gd, gv, wd, wv)
			}
		case 7: // MSHR occupancy probes
			if g, w := got.Contains(addr), want.Contains(addr); g != w {
				t.Fatalf("step %d: contains diverged: got %v want %v", step, g, w)
			}
			if g, w := got.InflightCount(now), want.InflightCount(now); g != w {
				t.Fatalf("step %d: inflight count diverged: got %d want %d", step, g, w)
			}
			if g, w := got.MSHRFull(now), want.MSHRFull(now); g != w {
				t.Fatalf("step %d: MSHRFull diverged: got %v want %v", step, g, w)
			}
		}
		if gs, ws := got.Stats(), want.Stats(); gs != ws {
			t.Fatalf("step %d: stats diverged:\n got %+v\nwant %+v", step, gs, ws)
		}
	}
}

func compareLookup(t *testing.T, step int, what string, g, w LookupResult) {
	t.Helper()
	if g.Hit != w.Hit || g.WasPrefetched != w.WasPrefetched || g.ReadyAt != w.ReadyAt {
		t.Fatalf("step %d: %s diverged: got {Hit:%v WasPrefetched:%v ReadyAt:%d} want {Hit:%v WasPrefetched:%v ReadyAt:%d}",
			step, what, g.Hit, g.WasPrefetched, g.ReadyAt, w.Hit, w.WasPrefetched, w.ReadyAt)
	}
}

func FuzzCacheVsReference(f *testing.F) {
	f.Add(uint8(0), []byte{0, 1, 2, 3, 4, 5, 6, 7})
	f.Add(uint8(1), []byte{3, 10, 0, 5, 0, 10, 0, 0, 3, 10, 0, 7, 6, 10, 0, 0})
	seedRNG := xrand.New(42)
	seed := make([]byte, 512)
	for i := range seed {
		seed[i] = byte(seedRNG.Uint64())
	}
	f.Add(uint8(2), seed)
	f.Fuzz(func(t *testing.T, cfgSel uint8, data []byte) {
		applyOps(t, diffCfgs[int(cfgSel)%len(diffCfgs)], data)
	})
}

// TestCacheDifferentialSoak runs the differential driver over seeded
// pseudo-random streams on every plain `go test` invocation. Short mode
// trims the stream count.
func TestCacheDifferentialSoak(t *testing.T) {
	streams := 60
	if testing.Short() {
		streams = 8
	}
	r := xrand.New(20250806)
	buf := make([]byte, 4096)
	for s := 0; s < streams; s++ {
		for i := 0; i+8 <= len(buf); i += 8 {
			binary.LittleEndian.PutUint64(buf[i:], r.Uint64())
		}
		cfg := diffCfgs[s%len(diffCfgs)]
		t.Run(cfg.Name, func(t *testing.T) { applyOps(t, cfg, buf) })
	}
}

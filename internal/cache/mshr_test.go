package cache

import "testing"

// MSHR-tracker edge cases, pinned against the pre-optimization model so
// the allocation-free rewrite reproduces it exactly.

func mshrCfg(mshrs int) Config {
	return Config{Name: "mshr", Sets: 16, Ways: 2, LineBytes: 64, HitLatency: 4, MSHRs: mshrs}
}

func TestMSHRFullAtExactlyConfigured(t *testing.T) {
	const mshrs = 4
	c := New(mshrCfg(mshrs))
	// Track mshrs distinct lines, all landing in the future.
	for i := 0; i < mshrs; i++ {
		c.Fill(uint64(i)*64, 1000+uint64(i), false, false)
		wantFull := i == mshrs-1
		if got := c.MSHRFull(0); got != wantFull {
			t.Fatalf("after %d fills: MSHRFull = %v, want %v", i+1, got, wantFull)
		}
	}
	if got := c.InflightCount(0); got != mshrs {
		t.Fatalf("InflightCount = %d, want %d", got, mshrs)
	}
	// Once the earliest fill lands, the tracker frees a slot.
	if c.MSHRFull(1000) {
		t.Error("MSHRFull after the first fill completed")
	}
}

func TestMSHRInflightEntryEvictedByFill(t *testing.T) {
	// 1 set x 1 way: the second fill evicts the first line, and the
	// evicted line's inflight entry must be dropped with it.
	cfg := Config{Name: "tiny", Sets: 1, Ways: 1, LineBytes: 64, HitLatency: 4, MSHRs: 8}
	c := New(cfg)
	c.Fill(0x000, 500, false, false) // line A, in flight until 500
	if got := c.InflightCount(0); got != 1 {
		t.Fatalf("InflightCount = %d, want 1", got)
	}
	v := c.Fill(0x040, 600, false, false) // line B evicts A
	if !v.Valid || v.Addr != 0x000 {
		t.Fatalf("victim = %+v, want line A", v)
	}
	// Only B's entry remains; A's tracked fill went with the eviction.
	if got := c.InflightCount(0); got != 1 {
		t.Errorf("InflightCount = %d after eviction, want 1 (B only)", got)
	}
	if r := c.Lookup(0x040, 100, true); r.ReadyAt != 600 {
		t.Errorf("B ReadyAt = %d, want 600", r.ReadyAt)
	}
	// Refilling A tracks it afresh (no stale entry resurrected).
	c.Fill(0x000, 700, false, false)
	if r := c.Lookup(0x000, 100, true); r.ReadyAt != 700 {
		t.Errorf("refilled A ReadyAt = %d, want 700", r.ReadyAt)
	}
}

func TestMSHRInvalidateInflightLine(t *testing.T) {
	c := New(mshrCfg(4))
	c.Fill(0x1000, 500, false, true)
	if got := c.InflightCount(0); got != 1 {
		t.Fatalf("InflightCount = %d, want 1", got)
	}
	dirty, valid := c.Invalidate(0x1000)
	if !dirty || !valid {
		t.Fatalf("Invalidate = (%v, %v), want dirty valid", dirty, valid)
	}
	if got := c.InflightCount(0); got != 0 {
		t.Errorf("InflightCount = %d after Invalidate, want 0", got)
	}
	// A subsequent lookup of a refilled line must not inherit the old
	// in-flight completion time.
	c.Fill(0x1000, 0, false, false)
	if r := c.Lookup(0x1000, 100, true); r.ReadyAt != 0 {
		t.Errorf("ReadyAt = %d after invalidate+refill, want 0", r.ReadyAt)
	}
}

func TestMSHRLookupClearsCompletedEntry(t *testing.T) {
	c := New(mshrCfg(4))
	c.Fill(0x2000, 50, false, false)
	// Demand at cycle 50: the fill has landed, entry is retired.
	if r := c.Lookup(0x2000, 50, true); r.ReadyAt != 0 {
		t.Errorf("ReadyAt = %d at completion cycle, want 0", r.ReadyAt)
	}
	if got := c.InflightCount(0); got != 0 {
		t.Errorf("InflightCount = %d, want 0 after completed lookup", got)
	}
}

func TestMSHRZeroReadyFillNotTracked(t *testing.T) {
	c := New(mshrCfg(4))
	// readyAt == 0 means "instantly present" (e.g. a dirty writeback
	// merge) and must not occupy a tracker slot.
	c.Fill(0x3000, 0, false, false)
	if got := c.InflightCount(0); got != 0 {
		t.Errorf("InflightCount = %d, want 0", got)
	}
}

// TestMSHRTrackerOverflowBeyondConfigured pins the historical overflow
// semantics: a fill whose completion precedes every tracked entry is
// still recorded even when the tracker is at capacity (the prune at
// fill time frees nothing), so the count may transiently exceed MSHRs.
func TestMSHRTrackerOverflowBeyondConfigured(t *testing.T) {
	const mshrs = 2
	c := New(mshrCfg(mshrs))
	c.Fill(0x000, 1000, false, false)
	c.Fill(0x040, 1000, false, false)
	c.Fill(0x080, 900, false, false) // earlier than both tracked entries
	if got := c.InflightCount(0); got != 3 {
		t.Errorf("InflightCount = %d, want 3 (overflow preserved)", got)
	}
	// Pruning at a later cycle collapses it back under the cap.
	if got := c.InflightCount(950); got != 2 {
		t.Errorf("InflightCount(950) = %d, want 2", got)
	}
}

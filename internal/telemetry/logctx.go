package telemetry

import (
	"context"
	"log/slog"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
)

// Structured-logging conventions shared by every long-running binary:
// request IDs minted at the HTTP edge ride the context through queue →
// worker → runner, so one grep over `req` reconstructs a job's whole
// path. Field names are fixed here so log consumers can rely on them:
//
//	req    request ID (r<seq>-<job prefix> on mamaserved)
//	job    content-derived job ID
//	mix    workload mix name
//	ctrl   controller key
//	ms     duration in milliseconds

type ctxKey struct{}

var reqSeq atomic.Uint64

// NewRequestID mints a process-unique request ID. hint (a job-ID
// prefix, for example) is folded in so IDs stay greppable next to the
// jobs they belong to.
func NewRequestID(hint string) string {
	n := reqSeq.Add(1)
	if len(hint) > 8 {
		hint = hint[:8]
	}
	if hint == "" {
		return "r" + strconv.FormatUint(n, 10)
	}
	return "r" + strconv.FormatUint(n, 10) + "-" + hint
}

// WithRequestID stamps a request ID onto ctx.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxKey{}, id)
}

// RequestID extracts the request ID from ctx, or "" when unset.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(ctxKey{}).(string)
	return id
}

// NewLogger builds a slog.Logger writing to stderr at the given level
// ("debug", "info", "warn", "error") in the given format ("text" or
// "json"). Unknown values fall back to info/text.
func NewLogger(level, format string) *slog.Logger {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "debug":
		lv = slog.LevelDebug
	case "warn":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		lv = slog.LevelInfo
	}
	opts := &slog.HandlerOptions{Level: lv}
	if strings.EqualFold(format, "json") {
		return slog.New(slog.NewJSONHandler(os.Stderr, opts))
	}
	return slog.New(slog.NewTextHandler(os.Stderr, opts))
}

// Package telemetry is the repo's runtime-metrics substrate: a
// dependency-free registry of atomic counters, gauges, and fixed-bucket
// histograms with Prometheus text-format exposition.
//
// Design constraints, in order:
//
//  1. Hot-path writes are a single atomic RMW (~ns scale, zero
//     allocations), so instruments are safe inside Core.advance epoch
//     boundaries and the trace-pool read path.
//  2. Registration is idempotent: asking for an existing (name, labels)
//     pair returns the same instrument, so independent subsystems (and
//     repeated test servers) can declare their metrics without
//     coordinating init order.
//  3. Exposition never blocks writers: scraping reads atomics while
//     writers keep updating them.
//
// Metric naming follows the Prometheus conventions used across the
// repo: mama_<subsystem>_<noun>[_<unit>][_total], e.g.
// mama_server_jobs_submitted_total or mama_trace_pool_used_bytes.
package telemetry

import (
	"math"
	"sync/atomic"
)

// Label is one constant key="value" pair attached to an instrument at
// registration time.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing value. The zero value is ready
// to use; counters obtained from a Registry are also exported at scrape
// time.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous value that can move in both directions.
// The zero value is ready to use.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (may be negative) with a CAS loop.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket histogram (cumulative at exposition, like
// Prometheus). Bucket bounds are set at registration and never change;
// Observe is one bounds scan plus three atomic RMWs.
type Histogram struct {
	bounds  []float64 // sorted upper bounds; implicit +Inf bucket at the end
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic("telemetry: histogram bounds must be strictly increasing")
		}
	}
	return &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// DurationBuckets is a general-purpose latency bucket ladder in
// seconds: 1ms to 10m, roughly 2.5x apart. Suitable for both queue
// waits and simulation runtimes.
var DurationBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 150, 600,
}

package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// kind discriminates the instrument behind one registered series.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

func (k kind) promType() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// series is one registered (name, labels) pair and its instrument.
type series struct {
	name      string
	labelBody string // rendered `k="v",k2="v2"` without braces; "" when unlabeled
	help      string
	kind      kind

	c  *Counter
	g  *Gauge
	h  *Histogram
	cf func() uint64
	gf func() float64
}

// Registry is a set of named instruments that can be scraped as
// Prometheus text format. Registration is idempotent (same name +
// labels returns the existing instrument); a re-registration that
// changes the instrument kind panics, since that is always a
// programming error.
type Registry struct {
	mu    sync.RWMutex
	byKey map[string]*series
	order []*series
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*series)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry. Long-lived subsystems
// without a natural owner (the sim loop, the shared trace pool, the
// experiment caches) register here; servers own their own registry and
// expose both.
func Default() *Registry { return defaultRegistry }

func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Key)
		sb.WriteString(`="`)
		sb.WriteString(escapeLabelValue(l.Value))
		sb.WriteByte('"')
	}
	return sb.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// register returns the existing series for key or installs a fresh one
// built by mk.
func (r *Registry) register(name, help string, k kind, labels []Label, mk func() *series) *series {
	body := renderLabels(labels)
	key := name + "\xff" + body
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.byKey[key]; ok {
		if s.kind != k {
			panic(fmt.Sprintf("telemetry: %s re-registered as %s (was %s)",
				name, k.promType(), s.kind.promType()))
		}
		return s
	}
	s := mk()
	s.name, s.labelBody, s.help, s.kind = name, body, help, k
	r.byKey[key] = s
	r.order = append(r.order, s)
	return s
}

// Counter registers (or returns the existing) counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.register(name, help, kindCounter, labels, func() *series {
		return &series{c: &Counter{}}
	})
	return s.c
}

// Gauge registers (or returns the existing) gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.register(name, help, kindGauge, labels, func() *series {
		return &series{g: &Gauge{}}
	})
	return s.g
}

// Histogram registers (or returns the existing) histogram series with
// the given upper bucket bounds (an implicit +Inf bucket is appended).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	s := r.register(name, help, kindHistogram, labels, func() *series {
		return &series{h: newHistogram(bounds)}
	})
	return s.h
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time (for monotonic values a subsystem already tracks itself).
func (r *Registry) CounterFunc(name, help string, fn func() uint64, labels ...Label) {
	r.register(name, help, kindCounterFunc, labels, func() *series {
		return &series{cf: fn}
	})
}

// GaugeFunc registers a gauge whose value is read from fn at scrape
// time (queue depths, pool occupancy, and similar sampled state).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(name, help, kindGaugeFunc, labels, func() *series {
		return &series{gf: fn}
	})
}

// snapshot returns the registered series sorted by (name, labels), so
// exposition groups each family contiguously.
func (r *Registry) snapshot() []*series {
	r.mu.RLock()
	out := make([]*series, len(r.order))
	copy(out, r.order)
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].labelBody < out[j].labelBody
	})
	return out
}

// WritePrometheus writes every registered series in Prometheus text
// exposition format (version 0.0.4). Values are read live; writers are
// never blocked.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	prevFamily := ""
	for _, s := range r.snapshot() {
		if s.name != prevFamily {
			fmt.Fprintf(bw, "# HELP %s %s\n", s.name, s.help)
			fmt.Fprintf(bw, "# TYPE %s %s\n", s.name, s.kind.promType())
			prevFamily = s.name
		}
		switch s.kind {
		case kindCounter:
			writeSample(bw, s.name, s.labelBody, "", formatUint(s.c.Value()))
		case kindCounterFunc:
			writeSample(bw, s.name, s.labelBody, "", formatUint(s.cf()))
		case kindGauge:
			writeSample(bw, s.name, s.labelBody, "", formatFloat(s.g.Value()))
		case kindGaugeFunc:
			writeSample(bw, s.name, s.labelBody, "", formatFloat(s.gf()))
		case kindHistogram:
			writeHistogram(bw, s)
		}
	}
	return bw.Flush()
}

// writeSample emits one `name{labels} value` line. extraLabel is an
// already-rendered label pair (histogram `le`) appended after the
// series labels.
func writeSample(w *bufio.Writer, name, labelBody, extraLabel, value string) {
	w.WriteString(name)
	if labelBody != "" || extraLabel != "" {
		w.WriteByte('{')
		w.WriteString(labelBody)
		if labelBody != "" && extraLabel != "" {
			w.WriteByte(',')
		}
		w.WriteString(extraLabel)
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(value)
	w.WriteByte('\n')
}

func writeHistogram(w *bufio.Writer, s *series) {
	h := s.h
	// Cumulative bucket counts, per the exposition format. The counts
	// are read bucket-by-bucket while writers may be observing, so the
	// total can trail the per-bucket sum by in-flight samples; that
	// skew is inherent to lock-free scraping and irrelevant to rates.
	cum := uint64(0)
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		writeSample(w, s.name+"_bucket", s.labelBody, `le="`+le+`"`, formatUint(cum))
	}
	writeSample(w, s.name+"_sum", s.labelBody, "", formatFloat(h.Sum()))
	writeSample(w, s.name+"_count", s.labelBody, "", formatUint(h.Count()))
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func formatFloat(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an HTTP handler serving the given registries (in
// order) as one Prometheus text-format page. With no arguments it
// serves the Default registry.
func Handler(regs ...*Registry) http.Handler {
	if len(regs) == 0 {
		regs = []*Registry{Default()}
	}
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		for _, r := range regs {
			_ = r.WritePrometheus(w)
		}
	})
}

// DumpToFile writes the registries' metrics to path ("-" for stdout).
// It backs the -metrics-dump flag on the batch binaries.
func DumpToFile(path string, regs ...*Registry) error {
	if len(regs) == 0 {
		regs = []*Registry{Default()}
	}
	var sb strings.Builder
	for _, r := range regs {
		if err := r.WritePrometheus(&sb); err != nil {
			return err
		}
	}
	if path == "-" {
		_, err := io.WriteString(os.Stdout, sb.String())
		return err
	}
	return os.WriteFile(path, []byte(sb.String()), 0o644)
}

package telemetry

import (
	"context"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_counter_total", "test counter")
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}

	g := r.Gauge("t_gauge", "test gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %g, want 1.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_hist", "test histogram", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-556.5) > 1e-9 {
		t.Errorf("sum = %g, want 556.5", h.Sum())
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// 0.5 and 1 land in le="1" (bounds are inclusive); cumulative counts
	// follow.
	for _, want := range []string{
		`t_hist_bucket{le="1"} 2`,
		`t_hist_bucket{le="10"} 3`,
		`t_hist_bucket{le="100"} 4`,
		`t_hist_bucket{le="+Inf"} 5`,
		`t_hist_sum 556.5`,
		`t_hist_count 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramRejectsUnsortedBounds(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unsorted bounds did not panic")
		}
	}()
	NewRegistry().Histogram("t_bad", "", []float64{1, 1})
}

func TestRegistrationIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("t_twice_total", "help", L("core", "0"))
	b := r.Counter("t_twice_total", "help", L("core", "0"))
	if a != b {
		t.Error("same (name, labels) returned distinct counters")
	}
	other := r.Counter("t_twice_total", "help", L("core", "1"))
	if a == other {
		t.Error("distinct labels returned the same counter")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_kind", "help")
	defer func() {
		if recover() == nil {
			t.Error("kind mismatch did not panic")
		}
	}()
	r.Gauge("t_kind", "help")
}

func TestExpositionFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_fam_total", "a family", L("kind", "b")).Add(2)
	r.Counter("t_fam_total", "a family", L("kind", "a")).Add(1)
	r.GaugeFunc("t_depth", "sampled depth", func() float64 { return 7 })
	r.CounterFunc("t_seen_total", "sampled monotonic", func() uint64 { return 9 })

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()

	if strings.Count(out, "# HELP t_fam_total") != 1 {
		t.Errorf("HELP emitted more than once per family:\n%s", out)
	}
	// Series are sorted within a family regardless of registration order.
	ia := strings.Index(out, `t_fam_total{kind="a"} 1`)
	ib := strings.Index(out, `t_fam_total{kind="b"} 2`)
	if ia < 0 || ib < 0 || ia > ib {
		t.Errorf("family series missing or unsorted (a=%d b=%d):\n%s", ia, ib, out)
	}
	for _, want := range []string{
		"# TYPE t_fam_total counter",
		"# TYPE t_depth gauge",
		"t_depth 7",
		"# TYPE t_seen_total counter",
		"t_seen_total 9",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_esc_total", "h", L("path", `a"b\c`+"\n")).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if want := `t_esc_total{path="a\"b\\c\n"} 1`; !strings.Contains(sb.String(), want) {
		t.Errorf("exposition missing %q:\n%s", want, sb.String())
	}
}

// TestConcurrentWritersAndScrapes is the registry's -race gate: many
// goroutines hammer every instrument kind while scrapes run
// concurrently, then a final scrape must observe the exact totals.
func TestConcurrentWritersAndScrapes(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("t_conc_total", "c")
	g := r.Gauge("t_conc_gauge", "g")
	h := r.Histogram("t_conc_hist", "h", []float64{0.5, 2})

	const writers = 8
	const perWriter = 10_000
	var writeWG, scrapeWG sync.WaitGroup
	stop := make(chan struct{})

	// Concurrent scrapers (and concurrent registration of new series).
	for i := 0; i < 4; i++ {
		scrapeWG.Add(1)
		go func() {
			defer scrapeWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				var sb strings.Builder
				if err := r.WritePrometheus(&sb); err != nil {
					t.Error(err)
					return
				}
				r.Counter("t_conc_extra_total", "late registration")
			}
		}()
	}
	for i := 0; i < writers; i++ {
		writeWG.Add(1)
		go func() {
			defer writeWG.Done()
			for j := 0; j < perWriter; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(j%3) + 0.25)
			}
		}()
	}
	writeWG.Wait()
	close(stop)
	scrapeWG.Wait()

	if got := c.Value(); got != writers*perWriter {
		t.Errorf("counter = %d, want %d", got, writers*perWriter)
	}
	if got := g.Value(); got != writers*perWriter {
		t.Errorf("gauge = %g, want %d", got, writers*perWriter)
	}
	if got := h.Count(); got != writers*perWriter {
		t.Errorf("histogram count = %d, want %d", got, writers*perWriter)
	}
}

func TestRequestIDContext(t *testing.T) {
	ctx := context.Background()
	if RequestID(ctx) != "" {
		t.Error("empty context yielded a request ID")
	}
	id := NewRequestID("abcdef0123456789")
	if !strings.HasPrefix(id, "r") || !strings.Contains(id, "abcdef01") {
		t.Errorf("unexpected request ID %q", id)
	}
	if strings.Contains(id, "0123456789") {
		t.Errorf("hint not truncated in %q", id)
	}
	ctx = WithRequestID(ctx, id)
	if got := RequestID(ctx); got != id {
		t.Errorf("RequestID = %q, want %q", got, id)
	}
	if next := NewRequestID(""); next == id || !strings.HasPrefix(next, "r") {
		t.Errorf("request IDs not unique: %q then %q", id, next)
	}
}

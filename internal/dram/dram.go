// Package dram models main memory as a set of channels with banks, open
// rows, and a finite-bandwidth data bus. The data-bus occupancy is what
// caps bandwidth: each transfer holds the channel bus for
// LineBytes/BytesPerCycle cycles, so a flood of prefetches from one core
// queues behind (and delays) every other core's demands — the contention
// phenomenon at the heart of the paper.
package dram

import "fmt"

// Config describes the memory system.
type Config struct {
	Name            string
	Channels        int
	BanksPerChannel int
	RowBytes        uint64
	LineBytes       uint64
	// BytesPerCycle is the peak data-bus bandwidth per channel in bytes
	// per CPU cycle (e.g. DDR4-2400 on a 4 GHz CPU: 19.2 GB/s / 4 GHz =
	// 4.8 B/cycle).
	BytesPerCycle float64
	// TCAS, TRCD, TRP are timing components in CPU cycles.
	TCAS uint64
	TRCD uint64
	TRP  uint64
	// CtrlLatency is the fixed memory-controller + off-chip round-trip
	// latency in CPU cycles, added to every access's data latency but
	// not to bank/bus occupancy.
	CtrlLatency uint64
	// QueueDepth caps outstanding requests per channel; arrivals beyond
	// it are delayed until an older request completes.
	QueueDepth int
	// PrefetchHorizon is the controller's demand-priority backpressure:
	// a prefetch is rejected when the channel bus is already booked more
	// than this many cycles ahead, so prefetch floods cannot starve
	// other cores' demand requests (real controllers schedule demands
	// first; ChampSim drops low-priority fills under pressure).
	PrefetchHorizon uint64
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Channels <= 0 {
		return fmt.Errorf("dram %s: Channels must be positive", c.Name)
	}
	if c.BanksPerChannel <= 0 {
		return fmt.Errorf("dram %s: BanksPerChannel must be positive", c.Name)
	}
	if c.RowBytes == 0 || c.LineBytes == 0 {
		return fmt.Errorf("dram %s: RowBytes and LineBytes must be positive", c.Name)
	}
	if c.BytesPerCycle <= 0 {
		return fmt.Errorf("dram %s: BytesPerCycle must be positive", c.Name)
	}
	if c.QueueDepth <= 0 {
		return fmt.Errorf("dram %s: QueueDepth must be positive", c.Name)
	}
	return nil
}

// PeakGBps returns the aggregate peak bandwidth in GB/s assuming a 4 GHz
// CPU clock.
func (c Config) PeakGBps() float64 {
	return c.BytesPerCycle * 4e9 * float64(c.Channels) / 1e9
}

// BurstCycles returns the channel-bus occupancy of one line transfer.
func (c Config) BurstCycles() uint64 {
	b := uint64(float64(c.LineBytes) / c.BytesPerCycle)
	if float64(b)*c.BytesPerCycle < float64(c.LineBytes) {
		b++
	}
	if b == 0 {
		b = 1
	}
	return b
}

// DDR4 presets assume a 4 GHz CPU clock and 64-bit channels, matching
// the paper's Table 3 system (DDR4-2400, 1 channel) and the bandwidth
// sweep of §6.2 (DDR4-1866/2400 × 1/2 channels).
func DDR4(mtps int, channels int) Config {
	gbps := float64(mtps) * 8 / 1000 // MT/s × 8 bytes
	return Config{
		Name:            fmt.Sprintf("DDR4-%d x%dch", mtps, channels),
		Channels:        channels,
		BanksPerChannel: 8,
		RowBytes:        8 << 10,
		LineBytes:       64,
		BytesPerCycle:   gbps / 4.0, // per channel at 4 GHz
		TCAS:            56,         // ~14 ns
		TRCD:            56,
		TRP:             56,
		CtrlLatency:     160, // ~40 ns controller + PHY + off-chip round trip
		QueueDepth:      48,
		PrefetchHorizon: 2048,
	}
}

// Stats aggregates memory-system counters.
type Stats struct {
	Reads     uint64
	Writes    uint64
	RowHits   uint64
	RowMisses uint64
	// BusBusyCycles is the total channel-bus occupancy accumulated;
	// divide by elapsed cycles × channels for utilization.
	BusBusyCycles uint64
	// QueueDelay accumulates cycles requests spent waiting for a queue
	// slot or the bank/bus, beyond raw service latency.
	QueueDelay uint64
	// PrefetchesRejected counts prefetches refused by the controller's
	// demand-priority backpressure.
	PrefetchesRejected uint64
}

type bank struct {
	row     uint64
	rowOpen bool
	busyTil uint64
}

type channel struct {
	banks   []bank
	busFree uint64
	// queue is a ring of the completion times of the most recent
	// QueueDepth requests; a new arrival cannot start before the oldest
	// completes once the ring is full.
	queue []uint64
	qHead int
	qLen  int
}

// DRAM is the memory-system timing model.
type DRAM struct {
	cfg   Config
	chans []channel
	stats Stats
	burst uint64

	// Address-mapping fast path: when the relevant geometry values are
	// powers of two (they are, for every built-in config), the per-access
	// channel/bank/row decode is shifts and masks instead of 64-bit
	// divisions. fastMap gates the path; the slow divide remains for
	// arbitrary geometries.
	fastMap      bool
	lineShift    uint
	chMask       uint64
	rowShift     uint
	bankMask     uint64
	rowAddrShift uint
}

func log2of(v uint64) (uint, bool) {
	if v == 0 || v&(v-1) != 0 {
		return 0, false
	}
	n := uint(0)
	for v > 1 {
		v >>= 1
		n++
	}
	return n, true
}

// New constructs a DRAM model. It panics on invalid configuration.
func New(cfg Config) *DRAM {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	d := &DRAM{cfg: cfg, burst: cfg.BurstCycles()}
	if ls, ok1 := log2of(cfg.LineBytes); ok1 {
		if cs, ok2 := log2of(uint64(cfg.Channels)); ok2 {
			if rs, ok3 := log2of(cfg.RowBytes); ok3 {
				if bs, ok4 := log2of(uint64(cfg.BanksPerChannel)); ok4 {
					d.fastMap = true
					d.lineShift = ls
					d.chMask = uint64(cfg.Channels) - 1
					d.rowShift = rs
					d.bankMask = uint64(cfg.BanksPerChannel) - 1
					d.rowAddrShift = rs + bs + cs
				}
			}
		}
	}
	d.chans = make([]channel, cfg.Channels)
	for i := range d.chans {
		d.chans[i].banks = make([]bank, cfg.BanksPerChannel)
		d.chans[i].queue = make([]uint64, cfg.QueueDepth)
	}
	return d
}

// Config returns the model's configuration.
func (d *DRAM) Config() Config { return d.cfg }

// Stats returns a snapshot of the counters.
func (d *DRAM) Stats() Stats { return d.stats }

// BusBusy returns just the accumulated channel-bus occupancy, for
// periodic bandwidth sampling that shouldn't copy the whole Stats
// struct every probe.
func (d *DRAM) BusBusy() uint64 { return d.stats.BusBusyCycles }

// Access services a demand line transfer arriving at cycle now and
// returns the cycle at which the data is fully transferred. write
// distinguishes writebacks (same bus cost, nobody waits on the result).
func (d *DRAM) Access(now uint64, addr uint64, write bool) uint64 {
	done, _ := d.access(now, addr, write, false)
	return done
}

// AccessPrefetch services a prefetch line transfer, subject to the
// demand-priority backpressure: it reports ok == false (and performs no
// transfer) when the channel is booked beyond PrefetchHorizon.
func (d *DRAM) AccessPrefetch(now uint64, addr uint64) (done uint64, ok bool) {
	return d.access(now, addr, false, true)
}

func (d *DRAM) access(now uint64, addr uint64, write, pf bool) (uint64, bool) {
	var chIdx int
	if d.fastMap {
		chIdx = int((addr >> d.lineShift) & d.chMask)
	} else {
		chIdx = int((addr / d.cfg.LineBytes) % uint64(d.cfg.Channels))
	}
	ch := &d.chans[chIdx]

	if pf && d.cfg.PrefetchHorizon > 0 && ch.busFree > now+d.cfg.PrefetchHorizon {
		d.stats.PrefetchesRejected++
		return 0, false
	}

	// Queue admission: wait for a slot if QueueDepth requests are in
	// flight.
	start := now
	if ch.qLen == d.cfg.QueueDepth {
		oldest := ch.queue[ch.qHead]
		if oldest > start {
			start = oldest
		}
		ch.qHead++
		if ch.qHead == d.cfg.QueueDepth {
			ch.qHead = 0
		}
		ch.qLen--
	}

	var bIdx int
	var row uint64
	if d.fastMap {
		bIdx = int((addr >> d.rowShift) & d.bankMask)
		row = addr >> d.rowAddrShift
	} else {
		bIdx = int((addr / d.cfg.RowBytes) % uint64(d.cfg.BanksPerChannel))
		row = addr / (d.cfg.RowBytes * uint64(d.cfg.BanksPerChannel) * uint64(d.cfg.Channels))
	}
	b := &ch.banks[bIdx]

	if b.busyTil > start {
		start = b.busyTil
	}
	// The bank is occupied for the command time only: consecutive CAS
	// commands to an open row pipeline at burst rate; a row miss adds
	// precharge+activate occupancy. The data latency (tCAS) overlaps
	// with subsequent commands.
	var lat, occupancy uint64
	if b.rowOpen && b.row == row {
		lat = d.cfg.CtrlLatency + d.cfg.TCAS
		occupancy = d.burst
		d.stats.RowHits++
	} else {
		lat = d.cfg.CtrlLatency + d.cfg.TRP + d.cfg.TRCD + d.cfg.TCAS
		occupancy = d.cfg.TRP + d.cfg.TRCD + d.burst
		d.stats.RowMisses++
		b.row = row
		b.rowOpen = true
	}
	b.busyTil = start + occupancy

	dataStart := start + lat
	if ch.busFree > dataStart {
		dataStart = ch.busFree
	}
	done := dataStart + d.burst
	ch.busFree = done
	d.stats.BusBusyCycles += d.burst
	d.stats.QueueDelay += dataStart - now - lat

	// Record completion in the queue ring.
	tail := ch.qHead + ch.qLen
	if tail >= d.cfg.QueueDepth {
		tail -= d.cfg.QueueDepth
	}
	ch.queue[tail] = done
	ch.qLen++

	if write {
		d.stats.Writes++
	} else {
		d.stats.Reads++
	}
	return done, true
}

// Utilization returns the fraction of total channel-bus cycles occupied
// over the first `elapsed` cycles of simulation.
func (d *DRAM) Utilization(elapsed uint64) float64 {
	if elapsed == 0 {
		return 0
	}
	return float64(d.stats.BusBusyCycles) / (float64(elapsed) * float64(d.cfg.Channels))
}

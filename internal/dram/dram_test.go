package dram

import (
	"testing"
	"testing/quick"

	"micromama/internal/xrand"
)

func TestConfigValidate(t *testing.T) {
	if err := DDR4(2400, 1).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := Config{Channels: 0}
	if err := bad.Validate(); err == nil {
		t.Error("invalid config validated")
	}
}

func TestDDR4Presets(t *testing.T) {
	c := DDR4(2400, 1)
	if got := c.PeakGBps(); got < 19.1 || got > 19.3 {
		t.Errorf("DDR4-2400 x1 peak = %.2f GB/s, want ~19.2", got)
	}
	c2 := DDR4(1866, 2)
	if got := c2.PeakGBps(); got < 29.8 || got > 30.0 {
		t.Errorf("DDR4-1866 x2 peak = %.2f GB/s, want ~29.9", got)
	}
	if DDR4(2400, 1).BurstCycles() != 14 {
		t.Errorf("burst = %d cycles, want 14 (64B at 4.8B/cyc)", DDR4(2400, 1).BurstCycles())
	}
}

func TestRowHitFasterThanMiss(t *testing.T) {
	d := New(DDR4(2400, 1))
	cfg := d.Config()
	t0 := d.Access(0, 0, false) // row miss (cold)
	// Same row, arriving after the first completes.
	t1start := t0 + 1000
	t1 := d.Access(t1start, 64, false)
	missLat := t0 - 0
	hitLat := t1 - t1start
	if hitLat >= missLat {
		t.Errorf("row hit latency %d >= row miss latency %d", hitLat, missLat)
	}
	wantHit := cfg.CtrlLatency + cfg.TCAS + cfg.BurstCycles()
	if hitLat != wantHit {
		t.Errorf("row hit latency = %d, want %d", hitLat, wantHit)
	}
	st := d.Stats()
	if st.RowHits != 1 || st.RowMisses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestBandwidthCap(t *testing.T) {
	d := New(DDR4(2400, 1))
	burst := d.Config().BurstCycles()
	// Fire 100 same-row requests at cycle 0: the bus serializes them.
	var last uint64
	for i := 0; i < 100; i++ {
		last = d.Access(0, uint64(i)*64, false)
	}
	if min := 100 * burst; last < min {
		t.Errorf("100 transfers done at %d, bus cap requires >= %d", last, min)
	}
	if busy := d.Stats().BusBusyCycles; busy != 100*burst {
		t.Errorf("bus busy %d, want %d", busy, 100*burst)
	}
}

func TestChannelsParallel(t *testing.T) {
	one := New(DDR4(2400, 1))
	two := New(DDR4(2400, 2))
	var last1, last2 uint64
	for i := 0; i < 64; i++ {
		last1 = one.Access(0, uint64(i)*64, false)
		last2 = two.Access(0, uint64(i)*64, false)
	}
	if last2 >= last1 {
		t.Errorf("2 channels (%d) not faster than 1 (%d)", last2, last1)
	}
}

func TestPrefetchRejection(t *testing.T) {
	cfg := DDR4(2400, 1)
	cfg.PrefetchHorizon = 100
	d := New(cfg)
	// Saturate the bus far beyond the horizon.
	for i := 0; i < 64; i++ {
		d.Access(0, uint64(i)*64, false)
	}
	if _, ok := d.AccessPrefetch(0, 1<<20); ok {
		t.Error("prefetch accepted with bus booked beyond horizon")
	}
	if d.Stats().PrefetchesRejected != 1 {
		t.Errorf("PrefetchesRejected = %d, want 1", d.Stats().PrefetchesRejected)
	}
	// With a calm bus, prefetches flow.
	d2 := New(cfg)
	if _, ok := d2.AccessPrefetch(0, 0); !ok {
		t.Error("prefetch rejected on idle bus")
	}
}

func TestWritesCounted(t *testing.T) {
	d := New(DDR4(2400, 1))
	d.Access(0, 0, true)
	d.Access(0, 64, false)
	st := d.Stats()
	if st.Writes != 1 || st.Reads != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestUtilization(t *testing.T) {
	d := New(DDR4(2400, 1))
	d.Access(0, 0, false)
	u := d.Utilization(1000)
	if u <= 0 || u > 1 {
		t.Errorf("utilization = %g", u)
	}
	if d.Utilization(0) != 0 {
		t.Error("utilization over zero cycles should be 0")
	}
}

func TestQueueDepthDelaysBurst(t *testing.T) {
	cfg := DDR4(2400, 1)
	cfg.QueueDepth = 4
	d := New(cfg)
	// 5th simultaneous request must wait for the 1st to complete.
	var t0 uint64
	for i := 0; i < 4; i++ {
		done := d.Access(0, uint64(i)*64, false)
		if i == 0 {
			t0 = done
		}
	}
	lat5 := d.Access(0, 4*64, false)
	if lat5 < t0 {
		t.Errorf("5th request (%d) did not wait for queue slot (oldest done %d)", lat5, t0)
	}
}

// Property: completions are monotone per channel when requests arrive in
// time order (FCFS booking), and done > arrival always.
func TestQuickMonotoneCompletion(t *testing.T) {
	f := func(seed uint64) bool {
		d := New(DDR4(2400, 1))
		r := xrand.New(seed)
		var now, lastDone uint64
		for i := 0; i < 200; i++ {
			now += uint64(r.Intn(50))
			done := d.Access(now, uint64(r.Intn(1<<20))&^63, false)
			if done <= now {
				return false
			}
			if done < lastDone {
				return false
			}
			lastDone = done
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

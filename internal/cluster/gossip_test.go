package cluster

import (
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"micromama/internal/faultinject"
)

// TestUpdatePrecedence pins the SWIM merge rules: higher incarnation
// always wins; at equal incarnations suspect beats alive, dead beats
// both, and alive beats neither.
func TestUpdatePrecedence(t *testing.T) {
	const b = "http://b:1"
	cases := []struct {
		name      string
		seq       []MemberUpdate
		wantState MemberState
		wantInc   uint64
	}{
		{"suspect overrides alive at same inc",
			[]MemberUpdate{{b, 0, StateSuspect}}, StateSuspect, 0},
		{"alive does not override suspect at same inc",
			[]MemberUpdate{{b, 0, StateSuspect}, {b, 0, StateAlive}}, StateSuspect, 0},
		{"alive overrides suspect at higher inc",
			[]MemberUpdate{{b, 0, StateSuspect}, {b, 1, StateAlive}}, StateAlive, 1},
		{"dead overrides alive at same inc",
			[]MemberUpdate{{b, 0, StateDead}}, StateDead, 0},
		{"dead overrides suspect at same inc",
			[]MemberUpdate{{b, 0, StateSuspect}, {b, 0, StateDead}}, StateDead, 0},
		{"alive does not resurrect dead at same inc",
			[]MemberUpdate{{b, 0, StateDead}, {b, 0, StateAlive}}, StateDead, 0},
		{"alive resurrects dead at higher inc",
			[]MemberUpdate{{b, 0, StateDead}, {b, 1, StateAlive}}, StateAlive, 1},
		{"stale suspect ignored after refutation",
			[]MemberUpdate{{b, 2, StateAlive}, {b, 1, StateSuspect}}, StateAlive, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, err := New("http://a:1", []string{b}, Options{})
			if err != nil {
				t.Fatal(err)
			}
			c.applyUpdates(tc.seq)
			c.memMu.Lock()
			m := c.members[b]
			c.memMu.Unlock()
			if m == nil || m.state != tc.wantState || m.inc != tc.wantInc {
				t.Fatalf("member = %+v, want state=%s inc=%d", m, tc.wantState, tc.wantInc)
			}
		})
	}
}

// TestRefutation: a node that hears it is suspected (or dead) bumps
// its incarnation past the claim and gossips a fresh alive, which then
// overrides the suspicion under the precedence rules.
func TestRefutation(t *testing.T) {
	c, err := New("http://a:1", []string{"http://b:1"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c.EnableGossip(GossipOptions{Interval: time.Hour}) // loops never started
	c.applyUpdates([]MemberUpdate{{URL: "http://a:1", Inc: 0, State: StateSuspect}})
	if got := c.SelfIncarnation(); got != 1 {
		t.Fatalf("SelfIncarnation = %d, want 1 after refuting suspect(0)", got)
	}
	if _, refutes, _ := c.GossipCounts(); refutes != 1 {
		t.Fatalf("refute counter = %d, want 1", refutes)
	}
	// A dead claim at the bumped incarnation is refuted again.
	c.applyUpdates([]MemberUpdate{{URL: "http://a:1", Inc: 1, State: StateDead}})
	if got := c.SelfIncarnation(); got != 2 {
		t.Fatalf("SelfIncarnation = %d, want 2 after refuting dead(1)", got)
	}
	// The refutation is queued for piggybacking.
	msg := c.outMsg(8)
	if len(msg.Updates) == 0 || msg.Updates[0].URL != "http://a:1" || msg.Updates[0].Inc != 2 {
		t.Fatalf("outMsg does not lead with the refuted alive claim: %+v", msg.Updates)
	}
}

// TestRingRebuildOnTransition: confirming a peer dead removes it from
// the ring atomically, bumps the membership version, and fires the
// change hook; a higher-incarnation alive claim brings it back.
func TestRingRebuildOnTransition(t *testing.T) {
	c, err := New("http://a:1", []string{"http://b:1", "http://c:1"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var events []ChangeEvent
	c.OnChange(func(ev ChangeEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	})
	v0 := c.MembershipVersion()
	h0 := c.RingHash()

	c.applyUpdates([]MemberUpdate{{URL: "http://b:1", Inc: 0, State: StateDead}})
	if c.Size() != 2 {
		t.Fatalf("ring size = %d after death, want 2", c.Size())
	}
	if c.MembershipVersion() != v0+1 {
		t.Fatalf("version = %d, want %d", c.MembershipVersion(), v0+1)
	}
	if c.RingHash() == h0 {
		t.Fatal("ring hash unchanged after membership change")
	}
	mu.Lock()
	if len(events) != 1 || len(events[0].Dead) != 1 || events[0].Dead[0] != "http://b:1" {
		t.Fatalf("change events = %+v, want one with Dead=[http://b:1]", events)
	}
	mu.Unlock()

	// Suspicion alone must not change the ring.
	c.applyUpdates([]MemberUpdate{{URL: "http://c:1", Inc: 0, State: StateSuspect}})
	if c.Size() != 2 || c.MembershipVersion() != v0+1 {
		t.Fatal("suspicion changed the ring")
	}

	// Rejoin with a bumped incarnation restores the original ring.
	c.applyUpdates([]MemberUpdate{{URL: "http://b:1", Inc: 1, State: StateAlive}})
	if c.Size() != 3 {
		t.Fatalf("ring size = %d after rejoin, want 3", c.Size())
	}
	if c.RingHash() != h0 {
		t.Fatal("rejoined ring hash differs from the original membership")
	}
	mu.Lock()
	last := events[len(events)-1]
	mu.Unlock()
	if len(last.Joined) != 1 || last.Joined[0] != "http://b:1" {
		t.Fatalf("rejoin event = %+v, want Joined=[http://b:1]", last)
	}
}

// TestPiggybackBudget: a queued delta is retransmitted a bounded
// number of times and then dropped; a newer claim about the same
// member replaces the queued one.
func TestPiggybackBudget(t *testing.T) {
	c, err := New("http://a:1", []string{"http://b:1"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c.EnableGossip(GossipOptions{Interval: time.Hour})
	c.markSuspect("http://b:1")
	seen := 0
	for i := 0; i < 64; i++ {
		msg := c.outMsg(8)
		// Updates[0] is always the sender's own alive claim.
		if len(msg.Updates) > 1 {
			seen++
		} else {
			break
		}
	}
	if seen == 0 || seen >= 64 {
		t.Fatalf("suspect delta retransmitted %d times, want bounded and nonzero", seen)
	}
}

// TestGossipHeaderRoundTrip: membership deltas attached to ordinary
// traffic via X-Mama-Gossip are decodable as a digest and merge into
// the receiver's table.
func TestGossipHeaderRoundTrip(t *testing.T) {
	mk := func(self string) *Cluster {
		c, err := New(self, []string{"http://a:1", "http://b:1", "http://c:1"}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		c.EnableGossip(GossipOptions{Interval: time.Hour})
		return c
	}
	a, b := mk("http://a:1"), mk("http://b:1")
	// a confirms c dead; the delta rides the header.
	a.applyUpdates([]MemberUpdate{{URL: "http://c:1", Inc: 0, State: StateDead}})
	hdr := a.GossipHeaderValue()
	if hdr == "" {
		t.Fatal("empty gossip header with gossip enabled")
	}
	d, ok := DecodeGossipDigest(hdr)
	if !ok || d.From != "http://a:1" || d.Ring != a.RingHash() {
		t.Fatalf("digest = %+v ok=%v, want from=a ring=%d", d, ok, a.RingHash())
	}
	b.ApplyGossipHeader(hdr)
	if b.Size() != 2 {
		t.Fatalf("receiver ring size = %d after applying header, want 2", b.Size())
	}
	if b.RingHash() != a.RingHash() {
		t.Fatal("rings disagree after header exchange")
	}
}

// gossipNode is one in-process node for failure-detector tests: a
// Cluster with gossip loops, served over a real listener so peers can
// reach it (and lose it when the listener closes).
type gossipNode struct {
	c  *Cluster
	ts *httptest.Server
}

func startGossipNode(t *testing.T, self string, peers []string, ln net.Listener, opts GossipOptions) *gossipNode {
	t.Helper()
	c, err := New(self, peers, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c.EnableGossip(opts)
	mux := http.NewServeMux()
	c.RegisterGossipHandlers(mux)
	ts := &httptest.Server{Listener: ln, Config: &http.Server{Handler: mux}}
	ts.Start()
	c.StartGossip()
	t.Cleanup(func() { c.StopGossip(); ts.Close() })
	return &gossipNode{c: c, ts: ts}
}

func listenLocal(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln
}

func waitRing(t *testing.T, c *Cluster, want int, msg string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if c.Size() == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("%s: ring size = %d, want %d (members %+v)", msg, c.Size(), want, c.Members())
}

// TestGossipKillRejoin drives the full detector end to end with three
// in-process nodes: kill one → survivors suspect, confirm dead, and
// agree on a two-node ring; restart it on the same address with the
// same seeds → it learns its own tombstone, refutes with a bumped
// incarnation, and all three rings re-agree.
func TestGossipKillRejoin(t *testing.T) {
	lns := []net.Listener{listenLocal(t), listenLocal(t), listenLocal(t)}
	urls := make([]string, 3)
	for i, ln := range lns {
		urls[i] = "http://" + ln.Addr().String()
	}
	opts := GossipOptions{
		Interval:       10 * time.Millisecond,
		SuspectTimeout: 60 * time.Millisecond,
		SyncInterval:   50 * time.Millisecond,
		Seeds:          urls,
	}
	nodes := make([]*gossipNode, 3)
	for i := range lns {
		nodes[i] = startGossipNode(t, urls[i], urls, lns[i], opts)
	}
	for i, n := range nodes {
		if n.c.Size() != 3 {
			t.Fatalf("node %d bootstrap ring size = %d, want 3", i, n.c.Size())
		}
	}

	// Kill node 2: listener closed, loops stopped.
	nodes[2].c.StopGossip()
	nodes[2].ts.Close()
	killed := time.Now()
	waitRing(t, nodes[0].c, 2, "survivor 0 after kill")
	waitRing(t, nodes[1].c, 2, "survivor 1 after kill")
	if nodes[0].c.RingHash() != nodes[1].c.RingHash() {
		t.Fatal("survivor rings disagree")
	}
	// Detection is bounded by probe rounds + suspect timeout; allow a
	// generous multiple for loaded CI, but it must not take forever.
	if elapsed := time.Since(killed); elapsed > 8*time.Second {
		t.Fatalf("confirm-dead took %v", elapsed)
	}
	if _, _, confirms := nodes[0].c.GossipCounts(); confirms == 0 {
		t.Fatal("survivor 0 never counted a confirm-dead")
	}

	// Restart node 2 on the same address: fresh process state
	// (incarnation 0), same seeds, no flag changes.
	ln, err := net.Listen("tcp", lns[2].Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	restarted := startGossipNode(t, urls[2], urls, ln, opts)
	waitRing(t, nodes[0].c, 3, "survivor 0 after rejoin")
	waitRing(t, nodes[1].c, 3, "survivor 1 after rejoin")
	waitRing(t, restarted.c, 3, "restarted node")
	if nodes[0].c.RingHash() != restarted.c.RingHash() || nodes[1].c.RingHash() != restarted.c.RingHash() {
		t.Fatal("rings disagree after rejoin")
	}
	if inc := restarted.c.SelfIncarnation(); inc == 0 {
		t.Fatal("restarted node did not bump its incarnation past its tombstone")
	}
}

// TestProbeDropSuspects: with every direct probe dropped at the fault
// site and no relays available (two nodes), the peer is suspected and
// confirmed dead without any real network failure — the deterministic
// chaos hook for the detector.
func TestProbeDropSuspects(t *testing.T) {
	restore, err := faultinject.Enable("cluster/gossip/probe-drop", "always")
	if err != nil {
		t.Fatal(err)
	}
	defer restore()

	lns := []net.Listener{listenLocal(t), listenLocal(t)}
	urls := []string{"http://" + lns[0].Addr().String(), "http://" + lns[1].Addr().String()}
	opts := GossipOptions{
		Interval:       10 * time.Millisecond,
		SuspectTimeout: 40 * time.Millisecond,
		SyncInterval:   time.Hour, // no sync rescue: the probe path must do it
	}
	a := startGossipNode(t, urls[0], urls, lns[0], opts)
	startGossipNode(t, urls[1], urls, lns[1], opts)
	waitRing(t, a.c, 1, "probe-drop confirm-dead")
	suspects, _, confirms := a.c.GossipCounts()
	if suspects == 0 || confirms == 0 {
		t.Fatalf("counters: suspects=%d confirms=%d, want both nonzero", suspects, confirms)
	}
}

package cluster

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"time"

	"micromama/internal/faultinject"
)

// Fault-injection sites on the gossip path (see internal/faultinject).
//
// faultProbeDrop drops an outbound direct ping before it leaves the
// node, forcing the indirect ping-req path (and, if relays also fail,
// suspicion) without any real network trouble.
//
// faultGossipPartition fails every outbound gossip RPC and suppresses
// gossip piggyback headers, isolating the node's failure detector from
// the rest of the cluster while ordinary RPC traffic keeps flowing.
//
// faultGossipFlap makes this node refuse incoming pings with a 503, so
// peers suspect it; the node then learns of the suspicion from
// piggybacked deltas and must refute with a bumped incarnation — the
// flapping-peer scenario.
var (
	faultProbeDrop       = faultinject.New("cluster/gossip/probe-drop")
	faultGossipPartition = faultinject.New("cluster/gossip/partition")
	faultGossipFlap      = faultinject.New("cluster/gossip/flap")
)

// Gossip endpoint paths. They live under /internal/ next to the other
// peer-only RPCs; nodes register them via RegisterGossipHandlers.
const (
	PathGossipPing    = "/internal/gossip/ping"
	PathGossipPingReq = "/internal/gossip/ping-req"
	PathGossipSync    = "/internal/gossip/sync"
)

// HeaderGossip piggybacks membership deltas on ordinary cluster
// traffic: base64url-encoded JSON gossipMsg. Every peer RPC and every
// server response carries one, so membership converges even between
// probe ticks.
const HeaderGossip = "X-Mama-Gossip"

// MemberState is one member's liveness state in the SWIM state
// machine.
type MemberState string

const (
	StateAlive   MemberState = "alive"
	StateSuspect MemberState = "suspect"
	StateDead    MemberState = "dead"
)

// MemberUpdate is one gossiped claim about a member: (url, incarnation,
// state). Precedence between claims about the same member follows
// SWIM: a higher incarnation always wins; at equal incarnations
// suspect overrides alive and dead overrides both. Only the member
// itself ever raises its incarnation (when refuting a suspicion), which
// is what makes the ordering well-defined without clocks.
type MemberUpdate struct {
	URL   string      `json:"url"`
	Inc   uint64      `json:"inc"`
	State MemberState `json:"state"`
}

// member is the local view of one peer (self is never in the table).
type member struct {
	inc       uint64
	state     MemberState
	suspectAt time.Time // when suspicion started (state == StateSuspect)
}

// MemberInfo is a snapshot of one member for stats endpoints.
type MemberInfo struct {
	URL   string      `json:"url"`
	Inc   uint64      `json:"inc"`
	State MemberState `json:"state"`
}

// ChangeEvent describes one atomic ring transition. Hooks receive it
// synchronously after the new ring is visible, so any Owner() call
// made from a hook already sees the new membership.
type ChangeEvent struct {
	Version uint64   // membership version after this transition
	Members []string // full ring membership including self, sorted
	Joined  []string // peers that entered the ring
	Dead    []string // peers that left the ring (confirmed dead)
}

// GossipOptions tunes the failure detector. Zero values select
// defaults scaled from Interval.
type GossipOptions struct {
	// Interval is the probe cadence (default 1s).
	Interval time.Duration
	// SuspectTimeout is how long a suspected peer has to refute before
	// it is confirmed dead (default 5×Interval).
	SuspectTimeout time.Duration
	// IndirectProbes is k, the number of relays asked to ping-req a
	// peer that failed its direct probe (default 2).
	IndirectProbes int
	// SyncInterval is the full-state anti-entropy cadence (default
	// 10×Interval). Full syncs repair any deltas lost to piggyback
	// budget exhaustion and are how an isolated node finds its seeds.
	SyncInterval time.Duration
	// Seeds are join targets: synced at startup and retried whenever
	// the node finds itself alone. Seeds are not assumed to be members;
	// membership comes from what they answer.
	Seeds []string
	// MaxPiggyback bounds the membership deltas attached to one message
	// (default 8).
	MaxPiggyback int
}

func (o GossipOptions) withDefaults() GossipOptions {
	if o.Interval <= 0 {
		o.Interval = time.Second
	}
	if o.SuspectTimeout <= 0 {
		o.SuspectTimeout = 5 * o.Interval
	}
	if o.IndirectProbes <= 0 {
		o.IndirectProbes = 2
	}
	if o.SyncInterval <= 0 {
		o.SyncInterval = 10 * o.Interval
	}
	if o.MaxPiggyback <= 0 {
		o.MaxPiggyback = 8
	}
	return o
}

// gossipState is the running failure detector: probe scheduling state
// and loop lifecycle. Membership itself lives on the Cluster so stats
// and static clusters share one representation.
type gossipState struct {
	c    *Cluster
	opts GossipOptions

	mu    sync.Mutex
	order []string // shuffled probe order, consumed round-robin
	idx   int
	rng   *rand.Rand

	stopOnce sync.Once
	stop     chan struct{}
	wg       sync.WaitGroup
	started  bool
}

// gossipMsg is the wire envelope for pings, syncs, and the
// X-Mama-Gossip header. Updates always lead with the sender's own
// alive claim, so every message doubles as a heartbeat.
type gossipMsg struct {
	From    string         `json:"from"`
	Version uint64         `json:"v"`
	Ring    uint64         `json:"ring"`
	Updates []MemberUpdate `json:"updates,omitempty"`
}

// pingReqMsg asks a relay to probe Target on the sender's behalf.
type pingReqMsg struct {
	Target string    `json:"target"`
	Msg    gossipMsg `json:"msg"`
}

// pingReqResp reports whether the relay's probe reached Target, plus
// the relay's own piggyback.
type pingReqResp struct {
	OK  bool      `json:"ok"`
	Msg gossipMsg `json:"msg"`
}

// GossipDigest is the part of a gossip header a client cares about:
// who sent it and the hash of their current ring membership. Clients
// drop their owner-sticky hint when the ring hash changes.
type GossipDigest struct {
	From    string
	Version uint64
	Ring    uint64
}

// DecodeGossipDigest parses an X-Mama-Gossip header value without
// applying its membership updates (the client side of the protocol).
func DecodeGossipDigest(v string) (GossipDigest, bool) {
	msg, ok := decodeGossip(v)
	if !ok {
		return GossipDigest{}, false
	}
	return GossipDigest{From: msg.From, Version: msg.Version, Ring: msg.Ring}, true
}

func decodeGossip(v string) (gossipMsg, bool) {
	var msg gossipMsg
	if v == "" {
		return msg, false
	}
	b, err := base64.RawURLEncoding.DecodeString(v)
	if err != nil {
		return msg, false
	}
	if err := json.Unmarshal(b, &msg); err != nil {
		return msg, false
	}
	return msg, true
}

// EnableGossip configures the failure detector. Call before
// StartGossip (and before OnChange hooks fire, i.e. before any
// traffic). A cluster without EnableGossip keeps the static-membership
// behavior: the ring never changes and gossip headers are neither sent
// nor honored.
func (c *Cluster) EnableGossip(opts GossipOptions) {
	opts = opts.withDefaults()
	seeds := make([]string, 0, len(opts.Seeds))
	for _, s := range opts.Seeds {
		s = NormalizePeer(s)
		if s != "" && s != c.self {
			seeds = append(seeds, s)
		}
	}
	sort.Strings(seeds)
	opts.Seeds = seeds
	c.gossip = &gossipState{
		c:    c,
		opts: opts,
		rng:  rand.New(rand.NewSource(int64(hash64(c.self)))), // deterministic per node
		stop: make(chan struct{}),
	}
}

// GossipEnabled reports whether membership is gossip-managed.
func (c *Cluster) GossipEnabled() bool { return c.gossip != nil }

// GossipOptionsValue returns the configured options (zero when gossip
// is disabled), for stats and tests.
func (c *Cluster) GossipOptionsValue() GossipOptions {
	if c.gossip == nil {
		return GossipOptions{}
	}
	return c.gossip.opts
}

// StartGossip launches the probe and anti-entropy loops. Idempotent;
// no-op when gossip is not enabled.
func (c *Cluster) StartGossip() {
	g := c.gossip
	if g == nil {
		return
	}
	g.mu.Lock()
	if g.started {
		g.mu.Unlock()
		return
	}
	g.started = true
	g.mu.Unlock()
	g.wg.Add(1)
	go g.run()
}

// StopGossip stops the loops and waits for them. Idempotent and safe
// when gossip was never enabled or started.
func (c *Cluster) StopGossip() {
	g := c.gossip
	if g == nil {
		return
	}
	g.stopOnce.Do(func() { close(g.stop) })
	g.wg.Wait()
}

func (g *gossipState) run() {
	defer g.wg.Done()
	g.join()
	probe := time.NewTicker(g.opts.Interval)
	defer probe.Stop()
	sync := time.NewTicker(g.opts.SyncInterval)
	defer sync.Stop()
	for {
		select {
		case <-g.stop:
			return
		case <-probe.C:
			g.probeOnce()
		case <-sync.C:
			g.syncOnce()
		}
	}
}

// join performs the initial full-state exchange with every seed. A
// restarted node (incarnation 0) learns here that the cluster holds a
// dead tombstone for it at incarnation N, refutes with N+1, and its
// next outbound message re-announces it — rejoin needs no flag changes
// and no operator action.
func (g *gossipState) join() {
	for _, s := range g.opts.Seeds {
		select {
		case <-g.stop:
			return
		default:
		}
		g.c.gossipSync(s)
	}
}

// probeOnce is one SWIM protocol period: expire overdue suspicions,
// then probe the next member — direct ping first, k indirect ping-req
// relays on failure, suspicion if nobody can reach it.
func (g *gossipState) probeOnce() {
	g.c.expireSuspects(g.opts.SuspectTimeout)
	target := g.nextTarget()
	if target == "" {
		return
	}
	ok := false
	if !faultProbeDrop.Fire() {
		ok = g.c.gossipPing(target, g.probeTimeout())
	}
	if !ok {
		for _, relay := range g.relays(target) {
			if g.c.gossipPingReq(relay, target, g.probeTimeout()) {
				ok = true
				break
			}
		}
	}
	if ok {
		// An answered probe proves liveness directly; clear any local
		// suspicion without waiting for the member's own refutation.
		g.c.clearSuspect(target)
	} else {
		g.c.markSuspect(target)
	}
}

// syncOnce is periodic anti-entropy: a full-state exchange with one
// random ring member, or with a seed when the node is alone (which is
// how a partitioned or freshly-started node finds its way back).
func (g *gossipState) syncOnce() {
	peers := g.c.Peers()
	g.mu.Lock()
	var target string
	if len(peers) > 0 {
		target = peers[g.rng.Intn(len(peers))]
	} else if len(g.opts.Seeds) > 0 {
		target = g.opts.Seeds[g.rng.Intn(len(g.opts.Seeds))]
	}
	g.mu.Unlock()
	if target != "" {
		g.c.gossipSync(target)
	}
}

// probeTimeout bounds one probe RPC: comfortably within a protocol
// period so a slow peer fails the direct ping with time left for the
// indirect round, but never pathologically short.
func (g *gossipState) probeTimeout() time.Duration {
	to := g.opts.Interval / 2
	if to < 50*time.Millisecond {
		to = 50 * time.Millisecond
	}
	if to > 2*time.Second {
		to = 2 * time.Second
	}
	return to
}

// nextTarget returns the next peer in the shuffled round-robin probe
// order, reshuffling from current membership at each wrap. Round-robin
// (rather than uniform random) bounds the worst-case detection time:
// every member is probed at least once per n intervals.
func (g *gossipState) nextTarget() string {
	peers := g.c.Peers()
	if len(peers) == 0 {
		return ""
	}
	alive := make(map[string]bool, len(peers))
	for _, p := range peers {
		alive[p] = true
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	for {
		if g.idx >= len(g.order) {
			g.order = append(g.order[:0], peers...)
			g.rng.Shuffle(len(g.order), func(i, j int) {
				g.order[i], g.order[j] = g.order[j], g.order[i]
			})
			g.idx = 0
		}
		t := g.order[g.idx]
		g.idx++
		if alive[t] {
			return t
		}
	}
}

// relays picks up to IndirectProbes ring members (excluding self and
// the target) to ask for an indirect probe.
func (g *gossipState) relays(target string) []string {
	peers := g.c.Peers()
	cand := make([]string, 0, len(peers))
	for _, p := range peers {
		if p != target {
			cand = append(cand, p)
		}
	}
	g.mu.Lock()
	g.rng.Shuffle(len(cand), func(i, j int) { cand[i], cand[j] = cand[j], cand[i] })
	g.mu.Unlock()
	if len(cand) > g.opts.IndirectProbes {
		cand = cand[:g.opts.IndirectProbes]
	}
	return cand
}

// ---------------------------------------------------------------------------
// Membership mutation. All of it funnels through applyUpdates /
// markSuspect / clearSuspect / expireSuspects, each of which rebuilds
// the ring atomically and fires change hooks when the alive set moved.

// applyUpdates merges a batch of gossiped claims into the member
// table under the SWIM precedence rules, rebuilding the ring once for
// the whole batch.
func (c *Cluster) applyUpdates(updates []MemberUpdate) {
	if len(updates) == 0 {
		return
	}
	c.memMu.Lock()
	before := c.ringMembersLocked()
	for _, u := range updates {
		c.applyOneLocked(u)
	}
	ev, changed := c.rebuildLocked(before)
	c.memMu.Unlock()
	if changed {
		c.fireHooks(ev)
	}
}

func (c *Cluster) applyOneLocked(u MemberUpdate) {
	u.URL = NormalizePeer(u.URL)
	if u.URL == "" {
		return
	}
	if u.State != StateAlive && u.State != StateSuspect && u.State != StateDead {
		return
	}
	if u.URL == c.self {
		// Somebody thinks we are suspect or dead. Refute: bump our
		// incarnation past theirs and gossip the new alive claim, which
		// overrides their claim everywhere it has spread.
		if u.State != StateAlive && u.Inc >= c.selfInc {
			c.selfInc = u.Inc + 1
			c.refutes.Add(1)
			c.enqueueLocked(MemberUpdate{URL: c.self, Inc: c.selfInc, State: StateAlive})
		}
		return
	}
	m, ok := c.members[u.URL]
	if !ok {
		m = &member{inc: u.Inc, state: u.State}
		switch u.State {
		case StateSuspect:
			m.suspectAt = time.Now()
			c.suspectsCount.Add(1)
		case StateDead:
			c.confirmsCount.Add(1)
		}
		c.members[u.URL] = m
		c.enqueueLocked(u)
		return
	}
	applies := false
	switch u.State {
	case StateAlive:
		// Alive only wins with a strictly higher incarnation: at equal
		// incarnations suspicion sticks until the member refutes.
		applies = u.Inc > m.inc
	case StateSuspect:
		applies = u.Inc > m.inc || (u.Inc == m.inc && m.state == StateAlive)
	case StateDead:
		// Dead is irrefutable at its incarnation; only a higher-
		// incarnation alive claim (a refutation or a restart that
		// learned its tombstone) resurrects the member.
		applies = u.Inc > m.inc || (u.Inc == m.inc && m.state != StateDead)
	}
	if !applies {
		return
	}
	prev := m.state
	m.inc, m.state = u.Inc, u.State
	switch {
	case u.State == StateSuspect:
		m.suspectAt = time.Now()
		c.suspectsCount.Add(1)
	case u.State == StateDead && prev != StateDead:
		c.confirmsCount.Add(1)
	}
	c.enqueueLocked(u)
}

// markSuspect starts suspicion on a peer that failed both direct and
// indirect probes.
func (c *Cluster) markSuspect(peer string) {
	peer = NormalizePeer(peer)
	c.memMu.Lock()
	defer c.memMu.Unlock()
	m, ok := c.members[peer]
	if !ok || m.state != StateAlive {
		return
	}
	m.state = StateSuspect
	m.suspectAt = time.Now()
	c.suspectsCount.Add(1)
	c.enqueueLocked(MemberUpdate{URL: peer, Inc: m.inc, State: StateSuspect})
}

// clearSuspect reverts a local suspicion after a successful probe.
// Local-only (not gossiped): remote suspicions are cleared by the
// member's own incarnation-bumping refutation, which this node will
// have delivered to it via piggyback.
func (c *Cluster) clearSuspect(peer string) {
	peer = NormalizePeer(peer)
	c.memMu.Lock()
	defer c.memMu.Unlock()
	m, ok := c.members[peer]
	if ok && m.state == StateSuspect {
		m.state = StateAlive
	}
}

// expireSuspects confirms dead every member suspected longer than the
// timeout, removing them from the ring.
func (c *Cluster) expireSuspects(timeout time.Duration) {
	now := time.Now()
	c.memMu.Lock()
	before := c.ringMembersLocked()
	for url, m := range c.members {
		if m.state == StateSuspect && now.Sub(m.suspectAt) >= timeout {
			m.state = StateDead
			c.confirmsCount.Add(1)
			c.enqueueLocked(MemberUpdate{URL: url, Inc: m.inc, State: StateDead})
		}
	}
	ev, changed := c.rebuildLocked(before)
	c.memMu.Unlock()
	if changed {
		c.fireHooks(ev)
	}
}

// ringMembersLocked returns the current ring membership: self plus
// every non-dead member, sorted.
func (c *Cluster) ringMembersLocked() []string {
	out := make([]string, 0, len(c.members)+1)
	out = append(out, c.self)
	for url, m := range c.members {
		if m.state != StateDead {
			out = append(out, url)
		}
	}
	sort.Strings(out)
	return out
}

// rebuildLocked swaps in a new ring if the alive set changed, bumping
// the membership version and building the change event.
func (c *Cluster) rebuildLocked(before []string) (ChangeEvent, bool) {
	after := c.ringMembersLocked()
	if stringSlicesEqual(before, after) {
		return ChangeEvent{}, false
	}
	ring := NewRing(after, c.vnodes)
	c.ring.Store(ring)
	c.ringHash.Store(hash64(joinPeers(after)))
	v := c.version.Add(1)
	return ChangeEvent{
		Version: v,
		Members: after,
		Joined:  diffStrings(after, before),
		Dead:    diffStrings(before, after),
	}, true
}

// enqueueLocked queues a membership delta for piggybacking, with a
// retransmit budget that scales with cluster size (classic SWIM:
// O(log n) transmissions spread a rumor with high probability). A
// newer claim about the same member replaces the queued one.
func (c *Cluster) enqueueLocked(u MemberUpdate) {
	if c.gossip == nil {
		return
	}
	n := len(c.members) + 1
	c.queue[u.URL] = &queuedUpdate{u: u, remaining: 4 + 3*bits.Len(uint(n))}
}

type queuedUpdate struct {
	u         MemberUpdate
	remaining int
}

// outMsg builds one outbound gossip envelope: the node's own alive
// claim plus up to max queued deltas (deterministic order, budgets
// decremented).
func (c *Cluster) outMsg(max int) gossipMsg {
	c.memMu.Lock()
	ups := make([]MemberUpdate, 0, max+1)
	ups = append(ups, MemberUpdate{URL: c.self, Inc: c.selfInc, State: StateAlive})
	if len(c.queue) > 0 {
		keys := make([]string, 0, len(c.queue))
		for k := range c.queue {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if len(ups) > max {
				break
			}
			q := c.queue[k]
			ups = append(ups, q.u)
			q.remaining--
			if q.remaining <= 0 {
				delete(c.queue, k)
			}
		}
	}
	c.memMu.Unlock()
	return gossipMsg{From: c.self, Version: c.version.Load(), Ring: c.ringHash.Load(), Updates: ups}
}

// fullState snapshots every member claim including dead tombstones
// (so a restarted member learns its own tombstone and refutes) and the
// node's own alive claim.
func (c *Cluster) fullState() []MemberUpdate {
	c.memMu.Lock()
	defer c.memMu.Unlock()
	out := make([]MemberUpdate, 0, len(c.members)+1)
	out = append(out, MemberUpdate{URL: c.self, Inc: c.selfInc, State: StateAlive})
	keys := make([]string, 0, len(c.members))
	for k := range c.members {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		m := c.members[k]
		out = append(out, MemberUpdate{URL: k, Inc: m.inc, State: m.state})
	}
	return out
}

// ---------------------------------------------------------------------------
// Transport.

// gossipPing sends one direct ping. The response piggyback (which
// always includes the target's own alive claim) is applied on success.
func (c *Cluster) gossipPing(target string, timeout time.Duration) bool {
	resp, ok := c.gossipPost(target, PathGossipPing, c.outMsg(c.maxPiggyback()), timeout)
	if !ok {
		return false
	}
	c.applyUpdates(resp.Updates)
	return true
}

// gossipPingReq asks relay to probe target on our behalf.
func (c *Cluster) gossipPingReq(relay, target string, timeout time.Duration) bool {
	if faultGossipPartition.Fire() {
		return false
	}
	body, _ := json.Marshal(pingReqMsg{Target: target, Msg: c.outMsg(c.maxPiggyback())})
	// The relay needs its own probe timeout inside ours.
	raw, ok := c.gossipRoundTrip(relay, PathGossipPingReq, body, 2*timeout)
	if !ok {
		return false
	}
	var pr pingReqResp
	if json.Unmarshal(raw, &pr) != nil {
		return false
	}
	c.applyUpdates(pr.Msg.Updates)
	return pr.OK
}

// gossipSync runs one full-state exchange with a peer; both sides end
// up with the union of their knowledge.
func (c *Cluster) gossipSync(target string) bool {
	msg := gossipMsg{From: c.self, Version: c.version.Load(), Ring: c.ringHash.Load(), Updates: c.fullState()}
	resp, ok := c.gossipPost(target, PathGossipSync, msg, c.rpcTO)
	if !ok {
		return false
	}
	c.applyUpdates(resp.Updates)
	return true
}

func (c *Cluster) gossipPost(target, path string, msg gossipMsg, timeout time.Duration) (gossipMsg, bool) {
	if faultGossipPartition.Fire() {
		return gossipMsg{}, false
	}
	body, _ := json.Marshal(msg)
	raw, ok := c.gossipRoundTrip(target, path, body, timeout)
	if !ok {
		return gossipMsg{}, false
	}
	var resp gossipMsg
	if json.Unmarshal(raw, &resp) != nil {
		return gossipMsg{}, false
	}
	return resp, true
}

// gossipRoundTrip is the raw HTTP exchange for gossip RPCs. Outcomes
// deliberately do not feed the per-peer breakers: liveness is the
// gossip layer's own verdict now, and a breaker half-open probe racing
// the failure detector would make both less predictable.
func (c *Cluster) gossipRoundTrip(target, path string, body []byte, timeout time.Duration) ([]byte, bool) {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, target+path, bytes.NewReader(body))
	if err != nil {
		return nil, false
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil || resp.StatusCode != http.StatusOK {
		return nil, false
	}
	return raw, true
}

func (c *Cluster) maxPiggyback() int {
	if c.gossip == nil {
		return 8
	}
	return c.gossip.opts.MaxPiggyback
}

// ---------------------------------------------------------------------------
// HTTP handlers and the piggyback header.

// RegisterGossipHandlers mounts the gossip endpoints on a mux. Safe to
// call for static clusters too: the handlers answer from the static
// table and never mutate it (applyUpdates is gated on gossip).
func (c *Cluster) RegisterGossipHandlers(mux *http.ServeMux) {
	mux.HandleFunc("POST "+PathGossipPing, c.handleGossipPing)
	mux.HandleFunc("POST "+PathGossipPingReq, c.handleGossipPingReq)
	mux.HandleFunc("POST "+PathGossipSync, c.handleGossipSync)
}

func (c *Cluster) handleGossipPing(w http.ResponseWriter, r *http.Request) {
	if faultGossipFlap.Fire() {
		http.Error(w, "gossip flap injected", http.StatusServiceUnavailable)
		return
	}
	var msg gossipMsg
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&msg); err == nil && c.gossip != nil {
		c.applyUpdates(msg.Updates)
	}
	writeGossipJSON(w, c.outMsg(c.maxPiggyback()))
}

func (c *Cluster) handleGossipPingReq(w http.ResponseWriter, r *http.Request) {
	var req pingReqMsg
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, "bad ping-req body", http.StatusBadRequest)
		return
	}
	if c.gossip != nil {
		c.applyUpdates(req.Msg.Updates)
	}
	target := NormalizePeer(req.Target)
	ok := false
	if target != "" && target != c.self {
		// Relay's own probe, subject to the same partition fault.
		to := 2 * time.Second
		if c.gossip != nil {
			to = c.gossip.probeTimeout()
		}
		ok = c.gossipPing(target, to)
	}
	writeGossipJSON(w, pingReqResp{OK: ok, Msg: c.outMsg(c.maxPiggyback())})
}

func (c *Cluster) handleGossipSync(w http.ResponseWriter, r *http.Request) {
	var msg gossipMsg
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&msg); err != nil {
		http.Error(w, "bad sync body", http.StatusBadRequest)
		return
	}
	if c.gossip != nil {
		c.applyUpdates(msg.Updates)
	}
	writeGossipJSON(w, gossipMsg{From: c.self, Version: c.version.Load(), Ring: c.ringHash.Load(), Updates: c.fullState()})
}

func writeGossipJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, fmt.Sprintf("encode gossip response: %v", err), http.StatusInternalServerError)
		return
	}
	w.Write(b)
}

// GossipHeaderValue returns the X-Mama-Gossip value to attach to an
// outbound request or response, or "" when gossip is disabled (or the
// partition fault is isolating this node).
func (c *Cluster) GossipHeaderValue() string {
	if c.gossip == nil {
		return ""
	}
	if faultGossipPartition.Fire() {
		return ""
	}
	b, err := json.Marshal(c.outMsg(c.maxPiggyback()))
	if err != nil {
		return ""
	}
	return base64.RawURLEncoding.EncodeToString(b)
}

// ApplyGossipHeader merges the membership deltas piggybacked on an
// incoming request or a peer response. No-op for static clusters.
func (c *Cluster) ApplyGossipHeader(v string) {
	if c.gossip == nil || v == "" {
		return
	}
	msg, ok := decodeGossip(v)
	if !ok {
		return
	}
	c.applyUpdates(msg.Updates)
}

// ---------------------------------------------------------------------------
// Snapshots for stats.

// Members snapshots the full member table including self and dead
// tombstones, sorted by URL.
func (c *Cluster) Members() []MemberInfo {
	c.memMu.Lock()
	defer c.memMu.Unlock()
	out := make([]MemberInfo, 0, len(c.members)+1)
	out = append(out, MemberInfo{URL: c.self, Inc: c.selfInc, State: StateAlive})
	for url, m := range c.members {
		out = append(out, MemberInfo{URL: url, Inc: m.inc, State: m.state})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// MembershipVersion returns the node-local membership version: bumped
// once per atomic ring transition.
func (c *Cluster) MembershipVersion() uint64 { return c.version.Load() }

// RingHash returns a stable hash of the sorted ring membership.
// Identical on every converged node, unlike the node-local version.
func (c *Cluster) RingHash() uint64 { return c.ringHash.Load() }

// SelfIncarnation returns this node's current incarnation number.
func (c *Cluster) SelfIncarnation() uint64 {
	c.memMu.Lock()
	defer c.memMu.Unlock()
	return c.selfInc
}

// GossipCounts returns the lifetime suspicion / refutation /
// confirm-dead counters.
func (c *Cluster) GossipCounts() (suspects, refutes, confirms uint64) {
	return c.suspectsCount.Load(), c.refutes.Load(), c.confirmsCount.Load()
}

// OnChange registers a hook called synchronously after every atomic
// ring transition. Register hooks before StartGossip and before
// serving traffic; registration is not synchronized with firing.
func (c *Cluster) OnChange(fn func(ChangeEvent)) {
	c.hooksMu.Lock()
	c.hooks = append(c.hooks, fn)
	c.hooksMu.Unlock()
}

func (c *Cluster) fireHooks(ev ChangeEvent) {
	c.hooksMu.Lock()
	hooks := append([]func(ChangeEvent){}, c.hooks...)
	c.hooksMu.Unlock()
	for _, fn := range hooks {
		fn(ev)
	}
}

// ---------------------------------------------------------------------------
// Small helpers.

func joinPeers(peers []string) string {
	var b bytes.Buffer
	for i, p := range peers {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(p)
	}
	return b.String()
}

func stringSlicesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// diffStrings returns the elements of a not present in b (both
// sorted).
func diffStrings(a, b []string) []string {
	in := make(map[string]bool, len(b))
	for _, s := range b {
		in[s] = true
	}
	var out []string
	for _, s := range a {
		if !in[s] {
			out = append(out, s)
		}
	}
	return out
}

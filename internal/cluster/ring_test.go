package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

func peersN(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://node-%c.example:80%02d", 'a'+i, i)
	}
	return out
}

func keysN(n int) []string {
	out := make([]string, n)
	for i := range out {
		// 16-hex-digit routing prefixes, the shape production keys have.
		out[i] = fmt.Sprintf("%016x", uint64(i)*0x9e3779b97f4a7c15+7)
	}
	return out
}

// TestRingDistribution bounds the key-load imbalance across 3-, 5-,
// and 8-node rings at the default vnode count: with 20k keys no node
// may hold more than 1.6x or less than 0.5x its fair share. (Measured
// ratios sit near 1.15/0.85; the asserted bounds leave room for a
// different key population without letting real skew pass.)
func TestRingDistribution(t *testing.T) {
	keys := keysN(20000)
	for _, n := range []int{3, 5, 8} {
		r := NewRing(peersN(n), 0)
		load := make(map[string]int)
		for _, k := range keys {
			owner := r.Owner(k)
			if owner == "" {
				t.Fatalf("%d nodes: key %q has no owner", n, k)
			}
			load[owner]++
		}
		if len(load) != n {
			t.Fatalf("%d nodes: only %d received keys: %v", n, len(load), load)
		}
		fair := float64(len(keys)) / float64(n)
		for p, got := range load {
			ratio := float64(got) / fair
			if ratio > 1.6 || ratio < 0.5 {
				t.Errorf("%d nodes: %s holds %d keys (%.2fx fair share), outside [0.5, 1.6]",
					n, p, got, ratio)
			}
		}
	}
}

// TestRingMinimalRemap pins the consistent-hashing contract: removing
// one node of five remaps exactly the keys it owned — every key owned
// by a surviving node keeps its owner — and the orphaned keys scatter
// across the survivors instead of piling onto one.
func TestRingMinimalRemap(t *testing.T) {
	peers := peersN(5)
	before := NewRing(peers, 0)
	after := NewRing(peers[1:], 0) // drop node a
	removed := NormalizePeer(peers[0])

	keys := keysN(20000)
	moved, orphaned := 0, 0
	heirs := make(map[string]int)
	for _, k := range keys {
		ob, oa := before.Owner(k), after.Owner(k)
		if ob == removed {
			orphaned++
			heirs[oa]++
			continue
		}
		if ob != oa {
			moved++
		}
	}
	if moved != 0 {
		t.Errorf("%d keys owned by surviving nodes changed owner (want 0)", moved)
	}
	if orphaned == 0 {
		t.Fatal("removed node owned no keys; distribution test should have caught this")
	}
	// The orphans must spread over all four survivors, not cascade onto
	// the removed node's ring successor alone.
	if len(heirs) < 3 {
		t.Errorf("orphaned keys landed on only %d survivors: %v", len(heirs), heirs)
	}
	if frac := float64(orphaned) / float64(len(keys)); frac > 0.35 {
		t.Errorf("removing 1 of 5 nodes orphaned %.0f%% of keys, want ~20%%", frac*100)
	}
}

// TestRingDeterministicOwnership: every node must compute the same
// ring from the same membership, regardless of list order, duplicate
// entries, or URL spelling variants.
func TestRingDeterministicOwnership(t *testing.T) {
	peers := peersN(5)
	ref := NewRing(peers, 0)

	shuffled := append([]string(nil), peers...)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 10; i++ {
		rng.Shuffle(len(shuffled), func(a, b int) { shuffled[a], shuffled[b] = shuffled[b], shuffled[a] })
		r := NewRing(shuffled, 0)
		for _, k := range keysN(512) {
			if got, want := r.Owner(k), ref.Owner(k); got != want {
				t.Fatalf("shuffle %d: Owner(%q) = %q, want %q", i, k, got, want)
			}
		}
	}

	// Duplicates and trailing slashes collapse to the same ring.
	messy := append(append([]string(nil), peers...), peers[0]+"/", " "+peers[1])
	r := NewRing(messy, 0)
	if got, want := len(r.Peers()), len(peers); got != want {
		t.Fatalf("messy list produced %d peers, want %d", got, want)
	}
	for _, k := range keysN(512) {
		if got, want := r.Owner(k), ref.Owner(k); got != want {
			t.Fatalf("messy list: Owner(%q) = %q, want %q", k, got, want)
		}
	}
}

// TestOwnerPrefixRouting: ownership must be computable from a bare job
// ID, i.e. hashing the full key and hashing its 16-digit routing
// prefix agree (Owner truncates), and OwnerOfJobID strips the "j".
func TestOwnerPrefixRouting(t *testing.T) {
	c, err := New("http://n1:1", []string{"http://n2:1", "http://n3:1"}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fullKey := "0123456789abcdef" + "deadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeef"
	byKey := c.Owner(fullKey)
	byID := c.OwnerOfJobID("j0123456789abcdef")
	if byKey == "" || byKey != byID {
		t.Fatalf("Owner(key)=%q, OwnerOfJobID(id)=%q; want equal and non-empty", byKey, byID)
	}
}

// TestRingSingleNode: a cluster of one routes everything to self.
func TestRingSingleNode(t *testing.T) {
	c, err := New("http://only:1", nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keysN(64) {
		if o := c.Owner(k); !c.IsSelf(o) {
			t.Fatalf("single-node cluster routed %q to %q", k, o)
		}
	}
	if got := c.Peers(); len(got) != 0 {
		t.Fatalf("single-node cluster lists peers: %v", got)
	}
}

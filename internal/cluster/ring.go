// Package cluster turns a set of independent mamaserved processes into
// one sharded service. Jobs are already content-addressed (the SHA-256
// job key), so the cluster layer is thin and stateless: a consistent-
// hash ring assigns every job key an owning peer, any node accepts any
// request and routes it to the owner, and a small health breaker per
// peer lets the serving path degrade to local compute the moment a
// peer stops answering — a partition slows the cluster down, it never
// surfaces errors to clients.
//
// Membership is seeded from the command line or a JSON membership
// file and, with gossip enabled, maintained at runtime by a SWIM-style
// failure detector (gossip.go): probes suspect unresponsive peers,
// suspects that fail to refute are confirmed dead and leave the ring,
// and rejoining nodes announce themselves with a bumped incarnation.
// Because ring construction is deterministic (peers are sorted before
// hashing, vnode points depend only on the peer URL), every node that
// converges on the same member set computes the identical ring.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strings"
)

// DefaultVnodes is the default number of virtual nodes per peer. 128
// points per peer keeps the maximum/mean key-load ratio under ~1.25
// for small clusters (see ring_test.go) while ring construction and
// lookup stay trivially cheap.
const DefaultVnodes = 128

// ringPoint is one virtual node: a position on the 64-bit hash circle
// and the peer that owns the arc ending at it.
type ringPoint struct {
	pos  uint64
	peer string
}

// Ring is a consistent-hash ring over peer URLs. Immutable once built;
// rebuilding on membership change is cheap (sort of peers×vnodes
// points) and remaps only the keys owned by the peers that changed.
type Ring struct {
	points []ringPoint
	peers  []string // sorted, deduplicated
}

// hash64 maps a string to its position on the circle. SHA-256
// truncated to 64 bits: overkill for speed but exactly as collision-
// resistant and — more importantly — stable across architectures and
// releases, so every node agrees on ownership forever.
func hash64(s string) uint64 {
	h := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(h[:8])
}

// NewRing builds the ring for a peer list. Peers are normalized
// (sorted, deduplicated) first, so any permutation of the same list —
// every node's flag order, a shuffled membership file — produces an
// identical ring. vnodes <= 0 selects DefaultVnodes.
func NewRing(peers []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	norm := make([]string, 0, len(peers))
	seen := make(map[string]bool, len(peers))
	for _, p := range peers {
		p = NormalizePeer(p)
		if p == "" || seen[p] {
			continue
		}
		seen[p] = true
		norm = append(norm, p)
	}
	sort.Strings(norm)
	r := &Ring{peers: norm}
	r.points = make([]ringPoint, 0, len(norm)*vnodes)
	for _, p := range norm {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{
				pos:  hash64(fmt.Sprintf("%s#%d", p, i)),
				peer: p,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].pos != r.points[j].pos {
			return r.points[i].pos < r.points[j].pos
		}
		// Tie-break on peer name so equal positions (astronomically
		// unlikely) still order identically on every node.
		return r.points[i].peer < r.points[j].peer
	})
	return r
}

// Peers returns the normalized, sorted peer list the ring was built
// from. Callers must not mutate it.
func (r *Ring) Peers() []string { return r.peers }

// Owner returns the peer owning a key: the first vnode clockwise from
// the key's position. Empty ring → "".
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	pos := hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= pos })
	if i == len(r.points) {
		i = 0 // wrap past the highest point to the first
	}
	return r.points[i].peer
}

// NormalizePeer canonicalizes a peer URL so that spelling variants
// ("http://a:1/", "http://a:1") hash identically on every node.
func NormalizePeer(p string) string {
	p = strings.TrimSpace(p)
	p = strings.TrimRight(p, "/")
	if p == "" {
		return ""
	}
	if !strings.Contains(p, "://") {
		p = "http://" + p
	}
	return p
}

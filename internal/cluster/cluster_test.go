package cluster

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"micromama/internal/faultinject"
)

// TestBreaker: consecutive RPC failures open the breaker, a cooldown
// expiry lets a probe through, and a success closes it again.
func TestBreaker(t *testing.T) {
	c, err := New("http://self:1", []string{"http://peer:1"}, Options{
		FailureThreshold: 3, Cooldown: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	const peer = "http://peer:1"
	if !c.Healthy(peer) {
		t.Fatal("fresh peer should be healthy")
	}
	c.ReportFailure(peer)
	c.ReportFailure(peer)
	if !c.Healthy(peer) {
		t.Fatal("peer unhealthy below the failure threshold")
	}
	c.ReportFailure(peer)
	if c.Healthy(peer) {
		t.Fatal("breaker did not open at the threshold")
	}
	if got := c.UnhealthyPeers(); len(got) != 1 || got[0] != peer {
		t.Fatalf("UnhealthyPeers = %v, want [%s]", got, peer)
	}
	time.Sleep(60 * time.Millisecond)
	if !c.Healthy(peer) {
		t.Fatal("breaker did not admit a probe after cooldown")
	}
	c.ReportSuccess(peer)
	c.ReportFailure(peer) // one failure after success: closed again
	if !c.Healthy(peer) {
		t.Fatal("success did not reset the failure count")
	}
}

// TestBreakerHalfOpenRecovery pins the half-open contract from both
// sides: after the cooldown the breaker admits exactly the probe
// traffic (Healthy flips true, the peer leaves UnhealthyPeers), a
// failed probe re-opens it for a fresh cooldown, and a successful
// probe closes it fully — the peer then tolerates FailureThreshold-1
// new failures before opening again.
func TestBreakerHalfOpenRecovery(t *testing.T) {
	const peer = "http://peer:1"
	c, err := New("http://self:1", []string{peer}, Options{
		FailureThreshold: 2, Cooldown: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	trip := func() {
		c.ReportFailure(peer)
		c.ReportFailure(peer)
	}

	// Open, then cooldown: half-open (probe admitted, off the
	// unhealthy list).
	trip()
	if c.Healthy(peer) {
		t.Fatal("breaker did not open at the threshold")
	}
	time.Sleep(60 * time.Millisecond)
	if !c.Healthy(peer) {
		t.Fatal("half-open breaker did not admit a probe after cooldown")
	}
	if got := c.UnhealthyPeers(); len(got) != 0 {
		t.Fatalf("UnhealthyPeers after cooldown = %v, want empty (half-open)", got)
	}

	// A failed probe re-opens immediately for a fresh cooldown.
	c.ReportFailure(peer)
	if c.Healthy(peer) {
		t.Fatal("failed probe did not re-open the half-open breaker")
	}
	if got := c.UnhealthyPeers(); len(got) != 1 || got[0] != peer {
		t.Fatalf("UnhealthyPeers after failed probe = %v, want [%s]", got, peer)
	}

	// Cooldown again, successful probe: fully closed — the failure
	// count resets, so one new failure (below threshold) stays healthy
	// and a second opens it again.
	time.Sleep(60 * time.Millisecond)
	if !c.Healthy(peer) {
		t.Fatal("breaker did not admit the second probe")
	}
	c.ReportSuccess(peer)
	c.ReportFailure(peer)
	if !c.Healthy(peer) {
		t.Fatal("successful probe did not reset the failure count")
	}
	c.ReportFailure(peer)
	if c.Healthy(peer) {
		t.Fatal("closed breaker did not re-open at the threshold")
	}
}

// TestDoFeedsBreaker: transport failures open the breaker through Do,
// and any HTTP answer (even a 500) closes it — an answering peer is
// alive.
func TestDoFeedsBreaker(t *testing.T) {
	var status atomic.Int32
	status.Store(http.StatusInternalServerError)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get(HeaderForwarded) == "" {
			t.Error("peer RPC missing the forwarded header")
		}
		w.WriteHeader(int(status.Load()))
	}))
	defer ts.Close()

	c, err := New("http://self:1", []string{ts.URL}, Options{FailureThreshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if code, _, err := c.Do(ctx, ts.URL, http.MethodGet, "/x", nil); err != nil || code != http.StatusInternalServerError {
		t.Fatalf("Do = (%d, %v), want (500, nil)", code, err)
	}
	if !c.Healthy(ts.URL) {
		t.Fatal("an answering peer must stay healthy")
	}

	dead, _ := New("http://self:1", []string{"http://127.0.0.1:1"}, Options{
		FailureThreshold: 1, RPCTimeout: 200 * time.Millisecond,
	})
	if _, _, err := dead.Do(ctx, "http://127.0.0.1:1", http.MethodGet, "/x", nil); err == nil {
		t.Fatal("Do against a dead peer succeeded")
	}
	if dead.Healthy("http://127.0.0.1:1") {
		t.Fatal("transport failure did not open the breaker")
	}
}

// TestPartitionFault: the cluster/rpc/partition site fails RPCs
// without touching the network and feeds the breaker.
func TestPartitionFault(t *testing.T) {
	hits := atomic.Int32{}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
	}))
	defer ts.Close()
	restore, err := faultinject.Enable("cluster/rpc/partition", "always")
	if err != nil {
		t.Fatal(err)
	}
	defer restore()

	c, _ := New("http://self:1", []string{ts.URL}, Options{FailureThreshold: 1})
	if _, _, err := c.Do(context.Background(), ts.URL, http.MethodGet, "/x", nil); err == nil {
		t.Fatal("partitioned RPC succeeded")
	}
	if hits.Load() != 0 {
		t.Fatal("partitioned RPC reached the peer")
	}
	if c.Healthy(ts.URL) {
		t.Fatal("partition did not open the breaker")
	}
}

// TestPeerDownFault: the cluster/peer/down site forces Healthy()
// false, the shard-death chaos hook.
func TestPeerDownFault(t *testing.T) {
	restore, err := faultinject.Enable("cluster/peer/down", "always")
	if err != nil {
		t.Fatal(err)
	}
	defer restore()
	c, _ := New("http://self:1", []string{"http://peer:1"}, Options{})
	if c.Healthy("http://peer:1") {
		t.Fatal("peer/down fault did not mark the peer unhealthy")
	}
}

// TestLoadMembership covers both accepted file shapes and the error
// paths.
func TestLoadMembership(t *testing.T) {
	dir := t.TempDir()
	bare := filepath.Join(dir, "bare.json")
	os.WriteFile(bare, []byte(`["http://a:1", "http://b:1"]`), 0o644)
	obj := filepath.Join(dir, "obj.json")
	os.WriteFile(obj, []byte(`{"peers": ["http://a:1"]}`), 0o644)
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte(`{"peers": 7}`), 0o644)

	if got, err := LoadMembership(bare); err != nil || len(got) != 2 {
		t.Fatalf("bare array: (%v, %v)", got, err)
	}
	if got, err := LoadMembership(obj); err != nil || len(got) != 1 {
		t.Fatalf("object form: (%v, %v)", got, err)
	}
	if _, err := LoadMembership(bad); err == nil {
		t.Fatal("malformed membership file accepted")
	}
	if _, err := LoadMembership(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing membership file accepted")
	}
}

package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"micromama/internal/faultinject"
)

// Fault-injection sites on the cluster path (see internal/faultinject).
//
// faultPartition fails an outbound peer RPC as if the network were
// partitioned: the request never leaves the node and the error feeds
// the peer's health breaker, exactly like a real unreachable host.
//
// faultPeerDown makes the health breaker report a peer dead without
// any RPC having failed — the "owning shard died" scenario, letting
// chaos tests force the degrade-to-local path deterministically.
var (
	faultPartition = faultinject.New("cluster/rpc/partition")
	faultPeerDown  = faultinject.New("cluster/peer/down")
)

// ErrPartitioned marks an RPC suppressed by the partition fault site.
var ErrPartitioned = fmt.Errorf("cluster: injected partition")

// Options tunes a Cluster. Zero values select production defaults.
type Options struct {
	// Vnodes is the virtual-node count per peer (default DefaultVnodes).
	Vnodes int
	// FailureThreshold is how many consecutive RPC failures open a
	// peer's breaker (default 3).
	FailureThreshold int
	// Cooldown is how long an open breaker reports the peer unhealthy
	// before allowing a probe (default 2s).
	Cooldown time.Duration
	// RPCTimeout bounds one peer RPC (default 10s). Job proxying uses
	// its own, longer deadline derived from the job timeout.
	RPCTimeout time.Duration
	// HTTPClient overrides the peer HTTP client (tests). When nil a
	// client with a connection-reusing transport is built: proxying a
	// stream of jobs to the same few peers must not pay per-request
	// connection setup.
	HTTPClient *http.Client
}

// peerHealth is one peer's breaker state.
type peerHealth struct {
	failures  int       // consecutive failures
	openUntil time.Time // unhealthy until this instant once open
}

// Cluster is one node's view of the peer set: versioned membership,
// the ring, the breaker table, and the HTTP client used for peer RPCs.
// Safe for concurrent use.
//
// Membership starts from the bootstrap peer list and, when gossip is
// enabled (EnableGossip), evolves at runtime: the SWIM failure
// detector in gossip.go mutates the member table and every transition
// rebuilds the ring and swaps it in atomically, so readers always see
// a complete, internally-consistent ring.
type Cluster struct {
	self   string
	vnodes int
	hc     *http.Client
	rpcTO  time.Duration

	failureThreshold int
	cooldown         time.Duration

	mu     sync.Mutex
	health map[string]*peerHealth

	// Membership state. ring/ringHash/version are lock-free snapshots
	// for the hot routing path; the member table behind them is guarded
	// by memMu and mutated only in gossip.go.
	ring     atomic.Pointer[Ring]
	ringHash atomic.Uint64
	version  atomic.Uint64

	memMu   sync.Mutex
	members map[string]*member       // peers only, never self
	selfInc uint64                   // this node's incarnation
	queue   map[string]*queuedUpdate // piggyback deltas awaiting retransmission

	hooksMu sync.Mutex
	hooks   []func(ChangeEvent)

	suspectsCount atomic.Uint64
	refutes       atomic.Uint64
	confirmsCount atomic.Uint64

	gossip *gossipState // nil → static membership
}

// NewTransport returns an http.Transport tuned for cluster traffic:
// keep-alives on with enough idle connections per peer that a node
// proxying or polling a burst of jobs reuses sockets instead of
// re-dialing. The Go default of 2 idle conns per host discards and
// re-establishes connections under exactly the fan-in a shard sees.
func NewTransport() *http.Transport {
	return &http.Transport{
		Proxy:               http.ProxyFromEnvironment,
		MaxIdleConns:        256,
		MaxIdleConnsPerHost: 64,
		IdleConnTimeout:     90 * time.Second,
		ForceAttemptHTTP2:   true,
	}
}

// New builds a node's cluster view. self must appear in peers (it is
// added if absent) so every node computes ownership over the identical
// set. A cluster of one (or an empty peer list) is valid and routes
// everything to self.
func New(self string, peers []string, opts Options) (*Cluster, error) {
	self = NormalizePeer(self)
	if self == "" {
		return nil, fmt.Errorf("cluster: self URL is required when peers are configured")
	}
	if opts.Vnodes <= 0 {
		opts.Vnodes = DefaultVnodes
	}
	if opts.FailureThreshold <= 0 {
		opts.FailureThreshold = 3
	}
	if opts.Cooldown <= 0 {
		opts.Cooldown = 2 * time.Second
	}
	if opts.RPCTimeout <= 0 {
		opts.RPCTimeout = 10 * time.Second
	}
	all := append([]string{self}, peers...)
	ring := NewRing(all, opts.Vnodes)
	hc := opts.HTTPClient
	if hc == nil {
		hc = &http.Client{Transport: NewTransport()}
	}
	c := &Cluster{
		self:             self,
		vnodes:           opts.Vnodes,
		hc:               hc,
		rpcTO:            opts.RPCTimeout,
		failureThreshold: opts.FailureThreshold,
		cooldown:         opts.Cooldown,
		health:           make(map[string]*peerHealth),
		members:          make(map[string]*member),
		queue:            make(map[string]*queuedUpdate),
	}
	// Bootstrap peers enter the table alive at incarnation 0; the ring
	// over them is identical on every node that holds the same list.
	for _, p := range ring.Peers() {
		if p != self {
			c.members[p] = &member{inc: 0, state: StateAlive}
		}
	}
	c.ring.Store(ring)
	c.ringHash.Store(hash64(joinPeers(ring.Peers())))
	c.version.Store(1)
	return c, nil
}

// LoadMembership reads a JSON membership file: either a bare array of
// peer URLs or {"peers": [...]}.
func LoadMembership(path string) ([]string, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: read membership file: %w", err)
	}
	var bare []string
	if err := json.Unmarshal(b, &bare); err == nil {
		return bare, nil
	}
	var obj struct {
		Peers []string `json:"peers"`
	}
	if err := json.Unmarshal(b, &obj); err != nil {
		return nil, fmt.Errorf("cluster: parse membership file %s: %w", path, err)
	}
	if len(obj.Peers) == 0 {
		return nil, fmt.Errorf("cluster: membership file %s lists no peers", path)
	}
	return obj.Peers, nil
}

// Self returns this node's normalized advertised URL.
func (c *Cluster) Self() string { return c.self }

// Peers returns every current ring member except self.
func (c *Cluster) Peers() []string {
	peers := c.ring.Load().Peers()
	out := make([]string, 0, len(peers))
	for _, p := range peers {
		if p != c.self {
			out = append(out, p)
		}
	}
	return out
}

// Size returns the total ring membership including self.
func (c *Cluster) Size() int { return len(c.ring.Load().Peers()) }

// Owner returns the peer owning a routing key. Job routing hashes the
// key's 16-hex-digit prefix — exactly the digits embedded in the job
// ID — so ownership is computable both from a full job key and from a
// bare job ID (see OwnerOfJobID).
func (c *Cluster) Owner(key string) string {
	if len(key) > 16 {
		key = key[:16]
	}
	return c.ring.Load().Owner(key)
}

// OwnerOfJobID routes a job ID ("j" + 16 hex digits of the key): the
// ID embeds the routing prefix, so any node can locate a job's owner
// without knowing the full spec.
func (c *Cluster) OwnerOfJobID(id string) string {
	if len(id) > 1 && id[0] == 'j' {
		id = id[1:]
	}
	return c.Owner(id)
}

// IsSelf reports whether a peer URL names this node.
func (c *Cluster) IsSelf(peer string) bool { return NormalizePeer(peer) == c.self }

// Contains reports whether a URL is in the current ring (self
// included). During membership convergence two nodes can briefly
// disagree on this; callers that need agreement (e.g. anti-entropy
// repair) should retry rather than trust one snapshot.
func (c *Cluster) Contains(peer string) bool {
	peer = NormalizePeer(peer)
	for _, p := range c.ring.Load().Peers() {
		if p == peer {
			return true
		}
	}
	return false
}

// Healthy reports whether a peer's breaker admits traffic: closed, or
// open but past its cooldown (one probe is allowed through; a success
// closes the breaker, another failure re-opens it).
func (c *Cluster) Healthy(peer string) bool {
	if faultPeerDown.Fire() {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.health[peer]
	if !ok || h.failures < c.failureThreshold {
		return true
	}
	return time.Now().After(h.openUntil)
}

// ReportSuccess closes a peer's breaker.
func (c *Cluster) ReportSuccess(peer string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.health, peer)
}

// ReportFailure records one RPC failure; at FailureThreshold
// consecutive failures the breaker opens for Cooldown.
func (c *Cluster) ReportFailure(peer string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.health[peer]
	if !ok {
		h = &peerHealth{}
		c.health[peer] = h
	}
	h.failures++
	if h.failures >= c.failureThreshold {
		h.openUntil = time.Now().Add(c.cooldown)
	}
}

// UnhealthyPeers snapshots the peers whose breakers are currently
// open (for /v1/stats).
func (c *Cluster) UnhealthyPeers() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	var out []string
	for p, h := range c.health {
		if h.failures >= c.failureThreshold && now.Before(h.openUntil) {
			out = append(out, p)
		}
	}
	return out
}

// Do performs one peer RPC: method+path against the peer's base URL,
// with an optional JSON body, bounded by the RPC timeout (or the
// context, whichever ends first). Outcomes feed the peer's breaker.
// A fired partition site fails the call without touching the network.
func (c *Cluster) Do(ctx context.Context, peer, method, path string, body []byte) (int, []byte, error) {
	return c.DoTimeout(ctx, peer, method, path, body, c.rpcTO)
}

// DoTimeout is Do with an explicit per-call timeout (job proxying
// needs deadlines derived from the job's own timeout).
func (c *Cluster) DoTimeout(ctx context.Context, peer, method, path string, body []byte, timeout time.Duration) (int, []byte, error) {
	if faultPartition.Fire() {
		c.ReportFailure(peer)
		return 0, nil, ErrPartitioned
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, peer+path, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set(HeaderForwarded, "1")
	if g := c.GossipHeaderValue(); g != "" {
		req.Header.Set(HeaderGossip, g)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		c.ReportFailure(peer)
		return 0, nil, err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		c.ReportFailure(peer)
		return 0, nil, err
	}
	// Any HTTP answer means the peer process is alive; 4xx/5xx are its
	// considered opinion, not a transport failure.
	c.ReportSuccess(peer)
	// Ordinary cluster traffic doubles as a gossip channel: merge the
	// peer's piggybacked membership deltas.
	c.ApplyGossipHeader(resp.Header.Get(HeaderGossip))
	return resp.StatusCode, b, nil
}

// Header names of the cluster routing protocol.
const (
	// HeaderForwarded marks a request already routed once; the receiver
	// must handle it locally (loop prevention).
	HeaderForwarded = "X-Mama-Forwarded"
	// HeaderOwner carries the owning peer's URL on routed responses so
	// cluster-aware clients can talk to the owner directly next time.
	HeaderOwner = "X-Mama-Owner"
)

package experiment

import (
	"fmt"
	"sync"

	"micromama/internal/metrics"
	"micromama/internal/sim"
	"micromama/internal/workload"
)

// Profiles returns the per-core S^MP profile for a mix on cfg's system:
// each core's IPC in the loaded multicore *without* L2 prefetching,
// divided by its single-core baseline (§6.6.3's offline profiling run).
// Results are cached per (mix, DRAM config).
func (r *Runner) Profiles(mix workload.Mix, cfg sim.Config) []float64 {
	key := mix.Name() + "|" + cfg.DRAM.Name
	r.mu.Lock()
	if v, ok := r.profiles[key]; ok {
		r.mu.Unlock()
		return v
	}
	r.mu.Unlock()

	sys, err := sim.New(cfg, mix.Traces(), sim.NoPrefetchController())
	if err != nil {
		panic(fmt.Sprintf("experiment: profile run: %v", err))
	}
	res := sys.Run(r.Scale.Target, r.Scale.MaxCycles())
	prof := make([]float64, len(mix.Specs))
	for i, cr := range res.Cores {
		base := r.BaselineIPC(mix.Specs[i], cfg)
		if base > 0 {
			prof[i] = cr.IPC / base
		}
	}

	r.mu.Lock()
	r.profiles[key] = prof
	r.mu.Unlock()
	return prof
}

// RunMix runs one mix under the named controller and computes the
// speedup metrics against single-core no-L2-prefetch baselines.
func (r *Runner) RunMix(mix workload.Mix, cfg sim.Config, key string, opt Options) (MixResult, error) {
	if opt.Step == 0 {
		opt.Step = r.Scale.Step
	}
	if key == "mumama-profiled" && opt.Profiles == nil {
		opt.Profiles = r.Profiles(mix, cfg)
	}
	ctrl, err := MakeController(key, opt)
	if err != nil {
		return MixResult{}, err
	}
	res, err := r.RunMixWith(mix, cfg, ctrl)
	if err != nil {
		return MixResult{}, err
	}
	res.Controller = key
	return res, nil
}

// RunMixWith runs one mix under a caller-constructed controller (for
// custom configurations the key-based factory cannot express).
func (r *Runner) RunMixWith(mix workload.Mix, cfg sim.Config, ctrl sim.Controller) (MixResult, error) {
	cfg.Cores = len(mix.Specs)
	sys, err := sim.New(cfg, mix.Traces(), ctrl)
	if err != nil {
		return MixResult{}, err
	}
	res := sys.Run(r.Scale.Target, r.Scale.MaxCycles())

	sp := make([]float64, len(mix.Specs))
	for i, cr := range res.Cores {
		base := r.BaselineIPC(mix.Specs[i], cfg)
		if base > 0 {
			sp[i] = cr.IPC / base
		}
	}
	return MixResult{
		Mix:        mix,
		Controller: ctrl.Name(),
		Result:     res,
		Speedups:   sp,
		WS:         metrics.WS(sp),
		HS:         metrics.HS(sp),
		GM:         metrics.GM(sp),
		Unfairness: metrics.Unfairness(sp),
	}, nil
}

// MixesFor returns the scale's workload mixes for a core count (single
// traces at 1 core, sampled mixes otherwise).
func (r *Runner) MixesFor(cores int) []workload.Mix { return r.mixesFor(cores) }

// RunMixes runs every mix under the named controller, in parallel
// across r.Workers goroutines. Results are index-aligned with mixes.
func (r *Runner) RunMixes(mixes []workload.Mix, cfg sim.Config, key string, opt Options) ([]MixResult, error) {
	// Warm the baseline (and, if needed, profile) caches serially-ish
	// first so parallel workers don't duplicate the work.
	seen := map[string]bool{}
	for _, m := range mixes {
		for _, sp := range m.Specs {
			if !seen[sp.Name] {
				seen[sp.Name] = true
				r.BaselineIPC(sp, cfg)
			}
		}
	}

	out := make([]MixResult, len(mixes))
	errs := make([]error, len(mixes))
	var wg sync.WaitGroup
	sem := make(chan struct{}, max(1, r.Workers))
	for i := range mixes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			out[i], errs[i] = r.RunMix(mixes[i], cfg, key, opt)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// MeanWS returns the average Weighted Speedup across results.
func MeanWS(rs []MixResult) float64 {
	if len(rs) == 0 {
		return 0
	}
	var t float64
	for _, r := range rs {
		t += r.WS
	}
	return t / float64(len(rs))
}

// MeanHS returns the average Harmonic-mean Speedup across results.
func MeanHS(rs []MixResult) float64 {
	if len(rs) == 0 {
		return 0
	}
	var t float64
	for _, r := range rs {
		t += r.HS
	}
	return t / float64(len(rs))
}

// MeanUnfairness returns the average Unfairness across results.
func MeanUnfairness(rs []MixResult) float64 {
	if len(rs) == 0 {
		return 0
	}
	var t float64
	for _, r := range rs {
		t += r.Unfairness
	}
	return t / float64(len(rs))
}

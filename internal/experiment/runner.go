package experiment

import (
	"context"
	"fmt"
	"sync"

	"micromama/internal/metrics"
	"micromama/internal/sim"
	"micromama/internal/workload"
)

// singleflight runs compute for key at most once across concurrent
// callers: the first caller becomes the leader and computes; the rest
// block until the leader finishes (or their context is cancelled) and
// then re-check the cache via cached. Successful results must be
// published by compute itself (under r.mu, via the cached closure's
// backing map); failed computations are not cached, so a later caller
// retries with its own context.
func (r *Runner) singleflight(ctx context.Context, key string, cached func() (any, bool), compute func() (any, error)) (any, error) {
	hits, misses, merges := cacheCounters(key)
	first := true
	for {
		r.mu.Lock()
		if v, ok := cached(); ok {
			r.mu.Unlock()
			if first {
				// Waiters already counted as merges; don't double-count
				// their post-wait cache read.
				hits.Inc()
			}
			return v, nil
		}
		ch, inflight := r.inflight[key]
		if inflight {
			if first {
				merges.Inc()
				first = false
			}
			r.mu.Unlock()
			select {
			case <-ch:
				continue
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		ch = make(chan struct{})
		r.inflight[key] = ch
		r.mu.Unlock()
		misses.Inc()

		v, err := compute()

		r.mu.Lock()
		delete(r.inflight, key)
		r.mu.Unlock()
		close(ch)
		return v, err
	}
}

// BaselineIPC returns the trace's IPC running alone on cfg's system
// without L2 prefetching (IPC^{base,SP} of Equation 2), computing and
// caching it on first use. Concurrent callers for the same key block on
// one computation. Errors degrade to a zero baseline (and a zero
// speedup downstream); use BaselineIPCContext to observe them.
func (r *Runner) BaselineIPC(spec workload.Spec, cfg sim.Config) float64 {
	ipc, _ := r.BaselineIPCContext(r.baseCtx(), spec, cfg)
	return ipc
}

// BaselineIPCContext is BaselineIPC with cancellation and error
// reporting. A failed or cancelled computation is not cached, so a
// later call retries it.
func (r *Runner) BaselineIPCContext(ctx context.Context, spec workload.Spec, cfg sim.Config) (float64, error) {
	// The baseline always runs single-core; key on the fingerprint of
	// that effective config so sweeps that vary any parameter (cache
	// sizes, latencies, ...) never share a stale baseline, while all
	// core-count variants of one config share the same one.
	c := cfg
	c.Cores = 1
	key := "baseline|" + spec.Name + "|" + c.Fingerprint()
	v, err := r.singleflight(ctx, key,
		func() (any, bool) { v, ok := r.baseline[key]; return v, ok },
		func() (any, error) {
			mix := workload.Mix{Specs: []workload.Spec{spec}}
			sys, err := sim.New(r.simCfg(c), mix.Traces(), sim.NoPrefetchController())
			if err != nil {
				return float64(0), fmt.Errorf("experiment: baseline run for %s: %w", spec.Name, err)
			}
			res, err := sys.RunContext(ctx, r.Scale.Target, r.Scale.MaxCycles())
			if err != nil {
				return float64(0), err
			}
			ipc := res.Cores[0].IPC
			r.mu.Lock()
			r.baseline[key] = ipc
			r.mu.Unlock()
			return ipc, nil
		})
	if err != nil {
		return 0, err
	}
	return v.(float64), nil
}

// Profiles returns the per-core S^MP profile for a mix on cfg's system:
// each core's IPC in the loaded multicore *without* L2 prefetching,
// divided by its single-core baseline (§6.6.3's offline profiling run).
// Results are cached per (mix, DRAM config); concurrent callers for the
// same key share one computation.
func (r *Runner) Profiles(mix workload.Mix, cfg sim.Config) ([]float64, error) {
	return r.ProfilesContext(r.baseCtx(), mix, cfg)
}

// ProfilesContext is Profiles with cancellation. A failed or cancelled
// profiling run is not cached, so a later call retries it.
func (r *Runner) ProfilesContext(ctx context.Context, mix workload.Mix, cfg sim.Config) ([]float64, error) {
	// Like the baseline cache, the profile cache keys on the effective
	// config's fingerprint — two different configs with the same DRAM
	// name must not share S^MP profiles.
	c := cfg
	c.Cores = len(mix.Specs)
	key := "profile|" + mix.Name() + "|" + c.Fingerprint()
	v, err := r.singleflight(ctx, key,
		func() (any, bool) { v, ok := r.profiles[key]; return v, ok },
		func() (any, error) {
			sys, err := sim.New(r.simCfg(c), mix.Traces(), sim.NoPrefetchController())
			if err != nil {
				return []float64(nil), fmt.Errorf("experiment: profile run for %s: %w", mix.Name(), err)
			}
			res, err := sys.RunContext(ctx, r.Scale.Target, r.Scale.MaxCycles())
			if err != nil {
				return []float64(nil), err
			}
			prof := make([]float64, len(mix.Specs))
			for i, cr := range res.Cores {
				base, err := r.BaselineIPCContext(ctx, mix.Specs[i], c)
				if err != nil {
					return []float64(nil), err
				}
				if base > 0 {
					prof[i] = cr.IPC / base
				}
			}
			r.mu.Lock()
			r.profiles[key] = prof
			r.mu.Unlock()
			return prof, nil
		})
	if err != nil {
		return nil, err
	}
	return v.([]float64), nil
}

// RunMix runs one mix under the named controller and computes the
// speedup metrics against single-core no-L2-prefetch baselines.
func (r *Runner) RunMix(mix workload.Mix, cfg sim.Config, key string, opt Options) (MixResult, error) {
	return r.RunMixContext(r.baseCtx(), mix, cfg, key, opt)
}

// RunMixContext is RunMix with cancellation: the simulation (and any
// baseline or profile run it triggers) stops at the next epoch boundary
// once ctx is done, returning ctx's error.
func (r *Runner) RunMixContext(ctx context.Context, mix workload.Mix, cfg sim.Config, key string, opt Options) (MixResult, error) {
	if opt.Step == 0 {
		opt.Step = r.Scale.Step
	}
	if key == "mumama-profiled" && opt.Profiles == nil {
		prof, err := r.ProfilesContext(ctx, mix, cfg)
		if err != nil {
			return MixResult{}, err
		}
		opt.Profiles = prof
	}
	ctrl, err := MakeController(key, opt)
	if err != nil {
		return MixResult{}, err
	}
	res, err := r.RunMixWithContext(ctx, mix, cfg, ctrl)
	if err != nil {
		return MixResult{}, err
	}
	res.Controller = key
	return res, nil
}

// RunMixWith runs one mix under a caller-constructed controller (for
// custom configurations the key-based factory cannot express).
func (r *Runner) RunMixWith(mix workload.Mix, cfg sim.Config, ctrl sim.Controller) (MixResult, error) {
	return r.RunMixWithContext(r.baseCtx(), mix, cfg, ctrl)
}

// RunMixWithContext is RunMixWith with cancellation.
func (r *Runner) RunMixWithContext(ctx context.Context, mix workload.Mix, cfg sim.Config, ctrl sim.Controller) (MixResult, error) {
	cfg.Cores = len(mix.Specs)
	sys, err := sim.New(r.simCfg(cfg), mix.Traces(), ctrl)
	if err != nil {
		return MixResult{}, err
	}
	res, err := sys.RunContext(ctx, r.Scale.Target, r.Scale.MaxCycles())
	if err != nil {
		return MixResult{}, err
	}

	sp := make([]float64, len(mix.Specs))
	for i, cr := range res.Cores {
		base, err := r.BaselineIPCContext(ctx, mix.Specs[i], cfg)
		if err != nil {
			return MixResult{}, err
		}
		if base > 0 {
			sp[i] = cr.IPC / base
		}
	}
	return MixResult{
		Mix:        mix,
		Controller: ctrl.Name(),
		Result:     res,
		Speedups:   sp,
		WS:         metrics.WS(sp),
		HS:         metrics.HS(sp),
		GM:         metrics.GM(sp),
		Unfairness: metrics.Unfairness(sp),
	}, nil
}

// MixesFor returns the scale's workload mixes for a core count (single
// traces at 1 core, sampled mixes otherwise).
func (r *Runner) MixesFor(cores int) []workload.Mix { return r.mixesFor(cores) }

// RunMixes runs every mix under the named controller, in parallel
// across r.Workers goroutines. Results are index-aligned with mixes.
func (r *Runner) RunMixes(mixes []workload.Mix, cfg sim.Config, key string, opt Options) ([]MixResult, error) {
	return r.RunMixesContext(r.baseCtx(), mixes, cfg, key, opt)
}

// RunMixesContext is RunMixes with cancellation: once ctx is done,
// in-flight simulations stop at their next epoch boundary, queued mixes
// are not started, and ctx's error is returned.
func (r *Runner) RunMixesContext(ctx context.Context, mixes []workload.Mix, cfg sim.Config, key string, opt Options) ([]MixResult, error) {
	// Warm the baseline cache first so the mix workers start from hits.
	// Each distinct trace is a full single-core simulation, so the
	// warming runs span the worker pool too; duplicate keys coalesce via
	// the runner's singleflight.
	seen := map[string]bool{}
	var specs []workload.Spec
	for _, m := range mixes {
		for _, sp := range m.Specs {
			if !seen[sp.Name] {
				seen[sp.Name] = true
				specs = append(specs, sp)
			}
		}
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, max(1, r.Workers))
	for _, sp := range specs {
		wg.Add(1)
		go func(sp workload.Spec) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if ctx.Err() != nil {
				return
			}
			r.BaselineIPCContext(ctx, sp, cfg)
		}(sp)
	}
	wg.Wait()

	out := make([]MixResult, len(mixes))
	errs := make([]error, len(mixes))
	for i := range mixes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if err := ctx.Err(); err != nil {
				errs[i] = err
				return
			}
			out[i], errs[i] = r.RunMixContext(ctx, mixes[i], cfg, key, opt)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// MeanWS returns the average Weighted Speedup across results.
func MeanWS(rs []MixResult) float64 {
	if len(rs) == 0 {
		return 0
	}
	var t float64
	for _, r := range rs {
		t += r.WS
	}
	return t / float64(len(rs))
}

// MeanHS returns the average Harmonic-mean Speedup across results.
func MeanHS(rs []MixResult) float64 {
	if len(rs) == 0 {
		return 0
	}
	var t float64
	for _, r := range rs {
		t += r.HS
	}
	return t / float64(len(rs))
}

// MeanUnfairness returns the average Unfairness across results.
func MeanUnfairness(rs []MixResult) float64 {
	if len(rs) == 0 {
		return 0
	}
	var t float64
	for _, r := range rs {
		t += r.Unfairness
	}
	return t / float64(len(rs))
}

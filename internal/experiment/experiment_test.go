package experiment

import (
	"reflect"
	"strings"
	"testing"

	"micromama/internal/sim"
	"micromama/internal/workload"
)

func TestMakeControllerAllKeys(t *testing.T) {
	for _, key := range ControllerKeys {
		opt := Options{}
		if key == "mumama-profiled" {
			opt.Profiles = []float64{1, 1}
		}
		ctrl, err := MakeController(key, opt)
		if err != nil {
			t.Errorf("MakeController(%q): %v", key, err)
			continue
		}
		if ctrl == nil || ctrl.Name() == "" {
			t.Errorf("MakeController(%q) returned unusable controller", key)
		}
	}
}

func TestControllerCatalogEligibility(t *testing.T) {
	cat := ControllerCatalog()
	if len(cat) != len(ControllerKeys) {
		t.Fatalf("catalog has %d entries, want %d", len(cat), len(ControllerKeys))
	}
	byKey := map[string]bool{}
	for _, info := range cat {
		byKey[info.Key] = info.CoreLocal
	}
	// Spot-check the eligibility semantics: fixed engines and the
	// default Bandit are core-local; µMama's arbiter, the shared-reward
	// Bandit, and CoordRL's cross-core ledger are not; PhaseSelect is
	// core-local by construction.
	want := map[string]bool{
		"no":            true,
		"bingo":         true,
		"bandit":        true,
		"bandit-shared": false,
		"mumama":        false,
		"phase-select":  true,
		"coord-rl":      false,
	}
	for key, coreLocal := range want {
		got, ok := byKey[key]
		if !ok {
			t.Errorf("catalog missing %q", key)
			continue
		}
		if got != coreLocal {
			t.Errorf("catalog %q core_local = %v, want %v", key, got, coreLocal)
		}
	}
}

func TestMakeControllerErrors(t *testing.T) {
	if _, err := MakeController("nope", Options{}); err == nil {
		t.Error("unknown key accepted")
	}
	if _, err := MakeController("mumama-profiled", Options{}); err == nil {
		t.Error("profiled without profiles accepted")
	}
}

func TestBaselineCaching(t *testing.T) {
	r := NewRunner(ScaleTiny)
	spec, _ := workload.ByName("spec06.povray")
	cfg := sim.DefaultConfig(1)
	a := r.BaselineIPC(spec, cfg)
	if a <= 0 {
		t.Fatalf("baseline IPC = %g", a)
	}
	b := r.BaselineIPC(spec, cfg)
	if a != b {
		t.Error("cached baseline differs")
	}
}

func TestRunMixProducesMetrics(t *testing.T) {
	r := NewRunner(ScaleTiny)
	mixes := workload.Mixes(2, 1, 3)
	res, err := r.RunMix(mixes[0], sim.DefaultConfig(2), "bandit", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.WS <= 0 || res.HS <= 0 || res.Unfairness < 1 {
		t.Errorf("metrics: WS=%g HS=%g unfair=%g", res.WS, res.HS, res.Unfairness)
	}
	if len(res.Speedups) != 2 {
		t.Errorf("speedups len %d", len(res.Speedups))
	}
}

// TestRunMixSimParallelismMatchesSerial: the runner's per-simulation
// parallelism must not change any measurement — separate runners so the
// serial pass's caches cannot mask a divergence in the parallel one.
func TestRunMixSimParallelismMatchesSerial(t *testing.T) {
	mixes := workload.Mixes(2, 1, 3)
	cfg := sim.DefaultConfig(2)
	run := func(simPar int) MixResult {
		r := NewRunner(ScaleTiny)
		r.SimParallelism = simPar
		res, err := r.RunMix(mixes[0], cfg, "bandit", Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	ser, par := run(0), run(4)
	if !reflect.DeepEqual(ser, par) {
		t.Errorf("SimParallelism changed the measurement:\nserial:   %+v\nparallel: %+v", ser, par)
	}
}

func TestRunMixesParallelMatchesSerial(t *testing.T) {
	r := NewRunner(ScaleTiny)
	mixes := workload.Mixes(2, 2, 3)
	cfg := sim.DefaultConfig(2)
	par, err := r.RunMixes(mixes, cfg, "no", Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range mixes {
		ser, err := r.RunMix(mixes[i], cfg, "no", Options{})
		if err != nil {
			t.Fatal(err)
		}
		if ser.WS != par[i].WS {
			t.Errorf("mix %d: parallel WS %g != serial %g", i, par[i].WS, ser.WS)
		}
	}
}

func TestProfiles(t *testing.T) {
	r := NewRunner(ScaleTiny)
	mix := workload.Mixes(2, 1, 3)[0]
	cfg := sim.DefaultConfig(2)
	p, err := r.Profiles(mix, cfg)
	if err != nil {
		t.Fatalf("Profiles: %v", err)
	}
	if len(p) != 2 {
		t.Fatalf("profiles len %d", len(p))
	}
	for i, v := range p {
		if v <= 0 || v > 1.5 {
			t.Errorf("profile[%d] = %g, implausible S^MP", i, v)
		}
	}
}

func TestFigTimelineBanditAndMuMama(t *testing.T) {
	r := NewRunner(ScaleTiny)
	for _, key := range []string{"bandit", "mumama"} {
		rep, err := r.FigTimeline(key)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Samples) == 0 {
			t.Errorf("%s: no timeline samples", key)
		}
		if !strings.Contains(rep.String(), "core 0") {
			t.Errorf("%s: report rendering incomplete", key)
		}
	}
}

func TestMotivatingMixShape(t *testing.T) {
	m := MotivatingMix()
	if len(m.Specs) != 4 {
		t.Fatalf("motivating mix has %d cores", len(m.Specs))
	}
}

func TestTableRendering(t *testing.T) {
	out := table([]string{"a", "bbb"}, [][]string{{"1", "2"}, {"333", "4"}})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "a") {
		t.Error("header missing")
	}
}

func TestMeanHelpers(t *testing.T) {
	rs := []MixResult{{WS: 1, HS: 0.4, Unfairness: 2}, {WS: 3, HS: 0.6, Unfairness: 4}}
	if MeanWS(rs) != 2 || MeanHS(rs) != 0.5 || MeanUnfairness(rs) != 3 {
		t.Error("mean helpers wrong")
	}
	if MeanWS(nil) != 0 {
		t.Error("MeanWS(nil)")
	}
}

// TestFig15bSmall exercises a real (tiny) figure driver end to end.
func TestFig15bSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run figure driver")
	}
	r := NewRunner(ScaleTiny)
	rep, err := r.Fig15bJAVSweep(2, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.NormWS) != 2 {
		t.Fatalf("sweep returned %d points", len(rep.NormWS))
	}
	if !strings.Contains(rep.String(), "JAV") {
		t.Error("rendering incomplete")
	}
}

func TestSingleMixesInterleaveClasses(t *testing.T) {
	r := NewRunner(Scale{MixCount: 4, Seed: 7})
	mixes := r.singleMixes()
	if len(mixes) != 4 {
		t.Fatalf("got %d single mixes", len(mixes))
	}
	classes := map[workload.Class]bool{}
	for _, m := range mixes {
		classes[m.Specs[0].Class] = true
	}
	if len(classes) < 3 {
		t.Errorf("first 4 single mixes span only %d classes: %v", len(classes), classes)
	}
}

package experiment

import (
	"fmt"
	"strings"

	"micromama/internal/bandit"
	"micromama/internal/xrand"
)

// Figure 1's two-agent general-sum game: each agent chooses Friendly or
// Aggressive; choosing Aggressive raises your own reward but lowers the
// other's. Two independent learners converge to the {Aggressive,
// Aggressive} Nash equilibrium even though it is socially suboptimal —
// the paper's motivating example — while a supervisor that tracks joint
// actions finds the social optimum.

// Game actions.
const (
	Friendly   = 0
	Aggressive = 1
)

// GamePayoffs[aA][aB] = {rewardA, rewardB}, the paper's Figure 1:
// {Aggressive, Friendly} pays A 1.5 / B 0.6 (the largest total, 2.1);
// {Aggressive, Aggressive} pays 1.2 / 0.7 (total 1.9) and is the unique
// Nash equilibrium (Aggressive dominates for both players); A's reward
// is more sensitive to changes than B's.
var GamePayoffs = [2][2][2]float64{
	{ // A Friendly
		{1.0, 1.0}, // B Friendly
		{0.7, 1.1}, // B Aggressive
	},
	{ // A Aggressive
		{1.5, 0.6}, // B Friendly
		{1.2, 0.7}, // B Aggressive
	},
}

// GameReport summarizes a play-out of the Figure 1 game.
type GameReport struct {
	Steps int
	// JointFreq[aA][aB] is how often each joint action was played by
	// the independent learners.
	JointFreq [2][2]int
	// NashRate is the fraction of the last half of play spent in the
	// {Aggressive, Aggressive} Nash equilibrium.
	NashRate float64
	// IndependentTotal is the mean total (A+B) reward of independent
	// learners over the last half.
	IndependentTotal float64
	// SupervisedJoint is the joint action a joint-tracking supervisor
	// selects, and SupervisedTotal its total reward.
	SupervisedJoint [2]int
	SupervisedTotal float64
}

// PlayGame runs two independent DUCB agents on the Figure 1 game for
// steps rounds (with reward noise), then computes the supervisor's
// choice by exhaustive joint tracking.
func PlayGame(steps int, seed uint64) *GameReport {
	rep := &GameReport{Steps: steps}
	a := bandit.New(bandit.Config{Arms: 2, C: 0.05, Gamma: 0.999})
	b := bandit.New(bandit.Config{Arms: 2, C: 0.05, Gamma: 0.999, InitOffset: 1})
	r := xrand.New(seed)

	nash, lateTotal, lateN := 0, 0.0, 0
	for i := 0; i < steps; i++ {
		aa, ab := a.Select(), b.Select()
		p := GamePayoffs[aa][ab]
		noise := func() float64 { return 0.05 * (r.Float64() - 0.5) }
		a.Update(aa, p[0]+noise())
		b.Update(ab, p[1]+noise())
		rep.JointFreq[aa][ab]++
		if i >= steps/2 {
			lateN++
			lateTotal += p[0] + p[1]
			if aa == Aggressive && ab == Aggressive {
				nash++
			}
		}
	}
	rep.NashRate = float64(nash) / float64(lateN)
	rep.IndependentTotal = lateTotal / float64(lateN)

	// Supervisor: track all four joint actions and pick the best total.
	best := -1.0
	for aa := 0; aa < 2; aa++ {
		for ab := 0; ab < 2; ab++ {
			total := GamePayoffs[aa][ab][0] + GamePayoffs[aa][ab][1]
			if total > best {
				best = total
				rep.SupervisedJoint = [2]int{aa, ab}
			}
		}
	}
	rep.SupervisedTotal = best
	return rep
}

// String renders the report.
func (g *GameReport) String() string {
	name := func(a int) string {
		if a == Aggressive {
			return "Aggressive"
		}
		return "Friendly"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1 game, %d rounds of independent DUCB agents:\n", g.Steps)
	for aa := 0; aa < 2; aa++ {
		for ab := 0; ab < 2; ab++ {
			fmt.Fprintf(&b, "  {%s, %s}: %d plays\n", name(aa), name(ab), g.JointFreq[aa][ab])
		}
	}
	fmt.Fprintf(&b, "Nash {Aggressive, Aggressive} rate in steady state: %.0f%%\n", g.NashRate*100)
	fmt.Fprintf(&b, "independent total reward: %.3f\n", g.IndependentTotal)
	fmt.Fprintf(&b, "supervisor picks {%s, %s} for total %.3f\n",
		name(g.SupervisedJoint[0]), name(g.SupervisedJoint[1]), g.SupervisedTotal)
	return b.String()
}

package experiment

import (
	"fmt"
	"math"
	"strings"

	"micromama/internal/sim"
)

// CharacteristicsReport reproduces §6.3's workload-characteristics
// analysis: workloads that benefit most from µMama tend to have a low
// mean no-prefetch L2-MPKI (µ), a high variance (σ²), or both. The
// paper restricts to mixes with µ − σ < 2.5 MPKI and finds larger
// µMama speedups there (2.7%/3.4% at 4/8 cores vs 1.9%/2.1% overall).
type CharacteristicsReport struct {
	Cores     int
	Threshold float64 // the µ−σ filter threshold in MPKI

	// Per-mix data, index-aligned.
	MixNames  []string
	MeanMPKI  []float64 // µ of per-core no-prefetch L2 MPKI
	SigmaMPKI []float64 // σ across cores
	Ratio     []float64 // WS(µMama)/WS(Bandit)

	// Aggregates.
	AvgAll      float64 // mean µMama gain over all mixes
	AvgFiltered float64 // mean gain over mixes with µ−σ < Threshold
	FilteredN   int
}

// Fig63Characteristics measures per-mix no-prefetch MPKI statistics and
// correlates them with µMama's speedup over Bandit.
func (r *Runner) Fig63Characteristics(cores int, threshold float64) (*CharacteristicsReport, error) {
	cfg := sim.DefaultConfig(cores)
	mixes := r.mixesFor(cores)
	rep := &CharacteristicsReport{Cores: cores, Threshold: threshold}

	banditRes, err := r.RunMixes(mixes, cfg, "bandit", Options{})
	if err != nil {
		return nil, err
	}
	mamaRes, err := r.RunMixes(mixes, cfg, "mumama", Options{})
	if err != nil {
		return nil, err
	}

	var sumAll, sumFiltered float64
	for i, mix := range mixes {
		// No-prefetch multicore run for the MPKI characterization
		// (shared with the profiled mode's cache).
		noPref, err := r.RunMix(mix, cfg, "no", Options{})
		if err != nil {
			return nil, err
		}
		var mu, sigma float64
		for _, c := range noPref.Result.Cores {
			mu += c.L2MPKI()
		}
		mu /= float64(len(noPref.Result.Cores))
		for _, c := range noPref.Result.Cores {
			d := c.L2MPKI() - mu
			sigma += d * d
		}
		sigma = math.Sqrt(sigma / float64(len(noPref.Result.Cores)))

		ratio := 0.0
		if banditRes[i].WS > 0 {
			ratio = mamaRes[i].WS / banditRes[i].WS
		}
		rep.MixNames = append(rep.MixNames, mix.Name())
		rep.MeanMPKI = append(rep.MeanMPKI, mu)
		rep.SigmaMPKI = append(rep.SigmaMPKI, sigma)
		rep.Ratio = append(rep.Ratio, ratio)

		sumAll += ratio
		if mu-sigma < threshold {
			sumFiltered += ratio
			rep.FilteredN++
		}
	}
	rep.AvgAll = sumAll/float64(len(mixes)) - 1
	if rep.FilteredN > 0 {
		rep.AvgFiltered = sumFiltered/float64(rep.FilteredN) - 1
	}
	return rep, nil
}

// String renders the report.
func (c *CharacteristicsReport) String() string {
	var rows [][]string
	for i := range c.MixNames {
		mark := ""
		if c.MeanMPKI[i]-c.SigmaMPKI[i] < c.Threshold {
			mark = "*"
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d%s", i, mark),
			fmt.Sprintf("%.1f", c.MeanMPKI[i]),
			fmt.Sprintf("%.1f", c.SigmaMPKI[i]),
			num(c.Ratio[i]),
		})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "§6.3: workload characteristics (%d cores); * marks µ−σ < %.1f MPKI\n", c.Cores, c.Threshold)
	b.WriteString(table([]string{"mix", "µ MPKI", "σ MPKI", "WS µmama/bandit"}, rows))
	fmt.Fprintf(&b, "average µMama gain: all mixes %s; filtered (%d mixes) %s\n",
		pct(c.AvgAll), c.FilteredN, pct(c.AvgFiltered))
	return b.String()
}

package experiment

import (
	"context"
	"sync"
	"testing"

	"micromama/internal/sim"
	"micromama/internal/workload"
)

// concurrencyScale is deliberately minuscule: the point is exercising
// the runner's shared caches under -race, not simulation fidelity.
var concurrencyScale = Scale{Target: 60_000, MaxCyclesFactor: 12, MixCount: 2, Seed: 7, Step: 100}

// TestRunMixConcurrent hammers one Runner from many goroutines —
// including the profile path, which layers ProfilesContext on top of
// BaselineIPCContext — and checks that (a) nothing races (run with
// -race), and (b) every goroutine sees identical, deterministic
// metrics for its controller.
func TestRunMixConcurrent(t *testing.T) {
	r := NewRunner(concurrencyScale)
	mix := workload.Mixes(2, 1, 3)[0]
	cfg := sim.DefaultConfig(2)

	keys := []string{"no", "bandit", "mumama-profiled"}
	const perKey = 4
	type slot struct {
		res MixResult
		err error
	}
	out := make([][]slot, len(keys))
	var wg sync.WaitGroup
	for ki := range keys {
		out[ki] = make([]slot, perKey)
		for g := 0; g < perKey; g++ {
			wg.Add(1)
			go func(ki, g int) {
				defer wg.Done()
				res, err := r.RunMix(mix, cfg, keys[ki], Options{})
				out[ki][g] = slot{res, err}
			}(ki, g)
		}
	}
	wg.Wait()

	for ki, key := range keys {
		first := out[ki][0]
		if first.err != nil {
			t.Fatalf("%s: %v", key, first.err)
		}
		if first.res.WS <= 0 {
			t.Fatalf("%s: implausible WS %g", key, first.res.WS)
		}
		for g := 1; g < perKey; g++ {
			s := out[ki][g]
			if s.err != nil {
				t.Fatalf("%s[%d]: %v", key, g, s.err)
			}
			if s.res.WS != first.res.WS || s.res.HS != first.res.HS {
				t.Errorf("%s[%d]: nondeterministic result: WS %g vs %g",
					key, g, s.res.WS, first.res.WS)
			}
		}
	}
}

// TestProfilesConcurrentSingleflight checks concurrent profile requests
// for the same key coalesce to one computation and agree exactly.
func TestProfilesConcurrentSingleflight(t *testing.T) {
	r := NewRunner(concurrencyScale)
	mix := workload.Mixes(2, 1, 5)[0]
	cfg := sim.DefaultConfig(2)

	const n = 8
	profs := make([][]float64, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			profs[i], errs[i] = r.Profiles(mix, cfg)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if len(profs[i]) != 2 {
			t.Fatalf("goroutine %d: profile len %d", i, len(profs[i]))
		}
		for k := range profs[i] {
			if profs[i][k] != profs[0][k] {
				t.Errorf("goroutine %d: profile[%d] %g != %g", i, k, profs[i][k], profs[0][k])
			}
		}
	}
}

// TestRunMixContextCancelled verifies an already-cancelled context
// aborts promptly with the context error and poisons no cache: a
// follow-up uncancelled run succeeds.
func TestRunMixContextCancelled(t *testing.T) {
	r := NewRunner(concurrencyScale)
	mix := workload.Mixes(2, 1, 3)[0]
	cfg := sim.DefaultConfig(2)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.RunMixContext(ctx, mix, cfg, "no", Options{}); err == nil {
		t.Fatal("cancelled RunMixContext returned nil error")
	}

	res, err := r.RunMix(mix, cfg, "no", Options{})
	if err != nil {
		t.Fatalf("post-cancel RunMix: %v", err)
	}
	if res.WS <= 0 {
		t.Fatalf("post-cancel RunMix returned implausible WS %g (poisoned baseline cache?)", res.WS)
	}
}

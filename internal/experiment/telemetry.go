package experiment

import (
	"strings"

	"micromama/internal/telemetry"
)

// Baseline-IPC and S^MP-profile cache telemetry, shared by every Runner
// in the process (mamaserved keeps one Runner per scale; the cache
// counters aggregate across them).
var (
	expBaselineHits = telemetry.Default().Counter("mama_experiment_cache_hits_total",
		"Runner cache lookups served without simulating, by cache.",
		telemetry.L("cache", "baseline"))
	expProfileHits = telemetry.Default().Counter("mama_experiment_cache_hits_total",
		"Runner cache lookups served without simulating, by cache.",
		telemetry.L("cache", "profile"))
	expBaselineMisses = telemetry.Default().Counter("mama_experiment_cache_misses_total",
		"Runner cache computations actually executed, by cache.",
		telemetry.L("cache", "baseline"))
	expProfileMisses = telemetry.Default().Counter("mama_experiment_cache_misses_total",
		"Runner cache computations actually executed, by cache.",
		telemetry.L("cache", "profile"))
	expBaselineMerges = telemetry.Default().Counter("mama_experiment_singleflight_merges_total",
		"Concurrent callers coalesced onto an in-flight computation, by cache.",
		telemetry.L("cache", "baseline"))
	expProfileMerges = telemetry.Default().Counter("mama_experiment_singleflight_merges_total",
		"Concurrent callers coalesced onto an in-flight computation, by cache.",
		telemetry.L("cache", "profile"))
)

// cacheCounters resolves the counter trio for a singleflight key; keys
// are "baseline|..." or "profile|..." (see BaselineIPCContext and
// ProfilesContext).
func cacheCounters(key string) (hits, misses, merges *telemetry.Counter) {
	if strings.HasPrefix(key, "profile|") {
		return expProfileHits, expProfileMisses, expProfileMerges
	}
	return expBaselineHits, expBaselineMisses, expBaselineMerges
}

package experiment

import "testing"

func TestGamePayoffStructure(t *testing.T) {
	// Aggressive strictly dominates for both players (Nash at {Agg,Agg}).
	for other := 0; other < 2; other++ {
		if GamePayoffs[Aggressive][other][0] <= GamePayoffs[Friendly][other][0] {
			t.Error("Aggressive does not dominate for A")
		}
		if GamePayoffs[other][Aggressive][1] <= GamePayoffs[other][Friendly][1] {
			t.Error("Aggressive does not dominate for B")
		}
	}
	// {Aggressive, Friendly} maximizes the total at 2.1; Nash total 1.9.
	if got := GamePayoffs[Aggressive][Friendly][0] + GamePayoffs[Aggressive][Friendly][1]; got != 2.1 {
		t.Errorf("max total = %g, want 2.1", got)
	}
	if got := GamePayoffs[Aggressive][Aggressive][0] + GamePayoffs[Aggressive][Aggressive][1]; got != 1.9 {
		t.Errorf("Nash total = %g, want 1.9", got)
	}
}

func TestPlayGameConvergesToNash(t *testing.T) {
	rep := PlayGame(4000, 11)
	if rep.NashRate < 0.9 {
		t.Errorf("independent agents reached Nash only %.0f%% of steady state", rep.NashRate*100)
	}
	if rep.SupervisedJoint != [2]int{Aggressive, Friendly} {
		t.Errorf("supervisor picked %v, want {Aggressive, Friendly}", rep.SupervisedJoint)
	}
	if rep.SupervisedTotal <= rep.IndependentTotal {
		t.Errorf("supervisor total %.3f not better than independent %.3f",
			rep.SupervisedTotal, rep.IndependentTotal)
	}
	if rep.String() == "" {
		t.Error("empty report rendering")
	}
}

func TestPlayGameDeterministic(t *testing.T) {
	a, b := PlayGame(1000, 5), PlayGame(1000, 5)
	if a.JointFreq != b.JointFreq {
		t.Error("same-seed games diverged")
	}
}

package experiment

import (
	"fmt"
	"strings"
)

// table renders a fixed-width text table.
func table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

func pct(x float64) string { return fmt.Sprintf("%+.2f%%", x*100) }
func num(x float64) string { return fmt.Sprintf("%.3f", x) }
func ratioPct(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a/b - 1
}

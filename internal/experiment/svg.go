package experiment

import (
	"fmt"

	"micromama/internal/plot"
	"micromama/internal/prefetch"
)

// SVG renderings of the figure reports, used by cmd/mamabench -svg.

// SVG renders the throughput comparison (Figure 9) as grouped bars.
func (t *ThroughputReport) SVG() string {
	var groups []plot.BarGroup
	for _, n := range t.CoreCounts {
		g := plot.BarGroup{Label: fmt.Sprintf("%d cores", n)}
		for _, c := range t.Controllers {
			g.Values = append(g.Values, t.NormWS[n][c]*100)
		}
		groups = append(groups, g)
	}
	return plot.Bar("Figure 9: Weighted Speedup vs Bandit", "WS vs bandit (%)", t.Controllers, groups)
}

// SVG renders per-workload ratios (Figures 10/16) as a sorted curve.
func (p *PerWorkloadReport) SVG() string {
	sorted := append([]float64(nil), p.Ratios...)
	for i := 1; i < len(sorted); i++ { // insertion sort, tiny N
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	s := plot.Series{Name: p.Controller}
	for i, v := range sorted {
		s.X = append(s.X, float64(i))
		s.Y = append(s.Y, v)
	}
	title := fmt.Sprintf("%s of %s vs Bandit (%d cores)", p.MetricName, p.Controller, p.Cores)
	return plot.Line(title, "workload (sorted)", p.MetricName+" / bandit", []plot.Series{s})
}

// SVG renders prefetch-traffic scaling (Figure 3).
func (p *PrefetchScalingReport) SVG() string {
	var series []plot.Series
	for _, c := range p.Controllers {
		s := plot.Series{Name: c}
		for i, n := range p.CoreCounts {
			s.X = append(s.X, float64(n))
			s.Y = append(s.Y, p.Normalized[c][i])
		}
		series = append(series, s)
	}
	return plot.Line("Figure 3: prefetches issued vs core count",
		"active cores", "normalized prefetches", series)
}

// SVG renders the bandwidth sweep (Figure 11).
func (p *BandwidthReport) SVG() string {
	bySeries := map[string]*plot.Series{}
	var order []string
	for _, pt := range p.Points {
		key := fmt.Sprintf("%s %dC", pt.Controller, pt.Cores)
		s, ok := bySeries[key]
		if !ok {
			s = &plot.Series{Name: key}
			bySeries[key] = s
			order = append(order, key)
		}
		s.X = append(s.X, pt.PeakGBps)
		s.Y = append(s.Y, pt.NormWS*100)
	}
	var series []plot.Series
	for _, k := range order {
		series = append(series, *bySeries[k])
	}
	return plot.Line("Figure 11: WS vs Bandit across memory bandwidth",
		"memory bandwidth (GB/s)", "WS vs bandit (%)", series)
}

// SVG renders the fairness comparison (Figure 13a: unfairness).
func (f *FairnessReport) SVG() string {
	var groups []plot.BarGroup
	for _, n := range f.CoreCounts {
		g := plot.BarGroup{Label: fmt.Sprintf("%d cores", n)}
		for _, c := range f.Controllers {
			g.Values = append(g.Values, f.Unfairness[n][c])
		}
		groups = append(groups, g)
	}
	return plot.Bar("Figure 13a: Unfairness (lower is fairer)", "unfairness", f.Controllers, groups)
}

// SVG renders the throughput/fairness frontier (Figure 14).
func (f *FrontierReport) SVG() string {
	var series []plot.Series
	for _, p := range f.Points {
		series = append(series, plot.Series{Name: p.Controller, X: []float64{p.WS}, Y: []float64{p.Fairness}})
	}
	return plot.Scatter(fmt.Sprintf("Figure 14: throughput vs fairness (%d cores)", f.Cores),
		"Weighted Speedup", "1 - Unfairness", series)
}

// SVG renders the ablation breakdown (Figure 15a).
func (a *AblationReport) SVG() string {
	var groups []plot.BarGroup
	label := map[string]string{
		"mumama-grw-only": "GRW", "mumama-jav-only": "JAV",
		"mumama": "µmama", "mumama-profiled": "profiled",
	}
	for _, key := range a.Order {
		groups = append(groups, plot.BarGroup{Label: label[key], Values: []float64{a.NormWS[key] * 100}})
	}
	return plot.Bar(fmt.Sprintf("Figure 15a: component breakdown (%d cores)", a.Cores),
		"WS vs bandit (%)", []string{"WS"}, groups)
}

// SVG renders the JAV-size sweep (Figure 15b).
func (j *JAVSweepReport) SVG() string {
	s := plot.Series{Name: "µmama"}
	for i, sz := range j.Sizes {
		s.X = append(s.X, float64(sz))
		s.Y = append(s.Y, j.NormWS[i]*100)
	}
	return plot.Line(fmt.Sprintf("Figure 15b: WS vs JAV size (%d cores)", j.Cores),
		"JAV entries", "WS vs bandit (%)", []plot.Series{s})
}

// SVG renders a policy timeline (Figures 2/4/12); dictated samples are
// hollow, matching the paper's gray shading semantics.
func (t *TimelineReport) SVG() string {
	perCore := map[int]*plot.StepSeries{}
	var order []int
	for _, s := range t.Samples {
		ss, ok := perCore[s.Core]
		if !ok {
			ss = &plot.StepSeries{Name: fmt.Sprintf("core %d (%s)", s.Core, t.Mix.Specs[s.Core].Name)}
			perCore[s.Core] = ss
			order = append(order, s.Core)
		}
		ss.Samples = append(ss.Samples, plot.StepSample{
			X:      float64(s.Cycle),
			Y:      float64(s.Arm),
			Hollow: s.Joint,
		})
	}
	var series []plot.StepSeries
	for _, c := range order {
		series = append(series, *perCore[c])
	}
	return plot.StepChart("Prefetch policies over time ("+t.Controller+")",
		"cycles", "policy number", series, float64(prefetch.NumArms-1))
}

// Package experiment regenerates every table and figure of the paper's
// evaluation: it runs workload mixes under each prefetch controller,
// measures speedups against the single-core no-L2-prefetch baselines,
// and renders the same rows/series the paper reports (see the
// experiment index in DESIGN.md).
package experiment

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"micromama/internal/core"
	"micromama/internal/prefetch"
	"micromama/internal/sim"
	"micromama/internal/workload"
)

// Scale sets the simulation budget. The paper measures 250M
// instructions per core; these scales trade absolute fidelity for
// runnable harnesses while staying far past DUCB convergence
// (step = 800 L2 accesses → thousands of timesteps).
type Scale struct {
	// Target is the instruction-retirement goal per core.
	Target uint64
	// MaxCyclesFactor bounds a run at Target×factor cycles so very slow
	// cores cannot stall the harness; cores still running report their
	// IPC over the elapsed window.
	MaxCyclesFactor uint64
	// MixCount is how many workload mixes to sample (the paper uses 52).
	MixCount int
	// Seed drives mix sampling.
	Seed uint64
	// Step is the agent timestep in L2 demand accesses. The paper uses
	// 800 over 250M instructions/core; scaled-down simulations shrink
	// the step proportionally so agents complete a comparable number of
	// timesteps.
	Step uint64
}

// Predefined scales. Tiny is for unit tests; Small for quick looks;
// Default for the benchmark harness; Full approaches the paper's 52-mix
// evaluation.
var (
	ScaleTiny    = Scale{Target: 400_000, MaxCyclesFactor: 12, MixCount: 2, Seed: 7, Step: 150}
	ScaleSmall   = Scale{Target: 1_500_000, MaxCyclesFactor: 14, MixCount: 4, Seed: 7, Step: 250}
	ScaleDefault = Scale{Target: 4_000_000, MaxCyclesFactor: 14, MixCount: 8, Seed: 7, Step: 250}
	ScaleFull    = Scale{Target: 8_000_000, MaxCyclesFactor: 16, MixCount: 52, Seed: 7, Step: 400}
)

// MaxCycles returns the cycle guard for this scale.
func (s Scale) MaxCycles() uint64 { return s.Target * s.MaxCyclesFactor }

// Options tune controller construction.
type Options struct {
	// Profiles supplies per-core S^MP values (µMama-Profiled).
	Profiles []float64
	// JAVSize overrides the JAV capacity (0 = paper default of 2).
	JAVSize int
	// Timeline enables policy-timeline recording.
	Timeline bool
	// Theta overrides θ_global (0 = paper formula).
	Theta float64
	// TArbit overrides the arbiter period (0 = paper default of 5).
	TArbit int
	// Step overrides the timestep threshold in L2 demand accesses
	// (0 = paper default of 800). Scaled-down simulations scale the
	// step so agents complete a paper-like number of timesteps.
	Step uint64
}

// ControllerKeys lists every controller the harness can build.
var ControllerKeys = []string{
	"no", "ip_stride", "bingo", "pythia", "spp",
	"bandit", "bandit-shared",
	"mumama", "mumama-fair", "mumama-25", "mumama-50", "mumama-75", "mumama-gm",
	"mumama-profiled", "mumama-jav-only", "mumama-grw-only", "mumama-l1l2",
	"phase-select", "coord-rl",
}

// ControllerInfo describes one controller key for catalog endpoints:
// its name and whether its demand hooks are core-local under the
// default configuration — i.e. whether the simulator may run it on the
// parallel epoch path or must fall back to serial.
type ControllerInfo struct {
	Key       string `json:"key"`
	CoreLocal bool   `json:"core_local"`
}

// ControllerCatalog returns every known controller with its
// parallel-path eligibility. Keys whose constructor requires extra
// options (mumama-profiled) are probed with placeholder options; only
// the eligibility bit is read from the probe instance.
func ControllerCatalog() []ControllerInfo {
	out := make([]ControllerInfo, 0, len(ControllerKeys))
	for _, key := range ControllerKeys {
		opt := Options{}
		if key == "mumama-profiled" {
			opt.Profiles = []float64{1, 1}
		}
		info := ControllerInfo{Key: key}
		if ctrl, err := MakeController(key, opt); err == nil {
			if cl, ok := ctrl.(sim.CoreLocalController); ok {
				info.CoreLocal = cl.CoreLocalDemand()
			}
		}
		out = append(out, info)
	}
	return out
}

// MakeController builds a prefetch controller by key.
func MakeController(key string, opt Options) (sim.Controller, error) {
	mm := func(metric core.Metric, mutate func(*core.MuMamaConfig)) sim.Controller {
		cfg := core.DefaultMuMamaConfig()
		cfg.Metric = metric
		if opt.JAVSize > 0 {
			cfg.JAVSize = opt.JAVSize
		}
		if opt.Theta > 0 {
			cfg.ThetaGlobal = opt.Theta
		}
		if opt.TArbit > 0 {
			cfg.TArbit = opt.TArbit
		}
		if opt.Step > 0 {
			cfg.Step = opt.Step
		}
		cfg.RecordTimeline = opt.Timeline
		if mutate != nil {
			mutate(&cfg)
		}
		return core.NewMuMama(cfg)
	}
	bandit := func(shared bool) sim.Controller {
		cfg := core.DefaultBanditConfig()
		cfg.SharedReward = shared
		if opt.Step > 0 {
			cfg.Step = opt.Step
		}
		cfg.RecordTimeline = opt.Timeline
		return core.NewBandit(cfg)
	}
	switch key {
	case "no":
		return sim.NoPrefetchController(), nil
	case "ip_stride":
		return sim.NewFixedController("ip_stride", func(int) prefetch.Prefetcher {
			return prefetch.NewStride("l2_stride", 64, 2)
		}), nil
	case "bingo":
		return sim.NewFixedController("bingo", func(int) prefetch.Prefetcher {
			return prefetch.NewBingo()
		}), nil
	case "pythia":
		return sim.NewFixedController("pythia", func(c int) prefetch.Prefetcher {
			return prefetch.NewPythia(uint64(c) + 12345)
		}), nil
	case "spp":
		return sim.NewFixedController("spp", func(int) prefetch.Prefetcher {
			return prefetch.NewSPP()
		}), nil
	case "bandit":
		return bandit(false), nil
	case "bandit-shared":
		return bandit(true), nil
	case "mumama":
		return mm(core.MetricWS(), nil), nil
	case "mumama-fair":
		return mm(core.MetricHS(), nil), nil
	case "mumama-25":
		return mm(core.MetricBlend(0.25), nil), nil
	case "mumama-50":
		return mm(core.MetricBlend(0.50), nil), nil
	case "mumama-75":
		return mm(core.MetricBlend(0.75), nil), nil
	case "mumama-gm":
		return mm(core.MetricGM(), nil), nil
	case "mumama-profiled":
		if opt.Profiles == nil {
			return nil, fmt.Errorf("experiment: mumama-profiled requires Options.Profiles")
		}
		return mm(core.MetricWS(), func(c *core.MuMamaConfig) { c.Profiles = opt.Profiles }), nil
	case "mumama-jav-only":
		return mm(core.MetricWS(), func(c *core.MuMamaConfig) { c.DisableGRW = true }), nil
	case "mumama-grw-only":
		return mm(core.MetricWS(), func(c *core.MuMamaConfig) { c.DisableJAV = true }), nil
	case "phase-select":
		cfg := core.DefaultPhaseSelectConfig()
		if opt.Step > 0 {
			cfg.Step = opt.Step
		}
		cfg.Seed = 12345
		return core.NewPhaseSelect(cfg), nil
	case "coord-rl":
		cfg := core.DefaultCoordRLConfig()
		if opt.Step > 0 {
			cfg.Step = opt.Step
		}
		return core.NewCoordRL(cfg), nil
	case "mumama-l1l2":
		cfg := core.DefaultMuMamaConfig()
		if opt.Step > 0 {
			cfg.Step = opt.Step
		}
		if opt.JAVSize > 0 {
			cfg.JAVSize = opt.JAVSize
		}
		return core.NewDualMuMama(cfg), nil
	default:
		return nil, fmt.Errorf("experiment: unknown controller %q", key)
	}
}

// MixResult is one (mix, controller) measurement.
type MixResult struct {
	Mix        workload.Mix
	Controller string
	Result     sim.Result
	// Speedups are S_i = IPC_i(multicore, controller) /
	// IPC_i(single-core, no L2 prefetch) — Equation 2's terms.
	Speedups   []float64
	WS         float64
	HS         float64
	GM         float64
	Unfairness float64
}

// Runner executes experiments at a given scale, caching single-core
// baselines and no-prefetch multicore profiles.
type Runner struct {
	Scale   Scale
	Workers int

	// SimParallelism is the per-simulation goroutine budget passed to
	// sim.Config.Parallelism on every simulation this runner starts
	// (0 = serial). Results are bit-identical either way; this only
	// decides how a single simulation spreads over host cores, while
	// Workers decides how many simulations run side by side. Keep
	// Workers × SimParallelism near GOMAXPROCS to avoid
	// oversubscription.
	SimParallelism int

	// BaseCtx, when non-nil, is the context used by the non-Context
	// entry points (RunMix, RunMixes, Profiles, ...): drivers like
	// cmd/mamabench set it once (e.g. to a signal-cancelled context)
	// so every experiment they trigger honors cancellation without
	// threading a context through each figure helper.
	BaseCtx context.Context

	mu       sync.Mutex
	baseline map[string]float64       // baseline|trace|cfgFingerprint -> alone no-L2-pref IPC
	profiles map[string][]float64     // profile|mixKey|cfgFingerprint -> S^MP per core
	inflight map[string]chan struct{} // singleflight: closed when the keyed computation ends
}

// NewRunner constructs a Runner with sensible worker parallelism.
func NewRunner(scale Scale) *Runner {
	return &Runner{
		Scale:    scale,
		Workers:  runtime.GOMAXPROCS(0),
		baseline: make(map[string]float64),
		profiles: make(map[string][]float64),
		inflight: make(map[string]chan struct{}),
	}
}

// baseCtx resolves the context for non-Context entry points.
func (r *Runner) baseCtx() context.Context {
	if r.BaseCtx != nil {
		return r.BaseCtx
	}
	return context.Background()
}

// simCfg stamps the runner's per-simulation parallelism onto a config
// on its way into sim.New. Parallelism is excluded from fingerprints,
// so cache keys computed from cfg before or after this call agree.
func (r *Runner) simCfg(cfg sim.Config) sim.Config {
	cfg.Parallelism = r.SimParallelism
	return cfg
}

package experiment

import (
	"fmt"
	"sort"
	"strings"

	"micromama/internal/core"
	"micromama/internal/sim"
	"micromama/internal/workload"
)

// singleMixes builds one-core "mixes", one per sensitive trace, capped
// at the scale's mix count. Traces are taken round-robin across suite
// classes so a small cap still samples diverse behaviours.
func (r *Runner) singleMixes() []workload.Mix {
	byClass := map[workload.Class][]workload.Spec{}
	var order []workload.Class
	for _, sp := range workload.Sensitive() {
		if _, ok := byClass[sp.Class]; !ok {
			order = append(order, sp.Class)
		}
		byClass[sp.Class] = append(byClass[sp.Class], sp)
	}
	var specs []workload.Spec
	for len(specs) < len(workload.Sensitive()) {
		progressed := false
		for _, c := range order {
			if len(byClass[c]) > 0 {
				specs = append(specs, byClass[c][0])
				byClass[c] = byClass[c][1:]
				progressed = true
			}
		}
		if !progressed {
			break
		}
	}
	n := len(specs)
	if r.Scale.MixCount < n {
		n = r.Scale.MixCount
	}
	mixes := make([]workload.Mix, n)
	for i := 0; i < n; i++ {
		mixes[i] = workload.Mix{ID: i, Specs: []workload.Spec{specs[i]}}
	}
	return mixes
}

// mixesFor samples the scale's mixes for a core count.
func (r *Runner) mixesFor(cores int) []workload.Mix {
	if cores == 1 {
		return r.singleMixes()
	}
	return workload.Mixes(cores, r.Scale.MixCount, r.Scale.Seed)
}

// ThroughputReport reproduces Figure 9 (average WS of ip_stride, bingo,
// pythia, and µMama normalized to Bandit at 1/4/8 cores) plus the §6.1
// side statistics (prefetch-traffic reduction and per-core
// aggressiveness shifts between Bandit and µMama).
type ThroughputReport struct {
	CoreCounts  []int
	Controllers []string
	// NormWS[cores][controller] = mean WS / mean WS(bandit) - 1.
	NormWS map[int]map[string]float64
	// PrefetchReduction[cores] is µMama's L2-prefetch traffic change vs
	// Bandit (§6.1 reports −23.9% at 4 cores, −15.5% at 8).
	PrefetchReduction map[int]float64
	// MoreAggressive[cores] is the mean number of cores per mix that
	// issue more L2 prefetches under µMama than under Bandit (§6.1:
	// ~1.5 at 4 cores, ~3.5 at 8).
	MoreAggressive map[int]float64
}

// Fig9Throughput runs the throughput comparison.
func (r *Runner) Fig9Throughput(coreCounts []int) (*ThroughputReport, error) {
	rep := &ThroughputReport{
		CoreCounts:        coreCounts,
		Controllers:       []string{"ip_stride", "bingo", "pythia", "mumama"},
		NormWS:            map[int]map[string]float64{},
		PrefetchReduction: map[int]float64{},
		MoreAggressive:    map[int]float64{},
	}
	for _, n := range coreCounts {
		cfg := sim.DefaultConfig(n)
		mixes := r.mixesFor(n)
		banditRes, err := r.RunMixes(mixes, cfg, "bandit", Options{})
		if err != nil {
			return nil, err
		}
		banditWS := MeanWS(banditRes)
		rep.NormWS[n] = map[string]float64{"bandit": 0}
		for _, key := range rep.Controllers {
			rs, err := r.RunMixes(mixes, cfg, key, Options{})
			if err != nil {
				return nil, err
			}
			rep.NormWS[n][key] = ratioPct(MeanWS(rs), banditWS)
			if key == "mumama" {
				var bPF, mPF uint64
				var moreAgg float64
				for i := range rs {
					bPF += banditRes[i].Result.TotalL2Prefetches()
					mPF += rs[i].Result.TotalL2Prefetches()
					for c := range rs[i].Result.Cores {
						if rs[i].Result.Cores[c].L2PrefIssued > banditRes[i].Result.Cores[c].L2PrefIssued {
							moreAgg++
						}
					}
				}
				rep.PrefetchReduction[n] = ratioPct(float64(mPF), float64(bPF))
				rep.MoreAggressive[n] = moreAgg / float64(len(rs))
			}
		}
	}
	return rep, nil
}

// String renders the report.
func (t *ThroughputReport) String() string {
	headers := append([]string{"cores"}, t.Controllers...)
	var rows [][]string
	for _, n := range t.CoreCounts {
		row := []string{fmt.Sprintf("%d", n)}
		for _, c := range t.Controllers {
			row = append(row, pct(t.NormWS[n][c]))
		}
		rows = append(rows, row)
	}
	var b strings.Builder
	b.WriteString("Figure 9: average Weighted Speedup normalized to Bandit\n")
	b.WriteString(table(headers, rows))
	for _, n := range t.CoreCounts {
		if n == 1 {
			continue
		}
		fmt.Fprintf(&b, "§6.1 (%d cores): µMama L2-prefetch traffic vs Bandit: %s; cores more aggressive under µMama: %.1f\n",
			n, pct(t.PrefetchReduction[n]), t.MoreAggressive[n])
	}
	return b.String()
}

// PerWorkloadReport reproduces Figures 10a–d and 16: per-mix speedups
// of a µMama variant normalized to Bandit.
type PerWorkloadReport struct {
	Cores      int
	Controller string
	MetricName string // "WS" or "HS"
	Ratios     []float64
	MixNames   []string
	Average    float64
}

// FigPerWorkload computes per-mix normalized speedups. metricHS selects
// harmonic speedup (Figures 10c/d) instead of weighted (10a/b, 16).
func (r *Runner) FigPerWorkload(cores int, key string, metricHS bool) (*PerWorkloadReport, error) {
	cfg := sim.DefaultConfig(cores)
	mixes := r.mixesFor(cores)
	banditRes, err := r.RunMixes(mixes, cfg, "bandit", Options{})
	if err != nil {
		return nil, err
	}
	rs, err := r.RunMixes(mixes, cfg, key, Options{})
	if err != nil {
		return nil, err
	}
	rep := &PerWorkloadReport{Cores: cores, Controller: key, MetricName: "WS"}
	if metricHS {
		rep.MetricName = "HS"
	}
	var sum float64
	for i := range rs {
		a, b := rs[i].WS, banditRes[i].WS
		if metricHS {
			a, b = rs[i].HS, banditRes[i].HS
		}
		ratio := 0.0
		if b > 0 {
			ratio = a / b
		}
		rep.Ratios = append(rep.Ratios, ratio)
		rep.MixNames = append(rep.MixNames, mixes[i].Name())
		sum += ratio
	}
	rep.Average = sum/float64(len(rs)) - 1
	return rep, nil
}

// String renders the report.
func (p *PerWorkloadReport) String() string {
	var rows [][]string
	idx := make([]int, len(p.Ratios))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return p.Ratios[idx[a]] < p.Ratios[idx[b]] })
	for _, i := range idx {
		rows = append(rows, []string{fmt.Sprintf("%d", i), num(p.Ratios[i]), p.MixNames[i]})
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Per-workload %s of %s normalized to Bandit (%d cores), sorted; average=%s\n",
		p.MetricName, p.Controller, p.Cores, pct(p.Average))
	b.WriteString(table([]string{"rank", p.MetricName + "/bandit", "mix"}, rows))
	return b.String()
}

// PrefetchScalingReport reproduces Figure 3: prefetches issued vs core
// count, normalized to each configuration's single-core count.
//
// Note: this repo's memory controller rejects prefetches under
// saturation (DESIGN.md's backpressure substitution), so *issued*
// counts understate Bandit's aggression in constrained systems. The
// policy-level signal the paper's figure demonstrates — Bandit choosing
// more aggressive arms as core count grows — is therefore also reported
// as BanditMeanDegree.
type PrefetchScalingReport struct {
	CoreCounts  []int
	Controllers []string
	// Normalized[controller][coreIdx] = prefetches / prefetches(1 core).
	Normalized map[string][]float64
	// BanditMeanDegree[coreIdx] is the mean Table 2 total degree of the
	// arms Bandit agents chose.
	BanditMeanDegree []float64
}

// Fig3PrefetchScaling runs the prefetch-traffic scaling study.
func (r *Runner) Fig3PrefetchScaling(coreCounts []int) (*PrefetchScalingReport, error) {
	rep := &PrefetchScalingReport{
		CoreCounts:  coreCounts,
		Controllers: []string{"bandit", "no", "pythia", "bingo"},
		Normalized:  map[string][]float64{},
	}
	totals := map[string][]float64{}
	for _, n := range coreCounts {
		cfg := sim.DefaultConfig(n)
		mixes := r.mixesFor(n)
		for _, key := range rep.Controllers {
			if key == "bandit" {
				// Run with retained controllers to collect the
				// policy-level aggressiveness alongside the counts.
				var pf, degSum float64
				for _, mix := range mixes {
					bc := core.DefaultBanditConfig()
					bc.Step = r.Scale.Step
					ctrl := core.NewBandit(bc)
					res, err := r.RunMixWith(mix, cfg, ctrl)
					if err != nil {
						return nil, err
					}
					pf += float64(res.Result.TotalPrefetches())
					degSum += ctrl.MeanChosenDegree()
				}
				totals[key] = append(totals[key], pf/float64(len(mixes)))
				rep.BanditMeanDegree = append(rep.BanditMeanDegree, degSum/float64(len(mixes)))
				continue
			}
			rs, err := r.RunMixes(mixes, cfg, key, Options{})
			if err != nil {
				return nil, err
			}
			var pf float64
			for _, x := range rs {
				pf += float64(x.Result.TotalPrefetches())
			}
			totals[key] = append(totals[key], pf/float64(len(rs)))
		}
	}
	for _, key := range rep.Controllers {
		base := totals[key][0]
		norm := make([]float64, len(coreCounts))
		for i, v := range totals[key] {
			if base > 0 {
				norm[i] = v / base
			}
		}
		rep.Normalized[key] = norm
	}
	return rep, nil
}

// String renders the report.
func (p *PrefetchScalingReport) String() string {
	headers := []string{"config"}
	for _, n := range p.CoreCounts {
		headers = append(headers, fmt.Sprintf("%dC", n))
	}
	var rows [][]string
	for _, c := range p.Controllers {
		row := []string{c}
		for _, v := range p.Normalized[c] {
			row = append(row, fmt.Sprintf("%.2fx", v))
		}
		rows = append(rows, row)
	}
	out := "Figure 3: prefetches issued, normalized to 1 core\n" + table(headers, rows)
	if len(p.BanditMeanDegree) > 0 {
		out += "bandit mean chosen arm degree (policy-level aggression):"
		for i, n := range p.CoreCounts {
			out += fmt.Sprintf(" %dC=%.1f", n, p.BanditMeanDegree[i])
		}
		out += "\n"
	}
	return out
}

// BandwidthPoint is one point of Figure 11.
type BandwidthPoint struct {
	DRAMName   string
	PeakGBps   float64
	Cores      int
	Controller string
	// NormWS is mean WS normalized to Bandit on the same system.
	NormWS float64
}

// BandwidthReport reproduces Figure 11.
type BandwidthReport struct{ Points []BandwidthPoint }

// Fig11Bandwidth sweeps memory configurations (DDR4-1866/2400 × 1/2
// channels) for µMama and Pythia at the given core counts.
func (r *Runner) Fig11Bandwidth(coreCounts []int, drams []sim.Config) (*BandwidthReport, error) {
	rep := &BandwidthReport{}
	for _, base := range drams {
		for _, n := range coreCounts {
			cfg := base
			cfg.Cores = n
			mixes := r.mixesFor(n)
			banditRes, err := r.RunMixes(mixes, cfg, "bandit", Options{})
			if err != nil {
				return nil, err
			}
			bws := MeanWS(banditRes)
			for _, key := range []string{"mumama", "pythia"} {
				rs, err := r.RunMixes(mixes, cfg, key, Options{})
				if err != nil {
					return nil, err
				}
				rep.Points = append(rep.Points, BandwidthPoint{
					DRAMName:   cfg.DRAM.Name,
					PeakGBps:   cfg.DRAM.PeakGBps(),
					Cores:      n,
					Controller: key,
					NormWS:     ratioPct(MeanWS(rs), bws),
				})
			}
		}
	}
	sort.Slice(rep.Points, func(i, j int) bool {
		a, b := rep.Points[i], rep.Points[j]
		if a.Controller != b.Controller {
			return a.Controller < b.Controller
		}
		if a.Cores != b.Cores {
			return a.Cores < b.Cores
		}
		return a.PeakGBps < b.PeakGBps
	})
	return rep, nil
}

// String renders the report.
func (p *BandwidthReport) String() string {
	var rows [][]string
	for _, pt := range p.Points {
		rows = append(rows, []string{
			fmt.Sprintf("%s %dC", pt.Controller, pt.Cores),
			pt.DRAMName, fmt.Sprintf("%.1f", pt.PeakGBps), pct(pt.NormWS),
		})
	}
	return "Figure 11: Weighted Speedup vs Bandit across memory bandwidths\n" +
		table([]string{"series", "dram", "GB/s", "WS vs bandit"}, rows)
}

// FairnessReport reproduces Figures 13a/13b.
type FairnessReport struct {
	CoreCounts  []int
	Controllers []string
	Unfairness  map[int]map[string]float64 // cores -> controller -> mean unfairness
	NormHS      map[int]map[string]float64 // cores -> controller -> mean HS vs bandit
}

// Fig13Fairness runs the fairness comparison.
func (r *Runner) Fig13Fairness(coreCounts []int) (*FairnessReport, error) {
	rep := &FairnessReport{
		CoreCounts:  coreCounts,
		Controllers: []string{"no", "bandit", "bingo", "pythia", "mumama", "mumama-fair"},
		Unfairness:  map[int]map[string]float64{},
		NormHS:      map[int]map[string]float64{},
	}
	for _, n := range coreCounts {
		cfg := sim.DefaultConfig(n)
		mixes := r.mixesFor(n)
		rep.Unfairness[n] = map[string]float64{}
		rep.NormHS[n] = map[string]float64{}
		var banditHS float64
		results := map[string][]MixResult{}
		for _, key := range rep.Controllers {
			rs, err := r.RunMixes(mixes, cfg, key, Options{})
			if err != nil {
				return nil, err
			}
			results[key] = rs
			if key == "bandit" {
				banditHS = MeanHS(rs)
			}
		}
		for _, key := range rep.Controllers {
			rep.Unfairness[n][key] = MeanUnfairness(results[key])
			rep.NormHS[n][key] = ratioPct(MeanHS(results[key]), banditHS)
		}
	}
	return rep, nil
}

// String renders the report.
func (f *FairnessReport) String() string {
	var b strings.Builder
	b.WriteString("Figure 13a: Unfairness (lower is fairer)\n")
	headers := append([]string{"cores"}, f.Controllers...)
	var rows [][]string
	for _, n := range f.CoreCounts {
		row := []string{fmt.Sprintf("%d", n)}
		for _, c := range f.Controllers {
			row = append(row, num(f.Unfairness[n][c]))
		}
		rows = append(rows, row)
	}
	b.WriteString(table(headers, rows))
	b.WriteString("Figure 13b: Harmonic Speedup normalized to Bandit\n")
	rows = rows[:0]
	for _, n := range f.CoreCounts {
		row := []string{fmt.Sprintf("%d", n)}
		for _, c := range f.Controllers {
			row = append(row, pct(f.NormHS[n][c]))
		}
		rows = append(rows, row)
	}
	b.WriteString(table(headers, rows))
	return b.String()
}

// FrontierPoint is one point of Figure 14.
type FrontierPoint struct {
	Controller string
	WS         float64 // absolute mean weighted speedup
	Fairness   float64 // 1 - mean unfairness (higher is fairer)
}

// FrontierReport reproduces Figure 14: the throughput/fairness tradeoff
// across µMama reward blends and the baselines.
type FrontierReport struct {
	Cores  int
	Points []FrontierPoint
}

// Fig14Frontier runs the tradeoff study.
func (r *Runner) Fig14Frontier(cores int) (*FrontierReport, error) {
	cfg := sim.DefaultConfig(cores)
	mixes := r.mixesFor(cores)
	keys := []string{"mumama", "mumama-25", "mumama-50", "mumama-75", "mumama-fair", "mumama-gm", "pythia", "bingo", "bandit"}
	rep := &FrontierReport{Cores: cores}
	for _, key := range keys {
		rs, err := r.RunMixes(mixes, cfg, key, Options{})
		if err != nil {
			return nil, err
		}
		rep.Points = append(rep.Points, FrontierPoint{
			Controller: key,
			WS:         MeanWS(rs),
			Fairness:   1 - MeanUnfairness(rs),
		})
	}
	return rep, nil
}

// String renders the report.
func (f *FrontierReport) String() string {
	var rows [][]string
	for _, p := range f.Points {
		rows = append(rows, []string{p.Controller, num(p.WS), num(p.Fairness)})
	}
	return fmt.Sprintf("Figure 14: throughput/fairness tradeoff (%d cores)\n", f.Cores) +
		table([]string{"config", "WS", "1-Unfairness"}, rows)
}

// AblationReport reproduces Figure 15a: WS contribution of µMama's
// components at 8 cores, normalized to Bandit.
type AblationReport struct {
	Cores  int
	NormWS map[string]float64
	Order  []string
}

// Fig15aAblation runs the component breakdown.
func (r *Runner) Fig15aAblation(cores int) (*AblationReport, error) {
	cfg := sim.DefaultConfig(cores)
	mixes := r.mixesFor(cores)
	banditRes, err := r.RunMixes(mixes, cfg, "bandit", Options{})
	if err != nil {
		return nil, err
	}
	bws := MeanWS(banditRes)
	rep := &AblationReport{
		Cores:  cores,
		NormWS: map[string]float64{},
		Order:  []string{"mumama-grw-only", "mumama-jav-only", "mumama", "mumama-profiled"},
	}
	for _, key := range rep.Order {
		rs, err := r.RunMixes(mixes, cfg, key, Options{})
		if err != nil {
			return nil, err
		}
		rep.NormWS[key] = ratioPct(MeanWS(rs), bws)
	}
	return rep, nil
}

// String renders the report.
func (a *AblationReport) String() string {
	var rows [][]string
	label := map[string]string{
		"mumama-grw-only": "GRW", "mumama-jav-only": "JAV",
		"mumama": "µmama", "mumama-profiled": "µmama-profiled",
	}
	for _, key := range a.Order {
		rows = append(rows, []string{label[key], pct(a.NormWS[key])})
	}
	return fmt.Sprintf("Figure 15a: component breakdown (%d cores), WS vs Bandit\n", a.Cores) +
		table([]string{"config", "WS vs bandit"}, rows)
}

// JAVSweepReport reproduces Figure 15b: µMama's speedup over Bandit vs
// JAV cache size.
type JAVSweepReport struct {
	Cores  int
	Sizes  []int
	NormWS []float64
}

// Fig15bJAVSweep runs the JAV-size sensitivity study.
func (r *Runner) Fig15bJAVSweep(cores int, sizes []int) (*JAVSweepReport, error) {
	cfg := sim.DefaultConfig(cores)
	mixes := r.mixesFor(cores)
	banditRes, err := r.RunMixes(mixes, cfg, "bandit", Options{})
	if err != nil {
		return nil, err
	}
	bws := MeanWS(banditRes)
	rep := &JAVSweepReport{Cores: cores, Sizes: sizes}
	for _, sz := range sizes {
		rs, err := r.RunMixes(mixes, cfg, "mumama", Options{JAVSize: sz})
		if err != nil {
			return nil, err
		}
		rep.NormWS = append(rep.NormWS, ratioPct(MeanWS(rs), bws))
	}
	return rep, nil
}

// String renders the report.
func (j *JAVSweepReport) String() string {
	var rows [][]string
	for i, sz := range j.Sizes {
		rows = append(rows, []string{fmt.Sprintf("%d", sz), pct(j.NormWS[i])})
	}
	return fmt.Sprintf("Figure 15b: WS vs Bandit by JAV cache size (%d cores)\n", j.Cores) +
		table([]string{"JAV entries", "WS vs bandit"}, rows)
}

// TimelineReport reproduces Figures 2, 4, and 12: the policy choices of
// the four agents on the motivating workload mix over time.
type TimelineReport struct {
	Controller string
	Mix        workload.Mix
	Samples    []core.PolicySample
	// JointFraction is the share of timesteps dictated from the JAV
	// (µMama only; §6.5 reports 64–67%).
	JointFraction float64
}

// MotivatingMix returns the 4-core mix analogous to the paper's Figure
// 2 workload (one core preferring prefetching off, two strided codes,
// one aggressive streamer).
func MotivatingMix() workload.Mix {
	names := []string{"spec06.mcf", "spec17.cactuBSSN", "spec06.cactusADM", "spec06.libquantum"}
	specs := make([]workload.Spec, len(names))
	for i, n := range names {
		sp, err := workload.ByName(n)
		if err != nil {
			panic(err)
		}
		specs[i] = sp
	}
	return workload.Mix{ID: 0, Specs: specs}
}

// FigTimeline runs the motivating mix under the given controller with
// policy-timeline recording ("bandit" → Figure 2, "bandit-shared" →
// Figure 4, "mumama" → Figure 12).
func (r *Runner) FigTimeline(key string) (*TimelineReport, error) {
	mix := MotivatingMix()
	cfg := sim.DefaultConfig(len(mix.Specs))
	ctrl, err := MakeController(key, Options{Timeline: true, Step: r.Scale.Step})
	if err != nil {
		return nil, err
	}
	sys, err := sim.New(r.simCfg(cfg), mix.Traces(), ctrl)
	if err != nil {
		return nil, err
	}
	sys.Run(r.Scale.Target, r.Scale.MaxCycles())
	rep := &TimelineReport{Controller: key, Mix: mix}
	if tr, ok := ctrl.(core.TimelineRecorder); ok {
		rep.Samples = tr.Timeline()
	}
	if mm, ok := ctrl.(*core.MuMama); ok {
		rep.JointFraction = mm.JointFraction()
	}
	return rep, nil
}

// String renders a compact view: per core, the most-used arms and the
// tail of the policy sequence.
func (t *TimelineReport) String() string {
	perCore := map[int][]core.PolicySample{}
	for _, s := range t.Samples {
		perCore[s.Core] = append(perCore[s.Core], s)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Policy timeline (%s) on %s: %d policy changes\n", t.Controller, t.Mix.Name(), len(t.Samples))
	if t.JointFraction > 0 {
		fmt.Fprintf(&b, "JAV-dictated timestep fraction: %.0f%%\n", t.JointFraction*100)
	}
	cores := make([]int, 0, len(perCore))
	for c := range perCore {
		cores = append(cores, c)
	}
	sort.Ints(cores)
	for _, c := range cores {
		ss := perCore[c]
		counts := map[int]int{}
		for _, s := range ss {
			counts[s.Arm]++
		}
		best, bestN := 0, 0
		for arm, n := range counts {
			if n > bestN {
				best, bestN = arm, n
			}
		}
		tail := ss
		if len(tail) > 12 {
			tail = tail[len(tail)-12:]
		}
		arms := make([]string, len(tail))
		for i, s := range tail {
			j := ""
			if s.Joint {
				j = "*"
			}
			arms[i] = fmt.Sprintf("%d%s", s.Arm, j)
		}
		fmt.Fprintf(&b, "core %d (%s): mode arm %d; last policies: %s\n",
			c, t.Mix.Specs[c].Name, best, strings.Join(arms, " "))
	}
	b.WriteString("(* = dictated from the JAV cache)\n")
	return b.String()
}

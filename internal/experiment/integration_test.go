package experiment

import (
	"testing"

	"micromama/internal/sim"
	"micromama/internal/workload"
)

// Integration tests assert the qualitative shapes the paper's
// evaluation rests on, at a tiny scale. They use loose thresholds: the
// quantities are noisy at this scale, but the *signs* must hold.

func TestIntegrationStreamPrefetchSensitive(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	r := NewRunner(ScaleTiny)
	sp, _ := workload.ByName("spec06.libquantum")
	mix := workload.Mix{Specs: []workload.Spec{sp}}
	cfg := sim.DefaultConfig(1)
	noPref, err := r.RunMix(mix, cfg, "no", Options{})
	if err != nil {
		t.Fatal(err)
	}
	// A fixed aggressive streamer should beat no-prefetching by >10%
	// (the paper's prefetch-sensitivity criterion).
	pref, err := r.RunMix(mix, cfg, "bandit", Options{})
	if err != nil {
		t.Fatal(err)
	}
	_ = pref
	bestIPC := 0.0
	for _, key := range []string{"bingo", "pythia", "bandit"} {
		res, err := r.RunMix(mix, cfg, key, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if ipc := res.Result.Cores[0].IPC; ipc > bestIPC {
			bestIPC = ipc
		}
	}
	base := noPref.Result.Cores[0].IPC
	if bestIPC < base*1.10 {
		t.Errorf("stream trace not prefetch-sensitive: base %.3f best %.3f", base, bestIPC)
	}
}

func TestIntegrationFairRewardImprovesFairness(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	// A mix with one bandwidth-hog stream and lighter victims: under
	// uncoordinated Bandits the stream claims the channel; µMama-Fair
	// must shrink unfairness.
	names := []string{"spec06.libquantum", "spec17.wrf", "spec06.mcf", "ligra.KCore"}
	specs := make([]workload.Spec, len(names))
	for i, n := range names {
		specs[i], _ = workload.ByName(n)
	}
	mix := workload.Mix{Specs: specs}
	r := NewRunner(Scale{Target: 1_200_000, MaxCyclesFactor: 14, MixCount: 1, Seed: 7, Step: 200})
	cfg := sim.DefaultConfig(4)

	bandit, err := r.RunMix(mix, cfg, "bandit", Options{})
	if err != nil {
		t.Fatal(err)
	}
	fair, err := r.RunMix(mix, cfg, "mumama-fair", Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("bandit: WS=%.3f HS=%.3f unfair=%.2f | mumama-fair: WS=%.3f HS=%.3f unfair=%.2f",
		bandit.WS, bandit.HS, bandit.Unfairness, fair.WS, fair.HS, fair.Unfairness)
	if fair.Unfairness >= bandit.Unfairness {
		t.Errorf("µMama-Fair did not reduce unfairness (%.2f vs %.2f)", fair.Unfairness, bandit.Unfairness)
	}
	if fair.HS <= bandit.HS {
		t.Errorf("µMama-Fair did not improve HS (%.3f vs %.3f)", fair.HS, bandit.HS)
	}
}

func TestIntegrationRunsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	r1 := NewRunner(ScaleTiny)
	r2 := NewRunner(ScaleTiny)
	mix := workload.Mixes(2, 1, 9)[0]
	cfg := sim.DefaultConfig(2)
	a, err := r1.RunMix(mix, cfg, "mumama", Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := r2.RunMix(mix, cfg, "mumama", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.WS != b.WS || a.HS != b.HS {
		t.Errorf("non-deterministic µMama runs: %.6f/%.6f vs %.6f/%.6f", a.WS, a.HS, b.WS, b.HS)
	}
}

func TestIntegrationDualControllerRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("integration")
	}
	r := NewRunner(ScaleTiny)
	mix := workload.Mixes(2, 1, 5)[0]
	res, err := r.RunMix(mix, sim.DefaultConfig(2), "mumama-l1l2", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.WS <= 0 {
		t.Errorf("dual controller WS = %g", res.WS)
	}
}

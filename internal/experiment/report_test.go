package experiment

import (
	"encoding/json"
	"strings"
	"testing"

	"micromama/internal/core"
	"micromama/internal/workload"
)

// Fabricated reports exercise the String and SVG renderers without
// running simulations.

func fabThroughput() *ThroughputReport {
	return &ThroughputReport{
		CoreCounts:  []int{1, 4},
		Controllers: []string{"pythia", "mumama"},
		NormWS: map[int]map[string]float64{
			1: {"pythia": -0.07, "mumama": -0.04},
			4: {"pythia": -0.09, "mumama": 0.019},
		},
		PrefetchReduction: map[int]float64{4: -0.239},
		MoreAggressive:    map[int]float64{4: 1.5},
	}
}

func TestThroughputReportRendering(t *testing.T) {
	rep := fabThroughput()
	out := rep.String()
	for _, want := range []string{"Figure 9", "mumama", "+1.90%", "-23.90%"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q:\n%s", want, out)
		}
	}
	svg := rep.SVG()
	if !strings.HasPrefix(svg, "<svg") || !strings.Contains(svg, "4 cores") {
		t.Error("SVG rendering incomplete")
	}
}

func TestPerWorkloadReportRendering(t *testing.T) {
	rep := &PerWorkloadReport{
		Cores: 4, Controller: "mumama", MetricName: "WS",
		Ratios:   []float64{1.05, 0.97, 1.132},
		MixNames: []string{"a", "b", "c"},
		Average:  0.0185,
	}
	out := rep.String()
	if !strings.Contains(out, "+1.85%") {
		t.Errorf("average missing:\n%s", out)
	}
	// Rendering is sorted ascending: 0.97 first.
	if strings.Index(out, "0.970") > strings.Index(out, "1.132") {
		t.Error("ratios not sorted")
	}
	if !strings.Contains(rep.SVG(), "polyline") {
		t.Error("SVG missing data")
	}
}

func TestBandwidthReportRendering(t *testing.T) {
	rep := &BandwidthReport{Points: []BandwidthPoint{
		{DRAMName: "DDR4-1866 x1ch", PeakGBps: 14.9, Cores: 8, Controller: "mumama", NormWS: 0.0256},
		{DRAMName: "DDR4-2400 x1ch", PeakGBps: 19.2, Cores: 8, Controller: "mumama", NormWS: 0.021},
	}}
	if !strings.Contains(rep.String(), "+2.56%") {
		t.Error("point missing from rendering")
	}
	if !strings.Contains(rep.SVG(), "mumama 8C") {
		t.Error("SVG series missing")
	}
}

func TestFairnessFrontierAblationRendering(t *testing.T) {
	fr := &FairnessReport{
		CoreCounts:  []int{4},
		Controllers: []string{"bandit", "mumama-fair"},
		Unfairness:  map[int]map[string]float64{4: {"bandit": 6.1, "mumama-fair": 4.2}},
		NormHS:      map[int]map[string]float64{4: {"bandit": 0, "mumama-fair": 0.094}},
	}
	if !strings.Contains(fr.String(), "+9.40%") {
		t.Error("fairness rendering missing HS")
	}
	if !strings.Contains(fr.SVG(), "<svg") {
		t.Error("fairness SVG broken")
	}

	fro := &FrontierReport{Cores: 4, Points: []FrontierPoint{
		{Controller: "bandit", WS: 2.85, Fairness: -2.6},
		{Controller: "mumama", WS: 2.9, Fairness: -1.9},
	}}
	if !strings.Contains(fro.String(), "bandit") || !strings.Contains(fro.SVG(), "circle") {
		t.Error("frontier rendering broken")
	}

	ab := &AblationReport{
		Cores:  8,
		Order:  []string{"mumama-grw-only", "mumama"},
		NormWS: map[string]float64{"mumama-grw-only": 0.002, "mumama": 0.021},
	}
	if !strings.Contains(ab.String(), "GRW") || !strings.Contains(ab.SVG(), "rect") {
		t.Error("ablation rendering broken")
	}
}

func TestTimelineReportRendering(t *testing.T) {
	mix := MotivatingMix()
	rep := &TimelineReport{
		Controller: "mumama", Mix: mix,
		Samples: []core.PolicySample{
			{Cycle: 100, Core: 0, Arm: 3},
			{Cycle: 200, Core: 0, Arm: 5, Joint: true},
			{Cycle: 150, Core: 1, Arm: 0},
		},
		JointFraction: 0.66,
	}
	out := rep.String()
	if !strings.Contains(out, "66%") || !strings.Contains(out, "5*") {
		t.Errorf("timeline rendering missing dictated markers:\n%s", out)
	}
	if !strings.Contains(rep.SVG(), `fill="white"`) {
		t.Error("SVG missing hollow dictated sample")
	}
}

func TestCharacteristicsReportRendering(t *testing.T) {
	rep := &CharacteristicsReport{
		Cores: 4, Threshold: 2.5,
		MixNames:  []string{"m0", "m1"},
		MeanMPKI:  []float64{1.5, 20},
		SigmaMPKI: []float64{0.5, 2},
		Ratio:     []float64{1.03, 1.0},
		AvgAll:    0.015, AvgFiltered: 0.03, FilteredN: 1,
	}
	out := rep.String()
	if !strings.Contains(out, "0*") {
		t.Errorf("filter marker missing:\n%s", out)
	}
	if !strings.Contains(out, "+3.00%") {
		t.Errorf("filtered average missing:\n%s", out)
	}
}

// All reports must be JSON-serializable for mamabench -json.
func TestReportsMarshalJSON(t *testing.T) {
	reports := []interface{}{
		fabThroughput(),
		&PerWorkloadReport{Ratios: []float64{1}},
		&PrefetchScalingReport{Normalized: map[string][]float64{"bandit": {1, 9.8}}},
		&BandwidthReport{},
		&FairnessReport{},
		&FrontierReport{},
		&AblationReport{},
		&JAVSweepReport{},
		&TimelineReport{Mix: workload.Mix{}},
		&CharacteristicsReport{},
		PlayGame(100, 1),
	}
	for _, r := range reports {
		if _, err := json.Marshal(r); err != nil {
			t.Errorf("%T: %v", r, err)
		}
	}
}

// TestPaperConstants pins the encoded paper values against the
// hardware-overhead model (the only ones independently computable).
func TestPaperConstants(t *testing.T) {
	if Paper.JAVBytes8C != 42 || Paper.PerStepBytes != 27 {
		t.Error("paper overhead constants drifted")
	}
	if Paper.Fig9MuMamaWS8C <= Paper.Fig9MuMamaWS4C {
		t.Error("paper reports larger gains at 8 cores than 4")
	}
	if Paper.Fig10HS4C < 5*Paper.Fig10WS4C {
		t.Error("paper's fairness gains dwarf its throughput gains")
	}
}

package experiment

// PaperReported records the headline numbers the paper reports for each
// experiment, as data. EXPERIMENTS.md cites these, and shape tests can
// compare signs/orderings (never absolute values — this repo's
// substrate is a different simulator; see DESIGN.md).
type PaperReported struct {
	// Figure 9 (§6.1): average WS normalized to Bandit.
	Fig9MuMamaWS4C float64 // +1.9%
	Fig9MuMamaWS8C float64 // +2.1%
	// §6.1 prefetch-traffic change of µMama vs Bandit.
	PrefetchTraffic4C float64 // −23.9%
	PrefetchTraffic8C float64 // −15.5%
	// §6.1: cores per mix growing MORE aggressive under µMama.
	MoreAggressive4C float64 // ~1.5
	MoreAggressive8C float64 // ~3.5
	// Figure 10 averages.
	Fig10WS4C float64 // +1.85%
	Fig10WS8C float64 // +2.12%
	Fig10HS4C float64 // +9.44%
	Fig10HS8C float64 // +10.38%
	// Figure 11: µMama's gain in the most bandwidth-constrained system.
	Fig11LowBW8C float64 // +2.56%
	// Figure 3: Bandit's 8-core prefetch blow-up (others stay ≤ ~8x).
	Fig3Bandit8C float64 // ~10x
	// §6.5: fraction of timesteps dictated from the JAV.
	JointFraction4C float64 // 0.64
	JointFraction8C float64 // 0.67
	// Figure 13a: µMama-Fair's unfairness reduction vs Bandit.
	Fig13UnfairnessReduction float64 // ~−30%
	// Figure 15a: component breakdown, WS vs Bandit at 8 cores.
	Fig15aJAVOnly  float64 // ~+1.5%
	Fig15aFull     float64 // +2.1%
	Fig15aProfiled float64 // +3.0%
	// Figure 16: µMama-Profiled per-mix average and slowdown-mix cut.
	Fig16Avg         float64 // +3.06%
	Fig16SlowdownCut float64 // −47% slowdown mixes vs µMama
	// §6.3: gains on the µ−σ < 2.5 MPKI subset.
	Sec63Filtered4C float64 // +2.7%
	Sec63Filtered8C float64 // +3.4%
	// §4.4: hardware overheads.
	JAVBytes8C     int     // 42
	PerStepBytes   int     // 27
	DataRateMBs40C float64 // ~28
}

// Paper is the paper's reported values (MICRO'25, Block et al.).
var Paper = PaperReported{
	Fig9MuMamaWS4C:           0.019,
	Fig9MuMamaWS8C:           0.021,
	PrefetchTraffic4C:        -0.239,
	PrefetchTraffic8C:        -0.155,
	MoreAggressive4C:         1.5,
	MoreAggressive8C:         3.5,
	Fig10WS4C:                0.0185,
	Fig10WS8C:                0.0212,
	Fig10HS4C:                0.0944,
	Fig10HS8C:                0.1038,
	Fig11LowBW8C:             0.0256,
	Fig3Bandit8C:             10.0,
	JointFraction4C:          0.64,
	JointFraction8C:          0.67,
	Fig13UnfairnessReduction: -0.30,
	Fig15aJAVOnly:            0.015,
	Fig15aFull:               0.021,
	Fig15aProfiled:           0.030,
	Fig16Avg:                 0.0306,
	Fig16SlowdownCut:         -0.47,
	Sec63Filtered4C:          0.027,
	Sec63Filtered8C:          0.034,
	JAVBytes8C:               42,
	PerStepBytes:             27,
	DataRateMBs40C:           28,
}

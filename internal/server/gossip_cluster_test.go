package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"micromama/internal/cluster"
	"micromama/internal/sweep"
)

// testGossipOptions are aggressive SWIM timings for in-process tests:
// fast probes so kill/rejoin converges in tens of milliseconds, with a
// suspect timeout loose enough that -race scheduling jitter cannot
// spuriously confirm a live node dead.
func testGossipOptions(seeds []string) cluster.GossipOptions {
	return cluster.GossipOptions{
		Interval:       10 * time.Millisecond,
		SuspectTimeout: 150 * time.Millisecond,
		SyncInterval:   40 * time.Millisecond,
		Seeds:          seeds,
	}
}

// startGossipNode boots one gossip-enabled cluster node on a
// pre-bound listener. urls is the bootstrap membership (also the
// gossip seed list); mut customizes the server Config.
func startGossipNode(t *testing.T, self string, urls []string, ln net.Listener,
	opts cluster.GossipOptions, mut func(cfg *Config)) *clusterNode {
	t.Helper()
	cl, err := cluster.New(self, urls, cluster.Options{
		FailureThreshold: 2,
		Cooldown:         250 * time.Millisecond,
		RPCTimeout:       5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl.EnableGossip(opts)
	cfg := Config{
		Workers:            2,
		QueueDepth:         64,
		Cluster:            cl,
		RemotePollInterval: 5 * time.Millisecond,
		StealInterval:      -1,
	}
	if mut != nil {
		mut(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewUnstartedServer(srv.Handler())
	ts.Listener = ln
	ts.Start()
	n := &clusterNode{srv: srv, ts: ts, url: self}
	t.Cleanup(n.kill)
	return n
}

// startGossipCluster boots n gossip-enabled nodes sharing one
// bootstrap list.
func startGossipCluster(t *testing.T, n int, mut func(i int, cfg *Config)) []*clusterNode {
	t.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		i := i
		nodes[i] = startGossipNode(t, urls[i], urls, lns[i], testGossipOptions(urls),
			func(cfg *Config) {
				if mut != nil {
					mut(i, cfg)
				}
			})
	}
	return nodes
}

// relisten rebinds a specific address, retrying briefly: the previous
// listener's close may not have fully released the port yet.
func relisten(t *testing.T, addr string) net.Listener {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err := net.Listen("tcp", addr)
		if err == nil {
			return ln
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebind %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// seedsOwnedBy hunts count distinct fake-job seeds whose keys land on
// the wanted node.
func seedsOwnedBy(t *testing.T, n *clusterNode, want string, count int) []uint64 {
	t.Helper()
	var out []uint64
	for seed := uint64(1); seed < 1<<16 && len(out) < count; seed++ {
		spec := JobSpec{Mix: []string{"spec06.libquantum"}, Controller: "no", Scale: "tiny", Seed: seed}
		p, err := n.srv.resolve(spec)
		if err != nil {
			t.Fatal(err)
		}
		if n.srv.cl.c.Owner(p.key) == want {
			out = append(out, seed)
		}
	}
	if len(out) < count {
		t.Fatalf("found only %d of %d seeds owned by %s", len(out), count, want)
	}
	return out
}

// waitMembership polls until every listed node's ring has the wanted
// size and all ring-hash fingerprints agree.
func waitMembership(t *testing.T, nodes []*clusterNode, size int, timeout time.Duration, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		agreed := true
		var hash uint64
		for i, n := range nodes {
			c := n.srv.cl.c
			if c.Size() != size {
				agreed = false
				break
			}
			if i == 0 {
				hash = c.RingHash()
			} else if c.RingHash() != hash {
				agreed = false
				break
			}
		}
		if agreed {
			return
		}
		if time.Now().After(deadline) {
			for _, n := range nodes {
				c := n.srv.cl.c
				t.Logf("node %s: size=%d hash=%d members=%v", n.url, c.Size(), c.RingHash(), c.Members())
			}
			t.Fatalf("%s: rings did not converge to size %d within %v", msg, size, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestGossipKillRejoinRepair is the gossip acceptance test, end to end
// under -race:
//
//  1. a 3-node gossip cluster computes a sweep exactly once;
//  2. one node is killed: the survivors' SWIM detectors confirm it
//     dead, both rebuild the same 2-node ring, and anti-entropy repair
//     re-homes the dead node's key range so an identical sweep against
//     a survivor completes with zero lost cells, zero double-runs, and
//     zero new simulations;
//  3. the node restarts with its original flags: it rejoins via
//     gossip alone (learning its own tombstone and refuting it with a
//     bumped incarnation), all three rings re-agree, and boot-time
//     repair restores its previously-warm entries so a key it owns is
//     an immediate local cache hit — still bit-identical to the
//     original run.
func TestGossipKillRejoinRepair(t *testing.T) {
	const perOwner = 3
	var sims [4]atomic.Int64 // a, b, c, restarted b
	total := func() int64 {
		var n int64
		for i := range sims {
			n += sims[i].Load()
		}
		return n
	}

	lns := make([]net.Listener, 3)
	urls := make([]string, 3)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]*clusterNode, 3)
	for i := range nodes {
		i := i
		nodes[i] = startGossipNode(t, urls[i], urls, lns[i], testGossipOptions(urls),
			func(cfg *Config) {
				cfg.Run = pureRun(&sims[i], 0)
				cfg.RemotePeerSlots = 2 * 3 * perOwner // eager remote dispatch
			})
	}
	a, b, c := nodes[0], nodes[1], nodes[2]

	// Build the sweep from seeds with known owners so node B is
	// guaranteed a share of the key range.
	var specs []JobSpec
	for _, n := range nodes {
		for _, seed := range seedsOwnedBy(t, a, n.url, perOwner) {
			specs = append(specs, JobSpec{Mix: []string{"spec06.libquantum"}, Controller: "no", Scale: "tiny", Seed: seed})
		}
	}
	cells := len(specs)
	keyOf := make(map[uint64]string, cells) // seed -> cache key
	for _, spec := range specs {
		p, err := a.srv.resolve(spec)
		if err != nil {
			t.Fatal(err)
		}
		keyOf[spec.Seed] = p.key
	}
	sweepJSON := func(name string) string {
		body, _ := json.Marshal(struct {
			Name  string    `json:"name"`
			Cells []JobSpec `json:"cells"`
		}{Name: name, Cells: specs})
		return string(body)
	}

	// Phase 1: cold sweep, every cell exactly once across the cluster.
	resp, view := postSweep(t, a.ts, sweepJSON("gossip-cold"))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("cold sweep: HTTP %d", resp.StatusCode)
	}
	if done := waitSweepDone(t, a.ts, view.ID, 60*time.Second); done.Failed != 0 {
		t.Fatalf("cold sweep failed %d cells", done.Failed)
	}
	if got := total(); got != int64(cells) {
		t.Fatalf("cold sweep ran %d simulations, want exactly %d", got, cells)
	}
	// Golden results: keyed by seed, normalized for bit-identity.
	golden := make(map[uint64]string, cells)
	for _, spec := range specs {
		res, ok := a.srv.cache.get(keyOf[spec.Seed])
		if !ok {
			t.Fatalf("cold sweep receiver missing result for seed %d", spec.Seed)
		}
		raw, _ := json.Marshal(res)
		golden[spec.Seed] = normalizeResult(t, raw)
	}

	// Phase 2: kill B. The survivors must agree on a B-less ring.
	b.kill()
	survivors := []*clusterNode{a, c}
	waitMembership(t, survivors, 2, 10*time.Second, "after kill")
	for _, n := range survivors {
		if n.srv.cl.c.Contains(b.url) {
			t.Fatalf("survivor %s still has dead node %s in its ring", n.url, b.url)
		}
		if _, _, confirms := n.srv.cl.c.GossipCounts(); confirms == 0 {
			t.Errorf("survivor %s confirmed no peer dead", n.url)
		}
	}

	// Anti-entropy repair re-homes B's key range: wait until every key
	// is cached on its new owner.
	repairDeadline := time.Now().Add(10 * time.Second)
	for {
		missing := 0
		for _, spec := range specs {
			key := keyOf[spec.Seed]
			owner := a.srv.cl.c.Owner(key)
			for _, n := range survivors {
				if n.url == owner {
					if _, ok := n.srv.cache.get(key); !ok {
						missing++
					}
				}
			}
		}
		if missing == 0 {
			break
		}
		if time.Now().After(repairDeadline) {
			t.Fatalf("%d keys never repaired onto their new owners", missing)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Warm resubmission against the other survivor: zero lost, zero
	// double-run, zero new simulations.
	resp2, view2 := postSweep(t, c.ts, sweepJSON("gossip-warm"))
	if resp2.StatusCode != http.StatusCreated {
		t.Fatalf("warm sweep: HTTP %d", resp2.StatusCode)
	}
	warm := waitSweepDone(t, c.ts, view2.ID, 60*time.Second)
	if warm.Failed != 0 || warm.Done+warm.Deduped != cells {
		t.Fatalf("warm sweep: done=%d deduped=%d failed=%d, want %d total / 0 failed",
			warm.Done, warm.Deduped, warm.Failed, cells)
	}
	if got := total(); got != int64(cells) {
		t.Errorf("warm sweep after node death ran %d extra simulations, want 0", got-int64(cells))
	}
	events, _ := readSweepEvents(t, c.ts, view2.ID, "")
	seen := make(map[int]int)
	for _, ev := range events {
		seen[ev.Cell]++
	}
	if len(seen) != cells {
		t.Errorf("warm sweep events cover %d cells, want %d", len(seen), cells)
	}
	for cell, n := range seen {
		if n != 1 {
			t.Errorf("warm sweep cell %d has %d terminal events, want exactly 1", cell, n)
		}
	}

	// Phase 3: restart B on the same address with the same bootstrap
	// flags. It must rejoin through gossip alone.
	addr := strings.TrimPrefix(b.url, "http://")
	b2 := startGossipNode(t, b.url, urls, relisten(t, addr), testGossipOptions(urls),
		func(cfg *Config) {
			cfg.Run = pureRun(&sims[3], 0)
			cfg.RemotePeerSlots = 2 * 3 * perOwner
		})
	all := []*clusterNode{a, b2, c}
	waitMembership(t, all, 3, 10*time.Second, "after rejoin")
	if inc := b2.srv.cl.c.SelfIncarnation(); inc == 0 {
		t.Error("rejoined node did not bump its incarnation (no refutation happened)")
	}

	// Boot-time repair restores B's previously-warm share of the cache.
	bKeys := 0
	bootDeadline := time.Now().Add(10 * time.Second)
	for {
		missing := 0
		bKeys = 0
		for _, spec := range specs {
			key := keyOf[spec.Seed]
			if b2.srv.cl.c.Owner(key) != b.url {
				continue
			}
			bKeys++
			if _, ok := b2.srv.cache.get(key); !ok {
				missing++
			}
		}
		if bKeys > 0 && missing == 0 {
			break
		}
		if time.Now().After(bootDeadline) {
			t.Fatalf("rejoined node still missing %d of its %d owned keys", missing, bKeys)
		}
		time.Sleep(5 * time.Millisecond)
	}
	_, bcl := clusterStats(t, b2)
	if bcl.RepairPulled == 0 {
		t.Error("rejoined node recorded no repair pulls")
	}
	if bcl.SelfIncarnation == 0 || !bcl.GossipEnabled {
		t.Errorf("rejoined node stats: gossip_enabled=%v self_incarnation=%d",
			bcl.GossipEnabled, bcl.SelfIncarnation)
	}

	// A previously-warm, B-owned spec is an immediate cache hit on the
	// rejoined node — and bit-identical to the original run.
	var warmSpec JobSpec
	for _, spec := range specs {
		if b2.srv.cl.c.Owner(keyOf[spec.Seed]) == b.url {
			warmSpec = spec
			break
		}
	}
	body, _ := json.Marshal(warmSpec)
	req, _ := http.NewRequest(http.MethodPost, b2.ts.URL+"/v1/jobs", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(cluster.HeaderForwarded, "1") // handle locally: the hit must come from B's own cache
	hresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("warm submit on rejoined node: HTTP %d, want 200 (cache hit)", hresp.StatusCode)
	}
	var hview JobView
	if err := json.NewDecoder(hresp.Body).Decode(&hview); err != nil {
		t.Fatal(err)
	}
	if !hview.Cached {
		t.Error("warm submit on rejoined node was not served from cache")
	}
	if sims[3].Load() != 0 {
		t.Errorf("rejoined node ran %d simulations, want 0 (repair made it warm)", sims[3].Load())
	}
	for _, spec := range specs {
		key := keyOf[spec.Seed]
		if b2.srv.cl.c.Owner(key) != b.url {
			continue
		}
		res, ok := b2.srv.cache.get(key)
		if !ok {
			t.Fatalf("repaired key for seed %d vanished", spec.Seed)
		}
		raw, _ := json.Marshal(res)
		if got := normalizeResult(t, raw); got != golden[spec.Seed] {
			t.Errorf("repaired result for seed %d differs from original:\noriginal: %s\nrepaired: %s",
				spec.Seed, golden[spec.Seed], got)
		}
	}
}

// TestStealBackoffSchedule pins the thief's poll cadence: base interval
// after success, doubling per consecutive miss up to the cap, always
// inside the ±25% jitter window, and never below 1ms.
func TestStealBackoffSchedule(t *testing.T) {
	const base = 80 * time.Millisecond
	nodes := startCluster(t, 2, func(i int, cfg *Config) {
		cfg.StealInterval = base
	})
	cs := nodes[0].srv.cl

	cases := []struct {
		misses int
		mult   int64
	}{
		{0, 1}, {1, 2}, {2, 4}, {3, 8}, {4, 16},
		{5, 32}, {6, 32}, {10, 32}, {100, 32}, // capped at stealBackoffCap
	}
	for _, tc := range cases {
		lo := time.Duration(float64(base) * float64(tc.mult) * 0.75)
		hi := time.Duration(float64(base) * float64(tc.mult) * 1.25)
		for i := 0; i < 64; i++ {
			d := cs.stealDelay(tc.misses)
			if d < lo || d >= hi {
				t.Fatalf("stealDelay(%d) = %v, want in [%v, %v)", tc.misses, d, lo, hi)
			}
		}
	}

	// The jitter must actually vary, or a fleet of thieves stays in
	// lockstep.
	distinct := make(map[time.Duration]bool)
	for i := 0; i < 64; i++ {
		distinct[cs.stealDelay(0)] = true
	}
	if len(distinct) < 2 {
		t.Error("stealDelay returned a constant; jitter is not applied")
	}
}

// TestPrefetchSkipsOpenBreaker: sweep-admission batch prefetch must
// not send cache lookups to a peer whose breaker is open, and must
// resume once the cooldown admits a probe.
func TestPrefetchSkipsOpenBreaker(t *testing.T) {
	var sims [2]atomic.Int64
	nodes := startCluster(t, 2, func(i int, cfg *Config) {
		cfg.Run = pureRun(&sims[i], 0)
	})
	a, b := nodes[0], nodes[1]

	spec := specOwnedBy(t, a, b.url)
	sp := sweep.Spec{Name: "prefetch-breaker", Cells: []sweep.Cell{{
		Mix: spec.Mix, Controller: spec.Controller, Scale: spec.Scale, Seed: spec.Seed,
	}}}

	// Trip B's breaker (threshold 2 in startCluster).
	a.srv.cl.c.ReportFailure(b.url)
	a.srv.cl.c.ReportFailure(b.url)
	if a.srv.cl.c.Healthy(b.url) {
		t.Fatal("breaker did not open")
	}
	a.srv.cl.prefetchSweep(context.Background(), sp)
	if _, acl := clusterStats(t, a); acl.RemoteCacheHits != 0 || acl.RemoteCacheMisses != 0 {
		t.Fatalf("prefetch reached a breaker-open peer: hits=%d misses=%d",
			acl.RemoteCacheHits, acl.RemoteCacheMisses)
	}

	// After the cooldown the half-open breaker admits the lookup; B is
	// cold, so the probe lands as a recorded miss and (being an HTTP
	// answer) closes the breaker.
	time.Sleep(300 * time.Millisecond)
	a.srv.cl.prefetchSweep(context.Background(), sp)
	if _, acl := clusterStats(t, a); acl.RemoteCacheMisses == 0 {
		t.Error("prefetch after cooldown never reached the peer")
	}
	if !a.srv.cl.c.Healthy(b.url) {
		t.Error("successful lookup did not close the breaker")
	}
}

// TestGossipFlapChaos runs a cluster whose gossip ping handlers answer
// 503 (a flapping peer, injected): every probe fails, so suspicion
// churns constantly — but refutations ride the unaffected sync path,
// so nobody is ever confirmed dead, the ring stays full, and a sweep
// still completes every cell exactly once.
func TestGossipFlapChaos(t *testing.T) {
	enableFault(t, "cluster/gossip/flap", "always")
	const cells = 4
	var sims [3]atomic.Int64
	lns := make([]net.Listener, 3)
	urls := make([]string, 3)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	opts := cluster.GossipOptions{
		Interval:       10 * time.Millisecond,
		SuspectTimeout: 30 * time.Second, // refutes must always win under -race load
		SyncInterval:   20 * time.Millisecond,
		Seeds:          urls,
	}
	nodes := make([]*clusterNode, 3)
	for i := range nodes {
		i := i
		nodes[i] = startGossipNode(t, urls[i], urls, lns[i], opts, func(cfg *Config) {
			cfg.Run = pureRun(&sims[i], 0)
		})
	}

	// Suspicion and refutation counters must both move: probes fail,
	// the suspects hear about it over sync and refute.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var suspects, refutes uint64
		for _, n := range nodes {
			s, r, _ := n.srv.cl.c.GossipCounts()
			suspects += s
			refutes += r
		}
		if suspects > 0 && refutes > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("flapping cluster never churned: suspects=%d refutes=%d", suspects, refutes)
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, n := range nodes {
		if n.srv.cl.c.Size() != 3 {
			t.Errorf("node %s ring shrank to %d under flapping probes", n.url, n.srv.cl.c.Size())
		}
	}

	// Service is unimpaired: a sweep completes, every cell exactly once.
	resp, view := postSweep(t, nodes[0].ts, sweepGridJSON("flap", cells))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("sweep under flap: HTTP %d", resp.StatusCode)
	}
	done := waitSweepDone(t, nodes[0].ts, view.ID, 30*time.Second)
	if done.Failed != 0 || done.Done+done.Deduped != cells {
		t.Fatalf("sweep under flap: done=%d deduped=%d failed=%d", done.Done, done.Deduped, done.Failed)
	}
	var total int64
	for i := range sims {
		total += sims[i].Load()
	}
	if total != cells {
		t.Errorf("sweep under flap ran %d simulations, want exactly %d", total, cells)
	}
}

// TestGossipPartitionChaos cuts every outbound gossip path: with no
// probes, relays, or syncs leaving any node, each one suspects and
// then confirms the whole peer set dead, degrading to a singleton ring
// — and keeps serving local work.
func TestGossipPartitionChaos(t *testing.T) {
	enableFault(t, "cluster/gossip/partition", "always")
	var sims [3]atomic.Int64
	lns := make([]net.Listener, 3)
	urls := make([]string, 3)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	opts := cluster.GossipOptions{
		Interval:       10 * time.Millisecond,
		SuspectTimeout: 100 * time.Millisecond,
		SyncInterval:   30 * time.Millisecond,
		Seeds:          urls,
	}
	nodes := make([]*clusterNode, 3)
	for i := range nodes {
		i := i
		nodes[i] = startGossipNode(t, urls[i], urls, lns[i], opts, func(cfg *Config) {
			cfg.Run = pureRun(&sims[i], 0)
		})
	}

	deadline := time.Now().Add(15 * time.Second)
	for {
		singletons := 0
		for _, n := range nodes {
			if n.srv.cl.c.Size() == 1 {
				singletons++
			}
		}
		if singletons == len(nodes) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("only %d of %d nodes degraded to singleton rings", singletons, len(nodes))
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, n := range nodes {
		if _, _, confirms := n.srv.cl.c.GossipCounts(); confirms < 2 {
			t.Errorf("node %s confirmed %d peers dead, want 2", n.url, confirms)
		}
	}

	// A singleton node owns every key: submissions complete locally.
	resp, view := postJob(t, nodes[0].ts, fakeSpec(7))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit under gossip partition: HTTP %d", resp.StatusCode)
	}
	if body := waitDone(t, nodes[0].ts, view.ID, 10*time.Second); body.Status != StatusDone {
		t.Fatalf("job under gossip partition finished as %q: %s", body.Status, body.Error)
	}
	if sims[0].Load() != 1 {
		t.Errorf("receiving node ran %d simulations, want 1 (local compute)", sims[0].Load())
	}
}

package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// countingRun returns a fake runFunc and a pointer to its call count.
func countingRun() (runFunc, *atomic.Int64) {
	var calls atomic.Int64
	return func(ctx context.Context, spec JobSpec) (JobResult, error) {
		calls.Add(1)
		return JobResult{Mix: "fake", WS: 2.5}, nil
	}, &calls
}

// runOneJob submits spec and waits for completion, returning the job ID.
func runOneJob(t *testing.T, ts *httptest.Server, spec string) string {
	t.Helper()
	resp, view := postJob(t, ts, spec)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	body := waitDone(t, ts, view.ID, 10*time.Second)
	if body.Status != StatusDone {
		t.Fatalf("job finished as %q (%s)", body.Status, body.Error)
	}
	return view.ID
}

// TestPersistRoundTrip is the restart-recovers-cache contract: run a
// job with -cache-dir, shut down (flushing write-behind), start a new
// server on the same dir, and the identical spec must be served as a
// cache hit without re-simulation.
func TestPersistRoundTrip(t *testing.T) {
	dir := t.TempDir()
	run1, calls1 := countingRun()
	srv1 := mustNew(t, Config{Workers: 1, QueueDepth: 4, CacheDir: dir, Run: run1})
	ts1 := httptest.NewServer(srv1.Handler())
	id := runOneJob(t, ts1, fakeSpec(1))
	ts1.Close()
	srv1.Close() // drain + flush

	if calls1.Load() != 1 {
		t.Fatalf("first server ran %d simulations, want 1", calls1.Load())
	}
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("persisted files = %v (err %v), want exactly one entry", files, err)
	}

	// "Restart": a fresh server over the same dir must not re-simulate.
	run2, calls2 := countingRun()
	srv2 := mustNew(t, Config{Workers: 1, QueueDepth: 4, CacheDir: dir, Run: run2})
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	resp, view := postJob(t, ts2, fakeSpec(1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-restart submit: HTTP %d, want 200 (cache hit)", resp.StatusCode)
	}
	if view.ID != id {
		t.Fatalf("post-restart job ID %s, want %s (content-addressed)", view.ID, id)
	}
	if !view.Cached {
		t.Error("post-restart view not flagged cached")
	}
	code, body := getResult(t, ts2, view.ID)
	if code != http.StatusOK || body.Result == nil || body.Result.WS != 2.5 {
		t.Fatalf("restored result wrong: HTTP %d %+v", code, body.Result)
	}
	if calls2.Load() != 0 {
		t.Errorf("second server ran %d simulations, want 0", calls2.Load())
	}
	st := getStats(t, ts2)
	if st.CacheLoaded != 1 || st.CacheQuarantined != 0 || st.CacheHits != 1 {
		t.Errorf("stats loaded/quarantined/hits = %d/%d/%d, want 1/0/1",
			st.CacheLoaded, st.CacheQuarantined, st.CacheHits)
	}
}

// TestPersistQuarantine starts a server over a cache dir holding one
// valid entry and three damaged ones; the damaged files must be
// renamed aside and counted while the valid entry still loads.
func TestPersistQuarantine(t *testing.T) {
	dir := t.TempDir()

	// Produce one valid entry the honest way.
	run1, _ := countingRun()
	srv1 := mustNew(t, Config{Workers: 1, QueueDepth: 4, CacheDir: dir, Run: run1})
	ts1 := httptest.NewServer(srv1.Handler())
	runOneJob(t, ts1, fakeSpec(1))
	ts1.Close()
	srv1.Close()

	// Damage: truncated JSON, non-JSON garbage, and a syntactically
	// valid entry whose key does not match its file name.
	writeFile := func(name, content string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	valid, _ := json.Marshal(persistEntry{Key: "someotherkey", Result: JobResult{WS: 9}})
	writeFile("aaaa.json", `{"key":"aaaa","result":{"ws"`) // truncated (torn write)
	writeFile("bbbb.json", "not json at all")
	writeFile("cccc.json", string(valid)) // key/file mismatch

	run2, calls2 := countingRun()
	srv2 := mustNew(t, Config{Workers: 1, QueueDepth: 4, CacheDir: dir, Run: run2})
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	st := getStats(t, ts2)
	if st.CacheLoaded != 1 || st.CacheQuarantined != 3 {
		t.Fatalf("loaded/quarantined = %d/%d, want 1/3", st.CacheLoaded, st.CacheQuarantined)
	}
	for _, name := range []string{"aaaa", "bbbb", "cccc"} {
		if _, err := os.Stat(filepath.Join(dir, name+".json.quarantine")); err != nil {
			t.Errorf("%s.json not quarantined: %v", name, err)
		}
		if _, err := os.Stat(filepath.Join(dir, name+".json")); !os.IsNotExist(err) {
			t.Errorf("%s.json still present after quarantine", name)
		}
	}
	// The valid entry still serves as a cache hit.
	resp, _ := postJob(t, ts2, fakeSpec(1))
	if resp.StatusCode != http.StatusOK || calls2.Load() != 0 {
		t.Errorf("valid entry not restored: HTTP %d, %d simulations", resp.StatusCode, calls2.Load())
	}
}

// TestPersistWriteFault injects persistent write failures and checks
// they are counted and contained: serving is unaffected and nothing is
// written.
func TestPersistWriteFault(t *testing.T) {
	enableFault(t, "server/cache/persist-write", "always")
	dir := t.TempDir()
	run, _ := countingRun()
	srv := mustNew(t, Config{Workers: 1, QueueDepth: 4, CacheDir: dir, Run: run})
	ts := httptest.NewServer(srv.Handler())
	runOneJob(t, ts, fakeSpec(1))

	// In-memory cache still works while persistence fails.
	resp, _ := postJob(t, ts, fakeSpec(1))
	if resp.StatusCode != http.StatusOK {
		t.Errorf("in-memory cache hit: HTTP %d, want 200", resp.StatusCode)
	}
	if v := scrapeMetric(t, ts, "mama_server_cache_persist_errors_total"); v < 1 {
		t.Errorf("persist errors = %v, want >= 1", v)
	}
	ts.Close()
	srv.Close()
	if files, _ := filepath.Glob(filepath.Join(dir, "*.json")); len(files) != 0 {
		t.Errorf("files written despite injected failures: %v", files)
	}
}

// TestPersistReadFault injects read failures at load time: entries are
// quarantined exactly like corrupt files and startup proceeds.
func TestPersistReadFault(t *testing.T) {
	dir := t.TempDir()
	run1, _ := countingRun()
	srv1 := mustNew(t, Config{Workers: 1, QueueDepth: 4, CacheDir: dir, Run: run1})
	ts1 := httptest.NewServer(srv1.Handler())
	runOneJob(t, ts1, fakeSpec(1))
	ts1.Close()
	srv1.Close()

	enableFault(t, "server/cache/persist-read", "always")
	run2, calls2 := countingRun()
	srv2 := mustNew(t, Config{Workers: 1, QueueDepth: 4, CacheDir: dir, Run: run2})
	defer srv2.Close()
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()

	st := getStats(t, ts2)
	if st.CacheLoaded != 0 || st.CacheQuarantined != 1 {
		t.Fatalf("loaded/quarantined = %d/%d, want 0/1", st.CacheLoaded, st.CacheQuarantined)
	}
	// The entry is gone, so the spec re-simulates — availability over
	// completeness.
	runOneJob(t, ts2, fakeSpec(1))
	if calls2.Load() != 1 {
		t.Errorf("re-simulations = %d, want 1", calls2.Load())
	}
}

// TestCorruptFileNamesAreSafe ensures quarantine file naming cannot
// escape the cache dir (a *.json file with path separators cannot exist
// as a single directory entry, but keys inside entries are attacker
// influenced — they only ever feed comparisons, never paths).
func TestCorruptFileNamesAreSafe(t *testing.T) {
	dir := t.TempDir()
	evil, _ := json.Marshal(persistEntry{Key: "../../escape", Result: JobResult{}})
	if err := os.WriteFile(filepath.Join(dir, "dddd.json"), evil, 0o644); err != nil {
		t.Fatal(err)
	}
	run, _ := countingRun()
	srv := mustNew(t, Config{Workers: 1, QueueDepth: 4, CacheDir: dir, Run: run})
	defer srv.Close()
	// The mismatched key is quarantined in place; nothing outside dir.
	if _, err := os.Stat(filepath.Join(dir, "dddd.json.quarantine")); err != nil {
		t.Errorf("evil-key entry not quarantined: %v", err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Ignore the server's own subdirectories (sweeps/); the assertion is
	// about files: nothing but the quarantined entry may survive.
	var files []string
	for _, de := range entries {
		if !de.IsDir() {
			files = append(files, de.Name())
		}
	}
	if len(files) != 1 || !strings.HasSuffix(files[0], ".quarantine") {
		t.Errorf("cache dir files = %v, want just the quarantined file", files)
	}
}

package server

import (
	"micromama/internal/telemetry"
)

// serverMetrics is every instrument mamaserved exports under
// mama_server_*. Each Server owns a private registry (so tests and
// embedders get isolated counters); the /metrics endpoint serves it
// together with the process-wide default registry (sim, trace pool,
// experiment caches).
type serverMetrics struct {
	// Admission.
	jobsSubmitted *telemetry.Counter // accepted POSTs (incl. cache/dedup hits)
	jobsRejected  *telemetry.Counter // 429s from queue overflow
	cacheHits     *telemetry.Counter // submissions served by the result cache
	cacheMisses   *telemetry.Counter // submissions that enqueued a new simulation
	dedupHits     *telemetry.Counter // submissions coalesced onto an in-flight job

	// Execution.
	jobsCompleted *telemetry.Counter
	jobsFailed    *telemetry.Counter // all failures, incl. timeouts/cancels
	jobsTimeout   *telemetry.Counter // failures from the per-job deadline
	jobsCancelled *telemetry.Counter // failures from server shutdown
	jobPanics     *telemetry.Counter // recovered panics inside job runs
	simulations   *telemetry.Counter // RunMix executions actually performed
	workersBusy   *telemetry.Gauge

	// Drain. Submissions refused with 503 while the server drains.
	rejectedDraining *telemetry.Counter

	// Persistence (the -cache-dir write-behind mirror).
	persistWrites      *telemetry.Counter // entries durably written
	persistErrors      *telemetry.Counter // failed write attempts
	persistDropped     *telemetry.Counter // write-behind queue overflows
	persistLoaded      *telemetry.Counter // entries restored at startup
	persistQuarantined *telemetry.Counter // corrupt entries renamed aside

	// Latency. Wait = enqueue → worker pickup; run = pickup → finish.
	waitSeconds *telemetry.Histogram
	runSeconds  *telemetry.Histogram
}

// newServerMetrics registers the instrument set on r and wires the
// sampled gauges to live server state.
func newServerMetrics(r *telemetry.Registry, s *Server) *serverMetrics {
	m := &serverMetrics{
		jobsSubmitted: r.Counter("mama_server_jobs_submitted_total",
			"Job submissions accepted (including cache and dedup hits)."),
		jobsRejected: r.Counter("mama_server_jobs_rejected_total",
			"Job submissions rejected with 429 because the queue was full."),
		cacheHits: r.Counter("mama_server_result_cache_hits_total",
			"Submissions served directly from the content-addressed result cache."),
		cacheMisses: r.Counter("mama_server_result_cache_misses_total",
			"Submissions that missed the result cache and enqueued a simulation."),
		dedupHits: r.Counter("mama_server_dedup_hits_total",
			"Submissions coalesced onto an identical queued or running job."),
		jobsCompleted: r.Counter("mama_server_jobs_completed_total",
			"Jobs that finished successfully."),
		jobsFailed: r.Counter("mama_server_jobs_failed_total",
			"Jobs that finished with an error (including timeouts and cancellations)."),
		jobsTimeout: r.Counter("mama_server_jobs_timeout_total",
			"Jobs that failed by exceeding their per-job deadline."),
		jobsCancelled: r.Counter("mama_server_jobs_cancelled_total",
			"Jobs aborted by server shutdown."),
		jobPanics: r.Counter("mama_server_job_panics_total",
			"Panics recovered inside job runs (the worker survived)."),
		rejectedDraining: r.Counter("mama_server_jobs_rejected_draining_total",
			"Job submissions refused with 503 because the server was draining."),
		persistWrites: r.Counter("mama_server_cache_persist_writes_total",
			"Result-cache entries durably written to the cache dir."),
		persistErrors: r.Counter("mama_server_cache_persist_errors_total",
			"Result-cache persistence writes that failed."),
		persistDropped: r.Counter("mama_server_cache_persist_dropped_total",
			"Write-behind entries dropped because the persist queue was full."),
		persistLoaded: r.Counter("mama_server_cache_persist_loaded_total",
			"Result-cache entries restored from the cache dir at startup."),
		persistQuarantined: r.Counter("mama_server_cache_persist_quarantined_total",
			"Corrupt or unreadable cache files quarantined at startup."),
		simulations: r.Counter("mama_server_simulations_total",
			"RunMix simulations actually executed (cache misses that ran)."),
		workersBusy: r.Gauge("mama_server_workers_busy",
			"Workers currently executing a job."),
		waitSeconds: r.Histogram("mama_server_job_wait_seconds",
			"Queue wait per job: enqueue to worker pickup.", telemetry.DurationBuckets),
		runSeconds: r.Histogram("mama_server_job_run_seconds",
			"Execution time per job: worker pickup to finish.", telemetry.DurationBuckets),
	}
	r.GaugeFunc("mama_server_queue_depth",
		"Jobs waiting in the admission queue.",
		func() float64 { return float64(s.q.depth()) })
	r.GaugeFunc("mama_server_queue_capacity",
		"Admission queue capacity (submissions beyond it get 429).",
		func() float64 { return float64(s.q.cap()) })
	r.GaugeFunc("mama_server_workers",
		"Size of the worker pool.",
		func() float64 { return float64(s.cfg.Workers) })
	r.GaugeFunc("mama_server_result_cache_entries",
		"Distinct results in the content-addressed cache.",
		func() float64 { return float64(s.cache.size()) })
	r.GaugeFunc("mama_server_jobs_tracked",
		"Jobs held in the registry (any status).",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.jobs))
		})
	r.GaugeFunc("mama_server_draining",
		"1 while the server is draining (refusing new submissions), else 0.",
		func() float64 {
			if s.isDraining() {
				return 1
			}
			return 0
		})
	return m
}

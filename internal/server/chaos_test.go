package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"micromama/internal/faultinject"
)

// enableFault arms a fault-injection site for one test.
func enableFault(t *testing.T, site, rule string) {
	t.Helper()
	restore, err := faultinject.Enable(site, rule)
	if err != nil {
		t.Fatalf("enable fault %s=%s: %v", site, rule, err)
	}
	t.Cleanup(restore)
}

// TestFaultSiteCoverage pins the injection surface: every failure mode
// the chaos suite exercises must stay registered under its exact name,
// so a refactor cannot silently drop coverage.
func TestFaultSiteCoverage(t *testing.T) {
	want := []string{
		"server/worker/panic",
		"server/worker/slow",
		"server/http/submit-500",
		"server/cache/persist-write",
		"server/cache/persist-read",
		"server/sweep/persist-write",
		"server/sweep/persist-read",
		"server/sweep/worker-kill",
		"cluster/rpc/partition",
		"cluster/peer/down",
		"cluster/gossip/probe-drop",
		"cluster/gossip/partition",
		"cluster/gossip/flap",
	}
	registered := make(map[string]bool)
	for _, name := range faultinject.Sites() {
		registered[name] = true
	}
	for _, name := range want {
		if !registered[name] {
			t.Errorf("fault site %q is not registered", name)
		}
	}
}

// TestWorkerPanicRecovery forces a panic mid-run and checks the triad
// from the acceptance criteria: the job reports failed with the panic
// message, mama_server_job_panics_total increments, and the server
// keeps serving (the next job on the same worker completes).
func TestWorkerPanicRecovery(t *testing.T) {
	enableFault(t, "server/worker/panic", "once")
	srv := mustNew(t, Config{Workers: 1, QueueDepth: 4,
		Run: func(ctx context.Context, spec JobSpec) (JobResult, error) {
			return JobResult{Mix: "fake", WS: 1}, nil
		}})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, view := postJob(t, ts, fakeSpec(1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	body := waitDone(t, ts, view.ID, 10*time.Second)
	if body.Status != StatusFailed {
		t.Fatalf("panicked job finished as %q, want failed", body.Status)
	}
	if !strings.Contains(body.Error, "panicked") || !strings.Contains(body.Error, "server/worker/panic") {
		t.Errorf("error %q does not carry the panic message", body.Error)
	}
	if v := scrapeMetric(t, ts, "mama_server_job_panics_total"); v != 1 {
		t.Errorf("mama_server_job_panics_total = %v, want 1", v)
	}

	// The worker survived: the next job completes normally.
	resp2, view2 := postJob(t, ts, fakeSpec(2))
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("post-panic submit: HTTP %d", resp2.StatusCode)
	}
	body2 := waitDone(t, ts, view2.ID, 10*time.Second)
	if body2.Status != StatusDone {
		t.Fatalf("post-panic job finished as %q, want done", body2.Status)
	}
	if st := getStats(t, ts); st.Panics != 1 || st.Completed != 1 || st.Failed != 1 {
		t.Errorf("stats = panics %d completed %d failed %d, want 1/1/1",
			st.Panics, st.Completed, st.Failed)
	}
}

// TestPanicStorm drives every other job into a panic while the pool
// serves a batch, then checks the books balance: every job reaches a
// terminal state, failures equal recovered panics, and the pool still
// completes a healthy job afterwards.
func TestPanicStorm(t *testing.T) {
	enableFault(t, "server/worker/panic", "every:2")
	srv := mustNew(t, Config{Workers: 4, QueueDepth: 32,
		Run: func(ctx context.Context, spec JobSpec) (JobResult, error) {
			return JobResult{Mix: "fake", WS: 1}, nil
		}})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const jobs = 12
	ids := make([]string, 0, jobs)
	for i := 0; i < jobs; i++ {
		resp, view := postJob(t, ts, fakeSpec(100+i))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d", i, resp.StatusCode)
		}
		ids = append(ids, view.ID)
	}
	var done, failed int
	for _, id := range ids {
		switch body := waitDone(t, ts, id, 10*time.Second); body.Status {
		case StatusDone:
			done++
		case StatusFailed:
			failed++
			if !strings.Contains(body.Error, "panicked") {
				t.Errorf("job %s failed with %q, want a panic failure", id, body.Error)
			}
		}
	}
	st := getStats(t, ts)
	if done+failed != jobs {
		t.Fatalf("accounted %d of %d jobs", done+failed, jobs)
	}
	if st.Panics == 0 || st.Panics != uint64(failed) {
		t.Errorf("panics = %d, failed = %d; every failure must be a recovered panic", st.Panics, failed)
	}

	// All four workers are still alive and serving.
	if _, err := faultinject.Enable("server/worker/panic", "off"); err != nil {
		t.Fatal(err)
	}
	resp, view := postJob(t, ts, fakeSpec(999))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-storm submit: HTTP %d", resp.StatusCode)
	}
	if body := waitDone(t, ts, view.ID, 10*time.Second); body.Status != StatusDone {
		t.Fatalf("post-storm job finished as %q", body.Status)
	}
}

// TestDrainUnderLoad runs the graceful-shutdown contract end to end:
// Shutdown under load finishes every admitted job exactly once, refuses
// new submissions with 503 + Retry-After while draining, keeps liveness
// green the whole time, and returns nil within the drain deadline.
func TestDrainUnderLoad(t *testing.T) {
	const jobs = 4
	release := make(chan struct{})
	var mu sync.Mutex
	runs := make(map[uint64]int) // seed -> executions
	srv := mustNew(t, Config{Workers: 2, QueueDepth: 8,
		Run: func(ctx context.Context, spec JobSpec) (JobResult, error) {
			mu.Lock()
			runs[spec.Seed]++
			mu.Unlock()
			select {
			case <-release:
				return JobResult{Mix: "fake", WS: 1}, nil
			case <-ctx.Done():
				return JobResult{}, ctx.Err()
			}
		}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ids := make([]string, 0, jobs)
	for i := 1; i <= jobs; i++ {
		resp, view := postJob(t, ts, fakeSpec(i))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d", i, resp.StatusCode)
		}
		ids = append(ids, view.ID)
	}

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()

	// Wait until the drain has visibly begun.
	deadline := time.Now().Add(5 * time.Second)
	for !srv.isDraining() {
		if time.Now().After(deadline) {
			t.Fatal("server never entered draining state")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// New submissions are refused with 503 + Retry-After...
	resp, _ := postJob(t, ts, fakeSpec(1000))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining: HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining 503 missing Retry-After")
	}
	// ...readiness flips to 503, liveness stays 200, results stay
	// readable.
	if code := getCode(t, ts, "/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz while draining = %d, want 503", code)
	}
	if code := getCode(t, ts, "/healthz"); code != http.StatusOK {
		t.Errorf("/healthz while draining = %d, want 200", code)
	}
	if st := getStats(t, ts); !st.Draining {
		t.Error("stats.draining = false during drain")
	}

	// Unblock the simulated work; the drain must now complete cleanly.
	close(release)
	select {
	case err := <-shutdownErr:
		if err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown did not return after jobs were released")
	}

	// Every admitted job finished exactly once — none lost, none
	// double-run.
	for i, id := range ids {
		code, body := getResult(t, ts, id)
		if code != http.StatusOK || body.Status != StatusDone {
			t.Errorf("job %s (seed %d): HTTP %d status %q, want done", id, i+1, code, body.Status)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(runs) != jobs {
		t.Errorf("%d distinct jobs executed, want %d", len(runs), jobs)
	}
	for seed, n := range runs {
		if n != 1 {
			t.Errorf("seed %d ran %d times, want exactly once", seed, n)
		}
	}
}

// TestShutdownDeadline checks the other half of the drain contract: a
// job that outlives the drain deadline is cancelled, counted, and
// Shutdown returns the context error instead of hanging.
func TestShutdownDeadline(t *testing.T) {
	srv := mustNew(t, Config{Workers: 1, QueueDepth: 2,
		Run: func(ctx context.Context, spec JobSpec) (JobResult, error) {
			<-ctx.Done() // never finishes voluntarily
			return JobResult{}, ctx.Err()
		}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, view := postJob(t, ts, fakeSpec(1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want DeadlineExceeded", err)
	}
	code, body := getResult(t, ts, view.ID)
	if code != http.StatusOK || body.Status != StatusFailed {
		t.Fatalf("job after forced drain: HTTP %d status %q, want failed", code, body.Status)
	}
	if st := getStats(t, ts); st.Failed != 1 {
		t.Errorf("failed = %d, want 1", st.Failed)
	}
	// Shutdown and Close are both safe to call again.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Errorf("second Shutdown: %v", err)
	}
	srv.Close()
}

// TestReadyzSaturation checks readiness flips when the queue reaches
// the saturation threshold and recovers when it drains.
func TestReadyzSaturation(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	srv := mustNew(t, Config{Workers: 1, QueueDepth: 2, ReadyThreshold: 1,
		Run: func(ctx context.Context, spec JobSpec) (JobResult, error) {
			started <- struct{}{}
			select {
			case <-release:
				return JobResult{Mix: "fake", WS: 1}, nil
			case <-ctx.Done():
				return JobResult{}, ctx.Err()
			}
		}})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if code := getCode(t, ts, "/readyz"); code != http.StatusOK {
		t.Fatalf("/readyz on idle server = %d, want 200", code)
	}

	// Occupy the worker, then park one job in the queue: depth reaches
	// the threshold (1) and readiness must flip.
	postJob(t, ts, fakeSpec(1))
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never started")
	}
	postJob(t, ts, fakeSpec(2))
	if code := getCode(t, ts, "/readyz"); code != http.StatusServiceUnavailable {
		t.Errorf("/readyz with saturated queue = %d, want 503", code)
	}

	close(release)
	deadline := time.Now().Add(5 * time.Second)
	for getCode(t, ts, "/readyz") != http.StatusOK {
		if time.Now().After(deadline) {
			t.Fatal("/readyz never recovered after the queue drained")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestSubmit500Fault checks the transient-5xx injection point: one
// injected failure, then the identical resubmission succeeds (the
// idempotency that makes client retries safe).
func TestSubmit500Fault(t *testing.T) {
	enableFault(t, "server/http/submit-500", "once")
	srv := mustNew(t, Config{Workers: 1, QueueDepth: 4,
		Run: func(ctx context.Context, spec JobSpec) (JobResult, error) {
			return JobResult{Mix: "fake", WS: 1}, nil
		}})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, _ := postJob(t, ts, fakeSpec(1))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("first submit: HTTP %d, want injected 500", resp.StatusCode)
	}
	resp2, view := postJob(t, ts, fakeSpec(1))
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("retry submit: HTTP %d, want 202", resp2.StatusCode)
	}
	if body := waitDone(t, ts, view.ID, 10*time.Second); body.Status != StatusDone {
		t.Fatalf("retried job finished as %q", body.Status)
	}
}

// TestSlowJobFault checks the latency injection point stretches a run
// without otherwise changing its outcome.
func TestSlowJobFault(t *testing.T) {
	enableFault(t, "server/worker/slow", "always")
	srv := mustNew(t, Config{Workers: 1, QueueDepth: 4,
		Run: func(ctx context.Context, spec JobSpec) (JobResult, error) {
			return JobResult{Mix: "fake", WS: 1}, nil
		}})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	start := time.Now()
	_, view := postJob(t, ts, fakeSpec(1))
	body := waitDone(t, ts, view.ID, 10*time.Second)
	if body.Status != StatusDone {
		t.Fatalf("slow job finished as %q", body.Status)
	}
	if elapsed := time.Since(start); elapsed < faultSlowDelay {
		t.Errorf("job finished in %v, want at least the injected %v", elapsed, faultSlowDelay)
	}
}

// TestRetryAfterFromTelemetry checks the 429 Retry-After header is a
// sane integer derived from observed queue waits.
func TestRetryAfterFromTelemetry(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 1)
	srv := mustNew(t, Config{Workers: 1, QueueDepth: 1,
		Run: func(ctx context.Context, spec JobSpec) (JobResult, error) {
			started <- struct{}{}
			select {
			case <-release:
				return JobResult{Mix: "fake", WS: 1}, nil
			case <-ctx.Done():
				return JobResult{}, ctx.Err()
			}
		}})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// With no wait samples the estimate must fall back to 1s.
	if got := srv.retryAfterSeconds(); got != 1 {
		t.Errorf("retryAfterSeconds with no samples = %d, want 1", got)
	}

	postJob(t, ts, fakeSpec(1))
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never started")
	}
	postJob(t, ts, fakeSpec(2)) // fills the queue (also seeds wait telemetry when picked up)
	resp, _ := postJob(t, ts, fakeSpec(3))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("HTTP %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	var sec int
	if _, err := fmt.Sscanf(ra, "%d", &sec); err != nil || sec < 1 || sec > 60 {
		t.Errorf("Retry-After = %q, want an integer in [1,60]", ra)
	}
	close(release)
}

// getCode GETs a path and returns only the status code.
func getCode(t *testing.T, ts *httptest.Server, path string) int {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	resp.Body.Close()
	return resp.StatusCode
}

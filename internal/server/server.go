package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"micromama/internal/cluster"
	"micromama/internal/dram"
	"micromama/internal/experiment"
	"micromama/internal/faultinject"
	"micromama/internal/sim"
	"micromama/internal/sweep"
	"micromama/internal/telemetry"
	"micromama/internal/trace"
	"micromama/internal/workload"
)

// faultSubmit500 injects a transient 500 into POST /v1/jobs before any
// state changes, exercising client retry paths (safe to retry: the
// submission is idempotent via content-addressed dedup).
var faultSubmit500 = faultinject.New("server/http/submit-500")

// errInternal marks failures that are the server's fault, not the
// client's; handlers map it to HTTP 500 instead of 400.
var errInternal = errors.New("internal error")

// Config tunes the service. Zero values select production defaults.
type Config struct {
	// Workers sizes the worker pool; 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds the number of queued (not yet running) jobs;
	// submissions beyond it are rejected with 429. 0 means 4×Workers.
	QueueDepth int
	// DefaultTimeout bounds jobs that do not set timeout_ms (default 5m).
	DefaultTimeout time.Duration
	// MaxTimeout clamps client-requested timeouts (default 30m).
	MaxTimeout time.Duration
	// MaxCores bounds the mix size a job may request (default 16).
	MaxCores int
	// CacheDir, when non-empty, mirrors the result cache to disk:
	// completed results are written behind (atomic tmp+rename) and
	// restored on startup, so a restart serves previously simulated
	// specs as cache hits. Corrupt entries are quarantined, not fatal.
	CacheDir string
	// ReadyThreshold is the queue depth at or above which /readyz
	// reports not-ready (load shedding hint for balancers); 0 means the
	// queue capacity.
	ReadyThreshold int
	// Logger receives structured job-lifecycle logs with per-job request
	// IDs (see internal/telemetry field conventions). nil discards them;
	// cmd/mamaserved always sets one.
	Logger *slog.Logger
	// MaxSweepCells bounds a single sweep's expansion (default 4096).
	MaxSweepCells int
	// SimParallelism is the per-simulation goroutine budget handed to
	// the simulator (sim.Config.Parallelism) for every job: 0 runs each
	// simulation serially (the default — a loaded server already keeps
	// Workers simulations in flight), a negative value auto-divides:
	// GOMAXPROCS / Workers, floored, serial when that leaves fewer than
	// 2. Results are bit-identical regardless, so this only trades
	// single-job latency against cross-job throughput; the resolved
	// value is reported in /v1/stats as sim_parallelism.
	SimParallelism int
	// Run overrides the execution function (tests only); nil runs real
	// simulations through a shared experiment.Runner per scale.
	Run runFunc

	// Cluster, when non-nil, makes this server one node of a sharded
	// cluster: requests route to key owners over the consistent-hash
	// ring, sweep admission prefetches remote-owned results, and idle
	// nodes steal queued cells from deep-queued peers. See cluster.go.
	Cluster *cluster.Cluster
	// StealInterval is how often an idle node polls peers for stealable
	// cells (default 250ms; negative disables stealing).
	StealInterval time.Duration
	// StealLease bounds how long a stolen cell may stay unreported
	// before the victim re-queues it (default DefaultTimeout + 30s).
	StealLease time.Duration
	// StealMinPending is how many pending cells a node keeps for its own
	// pool before handing work to thieves (default Workers; negative
	// means hand out everything that is queued).
	StealMinPending int
	// RemoteSlots bounds concurrent remote cell executions — cells being
	// computed on their owning peers while local workers do other work
	// (default 4 × Workers).
	RemoteSlots int
	// RemotePeerSlots bounds in-flight remote executions per owning
	// peer (default Workers). Keeping it near the peers' own pool width
	// is deliberate late binding: cells beyond it stay in this node's
	// queue where a local worker or an idle thief can still claim them,
	// instead of serializing in one busy owner's queue.
	RemotePeerSlots int
	// RemotePollInterval is the result-poll cadence for remote cell
	// execution (default 100ms; tests shrink it).
	RemotePollInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 5 * time.Minute
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Minute
	}
	if c.MaxCores <= 0 {
		c.MaxCores = 16
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.SimParallelism < 0 {
		// Auto: split host cores between pool workers and per-sim
		// goroutines so a loaded server does not oversubscribe
		// GOMAXPROCS; with a full-width pool this resolves to serial.
		c.SimParallelism = runtime.GOMAXPROCS(0) / c.Workers
		if c.SimParallelism < 2 {
			c.SimParallelism = 0
		}
	}
	if c.SimParallelism == 1 {
		// One goroutine per simulation is the serial path plus engine
		// overhead; never hand that to the simulator. (The simulator
		// also refuses it — and any width on a GOMAXPROCS=1 host — in
		// sim.System.ParallelWorkers; this keeps /v1/stats honest.)
		c.SimParallelism = 0
	}
	return c
}

// Server is the mamaserved service: admission (queue), execution
// (pool), and memoization (cache) behind an HTTP/JSON API.
type Server struct {
	cfg   Config
	q     *queue
	cache *resultCache
	pool  *pool
	log   *slog.Logger

	// reg is this server's private metric registry; metrics is the
	// instrument set registered on it. /metrics serves reg followed by
	// the process-wide default registry.
	reg     *telemetry.Registry
	metrics *serverMetrics

	mu   sync.Mutex
	jobs map[string]*job // job ID -> job (registry; IDs are content-derived)

	runnersMu sync.Mutex
	runners   map[experiment.Scale]*experiment.Runner

	// persist mirrors the result cache to disk; nil without CacheDir.
	persist *persister

	// sweeps orchestrates multi-cell experiment sweeps over the same
	// worker pool (see internal/sweep); always non-nil.
	sweeps *sweep.Manager

	// cl is the cluster runtime (routing, distributed cache, stealing);
	// nil when this server runs standalone. See cluster.go.
	cl *clusterState

	// draining is set (under mu) when shutdown begins: submissions are
	// refused with 503 and /readyz reports not-ready. drainOnce closes
	// the queue exactly once; the mu ordering guarantees no tryPush can
	// race the close.
	draining  atomic.Bool
	drainOnce sync.Once

	baseCtx context.Context
	cancel  context.CancelFunc
}

// New builds and starts a Server (its worker pool runs until Close or
// Shutdown). The only error path is an unusable CacheDir.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		q:       newQueue(cfg.QueueDepth),
		cache:   newResultCache(),
		log:     cfg.Logger,
		reg:     telemetry.NewRegistry(),
		jobs:    make(map[string]*job),
		runners: make(map[experiment.Scale]*experiment.Runner),
		baseCtx: ctx,
		cancel:  cancel,
	}
	s.metrics = newServerMetrics(s.reg, s)
	if cfg.CacheDir != "" {
		p, err := newPersister(cfg.CacheDir, s.metrics, s.log)
		if err != nil {
			cancel()
			return nil, err
		}
		p.loadInto(s.cache)
		p.start()
		s.persist = p
	}
	// The sweep manager loads after the result cache (its resume pass
	// reconciles persisted cell statuses against restored results) and
	// before the pool starts (workers pull cells from it immediately).
	sweepDir := ""
	if cfg.CacheDir != "" {
		sweepDir = filepath.Join(cfg.CacheDir, "sweeps")
	}
	mgr, err := sweep.New(sweep.Config{
		Exec:     sweepExec{s},
		MaxCells: cfg.MaxSweepCells,
		Dir:      sweepDir,
		Registry: s.reg,
		Logger:   s.log,
	})
	if err != nil {
		cancel()
		return nil, err
	}
	s.sweeps = mgr
	// Touch the shared trace pool so its mama_trace_pool_* series are
	// registered on the default registry (and thus visible on /metrics)
	// before the first job materializes a trace.
	trace.DefaultPool()
	run := cfg.Run
	if run == nil {
		run = s.simulate
	}
	if cfg.Cluster != nil {
		s.cl = newClusterState(s)
	}
	s.pool = &pool{
		run: run, baseCtx: ctx, onFinish: s.finishJob, m: s.metrics, log: s.log,
		mgr: mgr, cellJob: s.cellJob, cellDone: s.cellDone, remote: s.cl,
	}
	s.pool.start(cfg.Workers, s.q)
	if s.cl != nil {
		s.cl.start()
	}
	return s, nil
}

// Registry exposes the server's private metric registry (tests and
// embedders; the HTTP surface is GET /metrics).
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// isDraining reports whether shutdown has begun.
func (s *Server) isDraining() bool { return s.draining.Load() }

// beginDrain flips the server into draining mode exactly once: new
// submissions get 503, /readyz reports not-ready, and the queue is
// closed so workers exit after finishing what is already admitted. The
// draining flag is set under mu — the same lock submit holds around
// tryPush — so no push can race the channel close.
func (s *Server) beginDrain() {
	s.drainOnce.Do(func() {
		s.mu.Lock()
		s.draining.Store(true)
		s.mu.Unlock()
		s.q.close()
		// Sweep dispatch stops with the queue: workers finish what they
		// hold (cancelled cells revert to pending and re-run after
		// restart) and result streams hand clients their resume cursor.
		s.sweeps.Drain()
		s.log.Info("drain started", "queued", s.q.depth())
	})
}

// Shutdown gracefully drains the server: intake stops immediately
// (submissions are refused with 503 + Retry-After), admitted jobs run
// to completion, and the result cache is flushed to disk. If ctx
// expires first, in-flight jobs are cancelled (they fail with
// context.Canceled and are counted as cancelled) and Shutdown returns
// ctx.Err() after the workers exit. Safe to call concurrently with
// Close and more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.beginDrain()
	done := make(chan struct{})
	go func() {
		s.pool.wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.log.Warn("drain deadline reached; cancelling in-flight jobs")
		s.cancel()
		<-done
	}
	s.cancel()
	if s.cl != nil {
		// Cluster background goroutines (stealer, lease janitor,
		// write-backs) exit on the cancelled base context; remote cell
		// executions already drained with the pool.
		s.cl.wait()
	}
	if s.persist != nil {
		s.persist.close()
	}
	// The sweep store closes only after the workers are gone, so the
	// final CellDone mutations (including transient reverts to pending)
	// reach disk and the next process resumes from exact state.
	s.sweeps.CloseStore()
	s.log.Info("drain complete", "err", err)
	return err
}

// Close stops admission, cancels in-flight jobs immediately, waits for
// workers, and flushes the persistent cache. It is Shutdown with a
// zero-length drain deadline.
func (s *Server) Close() {
	s.beginDrain()
	s.cancel()
	s.pool.wait()
	if s.cl != nil {
		s.cl.wait()
	}
	if s.persist != nil {
		s.persist.close()
	}
	s.sweeps.CloseStore()
}

// plan is a fully resolved job: the canonical config, scale, and mix
// the hash and the simulation both derive from.
type plan struct {
	spec  JobSpec
	mix   workload.Mix
	cfg   sim.Config
	scale experiment.Scale
	key   string
	id    string
}

// resolve validates a spec and computes its canonical plan.
func (s *Server) resolve(spec JobSpec) (plan, error) {
	spec.normalize()
	if err := spec.validate(s.cfg.MaxCores); err != nil {
		return plan{}, err
	}
	scale, _ := scaleByName(spec.Scale)
	if spec.Target > 0 {
		scale.Target = spec.Target
	}
	if spec.Step > 0 {
		scale.Step = spec.Step
	}
	specs := make([]workload.Spec, len(spec.Mix))
	for i, name := range spec.Mix {
		ws, err := workload.ByName(name)
		if err != nil {
			return plan{}, err
		}
		specs[i] = ws
	}
	cfg := sim.DefaultConfig(len(specs))
	if spec.DRAMMTps > 0 || spec.DRAMChannels > 0 {
		mtps := spec.DRAMMTps
		if mtps <= 0 {
			mtps = 2400
		}
		ch := spec.DRAMChannels
		if ch <= 0 {
			ch = 1
		}
		cfg.DRAM = dram.DDR4(mtps, ch)
	}
	key, err := jobKey(spec, cfg, scale)
	if err != nil {
		// The server's hashing contract is broken, not the request:
		// answer 500, never panic the process on a hostile spec.
		return plan{}, fmt.Errorf("%w: %v", errInternal, err)
	}
	return plan{
		spec:  spec,
		mix:   workload.Mix{ID: int(spec.Seed), Specs: specs},
		cfg:   cfg,
		scale: scale,
		key:   key,
		id:    jobID(key),
	}, nil
}

// runnerFor returns the shared experiment.Runner for a resolved scale.
// One runner per scale means every worker shares the same baseline-IPC
// and S^MP-profile caches (safe: the runner singleflights both).
func (s *Server) runnerFor(scale experiment.Scale) *experiment.Runner {
	s.runnersMu.Lock()
	defer s.runnersMu.Unlock()
	r, ok := s.runners[scale]
	if !ok {
		r = experiment.NewRunner(scale)
		// The pool supplies cross-job concurrency (each job is a single
		// RunMixContext on a pool worker); the resolved per-simulation
		// parallelism from the server config applies inside each job.
		r.SimParallelism = s.cfg.SimParallelism
		s.runners[scale] = r
	}
	return r
}

// simulate is the production runFunc: one RunMix under the job's
// context on the scale's shared runner.
func (s *Server) simulate(ctx context.Context, spec JobSpec) (JobResult, error) {
	p, err := s.resolve(spec)
	if err != nil {
		return JobResult{}, err
	}
	runner := s.runnerFor(p.scale)
	start := time.Now()
	s.log.Debug("simulation starting",
		"req", telemetry.RequestID(ctx), "job", p.id,
		"mix", p.mix.Name(), "ctrl", p.spec.Controller, "scale", p.spec.Scale)
	res, err := runner.RunMixContext(ctx, p.mix, p.cfg, p.spec.Controller, experiment.Options{})
	if err != nil {
		s.log.Warn("simulation failed",
			"req", telemetry.RequestID(ctx), "job", p.id,
			"ms", time.Since(start).Milliseconds(), "err", err)
		return JobResult{}, err
	}
	s.metrics.simulations.Inc()
	s.log.Debug("simulation finished",
		"req", telemetry.RequestID(ctx), "job", p.id,
		"ms", time.Since(start).Milliseconds(), "ws", res.WS)
	out := JobResult{
		Mix:        p.mix.Name(),
		Controller: res.Controller,
		WS:         res.WS,
		HS:         res.HS,
		GM:         res.GM,
		Unfairness: res.Unfairness,
		Speedups:   res.Speedups,
		Prefetches: res.Result.TotalPrefetches(),
		SimMs:      time.Since(start).Milliseconds(),
	}
	for _, cr := range res.Result.Cores {
		out.IPC = append(out.IPC, cr.IPC)
		out.L2MPKI = append(out.L2MPKI, cr.L2MPKI())
	}
	return out, nil
}

// finishJob records a worker's outcome: successful results enter the
// content-addressed cache before the job flips to done, so a cache miss
// followed by a registry hit can never observe a done job without a
// cached result.
func (s *Server) finishJob(j *job, res JobResult, err error) {
	if err == nil {
		s.cache.put(j.key, res)
		if s.persist != nil {
			s.persist.enqueue(j.key, res)
		}
		if s.cl != nil {
			// Degraded or stolen work computed off-owner: make the result
			// findable cluster-wide by pushing it to the key's owner.
			s.cl.writeBack(j.key, res)
		}
		s.metrics.jobsCompleted.Inc()
	} else {
		s.metrics.jobsFailed.Inc()
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			s.metrics.jobsTimeout.Inc()
		case errors.Is(err, context.Canceled):
			s.metrics.jobsCancelled.Inc()
		}
	}
	j.finish(res, err)
	// Resolve sweep cells parked on this key (an interactive run of the
	// same content address): success dedupes them, failure sends them
	// back to their queues for their own attempt. Keys the sweep manager
	// dispatched itself are ignored here — cellDone covers those.
	if err == nil {
		if raw, merr := json.Marshal(res); merr == nil {
			s.sweeps.OnResult(j.key, raw, "")
		}
	} else {
		s.sweeps.OnResult(j.key, nil, err.Error())
	}
}

// submit admits one job: cache hit → done immediately; identical job
// already queued or running → coalesce onto it (singleflight); queue
// full or draining → reject. Returns the job and the HTTP status to
// answer with.
func (s *Server) submit(spec JobSpec) (*job, int, error) {
	p, err := s.resolve(spec)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, errInternal) {
			status = http.StatusInternalServerError
		}
		return nil, status, err
	}
	timeout := s.cfg.DefaultTimeout
	if p.spec.TimeoutMs > 0 {
		timeout = time.Duration(p.spec.TimeoutMs) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}

	reqID := telemetry.NewRequestID(p.id)

	s.mu.Lock()
	defer s.mu.Unlock()

	// Draining: refuse before touching any state. Clients retry against
	// the replacement process (the persisted cache makes that cheap).
	if s.draining.Load() {
		s.metrics.rejectedDraining.Inc()
		s.log.Warn("job refused: draining", "req", reqID, "job", p.id)
		return nil, http.StatusServiceUnavailable,
			fmt.Errorf("server is draining; retry against a healthy instance")
	}

	// Content-addressed fast path: an identical job already finished.
	if res, ok := s.cache.get(p.key); ok {
		j, ok := s.jobs[p.id]
		if !ok || j.currentStatus() != StatusDone {
			j = doneJob(p.id, p.key, p.spec, res)
			s.jobs[p.id] = j
		}
		s.metrics.cacheHits.Inc()
		s.metrics.jobsSubmitted.Inc()
		s.log.Info("job submitted", "req", reqID, "job", j.id, "outcome", "cache_hit",
			"mix", j.spec.Mix, "ctrl", j.spec.Controller)
		return j, http.StatusOK, nil
	}

	// Singleflight: an identical job is queued or running — share it.
	if j, ok := s.jobs[p.id]; ok {
		switch j.currentStatus() {
		case StatusQueued, StatusRunning:
			s.metrics.dedupHits.Inc()
			s.metrics.jobsSubmitted.Inc()
			s.log.Info("job submitted", "req", reqID, "job", j.id, "outcome", "dedup",
				"mix", j.spec.Mix, "ctrl", j.spec.Controller)
			return j, http.StatusAccepted, nil
		case StatusDone:
			// Completed between the cache check and here, or a stale
			// pre-cache entry; serve it as a cache hit.
			s.metrics.cacheHits.Inc()
			s.metrics.jobsSubmitted.Inc()
			s.log.Info("job submitted", "req", reqID, "job", j.id, "outcome", "cache_hit",
				"mix", j.spec.Mix, "ctrl", j.spec.Controller)
			return j, http.StatusOK, nil
		case StatusFailed:
			// Fall through: a failed job is retried by resubmission.
		}
	}

	j := newJob(p.id, p.key, p.spec, timeout, reqID)
	if !s.q.tryPush(j) {
		s.metrics.jobsRejected.Inc()
		s.log.Warn("job rejected", "req", reqID, "job", p.id,
			"queue_depth", s.q.depth(), "queue_cap", s.q.cap())
		return nil, http.StatusTooManyRequests,
			fmt.Errorf("queue full (%d jobs waiting); retry later", s.q.depth())
	}
	s.jobs[p.id] = j
	s.metrics.cacheMisses.Inc()
	s.metrics.jobsSubmitted.Inc()
	s.log.Info("job submitted", "req", reqID, "job", j.id, "outcome", "queued",
		"mix", j.spec.Mix, "ctrl", j.spec.Controller, "queue_depth", s.q.depth())
	return j, http.StatusAccepted, nil
}

// jobByID returns the registry entry for a job ID.
func (s *Server) jobByID(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Stats snapshots the service counters (the JSON sibling of /metrics;
// both read the same instruments).
func (s *Server) Stats() Stats {
	s.mu.Lock()
	tracked := len(s.jobs)
	s.mu.Unlock()
	m := s.metrics
	var cl *ClusterStats
	if s.cl != nil {
		cl = s.cl.stats()
	}
	return Stats{
		Cluster:          cl,
		Submitted:        m.jobsSubmitted.Value(),
		Completed:        m.jobsCompleted.Value(),
		Failed:           m.jobsFailed.Value(),
		Panics:           m.jobPanics.Value(),
		Rejected:         m.jobsRejected.Value(),
		CacheHits:        m.cacheHits.Value(),
		DedupHits:        m.dedupHits.Value(),
		Simulations:      m.simulations.Value(),
		QueueDepth:       s.q.depth(),
		QueueCap:         s.q.cap(),
		Workers:          s.cfg.Workers,
		SimParallelism:   s.cfg.SimParallelism,
		CachedKeys:       s.cache.size(),
		JobsTracked:      tracked,
		Draining:         s.isDraining(),
		CacheLoaded:      m.persistLoaded.Value(),
		CacheQuarantined: m.persistQuarantined.Value(),
		Sweeps:           s.sweeps.Counts(),
	}
}

// Handler returns the service's HTTP API, including the standard
// net/http/pprof endpoints under /debug/pprof/ for live profiling of
// the worker pool (CPU profile, heap, goroutines, execution trace).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("POST /v1/sweeps", s.handleSweepSubmit)
	mux.HandleFunc("GET /v1/sweeps", s.handleSweepList)
	mux.HandleFunc("GET /v1/sweeps/{id}", s.handleSweepGet)
	mux.HandleFunc("GET /v1/sweeps/{id}/results", s.handleSweepResults)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/catalog", s.handleCatalog)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	// Prometheus text-format exposition: this server's registry followed
	// by the process-wide one (sim progress, trace pool, experiment
	// caches).
	if s.cl != nil {
		s.cl.registerHandlers(mux)
	}
	mux.Handle("GET /metrics", telemetry.Handler(s.reg, telemetry.Default()))
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	if s.cl != nil && s.cl.c.GossipEnabled() {
		return s.cl.gossipExchange(mux)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

// retryAfterSeconds estimates how long a rejected client should back
// off before resubmitting, derived from live queue-wait telemetry: the
// mean observed wait (enqueue → worker pickup) scaled by how full the
// queue currently is. No samples yet → 1s. Clamped to [1, 60] so the
// header is always a sane integer.
func (s *Server) retryAfterSeconds() int {
	h := s.metrics.waitSeconds
	n := h.Count()
	if n == 0 {
		return 1
	}
	mean := h.Sum() / float64(n)
	est := mean
	if c := s.q.cap(); c > 0 {
		est = mean * float64(s.q.depth()) / float64(c)
	}
	sec := int(math.Ceil(est))
	if sec < 1 {
		sec = 1
	}
	if sec > 60 {
		sec = 60
	}
	return sec
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if faultSubmit500.Fire() {
		writeJSON(w, http.StatusInternalServerError,
			errorBody{Error: "injected fault: server/http/submit-500"})
		return
	}
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad job spec: " + err.Error()})
		return
	}
	// Clustered and not already routed once: hand the job to its owning
	// peer, whose cache and singleflight see every copy of this key.
	// Falls through to the local path when we own the key or the owner
	// is unreachable (degrade to local compute, never to an error).
	if s.cl != nil && r.Header.Get(cluster.HeaderForwarded) == "" && !s.isDraining() {
		if s.cl.proxySubmit(w, r, spec) {
			return
		}
	}
	j, status, err := s.submit(spec)
	if err != nil {
		switch status {
		case http.StatusTooManyRequests:
			w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		case http.StatusServiceUnavailable:
			// Draining: this process will not take the job; the retry
			// interval only needs to outlive a restart or failover.
			w.Header().Set("Retry-After", "5")
		}
		writeJSON(w, status, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, status, j.view())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.jobByID(id)
	if !ok {
		// Unknown here but maybe tracked by its owner: the job ID embeds
		// the routing prefix, so any node can locate it.
		if s.cl != nil && r.Header.Get(cluster.HeaderForwarded) == "" &&
			s.cl.proxyLookup(w, r, id, "/v1/jobs/"+id) {
			return
		}
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

// resultBody is the /result payload: the job view plus, when done, the
// metrics. Clients poll until status leaves queued/running (HTTP 202),
// then read either result (done, 200) or error (failed, 200).
type resultBody struct {
	JobView
	Result *JobResult `json:"result,omitempty"`
}

// maxResultWait caps the ?wait= long-poll on GET /v1/jobs/{id}/result.
const maxResultWait = 30 * time.Second

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	j, ok := s.jobByID(id)
	if !ok {
		if s.cl != nil && r.Header.Get(cluster.HeaderForwarded) == "" &&
			s.cl.proxyLookup(w, r, id, "/v1/jobs/"+id+"/result") {
			return
		}
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	// ?wait=<duration> long-polls: block until the job reaches a terminal
	// status or the wait elapses, then answer normally. Pollers (remote
	// cell executors, impatient clients) get an immediate completion
	// signal instead of a timer-driven 202 loop. The wait is capped so a
	// stuck job cannot pin handler goroutines indefinitely.
	if ws := r.URL.Query().Get("wait"); ws != "" {
		wait, err := time.ParseDuration(ws)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad wait duration: " + ws})
			return
		}
		if wait > maxResultWait {
			wait = maxResultWait
		}
		if wait > 0 {
			timer := time.NewTimer(wait)
			select {
			case <-j.done:
			case <-timer.C:
			case <-r.Context().Done():
			case <-s.baseCtx.Done():
			}
			timer.Stop()
		}
	}
	body := resultBody{JobView: j.view()}
	status := http.StatusOK
	switch body.Status {
	case StatusQueued, StatusRunning:
		status = http.StatusAccepted
	case StatusDone:
		if res, ok := j.resultSnapshot(); ok {
			body.Result = &res
		}
	}
	writeJSON(w, status, body)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// catalogEntry is one /v1/catalog row.
type catalogEntry struct {
	Name      string `json:"name"`
	Class     string `json:"class"`
	Sensitive bool   `json:"sensitive"`
}

func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	specs := workload.Catalog()
	out := struct {
		Traces      []catalogEntry `json:"traces"`
		Controllers []string       `json:"controllers"`
		// ControllerInfo carries per-controller parallel-path
		// eligibility (core_local); Controllers stays for older
		// clients that expect a bare name list.
		ControllerInfo []experiment.ControllerInfo `json:"controller_info"`
		Scales         []string                    `json:"scales"`
	}{
		Controllers:    experiment.ControllerKeys,
		ControllerInfo: experiment.ControllerCatalog(),
		Scales:         []string{"tiny", "small", "default", "full"},
	}
	for _, sp := range specs {
		out.Traces = append(out.Traces, catalogEntry{
			Name: sp.Name, Class: string(sp.Class), Sensitive: sp.Sensitive,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleHealthz is pure liveness: the process is up and serving HTTP.
// It stays 200 even while draining, so orchestrators do not kill a
// process that is finishing its jobs.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: whether this instance should receive new
// traffic. Not ready while draining or while the admission queue is at
// or beyond the saturation threshold (default: its capacity) — both
// states mean a new submission would be refused anyway.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	threshold := s.cfg.ReadyThreshold
	if threshold <= 0 {
		threshold = s.q.cap()
	}
	depth := s.q.depth()
	switch {
	case s.isDraining():
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]string{"status": "draining"})
	case depth >= threshold:
		writeJSON(w, http.StatusServiceUnavailable,
			map[string]any{"status": "saturated", "queue_depth": depth, "threshold": threshold})
	default:
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	}
}

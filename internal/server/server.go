package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"time"

	"micromama/internal/dram"
	"micromama/internal/experiment"
	"micromama/internal/sim"
	"micromama/internal/telemetry"
	"micromama/internal/trace"
	"micromama/internal/workload"
)

// Config tunes the service. Zero values select production defaults.
type Config struct {
	// Workers sizes the worker pool; 0 means GOMAXPROCS.
	Workers int
	// QueueDepth bounds the number of queued (not yet running) jobs;
	// submissions beyond it are rejected with 429. 0 means 4×Workers.
	QueueDepth int
	// DefaultTimeout bounds jobs that do not set timeout_ms (default 5m).
	DefaultTimeout time.Duration
	// MaxTimeout clamps client-requested timeouts (default 30m).
	MaxTimeout time.Duration
	// MaxCores bounds the mix size a job may request (default 16).
	MaxCores int
	// Logger receives structured job-lifecycle logs with per-job request
	// IDs (see internal/telemetry field conventions). nil discards them;
	// cmd/mamaserved always sets one.
	Logger *slog.Logger
	// Run overrides the execution function (tests only); nil runs real
	// simulations through a shared experiment.Runner per scale.
	Run runFunc
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 5 * time.Minute
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 30 * time.Minute
	}
	if c.MaxCores <= 0 {
		c.MaxCores = 16
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// Server is the mamaserved service: admission (queue), execution
// (pool), and memoization (cache) behind an HTTP/JSON API.
type Server struct {
	cfg   Config
	q     *queue
	cache *resultCache
	pool  *pool
	log   *slog.Logger

	// reg is this server's private metric registry; metrics is the
	// instrument set registered on it. /metrics serves reg followed by
	// the process-wide default registry.
	reg     *telemetry.Registry
	metrics *serverMetrics

	mu   sync.Mutex
	jobs map[string]*job // job ID -> job (registry; IDs are content-derived)

	runnersMu sync.Mutex
	runners   map[experiment.Scale]*experiment.Runner

	baseCtx context.Context
	cancel  context.CancelFunc
}

// New builds and starts a Server (its worker pool runs until Close).
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:     cfg,
		q:       newQueue(cfg.QueueDepth),
		cache:   newResultCache(),
		log:     cfg.Logger,
		reg:     telemetry.NewRegistry(),
		jobs:    make(map[string]*job),
		runners: make(map[experiment.Scale]*experiment.Runner),
		baseCtx: ctx,
		cancel:  cancel,
	}
	s.metrics = newServerMetrics(s.reg, s)
	// Touch the shared trace pool so its mama_trace_pool_* series are
	// registered on the default registry (and thus visible on /metrics)
	// before the first job materializes a trace.
	trace.DefaultPool()
	run := cfg.Run
	if run == nil {
		run = s.simulate
	}
	s.pool = &pool{run: run, baseCtx: ctx, onFinish: s.finishJob, m: s.metrics, log: s.log}
	s.pool.start(cfg.Workers, s.q)
	return s
}

// Registry exposes the server's private metric registry (tests and
// embedders; the HTTP surface is GET /metrics).
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// Close stops admission, cancels in-flight jobs, and waits for workers.
func (s *Server) Close() {
	s.cancel()
	s.q.close()
	s.pool.wait()
}

// plan is a fully resolved job: the canonical config, scale, and mix
// the hash and the simulation both derive from.
type plan struct {
	spec  JobSpec
	mix   workload.Mix
	cfg   sim.Config
	scale experiment.Scale
	key   string
	id    string
}

// resolve validates a spec and computes its canonical plan.
func (s *Server) resolve(spec JobSpec) (plan, error) {
	spec.normalize()
	if err := spec.validate(s.cfg.MaxCores); err != nil {
		return plan{}, err
	}
	scale, _ := scaleByName(spec.Scale)
	if spec.Target > 0 {
		scale.Target = spec.Target
	}
	if spec.Step > 0 {
		scale.Step = spec.Step
	}
	specs := make([]workload.Spec, len(spec.Mix))
	for i, name := range spec.Mix {
		ws, err := workload.ByName(name)
		if err != nil {
			return plan{}, err
		}
		specs[i] = ws
	}
	cfg := sim.DefaultConfig(len(specs))
	if spec.DRAMMTps > 0 || spec.DRAMChannels > 0 {
		mtps := spec.DRAMMTps
		if mtps <= 0 {
			mtps = 2400
		}
		ch := spec.DRAMChannels
		if ch <= 0 {
			ch = 1
		}
		cfg.DRAM = dram.DDR4(mtps, ch)
	}
	key := jobKey(spec, cfg, scale)
	return plan{
		spec:  spec,
		mix:   workload.Mix{ID: int(spec.Seed), Specs: specs},
		cfg:   cfg,
		scale: scale,
		key:   key,
		id:    jobID(key),
	}, nil
}

// runnerFor returns the shared experiment.Runner for a resolved scale.
// One runner per scale means every worker shares the same baseline-IPC
// and S^MP-profile caches (safe: the runner singleflights both).
func (s *Server) runnerFor(scale experiment.Scale) *experiment.Runner {
	s.runnersMu.Lock()
	defer s.runnersMu.Unlock()
	r, ok := s.runners[scale]
	if !ok {
		r = experiment.NewRunner(scale)
		s.runners[scale] = r
	}
	return r
}

// simulate is the production runFunc: one RunMix under the job's
// context on the scale's shared runner.
func (s *Server) simulate(ctx context.Context, spec JobSpec) (JobResult, error) {
	p, err := s.resolve(spec)
	if err != nil {
		return JobResult{}, err
	}
	runner := s.runnerFor(p.scale)
	start := time.Now()
	s.log.Debug("simulation starting",
		"req", telemetry.RequestID(ctx), "job", p.id,
		"mix", p.mix.Name(), "ctrl", p.spec.Controller, "scale", p.spec.Scale)
	res, err := runner.RunMixContext(ctx, p.mix, p.cfg, p.spec.Controller, experiment.Options{})
	if err != nil {
		s.log.Warn("simulation failed",
			"req", telemetry.RequestID(ctx), "job", p.id,
			"ms", time.Since(start).Milliseconds(), "err", err)
		return JobResult{}, err
	}
	s.metrics.simulations.Inc()
	s.log.Debug("simulation finished",
		"req", telemetry.RequestID(ctx), "job", p.id,
		"ms", time.Since(start).Milliseconds(), "ws", res.WS)
	out := JobResult{
		Mix:        p.mix.Name(),
		Controller: res.Controller,
		WS:         res.WS,
		HS:         res.HS,
		GM:         res.GM,
		Unfairness: res.Unfairness,
		Speedups:   res.Speedups,
		Prefetches: res.Result.TotalPrefetches(),
		SimMs:      time.Since(start).Milliseconds(),
	}
	for _, cr := range res.Result.Cores {
		out.IPC = append(out.IPC, cr.IPC)
		out.L2MPKI = append(out.L2MPKI, cr.L2MPKI())
	}
	return out, nil
}

// finishJob records a worker's outcome: successful results enter the
// content-addressed cache before the job flips to done, so a cache miss
// followed by a registry hit can never observe a done job without a
// cached result.
func (s *Server) finishJob(j *job, res JobResult, err error) {
	if err == nil {
		s.cache.put(j.key, res)
		s.metrics.jobsCompleted.Inc()
	} else {
		s.metrics.jobsFailed.Inc()
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			s.metrics.jobsTimeout.Inc()
		case errors.Is(err, context.Canceled):
			s.metrics.jobsCancelled.Inc()
		}
	}
	j.finish(res, err)
}

// submit admits one job: cache hit → done immediately; identical job
// already queued or running → coalesce onto it (singleflight); queue
// full → reject. Returns the job and the HTTP status to answer with.
func (s *Server) submit(spec JobSpec) (*job, int, error) {
	p, err := s.resolve(spec)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	timeout := s.cfg.DefaultTimeout
	if p.spec.TimeoutMs > 0 {
		timeout = time.Duration(p.spec.TimeoutMs) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}

	reqID := telemetry.NewRequestID(p.id)

	s.mu.Lock()
	defer s.mu.Unlock()

	// Content-addressed fast path: an identical job already finished.
	if res, ok := s.cache.get(p.key); ok {
		j, ok := s.jobs[p.id]
		if !ok || j.currentStatus() != StatusDone {
			j = doneJob(p.id, p.key, p.spec, res)
			s.jobs[p.id] = j
		}
		s.metrics.cacheHits.Inc()
		s.metrics.jobsSubmitted.Inc()
		s.log.Info("job submitted", "req", reqID, "job", j.id, "outcome", "cache_hit",
			"mix", j.spec.Mix, "ctrl", j.spec.Controller)
		return j, http.StatusOK, nil
	}

	// Singleflight: an identical job is queued or running — share it.
	if j, ok := s.jobs[p.id]; ok {
		switch j.currentStatus() {
		case StatusQueued, StatusRunning:
			s.metrics.dedupHits.Inc()
			s.metrics.jobsSubmitted.Inc()
			s.log.Info("job submitted", "req", reqID, "job", j.id, "outcome", "dedup",
				"mix", j.spec.Mix, "ctrl", j.spec.Controller)
			return j, http.StatusAccepted, nil
		case StatusDone:
			// Completed between the cache check and here, or a stale
			// pre-cache entry; serve it as a cache hit.
			s.metrics.cacheHits.Inc()
			s.metrics.jobsSubmitted.Inc()
			s.log.Info("job submitted", "req", reqID, "job", j.id, "outcome", "cache_hit",
				"mix", j.spec.Mix, "ctrl", j.spec.Controller)
			return j, http.StatusOK, nil
		case StatusFailed:
			// Fall through: a failed job is retried by resubmission.
		}
	}

	j := newJob(p.id, p.key, p.spec, timeout, reqID)
	if !s.q.tryPush(j) {
		s.metrics.jobsRejected.Inc()
		s.log.Warn("job rejected", "req", reqID, "job", p.id,
			"queue_depth", s.q.depth(), "queue_cap", s.q.cap())
		return nil, http.StatusTooManyRequests,
			fmt.Errorf("queue full (%d jobs waiting); retry later", s.q.depth())
	}
	s.jobs[p.id] = j
	s.metrics.cacheMisses.Inc()
	s.metrics.jobsSubmitted.Inc()
	s.log.Info("job submitted", "req", reqID, "job", j.id, "outcome", "queued",
		"mix", j.spec.Mix, "ctrl", j.spec.Controller, "queue_depth", s.q.depth())
	return j, http.StatusAccepted, nil
}

// jobByID returns the registry entry for a job ID.
func (s *Server) jobByID(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Stats snapshots the service counters (the JSON sibling of /metrics;
// both read the same instruments).
func (s *Server) Stats() Stats {
	s.mu.Lock()
	tracked := len(s.jobs)
	s.mu.Unlock()
	m := s.metrics
	return Stats{
		Submitted:   m.jobsSubmitted.Value(),
		Completed:   m.jobsCompleted.Value(),
		Failed:      m.jobsFailed.Value(),
		Rejected:    m.jobsRejected.Value(),
		CacheHits:   m.cacheHits.Value(),
		DedupHits:   m.dedupHits.Value(),
		Simulations: m.simulations.Value(),
		QueueDepth:  s.q.depth(),
		QueueCap:    s.q.cap(),
		Workers:     s.cfg.Workers,
		CachedKeys:  s.cache.size(),
		JobsTracked: tracked,
	}
}

// Handler returns the service's HTTP API, including the standard
// net/http/pprof endpoints under /debug/pprof/ for live profiling of
// the worker pool (CPU profile, heap, goroutines, execution trace).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/catalog", s.handleCatalog)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	// Prometheus text-format exposition: this server's registry followed
	// by the process-wide one (sim progress, trace pool, experiment
	// caches).
	mux.Handle("GET /metrics", telemetry.Handler(s.reg, telemetry.Default()))
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad job spec: " + err.Error()})
		return
	}
	j, status, err := s.submit(spec)
	if err != nil {
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		writeJSON(w, status, errorBody{Error: err.Error()})
		return
	}
	writeJSON(w, status, j.view())
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobByID(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

// resultBody is the /result payload: the job view plus, when done, the
// metrics. Clients poll until status leaves queued/running (HTTP 202),
// then read either result (done, 200) or error (failed, 200).
type resultBody struct {
	JobView
	Result *JobResult `json:"result,omitempty"`
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobByID(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown job"})
		return
	}
	body := resultBody{JobView: j.view()}
	status := http.StatusOK
	switch body.Status {
	case StatusQueued, StatusRunning:
		status = http.StatusAccepted
	case StatusDone:
		if res, ok := j.resultSnapshot(); ok {
			body.Result = &res
		}
	}
	writeJSON(w, status, body)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// catalogEntry is one /v1/catalog row.
type catalogEntry struct {
	Name      string `json:"name"`
	Class     string `json:"class"`
	Sensitive bool   `json:"sensitive"`
}

func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	specs := workload.Catalog()
	out := struct {
		Traces      []catalogEntry `json:"traces"`
		Controllers []string       `json:"controllers"`
		Scales      []string       `json:"scales"`
	}{
		Controllers: experiment.ControllerKeys,
		Scales:      []string{"tiny", "small", "default", "full"},
	}
	for _, sp := range specs {
		out.Traces = append(out.Traces, catalogEntry{
			Name: sp.Name, Class: string(sp.Class), Sensitive: sp.Sensitive,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime/debug"
	"sync"
	"time"

	"micromama/internal/faultinject"
	"micromama/internal/sweep"
	"micromama/internal/telemetry"
)

// Fault-injection sites on the worker path (see internal/faultinject).
// faultWorkerPanic panics inside a job run to exercise panic isolation;
// faultWorkerSlow stretches a run by faultSlowDelay to exercise drain
// deadlines and queue backpressure under load.
var (
	faultWorkerPanic = faultinject.New("server/worker/panic")
	faultWorkerSlow  = faultinject.New("server/worker/slow")
)

// faultSlowDelay is how long an injected slow job stalls. A variable so
// chaos tests can tighten it.
var faultSlowDelay = 100 * time.Millisecond

// job is the server-side state of one submitted simulation. The
// lifecycle is queued → running → done|failed; transitions happen on
// exactly one worker goroutine, while any number of HTTP handlers read
// snapshots through the mutex.
type job struct {
	id      string
	key     string
	spec    JobSpec
	timeout time.Duration
	// reqID is the request ID of the submission that created the job;
	// coalesced submissions keep their own IDs in the access log but the
	// worker-side lifecycle is logged under the creator's.
	reqID string

	// done is closed when the job reaches a terminal status, letting
	// long-poll result reads block on completion instead of re-reading
	// the status on a timer.
	done chan struct{}

	mu         sync.Mutex
	status     JobStatus
	errMsg     string
	result     *JobResult
	cached     bool
	enqueuedAt time.Time
	startedAt  time.Time
	finishedAt time.Time
}

func newJob(id, key string, spec JobSpec, timeout time.Duration, reqID string) *job {
	return &job{
		id: id, key: key, spec: spec, timeout: timeout, reqID: reqID,
		status: StatusQueued, enqueuedAt: time.Now(),
		done: make(chan struct{}),
	}
}

// doneJob builds an already-completed registry entry for a cache hit.
func doneJob(id, key string, spec JobSpec, res JobResult) *job {
	now := time.Now()
	done := make(chan struct{})
	close(done)
	return &job{
		id: id, key: key, spec: spec,
		status: StatusDone, result: &res, cached: true,
		enqueuedAt: now, startedAt: now, finishedAt: now,
		done: done,
	}
}

func (j *job) currentStatus() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// markRunning flips the job to running and returns how long it waited
// in the queue.
func (j *job) markRunning() time.Duration {
	j.mu.Lock()
	j.status = StatusRunning
	j.startedAt = time.Now()
	wait := j.startedAt.Sub(j.enqueuedAt)
	j.mu.Unlock()
	return wait
}

func (j *job) finish(res JobResult, err error) {
	j.mu.Lock()
	j.finishedAt = time.Now()
	if err != nil {
		j.status = StatusFailed
		j.errMsg = err.Error()
	} else {
		j.status = StatusDone
		j.result = &res
	}
	select {
	case <-j.done:
	default:
		close(j.done)
	}
	j.mu.Unlock()
}

// view snapshots the job for the API.
func (j *job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:         j.id,
		Status:     j.status,
		Spec:       j.spec,
		Cached:     j.cached,
		Error:      j.errMsg,
		EnqueuedAt: j.enqueuedAt,
	}
	if !j.startedAt.IsZero() {
		t := j.startedAt
		v.StartedAt = &t
	}
	if !j.finishedAt.IsZero() {
		t := j.finishedAt
		v.FinishedAt = &t
	}
	return v
}

// resultSnapshot returns the result if the job completed.
func (j *job) resultSnapshot() (JobResult, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.result == nil {
		return JobResult{}, false
	}
	return *j.result, true
}

// runFunc executes one job spec under ctx. The production
// implementation is Server.simulate; tests inject fakes to make
// queueing and timeout behaviour deterministic.
type runFunc func(ctx context.Context, spec JobSpec) (JobResult, error)

// pool is the worker side of the service: n goroutines drawing work
// from two sources — the interactive job queue and the sweep manager —
// each executing one job at a time under a per-job timeout derived
// from the job spec. Cancellation reaches the simulator at epoch
// granularity through sim.System.RunContext.
//
// Scheduling between the sources is strict priority: a worker always
// takes an interactive job when one is queued, and only otherwise asks
// the sweep manager for a cell (which the manager hands out under
// weighted round-robin across sweeps). With W workers and an
// interactive arrival while all workers are busy, the job waits at
// most one cell execution — a giant sweep cannot starve POST /v1/jobs
// traffic beyond that bound.
type pool struct {
	run      runFunc
	baseCtx  context.Context
	onFinish func(*job, JobResult, error)
	m        *serverMetrics
	log      *slog.Logger
	wg       sync.WaitGroup

	// Sweep dispatch: mgr hands out cells; cellJob materializes a cell
	// into a registry-visible job; cellDone returns the outcome.
	mgr      *sweep.Manager
	cellJob  func(sweep.Ticket) *job
	cellDone func(sweep.Ticket, JobResult, error)

	// remote, when non-nil, may take a dequeued cell off this worker's
	// hands and execute it on the peer owning its key (see cluster.go);
	// the worker immediately moves on to other work.
	remote *clusterState
}

// start launches n workers. Workers exit when q is closed and drained
// (beginDrain stops sweep dispatch at the same time); pending jobs
// observe the base context's cancellation and fail fast during
// shutdown.
func (p *pool) start(n int, q *queue) {
	for i := 0; i < n; i++ {
		worker := i
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			p.drainLoop(worker, q)
		}()
	}
}

// drainLoop is one worker's life: interactive jobs first (non-blocking
// check), then a sweep cell, then block until either source produces
// work. A closed-and-drained interactive queue ends the worker — drain
// closes the queue and the sweep manager together, so no sweep work
// remains dispatchable by then.
func (p *pool) drainLoop(worker int, q *queue) {
	for {
		select {
		case j, open := <-q.jobs():
			if !open {
				return
			}
			p.execute(worker, j)
			continue
		default:
		}
		if t, ok := p.mgr.TryDequeue(); ok {
			p.executeCell(worker, t)
			continue
		}
		select {
		case j, open := <-q.jobs():
			if !open {
				return
			}
			p.execute(worker, j)
		case <-p.mgr.WakeCh():
		}
	}
}

// executeCell runs one sweep cell through the same execution path as an
// interactive job (registry entry, panic isolation, metrics) and
// reports the outcome back to the sweep manager.
func (p *pool) executeCell(worker int, t sweep.Ticket) {
	if faultSweepWorkerKill.Fire() {
		// Simulate the worker dying mid-cell: the run never happens and
		// the outcome is lost, exactly as if the process were killed. The
		// manager treats it as transient and the cell returns to pending.
		p.log.Warn("sweep cell abandoned: injected worker death",
			"sweep", t.SweepID, "cell", t.Index, "worker", worker)
		p.cellDone(t, JobResult{}, errWorkerKilled)
		return
	}
	if p.remote != nil && p.remote.tryRemote(t) {
		return // executing on the owning peer; outcome arrives via cellDone
	}
	j := p.cellJob(t)
	res, err := p.execute(worker, j)
	p.cellDone(t, res, err)
}

func (p *pool) execute(worker int, j *job) (JobResult, error) {
	wait := j.markRunning()
	p.m.waitSeconds.Observe(wait.Seconds())
	p.m.workersBusy.Add(1)
	defer p.m.workersBusy.Add(-1)
	p.log.Info("job started", "req", j.reqID, "job", j.id, "worker", worker,
		"wait_ms", wait.Milliseconds())

	ctx, cancel := context.WithTimeout(p.baseCtx, j.timeout)
	ctx = telemetry.WithRequestID(ctx, j.reqID)
	start := time.Now()
	res, err := p.runIsolated(ctx, j)
	cancel()
	run := time.Since(start)
	p.m.runSeconds.Observe(run.Seconds())
	if err != nil && errors.Is(err, context.DeadlineExceeded) {
		err = fmt.Errorf("job exceeded its %v timeout: %w", j.timeout, err)
	}
	if err != nil {
		p.log.Warn("job failed", "req", j.reqID, "job", j.id, "worker", worker,
			"ms", run.Milliseconds(), "err", err)
	} else {
		p.log.Info("job finished", "req", j.reqID, "job", j.id, "worker", worker,
			"ms", run.Milliseconds())
	}
	p.onFinish(j, res, err)
	return res, err
}

// runIsolated executes one job with panic isolation: a panic anywhere
// in the run (simulator bug, hostile spec, injected fault) is recovered
// here, converted into a job failure carrying the panic value and
// captured stack, and counted — the worker goroutine survives and keeps
// draining the queue. Without this, one bad job kills the whole
// service.
func (p *pool) runIsolated(ctx context.Context, j *job) (res JobResult, err error) {
	defer func() {
		if r := recover(); r != nil {
			stack := debug.Stack()
			p.m.jobPanics.Inc()
			p.log.Error("job panicked; worker recovered",
				"req", j.reqID, "job", j.id, "panic", fmt.Sprint(r),
				"stack", string(stack))
			res = JobResult{}
			err = fmt.Errorf("job panicked: %v\n%s", r, firstStackLines(stack, 6))
		}
	}()
	if faultWorkerPanic.Fire() {
		panic("faultinject: server/worker/panic")
	}
	if faultWorkerSlow.Fire() {
		select {
		case <-time.After(faultSlowDelay):
		case <-ctx.Done():
		}
	}
	return p.run(ctx, j.spec)
}

// firstStackLines trims a captured stack to its first n lines, enough
// for a job's error message to locate the panic without shipping the
// whole trace to API clients (the full stack goes to the log).
func firstStackLines(stack []byte, n int) string {
	rest := stack
	for i := 0; i < n; i++ {
		nl := -1
		for k, b := range rest {
			if b == '\n' {
				nl = k
				break
			}
		}
		if nl < 0 {
			return string(stack)
		}
		rest = rest[nl+1:]
	}
	return string(stack[:len(stack)-len(rest)])
}

// wait blocks until every worker has exited.
func (p *pool) wait() { p.wg.Wait() }

package server

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"micromama/internal/faultinject"
)

// Fault-injection sites on the persistence path: write failures on the
// write-behind goroutine and read failures during load-on-start (a read
// fault is handled exactly like a corrupt file: quarantine, count,
// continue).
var (
	faultPersistWrite = faultinject.New("server/cache/persist-write")
	faultPersistRead  = faultinject.New("server/cache/persist-read")
)

// persistEntry is the on-disk form of one cached result. Key is the
// full content hash (also the file name) so a load can verify the entry
// matches its file; a mismatch means tampering or a torn write and the
// file is quarantined.
type persistEntry struct {
	Key    string    `json:"key"`
	Result JobResult `json:"result"`
}

// persister is the crash-safe disk mirror of the result cache: a
// write-behind goroutine serializes completed results into
// <dir>/<key>.json with atomic tmp+rename writes, and load-on-start
// repopulates the in-memory cache so a restart serves previously
// simulated specs as cache hits. Corrupt, truncated, or mismatched
// entries are quarantined (renamed aside, counted) rather than fatal:
// the cache is a memo, so losing an entry costs one re-simulation while
// dying on it costs the whole service.
type persister struct {
	dir  string
	ch   chan persistEntry
	done chan struct{}
	once sync.Once
	m    *serverMetrics
	log  *slog.Logger
}

const persistQueueDepth = 1024

// newPersister prepares dir and the write-behind queue (start launches
// the writer; loadInto replays existing entries).
func newPersister(dir string, m *serverMetrics, log *slog.Logger) (*persister, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache dir: %w", err)
	}
	return &persister{
		dir:  dir,
		ch:   make(chan persistEntry, persistQueueDepth),
		done: make(chan struct{}),
		m:    m,
		log:  log,
	}, nil
}

// loadInto replays every persisted entry into c, quarantining anything
// unreadable. Returns (loaded, quarantined).
func (p *persister) loadInto(c *resultCache) (int, int) {
	entries, err := os.ReadDir(p.dir)
	if err != nil {
		// The directory was just created (or is unreadable); either way
		// there is nothing to load and writes will surface real errors.
		p.log.Warn("cache dir unreadable; starting cold", "dir", p.dir, "err", err)
		return 0, 0
	}
	loaded, quarantined := 0, 0
	for _, de := range entries {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, ".json") {
			continue
		}
		path := filepath.Join(p.dir, name)
		entry, err := p.readEntry(path, strings.TrimSuffix(name, ".json"))
		if err != nil {
			p.quarantine(path, err)
			quarantined++
			continue
		}
		c.put(entry.Key, entry.Result)
		loaded++
	}
	p.m.persistLoaded.Add(uint64(loaded))
	if loaded > 0 || quarantined > 0 {
		p.log.Info("result cache restored from disk",
			"dir", p.dir, "loaded", loaded, "quarantined", quarantined)
	}
	return loaded, quarantined
}

// readEntry reads and validates one persisted result file.
func (p *persister) readEntry(path, wantKey string) (persistEntry, error) {
	if faultPersistRead.Fire() {
		return persistEntry{}, fmt.Errorf("faultinject: server/cache/persist-read")
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return persistEntry{}, err
	}
	var e persistEntry
	if err := json.Unmarshal(b, &e); err != nil {
		return persistEntry{}, fmt.Errorf("decode: %w", err)
	}
	if e.Key != wantKey {
		return persistEntry{}, fmt.Errorf("entry key %q does not match file name", e.Key)
	}
	return e, nil
}

// quarantine renames a bad entry aside (path + ".quarantine") so it is
// never retried but stays available for inspection, and counts it.
func (p *persister) quarantine(path string, cause error) {
	p.m.persistQuarantined.Inc()
	dst := path + ".quarantine"
	if err := os.Rename(path, dst); err != nil {
		p.log.Error("quarantine rename failed", "file", path, "err", err)
		return
	}
	p.log.Warn("quarantined corrupt cache entry", "file", path, "cause", cause)
}

// start launches the write-behind goroutine; it drains the queue until
// close, so close doubles as a flush barrier.
func (p *persister) start() {
	go func() {
		defer close(p.done)
		for e := range p.ch {
			p.write(e)
		}
	}()
}

// enqueue hands a completed result to the write-behind goroutine. It
// never blocks job completion: if the queue is full the entry is
// dropped (and counted) — the result stays served from memory and is
// re-persisted only if re-simulated after a restart.
func (p *persister) enqueue(key string, res JobResult) {
	select {
	case p.ch <- persistEntry{Key: key, Result: res}:
	default:
		p.m.persistDropped.Inc()
		p.log.Warn("persist queue full; dropping write-behind entry", "key", key)
	}
}

// write serializes one entry with an atomic tmp+rename so a crash
// mid-write leaves either the old file or the new one, never a torn
// entry. Failures are counted and logged, never propagated: persistence
// is best-effort by design.
func (p *persister) write(e persistEntry) {
	err := func() error {
		if faultPersistWrite.Fire() {
			return fmt.Errorf("faultinject: server/cache/persist-write")
		}
		b, err := json.Marshal(e)
		if err != nil {
			return err
		}
		final := filepath.Join(p.dir, e.Key+".json")
		tmp := final + ".tmp"
		if err := os.WriteFile(tmp, b, 0o644); err != nil {
			return err
		}
		return os.Rename(tmp, final)
	}()
	if err != nil {
		p.m.persistErrors.Inc()
		p.log.Error("cache persist write failed", "key", e.Key, "err", err)
		return
	}
	p.m.persistWrites.Inc()
}

// close flushes the write-behind queue and stops the writer. Safe to
// call more than once.
func (p *persister) close() {
	p.once.Do(func() { close(p.ch) })
	<-p.done
}

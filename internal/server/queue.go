package server

// queue is a bounded FIFO of jobs. Enqueueing never blocks: when the
// queue is full, tryPush fails and the HTTP layer answers 429 so load
// sheds at admission instead of piling up goroutines.
type queue struct {
	ch chan *job
}

func newQueue(depth int) *queue {
	if depth < 1 {
		depth = 1
	}
	return &queue{ch: make(chan *job, depth)}
}

// tryPush enqueues j, reporting false when the queue is full.
func (q *queue) tryPush(j *job) bool {
	select {
	case q.ch <- j:
		return true
	default:
		return false
	}
}

// jobs exposes the receive side for the worker pool.
func (q *queue) jobs() <-chan *job { return q.ch }

// depth returns the number of jobs currently waiting.
func (q *queue) depth() int { return len(q.ch) }

// cap returns the queue capacity.
func (q *queue) cap() int { return cap(q.ch) }

// close stops admission; workers drain what remains and exit.
func (q *queue) close() { close(q.ch) }

// Cluster integration: this file is everything mamaserved does when it
// is one node of a sharded cluster (Config.Cluster != nil).
//
// Three mechanisms, all built on the consistent-hash ring in
// internal/cluster and the content-addressed job key:
//
//   - Routing. Any node accepts any request. Interactive submissions
//     resolve the job key, look up the owning peer, and proxy there —
//     the owner's cache and singleflight see every copy of a job, so
//     the cluster computes each key at most once. Lookups by job ID
//     route the same way (the ID embeds the key's routing prefix). A
//     dead or partitioned owner degrades to local compute: slower,
//     never an error.
//
//   - Distributed result cache. The owner is the authoritative copy of
//     a key's result. Sweep admission batch-fetches remote-owned keys
//     from their owners (one RPC per peer), so a warm cluster dedupes
//     a resubmitted sweep entirely at admission, no matter which node
//     receives it. Nodes that compute a key they do not own (degraded
//     or stolen work) push the result back to the owner best-effort.
//
//   - Work stealing. An idle node polls busy peers for queued sweep
//     cells. The victim dispatches through the sweep manager's own
//     TryDequeue — which skips cached and inflight keys — so only
//     same-key-absent work can be stolen and dedupe semantics survive.
//     Stolen cells are tracked as leases on the victim; a thief that
//     dies mid-cell simply lets the lease expire and the cell returns
//     to pending. Results are bit-identical wherever they run, so a
//     late report after an expired lease is still a valid cache fill.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"time"

	"micromama/internal/cluster"
	"micromama/internal/sweep"
	"micromama/internal/telemetry"
)

// errPeerUnavailable marks a cell outcome caused by the owning peer
// being unreachable, not by the simulation: the sweep manager treats it
// as transient and the cell re-runs (locally, once the breaker opens).
var errPeerUnavailable = errors.New("cluster: owning peer unavailable")

// clusterMetrics is the mama_cluster_* instrument set. Aggregate
// counters feed /v1/stats; the per-peer series (label "peer") feed
// /metrics so an operator can see which shard is slow, dead, or being
// farmed for work.
type clusterMetrics struct {
	reg *telemetry.Registry

	proxied      *telemetry.Counter // requests forwarded to their owner
	proxyErrors  *telemetry.Counter // forwards that failed in transport
	degraded     *telemetry.Counter // owner down: computed locally instead
	remoteHits   *telemetry.Counter // results fetched from owning peers
	remoteMisses *telemetry.Counter // remote lookups that found nothing
	remoteCells  *telemetry.Counter // sweep cells executed on their owner
	cacheServed  *telemetry.Counter // cache entries served to peers
	writebacks   *telemetry.Counter // non-owned results pushed to owners
	stealsOut    *telemetry.Counter // cells this node stole from peers
	stealsIn     *telemetry.Counter // cells peers stole from this node
	stealExpired *telemetry.Counter // stolen-cell leases that expired
	repairPulled *telemetry.Counter // cache entries pulled by anti-entropy repair
	deadRequeued *telemetry.Counter // leases requeued because the thief was confirmed dead
}

func newClusterMetrics(r *telemetry.Registry) *clusterMetrics {
	return &clusterMetrics{
		reg: r,
		proxied: r.Counter("mama_cluster_proxied_total",
			"Requests forwarded to their owning peer."),
		proxyErrors: r.Counter("mama_cluster_proxy_errors_total",
			"Forwards that failed in transport (owner dead or partitioned)."),
		degraded: r.Counter("mama_cluster_degraded_local_total",
			"Requests computed locally because the owner was unreachable."),
		remoteHits: r.Counter("mama_cluster_remote_cache_hits_total",
			"Results fetched from owning peers' caches (cross-shard hits)."),
		remoteMisses: r.Counter("mama_cluster_remote_cache_misses_total",
			"Remote cache lookups that found nothing."),
		remoteCells: r.Counter("mama_cluster_remote_cells_total",
			"Sweep cells executed on their owning peer instead of locally."),
		cacheServed: r.Counter("mama_cluster_cache_served_total",
			"Cache entries this node served to peers."),
		writebacks: r.Counter("mama_cluster_writebacks_total",
			"Results computed off-owner and pushed back to the owning peer."),
		stealsOut: r.Counter("mama_cluster_steals_out_total",
			"Sweep cells this node stole from deep-queued peers."),
		stealsIn: r.Counter("mama_cluster_steals_in_total",
			"Sweep cells peers stole from this node's queue."),
		stealExpired: r.Counter("mama_cluster_steal_leases_expired_total",
			"Stolen-cell leases that expired without a report (thief died)."),
		repairPulled: r.Counter("mama_cluster_repair_pulled_total",
			"Cache entries pulled from previous owners by anti-entropy repair."),
		deadRequeued: r.Counter("mama_cluster_dead_requeued_total",
			"Stolen-cell leases requeued early because the thief was confirmed dead."),
	}
}

// registerMembership exposes the gossip layer's live membership state
// as metrics: a member-count gauge, the node-local membership version,
// and the lifetime suspicion / refutation / confirm-dead counters.
func (cm *clusterMetrics) registerMembership(c *cluster.Cluster) {
	cm.reg.GaugeFunc("mama_cluster_members",
		"Current ring membership including self.",
		func() float64 { return float64(c.Size()) })
	cm.reg.GaugeFunc("mama_cluster_membership_version",
		"Node-local membership version, bumped once per atomic ring transition.",
		func() float64 { return float64(c.MembershipVersion()) })
	cm.reg.CounterFunc("mama_cluster_suspect_total",
		"Members this node has suspected (locally or via gossip).",
		func() uint64 { s, _, _ := c.GossipCounts(); return s })
	cm.reg.CounterFunc("mama_cluster_refute_total",
		"Suspicions about this node it refuted by bumping its incarnation.",
		func() uint64 { _, r, _ := c.GossipCounts(); return r })
	cm.reg.CounterFunc("mama_cluster_confirm_dead_total",
		"Members confirmed dead (suspect timeout expired or learned via gossip).",
		func() uint64 { _, _, d := c.GossipCounts(); return d })
}

// perPeer bumps the labeled sibling of an aggregate counter. The
// registry deduplicates by (name, labels), so this is cheap after the
// first call per peer.
func (cm *clusterMetrics) perPeer(name, help, peer string) {
	cm.reg.Counter(name, help, telemetry.L("peer", peer)).Inc()
}

// leaseKey identifies one stolen cell on the victim.
type leaseKey struct {
	sweep string
	index int
}

// stolenLease is the victim-side record of a cell handed to a thief.
type stolenLease struct {
	t       sweep.Ticket
	peer    string
	expires time.Time
}

// longPollWait is how long a remote-cell result poll asks the owner to
// hold the request open (?wait=). Completions come back in one
// round-trip; only cells slower than this fall back to re-polling.
var longPollWait = 2 * time.Second

// clusterState is the per-server cluster runtime: the ring + breaker
// view, remote-execution slots, the stolen-cell lease table, and the
// background stealer/janitor goroutines.
type clusterState struct {
	s *Server
	c *cluster.Cluster
	m *clusterMetrics

	sem        chan struct{} // bounds concurrent remote cell executions
	peerSlots  int           // capacity of each per-peer semaphore
	pollEvery  time.Duration // remote job result poll interval
	stealEvery time.Duration // thief poll interval; <= 0 disables stealing
	lease      time.Duration // stolen-cell lease duration
	minPending int           // pending cells a victim keeps for itself

	mu       sync.Mutex
	peerSem  map[string]chan struct{} // per-peer in-flight bound, created on demand
	leases   map[leaseKey]*stolenLease
	stealCur int        // round-robin cursor over peers
	stealRng *rand.Rand // jitter source for steal backoff

	wg sync.WaitGroup
}

func newClusterState(s *Server) *clusterState {
	cfg := s.cfg
	slots := cfg.RemoteSlots
	if slots <= 0 {
		slots = 4 * cfg.Workers
	}
	peerSlots := cfg.RemotePeerSlots
	if peerSlots <= 0 {
		peerSlots = cfg.Workers
	}
	poll := cfg.RemotePollInterval
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	stealEvery := cfg.StealInterval
	if stealEvery == 0 {
		stealEvery = 250 * time.Millisecond
	}
	lease := cfg.StealLease
	if lease <= 0 {
		lease = cfg.DefaultTimeout + 30*time.Second
	}
	minPending := cfg.StealMinPending
	if minPending == 0 {
		minPending = cfg.Workers
	} else if minPending < 0 {
		minPending = 0 // negative: give away everything that is queued
	}
	cs := &clusterState{
		s:          s,
		c:          cfg.Cluster,
		m:          newClusterMetrics(s.reg),
		sem:        make(chan struct{}, slots),
		peerSlots:  peerSlots,
		pollEvery:  poll,
		stealEvery: stealEvery,
		lease:      lease,
		minPending: minPending,
		peerSem:    make(map[string]chan struct{}),
		leases:     make(map[leaseKey]*stolenLease),
		stealRng:   rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	if cfg.Cluster.GossipEnabled() {
		cs.m.registerMembership(cfg.Cluster)
	}
	// The ring-change hook must be in place before gossip starts (see
	// start()): a transition observed with no hook would skip repair.
	cfg.Cluster.OnChange(cs.onRingChange)
	return cs
}

// peerSlot returns (creating on demand) the in-flight bound for one
// peer. Created lazily because gossip membership means the peer set is
// not known at construction time.
func (cs *clusterState) peerSlot(peer string) chan struct{} {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	ps, ok := cs.peerSem[peer]
	if !ok {
		ps = make(chan struct{}, cs.peerSlots)
		cs.peerSem[peer] = ps
	}
	return ps
}

// start launches the background goroutines: the lease janitor and (if
// enabled) the stealer. Both exit when the server's base context is
// cancelled; wait() joins them and any in-flight remote executions.
func (cs *clusterState) start() {
	// Gossip starts here, after newClusterState registered the ring-
	// change hook, so no transition can be missed.
	cs.c.StartGossip()
	cs.wg.Add(1)
	go func() {
		defer cs.wg.Done()
		cs.janitorLoop()
	}()
	// A gossip node repairs itself once at boot: a restarted member
	// pulls back the warm entries it owns from whoever kept serving
	// while it was gone (join-only nodes with no bootstrap peers get
	// the same effect from the onRingChange hook when the synced
	// membership lands). Static-membership clusters skip this — their
	// caches never moved.
	if cs.c.GossipEnabled() && len(cs.c.Peers()) > 0 {
		cs.wg.Add(1)
		go func() {
			defer cs.wg.Done()
			cs.repairOwned()
		}()
	}
	// With gossip the peer set can grow from empty (a node started with
	// only -join seeds), so the stealer starts whenever membership can
	// change, not just when bootstrap peers exist.
	if cs.stealEvery > 0 && (len(cs.c.Peers()) > 0 || cs.c.GossipEnabled()) {
		cs.wg.Add(1)
		go func() {
			defer cs.wg.Done()
			cs.stealLoop()
		}()
	}
}

func (cs *clusterState) wait() {
	// Stop gossip first: no new ring transitions (and thus no new
	// repair goroutines on cs.wg) can start while we join.
	cs.c.StopGossip()
	cs.wg.Wait()
}

// onRingChange reacts to one atomic membership transition (fired
// synchronously by the cluster layer, possibly from a gossip loop or
// any request goroutine that merged a piggybacked delta):
//
//   - Leases held by a confirmed-dead thief are requeued immediately
//     instead of waiting out the lease clock. Deleting the lease under
//     cs.mu before emitting the transient CellDone keeps the event
//     exactly-once: the janitor and a late steal-done report both miss
//     the deleted entry.
//
//   - Anti-entropy repair runs in the background: every ring change
//     moves some key ranges onto this node, so it batch-pulls the warm
//     cache entries it now owns from the peers that held them. Results
//     are immutable and content-addressed, which makes repair safe to
//     run concurrently with anything.
func (cs *clusterState) onRingChange(ev cluster.ChangeEvent) {
	cs.s.log.Info("cluster: membership changed",
		"version", ev.Version, "members", len(ev.Members),
		"joined", ev.Joined, "dead", ev.Dead)
	if len(ev.Dead) > 0 {
		dead := make(map[string]bool, len(ev.Dead))
		for _, d := range ev.Dead {
			dead[d] = true
		}
		var requeue []*stolenLease
		cs.mu.Lock()
		for k, l := range cs.leases {
			if dead[l.peer] {
				delete(cs.leases, k)
				requeue = append(requeue, l)
			}
		}
		cs.mu.Unlock()
		for _, l := range requeue {
			cs.m.deadRequeued.Inc()
			cs.s.log.Warn("cluster: thief confirmed dead; re-queueing stolen cell",
				"sweep", l.t.SweepID, "cell", l.t.Index, "thief", l.peer)
			cs.s.sweeps.CellDone(l.t, nil, "thief confirmed dead", true)
		}
	}
	if cs.s.isDraining() || cs.s.baseCtx.Err() != nil {
		return
	}
	cs.wg.Add(1)
	go func() {
		defer cs.wg.Done()
		cs.repairOwned()
	}()
}

// cellTimeout derives a ticket's execution deadline the same way
// cellJob does.
func (cs *clusterState) cellTimeout(t sweep.Ticket) time.Duration {
	timeout := cs.s.cfg.DefaultTimeout
	if t.TimeoutMs > 0 {
		timeout = time.Duration(t.TimeoutMs) * time.Millisecond
		if timeout > cs.s.cfg.MaxTimeout {
			timeout = cs.s.cfg.MaxTimeout
		}
	}
	return timeout
}

// ---------------------------------------------------------------------
// Interactive request routing
// ---------------------------------------------------------------------

// proxySubmit routes one decoded submission to its owner. It returns
// true when it wrote the response (proxied), false when the caller
// should run the local path (we own the key, or the owner is down and
// we degrade to local compute).
func (cs *clusterState) proxySubmit(w http.ResponseWriter, r *http.Request, spec JobSpec) bool {
	p, err := cs.s.resolve(spec)
	if err != nil {
		return false // local path re-resolves and reports the error
	}
	owner := cs.c.Owner(p.key)
	if cs.c.IsSelf(owner) {
		w.Header().Set(cluster.HeaderOwner, cs.c.Self())
		return false
	}
	if !cs.c.Healthy(owner) {
		cs.degradeLocal(owner, p.id)
		return false
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return false
	}
	code, resp, err := cs.c.Do(r.Context(), owner, http.MethodPost, "/v1/jobs", body)
	if err != nil {
		cs.m.proxyErrors.Inc()
		cs.m.perPeer("mama_cluster_peer_proxy_errors_total",
			"Forwards to this peer that failed in transport.", owner)
		cs.degradeLocal(owner, p.id)
		return false
	}
	if code == http.StatusTooManyRequests || code >= http.StatusInternalServerError {
		// The owner is alive but refusing work (full queue, draining,
		// injected fault). Local compute beats bouncing the client.
		cs.degradeLocal(owner, p.id)
		return false
	}
	cs.m.proxied.Inc()
	cs.m.perPeer("mama_cluster_peer_proxied_total",
		"Requests forwarded to this peer.", owner)
	w.Header().Set(cluster.HeaderOwner, owner)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(resp)
	return true
}

func (cs *clusterState) degradeLocal(owner, jobID string) {
	cs.m.degraded.Inc()
	cs.s.log.Warn("cluster: owner unreachable; computing locally",
		"owner", owner, "job", jobID)
}

// proxyLookup routes a GET for a job this node does not track to the
// job's owner. Returns true when it wrote the response.
func (cs *clusterState) proxyLookup(w http.ResponseWriter, r *http.Request, id, path string) bool {
	owner := cs.c.OwnerOfJobID(id)
	if cs.c.IsSelf(owner) || !cs.c.Healthy(owner) {
		return false
	}
	if q := r.URL.RawQuery; q != "" {
		// Forward the query so ?wait= long-polls work through the proxy;
		// the RPC budget must outlast the longest server-side wait.
		path += "?" + q
	}
	code, resp, err := cs.c.DoTimeout(r.Context(), owner, http.MethodGet, path, nil,
		maxResultWait+10*time.Second)
	if err != nil {
		// The owner holds the job state and is unreachable: answer
		// retryable, not 404 — the job may well be running there.
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusBadGateway,
			errorBody{Error: fmt.Sprintf("job owner %s unreachable: %v", owner, err)})
		return true
	}
	cs.m.proxied.Inc()
	w.Header().Set(cluster.HeaderOwner, owner)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_, _ = w.Write(resp)
	return true
}

// ---------------------------------------------------------------------
// Distributed result cache
// ---------------------------------------------------------------------

// cacheLookupRequest/Response are the wire form of the batched
// cross-shard cache probe (POST /internal/cache/lookup).
type cacheLookupRequest struct {
	Keys []string `json:"keys"`
}

type cacheLookupResponse struct {
	Results map[string]JobResult `json:"results"`
}

// storeResult inserts a result fetched from (or reported by) a peer
// into the local cache and the write-behind mirror.
func (cs *clusterState) storeResult(key string, res JobResult) {
	cs.s.cache.put(key, res)
	if cs.s.persist != nil {
		cs.s.persist.enqueue(key, res)
	}
}

// prefetchSweep resolves a sweep spec's cells and batch-fetches every
// remote-owned key from its owner before admission, one RPC per peer.
// Hits land in the local cache, so the sweep manager's admission-time
// dedupe marks those cells complete without dispatching anything: a
// warm cluster serves a resubmitted sweep with zero recomputation no
// matter which node receives it. Failures are ignored — a missed
// prefetch only costs a recompute.
func (cs *clusterState) prefetchSweep(ctx context.Context, spec sweep.Spec) {
	sp := spec
	cells, err := sp.Expand(cs.s.cfg.MaxSweepCells)
	if err != nil {
		return // Submit will report the real error
	}
	byOwner := make(map[string][]string)
	for _, c := range cells {
		p, err := cs.s.resolve(specFromCell(c))
		if err != nil {
			continue
		}
		if _, ok := cs.s.cache.get(p.key); ok {
			continue
		}
		owner := cs.c.Owner(p.key)
		if cs.c.IsSelf(owner) {
			continue
		}
		byOwner[owner] = append(byOwner[owner], p.key)
	}
	for owner, keys := range byOwner {
		if !cs.c.Healthy(owner) {
			continue
		}
		body, err := json.Marshal(cacheLookupRequest{Keys: keys})
		if err != nil {
			continue
		}
		code, resp, err := cs.c.Do(ctx, owner, http.MethodPost, "/internal/cache/lookup", body)
		if err != nil || code != http.StatusOK {
			continue
		}
		var out cacheLookupResponse
		if err := json.Unmarshal(resp, &out); err != nil {
			continue
		}
		for key, res := range out.Results {
			cs.storeResult(key, res)
			cs.m.remoteHits.Inc()
			cs.m.perPeer("mama_cluster_peer_remote_cache_hits_total",
				"Results fetched from this peer's cache.", owner)
		}
		if miss := len(keys) - len(out.Results); miss > 0 {
			cs.m.remoteMisses.Add(uint64(miss))
		}
	}
}

// cachePullRequest asks a peer for the cache entries whose keys this
// node now owns (POST /internal/cache/pull). After is a lexicographic
// key cursor so the puller pages deterministically through the peer's
// append-only cache; the response's Next, when set, is the cursor for
// the following page.
type cachePullRequest struct {
	Owner string `json:"owner"`
	After string `json:"after,omitempty"`
	Max   int    `json:"max"`
}

type cachePullResponse struct {
	Results map[string]JobResult `json:"results"`
	Next    string               `json:"next,omitempty"`
	// Member reports whether the serving node's ring contains the
	// requester. False means the requester's (re)join has not reached
	// this peer yet — nothing can match the ownership filter, so the
	// puller should retry after the membership propagates rather than
	// conclude there is nothing to repair.
	Member bool `json:"member"`
}

// repairPageSize bounds one repair pull page.
const repairPageSize = 256

// repairOwned is the anti-entropy half of a ring transition: pull from
// every healthy peer the warm cache entries whose keys this node now
// owns. It is the ring-change analogue of the sweep-admission prefetch
// — same storeResult path, same first-write-wins cache — except the
// key set comes from the peer's cache scan instead of a sweep spec.
// Best-effort: a failed pull only costs a future recompute or remote
// fetch.
func (cs *clusterState) repairOwned() {
	for _, peer := range cs.c.Peers() {
		if cs.s.baseCtx.Err() != nil {
			return
		}
		if !cs.c.Healthy(peer) {
			continue
		}
		cs.repairFrom(peer)
	}
}

// repairFrom pages one peer's cache for the entries this node owns. A
// rejoining node races its own membership propagation: until the peer
// has resurrected us in its ring, the ownership filter matches nothing
// and the pull answers member=false — so that answer is retried (the
// gossip round-trip is a few probe intervals) instead of being read as
// "nothing to repair".
func (cs *clusterState) repairFrom(peer string) {
	const (
		notMemberRetries = 40
		notMemberWait    = 250 * time.Millisecond
	)
	for attempt := 0; attempt < notMemberRetries; attempt++ {
		after := ""
		for {
			if cs.s.baseCtx.Err() != nil || cs.s.isDraining() {
				return
			}
			body, err := json.Marshal(cachePullRequest{Owner: cs.c.Self(), After: after, Max: repairPageSize})
			if err != nil {
				return
			}
			code, resp, err := cs.c.Do(cs.s.baseCtx, peer, http.MethodPost, "/internal/cache/pull", body)
			if err != nil || code != http.StatusOK {
				return // peer down or refusing: best-effort, give up
			}
			var out cachePullResponse
			if err := json.Unmarshal(resp, &out); err != nil {
				return
			}
			if !out.Member {
				break // peer does not count us a member yet: retry below
			}
			for key, res := range out.Results {
				if _, ok := cs.s.cache.get(key); ok {
					continue
				}
				cs.storeResult(key, res)
				cs.m.repairPulled.Inc()
			}
			if out.Next == "" {
				return // full scan served
			}
			after = out.Next
		}
		select {
		case <-cs.s.baseCtx.Done():
			return
		case <-time.After(notMemberWait):
		}
	}
}

// handleCachePull serves a repair scan: every cached key after the
// cursor that the requester currently owns, up to Max entries. The
// ownership check uses this node's own ring — during convergence the
// two nodes may briefly disagree, which at worst transfers an entry
// the requester did not strictly need; the cache is content-addressed,
// so a superfluous copy is harmless.
func (cs *clusterState) handleCachePull(w http.ResponseWriter, r *http.Request) {
	var req cachePullRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad pull request: " + err.Error()})
		return
	}
	owner := cluster.NormalizePeer(req.Owner)
	if owner == "" || req.Max <= 0 {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "pull request needs owner and max"})
		return
	}
	out := cachePullResponse{Results: make(map[string]JobResult), Member: cs.c.Contains(owner)}
	if !out.Member {
		// Not in our ring (yet): the ownership filter below can never
		// match, so skip the scan and let the puller retry after the
		// membership propagates.
		writeJSON(w, http.StatusOK, out)
		return
	}
	for _, key := range cs.s.cache.keysSorted() {
		if key <= req.After {
			continue
		}
		if len(out.Results) >= req.Max {
			out.Next = req.After // resume after the last key we returned
			break
		}
		if cs.c.Owner(key) != owner {
			continue
		}
		if res, ok := cs.s.cache.get(key); ok {
			out.Results[key] = res
			cs.m.cacheServed.Inc()
			req.After = key
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// writeBack pushes a locally computed result to its owning peer,
// asynchronously and best-effort: the local copy already serves local
// traffic, the owner copy makes the key findable cluster-wide.
func (cs *clusterState) writeBack(key string, res JobResult) {
	owner := cs.c.Owner(key)
	if cs.c.IsSelf(owner) {
		return
	}
	cs.wg.Add(1)
	go func() {
		defer cs.wg.Done()
		if !cs.c.Healthy(owner) {
			return
		}
		body, err := json.Marshal(res)
		if err != nil {
			return
		}
		code, _, err := cs.c.Do(cs.s.baseCtx, owner, http.MethodPut, "/internal/cache/"+key, body)
		if err == nil && code < 300 {
			cs.m.writebacks.Inc()
			cs.m.perPeer("mama_cluster_peer_writebacks_total",
				"Results pushed back to this owning peer.", owner)
		}
	}()
}

// ---------------------------------------------------------------------
// Remote cell execution (ring-aware sweep dispatch)
// ---------------------------------------------------------------------

// tryRemote is the pool's dispatch hook: when a dequeued cell's key is
// owned by a healthy peer and a remote slot is free, the cell executes
// on its owner — the goroutine below only waits on HTTP, so the pool
// worker that dequeued it immediately moves on to other work. This is
// what lets one receiving node drive a whole cluster's worth of
// compute. Returns false when the caller should execute locally.
func (cs *clusterState) tryRemote(t sweep.Ticket) bool {
	owner := cs.c.Owner(t.Key)
	if cs.c.IsSelf(owner) || !cs.c.Healthy(owner) {
		return false
	}
	ps := cs.peerSlot(owner)
	select {
	case cs.sem <- struct{}{}:
	default:
		return false // all remote slots busy: local compute beats waiting
	}
	select {
	case ps <- struct{}{}:
	default:
		// The owner already has a pool's worth of our cells in flight.
		// Running this one locally (or leaving it for a thief) beats
		// serializing it in the busiest shard's queue.
		<-cs.sem
		return false
	}
	// Remote executions ride the pool's WaitGroup, not cs.wg: they are
	// admitted work, so a graceful drain must wait for them exactly like
	// local runs. (The Add happens on a pool worker goroutine, so the
	// counter is provably non-zero.)
	cs.s.pool.wg.Add(1)
	go func() {
		defer cs.s.pool.wg.Done()
		cs.runRemoteCell(owner, t)
		<-cs.sem
		<-ps
		// Chain the next dispatch off this completion: local workers are
		// typically mid-cell for tens of milliseconds, and waiting for
		// one to come free would leave the owner's pool idle that long.
		cs.dispatchNext()
	}()
	return true
}

// dispatchNext tries to push one more queued cell to its owning peer,
// called when a remote slot frees up. A cell that is not remotely
// dispatchable right now (self-owned, owner busy or unhealthy) is
// returned to pending as transient — a local worker or a thief picks
// it up; no terminal event is emitted.
func (cs *clusterState) dispatchNext() {
	if cs.s.isDraining() || cs.s.baseCtx.Err() != nil {
		return
	}
	t, ok := cs.s.sweeps.TryDequeue()
	if !ok {
		return
	}
	if cs.tryRemote(t) {
		return
	}
	cs.s.sweeps.CellDone(t, nil, "not remotely dispatchable; requeued", true)
}

// runRemoteCell executes one sweep cell on its owning peer: submit the
// equivalent job, poll for the result, feed the outcome back to the
// sweep manager. Peer death at any point reports transient, returning
// the cell to pending — after enough failures the owner's breaker
// opens and the next dispatch runs locally.
func (cs *clusterState) runRemoteCell(owner string, t sweep.Ticket) {
	spec := specFromCell(t.Cell)
	spec.TimeoutMs = t.TimeoutMs
	body, err := json.Marshal(spec)
	if err != nil {
		cs.s.cellDone(t, JobResult{}, fmt.Errorf("encode cell spec: %w", err))
		return
	}
	// The deadline covers the remote queue wait plus the run itself;
	// shutdown cancellation arrives through baseCtx.
	ctx, cancel := context.WithTimeout(cs.s.baseCtx, cs.cellTimeout(t)+30*time.Second)
	defer cancel()

	fail := func(err error) {
		if cs.s.baseCtx.Err() != nil {
			err = context.Canceled // shutdown: transient, cell re-runs after restart
		}
		cs.s.cellDone(t, JobResult{}, err)
	}

	// Submit until admitted: 429/503 mean the owner is alive but
	// saturated or restarting — waiting keeps the work on the node that
	// owns the key, and the cluster is making progress meanwhile.
	id := jobID(t.Key)
	for {
		code, _, err := cs.c.Do(ctx, owner, http.MethodPost, "/v1/jobs", body)
		if err != nil {
			fail(fmt.Errorf("%w: submit to %s: %v", errPeerUnavailable, owner, err))
			return
		}
		if code == http.StatusOK || code == http.StatusAccepted {
			break
		}
		if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
			select {
			case <-ctx.Done():
				fail(fmt.Errorf("%w: %s stayed saturated: %v", errPeerUnavailable, owner, ctx.Err()))
				return
			case <-time.After(500 * time.Millisecond):
				continue
			}
		}
		fail(fmt.Errorf("owner %s refused cell job: HTTP %d", owner, code))
		return
	}

	// Long-poll the result: the owner holds the request open until the
	// job completes (or its wait cap fires), so a finished cell comes
	// back in one round-trip instead of a pollEvery-paced 202 loop.
	// pollEvery still paces the retry cadence when the long poll times
	// out on a slow cell.
	waitQ := "?wait=" + longPollWait.String()
	for {
		code, resp, err := cs.c.DoTimeout(ctx, owner, http.MethodGet,
			"/v1/jobs/"+id+"/result"+waitQ, nil, longPollWait+10*time.Second)
		if err != nil {
			fail(fmt.Errorf("%w: poll %s: %v", errPeerUnavailable, owner, err))
			return
		}
		switch {
		case code == http.StatusAccepted:
			// still queued/running on the owner
		case code == http.StatusOK:
			var out resultBody
			if err := json.Unmarshal(resp, &out); err != nil {
				fail(fmt.Errorf("decode result from %s: %w", owner, err))
				return
			}
			switch out.Status {
			case StatusDone:
				if out.Result == nil {
					fail(fmt.Errorf("owner %s reported done without a result", owner))
					return
				}
				cs.storeResult(t.Key, *out.Result)
				cs.m.remoteCells.Inc()
				cs.m.perPeer("mama_cluster_peer_remote_cells_total",
					"Sweep cells executed on this owning peer.", owner)
				cs.s.cellDone(t, *out.Result, nil)
				return
			case StatusFailed:
				cs.s.cellDone(t, JobResult{}, fmt.Errorf("remote cell failed on %s: %s", owner, out.Error))
				return
			}
		case code == http.StatusNotFound:
			// The owner restarted without the job (no persistence there):
			// transient, the next dispatch resubmits.
			fail(fmt.Errorf("%w: %s lost job %s", errPeerUnavailable, owner, id))
			return
		default:
			fail(fmt.Errorf("owner %s answered HTTP %d polling %s", owner, code, id))
			return
		}
		select {
		case <-ctx.Done():
			fail(fmt.Errorf("%w: result poll on %s: %v", errPeerUnavailable, owner, ctx.Err()))
			return
		case <-time.After(cs.pollEvery):
		}
	}
}

// ---------------------------------------------------------------------
// Work stealing
// ---------------------------------------------------------------------

// stolenCellWire is one leased cell on the steal protocol.
type stolenCellWire struct {
	Sweep     string     `json:"sweep"`
	Index     int        `json:"index"`
	Key       string     `json:"key"`
	Cell      sweep.Cell `json:"cell"`
	TimeoutMs int64      `json:"timeout_ms,omitempty"`
}

type stealRequest struct {
	Max int `json:"max"`
	// Thief is the thief's advertised URL. The victim records it on the
	// lease so a ring transition that confirms the thief dead can match
	// and requeue its leases immediately (RemoteAddr is an ephemeral
	// client port, useless for that comparison).
	Thief string `json:"thief,omitempty"`
}

type stealResponse struct {
	Cells []stolenCellWire `json:"cells"`
}

// stealDoneRequest reports a stolen cell's outcome back to the victim.
// Result carries the raw JobResult on success; Error the failure.
type stealDoneRequest struct {
	Sweep  string          `json:"sweep"`
	Index  int             `json:"index"`
	Key    string          `json:"key"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// stealBackoffCap bounds the exponential steal backoff (as a multiple
// of the base interval): an idle cluster polls lazily, but a fresh
// burst of work is never more than this far from being noticed.
const stealBackoffCap = 32

// stealDelay computes the next steal poll delay: the base interval
// after a successful steal, doubling per consecutive miss (victim had
// no spare work, or no healthy victim at all) up to stealBackoffCap×
// base, with ±25% jitter so a fleet of idle thieves does not hammer
// the one busy victim in lockstep.
func (cs *clusterState) stealDelay(misses int) time.Duration {
	d := cs.stealEvery
	if misses > 0 {
		shift := misses
		if shift > 10 {
			shift = 10
		}
		mult := int64(1) << shift
		if mult > stealBackoffCap {
			mult = stealBackoffCap
		}
		d = cs.stealEvery * time.Duration(mult)
	}
	cs.mu.Lock()
	jitter := cs.stealRng.Float64()
	cs.mu.Unlock()
	// jitter in [0.75, 1.25)
	d = time.Duration(float64(d) * (0.75 + jitter/2))
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// stealLoop is the thief side: when this node is fully idle (no queued
// jobs, no dispatchable sweep work, free workers) it asks peers — round
// robin — for queued cells and executes them locally through the normal
// job path. Polling backs off exponentially (with jitter) while
// victims have nothing to give and snaps back to the base interval on
// the first successful steal.
func (cs *clusterState) stealLoop() {
	misses := 0
	timer := time.NewTimer(cs.stealDelay(0))
	defer timer.Stop()
	for {
		select {
		case <-cs.s.baseCtx.Done():
			return
		case <-timer.C:
		}
		if cs.s.isDraining() {
			return
		}
		if !cs.idle() {
			// Busy with our own work: not a miss (there is nothing to
			// learn about the victims), poll again at the base cadence.
			misses = 0
			timer.Reset(cs.stealDelay(0))
			continue
		}
		var cells []stolenCellWire
		peer, ok := cs.nextPeer()
		if ok {
			cells = cs.stealFrom(peer, cs.s.cfg.Workers)
		}
		if len(cells) == 0 {
			// No healthy victim, or the victim had no spare work: back off.
			misses++
			timer.Reset(cs.stealDelay(misses))
			continue
		}
		misses = 0
		// Run the batch concurrently — the node is idle, so the whole
		// pool's width is available — but join it before the next poll
		// so the idle() check stays honest.
		var batch sync.WaitGroup
		for _, sc := range cells {
			batch.Add(1)
			go func(sc stolenCellWire) {
				defer batch.Done()
				cs.runStolen(peer, sc)
			}(sc)
		}
		batch.Wait()
		if cs.s.isDraining() {
			return
		}
		timer.Reset(cs.stealDelay(0))
	}
}

// idle reports whether this node has nothing of its own to do.
func (cs *clusterState) idle() bool {
	if cs.s.q.depth() > 0 {
		return false
	}
	if cs.s.metrics.workersBusy.Value() > 0 {
		return false
	}
	counts := cs.s.sweeps.Counts()
	return counts.CellsPending == 0 && counts.CellsRunning == 0
}

// nextPeer picks the next healthy peer round-robin.
func (cs *clusterState) nextPeer() (string, bool) {
	peers := cs.c.Peers()
	if len(peers) == 0 {
		return "", false
	}
	cs.mu.Lock()
	start := cs.stealCur
	cs.mu.Unlock()
	for i := 0; i < len(peers); i++ {
		p := peers[(start+i)%len(peers)]
		if cs.c.Healthy(p) {
			cs.mu.Lock()
			cs.stealCur = (start + i + 1) % len(peers)
			cs.mu.Unlock()
			return p, true
		}
	}
	return "", false
}

// stealFrom asks one victim for up to max queued cells.
func (cs *clusterState) stealFrom(peer string, max int) []stolenCellWire {
	body, err := json.Marshal(stealRequest{Max: max, Thief: cs.c.Self()})
	if err != nil {
		return nil
	}
	code, resp, err := cs.c.Do(cs.s.baseCtx, peer, http.MethodPost, "/internal/steal", body)
	if err != nil || code != http.StatusOK {
		return nil
	}
	var out stealResponse
	if err := json.Unmarshal(resp, &out); err != nil {
		return nil
	}
	return out.Cells
}

// runStolen executes one stolen cell locally (through the normal job
// path: registry entry, panic isolation, metrics, cache fill and
// write-back to the key's owner) and reports the outcome to the victim.
func (cs *clusterState) runStolen(victim string, sc stolenCellWire) {
	t := sweep.Ticket{SweepID: sc.Sweep, Index: sc.Index, Cell: sc.Cell, Key: sc.Key, TimeoutMs: sc.TimeoutMs}
	report := stealDoneRequest{Sweep: sc.Sweep, Index: sc.Index, Key: sc.Key}
	if res, ok := cs.s.cache.get(sc.Key); ok {
		// The thief already had the result (the victim could not know):
		// the dedupe contract holds, nothing runs.
		if raw, err := json.Marshal(res); err == nil {
			report.Result = raw
		}
	} else {
		j := cs.s.cellJob(t)
		res, err := cs.s.pool.execute(-1, j)
		if errors.Is(err, context.Canceled) && cs.s.baseCtx.Err() != nil {
			// This thief is shutting down mid-cell: say nothing. The
			// victim's lease janitor returns the cell to pending, and a
			// live node computes it — reporting an error here would fail
			// the cell permanently for a fault that is ours, not the
			// simulation's.
			return
		}
		if err != nil {
			report.Error = err.Error()
		} else if raw, merr := json.Marshal(res); merr == nil {
			report.Result = raw
		} else {
			report.Error = fmt.Sprintf("encode stolen result: %v", merr)
		}
	}
	cs.m.stealsOut.Inc()
	cs.m.perPeer("mama_cluster_peer_steals_out_total",
		"Sweep cells stolen from this peer.", victim)
	body, err := json.Marshal(report)
	if err != nil {
		return
	}
	// Best-effort: if the victim is gone, its lease janitor re-queues
	// the cell; our local cache fill still counts.
	_, _, _ = cs.c.Do(cs.s.baseCtx, victim, http.MethodPost, "/internal/steal/done", body)
}

// janitorLoop expires stolen-cell leases: a thief that died without
// reporting returns its cells to pending, so no steal can lose work.
func (cs *clusterState) janitorLoop() {
	ticker := time.NewTicker(500 * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case <-cs.s.baseCtx.Done():
			return
		case <-ticker.C:
		}
		now := time.Now()
		var expired []*stolenLease
		cs.mu.Lock()
		for k, l := range cs.leases {
			if now.After(l.expires) {
				delete(cs.leases, k)
				expired = append(expired, l)
			}
		}
		cs.mu.Unlock()
		for _, l := range expired {
			cs.m.stealExpired.Inc()
			cs.s.log.Warn("cluster: stolen cell lease expired; re-queueing",
				"sweep", l.t.SweepID, "cell", l.t.Index, "thief", l.peer)
			cs.s.sweeps.CellDone(l.t, nil, "steal lease expired", true)
		}
	}
}

// ---------------------------------------------------------------------
// Internal HTTP endpoints (peer-to-peer protocol)
// ---------------------------------------------------------------------

// gossipExchange is the piggyback middleware wrapped around the whole
// HTTP surface when gossip is enabled: incoming requests may carry
// membership deltas from peers or cluster-aware clients, and every
// response carries this node's current digest plus queued deltas. This
// is what makes membership converge between probe ticks — ordinary
// traffic is the widest gossip channel the cluster has.
func (cs *clusterState) gossipExchange(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		cs.c.ApplyGossipHeader(r.Header.Get(cluster.HeaderGossip))
		if g := cs.c.GossipHeaderValue(); g != "" {
			w.Header().Set(cluster.HeaderGossip, g)
		}
		next.ServeHTTP(w, r)
	})
}

func (cs *clusterState) registerHandlers(mux *http.ServeMux) {
	mux.HandleFunc("GET /internal/cache/{key}", cs.handleCacheGet)
	mux.HandleFunc("PUT /internal/cache/{key}", cs.handleCachePut)
	mux.HandleFunc("POST /internal/cache/lookup", cs.handleCacheLookup)
	mux.HandleFunc("POST /internal/cache/pull", cs.handleCachePull)
	mux.HandleFunc("POST /internal/steal", cs.handleSteal)
	mux.HandleFunc("POST /internal/steal/done", cs.handleStealDone)
	cs.c.RegisterGossipHandlers(mux)
}

func (cs *clusterState) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	res, ok := cs.s.cache.get(r.PathValue("key"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "not cached"})
		return
	}
	cs.m.cacheServed.Inc()
	writeJSON(w, http.StatusOK, res)
}

func (cs *clusterState) handleCachePut(w http.ResponseWriter, r *http.Request) {
	var res JobResult
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&res); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad result: " + err.Error()})
		return
	}
	cs.storeResult(r.PathValue("key"), res)
	w.WriteHeader(http.StatusNoContent)
}

func (cs *clusterState) handleCacheLookup(w http.ResponseWriter, r *http.Request) {
	var req cacheLookupRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad lookup: " + err.Error()})
		return
	}
	out := cacheLookupResponse{Results: make(map[string]JobResult)}
	for _, key := range req.Keys {
		if res, ok := cs.s.cache.get(key); ok {
			out.Results[key] = res
			cs.m.cacheServed.Inc()
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// handleSteal is the victim side: hand out queued sweep cells when this
// node has more pending work than its own pool will promptly absorb.
// Dispatch goes through the sweep manager's TryDequeue, which skips
// cached and inflight keys — a thief can only receive same-key-absent
// work, preserving the cluster-wide at-most-once compute guarantee.
func (cs *clusterState) handleSteal(w http.ResponseWriter, r *http.Request) {
	var req stealRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad steal request: " + err.Error()})
		return
	}
	out := stealResponse{Cells: []stolenCellWire{}}
	if cs.s.isDraining() || req.Max <= 0 {
		writeJSON(w, http.StatusOK, out)
		return
	}
	// Only give work away while there is more queued than the local pool
	// is about to chew through; an almost-drained queue finishes faster
	// locally than over two RPCs.
	if pending := cs.s.sweeps.Counts().CellsPending; pending <= cs.minPending {
		writeJSON(w, http.StatusOK, out)
		return
	}
	thief := cluster.NormalizePeer(req.Thief)
	if thief == "" {
		thief = r.RemoteAddr // pre-gossip thieves; lease still expires on the clock
	}
	for len(out.Cells) < req.Max {
		t, ok := cs.s.sweeps.TryDequeue()
		if !ok {
			break
		}
		cs.mu.Lock()
		cs.leases[leaseKey{t.SweepID, t.Index}] = &stolenLease{
			t: t, peer: thief, expires: time.Now().Add(cs.lease),
		}
		cs.mu.Unlock()
		cs.m.stealsIn.Inc()
		out.Cells = append(out.Cells, stolenCellWire{
			Sweep: t.SweepID, Index: t.Index, Key: t.Key, Cell: t.Cell, TimeoutMs: t.TimeoutMs,
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// handleStealDone resolves a stolen-cell lease with the thief's
// outcome. A report for an already-expired lease answers 410: the cell
// was re-queued, but the attached result is still a valid cache fill
// (results are bit-identical wherever computed), so it is kept — the
// re-queued cell then completes as deduped without running.
func (cs *clusterState) handleStealDone(w http.ResponseWriter, r *http.Request) {
	var req stealDoneRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad steal report: " + err.Error()})
		return
	}
	if len(req.Result) > 0 {
		var res JobResult
		if err := json.Unmarshal(req.Result, &res); err == nil {
			cs.storeResult(req.Key, res)
		}
	}
	cs.mu.Lock()
	lease, ok := cs.leases[leaseKey{req.Sweep, req.Index}]
	if ok {
		delete(cs.leases, leaseKey{req.Sweep, req.Index})
	}
	cs.mu.Unlock()
	if !ok {
		writeJSON(w, http.StatusGone, errorBody{Error: "no such lease (expired or unknown)"})
		return
	}
	if req.Error != "" {
		cs.s.sweeps.CellDone(lease.t, nil, req.Error, false)
	} else {
		cs.s.sweeps.CellDone(lease.t, req.Result, "", false)
	}
	w.WriteHeader(http.StatusNoContent)
}

// clusterStats snapshots the cluster block of /v1/stats.
func (cs *clusterState) stats() *ClusterStats {
	suspects, refutes, confirms := cs.c.GossipCounts()
	return &ClusterStats{
		Self:              cs.c.Self(),
		Peers:             cs.c.Peers(),
		Unhealthy:         cs.c.UnhealthyPeers(),
		GossipEnabled:     cs.c.GossipEnabled(),
		Members:           cs.c.Members(),
		MembershipVersion: cs.c.MembershipVersion(),
		RingHash:          cs.c.RingHash(),
		SelfIncarnation:   cs.c.SelfIncarnation(),
		Suspicions:        suspects,
		Refutes:           refutes,
		ConfirmedDead:     confirms,
		RepairPulled:      cs.m.repairPulled.Value(),
		DeadRequeued:      cs.m.deadRequeued.Value(),
		Proxied:           cs.m.proxied.Value(),
		ProxyErrors:       cs.m.proxyErrors.Value(),
		DegradedLocal:     cs.m.degraded.Value(),
		RemoteCacheHits:   cs.m.remoteHits.Value(),
		RemoteCacheMisses: cs.m.remoteMisses.Value(),
		RemoteCells:       cs.m.remoteCells.Value(),
		CacheServed:       cs.m.cacheServed.Value(),
		Writebacks:        cs.m.writebacks.Value(),
		StolenFromPeers:   cs.m.stealsOut.Value(),
		StolenByPeers:     cs.m.stealsIn.Value(),
		StealExpired:      cs.m.stealExpired.Value(),
	}
}

package server

import (
	"context"
	"net/http/httptest"
	"runtime"
	"testing"

	"micromama/internal/experiment"
)

// fastRun is a runFunc stub so these tests never start a simulation.
func fastRun(ctx context.Context, spec JobSpec) (JobResult, error) {
	return JobResult{Mix: "stub"}, nil
}

// TestSimParallelismResolution pins the -sim-parallel policy: explicit
// values pass through, auto (-1) divides GOMAXPROCS across the worker
// pool and degrades to serial when the quotient is under 2.
func TestSimParallelismResolution(t *testing.T) {
	host := runtime.GOMAXPROCS(0)
	cases := []struct {
		name    string
		workers int
		simPar  int
		want    int
	}{
		{"default-serial", 2, 0, 0},
		{"explicit", 2, 4, 4},
		{"one-is-serial", 2, 1, 0}, // width 1 = serial plus overhead
		{"auto-divides", 1, -1, autoWant(host, 1)},
		{"auto-full-pool", host, -1, autoWant(host, host)},
	}
	for _, tc := range cases {
		cfg := Config{Workers: tc.workers, SimParallelism: tc.simPar}.withDefaults()
		if cfg.SimParallelism != tc.want {
			t.Errorf("%s: resolved SimParallelism = %d, want %d", tc.name, cfg.SimParallelism, tc.want)
		}
	}
}

func autoWant(host, workers int) int {
	p := host / workers
	if p < 2 {
		return 0
	}
	return p
}

// TestSimParallelismAppliedAndExposed: the resolved value must reach
// every per-scale runner and surface in /v1/stats.
func TestSimParallelismAppliedAndExposed(t *testing.T) {
	srv := mustNew(t, Config{Workers: 1, SimParallelism: 3, Run: fastRun})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if r := srv.runnerFor(experiment.ScaleTiny); r.SimParallelism != 3 {
		t.Errorf("runner SimParallelism = %d, want 3", r.SimParallelism)
	}
	if st := srv.Stats(); st.SimParallelism != 3 {
		t.Errorf("Stats.SimParallelism = %d, want 3", st.SimParallelism)
	}
}

package server

import (
	"strings"
	"testing"
)

// newResolver returns a server usable only for resolve() (no workers).
func newResolver(t *testing.T) *Server {
	t.Helper()
	s, err := New(Config{Workers: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func TestJobKeyDeterministicAndCanonical(t *testing.T) {
	s := newResolver(t)
	base := JobSpec{Mix: []string{"spec06.libquantum", "spec06.mcf"}, Controller: "mumama"}

	p1, err := s.resolve(base)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s.resolve(base)
	if err != nil {
		t.Fatal(err)
	}
	if p1.key != p2.key {
		t.Fatalf("same spec hashed differently: %s vs %s", p1.key, p2.key)
	}
	if len(p1.key) != 64 || !strings.HasPrefix(p1.id, "j") || len(p1.id) != 17 {
		t.Fatalf("unexpected key/id shape: %q %q", p1.key, p1.id)
	}

	// Spelled-out defaults hash identically to implied ones.
	explicit := base
	explicit.Scale = "Default" // normalized to lower case
	pe, err := s.resolve(explicit)
	if err != nil {
		t.Fatal(err)
	}
	if pe.key != p1.key {
		t.Errorf("explicit default scale changed the key")
	}

	// Every result-determining field must move the key.
	variants := []JobSpec{
		{Mix: []string{"spec06.mcf", "spec06.libquantum"}, Controller: "mumama"}, // order matters
		{Mix: base.Mix, Controller: "bandit"},
		{Mix: base.Mix, Controller: "mumama", Scale: "tiny"},
		{Mix: base.Mix, Controller: "mumama", Seed: 9},
		{Mix: base.Mix, Controller: "mumama", Target: 123456},
		{Mix: base.Mix, Controller: "mumama", Step: 100},
		{Mix: base.Mix, Controller: "mumama", DRAMMTps: 1600},
		{Mix: base.Mix, Controller: "mumama", DRAMChannels: 2},
	}
	seen := map[string]int{p1.key: -1}
	for i, v := range variants {
		p, err := s.resolve(v)
		if err != nil {
			t.Fatalf("variant %d: %v", i, err)
		}
		if prev, dup := seen[p.key]; dup {
			t.Errorf("variant %d collides with %d", i, prev)
		}
		seen[p.key] = i
	}

	// TimeoutMs bounds execution but not the outcome: same key.
	timed := base
	timed.TimeoutMs = 5000
	pt, err := s.resolve(timed)
	if err != nil {
		t.Fatal(err)
	}
	if pt.key != p1.key {
		t.Errorf("timeout_ms changed the content key")
	}
}

func TestQueueBounds(t *testing.T) {
	q := newQueue(2)
	a, b, c := &job{id: "a"}, &job{id: "b"}, &job{id: "c"}
	if !q.tryPush(a) || !q.tryPush(b) {
		t.Fatal("pushes into empty queue failed")
	}
	if q.tryPush(c) {
		t.Fatal("push into full queue succeeded")
	}
	if q.depth() != 2 || q.cap() != 2 {
		t.Fatalf("depth/cap = %d/%d, want 2/2", q.depth(), q.cap())
	}
	if got := <-q.jobs(); got != a {
		t.Fatalf("FIFO violated: got %s", got.id)
	}
	if !q.tryPush(c) {
		t.Fatal("push after pop failed")
	}
}

func TestResultCacheFirstWriteWins(t *testing.T) {
	c := newResultCache()
	if _, ok := c.get("k"); ok {
		t.Fatal("empty cache hit")
	}
	c.put("k", JobResult{WS: 1})
	c.put("k", JobResult{WS: 2})
	got, ok := c.get("k")
	if !ok || got.WS != 1 {
		t.Fatalf("got %+v, want first write (WS=1)", got)
	}
	if c.size() != 1 {
		t.Fatalf("size = %d", c.size())
	}
}

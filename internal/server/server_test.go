package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// mustNew builds a started Server or fails the test.
func mustNew(t *testing.T, cfg Config) *Server {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return srv
}

func postJob(t *testing.T, ts *httptest.Server, spec string) (*http.Response, JobView) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	var view JobView
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read body: %v", err)
	}
	if resp.StatusCode < 400 {
		if err := json.Unmarshal(buf.Bytes(), &view); err != nil {
			t.Fatalf("decode job view: %v (%s)", err, buf.String())
		}
	}
	return resp, view
}

func getResult(t *testing.T, ts *httptest.Server, id string) (int, resultBody) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	defer resp.Body.Close()
	var body resultBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decode result: %v", err)
	}
	return resp.StatusCode, body
}

func waitDone(t *testing.T, ts *httptest.Server, id string, timeout time.Duration) resultBody {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		code, body := getResult(t, ts, id)
		if code == http.StatusOK {
			return body
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish within %v", id, timeout)
	return resultBody{}
}

func getStats(t *testing.T, ts *httptest.Server) Stats {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("GET stats: %v", err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode stats: %v", err)
	}
	return st
}

// TestSmokeEndToEnd runs a real (tiny) simulation through the full HTTP
// path, then resubmits the identical job and checks it is served from
// the content-addressed cache without a second simulation.
func TestSmokeEndToEnd(t *testing.T) {
	srv := mustNew(t, Config{Workers: 2, QueueDepth: 8})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := `{"mix":["spec06.libquantum","spec06.sphinx3"],"controller":"bandit","scale":"tiny","target":60000}`

	resp, view := postJob(t, ts, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: HTTP %d, want 202", resp.StatusCode)
	}
	if view.Status != StatusQueued && view.Status != StatusRunning {
		t.Fatalf("first submit: status %q", view.Status)
	}

	body := waitDone(t, ts, view.ID, 60*time.Second)
	if body.Status != StatusDone {
		t.Fatalf("job finished as %q (error %q), want done", body.Status, body.Error)
	}
	if body.Result == nil || body.Result.WS <= 0 {
		t.Fatalf("done job has no plausible result: %+v", body.Result)
	}
	if len(body.Result.Speedups) != 2 || len(body.Result.IPC) != 2 {
		t.Fatalf("expected 2-core result, got %+v", body.Result)
	}

	// Identical resubmission: instant 200, cached flag, identical metrics.
	resp2, view2 := postJob(t, ts, spec)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("resubmit: HTTP %d, want 200 (cache hit)", resp2.StatusCode)
	}
	if view2.ID != view.ID {
		t.Fatalf("resubmit got id %s, want %s (content-addressed)", view2.ID, view.ID)
	}
	code, body2 := getResult(t, ts, view2.ID)
	if code != http.StatusOK || body2.Status != StatusDone || body2.Result == nil {
		t.Fatalf("cached job not done: HTTP %d %+v", code, body2)
	}
	if body2.Result.WS != body.Result.WS || body2.Result.HS != body.Result.HS {
		t.Fatalf("cached metrics differ: %+v vs %+v", body2.Result, body.Result)
	}

	st := getStats(t, ts)
	if st.Simulations != 1 {
		t.Errorf("simulations = %d, want 1 (second submit must hit the cache)", st.Simulations)
	}
	if st.CacheHits != 1 {
		t.Errorf("cache_hits = %d, want 1", st.CacheHits)
	}
	if st.Completed != 1 || st.Failed != 0 {
		t.Errorf("completed/failed = %d/%d, want 1/0", st.Completed, st.Failed)
	}
	if st.Submitted != 2 {
		t.Errorf("submitted = %d, want 2", st.Submitted)
	}
}

// fakeSpec builds distinct valid specs (seed namespaces the cache key).
func fakeSpec(seed int) string {
	return fmt.Sprintf(`{"mix":["spec06.libquantum"],"controller":"no","scale":"tiny","seed":%d}`, seed)
}

// TestQueueOverflow fills one worker and a depth-1 queue, then checks
// the next distinct submission is shed with HTTP 429.
func TestQueueOverflow(t *testing.T) {
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	srv := mustNew(t, Config{
		Workers:    1,
		QueueDepth: 1,
		Run: func(ctx context.Context, spec JobSpec) (JobResult, error) {
			started <- struct{}{}
			select {
			case <-release:
				return JobResult{Mix: "fake", WS: 1}, nil
			case <-ctx.Done():
				return JobResult{}, ctx.Err()
			}
		},
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Job 1: grabbed by the single worker (wait for it to start).
	resp1, v1 := postJob(t, ts, fakeSpec(1))
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("job1: HTTP %d", resp1.StatusCode)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("worker never started job1")
	}

	// Job 2: occupies the single queue slot.
	resp2, _ := postJob(t, ts, fakeSpec(2))
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("job2: HTTP %d", resp2.StatusCode)
	}

	// Job 3: queue full → 429.
	resp3, _ := postJob(t, ts, fakeSpec(3))
	if resp3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job3: HTTP %d, want 429", resp3.StatusCode)
	}
	if ra := resp3.Header.Get("Retry-After"); ra == "" {
		t.Error("429 response missing Retry-After")
	}
	if st := getStats(t, ts); st.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", st.Rejected)
	}

	// A duplicate of the running job still coalesces instead of 429ing.
	respDup, vDup := postJob(t, ts, fakeSpec(1))
	if respDup.StatusCode != http.StatusAccepted || vDup.ID != v1.ID {
		t.Fatalf("duplicate submit: HTTP %d id %s, want 202 with id %s",
			respDup.StatusCode, vDup.ID, v1.ID)
	}
	if st := getStats(t, ts); st.DedupHits != 1 {
		t.Errorf("dedup_hits = %d, want 1", st.DedupHits)
	}

	close(release)
	b1 := waitDone(t, ts, v1.ID, 5*time.Second)
	if b1.Status != StatusDone {
		t.Fatalf("job1 finished as %q", b1.Status)
	}
}

// TestJobTimeout submits a job whose (fake) simulation never returns
// and checks it fails with a timeout error while the server stays up.
func TestJobTimeout(t *testing.T) {
	srv := mustNew(t, Config{
		Workers:    1,
		QueueDepth: 4,
		Run: func(ctx context.Context, spec JobSpec) (JobResult, error) {
			<-ctx.Done() // simulate RunContext observing cancellation
			return JobResult{}, ctx.Err()
		},
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	spec := `{"mix":["spec06.libquantum"],"controller":"no","scale":"tiny","timeout_ms":50}`
	resp, view := postJob(t, ts, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	body := waitDone(t, ts, view.ID, 10*time.Second)
	if body.Status != StatusFailed {
		t.Fatalf("job finished as %q, want failed", body.Status)
	}
	if !strings.Contains(body.Error, "timeout") {
		t.Errorf("error %q does not mention the timeout", body.Error)
	}

	// The server survived: healthz still answers and stats counted it.
	hz, err := http.Get(ts.URL + "/healthz")
	if err != nil || hz.StatusCode != http.StatusOK {
		t.Fatalf("healthz after timeout: %v %v", hz, err)
	}
	hz.Body.Close()
	if st := getStats(t, ts); st.Failed != 1 {
		t.Errorf("failed = %d, want 1", st.Failed)
	}

	// A failed job is retried (not served from cache) on resubmission.
	resp2, view2 := postJob(t, ts, spec)
	if resp2.StatusCode != http.StatusAccepted || view2.ID != view.ID {
		t.Fatalf("retry submit: HTTP %d id %s, want 202 with id %s",
			resp2.StatusCode, view2.ID, view.ID)
	}
}

// scrapeMetric fetches /metrics and returns the value of the series
// with the given name (including any label body), or -1 if absent.
func scrapeMetric(t *testing.T, ts *httptest.Server, series string) float64 {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: HTTP %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("/metrics Content-Type = %q, want text/plain exposition", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("read /metrics: %v", err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok || name != series {
			continue
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			t.Fatalf("series %s has unparseable value %q", series, val)
		}
		return f
	}
	return -1
}

// TestMetricsEndpoint checks that /metrics serves Prometheus text
// format and that a cache miss → hit sequence moves the server's
// result-cache counters exactly.
func TestMetricsEndpoint(t *testing.T) {
	srv := mustNew(t, Config{Workers: 1, QueueDepth: 4,
		Run: func(ctx context.Context, spec JobSpec) (JobResult, error) {
			return JobResult{Mix: "fake", WS: 1}, nil
		}})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// The queue/worker/trace-pool families are present before any job.
	for _, series := range []string{
		"mama_server_queue_depth",
		"mama_server_workers",
		"mama_server_result_cache_entries",
		"mama_trace_pool_entries",
		"mama_trace_pool_used_bytes",
	} {
		if v := scrapeMetric(t, ts, series); v < 0 {
			t.Errorf("series %s missing from /metrics", series)
		}
	}
	if v := scrapeMetric(t, ts, "mama_server_result_cache_misses_total"); v != 0 {
		t.Fatalf("cache misses before any job = %v, want 0", v)
	}

	// First submission: a miss that runs to completion.
	resp, view := postJob(t, ts, fakeSpec(1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	waitDone(t, ts, view.ID, 10*time.Second)
	if v := scrapeMetric(t, ts, "mama_server_result_cache_misses_total"); v != 1 {
		t.Errorf("cache misses after first job = %v, want 1", v)
	}
	if v := scrapeMetric(t, ts, "mama_server_result_cache_hits_total"); v != 0 {
		t.Errorf("cache hits after first job = %v, want 0", v)
	}
	if v := scrapeMetric(t, ts, "mama_server_jobs_completed_total"); v != 1 {
		t.Errorf("jobs completed = %v, want 1", v)
	}
	if v := scrapeMetric(t, ts, "mama_server_result_cache_entries"); v != 1 {
		t.Errorf("result cache entries = %v, want 1", v)
	}
	if v := scrapeMetric(t, ts, `mama_server_job_run_seconds_count`); v != 1 {
		t.Errorf("run-latency histogram count = %v, want 1", v)
	}

	// Identical resubmission: served from the cache, hits move, misses
	// and completions do not.
	resp2, _ := postJob(t, ts, fakeSpec(1))
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("resubmit: HTTP %d, want 200 (cache hit)", resp2.StatusCode)
	}
	if v := scrapeMetric(t, ts, "mama_server_result_cache_hits_total"); v != 1 {
		t.Errorf("cache hits after resubmit = %v, want 1", v)
	}
	if v := scrapeMetric(t, ts, "mama_server_result_cache_misses_total"); v != 1 {
		t.Errorf("cache misses after resubmit = %v, want 1", v)
	}
	if v := scrapeMetric(t, ts, "mama_server_jobs_completed_total"); v != 1 {
		t.Errorf("jobs completed after resubmit = %v, want 1", v)
	}
	if v := scrapeMetric(t, ts, "mama_server_jobs_submitted_total"); v != 2 {
		t.Errorf("jobs submitted = %v, want 2", v)
	}
}

// TestBadRequests exercises validation failures.
func TestBadRequests(t *testing.T) {
	srv := mustNew(t, Config{Workers: 1, QueueDepth: 1,
		Run: func(ctx context.Context, spec JobSpec) (JobResult, error) {
			return JobResult{}, nil
		}})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []string{
		`not json`,
		`{}`,
		`{"mix":[],"controller":"no"}`,
		`{"mix":["nope.unknown"],"controller":"no"}`,
		`{"mix":["spec06.libquantum"],"controller":"nope"}`,
		`{"mix":["spec06.libquantum"],"controller":"no","scale":"galactic"}`,
		`{"mix":["spec06.libquantum"],"controller":"no","timeout_ms":-1}`,
		`{"mix":["spec06.libquantum"],"controller":"no","unknown_field":1}`,
	}
	for _, c := range cases {
		resp, _ := postJob(t, ts, c)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("spec %s: HTTP %d, want 400", c, resp.StatusCode)
		}
	}

	// Oversized mix (MaxCores default 16).
	mix := make([]string, 17)
	for i := range mix {
		mix[i] = "spec06.libquantum"
	}
	b, _ := json.Marshal(map[string]any{"mix": mix, "controller": "no"})
	resp, _ := postJob(t, ts, string(b))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("17-core mix: HTTP %d, want 400", resp.StatusCode)
	}

	// Unknown job IDs are 404s.
	for _, path := range []string{"/v1/jobs/jdeadbeef", "/v1/jobs/jdeadbeef/result"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Errorf("%s: HTTP %d, want 404", path, r.StatusCode)
		}
	}
}

// TestCatalogControllerEligibility checks that /v1/catalog exposes every
// controller with its parallel-path eligibility, so tournament clients
// can validate controller names and predict which families run on the
// parallel epoch path.
func TestCatalogControllerEligibility(t *testing.T) {
	srv := mustNew(t, Config{Workers: 1, QueueDepth: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/catalog")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cat struct {
		Controllers    []string `json:"controllers"`
		ControllerInfo []struct {
			Key       string `json:"key"`
			CoreLocal bool   `json:"core_local"`
		} `json:"controller_info"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&cat); err != nil {
		t.Fatal(err)
	}
	if len(cat.ControllerInfo) != len(cat.Controllers) {
		t.Fatalf("controller_info has %d rows, controllers %d", len(cat.ControllerInfo), len(cat.Controllers))
	}
	want := map[string]bool{"phase-select": true, "coord-rl": false, "mumama": false, "bingo": true}
	seen := map[string]bool{}
	for _, info := range cat.ControllerInfo {
		seen[info.Key] = true
		if w, ok := want[info.Key]; ok && info.CoreLocal != w {
			t.Errorf("catalog %q core_local = %v, want %v", info.Key, info.CoreLocal, w)
		}
	}
	for key := range want {
		if !seen[key] {
			t.Errorf("catalog missing controller %q", key)
		}
	}
}

// TestUnknownControllerListsKnownSet checks the 400 from an unknown
// controller names the valid keys (the tournament-client contract).
func TestUnknownControllerListsKnownSet(t *testing.T) {
	srv := mustNew(t, Config{Workers: 1, QueueDepth: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"mix":["spec06.libquantum"],"controller":"phase-selekt"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("HTTP %d, want 400 (%s)", resp.StatusCode, buf.String())
	}
	body := buf.String()
	for _, known := range []string{"phase-select", "coord-rl", "mumama", "bandit"} {
		if !strings.Contains(body, known) {
			t.Errorf("400 body does not name known controller %q: %s", known, body)
		}
	}
}

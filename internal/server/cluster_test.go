package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"micromama/internal/cluster"
)

// clusterNode is one in-process member of a test cluster.
type clusterNode struct {
	srv *Server
	ts  *httptest.Server
	url string
}

func (n *clusterNode) kill() {
	n.ts.Close()
	n.srv.Close()
}

// startCluster boots n nodes that share one consistent-hash ring.
// Listeners are bound first so every node is constructed with the full
// peer set; mut customizes each node's Config before New.
func startCluster(t testing.TB, n int, mut func(i int, cfg *Config)) []*clusterNode {
	return startClusterOpts(t, n, cluster.Options{
		FailureThreshold: 2,
		Cooldown:         250 * time.Millisecond,
		RPCTimeout:       5 * time.Second,
	}, mut)
}

func startClusterOpts(t testing.TB, n int, opts cluster.Options, mut func(i int, cfg *Config)) []*clusterNode {
	t.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
	}
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		cl, err := cluster.New(urls[i], urls, opts)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{
			Workers:            2,
			QueueDepth:         64,
			Cluster:            cl,
			RemotePollInterval: 5 * time.Millisecond,
			StealInterval:      -1, // tests that want stealing opt in
		}
		if mut != nil {
			mut(i, &cfg)
		}
		srv, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewUnstartedServer(srv.Handler())
		ts.Listener = lns[i]
		ts.Start()
		nodes[i] = &clusterNode{srv: srv, ts: ts, url: urls[i]}
		t.Cleanup(nodes[i].kill)
	}
	return nodes
}

// pureRun builds a deterministic fake runFunc: the result is a pure
// function of the spec (so it is bit-identical wherever it executes)
// and every invocation bumps sims.
func pureRun(sims *atomic.Int64, delay time.Duration) runFunc {
	return func(ctx context.Context, spec JobSpec) (JobResult, error) {
		sims.Add(1)
		if delay > 0 {
			select {
			case <-time.After(delay):
			case <-ctx.Done():
				return JobResult{}, ctx.Err()
			}
		}
		return JobResult{
			Mix:        strings.Join(spec.Mix, "+"),
			Controller: spec.Controller,
			WS:         float64(spec.Seed) * 1.5,
			HS:         float64(spec.Seed) + 0.25,
			GM:         1,
			Speedups:   []float64{float64(spec.Seed)},
		}, nil
	}
}

// clusterStats fetches /v1/stats and requires the cluster block.
func clusterStats(t *testing.T, n *clusterNode) (Stats, ClusterStats) {
	t.Helper()
	st := getStats(t, n.ts)
	if st.Cluster == nil {
		t.Fatalf("node %s: stats missing cluster block", n.url)
	}
	return st, *st.Cluster
}

// TestClusterWarmSweepZeroRecompute is the tentpole acceptance test: a
// cold sweep submitted to node A computes every cell exactly once
// across the cluster; resubmitting the identical sweep to node C
// completes with zero additional simulations anywhere — admission
// prefetch pulls every remote-owned result from its owning shard.
func TestClusterWarmSweepZeroRecompute(t *testing.T) {
	const cells = 8
	sims := make([]atomic.Int64, 3)
	nodes := startCluster(t, 3, func(i int, cfg *Config) {
		cfg.Run = pureRun(&sims[i], 0)
		// Eager dispatch: every remote-owned cell must execute on its
		// owner so the warm pass finds every result already in place
		// (no async write-back races in the assertion below).
		cfg.RemotePeerSlots = 2 * cells
	})
	a, c := nodes[0], nodes[2]

	total := func() int64 {
		var n int64
		for i := range sims {
			n += sims[i].Load()
		}
		return n
	}

	resp, view := postSweep(t, a.ts, sweepGridJSON("cold", cells))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("cold sweep: HTTP %d", resp.StatusCode)
	}
	waitSweepDone(t, a.ts, view.ID, 30*time.Second)

	if got := total(); got != cells {
		t.Fatalf("cold sweep ran %d simulations across the cluster, want exactly %d", got, cells)
	}

	// Same grid against a different node: every cell must dedupe at
	// admission via the distributed cache.
	resp2, view2 := postSweep(t, c.ts, sweepGridJSON("warm", cells))
	if resp2.StatusCode != http.StatusCreated {
		t.Fatalf("warm sweep: HTTP %d", resp2.StatusCode)
	}
	warm := waitSweepDone(t, c.ts, view2.ID, 30*time.Second)
	if warm.Deduped != cells {
		t.Errorf("warm sweep deduped %d of %d cells", warm.Deduped, cells)
	}
	if got := total(); got != cells {
		t.Errorf("warm resubmission ran %d extra simulations, want 0", got-cells)
	}
	if _, ccl := clusterStats(t, c); ccl.RemoteCacheHits == 0 {
		t.Error("warm pass recorded no cross-shard cache hits; prefetch did not reach the owners")
	}
}

// specOwnedBy hunts for a fake-job seed whose key lands on the wanted
// node, using the ring every node shares.
func specOwnedBy(t *testing.T, n *clusterNode, want string) JobSpec {
	t.Helper()
	for seed := uint64(1); seed < 4096; seed++ {
		spec := JobSpec{Mix: []string{"spec06.libquantum"}, Controller: "no", Scale: "tiny", Seed: seed}
		p, err := n.srv.resolve(spec)
		if err != nil {
			t.Fatal(err)
		}
		if n.srv.cl.c.Owner(p.key) == want {
			return spec
		}
	}
	t.Fatal("no seed found owned by " + want)
	return JobSpec{}
}

// TestClusterProxySubmit checks interactive routing: a submission to a
// non-owning node is proxied to the owner (which computes and caches
// it), the response names the owner via X-Mama-Owner, and the job is
// afterwards visible through both nodes.
func TestClusterProxySubmit(t *testing.T) {
	sims := make([]atomic.Int64, 2)
	nodes := startCluster(t, 2, func(i int, cfg *Config) {
		cfg.Run = pureRun(&sims[i], 0)
	})
	a, b := nodes[0], nodes[1]

	spec := specOwnedBy(t, a, b.url)
	body, _ := json.Marshal(spec)
	resp, err := http.Post(a.ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("proxied submit: HTTP %d", resp.StatusCode)
	}
	if got := resp.Header.Get(cluster.HeaderOwner); got != b.url {
		t.Errorf("X-Mama-Owner = %q, want owner %q", got, b.url)
	}
	var view JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}

	// The job completes and is visible from both nodes (the receiver
	// proxies the lookup); only the owner computed it.
	if bodyA := waitDone(t, a.ts, view.ID, 10*time.Second); bodyA.Status != StatusDone {
		t.Fatalf("job via non-owner finished as %q", bodyA.Status)
	}
	if bodyB := waitDone(t, b.ts, view.ID, 10*time.Second); bodyB.Status != StatusDone {
		t.Fatalf("job via owner finished as %q", bodyB.Status)
	}
	if sims[0].Load() != 0 || sims[1].Load() != 1 {
		t.Errorf("simulations = [%d %d], want [0 1] (owner computes)", sims[0].Load(), sims[1].Load())
	}
	if _, acl := clusterStats(t, a); acl.Proxied == 0 {
		t.Error("receiving node recorded no proxied requests")
	}
}

// normalizeResult strips the one timing-dependent field (sim_ms is
// wall-clock) and returns canonical JSON for bit-identity comparison.
func normalizeResult(t *testing.T, raw []byte) string {
	t.Helper()
	var res JobResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatalf("unmarshal result %s: %v", raw, err)
	}
	res.SimMs = 0
	out, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// goldenKey identifies one golden spec.
type goldenKey struct {
	seed       uint64
	controller string
}

// TestClusterGoldenRoutingPaths pins bit-identical results across the
// three execution paths with real simulations: the same specs computed
// locally on a standalone server, proxied to their cluster owner, and
// stolen by an idle peer must produce byte-identical metrics.
func TestClusterGoldenRoutingPaths(t *testing.T) {
	specs := []JobSpec{
		{Mix: []string{"spec06.libquantum"}, Controller: "no", Scale: "tiny", Seed: 1},
		{Mix: []string{"spec06.libquantum"}, Controller: "no", Scale: "tiny", Seed: 2},
		{Mix: []string{"spec06.libquantum"}, Controller: "bandit", Scale: "tiny", Seed: 3},
	}

	// Golden: a standalone (non-clustered) server runs everything
	// locally with real simulations.
	golden := make(map[goldenKey]string)
	solo := mustNew(t, Config{Workers: 1, QueueDepth: 8})
	soloTS := httptest.NewServer(solo.Handler())
	for _, spec := range specs {
		body, _ := json.Marshal(spec)
		resp, view := postJob(t, soloTS, string(body))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("golden submit: HTTP %d", resp.StatusCode)
		}
		done := waitDone(t, soloTS, view.ID, 30*time.Second)
		if done.Status != StatusDone {
			t.Fatalf("golden job seed %d finished as %q: %s", spec.Seed, done.Status, done.Error)
		}
		raw, _ := json.Marshal(done.Result)
		golden[goldenKey{spec.Seed, spec.Controller}] = normalizeResult(t, raw)
	}
	soloTS.Close()
	solo.Close()

	// Proxied: submit each spec to a 2-node cluster via whichever node
	// does NOT own it, forcing the proxy hop; the owner computes with
	// real simulations.
	proxied := startCluster(t, 2, nil)
	for _, spec := range specs {
		p, err := proxied[0].srv.resolve(spec)
		if err != nil {
			t.Fatal(err)
		}
		receiver := proxied[0]
		if proxied[0].srv.cl.c.Owner(p.key) == proxied[0].url {
			receiver = proxied[1]
		}
		body, _ := json.Marshal(spec)
		resp, view := postJob(t, receiver.ts, string(body))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("proxied submit seed %d: HTTP %d", spec.Seed, resp.StatusCode)
		}
		done := waitDone(t, receiver.ts, view.ID, 30*time.Second)
		if done.Status != StatusDone {
			t.Fatalf("proxied job seed %d finished as %q: %s", spec.Seed, done.Status, done.Error)
		}
		raw, _ := json.Marshal(done.Result)
		want := golden[goldenKey{spec.Seed, spec.Controller}]
		if got := normalizeResult(t, raw); got != want {
			t.Errorf("proxied result for seed %d differs from local:\n  local: %s\nproxied: %s",
				spec.Seed, want, got)
		}
	}

	// Stolen: a victim whose only worker is wedged on an interactive
	// job queues the cells; the idle peer steals them, runs real
	// simulations, and reports the results back.
	release := make(chan struct{})
	defer close(release)
	var victim, thief *Server
	var thiefSims atomic.Int64
	stolen := startCluster(t, 2, func(i int, cfg *Config) {
		if i == 0 {
			cfg.Workers = 1
			cfg.StealMinPending = -1 // hand thieves everything
			cfg.Run = func(ctx context.Context, spec JobSpec) (JobResult, error) {
				if spec.Seed == 9999 { // the wedge job
					select {
					case <-release:
					case <-ctx.Done():
					}
					return JobResult{Mix: "wedge"}, nil
				}
				return victim.simulate(ctx, spec)
			}
		} else {
			cfg.StealInterval = 10 * time.Millisecond
			cfg.Run = func(ctx context.Context, spec JobSpec) (JobResult, error) {
				thiefSims.Add(1)
				return thief.simulate(ctx, spec)
			}
		}
	})
	victim, thief = stolen[0].srv, stolen[1].srv

	// Wedge the victim's single worker with a forwarded-marked (so
	// never proxied) interactive job.
	wedge, _ := json.Marshal(JobSpec{Mix: []string{"spec06.libquantum"}, Controller: "no", Scale: "tiny", Seed: 9999})
	req, _ := http.NewRequest(http.MethodPost, stolen[0].ts.URL+"/v1/jobs", bytes.NewReader(wedge))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(cluster.HeaderForwarded, "1")
	wresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	wresp.Body.Close()
	if wresp.StatusCode != http.StatusAccepted {
		t.Fatalf("wedge submit: HTTP %d", wresp.StatusCode)
	}

	// The golden cells, all pending behind the wedge; only the thief
	// can execute them.
	cellsJSON, _ := json.Marshal(struct {
		Name  string    `json:"name"`
		Cells []JobSpec `json:"cells"`
	}{Name: "steal-golden", Cells: specs})
	resp, view := postSweep(t, stolen[0].ts, string(cellsJSON))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("steal sweep: HTTP %d", resp.StatusCode)
	}
	done := waitSweepDone(t, stolen[0].ts, view.ID, 60*time.Second)
	if done.Failed != 0 {
		t.Fatalf("steal sweep finished with %d failed cells", done.Failed)
	}
	if thiefSims.Load() == 0 {
		t.Fatal("thief ran no simulations; nothing was stolen")
	}
	_, vcl := clusterStats(t, stolen[0])
	_, tcl := clusterStats(t, stolen[1])
	if vcl.StolenByPeers == 0 || tcl.StolenFromPeers == 0 {
		t.Errorf("steal counters: victim stolen_by_peers=%d thief stolen_from_peers=%d, want both > 0",
			vcl.StolenByPeers, tcl.StolenFromPeers)
	}

	// Every stolen cell's result must be byte-identical to the golden
	// local run of the same spec.
	events, _ := readSweepEvents(t, stolen[0].ts, view.ID, "")
	compared := 0
	for _, ev := range events {
		want, ok := golden[goldenKey{ev.Spec.Seed, ev.Spec.Controller}]
		if !ok {
			t.Errorf("event for unexpected cell seed %d/%s", ev.Spec.Seed, ev.Spec.Controller)
			continue
		}
		if got := normalizeResult(t, ev.Result); got != want {
			t.Errorf("stolen result for seed %d/%s differs from local:\n local: %s\nstolen: %s",
				ev.Spec.Seed, ev.Spec.Controller, want, got)
		}
		compared++
	}
	if compared != len(specs) {
		t.Errorf("compared %d stolen results, want %d", compared, len(specs))
	}
}

// TestClusterOwnerDeathMidSweep kills an owning shard while a sweep is
// in flight: the sweep must still complete via re-routing (transient
// requeue, breaker, degraded-local compute) with every cell terminal
// exactly once — none lost, none double-counted.
func TestClusterOwnerDeathMidSweep(t *testing.T) {
	const cells = 12
	sims := make([]atomic.Int64, 3)
	nodes := startCluster(t, 3, func(i int, cfg *Config) {
		cfg.Run = pureRun(&sims[i], 30*time.Millisecond)
		cfg.StealInterval = 20 * time.Millisecond
		cfg.StealLease = time.Second // a dead thief must release fast
	})
	a, b := nodes[0], nodes[1]

	resp, view := postSweep(t, a.ts, sweepGridJSON("chaos", cells))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("sweep: HTTP %d", resp.StatusCode)
	}

	// Let the sweep make some progress, then kill node B.
	deadline := time.Now().Add(10 * time.Second)
	for getSweepView(t, a.ts, view.ID).Done == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sweep made no progress before the kill")
		}
		time.Sleep(5 * time.Millisecond)
	}
	b.kill()

	done := waitSweepDone(t, a.ts, view.ID, 60*time.Second)
	if done.Done+done.Deduped != cells || done.Failed != 0 {
		t.Fatalf("after owner death: done=%d deduped=%d failed=%d, want %d total done / 0 failed",
			done.Done, done.Deduped, done.Failed, cells)
	}

	// Exactly one terminal event per cell index: nothing lost, nothing
	// double-counted.
	events, _ := readSweepEvents(t, a.ts, view.ID, "")
	seen := make(map[int]int)
	for _, ev := range events {
		seen[ev.Cell]++
	}
	if len(seen) != cells {
		t.Errorf("events cover %d distinct cells, want %d", len(seen), cells)
	}
	for cell, n := range seen {
		if n != 1 {
			t.Errorf("cell %d has %d terminal events, want exactly 1", cell, n)
		}
	}
}

// TestClusterPartitionDegrade cuts every peer RPC via the injected
// partition fault: submissions against the reachable node must degrade
// to local compute — slower, but never a client-visible error.
func TestClusterPartitionDegrade(t *testing.T) {
	enableFault(t, "cluster/rpc/partition", "always")
	sims := make([]atomic.Int64, 2)
	// A long cooldown keeps the breaker visibly open once it trips, so
	// the final stats assertions are deterministic.
	nodes := startClusterOpts(t, 2, cluster.Options{
		FailureThreshold: 2,
		Cooldown:         time.Minute,
		RPCTimeout:       5 * time.Second,
	}, func(i int, cfg *Config) {
		cfg.Run = pureRun(&sims[i], 0)
	})
	a, b := nodes[0], nodes[1]

	// A peer-owned job, submitted twice: each proxy attempt fails in
	// transport and degrades to local compute; the second failure trips
	// the breaker. The client sees 202s throughout, never an error.
	remoteSpec := specOwnedBy(t, a, b.url)
	body, _ := json.Marshal(remoteSpec)
	for i := 0; i < 2; i++ {
		resp, view := postJob(t, a.ts, string(body))
		// First submit queues locally (202); the resubmission is a local
		// cache hit (200) — still routed through a proxy attempt first.
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			t.Fatalf("submit %d under partition: HTTP %d", i, resp.StatusCode)
		}
		if done := waitDone(t, a.ts, view.ID, 10*time.Second); done.Status != StatusDone {
			t.Fatalf("job under partition finished as %q: %s", done.Status, done.Error)
		}
	}

	// A whole sweep completes on the one reachable node.
	resp, view := postSweep(t, a.ts, sweepGridJSON("partitioned", 6))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("sweep under partition: HTTP %d", resp.StatusCode)
	}
	if done := waitSweepDone(t, a.ts, view.ID, 30*time.Second); done.Failed != 0 {
		t.Fatalf("sweep under partition: %d failed cells", done.Failed)
	}

	if sims[1].Load() != 0 {
		t.Errorf("partitioned peer ran %d simulations; nothing should reach it", sims[1].Load())
	}
	_, acl := clusterStats(t, a)
	if acl.DegradedLocal == 0 {
		t.Error("no degraded-local compute recorded under full partition")
	}
	if len(acl.Unhealthy) == 0 {
		t.Error("partitioned peer never marked unhealthy")
	}
}

// BenchmarkClusterSweep measures cold-sweep wall time for a 1-node and
// a 3-node cluster over a latency-bound workload (each cell sleeps
// 20ms, modelling a simulation this host would run serially). The
// 3-node figure must come in well under the 1-node one: remote
// dispatch and stealing keep all three pools busy no matter which node
// received the sweep. (On a single-CPU host the routing RPCs serialize
// against the workload, so the measured speedup here understates what
// a real multi-host deployment sees.)
func BenchmarkClusterSweep(b *testing.B) {
	const cells = 48
	var seedBase atomic.Uint64
	seedBase.Store(1_000_000)

	freshSweep := func() string {
		base := seedBase.Add(10_000)
		seeds := make([]string, cells)
		for i := range seeds {
			seeds[i] = fmt.Sprint(base + uint64(i))
		}
		return fmt.Sprintf(`{"name":"bench-%d","grid":{"mixes":[["spec06.libquantum"]],"controllers":["no"],"scales":["tiny"],"seeds":[%s]}}`,
			base, strings.Join(seeds, ","))
	}

	for _, size := range []int{1, 3} {
		b.Run(fmt.Sprintf("%dnode", size), func(b *testing.B) {
			var sims atomic.Int64
			nodes := startCluster(b, size, func(i int, cfg *Config) {
				cfg.Run = pureRun(&sims, 20*time.Millisecond)
				cfg.StealInterval = 5 * time.Millisecond
				cfg.RemotePollInterval = 2 * time.Millisecond
				cfg.RemotePeerSlots = 3
			})
			client := nodes[0].ts.Client()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				resp, err := client.Post(nodes[0].ts.URL+"/v1/sweeps", "application/json",
					strings.NewReader(freshSweep()))
				if err != nil {
					b.Fatal(err)
				}
				var view struct {
					ID string `json:"id"`
				}
				if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
					b.Fatal(err)
				}
				resp.Body.Close()
				deadline := time.Now().Add(2 * time.Minute)
				for {
					r, err := client.Get(nodes[0].ts.URL + "/v1/sweeps/" + view.ID)
					if err != nil {
						b.Fatal(err)
					}
					var v struct {
						Status string `json:"status"`
					}
					if err := json.NewDecoder(r.Body).Decode(&v); err != nil {
						b.Fatal(err)
					}
					r.Body.Close()
					if v.Status == "done" {
						break
					}
					if time.Now().After(deadline) {
						b.Fatal("sweep did not finish")
					}
					time.Sleep(2 * time.Millisecond)
				}
			}
		})
	}
}

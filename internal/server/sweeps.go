package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"micromama/internal/faultinject"
	"micromama/internal/sweep"
	"micromama/internal/telemetry"
)

// faultSweepWorkerKill simulates a worker dying while holding a sweep
// cell: the dispatched run is abandoned before it starts and its
// outcome is lost. The sweep manager classifies it as transient, so
// the cell returns to pending — the same path a real crash exercises
// through persistence and resume.
var faultSweepWorkerKill = faultinject.New("server/sweep/worker-kill")

// errWorkerKilled marks an abandoned cell run (see
// faultSweepWorkerKill); the sweep manager re-queues rather than fails
// these.
var errWorkerKilled = errors.New("worker killed mid-cell (injected fault)")

// specFromCell maps a sweep cell onto the interactive job spec it is
// equivalent to. The mapping is field-for-field, which is what makes a
// sweep cell and a POST /v1/jobs submission of the same parameters hash
// to the same content address — the whole dedupe story rests on it.
func specFromCell(c sweep.Cell) JobSpec {
	return JobSpec{
		Mix:          c.Mix,
		Controller:   c.Controller,
		Scale:        c.Scale,
		Seed:         c.Seed,
		Target:       c.Target,
		Step:         c.Step,
		DRAMMTps:     c.DRAMMTps,
		DRAMChannels: c.DRAMChannels,
	}
}

// sweepExec adapts the Server into the sweep manager's execution
// backend: cell resolution through the canonical job hash, result
// lookups against the content-addressed cache, and inflight checks
// against the job registry.
type sweepExec struct{ s *Server }

func (e sweepExec) ResolveCell(c sweep.Cell) (string, error) {
	p, err := e.s.resolve(specFromCell(c))
	if err != nil {
		return "", err
	}
	return p.key, nil
}

func (e sweepExec) CachedResult(key string) (json.RawMessage, bool) {
	res, ok := e.s.cache.get(key)
	if !ok {
		return nil, false
	}
	raw, err := json.Marshal(res)
	if err != nil {
		return nil, false
	}
	return raw, true
}

func (e sweepExec) InflightKey(key string) bool {
	j, ok := e.s.jobByID(jobID(key))
	if !ok {
		return false
	}
	st := j.currentStatus()
	return st == StatusQueued || st == StatusRunning
}

// cellJob materializes a dispatched sweep cell as a registry-visible
// job, so GET /v1/jobs/{id} works on sweep work and interactive
// submissions of the same spec coalesce onto it instead of re-running.
func (s *Server) cellJob(t sweep.Ticket) *job {
	spec := specFromCell(t.Cell)
	spec.TimeoutMs = t.TimeoutMs
	spec.normalize()
	timeout := s.cfg.DefaultTimeout
	if t.TimeoutMs > 0 {
		timeout = time.Duration(t.TimeoutMs) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	id := jobID(t.Key)
	j := newJob(id, t.Key, spec, timeout, telemetry.NewRequestID(id))
	s.mu.Lock()
	if existing, ok := s.jobs[id]; !ok ||
		existing.currentStatus() == StatusDone || existing.currentStatus() == StatusFailed {
		s.jobs[id] = j
	}
	s.mu.Unlock()
	return j
}

// cellDone reports a cell's outcome to the sweep manager. Shutdown
// cancellation and injected worker death are transient — the cell
// returns to pending and re-runs (after restart, for drain) — while
// timeouts and simulation errors fail the cell.
func (s *Server) cellDone(t sweep.Ticket, res JobResult, err error) {
	if err == nil {
		raw, merr := json.Marshal(res)
		if merr == nil {
			s.sweeps.CellDone(t, raw, "", false)
			return
		}
		err = fmt.Errorf("encode result: %w", merr)
	}
	transient := errors.Is(err, context.Canceled) || errors.Is(err, errWorkerKilled) ||
		errors.Is(err, errPeerUnavailable)
	s.sweeps.CellDone(t, nil, err.Error(), transient)
}

func (s *Server) handleSweepSubmit(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		w.Header().Set("Retry-After", "5")
		writeJSON(w, http.StatusServiceUnavailable,
			errorBody{Error: "server is draining; retry against a healthy instance"})
		return
	}
	var spec sweep.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: "bad sweep spec: " + err.Error()})
		return
	}
	// Clustered: batch-fetch remote-owned results before admission, so
	// the manager's admission-time dedupe completes warm cells without
	// dispatching anything — a warm cluster serves this sweep with zero
	// recomputation no matter which node received it.
	if s.cl != nil {
		s.cl.prefetchSweep(r.Context(), spec)
	}
	view, created, err := s.sweeps.Submit(spec)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error()})
		return
	}
	status := http.StatusOK
	if created {
		status = http.StatusCreated
	}
	writeJSON(w, status, view)
}

func (s *Server) handleSweepList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Sweeps []sweep.View `json:"sweeps"`
	}{s.sweeps.List()})
}

func (s *Server) handleSweepGet(w http.ResponseWriter, r *http.Request) {
	view, ok := s.sweeps.View(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown sweep"})
		return
	}
	writeJSON(w, http.StatusOK, view)
}

// sweepEnd is the terminal line of a result stream: the sweep's final
// view (or its state at client-cancel/drain time, when status is still
// "running" — reconnect with ?cursor= to resume).
type sweepEnd struct {
	End   bool       `json:"end"`
	Sweep sweep.View `json:"sweep"`
}

// handleSweepResults streams a sweep's event log incrementally.
//
//	GET /v1/sweeps/{id}/results?cursor=N&follow=0|1
//
// Default framing is NDJSON — one Event object per line, then one
// {"end":true,"sweep":…} line. With Accept: text/event-stream the same
// payloads go out as SSE (`id:` carries the cursor, the terminal frame
// is `event: end`). cursor resumes after the N'th event; delivery is
// at-least-once across server restarts, so consumers dedupe on the
// event's cell index. follow=0 dumps what exists and ends immediately.
func (s *Server) handleSweepResults(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	cursor, _ := strconv.Atoi(r.URL.Query().Get("cursor"))
	follow := r.URL.Query().Get("follow") != "0"
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")

	events, view, changed, ok := s.sweeps.EventsSince(id, cursor)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorBody{Error: "unknown sweep"})
		return
	}
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.WriteHeader(http.StatusOK)
	flusher, canFlush := w.(http.Flusher)
	flush := func() {
		if canFlush {
			flusher.Flush()
		}
	}
	writeEvent := func(ev sweep.Event) {
		b, err := json.Marshal(ev)
		if err != nil {
			return
		}
		if sse {
			fmt.Fprintf(w, "id: %d\ndata: %s\n\n", ev.Seq, b)
		} else {
			fmt.Fprintf(w, "%s\n", b)
		}
	}
	writeEnd := func(v sweep.View) {
		b, err := json.Marshal(sweepEnd{End: true, Sweep: v})
		if err != nil {
			return
		}
		if sse {
			fmt.Fprintf(w, "event: end\ndata: %s\n\n", b)
		} else {
			fmt.Fprintf(w, "%s\n", b)
		}
		flush()
	}

	for {
		for _, ev := range events {
			writeEvent(ev)
			cursor = ev.Seq + 1
		}
		flush()
		if view.Status == "done" || !follow {
			writeEnd(view)
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		case <-s.sweeps.DrainCh():
			// Shutdown: hand the client its resume point; whatever is
			// still pending completes on the restarted server.
			events, view, _, ok = s.sweeps.EventsSince(id, cursor)
			if ok {
				for _, ev := range events {
					writeEvent(ev)
				}
				writeEnd(view)
			}
			return
		}
		events, view, changed, ok = s.sweeps.EventsSince(id, cursor)
		if !ok {
			return
		}
	}
}
